package vdsms

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// TestTempoScaledCopyDetected exercises the λ bound (Section IV.A): a copy
// re-timed to play slower — up to the tempo-scaling factor λ=2 — occupies
// more stream time than the query, and the candidate expiry ⌈λL/w⌉ must
// still leave room to match it.
func TestTempoScaledCopyDetected(t *testing.T) {
	query := clip(t, 61, 20) // 20 s at 2 key fps
	// Slow the copy to 2/3 speed: 30 s of stream time (1.5×, within λ=2).
	var slowed bytes.Buffer
	err := ApplyEdits(&slowed, bytes.NewReader(query), EditOptions{
		TargetFPS: 2 * 2.0 / 3.0, GOP: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Conform back to the stream's 2 key fps by re-timing: decode at the
	// slow rate and re-encode declaring 2 fps, which replays the same
	// frames over 30 s of stream time.
	var conformed bytes.Buffer
	if err := ApplyEdits(&conformed, bytes.NewReader(slowed.Bytes()), EditOptions{TargetFPS: 2, GOP: 1}); err != nil {
		t.Fatal(err)
	}

	cfg := testConfig()
	cfg.Delta = 0.5 // a stretched copy dilutes the aligned window set
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.AddQuery(1, bytes.NewReader(query)); err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	err = ComposeStream(&stream, 80, 1,
		bytes.NewReader(clip(t, 700, 30)),
		bytes.NewReader(conformed.Bytes()),
		bytes.NewReader(clip(t, 701, 30)),
	)
	if err != nil {
		t.Fatal(err)
	}
	matches, err := det.Monitor(&stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("tempo-scaled (1.5×) copy not detected within the λ=2 bound")
	}
}

func TestMonitorContextCancel(t *testing.T) {
	det, err := NewDetector(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := det.AddQuery(1, bytes.NewReader(clip(t, 62, 10))); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the monitor must stop immediately
	_, err = det.MonitorContext(ctx, bytes.NewReader(clip(t, 800, 60)))
	if err != context.Canceled {
		t.Errorf("MonitorContext after cancel = %v, want context.Canceled", err)
	}
	// A live context passes through normally.
	m, err := det.MonitorContext(context.Background(), bytes.NewReader(clip(t, 801, 20)))
	if err != nil {
		t.Errorf("MonitorContext with live context failed: %v", err)
	}
	_ = m
}

func TestMonitorContextTimeout(t *testing.T) {
	det, err := NewDetector(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := det.AddQuery(1, bytes.NewReader(clip(t, 63, 10))); err != nil {
		t.Fatal(err)
	}
	// A reader that never ends: repeat a valid stream's frames by chaining
	// the payload after the header... simpler: a reader that blocks until
	// the deadline by delaying each byte.
	data := clip(t, 802, 30)
	slow := &throttledReader{data: data, delay: 2 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = det.MonitorContext(ctx, slow)
	if err != context.DeadlineExceeded {
		t.Errorf("MonitorContext timeout = %v, want context.DeadlineExceeded", err)
	}
}

// throttledReader yields a few bytes per read with a delay, simulating a
// slow live feed.
type throttledReader struct {
	data  []byte
	pos   int
	delay time.Duration
}

func (r *throttledReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		r.pos = 0 // loop forever
	}
	time.Sleep(r.delay)
	n := copy(p[:min(len(p), 16)], r.data[r.pos:])
	r.pos += n
	return n, nil
}

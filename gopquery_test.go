package vdsms

import (
	"bytes"
	"testing"
)

// TestQueryFromFullRateClip: a query supplied as a full-rate clip (30 fps,
// GOP 15 → 2 key frames/s) must match a key-frame-rate stream carrying the
// same content — the two pipelines meet at the key-frame fingerprints.
func TestQueryFromFullRateClip(t *testing.T) {
	fullOpts := VideoOptions{Seconds: 20, FPS: 30, W: 96, H: 80, Seed: 91, Quality: 80, GOP: 15}
	var fullClip bytes.Buffer
	if err := Synthesize(&fullClip, fullOpts); err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(testConfig()) // expects 2 key fps; 30/15 = 2 ✓
	if err != nil {
		t.Fatal(err)
	}
	if err := det.AddQuery(1, bytes.NewReader(fullClip.Bytes())); err != nil {
		t.Fatal(err)
	}

	// Stream: the same content generated at key-frame rate, between
	// unrelated background.
	keyOpts := fullOpts
	keyOpts.FPS, keyOpts.GOP = 2, 1
	var copyClip bytes.Buffer
	if err := Synthesize(&copyClip, keyOpts); err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	err = ComposeStream(&stream, 80, 1,
		bytes.NewReader(clip(t, 920, 30)),
		bytes.NewReader(copyClip.Bytes()),
		bytes.NewReader(clip(t, 921, 30)),
	)
	if err != nil {
		t.Fatal(err)
	}
	matches, err := det.Monitor(&stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Error("full-rate query did not match the key-frame-rate stream")
	}
}

// TestMonitorFullRateStream: a full-rate broadcast (30 fps, GOP 15) is
// monitored directly — the partial decoder skips the P frames and the
// detector sees the 2/s key frames it expects.
func TestMonitorFullRateStream(t *testing.T) {
	det, err := NewDetector(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	queryOpts := VideoOptions{Seconds: 20, FPS: 30, W: 96, H: 80, Seed: 92, Quality: 80, GOP: 15}
	var query bytes.Buffer
	if err := Synthesize(&query, queryOpts); err != nil {
		t.Fatal(err)
	}
	if err := det.AddQuery(1, bytes.NewReader(query.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Full-rate stream: background + the query content + background, all
	// at 30 fps GOP 15 (one ComposeStream so GOP alignment is continuous).
	bg := func(seed int64) []byte {
		var b bytes.Buffer
		o := queryOpts
		o.Seed, o.Seconds = seed, 30
		if err := Synthesize(&b, o); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	var stream bytes.Buffer
	err = ComposeStream(&stream, 80, 15,
		bytes.NewReader(bg(930)),
		bytes.NewReader(query.Bytes()),
		bytes.NewReader(bg(931)),
	)
	if err != nil {
		t.Fatal(err)
	}
	matches, err := det.Monitor(&stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Error("copy not detected in a full-rate GOP-15 stream")
	}
	st := det.Stats()
	if st.Frames < 155 || st.Frames > 165 { // 80 s × 2 key fps ≈ 160
		t.Errorf("detector saw %d key frames, want ≈160", st.Frames)
	}
}

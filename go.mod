module vdsms

go 1.22

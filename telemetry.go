// Facade-level observability: front-end stage timings (decode, extract)
// and the slow-window tracer's wiring to stream time and the log.
package vdsms

import (
	"log"
	"os"
	"time"

	"vdsms/internal/core"
	"vdsms/internal/perfobs"
	"vdsms/internal/telemetry"
)

// SlowWindowEnv is the environment variable that arms the slow-window
// tracer when Config.SlowWindow is zero: a Go duration ("250ms", "2s")
// sets the budget directly; "budget" derives it from the stream's
// real-time budget (a w-second basic window must process in under w
// seconds, or the detector falls behind live input).
const SlowWindowEnv = "TELEMETRY_SLOW_WINDOW"

var (
	telStageDecode = telemetry.Default.Histogram("vcd_stage_duration_seconds",
		"Wall-clock duration of pipeline stages, one observation per basic window (slowest shard for fanned-out stages).",
		telemetry.DurationBuckets, telemetry.L("stage", "decode"))
	telStageExtract = telemetry.Default.Histogram("vcd_stage_duration_seconds",
		"Wall-clock duration of pipeline stages, one observation per basic window (slowest shard for fanned-out stages).",
		telemetry.DurationBuckets, telemetry.L("stage", "extract"))
	telSlowWindows = telemetry.Default.Counter("vcd_slow_windows_total",
		"Basic windows that exceeded the slow-window budget.")
)

// SlowWindowTrace is the per-stage latency breakdown of one basic window
// that blew its budget; see core.SlowWindowTrace for field semantics.
type SlowWindowTrace = core.SlowWindowTrace

// slowWindowBudget resolves the tracer threshold for this detector:
// Config.SlowWindow when set, else the SlowWindowEnv variable. Zero means
// disabled.
func (cfg Config) slowWindowBudget() time.Duration {
	if cfg.SlowWindow != 0 {
		if cfg.SlowWindow < 0 {
			return 0 // explicit off, overriding the environment
		}
		return cfg.SlowWindow
	}
	v := os.Getenv(SlowWindowEnv)
	switch v {
	case "", "off", "0":
		return 0
	case "budget":
		return time.Duration(cfg.WindowSec * float64(time.Second))
	}
	d, err := time.ParseDuration(v)
	if err != nil || d <= 0 {
		log.Printf("vdsms: ignoring %s=%q: want a positive duration or \"budget\"", SlowWindowEnv, v)
		return 0
	}
	return d
}

// armSlowWindow wires the engine's tracer to this detector: traces bump
// the slow-window counter and go to OnSlowWindow when set, else to the log
// as one structured line per offending window.
//
// The tracer is always wired, with the budget held in a runtime-adjustable
// SlowBudget shared across the detector's lineage (NewStream copies it),
// so SetSlowWindow — and POST /debug/slow-window — can arm, retune or
// disarm tracing live. A zero budget keeps the per-window cost at exactly
// the disabled path's (the engine checks the budget before timing).
func (d *Detector) armSlowWindow(eng *core.Engine) {
	if d.slowVar == nil {
		d.slowVar = core.NewSlowBudget(d.cfg.slowWindowBudget())
	}
	eng.SlowVar = d.slowVar
	eng.OnSlowWindow = func(tr SlowWindowTrace) {
		telSlowWindows.Inc()
		if d.OnSlowWindow != nil {
			d.OnSlowWindow(tr)
			return
		}
		log.Printf("SLOW WINDOW stream=[%.1fs,%.1fs) total=%s budget=%s sketch=%s probe=%s combine=%s merge=%s related=%d",
			float64(tr.StartFrame)/d.cfg.KeyFPS, float64(tr.EndFrame)/d.cfg.KeyFPS,
			tr.Total, tr.Budget, tr.Sketch, tr.Probe, tr.Combine, tr.Merge, tr.Related)
	}
}

// SetSlowWindow retunes the slow-window budget at runtime: the new value
// takes effect at the next basic window of every engine sharing this
// detector's lineage (the detector itself plus its NewStream siblings).
// Non-positive disables slow-window tracing.
func (d *Detector) SetSlowWindow(budget time.Duration) {
	if budget < 0 {
		budget = 0
	}
	d.slowVar.Set(budget)
}

// SlowWindowBudget returns the live slow-window budget (zero = disabled).
func (d *Detector) SlowWindowBudget() time.Duration { return d.slowVar.Get() }

// frontEndTimer accumulates the decode and extract spans of the frames
// filling one basic window and flushes them as one observation per stage
// per window — the same granularity the matching-kernel stages report at.
// The most recent flushed window is kept for takeLast, which the overload
// controller's feed combines with the kernel's window duration (flush runs
// at the window-filling frame, immediately before that window is pushed).
type frontEndTimer struct {
	active                bool
	frames                int
	perWindow             int
	decode, extract       time.Duration
	lastDecode, lastExtra time.Duration
	// eng, when set and span-armed, receives the flushed decode/extract
	// spans as the next window's pending front-end stages (flush runs at
	// the window-filling frame, before that window is pushed).
	eng *core.Engine
}

func newFrontEndTimer(perWindow int) frontEndTimer {
	return frontEndTimer{active: telemetry.Enabled(), perWindow: perWindow}
}

func (f *frontEndTimer) add(decode, extract time.Duration) {
	if !f.active {
		return
	}
	f.decode += decode
	f.extract += extract
	f.frames++
	if f.frames >= f.perWindow {
		f.flush()
	}
}

func (f *frontEndTimer) flush() {
	if !f.active || f.frames == 0 {
		return
	}
	f.lastDecode, f.lastExtra = f.decode, f.extract
	if telemetry.Enabled() {
		telStageDecode.ObserveDuration(f.decode)
		telStageExtract.ObserveDuration(f.extract)
	}
	if f.eng != nil && f.eng.PerfArmed() {
		f.eng.AddPendingSpanNS(perfobs.StageDecode, f.decode.Nanoseconds())
		f.eng.AddPendingSpanNS(perfobs.StageExtract, f.extract.Nanoseconds())
	}
	f.decode, f.extract, f.frames = 0, 0, 0
}

// takeLast returns and clears the last flushed window's decode and extract
// spans.
func (f *frontEndTimer) takeLast() (decode, extract time.Duration) {
	decode, extract = f.lastDecode, f.lastExtra
	f.lastDecode, f.lastExtra = 0, 0
	return decode, extract
}

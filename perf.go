// Facade-level performance attribution: wiring detectors into the
// process-wide span collector and the knobs CLIs expose for it. See
// internal/perfobs for the span model and DESIGN.md §14.
package vdsms

import (
	"encoding/json"
	"io"
	"time"

	"vdsms/internal/core"
	"vdsms/internal/perfobs"
)

// SetSpanSampling sets the process-wide span sampling fraction: 0 disables
// span capture (the default — the window hot path then pays one atomic
// load), 1 samples every basic window, f in (0,1) samples every
// round(1/f)th window deterministically. Applies to every detector, stream
// and fleet engine in the process.
func SetSpanSampling(fraction float64) {
	perfobs.Default.SetSampleFraction(fraction)
}

// SetAllocSampling sets how many sampled spans pass between
// allocation-attribution readings (per-stage allocated-object deltas and a
// GC snapshot). 0 disables alloc attribution; keep ≥ 8 in production —
// each reading costs a few runtime metric reads.
func SetAllocSampling(every int) {
	perfobs.Default.SetAllocEvery(int64(every))
}

// SetSpanLog streams every sampled span to w as one JSON line each (the
// -span-log flag of vcdmon/vcdserve). Pass nil to stop. The writer is
// called synchronously from the window path — wrap slow sinks in a
// buffered writer.
func SetSpanLog(w io.Writer) {
	if w == nil {
		perfobs.Default.SetOnSpan(nil)
		return
	}
	perfobs.Default.SetOnSpan(func(r perfobs.SpanRecord) {
		b, err := json.Marshal(r)
		if err != nil {
			return
		}
		w.Write(append(b, '\n'))
	})
}

// StartProfiler begins continuous CPU+heap profile capture into dir (the
// -profile-dir/-profile-every flags): every period one profile pair is
// written into a bounded ring of keep files per kind. Returns the profiler
// for Stop.
func StartProfiler(dir string, every time.Duration, keep int) (*perfobs.Profiler, error) {
	return perfobs.StartProfiler(dir, every, keep)
}

// armPerf points eng at the process span collector under this detector's
// stream label. Called from every engine construction site, after armTrace
// (which resolves the stream name).
func (d *Detector) armPerf(eng *core.Engine) {
	label := d.StreamName()
	if label == "" {
		label = d.cfg.StreamName
	}
	d.perfLabel = label
	eng.SetPerf(perfobs.Default, label)
}

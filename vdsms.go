// Package vdsms is a Video Data Stream Management System for continuous
// content-based copy detection over streaming videos, reproducing Yan, Ooi
// and Zhou (ICDE 2008).
//
// A Detector monitors compressed video streams (the repository's MVC1
// format; see internal/mpeg) for copies of subscribed query videos. Frames
// are fingerprinted in the compressed domain (DC coefficients of key
// frames, grid–pyramid cell ids), sequences are compared by set similarity
// estimated with K-min-hash sketches, and the per-window work is done with
// 2K-bit vector signatures pruned by Lemma 2 and accelerated by a
// Hash-Query index over the query sketches. Detection is robust to
// brightness/colour edits, noise, resolution and frame-rate changes, and —
// the paper's headline property — temporal reordering of the copied
// material.
//
// Typical use:
//
//	det, _ := vdsms.NewDetector(vdsms.DefaultConfig())
//	det.AddQuery(1, queryClipReader)      // an encoded MVC1 clip
//	matches, _ := det.Monitor(streamReader)
//
// Synthesize, ApplyEdits and ComposeStream generate demo material so the
// examples run without any video assets.
package vdsms

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"vdsms/internal/core"
	"vdsms/internal/degrade"
	"vdsms/internal/feature"
	"vdsms/internal/mpeg"
	"vdsms/internal/partition"
	"vdsms/internal/perfobs"
	"vdsms/internal/snapshot"
	"vdsms/internal/trace"
)

// Config parameterises a Detector. DefaultConfig returns the paper's
// Table I defaults.
type Config struct {
	// K is the number of min-hash functions.
	K int
	// Seed fixes the hash family; detectors that must agree on sketches
	// need equal (K, Seed).
	Seed int64
	// Delta is the similarity threshold δ in (0, 1].
	Delta float64
	// Lambda bounds candidate length to λ × query length.
	Lambda float64
	// WindowSec is the basic window duration w in seconds of stream time.
	WindowSec float64
	// KeyFPS is the expected key-frame rate of monitored streams
	// (stream fps ÷ GOP). Streams whose rate differs by more than 20% are
	// rejected so window durations stay meaningful.
	KeyFPS float64
	// U is the grid partition granularity; D the feature dimensionality.
	U, D int
	// Sequential, when true, uses the Sequential candidate order
	// (higher accuracy); otherwise Geometric (lower cost).
	Sequential bool
	// UseSketchMethod selects raw sketch comparison instead of bit
	// signatures (mainly for experimentation; bit signatures are strictly
	// faster at equal accuracy).
	UseSketchMethod bool
	// NoIndex disables the Hash-Query index (linear scan per window).
	NoIndex bool
	// PreFilter enables the blocked-Bloom pre-filter tier in front of the
	// Hash-Query index: per-row candidate probes are rejected in O(1)
	// before any exact index work, which matters once the subscribed query
	// count reaches 10⁵–10⁶. Matches are byte-identical with the tier on
	// or off; only probe cost and memory change. Incompatible with
	// NoIndex. See DESIGN.md "Pre-filter tier".
	PreFilter bool
	// ArchiveSec, when positive, keeps the most recent ArchiveSec seconds
	// of the monitored stream's compressed frames in memory so that, on a
	// match, the matched segment can be saved as a standalone clip for
	// further analysis (delivered via OnMatchClip). This is the paper's
	// "only store the video sequences which are relevant to the queries".
	ArchiveSec float64
	// Workers sets the intra-stream parallelism of the per-window matching
	// kernel: 0 evaluates windows inline on the monitoring goroutine, N ≥ 1
	// partitions the queries across N workers per window. Matches and their
	// order are identical for every value; see core.Config.Workers.
	Workers int
	// CheckpointDir, when non-empty, enables crash recovery: the detector
	// keeps a checkpoint of its full matching state plus a write-ahead log
	// of the frames consumed since in this directory. Restart with Resume
	// to continue exactly where a crashed run stopped. One directory serves
	// one detector lineage; see DESIGN.md "Checkpoint/restore".
	CheckpointDir string
	// CheckpointEvery is the minimum wall-clock interval between periodic
	// checkpoints during Monitor (taken at basic-window boundaries). Zero
	// disables periodic checkpoints: state is then captured only on query
	// churn and explicit Checkpoint calls, and recovery replays the WAL
	// from the last such point.
	CheckpointEvery time.Duration
	// SlowWindow arms the slow-window tracer: any basic window whose
	// processing exceeds this budget is reported with a per-stage latency
	// breakdown (via OnSlowWindow when set, else as one log line). Zero
	// defers to the TELEMETRY_SLOW_WINDOW environment variable; negative
	// disables tracing even when the variable is set. The natural budget
	// for live input is WindowSec — pass TELEMETRY_SLOW_WINDOW=budget for
	// exactly that. The budget is runtime-adjustable after construction via
	// Detector.SetSlowWindow (and POST /debug/slow-window on the server).
	SlowWindow time.Duration
	// TraceEvents arms decision-provenance tracing: candidate-lifecycle
	// events (born, extended, pruned, dropped, expired, reported, near_miss)
	// are journaled in a bounded process-wide ring of this many events, and
	// every emitted match gets a provenance record (see Detector.MatchRecord).
	// Zero disables tracing — the matching kernel then does no extra work at
	// all. Capacities below the default still arm tracing at the default
	// ring size.
	TraceEvents int
	// AuditFraction, in (0, 1], arms the sampled exact-audit channel (and
	// implies tracing): about this fraction of report and prune decisions
	// are recomputed exactly from raw cell-id sets and scored against
	// Theorem 1's deviation bound, feeding the vcd_sketch_error_abs
	// histograms and vcd_sketch_error_bound_violations_total. Zero disables
	// auditing.
	AuditFraction float64
	// StreamName labels this detector's stream in the trace journal and the
	// /debug/events output. Empty auto-assigns "stream-N".
	StreamName string
	// RealTimeBudget arms the overload controller: the per-window ingest
	// latency (decode + extract + matching kernel) whose p99 must stay
	// under this bound. Sustained breaches raise a bounded shed level with
	// hysteresis; sustained headroom lowers it. Zero leaves the controller
	// unarmed (it can still be armed later via SetRealTimeBudget). The
	// natural budget for live input is WindowSec of wall time. See
	// DESIGN.md "Overload & graceful degradation".
	RealTimeBudget time.Duration
	// Shed lets the monitor loop act on the shed level: low-motion key
	// frames substitute their previous cell id instead of extracting, and
	// at higher levels low-delta frames skip entropy decode entirely.
	// Without Shed the armed controller runs observe-only — the level and
	// /readyz still report overload, but no work is dropped.
	Shed bool
	// Resync enables fault-tolerant ingest: corrupt frames are skipped or
	// substituted (with a byte-scan resynchronisation when frame sync is
	// lost), truncation ends the stream cleanly instead of erroring, and
	// transient read errors are absorbed with retry and backoff. Damage
	// counters surface in Overload() and the vcd_decode_resync_* metrics.
	Resync bool
}

// DefaultConfig returns the paper's default parameters: K=800, δ=0.7,
// u=4, d=5, w=5s, λ=2, Bit method, Sequential order, index enabled.
func DefaultConfig() Config {
	return Config{
		K: 800, Delta: 0.7, Lambda: 2, WindowSec: 5, KeyFPS: 2,
		U: 4, D: 5, Sequential: true,
	}
}

// Match is one detected copy, in stream time.
type Match struct {
	// QueryID identifies the matched query.
	QueryID int
	// Start and End delimit the matching candidate sequence.
	Start, End time.Duration
	// DetectedAt is the stream time at which the match was reported.
	DetectedAt time.Duration
	// Similarity is the estimated set similarity (≥ the configured δ).
	Similarity float64
}

// Stats reports detector-side operation counters; see core.Stats for field
// semantics.
type Stats = core.Stats

// Detector is the continuous copy-detection facade. It is not safe for
// concurrent use.
type Detector struct {
	cfg      Config
	pipeline pipeline
	engine   *core.Engine
	winKeyF  int
	// OnMatch, when set, receives matches as the stream is consumed.
	OnMatch func(Match)
	// OnMatchClip, when set together with Config.ArchiveSec, additionally
	// receives a standalone MVC1 clip of the matched stream segment
	// (starting at the nearest retained I-frame before the match). The
	// clip is only as long as the retention window allows.
	OnMatchClip func(Match, []byte)
	// OnSlowWindow, when set together with an armed slow-window budget
	// (Config.SlowWindow or TELEMETRY_SLOW_WINDOW), receives the per-stage
	// breakdown of every basic window that exceeded it, replacing the
	// default log line. Set before monitoring.
	OnSlowWindow func(SlowWindowTrace)

	// Replayed holds the matches re-derived from the WAL tail by Resume.
	// They were (at least partially) delivered by the crashed run already —
	// recovery is at-least-once for the frames after the last checkpoint —
	// so they are reported here instead of through OnMatch.
	Replayed []Match

	// Decision-provenance state (see trace.go): the journal recorder when
	// tracing is armed, and the runtime-adjustable slow-window budget shared
	// by every engine of this detector's lineage.
	tracer  *trace.Recorder
	slowVar *core.SlowBudget

	// Adaptive-ingest state (see degrade.go): the overload controller is
	// shared across the lineage like slowVar; ovl holds this stream's
	// sampler, motion scorer and damage counters; fe points at the active
	// Monitor call's front-end timer so the controller sees full ingest
	// latency, not just the kernel's.
	ctl *degrade.Controller
	ovl *ovlState
	fe  *frontEndTimer

	// perfLabel is the stream label this detector's spans and outlier
	// observations carry (resolved by armPerf from the trace stream name).
	perfLabel string

	// Checkpoint state (armed when Config.CheckpointDir is set).
	wal      *snapshot.WAL
	lastCkpt time.Time

	// Per-Monitor-call archival state.
	curPD   *mpeg.PartialDecoder
	keyBase int   // engine key-frame ordinal at the segment start
	keyMap  []int // key ordinal − keyBase → stream frame index
}

type pipeline struct {
	ex *feature.Extractor
	pt partition.Partitioner
}

func (p pipeline) ids(dcs []*mpeg.DCFrame) []uint64 {
	out := make([]uint64, len(dcs))
	scratch := make([]float64, p.pt.D)
	for i, dcf := range dcs {
		out[i] = p.pt.CellInto(p.ex.Vector(dcf), scratch)
	}
	return out
}

// NewDetector validates cfg and builds a detector.
func NewDetector(cfg Config) (*Detector, error) {
	if cfg.WindowSec <= 0 {
		return nil, fmt.Errorf("vdsms: WindowSec %g must be positive", cfg.WindowSec)
	}
	if cfg.KeyFPS <= 0 {
		return nil, fmt.Errorf("vdsms: KeyFPS %g must be positive", cfg.KeyFPS)
	}
	ex, err := feature.NewExtractor(feature.Config{D: cfg.D})
	if err != nil {
		return nil, err
	}
	pt, err := partition.New(cfg.U, cfg.D, partition.GridPyramid)
	if err != nil {
		return nil, err
	}
	winKeyF := int(math.Round(cfg.WindowSec * cfg.KeyFPS))
	if winKeyF < 1 {
		winKeyF = 1
	}
	ecfg := core.Config{
		K: cfg.K, Seed: cfg.Seed, Delta: cfg.Delta, Lambda: cfg.Lambda,
		WindowFrames: winKeyF,
		Order:        core.Geometric,
		Method:       core.Bit,
		UseIndex:     !cfg.NoIndex,
		PreFilter:    cfg.PreFilter,
		Workers:      cfg.Workers,
	}
	if cfg.Sequential {
		ecfg.Order = core.Sequential
	}
	if cfg.UseSketchMethod {
		ecfg.Method = core.Sketch
	}
	eng, err := core.NewEngine(ecfg)
	if err != nil {
		return nil, err
	}
	d := &Detector{cfg: cfg, pipeline: pipeline{ex: ex, pt: pt}, engine: eng, winKeyF: winKeyF}
	eng.OnMatch = d.forward
	d.armSlowWindow(eng)
	d.armTrace(eng)
	d.armOverload(eng)
	d.armPerf(eng)
	return d, nil
}

// NewStream returns a fresh Detector monitoring an additional concurrent
// stream against this detector's query set. Queries, their sketches and
// the Hash-Query index are shared (one subscription covers every stream,
// as in the paper's multi-stream setting); per-stream candidate state is
// independent, so the returned detector may run in its own goroutine.
// AddQuery/RemoveQuery through any sharing detector affects all of them.
func (d *Detector) NewStream() (*Detector, error) { return d.NewStreamNamed("") }

// NewStreamNamed is NewStream with an explicit trace-journal stream name
// (shown by /debug/events and match records; empty auto-assigns one). The
// new detector shares this detector's runtime-adjustable slow-window
// budget, so one POST /debug/slow-window reaches every stream.
func (d *Detector) NewStreamNamed(name string) (*Detector, error) {
	eng, err := core.NewEngineWith(d.engine.Config(), d.engine.Queries())
	if err != nil {
		return nil, err
	}
	ncfg := d.cfg
	// One checkpoint directory holds one detector lineage; additional
	// streams share the query set but must manage their own durability.
	ncfg.CheckpointDir = ""
	ncfg.StreamName = name
	nd := &Detector{cfg: ncfg, pipeline: d.pipeline, engine: eng, winKeyF: d.winKeyF,
		slowVar: d.slowVar, ctl: d.ctl}
	eng.OnMatch = nd.forward
	nd.armSlowWindow(eng)
	nd.armTrace(eng)
	nd.armOverload(eng)
	nd.armPerf(eng)
	return nd, nil
}

// SaveQueries serialises the subscribed queries (ids, lengths, sketches)
// so a monitor can restart — or fan out to other processes — without
// re-decoding the query videos. Load with LoadDetector.
func (d *Detector) SaveQueries(w io.Writer) error {
	return d.engine.Queries().Save(w)
}

// LoadDetector builds a detector from cfg with its query set restored from
// a SaveQueries stream. cfg.K and cfg.Seed must match the values used when
// the queries were subscribed (the sketches embed the hash family).
func LoadDetector(cfg Config, r io.Reader) (*Detector, error) {
	d, err := NewDetector(cfg)
	if err != nil {
		return nil, err
	}
	qs, err := core.LoadQuerySet(r)
	if err != nil {
		return nil, err
	}
	if qs.K() != cfg.K {
		return nil, fmt.Errorf("vdsms: saved query set has K=%d, config has K=%d", qs.K(), cfg.K)
	}
	eng, err := core.NewEngineWith(d.engine.Config(), qs)
	if err != nil {
		return nil, err
	}
	d.engine = eng
	eng.OnMatch = d.forward
	d.armSlowWindow(eng)
	d.armTrace(eng)
	d.armOverload(eng)
	d.armPerf(eng)
	return d, nil
}

// forward converts engine matches (key-frame indices) to stream time and
// archives the matched segment when requested.
func (d *Detector) forward(m core.Match) {
	conv := d.convert(m)
	if d.OnMatch != nil {
		d.OnMatch(conv)
	}
	if d.OnMatchClip == nil || d.curPD == nil {
		return
	}
	streamIdx := -1 // ClipFrom falls back to the oldest retained I-frame
	if off := m.StartFrame - d.keyBase; off >= 0 && off < len(d.keyMap) {
		streamIdx = d.keyMap[off]
	}
	clip, err := d.curPD.ClipFrom(streamIdx)
	if err != nil {
		return // retention too short: deliver nothing rather than garbage
	}
	d.OnMatchClip(conv, clip)
}

func (d *Detector) convert(m core.Match) Match {
	return convertMatch(m, d.cfg.KeyFPS)
}

// AddQuery subscribes a continuous query from an encoded MVC1 clip. The
// clip is partially decoded; only key-frame fingerprints are retained.
func (d *Detector) AddQuery(id int, clip io.Reader) error {
	dcs, _, err := mpeg.ReadAllDC(clip)
	if err != nil {
		return fmt.Errorf("vdsms: decoding query %d: %w", id, err)
	}
	if len(dcs) == 0 {
		return fmt.Errorf("vdsms: query %d has no key frames", id)
	}
	if err := d.engine.AddQuery(id, d.pipeline.ids(dcs)); err != nil {
		return err
	}
	// Subscription churn is not in the WAL (the log carries frames only),
	// so it is made durable by checkpointing immediately.
	return d.checkpointOnChurn()
}

// AddQueries subscribes a batch of continuous queries from encoded MVC1
// clips in one bulk operation: clips are decoded, then the Hash-Query
// index (and pre-filter, when enabled) is built once for the combined
// query set instead of once per insert — the only practical path at
// large query counts. Either every query lands or none does.
func (d *Detector) AddQueries(ids []int, clips []io.Reader) error {
	if len(ids) != len(clips) {
		return fmt.Errorf("vdsms: AddQueries: %d ids but %d clips", len(ids), len(clips))
	}
	cellIDs := make([][]uint64, len(clips))
	for i, clip := range clips {
		dcs, _, err := mpeg.ReadAllDC(clip)
		if err != nil {
			return fmt.Errorf("vdsms: decoding query %d: %w", ids[i], err)
		}
		if len(dcs) == 0 {
			return fmt.Errorf("vdsms: query %d has no key frames", ids[i])
		}
		cellIDs[i] = d.pipeline.ids(dcs)
	}
	if err := d.engine.AddQueries(ids, cellIDs); err != nil {
		return err
	}
	return d.checkpointOnChurn()
}

// RemoveQuery unsubscribes a query.
func (d *Detector) RemoveQuery(id int) error {
	if err := d.engine.RemoveQuery(id); err != nil {
		return err
	}
	return d.checkpointOnChurn()
}

// QueryIDs returns the subscribed query ids (unordered) — after Resume,
// the queries restored from the checkpoint.
func (d *Detector) QueryIDs() []int { return d.engine.Queries().IDs() }

// NumQueries returns the number of subscribed queries.
func (d *Detector) NumQueries() int { return d.engine.NumQueries() }

// Monitor consumes an encoded stream to EOF, returning the matches found in
// this segment. Detector state persists across calls, so consecutive
// Monitor calls behave as one continuous stream. Matches are also delivered
// incrementally via OnMatch.
func (d *Detector) Monitor(stream io.Reader) ([]Match, error) {
	var rr *degrade.RetryReader
	if d.cfg.Resync {
		// Transient (timeout/temporary) read errors are absorbed with
		// backoff before the decoder ever sees them.
		rr = degrade.NewRetryReader(stream)
		stream = rr
	}
	pd, err := mpeg.NewPartialDecoder(stream)
	if err != nil {
		return nil, err
	}
	if d.cfg.Resync {
		pd.SetResync(true)
		defer func() {
			d.foldResyncStats(pd.ResyncStats())
			if n := rr.Retries(); n > 0 {
				d.ovl.retries.Add(n)
				telReadRetries.Add(n)
			}
		}()
	}
	if d.shedArmed() {
		o, ctl := d.ovl, d.ctl
		// Declare the basic-window cadence so decode shedding runs under the
		// per-window budget (the phase accounts for a window left half-filled
		// by the previous Monitor call).
		o.sampler.SetWindow(d.winKeyF, d.engine.PendingFrames()%d.winKeyF)
		pd.SetShedCheck(func(payloadBytes int) bool {
			keep := o.sampler.KeepDecode(ctl.Level(), payloadBytes)
			if !keep {
				o.decodeShed.Add(1)
				telShedDecode.Inc()
				perfobs.DefaultOutliers.ObserveShed(d.perfLabel, 1)
			}
			return !keep
		})
	}
	hdr := pd.Header()
	keyRate := hdr.FPS() / float64(hdr.GOP)
	if keyRate < d.cfg.KeyFPS*0.8 || keyRate > d.cfg.KeyFPS*1.25 {
		return nil, fmt.Errorf("vdsms: stream key-frame rate %.2f/s incompatible with configured %.2f/s",
			keyRate, d.cfg.KeyFPS)
	}
	// Arm archival for this segment.
	if d.cfg.ArchiveSec > 0 && d.OnMatchClip != nil {
		pd.SetRetention(int(d.cfg.ArchiveSec*hdr.FPS()) + 1)
		d.curPD = pd
		d.keyBase = d.engine.Stats().Frames
		d.keyMap = d.keyMap[:0]
		defer func() { d.curPD = nil }()
	}
	maxKeys := int(d.cfg.ArchiveSec*d.cfg.KeyFPS) + 2

	before := len(d.engine.Matches)
	scratch := make([]float64, d.pipeline.pt.D)
	// Decoded cell ids are pushed in batches aligned to basic-window
	// boundaries: the engine processes each window at exactly the same
	// stream position as per-frame pushing would (so match latency and
	// archival state are unchanged) while the per-frame call overhead is
	// amortised — which matters once the window kernel fans out to workers.
	room := d.winKeyF - d.engine.PendingFrames()
	batch := make([]uint64, 0, d.winKeyF)
	// Front-end stage timing (decode, extract) aggregates per basic window
	// to match the matching-kernel stages' granularity. When the overload
	// controller is armed, the timer also runs so the controller sees full
	// ingest latency (the engine only knows its own kernel time).
	fe := newFrontEndTimer(d.winKeyF)
	fe.eng = d.engine
	if d.ctl != nil || d.engine.PerfArmed() {
		fe.active = true
	}
	d.fe = &fe
	defer func() { d.fe = nil }()
	for {
		var tDec time.Time
		if fe.active {
			tDec = time.Now()
		}
		dcf, err := pd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		var tExt time.Time
		if fe.active {
			tExt = time.Now()
		}
		batch = append(batch, d.cellID(dcf, scratch))
		if fe.active {
			fe.add(tExt.Sub(tDec), time.Since(tExt))
		}
		if d.curPD != nil {
			d.keyMap = append(d.keyMap, dcf.Info.Index)
			if len(d.keyMap) > maxKeys {
				trim := len(d.keyMap) - maxKeys
				d.keyMap = d.keyMap[trim:]
				d.keyBase += trim
			}
		}
		if len(batch) == room {
			if err := d.pushLogged(batch); err != nil {
				return nil, err
			}
			batch = batch[:0]
			room = d.winKeyF
		}
	}
	fe.flush()
	if len(batch) > 0 {
		if err := d.pushLogged(batch); err != nil {
			return nil, err
		}
	}
	flushed := d.engine.PendingFrames() > 0
	d.engine.Flush()
	// A flushed partial window is a state change frame replay alone cannot
	// reproduce, so it is made durable immediately.
	if flushed && d.wal != nil {
		if err := d.Checkpoint(); err != nil {
			return nil, err
		}
	}
	out := make([]Match, 0, len(d.engine.Matches)-before)
	for _, m := range d.engine.Matches[before:] {
		out = append(out, d.convert(m))
	}
	return out, nil
}

// Stats returns the engine's operation counters.
func (d *Detector) Stats() Stats { return d.engine.Stats() }

// MonitorContext is Monitor with cancellation: it stops (returning
// ctx.Err() and the matches found so far) at the next frame boundary after
// the context is done. Use for live streams that have no natural EOF.
//
// When checkpointing is enabled, a cancelled monitor writes a final
// checkpoint before returning, so the state at the cancellation point
// survives a subsequent process exit without relying on the WAL tail
// alone.
func (d *Detector) MonitorContext(ctx context.Context, stream io.Reader) ([]Match, error) {
	matches, err := d.Monitor(&contextReader{ctx: ctx, r: stream})
	if cerr := ctx.Err(); cerr != nil && err != nil {
		if d.CheckpointingEnabled() {
			if ckErr := d.Checkpoint(); ckErr != nil {
				return matches, ckErr
			}
		}
		return matches, cerr
	}
	return matches, err
}

// contextReader fails reads once the context is done.
type contextReader struct {
	ctx context.Context
	r   io.Reader
}

func (c *contextReader) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.r.Read(p)
}

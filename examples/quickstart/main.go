// Quickstart: subscribe one query video and find a copy of it inside a
// longer stream. Everything is generated in memory — no video assets
// needed.
package main

import (
	"bytes"
	"fmt"
	"log"

	"vdsms"
)

func main() {
	// 1. Make a 20-second "query" video — the content we want to protect.
	//    (In a real deployment this is your advertisement, film sample, …)
	var query bytes.Buffer
	opts := vdsms.VideoOptions{Seconds: 20, FPS: 2, W: 96, H: 80, Seed: 42, GOP: 1}
	if err := vdsms.Synthesize(&query, opts); err != nil {
		log.Fatal(err)
	}

	// 2. Build a broadcast stream: background, the query verbatim, more
	//    background.
	clip := func(seed int64, seconds float64) *bytes.Reader {
		var b bytes.Buffer
		o := opts
		o.Seed, o.Seconds = seed, seconds
		if err := vdsms.Synthesize(&b, o); err != nil {
			log.Fatal(err)
		}
		return bytes.NewReader(b.Bytes())
	}
	var stream bytes.Buffer
	if err := vdsms.ComposeStream(&stream, 75, 1,
		clip(100, 60), bytes.NewReader(query.Bytes()), clip(101, 60)); err != nil {
		log.Fatal(err)
	}

	// 3. Detect. DefaultConfig is the paper's Table I: K=800 min-hashes,
	//    δ=0.7, 5-second basic windows, bit signatures + query index.
	det, err := vdsms.NewDetector(vdsms.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := det.AddQuery(1, bytes.NewReader(query.Bytes())); err != nil {
		log.Fatal(err)
	}
	matches, err := det.Monitor(&stream)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Report. The copy sits at [60s, 80s); expect detections inside it.
	fmt.Printf("%d match(es); copy was inserted at 60s-80s\n", len(matches))
	for _, m := range matches {
		fmt.Printf("  query %d matched %v-%v (similarity %.2f)\n",
			m.QueryID, m.Start, m.End, m.Similarity)
	}
	if len(matches) == 0 {
		log.Fatal("expected the embedded copy to be detected")
	}
}

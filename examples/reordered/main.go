// Reordered copies — the paper's headline robustness claim, demonstrated
// head-to-head: a copy whose segments are shuffled (and photometrically
// edited) is detected by the set-similarity sketch method, while the
// frame-order baselines of Hampapur et al. [1] (Seq) and Chiu et al. [6]
// (Warp) report it as dissimilar.
//
// This example reaches below the public facade into the internal packages
// to run the baseline matchers side by side with the detector; quickstart
// and admonitor show the facade-only workflow.
package main

import (
	"bytes"
	"fmt"
	"log"

	"vdsms"
	"vdsms/internal/baseline"
	"vdsms/internal/feature"
	"vdsms/internal/mpeg"
)

func synth(seed int64, seconds float64) []byte {
	var b bytes.Buffer
	err := vdsms.Synthesize(&b, vdsms.VideoOptions{
		Seconds: seconds, FPS: 2, W: 96, H: 80, Seed: seed, GOP: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	return b.Bytes()
}

// feats extracts the compressed-domain feature sequence of a clip — the
// same front end all three methods share ("fair comparison", paper VI.E).
func feats(clip []byte) [][]float64 {
	ex, err := feature.NewExtractor(feature.Config{D: 5})
	if err != nil {
		log.Fatal(err)
	}
	dcs, _, err := mpeg.ReadAllDC(bytes.NewReader(clip))
	if err != nil {
		log.Fatal(err)
	}
	out := make([][]float64, len(dcs))
	for i, dcf := range dcs {
		out[i] = ex.Vector(dcf)
	}
	return out
}

func main() {
	original := synth(7, 30)

	// The pirate's copy: brightness/contrast shifted, noisy, and re-cut
	// into a different story line (segments of 6 s, shuffled).
	var pirated bytes.Buffer
	err := vdsms.ApplyEdits(&pirated, bytes.NewReader(original), vdsms.EditOptions{
		Brightness:    15,
		Contrast:      1.1,
		NoiseAmp:      5,
		ReorderSegSec: 6,
		Seed:          3,
		GOP:           1,
	})
	if err != nil {
		log.Fatal(err)
	}

	var stream bytes.Buffer
	err = vdsms.ComposeStream(&stream, 75, 1,
		bytes.NewReader(synth(500, 60)),
		bytes.NewReader(pirated.Bytes()),
		bytes.NewReader(synth(501, 60)),
	)
	if err != nil {
		log.Fatal(err)
	}

	// --- Proposed method: min-hash sketches + bit signatures.
	cfg := vdsms.DefaultConfig()
	cfg.Delta = 0.6
	det, err := vdsms.NewDetector(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := det.AddQuery(1, bytes.NewReader(original)); err != nil {
		log.Fatal(err)
	}
	matches, err := det.Monitor(bytes.NewReader(stream.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sketch method: %d match(es)\n", len(matches))
	for _, m := range matches {
		fmt.Printf("  %v-%v similarity %.2f\n", m.Start, m.End, m.Similarity)
	}

	// --- Baselines on the identical feature stream.
	qf := feats(original)
	sf := feats(stream.Bytes())
	for _, bl := range []struct {
		name string
		cfg  baseline.Config
	}{
		{"Seq [1] (frame-aligned)", baseline.Config{Kind: baseline.Seq, Threshold: 0.25, Gap: 10}},
		{"Warp [6] (DTW, r=6)", baseline.Config{Kind: baseline.Warp, Threshold: 0.25, Gap: 10, Band: 6}},
	} {
		m, err := baseline.New(bl.cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.AddQuery(1, qf); err != nil {
			log.Fatal(err)
		}
		best := -1.0
		for _, f := range sf {
			m.Push(f)
		}
		// Also report the best (smallest) distance the baseline saw, by
		// re-running with an infinite threshold.
		probe, _ := baseline.New(baseline.Config{
			Kind: bl.cfg.Kind, Threshold: 1e18, Gap: bl.cfg.Gap, Band: bl.cfg.Band,
		})
		probe.AddQuery(1, qf)
		for _, f := range sf {
			probe.Push(f)
		}
		for _, mt := range probe.Matches {
			if best < 0 || mt.Distance < best {
				best = mt.Distance
			}
		}
		fmt.Printf("%s: %d match(es); best distance %.3f (threshold %.2f)\n",
			bl.name, len(m.Matches), best, bl.cfg.Threshold)
	}

	if len(matches) == 0 {
		log.Fatal("sketch method should have detected the reordered copy")
	}
	fmt.Println("\nconclusion: set similarity survives re-editing; frame-order distances do not.")
}

// Multi-stream monitoring: one query set, many concurrent broadcast
// streams — the paper's "many concurrent video streams, and for each
// stream ... many continuous video copy monitoring queries" deployment.
// Each stream gets its own Detector goroutine; all detectors share the
// subscriptions, the sketches and the Hash-Query index, so subscribing a
// query once covers every channel. The query set is also saved and
// restored, showing how a monitor restarts without re-decoding queries.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"sync"

	"vdsms"
)

func synth(seed int64, seconds float64) []byte {
	var b bytes.Buffer
	err := vdsms.Synthesize(&b, vdsms.VideoOptions{
		Seconds: seconds, FPS: 2, W: 96, H: 80, Seed: seed, GOP: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	return b.Bytes()
}

func main() {
	// Protected content: three clips under monitoring.
	queries := map[int][]byte{
		1: synth(11, 20),
		2: synth(12, 25),
		3: synth(13, 15),
	}

	cfg := vdsms.DefaultConfig()
	cfg.Delta = 0.6
	root, err := vdsms.NewDetector(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for id, c := range queries {
		if err := root.AddQuery(id, bytes.NewReader(c)); err != nil {
			log.Fatal(err)
		}
	}

	// Persist the subscriptions, then restart from disk bytes — queries
	// survive without re-decoding the clips.
	var snapshot bytes.Buffer
	if err := root.SaveQueries(&snapshot); err != nil {
		log.Fatal(err)
	}
	root, err = vdsms.LoadDetector(cfg, bytes.NewReader(snapshot.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored %d queries from a %d-byte snapshot\n",
		root.NumQueries(), snapshot.Len())

	// Four broadcast channels: channel c airs a copy of query (c%3)+1;
	// channel 3 airs nothing of interest.
	channels := make([][]byte, 4)
	for c := range channels {
		var stream bytes.Buffer
		parts := []*bytes.Reader{
			bytes.NewReader(synth(int64(100+c), 40)),
		}
		if c < 3 {
			parts = append(parts, bytes.NewReader(queries[c+1]))
		}
		parts = append(parts, bytes.NewReader(synth(int64(200+c), 40)))
		irs := make([]io.Reader, len(parts))
		for i, p := range parts {
			irs[i] = p
		}
		if err := vdsms.ComposeStream(&stream, 75, 1, irs...); err != nil {
			log.Fatal(err)
		}
		channels[c] = stream.Bytes()
	}

	// One detector goroutine per channel, all sharing the query set.
	var wg sync.WaitGroup
	type result struct {
		channel int
		matches []vdsms.Match
	}
	results := make([]result, len(channels))
	for c := range channels {
		det := root
		if c > 0 {
			det, err = root.NewStream()
			if err != nil {
				log.Fatal(err)
			}
		}
		wg.Add(1)
		go func(c int, det *vdsms.Detector) {
			defer wg.Done()
			ms, err := det.Monitor(bytes.NewReader(channels[c]))
			if err != nil {
				log.Fatal(err)
			}
			results[c] = result{channel: c, matches: ms}
		}(c, det)
	}
	wg.Wait()

	for _, r := range results {
		if len(r.matches) == 0 {
			fmt.Printf("channel %d: clean\n", r.channel)
			continue
		}
		for _, m := range r.matches {
			fmt.Printf("channel %d: query %d at %v (sim %.2f)\n",
				r.channel, m.QueryID, m.DetectedAt, m.Similarity)
		}
	}
	for c := 0; c < 3; c++ {
		if len(results[c].matches) == 0 {
			log.Fatalf("channel %d missed its copy", c)
		}
	}
	if len(results[3].matches) != 0 {
		log.Fatal("channel 3 false positive")
	}
}

// Advertisement monitoring — the paper's motivating application: an
// advertising agency verifies that its commercials were aired, complete
// and untampered, inside a broadcaster's stream, without trusting the
// broadcaster's logs.
//
// The example builds a 10-minute "broadcast" containing three ad breaks.
// Two ads are aired correctly; a third is aired with its shots re-cut
// (temporal reordering), and a fourth subscribed ad is never aired. The
// detector reports airings with timestamps, catching the re-cut copy that
// frame-order comparison would miss, and the missing airing shows up as a
// query with zero matches.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"vdsms"
)

const (
	fps  = 2.0 // key-frame rate of the broadcast
	w, h = 96, 80
)

func synth(seed int64, seconds float64) []byte {
	var b bytes.Buffer
	err := vdsms.Synthesize(&b, vdsms.VideoOptions{
		Seconds: seconds, FPS: fps, W: w, H: h, Seed: seed, GOP: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	return b.Bytes()
}

func main() {
	// The agency's ad inventory: 15–30 s spots.
	ads := map[int][]byte{
		1: synth(201, 30), // aired verbatim
		2: synth(202, 20), // aired verbatim
		3: synth(203, 25), // aired re-cut (reordered shots)
		4: synth(204, 15), // sold, paid for … never aired
	}

	// Re-cut ad 3: same material, different story line.
	var recut bytes.Buffer
	err := vdsms.ApplyEdits(&recut, bytes.NewReader(ads[3]), vdsms.EditOptions{
		ReorderSegSec: 5, Seed: 9, Quality: 75, GOP: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The broadcast: programme blocks with three ad breaks.
	var broadcast bytes.Buffer
	err = vdsms.ComposeStream(&broadcast, 75, 1,
		bytes.NewReader(synth(900, 90)),
		bytes.NewReader(ads[1]), // break 1 at 90s
		bytes.NewReader(synth(901, 120)),
		bytes.NewReader(ads[2]), // break 2 at 240s
		bytes.NewReader(synth(902, 100)),
		bytes.NewReader(recut.Bytes()), // break 3 at 360s: the re-cut spot
		bytes.NewReader(synth(903, 120)),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Monitor with a slightly relaxed threshold: re-cut copies keep the
	// same content set, so set similarity survives the re-edit.
	cfg := vdsms.DefaultConfig()
	cfg.Delta = 0.6
	det, err := vdsms.NewDetector(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for id, clip := range ads {
		if err := det.AddQuery(id, bytes.NewReader(clip)); err != nil {
			log.Fatal(err)
		}
	}

	matches, err := det.Monitor(&broadcast)
	if err != nil {
		log.Fatal(err)
	}

	// Aggregate matches into airings (first detection per ad per minute).
	type airing struct {
		at  time.Duration
		sim float64
	}
	airings := map[int][]airing{}
	for _, m := range matches {
		as := airings[m.QueryID]
		if len(as) > 0 && m.DetectedAt-as[len(as)-1].at < time.Minute {
			if m.Similarity > as[len(as)-1].sim {
				as[len(as)-1].sim = m.Similarity
			}
			continue
		}
		airings[m.QueryID] = append(as, airing{at: m.DetectedAt, sim: m.Similarity})
	}

	fmt.Println("airing report:")
	for id := 1; id <= 4; id++ {
		as := airings[id]
		if len(as) == 0 {
			fmt.Printf("  ad %d: NOT AIRED — invoice dispute material\n", id)
			continue
		}
		for _, a := range as {
			fmt.Printf("  ad %d: aired around %v (similarity %.2f)\n", id, a.at.Round(time.Second), a.sim)
		}
	}

	if len(airings[1]) == 0 || len(airings[2]) == 0 || len(airings[3]) == 0 {
		log.Fatal("expected ads 1-3 to be detected")
	}
	if len(airings[4]) != 0 {
		log.Fatal("ad 4 was never aired but matched")
	}
	st := det.Stats()
	fmt.Printf("processed %d key frames in %d windows; %.1f bit signatures in memory on average\n",
		st.Frames, st.Windows, st.AvgSignatures())
}

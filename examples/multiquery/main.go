// Many concurrent continuous queries with live subscribe/unsubscribe: a
// monitoring service tracking dozens of client videos over one stream,
// adding and dropping subscriptions while the stream flows — the workload
// the Hash-Query index of paper Section V.C exists for.
package main

import (
	"bytes"
	"fmt"
	"log"

	"vdsms"
)

func synth(seed int64, seconds float64) []byte {
	var b bytes.Buffer
	err := vdsms.Synthesize(&b, vdsms.VideoOptions{
		Seconds: seconds, FPS: 2, W: 96, H: 80, Seed: seed, GOP: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	return b.Bytes()
}

func main() {
	// 40 client videos under continuous monitoring.
	const numQueries = 40
	clips := make(map[int][]byte, numQueries)
	for id := 1; id <= numQueries; id++ {
		clips[id] = synth(int64(1000+id), 15)
	}

	cfg := vdsms.DefaultConfig()
	cfg.Delta = 0.6
	det, err := vdsms.NewDetector(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for id, c := range clips {
		if err := det.AddQuery(id, bytes.NewReader(c)); err != nil {
			log.Fatal(err)
		}
	}
	det.OnMatch = func(m vdsms.Match) {
		fmt.Printf("  live: query %d at %v (sim %.2f)\n", m.QueryID, m.DetectedAt, m.Similarity)
	}

	// Segment 1: background with copies of queries 7 and 23.
	var seg1 bytes.Buffer
	err = vdsms.ComposeStream(&seg1, 75, 1,
		bytes.NewReader(synth(2000, 40)),
		bytes.NewReader(clips[7]),
		bytes.NewReader(synth(2001, 40)),
		bytes.NewReader(clips[23]),
		bytes.NewReader(synth(2002, 30)),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("segment 1 (queries 1-40 subscribed):")
	m1, err := det.Monitor(&seg1)
	if err != nil {
		log.Fatal(err)
	}

	// Client 23 cancels; a new client 41 subscribes — all without
	// restarting the detector (online index update, Section V.C.1).
	if err := det.RemoveQuery(23); err != nil {
		log.Fatal(err)
	}
	clips[41] = synth(1041, 15)
	if err := det.AddQuery(41, bytes.NewReader(clips[41])); err != nil {
		log.Fatal(err)
	}
	fmt.Println("unsubscribed 23, subscribed 41")

	// Segment 2: copies of 23 (now unmonitored) and 41 (new).
	var seg2 bytes.Buffer
	err = vdsms.ComposeStream(&seg2, 75, 1,
		bytes.NewReader(synth(2003, 30)),
		bytes.NewReader(clips[23]),
		bytes.NewReader(synth(2004, 30)),
		bytes.NewReader(clips[41]),
		bytes.NewReader(synth(2005, 30)),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("segment 2:")
	m2, err := det.Monitor(&seg2)
	if err != nil {
		log.Fatal(err)
	}

	got := map[int]bool{}
	for _, m := range append(m1, m2...) {
		got[m.QueryID] = true
	}
	switch {
	case !got[7] || !got[41]:
		log.Fatal("expected matches for queries 7 and 41")
	case got[23] && len(m2) > 0 && anyQ(m2, 23):
		log.Fatal("query 23 matched after unsubscribe")
	}
	st := det.Stats()
	fmt.Printf("done: %d queries live, %d windows processed, %.1f signatures in memory on average\n",
		det.NumQueries(), st.Windows, st.AvgSignatures())
}

func anyQ(ms []vdsms.Match, qid int) bool {
	for _, m := range ms {
		if m.QueryID == qid {
			return true
		}
	}
	return false
}

// Checkpoint/restore for the Detector facade: periodic durable snapshots
// of the full matching state plus a frame write-ahead log, so a crashed
// monitor resumes exactly — same candidate state, same future matches —
// instead of restarting blind mid-stream.
//
// Durability protocol. Config.CheckpointDir holds two files: the current
// checkpoint (written atomically via temp-file + rename) and the WAL of
// cell ids consumed since that checkpoint. Frames are appended and synced
// to the WAL before they are pushed into the engine; checkpoints are taken
// at basic-window boundaries every Config.CheckpointEvery, immediately on
// query churn (subscriptions are not in the WAL), after a Monitor-final
// partial-window flush (a mutation frame replay alone cannot reproduce),
// and on explicit Checkpoint calls. Recovery = Resume: load the
// checkpoint, replay the WAL tail through the ordinary matching kernel,
// fold the result into a fresh checkpoint. Replay is deterministic, so the
// resumed detector behaves byte-identically to an uninterrupted run;
// match delivery is at-least-once for the WAL tail (matches the crashed
// run already reported are re-derived into Detector.Replayed).
package vdsms

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"vdsms/internal/core"
	"vdsms/internal/snapshot"
)

const (
	// CheckpointFileName is the checkpoint file inside Config.CheckpointDir.
	CheckpointFileName = "checkpoint.vckp"
	// WALFileName is the frame write-ahead log inside Config.CheckpointDir.
	WALFileName = "frames.wal"
)

// meta returns the pipeline parameters fingerprinted alongside the engine
// configuration: they shape the cell ids the engine consumes, so replaying
// a WAL under different values would silently corrupt state.
func (d *Detector) meta() snapshot.Meta {
	return snapshot.Meta{U: d.cfg.U, D: d.cfg.D, KeyFPS: d.cfg.KeyFPS}
}

// fingerprint is the compatibility stamp written into checkpoint and WAL
// headers. Workers is excluded: a checkpoint restores at any worker count.
func (d *Detector) fingerprint() uint64 {
	return d.engine.Config().Fingerprint(d.meta())
}

// CheckpointingEnabled reports whether this detector persists its state.
func (d *Detector) CheckpointingEnabled() bool { return d.cfg.CheckpointDir != "" }

// Checkpoint atomically writes the detector's complete matching state to
// the checkpoint directory and starts a fresh WAL lineage. Safe at any
// quiescent point, including mid-window. Returns an error if
// Config.CheckpointDir is unset.
func (d *Detector) Checkpoint() error {
	if !d.CheckpointingEnabled() {
		return fmt.Errorf("vdsms: checkpointing disabled (Config.CheckpointDir is empty)")
	}
	if err := os.MkdirAll(d.cfg.CheckpointDir, 0o755); err != nil {
		return fmt.Errorf("vdsms: creating checkpoint directory: %w", err)
	}
	ck := &snapshot.Checkpoint{Meta: d.meta(), Engine: *d.engine.ExportState()}
	path := filepath.Join(d.cfg.CheckpointDir, CheckpointFileName)
	err := snapshot.WriteFileAtomic(path, func(w io.Writer) error {
		return snapshot.Write(w, ck)
	})
	if err != nil {
		return fmt.Errorf("vdsms: writing checkpoint: %w", err)
	}
	// Rotate the WAL only after the checkpoint is durably in place: a crash
	// between the two leaves the new checkpoint with the old (longer) WAL,
	// whose baseFrame lets Resume skip the already-covered prefix.
	if d.wal != nil {
		if err := d.wal.Close(); err != nil {
			return fmt.Errorf("vdsms: closing WAL: %w", err)
		}
	}
	wal, err := snapshot.CreateWAL(filepath.Join(d.cfg.CheckpointDir, WALFileName),
		d.fingerprint(), ck.Engine.Frame)
	if err != nil {
		return fmt.Errorf("vdsms: rotating WAL: %w", err)
	}
	d.wal = wal
	d.lastCkpt = time.Now()
	return nil
}

// Close releases the WAL file handle. The final state is whatever the last
// Checkpoint captured plus the synced WAL tail; call Checkpoint first for
// a clean single-file handoff.
func (d *Detector) Close() error {
	if d.wal == nil {
		return nil
	}
	err := d.wal.Close()
	d.wal = nil
	return err
}

// pushLogged is Monitor's frame path with durability: log and sync the
// batch, push it, and take a periodic checkpoint at window boundaries.
func (d *Detector) pushLogged(batch []uint64) error {
	if d.CheckpointingEnabled() {
		if d.wal == nil {
			// First frames of a fresh lineage: checkpoint the current state
			// (including subscriptions) so the WAL has a base to extend.
			if err := d.Checkpoint(); err != nil {
				return err
			}
		}
		if err := d.wal.Append(batch); err != nil {
			return err
		}
		if err := d.wal.Sync(); err != nil {
			return fmt.Errorf("vdsms: syncing WAL: %w", err)
		}
	}
	d.engine.PushFrames(batch)
	if d.CheckpointingEnabled() && d.cfg.CheckpointEvery > 0 &&
		d.engine.PendingFrames() == 0 && time.Since(d.lastCkpt) >= d.cfg.CheckpointEvery {
		return d.Checkpoint()
	}
	return nil
}

// checkpointOnChurn makes a subscription change durable immediately.
func (d *Detector) checkpointOnChurn() error {
	if !d.CheckpointingEnabled() {
		return nil
	}
	return d.Checkpoint()
}

// Resume rebuilds a detector from cfg.CheckpointDir: the checkpoint is
// loaded (failing loudly on any configuration drift, with the mismatched
// fields named), the WAL tail is replayed through the ordinary matching
// kernel, and the recovered state is folded into a fresh checkpoint. The
// returned bool reports whether a checkpoint existed; with an empty or
// absent directory Resume degenerates to NewDetector plus an initial
// checkpoint. Matches re-derived during replay are in Detector.Replayed,
// not delivered via OnMatch — the crashed run already reported them
// (recovery is at-least-once over the WAL tail).
func Resume(cfg Config) (*Detector, bool, error) {
	if cfg.CheckpointDir == "" {
		return nil, false, fmt.Errorf("vdsms: Resume requires Config.CheckpointDir")
	}
	d, err := NewDetector(cfg)
	if err != nil {
		return nil, false, err
	}

	data, err := os.ReadFile(filepath.Join(cfg.CheckpointDir, CheckpointFileName))
	found := err == nil
	if err != nil && !os.IsNotExist(err) {
		return nil, false, fmt.Errorf("vdsms: reading checkpoint: %w", err)
	}
	ckFrame := 0
	if found {
		ck, err := snapshot.Read(bytes.NewReader(data))
		if err != nil {
			return nil, false, err
		}
		// Engine-level fields are diffed by RestoreEngine below; the meta
		// triple (U, D, KeyFPS) is the facade's to check.
		if err := snapshot.CompatibilityError(ck.Meta, d.meta(), ck.Engine.Config, ck.Engine.Config); err != nil {
			return nil, false, err
		}
		eng, err := core.RestoreEngine(d.engine.Config(), &ck.Engine)
		if err != nil {
			return nil, false, err
		}
		d.engine = eng
		eng.OnMatch = d.forward
		d.armSlowWindow(eng)
		d.armTrace(eng)
		d.armOverload(eng)
		d.armPerf(eng)
		ckFrame = ck.Engine.Frame
	}

	fp, base, ids, err := snapshot.ReplayWAL(filepath.Join(cfg.CheckpointDir, WALFileName))
	if err != nil {
		return nil, false, err
	}
	if len(ids) > 0 {
		if fp != d.fingerprint() {
			return nil, false, fmt.Errorf("vdsms: WAL fingerprint %016x does not match configuration fingerprint %016x (the log belongs to a different lineage)",
				fp, d.fingerprint())
		}
		// A crash between checkpoint rename and WAL rotation leaves a WAL
		// older than the checkpoint: skip the prefix the checkpoint covers.
		skip := ckFrame - base
		if skip < 0 {
			return nil, false, fmt.Errorf("vdsms: WAL begins at frame %d but checkpoint holds frame %d; frames lost",
				base, ckFrame)
		}
		if skip < len(ids) {
			d.engine.PushFrames(ids[skip:])
			for _, m := range d.engine.Matches {
				d.Replayed = append(d.Replayed, d.convert(m))
			}
		}
	}

	// Fold the replayed tail into a fresh checkpoint so the next crash
	// replays from here.
	if err := d.Checkpoint(); err != nil {
		return nil, false, err
	}
	return d, found, nil
}

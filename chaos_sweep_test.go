package vdsms

import (
	"bytes"
	"io"
	"testing"
	"time"

	"vdsms/internal/degrade/chaos"
	"vdsms/internal/mpeg"
)

// The crash/corruption sweep: every fault class the chaos injector
// produces is driven through a resync-enabled monitor, which must complete
// without error and keep its match output on the uncorrupted spans intact.

// sweepStream builds the sweep's fixed stream — 30s background, the 20s
// query verbatim, 30s background, all-intra at 2 fps — and returns the
// encoded stream plus the query clip.
func sweepStream(t *testing.T) (stream, query []byte) {
	t.Helper()
	query = clip(t, 1, 20)
	var buf bytes.Buffer
	err := ComposeStream(&buf, 80, 1,
		bytes.NewReader(clip(t, 100, 30)),
		bytes.NewReader(query),
		bytes.NewReader(clip(t, 101, 30)),
	)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), query
}

// monitorResilient runs one fresh resync-enabled detector over the stream.
func monitorResilient(t *testing.T, query []byte, stream io.Reader) ([]Match, OverloadStats) {
	t.Helper()
	cfg := testConfig()
	cfg.Resync = true
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.AddQuery(1, bytes.NewReader(query)); err != nil {
		t.Fatal(err)
	}
	matches, err := det.Monitor(stream)
	if err != nil {
		t.Fatalf("resilient Monitor errored: %v", err)
	}
	return matches, det.Overload()
}

// identicalMatches fails unless got and want are byte-identical.
func identicalMatches(t *testing.T, got, want []Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d matches, want %d (%v vs %v)", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestChaosSweep(t *testing.T) {
	stream, query := sweepStream(t)
	clean, cleanStats := monitorResilient(t, query, bytes.NewReader(stream))
	if len(clean) == 0 {
		t.Fatal("setup: clean run found no matches")
	}
	if cleanStats.CorruptFrames != 0 || cleanStats.Truncated != 0 {
		t.Fatalf("setup: clean run reported damage: %+v", cleanStats)
	}
	spans, err := mpeg.Frames(stream)
	if err != nil {
		t.Fatal(err)
	}
	// 30s of 2 fps background = frames [0,60); query occupies [60,100);
	// trailing background [100,160).
	if len(spans) != 160 {
		t.Fatalf("setup: %d frames, want 160", len(spans))
	}

	t.Run("type-byte corruption", func(t *testing.T) {
		damaged, err := chaos.New(11).SmashType(stream, 20)
		if err != nil {
			t.Fatal(err)
		}
		got, stats := monitorResilient(t, query, bytes.NewReader(damaged))
		identicalMatches(t, got, clean)
		if stats.CorruptFrames != 1 || stats.Resyncs != 0 {
			t.Fatalf("stats = %+v, want one in-place corrupt frame", stats)
		}
	})

	t.Run("payload bit flips", func(t *testing.T) {
		damaged, err := chaos.New(12).FlipPayloadBits(stream, 30, 32)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := monitorResilient(t, query, bytes.NewReader(damaged))
		identicalMatches(t, got, clean)
	})

	t.Run("length-field smash", func(t *testing.T) {
		damaged, err := chaos.New(13).SmashLength(stream, 40)
		if err != nil {
			t.Fatal(err)
		}
		got, stats := monitorResilient(t, query, bytes.NewReader(damaged))
		if stats.Resyncs == 0 || stats.SkippedBytes == 0 {
			t.Fatalf("stats = %+v, want a byte-scan resync", stats)
		}
		// A resync can shift subsequent frame indices by the frames lost in
		// the smashed span, so times are compared with slack instead of
		// byte-identically.
		if len(got) != len(clean) {
			t.Fatalf("%d matches, want %d", len(got), len(clean))
		}
		const slack = 1500 * time.Millisecond
		for i, m := range got {
			w := clean[i]
			if m.QueryID != w.QueryID {
				t.Fatalf("match %d query %d, want %d", i, m.QueryID, w.QueryID)
			}
			for _, d := range []time.Duration{m.Start - w.Start, m.End - w.End, m.DetectedAt - w.DetectedAt} {
				if d < -slack || d > slack {
					t.Fatalf("match %d drifted beyond %v: %+v vs %+v", i, slack, m, w)
				}
			}
		}
	})

	t.Run("truncation after the copy", func(t *testing.T) {
		damaged, err := chaos.New(14).Truncate(stream, 130)
		if err != nil {
			t.Fatal(err)
		}
		got, stats := monitorResilient(t, query, bytes.NewReader(damaged))
		identicalMatches(t, got, clean)
		if stats.Truncated != 1 {
			t.Fatalf("stats = %+v, want Truncated=1", stats)
		}
	})

	t.Run("stalling transport", func(t *testing.T) {
		sr := chaos.NewStallReader(bytes.NewReader(stream), 13, 4)
		got, stats := monitorResilient(t, query, sr)
		identicalMatches(t, got, clean)
		if sr.Stalls() != 4 {
			t.Fatalf("%d stalls delivered, want 4", sr.Stalls())
		}
		if stats.ReadRetries < 4 {
			t.Fatalf("stats = %+v, want ≥ 4 absorbed retries", stats)
		}
	})

	t.Run("compound damage", func(t *testing.T) {
		// Faults compose back-to-front: each transform only needs the
		// stream prefix up to its target frame to be intact.
		in := chaos.New(15)
		damaged, err := in.Truncate(stream, 140)
		if err != nil {
			t.Fatal(err)
		}
		if damaged, err = in.FlipPayloadBits(damaged, 110, 24); err != nil {
			t.Fatal(err)
		}
		if damaged, err = in.SmashType(damaged, 15); err != nil {
			t.Fatal(err)
		}
		sr := chaos.NewStallReader(bytes.NewReader(damaged), 29, 3)
		got, stats := monitorResilient(t, query, sr)
		identicalMatches(t, got, clean)
		if stats.CorruptFrames == 0 || stats.Truncated != 1 {
			t.Fatalf("stats = %+v, want corruption and truncation absorbed", stats)
		}
	})
}

// TestChaosStrictModeStillErrors pins the default behaviour: without
// Config.Resync, corruption surfaces as an error (no silent resilience).
func TestChaosStrictModeStillErrors(t *testing.T) {
	stream, query := sweepStream(t)
	damaged, err := chaos.New(16).SmashType(stream, 20)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := det.AddQuery(1, bytes.NewReader(query)); err != nil {
		t.Fatal(err)
	}
	if _, err := det.Monitor(bytes.NewReader(damaged)); err == nil {
		t.Fatal("strict monitor consumed a corrupt stream without error")
	}
}

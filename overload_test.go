package vdsms

import (
	"bytes"
	"context"
	"io"
	"runtime"
	"testing"
	"time"
)

// overloadConfig is the facade test config for shedding: 1-second windows
// (2 key frames each) so a modest stream produces enough windows for the
// controller's hysteresis to play out.
func overloadConfig() Config {
	cfg := testConfig()
	cfg.WindowSec = 1
	return cfg
}

func TestOverloadShedsUnderImpossibleBudget(t *testing.T) {
	cfg := overloadConfig()
	cfg.RealTimeBudget = time.Nanosecond // every window breaches
	cfg.Shed = true
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.AddQuery(1, bytes.NewReader(clip(t, 1, 10))); err != nil {
		t.Fatal(err)
	}
	if _, err := det.Monitor(bytes.NewReader(clip(t, 50, 120))); err != nil {
		t.Fatal(err)
	}
	o := det.Overload()
	if !o.Armed {
		t.Fatal("controller not armed")
	}
	if o.Level < 1 {
		t.Fatalf("shed level %d after 120 windows over an impossible budget, want ≥ 1", o.Level)
	}
	if o.ShedWindows == 0 || o.Transitions == 0 {
		t.Fatalf("overload stats = %+v, want shed windows and transitions", o)
	}
	if o.ExtractShed == 0 {
		t.Fatalf("overload stats = %+v, want extract sheds at level ≥ 1", o)
	}
	if det.ShedLevel() != o.Level {
		t.Fatalf("ShedLevel() = %d, Overload().Level = %d", det.ShedLevel(), o.Level)
	}
}

func TestOverloadObserveOnlyWithoutShed(t *testing.T) {
	cfg := overloadConfig()
	cfg.RealTimeBudget = time.Nanosecond
	cfg.Shed = false // observe-only: the level rises but no work is dropped
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.AddQuery(1, bytes.NewReader(clip(t, 1, 10))); err != nil {
		t.Fatal(err)
	}
	stream := clip(t, 51, 120)
	got, err := det.Monitor(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	o := det.Overload()
	if o.Level < 1 {
		t.Fatalf("observe-only level %d, want ≥ 1", o.Level)
	}
	if o.ExtractShed != 0 || o.DecodeShed != 0 {
		t.Fatalf("observe-only mode shed work: %+v", o)
	}

	// Output is identical to a detector with no controller at all.
	base, err := NewDetector(overloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := base.AddQuery(1, bytes.NewReader(clip(t, 1, 10))); err != nil {
		t.Fatal(err)
	}
	want, err := base.Monitor(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	identicalMatches(t, got, want)
}

func TestOverloadGenerousBudgetShedsNothing(t *testing.T) {
	cfg := overloadConfig()
	cfg.RealTimeBudget = time.Hour
	cfg.Shed = true
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	query := clip(t, 1, 10)
	if err := det.AddQuery(1, bytes.NewReader(query)); err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	if err := ComposeStream(&stream, 80, 1,
		bytes.NewReader(clip(t, 60, 20)), bytes.NewReader(query), bytes.NewReader(clip(t, 61, 20)),
	); err != nil {
		t.Fatal(err)
	}
	streamBytes := stream.Bytes()
	got, err := det.Monitor(bytes.NewReader(streamBytes))
	if err != nil {
		t.Fatal(err)
	}
	o := det.Overload()
	if o.Level != 0 || o.ExtractShed != 0 || o.DecodeShed != 0 {
		t.Fatalf("generous budget still shed: %+v", o)
	}
	if o.Observed == 0 || o.RunP99 == 0 {
		t.Fatalf("controller observed nothing: %+v", o)
	}

	// Shed machinery at level 0 must not perturb matching.
	base, err := NewDetector(overloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := base.AddQuery(1, bytes.NewReader(query)); err != nil {
		t.Fatal(err)
	}
	want, err := base.Monitor(bytes.NewReader(streamBytes))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("setup: baseline found no matches")
	}
	identicalMatches(t, got, want)
}

func TestSetRealTimeBudgetArmsAndRetunes(t *testing.T) {
	det, err := NewDetector(overloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	if det.RealTimeBudget() != 0 || det.ShedLevel() != 0 {
		t.Fatal("unarmed detector reports a budget or level")
	}
	if o := det.Overload(); o.Armed {
		t.Fatal("unarmed detector reports Armed")
	}
	det.SetRealTimeBudget(50 * time.Millisecond)
	if det.RealTimeBudget() != 50*time.Millisecond {
		t.Fatalf("RealTimeBudget() = %v after arming", det.RealTimeBudget())
	}
	det.SetRealTimeBudget(time.Second)
	if det.RealTimeBudget() != time.Second {
		t.Fatalf("RealTimeBudget() = %v after retune", det.RealTimeBudget())
	}
	// Streams created from an armed detector share its controller.
	sib, err := det.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	det.SetRealTimeBudget(2 * time.Second)
	if sib.RealTimeBudget() != 2*time.Second {
		t.Fatalf("sibling budget %v, want the lineage's 2s", sib.RealTimeBudget())
	}
}

// cancelAfterReader cancels ctx once n bytes have been served, then keeps
// serving — the cancellation is observed by MonitorContext's reader wrapper
// at the next read.
type cancelAfterReader struct {
	r      io.Reader
	n      int
	served int
	cancel context.CancelFunc
}

func (c *cancelAfterReader) Read(p []byte) (int, error) {
	m, err := c.r.Read(p)
	c.served += m
	if c.served >= c.n && c.cancel != nil {
		c.cancel()
		c.cancel = nil
	}
	return m, err
}

// TestMonitorContextCancelMidShed cancels a checkpointing monitor while the
// controller is shedding: the call must return promptly with ctx.Err(), no
// goroutines may leak, a final checkpoint must land, and a resumed lineage
// starts back at shed level 0.
func TestMonitorContextCancelMidShed(t *testing.T) {
	cfg := overloadConfig()
	cfg.RealTimeBudget = time.Nanosecond
	cfg.Shed = true
	cfg.Resync = true
	cfg.Workers = 2
	cfg.CheckpointDir = t.TempDir()
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.AddQuery(1, bytes.NewReader(clip(t, 1, 10))); err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	stream := clip(t, 70, 240)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel two thirds in: far enough for the controller to escalate.
	_, err = det.MonitorContext(ctx, &cancelAfterReader{
		r: bytes.NewReader(stream), n: len(stream) * 2 / 3, cancel: cancel,
	})
	if err != context.Canceled {
		t.Fatalf("MonitorContext returned %v, want context.Canceled", err)
	}
	if det.ShedLevel() < 1 {
		t.Fatalf("shed level %d at cancellation, want ≥ 1 (test must cancel mid-shed)", det.ShedLevel())
	}
	if det.Overload().ExtractShed == 0 {
		t.Fatal("nothing was shed before cancellation")
	}
	if err := det.Close(); err != nil {
		t.Fatal(err)
	}

	// No goroutine leak: the worker pool and monitor plumbing wind down.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("%d goroutines after cancel+close, started with %d", now, before)
	}

	// The final checkpoint covers the cancellation point, and the resumed
	// lineage starts with a fresh controller at level 0.
	res, found, err := Resume(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("no checkpoint found after cancelled monitor")
	}
	defer res.Close()
	if res.Stats().Frames == 0 {
		t.Fatal("resumed detector recovered no frames")
	}
	if res.ShedLevel() != 0 {
		t.Fatalf("resumed shed level %d, want reset to 0", res.ShedLevel())
	}
	if o := res.Overload(); !o.Armed || o.Budget != cfg.RealTimeBudget {
		t.Fatalf("resumed overload state %+v, want armed with the configured budget", o)
	}
}

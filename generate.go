package vdsms

import (
	"fmt"
	"io"

	"vdsms/internal/edit"
	"vdsms/internal/mpeg"
	"vdsms/internal/vframe"
)

// VideoOptions parameterises synthetic video generation.
type VideoOptions struct {
	// Seconds is the clip duration (default 10).
	Seconds float64
	// FPS is the frame rate (default 30).
	FPS float64
	// W, H are the dimensions, multiples of 16 (default 176×144).
	W, H int
	// Seed determines the content; distinct seeds yield distinct videos.
	Seed int64
	// Quality is the encoder quality 1..100 (default 75).
	Quality int
	// GOP is the I-frame interval (default 15).
	GOP int
	// SceneCutSAD, when positive, enables content-adaptive I-frames: shot
	// boundaries are promoted to key frames even mid-GOP (typical values
	// 8–25). Zero disables.
	SceneCutSAD float64
	// DisableMC turns off motion compensation (zero-motion prediction),
	// for codec ablation.
	DisableMC bool
}

func (o *VideoOptions) defaults() {
	if o.Seconds == 0 {
		o.Seconds = 10
	}
	if o.FPS == 0 {
		o.FPS = 30
	}
	if o.W == 0 {
		o.W = 176
	}
	if o.H == 0 {
		o.H = 144
	}
	if o.Quality == 0 {
		o.Quality = 75
	}
	if o.GOP == 0 {
		o.GOP = 15
	}
}

func (o VideoOptions) source() vframe.Source {
	n := int(o.Seconds * o.FPS)
	if n < 1 {
		n = 1
	}
	return vframe.NewSynth(vframe.SynthConfig{
		W: o.W, H: o.H, FPS: o.FPS, NumFrames: n, Seed: o.Seed,
	})
}

// Synthesize writes a deterministic synthetic video as an encoded MVC1
// stream, so examples and tests run without any real video assets.
func Synthesize(w io.Writer, o VideoOptions) error {
	o.defaults()
	src := o.source()
	num, den := uint32(o.FPS), uint32(1)
	if o.FPS != float64(int(o.FPS)) {
		num, den = uint32(o.FPS*1000), 1000
	}
	enc, err := mpeg.NewEncoder(w, mpeg.StreamHeader{
		W: o.W, H: o.H, FPSNum: num, FPSDen: den, Quality: o.Quality, GOP: o.GOP,
	})
	if err != nil {
		return err
	}
	enc.SceneCutSAD = o.SceneCutSAD
	enc.DisableMC = o.DisableMC
	for i := 0; i < src.Len(); i++ {
		if _, err := enc.WriteFrame(src.Frame(i)); err != nil {
			return fmt.Errorf("vdsms: encoding frame %d: %w", i, err)
		}
	}
	return nil
}

// EditOptions describes a copy-manufacturing attack: photometric edits,
// noise, resolution and frame-rate changes, and temporal segment
// reordering. Zero fields leave the corresponding property unchanged.
type EditOptions struct {
	// Brightness is added to luma (e.g. ±20..60).
	Brightness float64
	// Contrast scales luma around mid-grey (1 = unchanged).
	Contrast float64
	// NoiseAmp adds uniform luma noise of the given amplitude.
	NoiseAmp float64
	// ColorShift offsets both chroma planes.
	ColorShift float64
	// TargetW/TargetH rescale frames (multiples of 16).
	TargetW, TargetH int
	// TargetFPS resamples the frame rate.
	TargetFPS float64
	// ReorderSegSec, when positive, shuffles segments of this duration —
	// the temporal re-editing attack the paper targets.
	ReorderSegSec float64
	// Seed drives noise and reordering determinism.
	Seed int64
	// Quality and GOP control the re-encode (defaults 75 and 15).
	Quality, GOP int
}

// ApplyEdits decodes an MVC1 clip from src, applies the attack, and
// re-encodes the result to dst. The clip is materialised in memory, so use
// this on clips, not long streams.
func ApplyEdits(dst io.Writer, src io.Reader, o EditOptions) error {
	frames, hdr, err := mpeg.DecodeAll(src)
	if err != nil {
		return fmt.Errorf("vdsms: decoding clip: %w", err)
	}
	if len(frames) == 0 {
		return fmt.Errorf("vdsms: empty clip")
	}
	if o.Quality == 0 {
		o.Quality = 75
	}
	if o.GOP == 0 {
		o.GOP = 15
	}
	var out vframe.Source = vframe.FromFrames(frames, hdr.FPS())
	a := edit.Attack{
		BrightnessDelta: o.Brightness,
		ContrastFactor:  o.Contrast,
		CbShift:         o.ColorShift,
		CrShift:         o.ColorShift,
		NoiseAmp:        o.NoiseAmp,
		NoiseSeed:       o.Seed,
		TargetW:         o.TargetW,
		TargetH:         o.TargetH,
		TargetFPS:       o.TargetFPS,
		ReorderSeed:     o.Seed * 17,
	}
	if o.ReorderSegSec > 0 {
		fps := out.FPS()
		if o.TargetFPS > 0 {
			fps = o.TargetFPS
		}
		a.SegmentFrames = int(o.ReorderSegSec * fps)
		if a.SegmentFrames < 1 {
			a.SegmentFrames = 1
		}
	}
	out = a.Apply(out)
	if _, err := mpeg.EncodeSource(dst, out, o.Quality, o.GOP); err != nil {
		return fmt.Errorf("vdsms: re-encoding clip: %w", err)
	}
	return nil
}

// ComposeStream concatenates encoded MVC1 clips into one stream encoded
// with the given quality and GOP. All clips must share dimensions; frame
// rates are taken from the first clip (clips are assumed rate-conformed —
// use ApplyEdits with TargetFPS first if they are not). Decoding and
// re-encoding happen clip by clip, so memory stays bounded by one clip.
func ComposeStream(dst io.Writer, quality, gop int, clips ...io.Reader) error {
	if len(clips) == 0 {
		return fmt.Errorf("vdsms: no clips")
	}
	var enc *mpeg.Encoder
	for i, clip := range clips {
		dec, err := mpeg.NewDecoder(clip)
		if err != nil {
			return fmt.Errorf("vdsms: clip %d: %w", i, err)
		}
		h := dec.Header()
		if enc == nil {
			enc, err = mpeg.NewEncoder(dst, mpeg.StreamHeader{
				W: h.W, H: h.H, FPSNum: h.FPSNum, FPSDen: h.FPSDen,
				Quality: quality, GOP: gop,
			})
			if err != nil {
				return err
			}
		} else if h.W != enc.Header().W || h.H != enc.Header().H {
			return fmt.Errorf("vdsms: clip %d geometry %dx%d differs from stream %dx%d",
				i, h.W, h.H, enc.Header().W, enc.Header().H)
		}
		for {
			f, _, err := dec.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return fmt.Errorf("vdsms: clip %d: %w", i, err)
			}
			if _, err := enc.WriteFrame(f); err != nil {
				return err
			}
		}
	}
	return nil
}

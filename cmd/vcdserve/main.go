// Command vcdserve runs the copy-detection HTTP service.
//
//	vcdserve [-addr :8654] [-delta 0.7] [-k 800] [-window 5] [-keyfps 2] [-workers 0]
//	         [-checkpoint-dir state/] [-checkpoint-every 30s]
//
// Endpoints:
//
//	PUT    /queries/{id}    body: MVC1 clip   subscribe a query video
//	DELETE /queries/{id}                      unsubscribe
//	GET    /queries                           subscription count
//	POST   /streams/{name}  body: MVC1 stream monitor; matches stream back as NDJSON
//	POST   /streams         {"id": "..."}     attach a long-lived fleet stream
//	POST   /streams/{id}/frames               push an MVC1 segment to an attached stream
//	GET    /streams/{id}/stats                per-stream counters
//	DELETE /streams/{id}                      detach an attached stream
//	GET    /stats                             service counters (incl. per-shard work)
//	GET    /metrics                           Prometheus text exposition
//	GET    /healthz                           liveness probe
//	GET    /readyz                            readiness probe (200 once restored; 503 at max shed level)
//	POST   /snapshot                          checkpoint service state now
//	GET    /debug/events                      lifecycle event journal (arm with -trace-events)
//	GET    /debug/matches[/{id}]              match provenance (explain) records
//	GET/POST /debug/slow-window               read / retune the slow-window budget live
//	GET/POST /debug/spans                     sampled perf spans (NDJSON) / retune sampling live
//	GET    /debug/fleet/top                   slowest / most-shed / most-backpressured streams
//	/debug/pprof/*                            profiling, only with -pprof
//
// With -checkpoint-dir the service persists its subscription state: it
// restores from an existing checkpoint on boot, checkpoints on every
// subscription change and on POST /snapshot, and on SIGINT/SIGTERM drains
// in-flight streams, writes a final checkpoint and exits 0.
//
// With -real-time-budget every stream feeds one shared overload control
// loop; adding -shed lets the service drop low-information work under
// sustained overload instead of falling behind, GET /stats grows a "shed"
// block, and GET /readyz reports 503 while shedding at the maximum level
// so load balancers route new streams elsewhere. With -resync, corrupt or
// truncated uploads are resynchronised rather than failing the POST.
//
// Example session (with vcdgen-produced files):
//
//	curl -X PUT --data-binary @ad.mvc     localhost:8654/queries/1
//	curl -X POST --data-binary @feed.mvc  localhost:8654/streams/channel-4
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vdsms"
	"vdsms/internal/buildinfo"
	"vdsms/internal/server"
	"vdsms/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8654", "listen address")
	delta := flag.Float64("delta", 0.7, "similarity threshold δ")
	k := flag.Int("k", 800, "number of min-hash functions")
	window := flag.Float64("window", 5, "basic window (seconds)")
	keyFPS := flag.Float64("keyfps", 2, "expected key-frame rate of monitored streams")
	workers := flag.Int("workers", 0, "matching workers per stream window (0 = inline serial kernel)")
	preFilter := flag.Bool("prefilter", false, "enable the blocked-Bloom pre-filter tier in front of the Hash-Query index (large query counts; output-identical)")
	ckptDir := flag.String("checkpoint-dir", "", "persist service state in this directory (restore on boot)")
	ckptEvery := flag.Duration("checkpoint-every", 30*time.Second, "minimum interval between periodic checkpoints")
	drain := flag.Duration("drain", 30*time.Second, "in-flight stream drain timeout on shutdown")
	rtBudget := flag.Duration("real-time-budget", 0, "per-window ingest latency budget shared by all streams; breaching p99 raises the shed level and /readyz degrades at the maximum (0 = off)")
	shed := flag.Bool("shed", false, "allow the overload controller to actually shed work (without it the budget is observe-only)")
	resync := flag.Bool("resync", false, "tolerate corrupt or truncated uploaded streams: resynchronise and keep monitoring instead of failing the POST")
	pprof := flag.Bool("pprof", false, "mount net/http/pprof profiling handlers under /debug/pprof/")
	fleetWorkers := flag.Int("fleet-workers", 0, "workers for the attached-stream fleet pool (0 = GOMAXPROCS)")
	fleetMaxStreams := flag.Int("fleet-max-streams", 0, "admission limit for attached fleet streams (0 = unlimited)")
	fleetQueue := flag.Int("fleet-queue-windows", 0, "per-stream fleet queue budget in basic windows (0 = default 8)")
	traceEvents := flag.Int("trace-events", 0, "arm decision-provenance tracing with an event journal of this capacity (0 = off)")
	auditFraction := flag.Float64("audit-fraction", 0, "exact-audit this fraction of report/prune decisions against Theorem 1's bound (implies tracing; 0 = off)")
	traceLog := flag.Bool("trace-log", false, "emit journaled lifecycle events as structured JSON logs on stderr (requires tracing)")
	spanSample := flag.Float64("span-sample", 0, "fraction of basic windows captured as perf spans, across all streams (0 = off, 1 = every window; retune live via POST /debug/spans)")
	spanLog := flag.String("span-log", "", "append sampled perf spans as JSON lines to this file (\"-\" = stderr)")
	profileDir := flag.String("profile-dir", "", "capture periodic CPU+heap profiles into a bounded file ring in this directory")
	profileEvery := flag.Duration("profile-every", time.Minute, "interval between continuous profile captures (with -profile-dir)")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("vcdserve"))
		return
	}
	buildinfo.Metric()

	cfg := vdsms.DefaultConfig()
	cfg.Delta = *delta
	cfg.K = *k
	cfg.WindowSec = *window
	cfg.KeyFPS = *keyFPS
	cfg.Workers = *workers
	cfg.PreFilter = *preFilter
	cfg.CheckpointDir = *ckptDir
	cfg.CheckpointEvery = *ckptEvery
	cfg.RealTimeBudget = *rtBudget
	cfg.Shed = *shed
	cfg.Resync = *resync
	cfg.TraceEvents = *traceEvents
	cfg.AuditFraction = *auditFraction
	cfg.StreamName = "root"

	if *traceLog {
		if *traceEvents <= 0 && *auditFraction <= 0 {
			fmt.Fprintln(os.Stderr, "vcdserve: -trace-log requires -trace-events or -audit-fraction")
			os.Exit(2)
		}
		logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
		stopLog := trace.LogEvents(trace.Default, logger)
		defer stopLog()
	}

	if *spanSample > 0 {
		vdsms.SetSpanSampling(*spanSample)
		vdsms.SetAllocSampling(16)
	}
	if *spanLog != "" {
		out := io.Writer(os.Stderr)
		if *spanLog != "-" {
			f, err := os.OpenFile(*spanLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vcdserve:", err)
				os.Exit(1)
			}
			bw := bufio.NewWriter(f)
			defer func() { bw.Flush(); f.Close() }()
			out = bw
		}
		vdsms.SetSpanLog(out)
	}
	if *profileDir != "" {
		prof, err := vdsms.StartProfiler(*profileDir, *profileEvery, 4)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vcdserve:", err)
			os.Exit(1)
		}
		defer prof.Stop()
	}

	srv, err := server.NewWithOptions(cfg, server.Options{
		EnablePprof: *pprof,
		Fleet: vdsms.FleetConfig{
			Workers:      *fleetWorkers,
			MaxStreams:   *fleetMaxStreams,
			QueueWindows: *fleetQueue,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vcdserve:", err)
		os.Exit(1)
	}
	if srv.Restored() {
		log.Printf("restored %d queries from checkpoint in %s", srv.NumQueries(), *ckptDir)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("vcdserve listening on %s (K=%d δ=%.2f w=%.0fs)", *addr, cfg.K, cfg.Delta, cfg.WindowSec)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, drain in-flight streams, persist.
	log.Printf("shutting down: draining in-flight streams (up to %s)", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("vcdserve: shutdown: %v", err)
	}
	if *ckptDir != "" {
		if err := srv.Checkpoint(); err != nil {
			log.Printf("vcdserve: final checkpoint: %v", err)
			os.Exit(1)
		}
		log.Printf("final checkpoint written to %s", *ckptDir)
	}
}

// Command vcdserve runs the copy-detection HTTP service.
//
//	vcdserve [-addr :8654] [-delta 0.7] [-k 800] [-window 5] [-keyfps 2] [-workers 0]
//
// Endpoints:
//
//	PUT    /queries/{id}    body: MVC1 clip   subscribe a query video
//	DELETE /queries/{id}                      unsubscribe
//	GET    /queries                           subscription count
//	POST   /streams/{name}  body: MVC1 stream monitor; matches stream back as NDJSON
//	GET    /stats                             service counters
//
// Example session (with vcdgen-produced files):
//
//	curl -X PUT --data-binary @ad.mvc     localhost:8654/queries/1
//	curl -X POST --data-binary @feed.mvc  localhost:8654/streams/channel-4
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"vdsms"
	"vdsms/internal/server"
)

func main() {
	addr := flag.String("addr", ":8654", "listen address")
	delta := flag.Float64("delta", 0.7, "similarity threshold δ")
	k := flag.Int("k", 800, "number of min-hash functions")
	window := flag.Float64("window", 5, "basic window (seconds)")
	keyFPS := flag.Float64("keyfps", 2, "expected key-frame rate of monitored streams")
	workers := flag.Int("workers", 0, "matching workers per stream window (0 = inline serial kernel)")
	flag.Parse()

	cfg := vdsms.DefaultConfig()
	cfg.Delta = *delta
	cfg.K = *k
	cfg.WindowSec = *window
	cfg.KeyFPS = *keyFPS
	cfg.Workers = *workers

	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vcdserve:", err)
		os.Exit(1)
	}
	log.Printf("vcdserve listening on %s (K=%d δ=%.2f w=%.0fs)", *addr, cfg.K, cfg.Delta, cfg.WindowSec)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatal(err)
	}
}

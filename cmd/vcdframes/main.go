// Command vcdframes exports frames of an MVC1 video as PNG images, for
// visual inspection of synthetic content, editing attacks and codec
// quality.
//
//	vcdframes -in video.mvc -out dir/ [-every 15] [-max 50]
//
// Frames are written as dir/frame-NNNNNN.png; -every N keeps every N-th
// frame (default: key frames only would need decoding anyway, so all
// frames are decoded and the stride applies to frame indices).
package main

import (
	"flag"
	"fmt"
	"image/png"
	"io"
	"os"
	"path/filepath"

	"vdsms/internal/buildinfo"
	"vdsms/internal/mpeg"
	"vdsms/internal/vframe"
)

func main() {
	in := flag.String("in", "", "input MVC1 file (required)")
	out := flag.String("out", "", "output directory (required)")
	every := flag.Int("every", 1, "export every N-th frame")
	max := flag.Int("max", 0, "stop after this many exported frames (0 = all)")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("vcdframes"))
		return
	}
	if *in == "" || *out == "" || *every < 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *out, *every, *max); err != nil {
		fmt.Fprintln(os.Stderr, "vcdframes:", err)
		os.Exit(1)
	}
}

func run(in, out string, every, max int) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	dec, err := mpeg.NewDecoder(f)
	if err != nil {
		return err
	}
	exported := 0
	for {
		frame, info, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if info.Index%every != 0 {
			continue
		}
		name := filepath.Join(out, fmt.Sprintf("frame-%06d.png", info.Index))
		g, err := os.Create(name)
		if err != nil {
			return err
		}
		err = png.Encode(g, vframe.ToImage(frame))
		if cerr := g.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		exported++
		if max > 0 && exported >= max {
			break
		}
	}
	fmt.Printf("exported %d frames to %s\n", exported, out)
	return nil
}

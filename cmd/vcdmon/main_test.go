package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"vdsms"
)

func writeClip(t *testing.T, dir, name string, seed int64) string {
	t.Helper()
	var buf bytes.Buffer
	err := vdsms.Synthesize(&buf, vdsms.VideoOptions{
		Seconds: 8, FPS: 2, W: 96, H: 80, Seed: seed, Quality: 80, GOP: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSubscribeQueriesSkipsBadPaths: a missing file and an undecodable
// clip are logged and skipped; the remaining queries still subscribe.
func TestSubscribeQueriesSkipsBadPaths(t *testing.T) {
	dir := t.TempDir()
	good1 := writeClip(t, dir, "a.mvc", 1)
	good2 := writeClip(t, dir, "b.mvc", 2)
	garbage := filepath.Join(dir, "garbage.mvc")
	if err := os.WriteFile(garbage, []byte("not a video"), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := vdsms.DefaultConfig()
	cfg.K = 400
	det, err := vdsms.NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	loaded, skipped := subscribeQueries(det, []string{
		good1,
		filepath.Join(dir, "missing.mvc"),
		garbage,
		"7=" + good2,
	})
	if loaded != 2 {
		t.Fatalf("loaded %d queries, want 2", loaded)
	}
	if skipped != 2 {
		t.Fatalf("skipped %d specs, want 2 (missing file + garbage)", skipped)
	}
	if n := det.NumQueries(); n != 2 {
		t.Fatalf("detector holds %d queries, want 2", n)
	}
	ids := det.QueryIDs()
	have := map[int]bool{}
	for _, id := range ids {
		have[id] = true
	}
	if !have[1] || !have[7] {
		t.Fatalf("subscribed ids %v, want {1, 7}", ids)
	}
}

// TestSubscribeQueriesSkipsRestoredIDs: a spec whose id is already
// subscribed (e.g. restored from a checkpoint) is not re-added.
func TestSubscribeQueriesSkipsRestoredIDs(t *testing.T) {
	dir := t.TempDir()
	a := writeClip(t, dir, "a.mvc", 3)
	b := writeClip(t, dir, "b.mvc", 4)

	cfg := vdsms.DefaultConfig()
	cfg.K = 400
	det, err := vdsms.NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.AddQuery(1, f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	loaded, skipped := subscribeQueries(det, []string{"1=" + b})
	if loaded != 0 {
		t.Fatalf("loaded %d queries over an existing id, want 0", loaded)
	}
	if skipped != 0 {
		t.Fatalf("restored-id duplicate counted as skipped (%d), want 0", skipped)
	}
	if n := det.NumQueries(); n != 1 {
		t.Fatalf("detector holds %d queries, want 1", n)
	}
}

// TestSubscribeQueriesAllBad: nothing loads, nothing subscribed — the
// caller's zero-queries check then aborts the run.
func TestSubscribeQueriesAllBad(t *testing.T) {
	cfg := vdsms.DefaultConfig()
	cfg.K = 400
	det, err := vdsms.NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	loaded, skipped := subscribeQueries(det, []string{"/nonexistent/x.mvc", "/nonexistent/y.mvc"})
	if loaded != 0 {
		t.Fatalf("loaded %d, want 0", loaded)
	}
	if skipped != 2 {
		t.Fatalf("skipped %d, want 2", skipped)
	}
	if det.NumQueries() != 0 {
		t.Fatalf("detector holds %d queries, want 0", det.NumQueries())
	}
}

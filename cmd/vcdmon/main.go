// Command vcdmon continuously monitors an MVC1 video stream for copies of
// query videos, printing one line per detected match.
//
// Usage:
//
//	vcdmon [-delta 0.7] [-k 800] [-window 5] -q query1.mvc [-q query2.mvc ...] stream.mvc
//	... | vcdmon -q query.mvc -            # read the stream from stdin
//
// Query ids are assigned in flag order starting at 1; pass "id=path" to
// choose explicit ids (e.g. -q 7=ad.mvc). Matches are printed as:
//
//	MATCH query=<id> at=<sec> start=<sec> end=<sec> sim=<value>
//
// With -checkpoint-dir the monitor journals every frame and periodically
// checkpoints its full matching state; after a crash, rerunning with
// -resume restores that state, replays the frame log, and continues the
// stream exactly where it left off (replayed matches are reported with a
// REPLAY prefix — the crashed run may already have printed them).
//
// With -metrics-addr the monitor serves Prometheus metrics (GET /metrics)
// on a side listener while it runs; set TELEMETRY_SLOW_WINDOW=budget to
// also log any basic window that processes slower than real time.
//
// With -real-time-budget the overload controller watches per-window ingest
// latency against the budget; adding -shed lets it drop low-information
// work (cheap cell-id substitution, skipped entropy decodes) under
// sustained overload and recover when the load clears. With -resync,
// corrupt or truncated streams are resynchronised instead of aborting the
// monitor. Both report what they absorbed on exit and via /metrics.
//
// Bad -q paths are logged and skipped, not fatal — the run aborts only if
// no query loads at all.
//
// With -explain every candidate-lifecycle decision is journaled and every
// MATCH line is followed by an EXPLAIN line: the per-window estimate
// trajectory that crossed δ, the combination order and signature method,
// and an exact-Jaccard audit of the reported similarity against Theorem
// 1's deviation bound. A final stderr line counts the decisions that never
// became matches (prunes, drops, expiries, near misses).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"vdsms"
	"vdsms/internal/buildinfo"
	"vdsms/internal/perfobs"
	"vdsms/internal/telemetry"
)

// The single-stream monitor publishes the same fleet-ready stream gauges
// as vcdserve, so one dashboard covers a lone vcdmon and a full fleet
// alike: vcd_streams_active is 1 while the monitor runs, and rejected
// counts queries that were skipped as unloadable.
var (
	telStreamsActive = telemetry.Default.Gauge("vcd_streams_active",
		"Streams currently being monitored.")
	telStreamsRejected = telemetry.Default.Counter("vcd_streams_rejected_total",
		"Stream or query inputs rejected (bad paths, undecodable clips).")
)

// serveMetrics exposes the process-wide telemetry registry at
// addr/metrics in the background, so a long-running monitor can be
// scraped while it works.
func serveMetrics(tool, addr string) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", telemetry.Handler(telemetry.Default))
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			fmt.Fprintf(os.Stderr, "%s: metrics server: %v\n", tool, err)
		}
	}()
}

// queryFlags accumulates repeated -q flags.
type queryFlags []string

func (q *queryFlags) String() string     { return strings.Join(*q, ",") }
func (q *queryFlags) Set(v string) error { *q = append(*q, v); return nil }

func main() {
	var qs queryFlags
	delta := flag.Float64("delta", 0.7, "similarity threshold δ")
	k := flag.Int("k", 800, "number of min-hash functions")
	window := flag.Float64("window", 5, "basic window (seconds)")
	keyFPS := flag.Float64("keyfps", 2, "expected key-frame rate of the stream")
	loadSet := flag.String("load-queries", "", "restore subscriptions from a saved query set")
	saveSet := flag.String("save-queries", "", "after subscribing, save the query set to this file")
	archiveDir := flag.String("archive-dir", "", "save matched stream segments as clips in this directory")
	archiveSec := flag.Float64("archive-sec", 120, "seconds of stream retained for archiving")
	workers := flag.Int("workers", 0, "matching workers per window (0 = inline serial kernel)")
	preFilter := flag.Bool("prefilter", false, "enable the blocked-Bloom pre-filter tier in front of the Hash-Query index (large query counts; output-identical)")
	ckptDir := flag.String("checkpoint-dir", "", "journal frames and checkpoint matching state in this directory")
	ckptEvery := flag.Duration("checkpoint-every", 10*time.Second, "minimum interval between periodic checkpoints")
	resume := flag.Bool("resume", false, "restore state from -checkpoint-dir and replay the frame log before monitoring")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics on this address while monitoring (e.g. :8655)")
	rtBudget := flag.Duration("real-time-budget", 0, "per-window ingest latency budget; when the p99 breaches, load is shed to recover (0 = off)")
	shed := flag.Bool("shed", false, "allow the overload controller to actually shed work (without it the budget is observe-only)")
	resync := flag.Bool("resync", false, "tolerate corrupt or truncated streams: resynchronise and keep monitoring instead of erroring")
	explain := flag.Bool("explain", false, "trace candidate lifecycles and print an EXPLAIN line (trajectory, audit) per match")
	spanSample := flag.Float64("span-sample", 0, "fraction of basic windows captured as perf spans (0 = off, 1 = every window; -explain implies 1)")
	spanLog := flag.String("span-log", "", "append sampled perf spans as JSON lines to this file (\"-\" = stderr)")
	profileDir := flag.String("profile-dir", "", "capture periodic CPU+heap profiles into a bounded file ring in this directory")
	profileEvery := flag.Duration("profile-every", time.Minute, "interval between continuous profile captures (with -profile-dir)")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Var(&qs, "q", "query clip path, or id=path (repeatable)")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("vcdmon"))
		return
	}
	buildinfo.Metric()

	if *metricsAddr != "" {
		serveMetrics("vcdmon", *metricsAddr)
	}

	// -explain is a request for the full story of a run; include the
	// per-stage latency breakdown by sampling every window's span.
	if *explain && *spanSample == 0 {
		*spanSample = 1
	}
	if *spanSample > 0 {
		vdsms.SetSpanSampling(*spanSample)
		vdsms.SetAllocSampling(16)
	}
	if *spanLog != "" {
		out := io.Writer(os.Stderr)
		if *spanLog != "-" {
			f, err := os.OpenFile(*spanLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fatal(err)
			}
			bw := bufio.NewWriter(f)
			defer func() { bw.Flush(); f.Close() }()
			out = bw
		}
		vdsms.SetSpanLog(out)
	}
	if *profileDir != "" {
		prof, err := vdsms.StartProfiler(*profileDir, *profileEvery, 4)
		if err != nil {
			fatal(err)
		}
		defer prof.Stop()
	}

	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "vcdmon: -resume requires -checkpoint-dir")
		os.Exit(2)
	}

	if flag.NArg() != 1 || (len(qs) == 0 && *loadSet == "" && !*resume) {
		fmt.Fprintln(os.Stderr, "usage: vcdmon [flags] -q query.mvc ... <stream.mvc|->")
		flag.PrintDefaults()
		os.Exit(2)
	}

	cfg := vdsms.DefaultConfig()
	cfg.Delta = *delta
	cfg.K = *k
	cfg.WindowSec = *window
	cfg.KeyFPS = *keyFPS
	cfg.Workers = *workers
	cfg.PreFilter = *preFilter
	if *archiveDir != "" {
		cfg.ArchiveSec = *archiveSec
	}
	cfg.CheckpointDir = *ckptDir
	cfg.CheckpointEvery = *ckptEvery
	cfg.RealTimeBudget = *rtBudget
	cfg.Shed = *shed
	cfg.Resync = *resync
	if *explain {
		// Journal every lifecycle decision and exact-audit every report and
		// prune — for a one-shot CLI run the audit cost is irrelevant and
		// the per-match estimator error is what the user asked to see.
		// AuditFraction > 0 implies tracing at the default journal capacity.
		cfg.AuditFraction = 1
		cfg.StreamName = "vcdmon"
	}
	var det *vdsms.Detector
	var err error
	if *resume {
		var found bool
		det, found, err = vdsms.Resume(cfg)
		if err == nil {
			if found {
				fmt.Fprintf(os.Stderr, "resumed %d queries from %s (%d matches replayed)\n",
					det.NumQueries(), *ckptDir, len(det.Replayed))
				for _, m := range det.Replayed {
					fmt.Printf("REPLAY MATCH query=%d at=%.1fs start=%.1fs end=%.1fs sim=%.3f\n",
						m.QueryID, m.DetectedAt.Seconds(), m.Start.Seconds(), m.End.Seconds(), m.Similarity)
				}
			} else {
				fmt.Fprintf(os.Stderr, "no checkpoint in %s; starting fresh\n", *ckptDir)
			}
		}
	} else if *loadSet != "" {
		f, err2 := os.Open(*loadSet)
		if err2 != nil {
			fatal(err2)
		}
		det, err = vdsms.LoadDetector(cfg, f)
		f.Close()
		if err == nil {
			fmt.Fprintf(os.Stderr, "restored %d queries from %s\n", det.NumQueries(), *loadSet)
		}
	} else {
		det, err = vdsms.NewDetector(cfg)
	}
	if err != nil {
		fatal(err)
	}

	_, skippedQueries := subscribeQueries(det, qs)
	if det.NumQueries() == 0 {
		fatal(fmt.Errorf("no queries could be loaded; nothing to monitor"))
	}

	if *saveSet != "" {
		f, err := os.Create(*saveSet)
		if err != nil {
			fatal(err)
		}
		if err := det.SaveQueries(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "saved query set to %s\n", *saveSet)
	}

	var stream io.Reader
	if flag.Arg(0) == "-" {
		stream = os.Stdin
	} else {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		stream = f
	}

	det.OnMatch = func(m vdsms.Match) {
		fmt.Printf("MATCH query=%d at=%.1fs start=%.1fs end=%.1fs sim=%.3f\n",
			m.QueryID, m.DetectedAt.Seconds(), m.Start.Seconds(), m.End.Seconds(), m.Similarity)
		if *explain {
			if rec, ok := det.MatchRecord(det.LastMatchID()); ok {
				fmt.Print(explainLine(rec))
			}
		}
	}
	if *archiveDir != "" {
		if err := os.MkdirAll(*archiveDir, 0o755); err != nil {
			fatal(err)
		}
		det.OnMatchClip = func(m vdsms.Match, clip []byte) {
			name := fmt.Sprintf("%s/match-q%d-%ds.mvc", *archiveDir, m.QueryID, int(m.DetectedAt.Seconds()))
			if err := os.WriteFile(name, clip, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "vcdmon: archiving:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "archived %s (%d bytes)\n", name, len(clip))
		}
	}
	telStreamsActive.Inc()
	_, err = det.Monitor(stream)
	telStreamsActive.Dec()
	if err != nil {
		fatal(err)
	}
	if det.CheckpointingEnabled() {
		// Leave a clean single-checkpoint handoff for the next -resume.
		if err := det.Checkpoint(); err != nil {
			fatal(err)
		}
		if err := det.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "final checkpoint written to %s\n", *ckptDir)
	}
	st := det.Stats()
	summary := fmt.Sprintf("done: %d key frames, %d windows, %d matches, avg %.1f signatures in memory",
		st.Frames, st.Windows, st.Matches, st.AvgSignatures())
	if skippedQueries > 0 {
		// The per-path warnings scrolled past long ago on a long run; the
		// exit summary is where an operator looks first.
		summary += fmt.Sprintf(", %d query path(s) skipped", skippedQueries)
	}
	fmt.Fprintln(os.Stderr, summary)
	if *rtBudget > 0 || *resync {
		o := det.Overload()
		if o.Armed {
			fmt.Fprintf(os.Stderr, "overload: level %d/%d, %d/%d windows in shed mode, steady p99 %s (budget %s), shed extract=%d decode=%d\n",
				o.Level, o.MaxLevel, o.ShedWindows, o.Observed, o.RunP99, o.Budget, o.ExtractShed, o.DecodeShed)
		}
		if *resync {
			fmt.Fprintf(os.Stderr, "resync: %d corrupt frames, %d scans (%d bytes skipped), %d truncations, %d read retries\n",
				o.CorruptFrames, o.Resyncs, o.SkippedBytes, o.Truncated, o.ReadRetries)
		}
	}
	if *explain {
		fmt.Fprintln(os.Stderr, explainSummary(det))
	}
	if *spanSample > 0 {
		if line := perfSummary(); line != "" {
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if *workers > 0 {
		var total, max int64
		for _, sh := range st.Shards {
			total += sh.Compared
			if sh.Compared > max {
				max = sh.Compared
			}
		}
		// Balance = 1 means every shard compared equally; the parallel
		// kernel's speedup is bounded by total/(workers·max).
		balance := 1.0
		if max > 0 {
			balance = float64(total) / (float64(len(st.Shards)) * float64(max))
		}
		fmt.Fprintf(os.Stderr, "parallel: %d workers, %d comparisons, shard balance %.2f\n",
			len(st.Shards), total, balance)
	}
}

// subscribeQueries loads the repeated -q specs ("path" or "id=path") into
// det. A bad path or an undecodable clip is logged and skipped rather than
// fatal: in a monitoring fleet one stale query file should not keep the
// remaining queries from being watched. The caller decides whether zero
// loaded queries is fatal. Returns the number of queries subscribed here
// and the number of specs skipped as unloadable (bad path or undecodable;
// already-restored duplicates are not failures and are not counted).
func subscribeQueries(det *vdsms.Detector, qs []string) (loaded, skipped int) {
	have := make(map[int]bool)
	for _, id := range det.QueryIDs() {
		have[id] = true
	}
	for i, spec := range qs {
		id := i + 1
		path := spec
		if eq := strings.IndexByte(spec, '='); eq > 0 {
			if v, err := strconv.Atoi(spec[:eq]); err == nil {
				id, path = v, spec[eq+1:]
			}
		}
		if have[id] {
			fmt.Fprintf(os.Stderr, "query %d already subscribed (restored); skipping %s\n", id, path)
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vcdmon: skipping query %d: %v\n", id, err)
			skipped++
			telStreamsRejected.Inc()
			continue
		}
		err = det.AddQuery(id, f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "vcdmon: skipping query %d (%s): %v\n", id, path, err)
			skipped++
			telStreamsRejected.Inc()
			continue
		}
		have[id] = true
		loaded++
		fmt.Fprintf(os.Stderr, "subscribed query %d (%s)\n", id, path)
	}
	return loaded, skipped
}

// explainLine renders one match's provenance record: the per-window
// estimate trajectory that crossed δ, how the candidate was combined, and
// (always present under -explain, which audits every report) the exact
// Jaccard check against Theorem 1's bound.
func explainLine(rec vdsms.MatchRecord) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "  EXPLAIN id=%d windows=%d order=%s method=%s trajectory=[",
		rec.ID, rec.Windows, rec.Order, rec.Method)
	for i, est := range rec.Trajectory {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%.3f", est)
	}
	sb.WriteString("]")
	if a := rec.Audit; a != nil {
		verdict := "ok"
		if a.Violated {
			verdict = "VIOLATED"
		}
		fmt.Fprintf(&sb, " audit(exact=%.3f est=%.3f err=%.3f bound=%.3f %s)",
			a.Exact, a.Estimate, a.AbsError, a.Bound, verdict)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// explainSummary counts the journaled lifecycle events of this run's
// stream, giving -explain users the why-not view: prunes, drops, expiries
// and near misses that never became matches.
func explainSummary(det *vdsms.Detector) string {
	counts := map[string]int{}
	for _, ev := range det.TraceEvents(0) {
		counts[ev.Kind.String()]++
	}
	return fmt.Sprintf("events: born=%d extended=%d pruned=%d dropped=%d expired=%d reported=%d near_miss=%d",
		counts["born"], counts["extended"], counts["pruned"], counts["dropped"],
		counts["expired"], counts["reported"], counts["near_miss"])
}

// perfSummary renders the per-stage latency breakdown of the sampled spans
// — one "perf:" line with p50/p99 per observed stage, in pipeline order.
// Empty when nothing was sampled.
func perfSummary() string {
	agg := perfobs.Default.Aggregate()
	if agg.Windows == 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "perf: %d windows sampled", agg.Windows)
	for st := perfobs.Stage(0); st < perfobs.NumStages; st++ {
		if agg.Stages[st].Count == 0 {
			continue
		}
		p50 := time.Duration(agg.Quantile(st, 0.5) * float64(time.Second))
		p99 := time.Duration(agg.Quantile(st, 0.99) * float64(time.Second))
		fmt.Fprintf(&sb, ", %s p50=%s p99=%s", st, p50.Round(time.Microsecond), p99.Round(time.Microsecond))
	}
	return sb.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vcdmon:", err)
	os.Exit(1)
}

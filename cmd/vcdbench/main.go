// Command vcdbench regenerates the paper's tables and figures.
//
// Usage:
//
//	vcdbench [-scale N] [-seed S] all            # every experiment
//	vcdbench [-scale N] [-seed S] fig6 fig9 ...  # selected experiments
//	vcdbench -list                                # list experiments
//	vcdbench -bench-json BENCH.json               # window-kernel microbenchmarks as JSON
//	vcdbench -metrics-addr :8655 all              # expose /metrics while experiments run
//
// Each experiment prints a text table whose rows are the series the paper
// plots. Scale 1 (default) runs in seconds; larger scales approach the
// paper's workload sizes.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"vdsms/internal/benchkit"
	"vdsms/internal/experiments"
	"vdsms/internal/telemetry"
)

func main() {
	scale := flag.Float64("scale", 1, "workload scale factor (1 = laptop default, ~8 = paper size)")
	seed := flag.Int64("seed", 0, "workload seed (0 = default)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text tables")
	list := flag.Bool("list", false, "list available experiments and exit")
	benchJSON := flag.String("bench-json", "", "run the window-kernel microbenchmarks and write JSON results to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics on this address while running (e.g. :8655)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vcdbench [flags] all | <experiment>...\n\nflags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(os.Stderr, "\nexperiments:\n")
		printList()
	}
	flag.Parse()

	if *list {
		printList()
		return
	}
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", telemetry.Handler(telemetry.Default))
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "vcdbench: metrics server:", err)
			}
		}()
	}
	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "vcdbench:", err)
			os.Exit(1)
		}
		if flag.NArg() == 0 {
			return
		}
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var selected []experiments.Experiment
	if len(args) == 1 && args[0] == "all" {
		selected = experiments.Registry
	} else {
		for _, name := range args {
			e, err := experiments.Find(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	lab := experiments.NewLab(experiments.Options{Scale: *scale, Seed: *seed})
	for _, e := range selected {
		start := time.Now()
		tb, err := e.Run(lab)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vcdbench: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Printf("# %s (%s)\n", e.Name, e.Paper)
			if err := tb.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println()
			continue
		}
		if _, err := tb.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("(%s reproduces %s; ran in %v)\n\n", e.Name, e.Paper, time.Since(start).Round(time.Millisecond))
	}
}

// writeBenchJSON runs the shared window-kernel benchmark suite (the same
// workload as `go test -bench BenchmarkWindow`) and writes a
// machine-readable report — the artifact CI and EXPERIMENTS.md consume.
func writeBenchJSON(path string) error {
	fmt.Fprintln(os.Stderr, "running window-kernel benchmarks (one line per variant)...")
	results, err := benchkit.RunWindowBenchmarks(func(r benchkit.Result) {
		fmt.Fprintf(os.Stderr, "  %-24s %12.0f ns/op %8.1f windows/s %6d B/op %5d allocs/op\n",
			r.Name, r.NsPerOp, r.WindowsPerSec, r.BytesPerOp, r.AllocsPerOp)
	})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := benchkit.WriteReport(f, results); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

func printList() {
	for _, e := range experiments.Registry {
		fmt.Printf("  %-20s %s\n", e.Name, e.Paper)
	}
}

// Command vcdbench regenerates the paper's tables and figures.
//
// Usage:
//
//	vcdbench [-scale N] [-seed S] all            # every experiment
//	vcdbench [-scale N] [-seed S] fig6 fig9 ...  # selected experiments
//	vcdbench -list                                # list experiments
//
// Each experiment prints a text table whose rows are the series the paper
// plots. Scale 1 (default) runs in seconds; larger scales approach the
// paper's workload sizes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vdsms/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1, "workload scale factor (1 = laptop default, ~8 = paper size)")
	seed := flag.Int64("seed", 0, "workload seed (0 = default)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text tables")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vcdbench [flags] all | <experiment>...\n\nflags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(os.Stderr, "\nexperiments:\n")
		printList()
	}
	flag.Parse()

	if *list {
		printList()
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var selected []experiments.Experiment
	if len(args) == 1 && args[0] == "all" {
		selected = experiments.Registry
	} else {
		for _, name := range args {
			e, err := experiments.Find(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	lab := experiments.NewLab(experiments.Options{Scale: *scale, Seed: *seed})
	for _, e := range selected {
		start := time.Now()
		tb, err := e.Run(lab)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vcdbench: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Printf("# %s (%s)\n", e.Name, e.Paper)
			if err := tb.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println()
			continue
		}
		if _, err := tb.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("(%s reproduces %s; ran in %v)\n\n", e.Name, e.Paper, time.Since(start).Round(time.Millisecond))
	}
}

func printList() {
	for _, e := range experiments.Registry {
		fmt.Printf("  %-20s %s\n", e.Name, e.Paper)
	}
}

// Command vcdbench regenerates the paper's tables and figures.
//
// Usage:
//
//	vcdbench [-scale N] [-seed S] all            # every experiment
//	vcdbench [-scale N] [-seed S] fig6 fig9 ...  # selected experiments
//	vcdbench -list                                # list experiments
//	vcdbench -bench-json BENCH.json               # window-kernel microbenchmarks as JSON
//	vcdbench -bench-json NEW.json -bench-compare OLD.json   # run + regression gate
//	vcdbench -bench-compare OLD.json,NEW.json     # gate two existing reports
//	vcdbench -metrics-addr :8655 all              # expose /metrics while experiments run
//	vcdbench -version                             # print build information
//
// Each experiment prints a text table whose rows are the series the paper
// plots. Scale 1 (default) runs in seconds; larger scales approach the
// paper's workload sizes.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"vdsms/internal/benchkit"
	"vdsms/internal/buildinfo"
	"vdsms/internal/experiments"
	"vdsms/internal/telemetry"
)

func main() {
	scale := flag.Float64("scale", 1, "workload scale factor (1 = laptop default, ~8 = paper size)")
	seed := flag.Int64("seed", 0, "workload seed (0 = default)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text tables")
	list := flag.Bool("list", false, "list available experiments and exit")
	benchJSON := flag.String("bench-json", "", "run the window-kernel microbenchmarks and write JSON results to this file")
	benchCompare := flag.String("bench-compare", "", "baseline JSON report to gate a -bench-json run against (old,new when no -bench-json)")
	benchTol := flag.Float64("bench-tolerance", 0.35, "allowed fractional regression in windows/sec (and growth in allocs) for -bench-compare")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics on this address while running (e.g. :8655)")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vcdbench [flags] all | <experiment>...\n\nflags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(os.Stderr, "\nexperiments:\n")
		printList()
	}
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("vcdbench"))
		return
	}
	buildinfo.Metric()

	if *list {
		printList()
		return
	}
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", telemetry.Handler(telemetry.Default))
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "vcdbench: metrics server:", err)
			}
		}()
	}
	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "vcdbench:", err)
			os.Exit(1)
		}
		if *benchCompare != "" {
			if err := compareBench(*benchCompare, *benchJSON, *benchTol); err != nil {
				fmt.Fprintln(os.Stderr, "vcdbench:", err)
				os.Exit(1)
			}
		}
		if flag.NArg() == 0 {
			return
		}
	} else if *benchCompare != "" {
		// Gate two existing reports: -bench-compare old.json,new.json.
		old, new_, ok := strings.Cut(*benchCompare, ",")
		if !ok {
			fmt.Fprintln(os.Stderr, "vcdbench: -bench-compare without -bench-json wants old.json,new.json")
			os.Exit(2)
		}
		if err := compareBench(old, new_, *benchTol); err != nil {
			fmt.Fprintln(os.Stderr, "vcdbench:", err)
			os.Exit(1)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var selected []experiments.Experiment
	if len(args) == 1 && args[0] == "all" {
		selected = experiments.Registry
	} else {
		for _, name := range args {
			e, err := experiments.Find(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	lab := experiments.NewLab(experiments.Options{Scale: *scale, Seed: *seed})
	for _, e := range selected {
		start := time.Now()
		tb, err := e.Run(lab)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vcdbench: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Printf("# %s (%s)\n", e.Name, e.Paper)
			if err := tb.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println()
			continue
		}
		if _, err := tb.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("(%s reproduces %s; ran in %v)\n\n", e.Name, e.Paper, time.Since(start).Round(time.Millisecond))
	}
}

// writeBenchJSON runs the shared window-kernel benchmark suite (the same
// workload as `go test -bench BenchmarkWindow`) and writes a
// machine-readable report — the artifact CI and EXPERIMENTS.md consume.
func writeBenchJSON(path string) error {
	fmt.Fprintln(os.Stderr, "running window-kernel benchmarks (one line per variant)...")
	results, err := benchkit.RunWindowBenchmarks(func(r benchkit.Result) {
		fmt.Fprintf(os.Stderr, "  %-24s %12.0f ns/op %8.1f windows/s %6d B/op %5d allocs/op\n",
			r.Name, r.NsPerOp, r.WindowsPerSec, r.BytesPerOp, r.AllocsPerOp)
	})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := benchkit.WriteReport(f, results); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// compareBench gates a new benchmark report against a baseline: any
// benchmark present in both whose windows/sec regressed (or allocs/op
// grew) beyond the tolerance fails the run — the CI perf gate.
func compareBench(oldPath, newPath string, tol float64) error {
	old, err := benchkit.ReadReportFile(oldPath)
	if err != nil {
		return fmt.Errorf("baseline %s: %w", oldPath, err)
	}
	new_, err := benchkit.ReadReportFile(newPath)
	if err != nil {
		return fmt.Errorf("candidate %s: %w", newPath, err)
	}
	cmps := benchkit.CompareReports(old, new_, tol)
	bad := 0
	for _, c := range cmps {
		fmt.Fprintln(os.Stderr, "  "+c.String())
		if c.Regressed {
			bad++
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond tolerance %.0f%% against %s", bad, tol*100, oldPath)
	}
	fmt.Fprintf(os.Stderr, "bench gate passed: %d benchmarks within %.0f%% of %s\n", len(cmps), tol*100, oldPath)
	return nil
}

func printList() {
	for _, e := range experiments.Registry {
		fmt.Printf("  %-20s %s\n", e.Name, e.Paper)
	}
}

// Command vcdgen generates synthetic MVC1 video material: standalone
// clips, edited copies, and full monitoring scenarios (a stream with
// inserted copies plus the query clips and a ground-truth file).
//
// Usage:
//
//	vcdgen clip -out video.mvc [-seconds 10] [-seed 1] [-fps 30] [-w 176] [-h 144]
//	vcdgen edit -in video.mvc -out copy.mvc [-brightness 20] [-reorder 5] ...
//	vcdgen scenario -dir out/ [-queries 10] [-edited] [-seed 1]
//
// The scenario form writes out/stream.mvc, out/query-<id>.mvc and
// out/truth.txt (lines: query-id begin-seconds end-seconds), ready for
// vcdmon.
package main

import (
	"flag"
	"fmt"
	"image"
	_ "image/jpeg"
	_ "image/png"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vdsms"
	"vdsms/internal/buildinfo"
	"vdsms/internal/edit"
	"vdsms/internal/mpeg"
	"vdsms/internal/vframe"
	"vdsms/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "-version", "--version", "version":
		fmt.Println(buildinfo.String("vcdgen"))
		return
	case "clip":
		err = clipCmd(os.Args[2:])
	case "edit":
		err = editCmd(os.Args[2:])
	case "scenario":
		err = scenarioCmd(os.Args[2:])
	case "attack":
		err = attackCmd(os.Args[2:])
	case "fromimages":
		err = fromImagesCmd(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vcdgen:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  vcdgen clip -out FILE [-seconds N] [-seed N] [-fps N] [-w N] [-h N] [-quality N] [-gop N]
  vcdgen edit -in FILE -out FILE [-brightness N] [-contrast N] [-noise N] [-reorder SEC] [-seed N]
  vcdgen scenario -dir DIR [-queries N] [-edited] [-seed N]
  vcdgen attack -dir DIR [-queries N] [-families speed,fps,drop,...] [-seed N]
  vcdgen fromimages -out FILE -glob 'frames/*.png' [-fps N] [-w N] [-h N]`)
	os.Exit(2)
}

// fromImagesCmd encodes a sequence of image files (sorted by name) as an
// MVC1 video, so users can bring their own frames.
func fromImagesCmd(args []string) error {
	fs := flag.NewFlagSet("fromimages", flag.ExitOnError)
	out := fs.String("out", "", "output file (required)")
	glob := fs.String("glob", "", "glob of input images, e.g. 'frames/*.png' (required)")
	fps := fs.Float64("fps", 30, "frame rate")
	w := fs.Int("w", 176, "width (multiple of 16)")
	h := fs.Int("h", 144, "height (multiple of 16)")
	quality := fs.Int("quality", 75, "encoder quality")
	gop := fs.Int("gop", 15, "I-frame interval")
	fs.Parse(args)
	if *out == "" || *glob == "" {
		return fmt.Errorf("fromimages: -out and -glob required")
	}
	paths, err := filepath.Glob(*glob)
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("fromimages: no files match %q", *glob)
	}
	sort.Strings(paths)
	frames := make([]*vframe.Frame, 0, len(paths))
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		img, _, err := image.Decode(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("fromimages: decoding %s: %w", p, err)
		}
		frames = append(frames, vframe.FromImage(img, *w, *h))
	}
	dst, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer dst.Close()
	if _, err := mpeg.EncodeSource(dst, vframe.FromFrames(frames, *fps), *quality, *gop); err != nil {
		return err
	}
	fmt.Printf("encoded %d frames to %s\n", len(frames), *out)
	return nil
}

func clipCmd(args []string) error {
	fs := flag.NewFlagSet("clip", flag.ExitOnError)
	out := fs.String("out", "", "output file (required)")
	seconds := fs.Float64("seconds", 10, "duration")
	seed := fs.Int64("seed", 1, "content seed")
	fps := fs.Float64("fps", 30, "frame rate")
	w := fs.Int("w", 176, "width (multiple of 16)")
	h := fs.Int("h", 144, "height (multiple of 16)")
	quality := fs.Int("quality", 75, "encoder quality 1-100")
	gop := fs.Int("gop", 15, "I-frame interval")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("clip: -out required")
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	return vdsms.Synthesize(f, vdsms.VideoOptions{
		Seconds: *seconds, FPS: *fps, W: *w, H: *h,
		Seed: *seed, Quality: *quality, GOP: *gop,
	})
}

func editCmd(args []string) error {
	fs := flag.NewFlagSet("edit", flag.ExitOnError)
	in := fs.String("in", "", "input clip (required)")
	out := fs.String("out", "", "output clip (required)")
	brightness := fs.Float64("brightness", 0, "luma offset")
	contrast := fs.Float64("contrast", 0, "contrast factor (1 = unchanged)")
	noise := fs.Float64("noise", 0, "uniform noise amplitude")
	reorder := fs.Float64("reorder", 0, "reorder segments of this many seconds")
	seed := fs.Int64("seed", 1, "edit seed")
	quality := fs.Int("quality", 75, "re-encode quality")
	gop := fs.Int("gop", 15, "re-encode GOP")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("edit: -in and -out required")
	}
	src, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer src.Close()
	dst, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer dst.Close()
	return vdsms.ApplyEdits(dst, src, vdsms.EditOptions{
		Brightness:    *brightness,
		Contrast:      *contrast,
		NoiseAmp:      *noise,
		ReorderSegSec: *reorder,
		Seed:          *seed,
		Quality:       *quality,
		GOP:           *gop,
	})
}

func scenarioCmd(args []string) error {
	fs := flag.NewFlagSet("scenario", flag.ExitOnError)
	dir := fs.String("dir", "", "output directory (required)")
	queries := fs.Int("queries", 10, "number of query videos")
	edited := fs.Bool("edited", false, "edit copies before insertion (VS2)")
	seed := fs.Int64("seed", 1, "scenario seed")
	shortMin := fs.Float64("short-min", 0, "min short-video duration (seconds; 0 = default)")
	shortMax := fs.Float64("short-max", 0, "max short-video duration (seconds)")
	gapMin := fs.Float64("gap-min", 0, "min gap between inserts (seconds)")
	gapMax := fs.Float64("gap-max", 0, "max gap between inserts (seconds)")
	keyFPS := fs.Float64("keyfps", 0, "key-frame rate (0 = default 2)")
	quality := fs.Int("quality", 0, "encoder quality (0 = default)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("scenario: -dir required")
	}
	wl := workload.Build(workload.Config{
		NumShorts: *queries, Seed: *seed, Edited: *edited,
		ShortMinSec: *shortMin, ShortMaxSec: *shortMax,
		GapMinSec: *gapMin, GapMaxSec: *gapMax,
		KeyFPS: *keyFPS, Quality: *quality,
	})
	cfg := wl.Cfg
	truthLines := make([]string, len(wl.Truth))
	for i, ins := range wl.Truth {
		truthLines[i] = fmt.Sprintf("%d %.2f %.2f", ins.QueryID,
			float64(ins.Begin)/cfg.KeyFPS, float64(ins.End)/cfg.KeyFPS)
	}
	return writeScenario(*dir, wl, truthLines)
}

// attackCmd builds the temporal-attack robustness scenario: every query
// clip is inserted once per attack family, and truth.txt carries the
// family/preset columns vcdeval scores per-family numbers from.
func attackCmd(args []string) error {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	dir := fs.String("dir", "", "output directory (required)")
	queries := fs.Int("queries", 6, "number of query videos")
	families := fs.String("families", "", "comma-separated attack families (default: none plus every temporal family)")
	seed := fs.Int64("seed", 1, "scenario seed")
	shortMin := fs.Float64("short-min", 0, "min short-video duration (seconds; 0 = default)")
	shortMax := fs.Float64("short-max", 0, "max short-video duration (seconds)")
	gapMin := fs.Float64("gap-min", 0, "min gap between inserts (seconds)")
	gapMax := fs.Float64("gap-max", 0, "max gap between inserts (seconds)")
	keyFPS := fs.Float64("keyfps", 0, "key-frame rate (0 = default 2)")
	quality := fs.Int("quality", 0, "encoder quality (0 = default)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("attack: -dir required")
	}
	var fams []string
	if *families != "" {
		for _, f := range strings.Split(*families, ",") {
			if f = strings.TrimSpace(f); f != "" {
				fams = append(fams, f)
			}
		}
		for _, f := range fams {
			if err := validFamily(f); err != nil {
				return err
			}
		}
	}
	aw := workload.BuildAttack(workload.AttackConfig{
		Base: workload.Config{
			NumShorts: *queries, Seed: *seed,
			ShortMinSec: *shortMin, ShortMaxSec: *shortMax,
			GapMinSec: *gapMin, GapMaxSec: *gapMax,
			KeyFPS: *keyFPS, Quality: *quality,
		},
		Families: fams,
	})
	truthLines := make([]string, len(aw.Meta))
	for i, ins := range aw.Meta {
		truthLines[i] = ins.TruthLine(aw.Cfg.KeyFPS)
	}
	return writeScenario(*dir, aw.Workload, truthLines)
}

// validFamily rejects unknown attack-family names with a list of the
// valid ones (edit.TemporalPresets would panic instead).
func validFamily(name string) error {
	valid := append([]string{edit.FamilyNone}, edit.TemporalFamilies()...)
	for _, f := range valid {
		if name == f {
			return nil
		}
	}
	return fmt.Errorf("attack: unknown family %q (valid: %s)", name, strings.Join(valid, ", "))
}

// writeScenario encodes a workload's stream and queries into dir and
// writes truth.txt from the prepared lines.
func writeScenario(dir string, wl *workload.Workload, truthLines []string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cfg := wl.Cfg
	sf, err := os.Create(filepath.Join(dir, "stream.mvc"))
	if err != nil {
		return err
	}
	if _, err := mpeg.EncodeSource(sf, wl.Stream, cfg.Quality, 1); err != nil {
		sf.Close()
		return err
	}
	if err := sf.Close(); err != nil {
		return err
	}
	for _, q := range wl.Queries {
		qf, err := os.Create(filepath.Join(dir, fmt.Sprintf("query-%d.mvc", q.ID)))
		if err != nil {
			return err
		}
		if _, err := mpeg.EncodeSource(qf, q.Video, cfg.Quality, 1); err != nil {
			qf.Close()
			return err
		}
		if err := qf.Close(); err != nil {
			return err
		}
	}
	tf, err := os.Create(filepath.Join(dir, "truth.txt"))
	if err != nil {
		return err
	}
	defer tf.Close()
	for _, line := range truthLines {
		fmt.Fprintln(tf, line)
	}
	fmt.Printf("wrote %s: stream.mvc (%d key frames), %d queries, truth.txt (%d insertions)\n",
		dir, wl.Stream.Len(), len(wl.Queries), len(truthLines))
	return nil
}

package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestReportGolden pins the machine-readable report schema byte for byte.
// Dashboard consumers parse this output; any change here is a breaking
// schema change and must be deliberate (rerun with -update and bump
// workload.ReportSchema when the shape changes).
func TestReportGolden(t *testing.T) {
	truth := writeTruth(t,
		"1 10.00 30.00 none verbatim\n"+
			"2 50.00 70.00 speed 1.25x\n"+
			"3 100.00 120.00 drop 15%\n")
	transcript := "MATCH query=1 at=20.0s start=10.0s end=20.0s sim=0.750\n" +
		"MATCH query=2 at=60.0s start=52.0s end=60.0s sim=0.710\n" +
		"MATCH query=2 at=400.0s start=395.0s end=400.0s sim=0.700\n" + // false positive
		"MATCH query=9 at=10.0s\n" // unattributed query

	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "report.json")
	csvPath := filepath.Join(dir, "report.csv")
	var out strings.Builder
	if err := run(truth, 5, 2, jsonPath, csvPath, strings.NewReader(transcript), &out); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct{ got, golden string }{
		{jsonPath, "testdata/report.json.golden"},
		{csvPath, "testdata/report.csv.golden"},
	} {
		got, err := os.ReadFile(tc.got)
		if err != nil {
			t.Fatal(err)
		}
		if *update {
			if err := os.MkdirAll(filepath.Dir(tc.golden), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(tc.golden, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(tc.golden)
		if err != nil {
			t.Fatalf("%v (run `go test ./cmd/vcdeval -run TestReportGolden -update` to create)", err)
		}
		if string(got) != string(want) {
			t.Errorf("%s drifted from golden schema.\ngot:\n%s\nwant:\n%s", tc.golden, got, want)
		}
	}
}

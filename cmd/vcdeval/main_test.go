package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTruth(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "truth.txt")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestReadTruth(t *testing.T) {
	p := writeTruth(t, "1 10.00 30.00\n2 50.50 70.00\n\n")
	truth, err := readTruth(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth) != 2 {
		t.Fatalf("parsed %d insertions", len(truth))
	}
	if truth[0].QueryID != 1 || truth[0].Begin != 20 || truth[0].End != 60 {
		t.Errorf("first insertion %+v", truth[0])
	}
	if truth[1].Begin != 101 {
		t.Errorf("second begin %d, want 101", truth[1].Begin)
	}
	if truth[0].Family != "" || truth[0].Preset != "" {
		t.Errorf("three-column truth picked up attack metadata: %+v", truth[0])
	}
}

func TestReadTruthAttackMetadata(t *testing.T) {
	p := writeTruth(t, "1 10.00 30.00 speed 1.25x\n2 50.00 70.00 none verbatim\n")
	truth, err := readTruth(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if truth[0].Family != "speed" || truth[0].Preset != "1.25x" {
		t.Errorf("first insertion metadata %+v", truth[0])
	}
	if truth[1].Family != "none" {
		t.Errorf("second insertion metadata %+v", truth[1])
	}
}

func TestReadTruthErrors(t *testing.T) {
	for _, bad := range []string{
		"1 2\n",           // too few fields
		"x 1 2\n",         // non-numeric id
		"1 a 2\n",         // non-numeric begin
		"1 2 3 family\n",  // four fields
		"1 30.0 10.0\n",   // ends before it begins
		"1 -5 10\n",       // negative timestamp
		"1 NaN 10\n",      // non-finite
		"1 1e300 2e300\n", // out of range
	} {
		p := writeTruth(t, bad)
		if _, err := readTruth(p, 2); err == nil {
			t.Errorf("truth %q accepted", bad)
		}
	}
	if _, err := readTruth("/nonexistent/truth.txt", 2); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadReports(t *testing.T) {
	in := strings.NewReader(`subscribed query 1 (x.mvc)
MATCH query=1 at=25.0s start=10.0s end=25.0s sim=0.700
noise line
MATCH query=2 at=60.5s start=55.0s end=60.5s sim=0.810
MATCH malformed line without fields
MATCH query=3 at=NaNs
`)
	reports, err := readReports(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("parsed %d reports", len(reports))
	}
	if reports[0].QueryID != 1 || reports[0].P != 50 {
		t.Errorf("first report %+v", reports[0])
	}
	if reports[1].QueryID != 2 || reports[1].P != 121 {
		t.Errorf("second report %+v", reports[1])
	}
}

func TestRunEndToEnd(t *testing.T) {
	truth := writeTruth(t, "1 10.00 30.00\n2 50.00 70.00\n")
	in := strings.NewReader(
		"MATCH query=1 at=20.0s start=10.0s end=20.0s sim=0.7\n" + // correct
			"MATCH query=2 at=200.0s start=190.0s end=200.0s sim=0.7\n") // wrong place
	var out strings.Builder
	if err := run(truth, 5, 2, "", "", in, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"reports=2", "correct=1", "detected=1", "precision=0.500", "recall=0.500"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "family") {
		t.Errorf("three-column truth should not print a family table:\n%s", got)
	}
}

func TestRunPerFamilyOutput(t *testing.T) {
	truth := writeTruth(t, "1 10.00 30.00 none verbatim\n2 50.00 70.00 drop 15%\n")
	in := strings.NewReader(
		"MATCH query=1 at=20.0s\n" +
			"MATCH query=2 at=60.0s\n")
	var out strings.Builder
	if err := run(truth, 5, 2, "", "", in, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"family", "none", "drop", "loc-err"} {
		if !strings.Contains(got, want) {
			t.Errorf("per-family output missing %q:\n%s", want, got)
		}
	}
}

func TestRunWritesReportFiles(t *testing.T) {
	truth := writeTruth(t, "1 10.00 30.00 speed 1.25x\n")
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "rep.json")
	csvPath := filepath.Join(dir, "rep.csv")
	in := strings.NewReader("MATCH query=1 at=20.0s\n")
	var out strings.Builder
	if err := run(truth, 5, 2, jsonPath, csvPath, in, &out); err != nil {
		t.Fatal(err)
	}
	j, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(j), `"schema": "vcdeval/v1"`) {
		t.Errorf("JSON report missing schema:\n%s", j)
	}
	c, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(c), "family,precision,recall,") {
		t.Errorf("CSV report header wrong:\n%s", c)
	}
}

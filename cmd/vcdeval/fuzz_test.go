package main

import (
	"strings"
	"testing"
)

// FuzzParseTruth feeds arbitrary bytes through the truth parser. The
// parser may reject input with an error but must never panic, and every
// accepted insertion must satisfy the invariants the evaluator relies on:
// End ≥ Begin ≥ 0.
func FuzzParseTruth(f *testing.F) {
	f.Add("1 10.00 30.00\n")
	f.Add("1 10.00 30.00 speed 1.25x\n")
	f.Add("")
	f.Add("\n\n\n")
	f.Add("1 30 10\n")                    // out of order
	f.Add("x y z\n")                      // non-numeric
	f.Add("1 1e309 2e309")                // ±Inf after parse
	f.Add("1 NaN NaN\n")                  // non-finite
	f.Add("9999999999999999999999 1 2\n") // id overflow
	f.Add(strings.Repeat("1 1 2\n", 100))
	f.Fuzz(func(t *testing.T, input string) {
		truth, err := parseTruth(strings.NewReader(input), 2, "fuzz")
		if err != nil {
			return
		}
		for i, ins := range truth {
			if ins.Begin < 0 || ins.End < ins.Begin {
				t.Fatalf("accepted invalid interval %d: %+v (input %q)", i, ins, input)
			}
		}
	})
}

// FuzzReadReports feeds arbitrary transcripts through the match-line
// parser, which must skip garbage silently and never panic or emit a
// negative position.
func FuzzReadReports(f *testing.F) {
	f.Add("MATCH query=1 at=25.0s start=10.0s end=25.0s sim=0.700\n")
	f.Add("MATCH query=1 at=-5s\n")
	f.Add("MATCH query= at=s\n")
	f.Add("MATCH at=1s query=2\n")
	f.Add("MATCH query=1 at=1e308s\n")
	f.Add("not a match line\nMATCH \n")
	f.Add("MATCH query=1 at=NaNs\n")
	f.Fuzz(func(t *testing.T, input string) {
		reports, err := readReports(strings.NewReader(input), 2)
		if err != nil {
			return
		}
		for i, r := range reports {
			if r.P < 0 {
				t.Fatalf("report %d has negative position %d (input %q)", i, r.P, input)
			}
		}
	})
}

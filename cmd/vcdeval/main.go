// Command vcdeval scores a monitor's output against a scenario's ground
// truth, computing precision and recall under the paper's correctness rule
// (a report at position p for query Q counts iff Q.begin+w ≤ p ≤ Q.end+w).
//
//	vcdgen scenario -dir scen -queries 10 -edited
//	vcdmon -q scen/query-1.mvc ... scen/stream.mvc | vcdeval -truth scen/truth.txt
//
// Match lines are vcdmon's format ("MATCH query=<id> at=<sec>s ...");
// anything else on stdin is ignored. Truth lines are "id begin end" in
// seconds, as written by vcdgen scenario.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"vdsms/internal/buildinfo"
	"vdsms/internal/workload"
)

func main() {
	truthPath := flag.String("truth", "", "ground-truth file (required)")
	window := flag.Float64("window", 5, "basic window w in seconds (evaluation slack)")
	keyFPS := flag.Float64("keyfps", 2, "key-frame rate used to convert seconds to frames")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("vcdeval"))
		return
	}
	if *truthPath == "" {
		fmt.Fprintln(os.Stderr, "usage: vcdmon ... | vcdeval -truth truth.txt [-window 5]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(*truthPath, *window, *keyFPS, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vcdeval:", err)
		os.Exit(1)
	}
}

func run(truthPath string, windowSec, keyFPS float64, in io.Reader, out io.Writer) error {
	truth, err := readTruth(truthPath, keyFPS)
	if err != nil {
		return err
	}
	reports, err := readReports(in, keyFPS)
	if err != nil {
		return err
	}
	ev := workload.Evaluate(reports, truth, int(windowSec*keyFPS))
	fmt.Fprintf(out, "reports=%d correct=%d inserted=%d detected=%d\n",
		ev.Reported, ev.Correct, ev.Inserted, ev.Detected)
	fmt.Fprintf(out, "precision=%.3f recall=%.3f\n", ev.Precision, ev.Recall)
	return nil
}

// readTruth parses "id begin end" lines (seconds) into key-frame intervals.
func readTruth(path string, keyFPS float64) ([]workload.Insertion, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []workload.Insertion
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: want 'id begin end', got %q", path, line, sc.Text())
		}
		id, err1 := strconv.Atoi(fields[0])
		begin, err2 := strconv.ParseFloat(fields[1], 64)
		end, err3 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("%s:%d: malformed truth line %q", path, line, sc.Text())
		}
		out = append(out, workload.Insertion{
			QueryID: id,
			Begin:   int(begin * keyFPS),
			End:     int(end * keyFPS),
		})
	}
	return out, sc.Err()
}

// readReports extracts "MATCH query=<id> at=<sec>s" events from a monitor
// transcript.
func readReports(in io.Reader, keyFPS float64) ([]workload.Position, error) {
	var out []workload.Position
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "MATCH ") {
			continue
		}
		var qid int
		var at float64
		ok := 0
		for _, f := range strings.Fields(line[6:]) {
			switch {
			case strings.HasPrefix(f, "query="):
				if v, err := strconv.Atoi(f[6:]); err == nil {
					qid, ok = v, ok+1
				}
			case strings.HasPrefix(f, "at="):
				s := strings.TrimSuffix(f[3:], "s")
				if v, err := strconv.ParseFloat(s, 64); err == nil {
					at, ok = v, ok+1
				}
			}
		}
		if ok == 2 {
			out = append(out, workload.Position{QueryID: qid, P: int(at * keyFPS)})
		}
	}
	return out, sc.Err()
}

// Command vcdeval scores a monitor's output against a scenario's ground
// truth, computing precision, recall and localization error under the
// paper's correctness rule (a report at position p for query Q counts iff
// Q.begin+w ≤ p ≤ Q.end+w).
//
//	vcdgen scenario -dir scen -queries 10 -edited
//	vcdmon -q scen/query-1.mvc ... scen/stream.mvc | vcdeval -truth scen/truth.txt
//
// Truth written by `vcdgen attack` carries two extra columns naming the
// temporal-attack family and preset behind each insertion
// ("id begin end family preset"); vcdeval then also reports per-family
// precision/recall/localization, the robustness dashboard's input. The
// plain three-column form of `vcdgen scenario` remains accepted.
//
// Match lines are vcdmon's format ("MATCH query=<id> at=<sec>s ...");
// anything else on stdin is ignored. -json and -csv emit the
// machine-readable report (schema "vcdeval/v1", pinned by golden tests)
// to a file, or to stdout when the path is "-".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"vdsms/internal/buildinfo"
	"vdsms/internal/workload"
)

func main() {
	truthPath := flag.String("truth", "", "ground-truth file (required)")
	window := flag.Float64("window", 5, "basic window w in seconds (evaluation slack)")
	keyFPS := flag.Float64("keyfps", 2, "key-frame rate used to convert seconds to frames")
	jsonPath := flag.String("json", "", "write the machine-readable report as JSON to this file ('-' = stdout)")
	csvPath := flag.String("csv", "", "write the machine-readable report as CSV to this file ('-' = stdout)")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("vcdeval"))
		return
	}
	if *truthPath == "" || *keyFPS <= 0 || *window < 0 {
		if *keyFPS <= 0 {
			fmt.Fprintln(os.Stderr, "vcdeval: -keyfps must be positive")
		}
		if *window < 0 {
			fmt.Fprintln(os.Stderr, "vcdeval: -window must be non-negative")
		}
		fmt.Fprintln(os.Stderr, "usage: vcdmon ... | vcdeval -truth truth.txt [-window 5] [-json out.json] [-csv out.csv]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(*truthPath, *window, *keyFPS, *jsonPath, *csvPath, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vcdeval:", err)
		os.Exit(1)
	}
}

func run(truthPath string, windowSec, keyFPS float64, jsonPath, csvPath string, in io.Reader, out io.Writer) error {
	truth, err := readTruth(truthPath, keyFPS)
	if err != nil {
		return err
	}
	reports, err := readReports(in, keyFPS)
	if err != nil {
		return err
	}
	w := int(windowSec * keyFPS)
	plain := make([]workload.Insertion, len(truth))
	for i, ins := range truth {
		plain[i] = ins.Insertion
	}
	ev := workload.Evaluate(reports, plain, w)
	fams := workload.EvaluateByFamily(reports, truth, w)
	rep := workload.NewFamilyReport(ev, fams, windowSec, keyFPS)

	fmt.Fprintf(out, "reports=%d correct=%d inserted=%d detected=%d\n",
		ev.Reported, ev.Correct, ev.Inserted, ev.Detected)
	fmt.Fprintf(out, "precision=%.3f recall=%.3f loc-err=%.2fs\n",
		ev.Precision, ev.Recall, ev.MeanLocErr()/keyFPS)
	if hasFamilies(truth) {
		fmt.Fprintf(out, "\n%-16s %9s %9s %9s %9s %11s\n",
			"family", "precision", "recall", "reports", "inserted", "loc-err(s)")
		for _, fr := range fams {
			fmt.Fprintf(out, "%-16s %9.3f %9.3f %9d %9d %11.2f\n",
				fr.Family, fr.Precision, fr.Recall, fr.Reported, fr.Inserted, fr.MeanLocErr()/keyFPS)
		}
	}
	if err := writeReport(jsonPath, rep.WriteJSON, out); err != nil {
		return err
	}
	return writeReport(csvPath, rep.WriteCSV, out)
}

// hasFamilies reports whether any truth line carried attack metadata.
func hasFamilies(truth []workload.AttackInsertion) bool {
	for _, ins := range truth {
		if ins.Family != "" {
			return true
		}
	}
	return false
}

// writeReport renders via fn to path ("" = skip, "-" = the main output).
func writeReport(path string, fn func(io.Writer) error, out io.Writer) error {
	switch path {
	case "":
		return nil
	case "-":
		return fn(out)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// maxSeconds bounds accepted timestamps (≈ 3 years of stream) so corrupt
// input cannot push the seconds→frame conversion into integer overflow.
const maxSeconds = 1e8

// readTruth parses ground truth from path; see parseTruth.
func readTruth(path string, keyFPS float64) ([]workload.AttackInsertion, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseTruth(f, keyFPS, path)
}

// parseTruth parses "id begin end" or "id begin end family preset" lines
// (seconds) into key-frame intervals, rejecting malformed fields,
// non-finite or out-of-range timestamps, and intervals that end before
// they begin.
func parseTruth(r io.Reader, keyFPS float64, name string) ([]workload.AttackInsertion, error) {
	var out []workload.AttackInsertion
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for line := 1; sc.Scan(); line++ {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 3 && len(fields) != 5 {
			return nil, fmt.Errorf("%s:%d: want 'id begin end [family preset]', got %q", name, line, sc.Text())
		}
		id, err1 := strconv.Atoi(fields[0])
		begin, err2 := strconv.ParseFloat(fields[1], 64)
		end, err3 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("%s:%d: malformed truth line %q", name, line, sc.Text())
		}
		if !inRange(begin) || !inRange(end) {
			return nil, fmt.Errorf("%s:%d: timestamp out of range in %q", name, line, sc.Text())
		}
		if end < begin {
			return nil, fmt.Errorf("%s:%d: insertion ends (%g) before it begins (%g)", name, line, end, begin)
		}
		ins := workload.AttackInsertion{
			Insertion: workload.Insertion{
				QueryID: id,
				Begin:   int(begin * keyFPS),
				End:     int(end * keyFPS),
			},
		}
		if len(fields) == 5 {
			ins.Family, ins.Preset = fields[3], fields[4]
		}
		out = append(out, ins)
	}
	return out, sc.Err()
}

// inRange accepts finite, non-negative timestamps below maxSeconds.
func inRange(sec float64) bool {
	return !math.IsNaN(sec) && sec >= 0 && sec <= maxSeconds
}

// readReports extracts "MATCH query=<id> at=<sec>s" events from a monitor
// transcript. Lines that are not well-formed match events are ignored —
// monitor output interleaves logs with matches by design.
func readReports(in io.Reader, keyFPS float64) ([]workload.Position, error) {
	var out []workload.Position
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "MATCH ") {
			continue
		}
		var qid int
		var at float64
		ok := 0
		for _, f := range strings.Fields(line[6:]) {
			switch {
			case strings.HasPrefix(f, "query="):
				if v, err := strconv.Atoi(f[6:]); err == nil {
					qid, ok = v, ok+1
				}
			case strings.HasPrefix(f, "at="):
				s := strings.TrimSuffix(f[3:], "s")
				if v, err := strconv.ParseFloat(s, 64); err == nil && inRange(v) {
					at, ok = v, ok+1
				}
			}
		}
		if ok == 2 {
			out = append(out, workload.Position{QueryID: qid, P: int(at * keyFPS)})
		}
	}
	return out, sc.Err()
}

package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"vdsms/internal/perfobs"
)

// resetPerf returns the process-wide attribution state to its defaults so
// tests sharing the Default collector do not observe each other.
func resetPerf(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		perfobs.Default.SetSampleEvery(0)
		perfobs.Default.Reset()
		perfobs.DefaultOutliers.Reset()
	})
	perfobs.Default.SetSampleEvery(0)
	perfobs.Default.Reset()
	perfobs.DefaultOutliers.Reset()
}

func TestDebugSpansEndpoint(t *testing.T) {
	resetPerf(t)
	_, ts := testServer(t)

	// Arm 100% span sampling through the live-control POST.
	resp := do(t, http.MethodPost, ts.URL+"/debug/spans", []byte(`{"sampleEvery": 1}`))
	if resp.StatusCode != 200 {
		t.Fatalf("POST /debug/spans: %d", resp.StatusCode)
	}
	var ack map[string]int64
	json.NewDecoder(resp.Body).Decode(&ack)
	resp.Body.Close()
	if ack["sampleEvery"] != 1 {
		t.Fatalf("sampleEvery = %d, want 1", ack["sampleEvery"])
	}

	do(t, http.MethodPut, ts.URL+"/queries/1", clip(t, 1, 12)).Body.Close()
	streamAndParse(t, ts, "span-stream", clip(t, 400, 30))

	resp = do(t, http.MethodGet, ts.URL+"/debug/spans?limit=5", nil)
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /debug/spans: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var rec perfobs.SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad span line %q: %v", sc.Text(), err)
		}
		if rec.Schema != "vcd_span/v1" {
			t.Errorf("span schema = %q", rec.Schema)
		}
		if rec.Stream != "span-stream" {
			t.Errorf("span stream = %q", rec.Stream)
		}
		if rec.NS["window_total"] <= 0 {
			t.Errorf("span missing window_total: %v", rec.NS)
		}
		lines++
	}
	if lines == 0 || lines > 5 {
		t.Fatalf("got %d span lines, want 1..5", lines)
	}

	// Bad inputs.
	for _, tc := range []struct {
		method, url, body string
		want              int
	}{
		{http.MethodGet, "/debug/spans?limit=-1", "", http.StatusBadRequest},
		{http.MethodPost, "/debug/spans", `{"nonsense": true}`, http.StatusBadRequest},
		{http.MethodDelete, "/debug/spans", "", http.StatusMethodNotAllowed},
	} {
		var body []byte
		if tc.body != "" {
			body = []byte(tc.body)
		}
		resp := do(t, tc.method, ts.URL+tc.url, body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s: %d, want %d", tc.method, tc.url, resp.StatusCode, tc.want)
		}
		resp.Body.Close()
	}
}

func TestFleetTopEndpoint(t *testing.T) {
	resetPerf(t)
	_, ts := testServer(t)
	perfobs.Default.SetSampleEvery(1)

	do(t, http.MethodPut, ts.URL+"/queries/1", clip(t, 1, 12)).Body.Close()
	streamAndParse(t, ts, "slowpoke", clip(t, 401, 30))

	resp := do(t, http.MethodGet, ts.URL+"/debug/fleet/top?limit=3", nil)
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /debug/fleet/top: %d", resp.StatusCode)
	}
	var rep perfobs.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "vcd_fleet_top/v1" {
		t.Errorf("report schema = %q", rep.Schema)
	}
	if len(rep.Slowest) == 0 || rep.Slowest[0].Key != "slowpoke" {
		t.Errorf("slowest = %+v, want slowpoke on top", rep.Slowest)
	}
	if rep.Slowest[0].Count <= 0 {
		t.Errorf("slowest weight = %d", rep.Slowest[0].Count)
	}
}

func TestStatsPerfBlock(t *testing.T) {
	resetPerf(t)
	_, ts := testServer(t)
	perfobs.Default.SetSampleEvery(1)

	do(t, http.MethodPut, ts.URL+"/queries/1", clip(t, 1, 12)).Body.Close()
	streamAndParse(t, ts, "s-perf", clip(t, 402, 30))

	resp := do(t, http.MethodGet, ts.URL+"/stats", nil)
	defer resp.Body.Close()
	var st struct {
		Perf struct {
			SampleEvery  int64                         `json:"sampleEvery"`
			Windows      int64                         `json:"windows"`
			SpansSampled int64                         `json:"spansSampled"`
			Stages       map[string]map[string]float64 `json:"stages"`
			Outliers     map[string]map[string]any     `json:"outliers"`
		} `json:"perf"`
		Fleet struct {
			QueueDepthHW int64             `json:"queueDepthHW"`
			Workers      []json.RawMessage `json:"workers"`
		} `json:"fleet"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Perf.SampleEvery != 1 {
		t.Errorf("perf.sampleEvery = %d", st.Perf.SampleEvery)
	}
	if st.Perf.Windows == 0 || st.Perf.SpansSampled == 0 {
		t.Errorf("perf fold empty: %+v", st.Perf)
	}
	if _, ok := st.Perf.Stages["window_total"]; !ok {
		t.Errorf("perf.stages missing window_total: %v", st.Perf.Stages)
	}
	if len(st.Fleet.Workers) == 0 {
		t.Errorf("fleet.workers empty")
	}
	if _, ok := st.Perf.Outliers["slowest"]; !ok {
		t.Errorf("perf.outliers missing slowest: %v", st.Perf.Outliers)
	}
}

// TestDebugSpansOffByDefault: with sampling disarmed nothing is captured —
// the ring stays empty and the endpoint returns an empty NDJSON body.
func TestDebugSpansOffByDefault(t *testing.T) {
	resetPerf(t)
	_, ts := testServer(t)

	do(t, http.MethodPut, ts.URL+"/queries/1", clip(t, 1, 12)).Body.Close()
	streamAndParse(t, ts, "quiet", clip(t, 403, 20))

	resp := do(t, http.MethodGet, ts.URL+"/debug/spans", nil)
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var got []string
	for sc.Scan() {
		if s := strings.TrimSpace(sc.Text()); s != "" {
			got = append(got, s)
		}
	}
	if len(got) != 0 {
		t.Errorf("sampling off but %d spans captured: %v", len(got), got)
	}
}

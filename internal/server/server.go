// Package server exposes continuous copy detection as an HTTP service —
// the deployable face of the VDSMS (the paper built its techniques into
// the PIPA media-management system; this is the equivalent service
// surface, stdlib-only).
//
//	PUT    /queries/{id}   body: MVC1 clip     → subscribe a query
//	DELETE /queries/{id}                       → unsubscribe
//	GET    /queries                            → JSON list of ids
//	POST   /streams/{name} body: MVC1 stream   → NDJSON matches, streamed
//	POST   /streams        {"id": "..."}       → attach a long-lived fleet stream
//	POST   /streams/{id}/frames                → push an MVC1 segment (429 on backpressure)
//	GET    /streams/{id}/stats                 → per-stream counters
//	GET    /streams/{id}/matches               → matches reported so far
//	DELETE /streams/{id}                       → detach (drained unless ?drain=false)
//	GET    /streams                            → attached stream ids
//	GET    /stats                              → JSON service counters
//	GET    /metrics                            → Prometheus text exposition
//	GET    /healthz                            → liveness (always 200)
//	GET    /readyz                             → readiness (200 once restore-on-boot completed;
//	                                             503 while shedding at the maximum level)
//	POST   /snapshot                           → checkpoint service state now
//	GET    /debug/events                       → candidate-lifecycle event journal (filterable)
//	GET    /debug/matches[/{id}]               → match provenance (explain) records
//	GET/POST /debug/slow-window                → read / retune the slow-window budget live
//	GET/POST /debug/spans                      → sampled per-window span records (NDJSON) /
//	                                             retune span sampling live
//	GET    /debug/fleet/top                    → slowest / most-shed / most-backpressured
//	                                             streams (bounded top-K)
//	/debug/pprof/*                             → profiling (opt-in via Options.EnablePprof)
//
// Every stream POST gets its own detection engine; all engines share one
// query set and Hash-Query index, so a subscription covers every stream,
// and concurrent stream uploads monitor in parallel.
//
// /metrics, /healthz and /readyz are wait-free: they read atomics only and
// never take the subscription mutex, so a checkpointing subscription change
// (which fsyncs under that mutex) or a busy monitor loop can never stall a
// scrape or a health probe. /stats is nearly so — it additionally takes the
// overload controller's short internal lock (never the subscription mutex)
// to snapshot the shed-control loop.
//
// When the detection configuration arms the overload controller
// (Config.RealTimeBudget), every per-stream engine feeds the shared control
// loop, /stats grows a "shed" block, and /readyz degrades to 503 while the
// service sheds at the maximum level — the back-pressure signal that tells
// a load balancer to route new streams elsewhere until the overload clears.
//
// With Config.CheckpointDir set, New resumes from an existing checkpoint
// (restoring the subscription set), subscription changes are checkpointed
// immediately, and POST /snapshot or Checkpoint persist state on demand —
// the hook vcdserve uses for its SIGTERM handoff.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"vdsms"
	"vdsms/internal/degrade"
	"vdsms/internal/telemetry"
)

// Service-level metrics in the process-wide registry (rendered by
// GET /metrics alongside the engine and durability series).
var (
	telStreamsActive = telemetry.Default.Gauge("vcd_streams_active",
		"Streams currently being monitored.")
	telStreamsServed = telemetry.Default.Counter("vcd_streams_served_total",
		"Stream uploads accepted over the service lifetime.")
	telStreamsRejected = telemetry.Default.Counter("vcd_streams_rejected_total",
		"Stream attach or ingest requests rejected (admission control, duplicate ids, backpressure).")
	telQueries = telemetry.Default.Gauge("vcd_queries",
		"Currently subscribed continuous queries.")
)

// Server is the HTTP copy-detection service. Create with New, mount via
// Handler.
type Server struct {
	root     *vdsms.Detector // owns the shared query set; never monitors
	fleet    *vdsms.Fleet    // attached-stream pool; shares root's query set
	workers  int             // per-stream matching workers (0 = inline)
	restored bool            // whether New resumed from a checkpoint
	pprof    bool            // mount /debug/pprof/*

	mu      sync.Mutex // serialises subscription changes and checkpoints
	ready   atomic.Bool
	queries atomic.Int64 // subscription count, maintained under mu
	streams atomic.Int64
	active  atomic.Int64 // streams currently monitoring
	matches atomic.Int64
	frames  atomic.Int64
	// shardCompared accumulates, per query shard, the similarity
	// evaluations performed across all served streams — the service-level
	// view of parallel kernel balance.
	shardCompared []atomic.Int64
	// Per-stream overload counters, folded in as each stream completes
	// (the per-stream detectors own the live values; the control loop
	// itself is shared through s.root).
	extractShed  atomic.Int64
	decodeShed   atomic.Int64
	resyncs      atomic.Int64
	corruptFrame atomic.Int64
	truncated    atomic.Int64
	readRetries  atomic.Int64
}

// Options tunes the service surface beyond the detection configuration.
type Options struct {
	// EnablePprof mounts net/http/pprof's handlers under /debug/pprof/.
	// Off by default: profiling endpoints expose internals and cost CPU,
	// so production deployments opt in explicitly.
	EnablePprof bool
	// Fleet tunes the attached-stream pool behind POST /streams (worker
	// count, admission limit, per-stream queue budget). The zero value is
	// serviceable: GOMAXPROCS workers, unlimited streams, 8-window queues.
	Fleet vdsms.FleetConfig
}

// New builds a server with the given detection configuration. When
// cfg.CheckpointDir is set and holds a checkpoint, the subscription set is
// restored from it (Restored reports whether that happened). The server is
// ready (GET /readyz → 200) once New returns.
func New(cfg vdsms.Config) (*Server, error) { return NewWithOptions(cfg, Options{}) }

// NewWithOptions is New with service options.
func NewWithOptions(cfg vdsms.Config, opts Options) (*Server, error) {
	var det *vdsms.Detector
	var restored bool
	var err error
	if cfg.CheckpointDir != "" {
		det, restored, err = vdsms.Resume(cfg)
	} else {
		det, err = vdsms.NewDetector(cfg)
	}
	if err != nil {
		return nil, err
	}
	nsh := cfg.Workers
	if nsh < 1 {
		nsh = 1
	}
	fl, err := det.NewFleet(opts.Fleet)
	if err != nil {
		return nil, err
	}
	s := &Server{
		root: det, fleet: fl, workers: cfg.Workers, restored: restored, pprof: opts.EnablePprof,
		shardCompared: make([]atomic.Int64, nsh),
	}
	s.setQueries(det.NumQueries())
	// Restore-on-boot (the Resume above) has completed: the service may
	// accept traffic. Until this store, GET /readyz reports 503.
	s.ready.Store(true)
	return s, nil
}

// Restored reports whether New resumed the query set from a checkpoint.
func (s *Server) Restored() bool { return s.restored }

// setQueries refreshes the wait-free subscription count; callers hold mu
// (or are still single-goroutine, as in NewWithOptions).
func (s *Server) setQueries(n int) {
	s.queries.Store(int64(n))
	telQueries.Set(float64(n))
}

// NumQueries returns the current subscription count. Wait-free: reads the
// count maintained under the subscription mutex rather than taking it.
func (s *Server) NumQueries() int { return int(s.queries.Load()) }

// Checkpoint persists the service state (the shared query set) to the
// configured checkpoint directory — the graceful-shutdown hook.
func (s *Server) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.root.Checkpoint()
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/queries", s.handleQueries)
	mux.HandleFunc("/queries/", s.handleQuery)
	mux.HandleFunc("/streams", s.handleFleet)
	mux.HandleFunc("/streams/", s.handleStream)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.Handle("/metrics", telemetry.Handler(telemetry.Default))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/debug/events", s.handleDebugEvents)
	mux.HandleFunc("/debug/matches", s.handleDebugMatches)
	mux.HandleFunc("/debug/matches/", s.handleDebugMatches)
	mux.HandleFunc("/debug/slow-window", s.handleSlowWindow)
	mux.HandleFunc("/debug/spans", s.handleDebugSpans)
	mux.HandleFunc("/debug/fleet/top", s.handleFleetTop)
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleHealthz is the liveness probe: the process is serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, map[string]any{"ok": true})
}

// handleReadyz is the readiness probe: 200 only once restore-on-boot has
// completed and the service can accept subscriptions and streams.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if !s.ready.Load() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]any{"ready": false})
		return
	}
	// Shedding at the maximum level means the service is dropping as much
	// work as it is allowed to and still missing its budget: report
	// not-ready so orchestrators stop routing new streams here. Existing
	// streams keep being served (degraded). Wait-free: ShedLevel is an
	// atomic read.
	if lvl := s.root.ShedLevel(); lvl >= degrade.MaxLevel {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]any{
			"ready": false, "overloaded": true, "shedLevel": lvl,
		})
		return
	}
	writeJSON(w, map[string]any{"ready": true, "restored": s.restored})
}

// handleSnapshot checkpoints the service state on demand.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if !s.root.CheckpointingEnabled() {
		http.Error(w, "checkpointing disabled: start the service with a checkpoint directory",
			http.StatusServiceUnavailable)
		return
	}
	if err := s.Checkpoint(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]any{"checkpointed": true, "queries": s.NumQueries()})
}

// handleQueries lists subscribed query ids.
func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, map[string]any{"queries": s.NumQueries()})
}

// handleQuery subscribes (PUT) or unsubscribes (DELETE) one query.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/queries/"))
	if err != nil || id <= 0 {
		http.Error(w, "query id must be a positive integer", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodPut:
		s.mu.Lock()
		err := s.root.AddQuery(id, r.Body)
		s.setQueries(s.root.NumQueries())
		s.mu.Unlock()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, map[string]any{"subscribed": id})
	case http.MethodDelete:
		s.mu.Lock()
		err := s.root.RemoveQuery(id)
		s.setQueries(s.root.NumQueries())
		s.mu.Unlock()
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]any{"unsubscribed": id})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// matchEvent is one NDJSON line of a stream response.
type matchEvent struct {
	Query      int     `json:"query"`
	DetectedAt float64 `json:"detectedAt"` // seconds of stream time
	Start      float64 `json:"start"`
	End        float64 `json:"end"`
	Similarity float64 `json:"similarity"`
}

// streamSummary is the final NDJSON line of a stream response. When the
// detector runs a parallel matching kernel, shardCompared reports the
// similarity evaluations each query shard performed — a balanced list
// means the workers split the stream's matching cost evenly.
type streamSummary struct {
	Done          bool    `json:"done"`
	Stream        string  `json:"stream"`
	Frames        int     `json:"frames"`
	Windows       int     `json:"windows"`
	Matches       int     `json:"matches"`
	Workers       int     `json:"workers,omitempty"`
	ShardCompared []int64 `json:"shardCompared,omitempty"`
	Error         string  `json:"error,omitempty"`
}

// handleStream routes everything under /streams/: the legacy one-shot
// upload (POST /streams/{name} with an MVC1 body → NDJSON matches) and the
// per-stream fleet surface (frames, stats, matches, DELETE) — see fleet.go.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/streams/")
	if id, sub, ok := strings.Cut(rest, "/"); ok {
		s.handleFleetStream(w, r, id, sub)
		return
	}
	if r.Method == http.MethodDelete {
		s.handleFleetDetach(w, r, rest)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	name := rest
	if name == "" {
		http.Error(w, "stream name required", http.StatusBadRequest)
		return
	}
	det, err := s.root.NewStreamNamed(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.streams.Add(1)
	s.active.Add(1)
	telStreamsServed.Inc()
	telStreamsActive.Inc()
	defer func() {
		s.active.Add(-1)
		telStreamsActive.Dec()
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	// Matches are written while the request body is still being consumed;
	// HTTP/1.x needs explicit full-duplex for that. Errors (e.g. HTTP/2,
	// where duplex is the default) are ignored.
	_ = http.NewResponseController(w).EnableFullDuplex()
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	det.OnMatch = func(m vdsms.Match) {
		s.matches.Add(1)
		enc.Encode(matchEvent{
			Query:      m.QueryID,
			DetectedAt: m.DetectedAt.Seconds(),
			Start:      m.Start.Seconds(),
			End:        m.End.Seconds(),
			Similarity: m.Similarity,
		})
		if flusher != nil {
			flusher.Flush()
		}
	}
	_, merr := det.MonitorContext(r.Context(), r.Body)
	// With full duplex the handler owns body consumption: drain whatever a
	// failed or short monitor left behind, or the connection goroutine
	// races on the half-read body after the handler returns.
	io.Copy(io.Discard, r.Body)
	st := det.Stats()
	s.frames.Add(int64(st.Frames))
	ov := det.Overload()
	s.extractShed.Add(ov.ExtractShed)
	s.decodeShed.Add(ov.DecodeShed)
	s.resyncs.Add(ov.Resyncs)
	s.corruptFrame.Add(ov.CorruptFrames)
	s.truncated.Add(ov.Truncated)
	s.readRetries.Add(ov.ReadRetries)
	for i, sh := range st.Shards {
		if i < len(s.shardCompared) {
			s.shardCompared[i].Add(sh.Compared)
		}
	}
	sum := streamSummary{
		Done: true, Stream: name,
		Frames: st.Frames, Windows: st.Windows, Matches: st.Matches,
		Workers: s.workers,
	}
	if s.workers > 0 {
		for _, sh := range st.Shards {
			sum.ShardCompared = append(sum.ShardCompared, sh.Compared)
		}
	}
	if merr != nil {
		sum.Error = merr.Error()
	}
	enc.Encode(sum)
}

// handleStats reports service-level counters as a point-in-time snapshot.
// It never takes the subscription mutex — a concurrent monitor loop,
// subscription change or checkpoint fsync cannot stall it — though the
// shed block snapshots the overload controller under its own short lock
// (each field is individually consistent; the set is a best-effort
// snapshot, as with any lock-free multi-counter read).
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	compared := make([]int64, len(s.shardCompared))
	for i := range s.shardCompared {
		compared[i] = s.shardCompared[i].Load()
	}
	ov := s.root.Overload()
	writeJSON(w, map[string]any{
		"queries":        s.NumQueries(),
		"streamsServed":  s.streams.Load(),
		"streamsActive":  s.active.Load(),
		"matchesEmitted": s.matches.Load(),
		"framesDecoded":  s.frames.Load(),
		"workers":        s.workers,
		"shardCompared":  compared,
		"checkpointing":  s.root.CheckpointingEnabled(),
		"tracing":        s.root.Tracing(),
		"slowWindow":     s.root.SlowWindowBudget().String(),
		"fleet": map[string]any{
			"streams":      s.fleet.Len(),
			"planeBytes":   s.fleet.PlaneBytes(),
			"queueDepthHW": s.fleet.QueueDepthHW(),
			"workers":      s.fleet.WorkerStats(),
		},
		"perf": perfStatsBlock(),
		"shed": map[string]any{
			"armed":       ov.Armed,
			"level":       ov.Level,
			"maxLevel":    ov.MaxLevel,
			"budget":      ov.Budget.String(),
			"ringP99":     ov.RingP99.String(),
			"runP99":      ov.RunP99.String(),
			"windows":     ov.Observed,
			"shedWindows": ov.ShedWindows,
			"transitions": ov.Transitions,
			// Counters below fold in as each stream completes.
			"extractShed":   s.extractShed.Load(),
			"decodeShed":    s.decodeShed.Load(),
			"resyncs":       s.resyncs.Load(),
			"corruptFrames": s.corruptFrame.Load(),
			"truncated":     s.truncated.Load(),
			"readRetries":   s.readRetries.Load(),
		},
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing sensible left to do.
		_ = fmt.Errorf("encode: %w", err)
	}
}

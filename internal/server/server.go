// Package server exposes continuous copy detection as an HTTP service —
// the deployable face of the VDSMS (the paper built its techniques into
// the PIPA media-management system; this is the equivalent service
// surface, stdlib-only).
//
//	PUT    /queries/{id}   body: MVC1 clip     → subscribe a query
//	DELETE /queries/{id}                       → unsubscribe
//	GET    /queries                            → JSON list of ids
//	POST   /streams/{name} body: MVC1 stream   → NDJSON matches, streamed
//	GET    /stats                              → JSON service counters
//	POST   /snapshot                           → checkpoint service state now
//
// Every stream POST gets its own detection engine; all engines share one
// query set and Hash-Query index, so a subscription covers every stream,
// and concurrent stream uploads monitor in parallel.
//
// With Config.CheckpointDir set, New resumes from an existing checkpoint
// (restoring the subscription set), subscription changes are checkpointed
// immediately, and POST /snapshot or Checkpoint persist state on demand —
// the hook vcdserve uses for its SIGTERM handoff.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"vdsms"
)

// Server is the HTTP copy-detection service. Create with New, mount via
// Handler.
type Server struct {
	root     *vdsms.Detector // owns the shared query set; never monitors
	workers  int             // per-stream matching workers (0 = inline)
	restored bool            // whether New resumed from a checkpoint

	mu      sync.Mutex // serialises subscription changes and checkpoints
	streams atomic.Int64
	matches atomic.Int64
	frames  atomic.Int64
	// shardCompared accumulates, per query shard, the similarity
	// evaluations performed across all served streams — the service-level
	// view of parallel kernel balance.
	shardCompared []atomic.Int64
}

// New builds a server with the given detection configuration. When
// cfg.CheckpointDir is set and holds a checkpoint, the subscription set is
// restored from it (Restored reports whether that happened).
func New(cfg vdsms.Config) (*Server, error) {
	var det *vdsms.Detector
	var restored bool
	var err error
	if cfg.CheckpointDir != "" {
		det, restored, err = vdsms.Resume(cfg)
	} else {
		det, err = vdsms.NewDetector(cfg)
	}
	if err != nil {
		return nil, err
	}
	nsh := cfg.Workers
	if nsh < 1 {
		nsh = 1
	}
	return &Server{
		root: det, workers: cfg.Workers, restored: restored,
		shardCompared: make([]atomic.Int64, nsh),
	}, nil
}

// Restored reports whether New resumed the query set from a checkpoint.
func (s *Server) Restored() bool { return s.restored }

// NumQueries returns the current subscription count.
func (s *Server) NumQueries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.root.NumQueries()
}

// Checkpoint persists the service state (the shared query set) to the
// configured checkpoint directory — the graceful-shutdown hook.
func (s *Server) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.root.Checkpoint()
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/queries", s.handleQueries)
	mux.HandleFunc("/queries/", s.handleQuery)
	mux.HandleFunc("/streams/", s.handleStream)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	return mux
}

// handleSnapshot checkpoints the service state on demand.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if !s.root.CheckpointingEnabled() {
		http.Error(w, "checkpointing disabled: start the service with a checkpoint directory",
			http.StatusServiceUnavailable)
		return
	}
	if err := s.Checkpoint(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]any{"checkpointed": true, "queries": s.NumQueries()})
}

// handleQueries lists subscribed query ids.
func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	n := s.root.NumQueries()
	s.mu.Unlock()
	writeJSON(w, map[string]any{"queries": n})
}

// handleQuery subscribes (PUT) or unsubscribes (DELETE) one query.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/queries/"))
	if err != nil || id <= 0 {
		http.Error(w, "query id must be a positive integer", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodPut:
		s.mu.Lock()
		err := s.root.AddQuery(id, r.Body)
		s.mu.Unlock()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, map[string]any{"subscribed": id})
	case http.MethodDelete:
		s.mu.Lock()
		err := s.root.RemoveQuery(id)
		s.mu.Unlock()
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]any{"unsubscribed": id})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// matchEvent is one NDJSON line of a stream response.
type matchEvent struct {
	Query      int     `json:"query"`
	DetectedAt float64 `json:"detectedAt"` // seconds of stream time
	Start      float64 `json:"start"`
	End        float64 `json:"end"`
	Similarity float64 `json:"similarity"`
}

// streamSummary is the final NDJSON line of a stream response. When the
// detector runs a parallel matching kernel, shardCompared reports the
// similarity evaluations each query shard performed — a balanced list
// means the workers split the stream's matching cost evenly.
type streamSummary struct {
	Done          bool    `json:"done"`
	Stream        string  `json:"stream"`
	Frames        int     `json:"frames"`
	Windows       int     `json:"windows"`
	Matches       int     `json:"matches"`
	Workers       int     `json:"workers,omitempty"`
	ShardCompared []int64 `json:"shardCompared,omitempty"`
	Error         string  `json:"error,omitempty"`
}

// handleStream monitors one uploaded stream, emitting matches as NDJSON
// while the body is consumed.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/streams/")
	if name == "" {
		http.Error(w, "stream name required", http.StatusBadRequest)
		return
	}
	det, err := s.root.NewStream()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.streams.Add(1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	// Matches are written while the request body is still being consumed;
	// HTTP/1.x needs explicit full-duplex for that. Errors (e.g. HTTP/2,
	// where duplex is the default) are ignored.
	_ = http.NewResponseController(w).EnableFullDuplex()
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	det.OnMatch = func(m vdsms.Match) {
		s.matches.Add(1)
		enc.Encode(matchEvent{
			Query:      m.QueryID,
			DetectedAt: m.DetectedAt.Seconds(),
			Start:      m.Start.Seconds(),
			End:        m.End.Seconds(),
			Similarity: m.Similarity,
		})
		if flusher != nil {
			flusher.Flush()
		}
	}
	_, merr := det.MonitorContext(r.Context(), r.Body)
	// With full duplex the handler owns body consumption: drain whatever a
	// failed or short monitor left behind, or the connection goroutine
	// races on the half-read body after the handler returns.
	io.Copy(io.Discard, r.Body)
	st := det.Stats()
	s.frames.Add(int64(st.Frames))
	for i, sh := range st.Shards {
		if i < len(s.shardCompared) {
			s.shardCompared[i].Add(sh.Compared)
		}
	}
	sum := streamSummary{
		Done: true, Stream: name,
		Frames: st.Frames, Windows: st.Windows, Matches: st.Matches,
		Workers: s.workers,
	}
	if s.workers > 0 {
		for _, sh := range st.Shards {
			sum.ShardCompared = append(sum.ShardCompared, sh.Compared)
		}
	}
	if merr != nil {
		sum.Error = merr.Error()
	}
	enc.Encode(sum)
}

// handleStats reports service-level counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	queries := s.root.NumQueries()
	s.mu.Unlock()
	compared := make([]int64, len(s.shardCompared))
	for i := range s.shardCompared {
		compared[i] = s.shardCompared[i].Load()
	}
	writeJSON(w, map[string]any{
		"queries":        queries,
		"streamsServed":  s.streams.Load(),
		"matchesEmitted": s.matches.Load(),
		"framesDecoded":  s.frames.Load(),
		"workers":        s.workers,
		"shardCompared":  compared,
		"checkpointing":  s.root.CheckpointingEnabled(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing sensible left to do.
		_ = fmt.Errorf("encode: %w", err)
	}
}

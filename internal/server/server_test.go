package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"vdsms"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	cfg := vdsms.DefaultConfig()
	cfg.K = 400
	cfg.Delta = 0.6
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func clip(t testing.TB, seed int64, seconds float64) []byte {
	t.Helper()
	var buf bytes.Buffer
	err := vdsms.Synthesize(&buf, vdsms.VideoOptions{
		Seconds: seconds, FPS: 2, W: 96, H: 80, Seed: seed, Quality: 80, GOP: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func do(t *testing.T, method, url string, body []byte) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestSubscribeAndList(t *testing.T) {
	_, ts := testServer(t)
	resp := do(t, http.MethodPut, ts.URL+"/queries/1", clip(t, 1, 16))
	if resp.StatusCode != 200 {
		t.Fatalf("PUT query: %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp = do(t, http.MethodGet, ts.URL+"/queries", nil)
	var out map[string]int
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if out["queries"] != 1 {
		t.Errorf("queries = %d", out["queries"])
	}
}

func TestSubscribeErrors(t *testing.T) {
	_, ts := testServer(t)
	// Garbage body.
	resp := do(t, http.MethodPut, ts.URL+"/queries/1", []byte("not a video"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage clip: %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Bad id.
	resp = do(t, http.MethodPut, ts.URL+"/queries/zero", clip(t, 1, 8))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id: %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Delete unknown.
	resp = do(t, http.MethodDelete, ts.URL+"/queries/9", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("delete unknown: %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Duplicate subscribe.
	do(t, http.MethodPut, ts.URL+"/queries/2", clip(t, 2, 8)).Body.Close()
	resp = do(t, http.MethodPut, ts.URL+"/queries/2", clip(t, 2, 8))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("duplicate subscribe: %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// streamAndParse uploads a stream and returns its match events and summary.
func streamAndParse(t *testing.T, ts *httptest.Server, name string, stream []byte) ([]matchEvent, streamSummary) {
	t.Helper()
	resp := do(t, http.MethodPost, ts.URL+"/streams/"+name, stream)
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("POST stream: %d", resp.StatusCode)
	}
	var events []matchEvent
	var sum streamSummary
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.Contains(line, `"done"`) {
			if err := json.Unmarshal([]byte(line), &sum); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var ev matchEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		events = append(events, ev)
	}
	return events, sum
}

func TestStreamDetection(t *testing.T) {
	_, ts := testServer(t)
	query := clip(t, 5, 20)
	do(t, http.MethodPut, ts.URL+"/queries/7", query).Body.Close()

	var stream bytes.Buffer
	err := vdsms.ComposeStream(&stream, 75, 1,
		bytes.NewReader(clip(t, 100, 30)),
		bytes.NewReader(query),
		bytes.NewReader(clip(t, 101, 30)),
	)
	if err != nil {
		t.Fatal(err)
	}
	events, sum := streamAndParse(t, ts, "channel-1", stream.Bytes())
	if len(events) == 0 {
		t.Fatal("no matches streamed")
	}
	for _, ev := range events {
		if ev.Query != 7 {
			t.Errorf("match for query %d", ev.Query)
		}
		if ev.DetectedAt < 30 || ev.DetectedAt > 60 {
			t.Errorf("match at %gs, copy is at 30-50s", ev.DetectedAt)
		}
		if ev.Similarity < 0.6 {
			t.Errorf("similarity %g below δ", ev.Similarity)
		}
	}
	if !sum.Done || sum.Matches != len(events) || sum.Frames != 160 {
		t.Errorf("summary %+v", sum)
	}
}

func TestConcurrentStreams(t *testing.T) {
	_, ts := testServer(t)
	queries := [][]byte{clip(t, 11, 16), clip(t, 12, 16), clip(t, 13, 16)}
	for i, q := range queries {
		do(t, http.MethodPut, fmt.Sprintf("%s/queries/%d", ts.URL, i+1), q).Body.Close()
	}
	var wg sync.WaitGroup
	got := make([][]matchEvent, 3)
	for c := 0; c < 3; c++ {
		var stream bytes.Buffer
		err := vdsms.ComposeStream(&stream, 75, 1,
			bytes.NewReader(clip(t, int64(200+c), 20)),
			bytes.NewReader(queries[c]),
			bytes.NewReader(clip(t, int64(300+c), 20)),
		)
		if err != nil {
			t.Fatal(err)
		}
		data := stream.Bytes()
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			events, _ := streamAndParse(t, ts, fmt.Sprintf("ch-%d", c), data)
			got[c] = events
		}(c)
	}
	wg.Wait()
	for c, events := range got {
		found := false
		for _, ev := range events {
			if ev.Query == c+1 {
				found = true
			}
		}
		if !found {
			t.Errorf("stream %d missed query %d", c, c+1)
		}
	}
}

func TestStreamBadBody(t *testing.T) {
	_, ts := testServer(t)
	do(t, http.MethodPut, ts.URL+"/queries/1", clip(t, 1, 8)).Body.Close()
	_, sum := streamAndParse(t, ts, "bad", []byte("garbage stream bytes........"))
	if sum.Error == "" {
		t.Error("garbage stream produced no error in summary")
	}
}

func TestStats(t *testing.T) {
	_, ts := testServer(t)
	do(t, http.MethodPut, ts.URL+"/queries/1", clip(t, 1, 12)).Body.Close()
	streamAndParse(t, ts, "s1", clip(t, 400, 30))
	resp := do(t, http.MethodGet, ts.URL+"/stats", nil)
	defer resp.Body.Close()
	var st map[string]float64
	json.NewDecoder(resp.Body).Decode(&st)
	if st["queries"] != 1 || st["streamsServed"] != 1 || st["framesDecoded"] != 60 {
		t.Errorf("stats %v", st)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := testServer(t)
	for _, tc := range []struct{ method, path string }{
		{http.MethodPost, "/queries"},
		{http.MethodGet, "/streams/x"},
		{http.MethodPost, "/stats"},
		{http.MethodPatch, "/queries/1"},
	} {
		resp := do(t, tc.method, ts.URL+tc.path, nil)
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: %d", tc.method, tc.path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

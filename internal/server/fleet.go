// Fleet endpoints: long-lived attached streams multiplexed over the shared
// query plane, complementing the legacy one-shot POST /streams/{name}
// upload (which holds a connection and a goroutine per stream for its
// whole life). Attached streams push segments request by request, so one
// service instance can serve thousands of tenants:
//
//	GET    /streams                      → attached stream ids
//	POST   /streams      {"id": "..."}   → attach (409 duplicate, 429 fleet full)
//	POST   /streams/{id}/frames          → push an MVC1 segment (429 + Retry-After on backpressure)
//	GET    /streams/{id}/stats           → per-stream counters
//	GET    /streams/{id}/matches         → matches reported so far
//	DELETE /streams/{id}[?drain=false]   → detach (drained by default)
package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"vdsms"
)

// handleFleet serves the /streams collection: list and attach.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		ids := s.fleet.StreamIDs()
		writeJSON(w, map[string]any{"streams": ids, "count": len(ids)})
	case http.MethodPost:
		var req struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.ID == "" {
			http.Error(w, `body must be {"id": "<stream id>"}`, http.StatusBadRequest)
			return
		}
		if _, err := s.fleet.Attach(req.ID); err != nil {
			telStreamsRejected.Inc()
			switch {
			case errors.Is(err, vdsms.ErrDuplicateStream):
				http.Error(w, err.Error(), http.StatusConflict)
			case errors.Is(err, vdsms.ErrFleetFull):
				http.Error(w, err.Error(), http.StatusTooManyRequests)
			default:
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		telStreamsServed.Inc()
		w.WriteHeader(http.StatusCreated)
		writeJSON(w, map[string]any{"attached": req.ID})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// handleFleetStream serves /streams/{id}/{sub} for an attached stream.
func (s *Server) handleFleetStream(w http.ResponseWriter, r *http.Request, id, sub string) {
	fs := s.fleet.Stream(id)
	if fs == nil {
		http.Error(w, "stream not attached", http.StatusNotFound)
		return
	}
	switch {
	case sub == "frames" && r.Method == http.MethodPost:
		if err := fs.PushSegment(r.Body); err != nil {
			if errors.Is(err, vdsms.ErrBackpressure) {
				telStreamsRejected.Inc()
				// The segment was not enqueued; the producer re-sends the
				// same bytes once the queue drains.
				w.Header().Set("Retry-After", "1")
				http.Error(w, err.Error(), http.StatusTooManyRequests)
				return
			}
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, map[string]any{"accepted": true, "pending": fs.Pending()})
	case sub == "stats" && r.Method == http.MethodGet:
		st := fs.Stats()
		writeJSON(w, map[string]any{
			"stream":  id,
			"frames":  st.Frames,
			"windows": st.Windows,
			"matches": st.Matches,
			"pending": fs.Pending(),
		})
	case sub == "matches" && r.Method == http.MethodGet:
		writeJSON(w, map[string]any{"stream": id, "matches": matchEvents(fs.Matches())})
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

// handleFleetDetach serves DELETE /streams/{id}. The stream's queue is
// drained and its final partial window flushed unless ?drain=false. The
// id leaves the pool immediately, so the response is the stream's last
// word: final counters plus every match it reported.
func (s *Server) handleFleetDetach(w http.ResponseWriter, r *http.Request, id string) {
	fs := s.fleet.Stream(id)
	if fs == nil {
		http.Error(w, "stream not attached", http.StatusNotFound)
		return
	}
	drain := r.URL.Query().Get("drain") != "false"
	fs.Detach(drain)
	st := fs.Stats()
	writeJSON(w, map[string]any{
		"detached": id, "drained": drain,
		"frames": st.Frames, "windows": st.Windows,
		"matches": matchEvents(fs.Matches()),
	})
}

// matchEvents converts facade matches to the NDJSON wire shape the legacy
// stream endpoint already uses.
func matchEvents(matches []vdsms.Match) []matchEvent {
	events := make([]matchEvent, len(matches))
	for i, m := range matches {
		events[i] = matchEvent{
			Query:      m.QueryID,
			DetectedAt: m.DetectedAt.Seconds(),
			Start:      m.Start.Seconds(),
			End:        m.End.Seconds(),
			Similarity: m.Similarity,
		}
	}
	return events
}

package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"vdsms"
)

// traceServer builds a server with decision-provenance tracing and the
// exact-audit channel armed. rootName keeps journal streams of different
// tests apart (the trace journal is process-wide).
func traceServer(t *testing.T, rootName string) (*Server, *httptest.Server) {
	t.Helper()
	cfg := vdsms.DefaultConfig()
	cfg.K = 400
	cfg.Delta = 0.6
	cfg.TraceEvents = 8192
	cfg.AuditFraction = 1
	cfg.StreamName = rootName
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp := do(t, http.MethodGet, url, nil)
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

type debugEvent struct {
	Seq      uint64  `json:"seq"`
	Stream   string  `json:"stream"`
	Kind     string  `json:"kind"`
	Query    int     `json:"query"`
	Estimate float64 `json:"estimate"`
}

func TestDebugEventsAndMatches(t *testing.T) {
	_, ts := traceServer(t, "dbg-root")
	query := clip(t, 5, 20)
	do(t, http.MethodPut, ts.URL+"/queries/7", query).Body.Close()

	var stream bytes.Buffer
	err := vdsms.ComposeStream(&stream, 75, 1,
		bytes.NewReader(clip(t, 100, 30)),
		bytes.NewReader(query),
		bytes.NewReader(clip(t, 101, 30)),
	)
	if err != nil {
		t.Fatal(err)
	}
	events, _ := streamAndParse(t, ts, "dbg-ch", stream.Bytes())
	if len(events) == 0 {
		t.Fatal("no matches streamed; nothing to explain")
	}

	// Reported events for the monitored stream, filtered by kind and query.
	var evResp struct {
		Tracing bool         `json:"tracing"`
		Total   uint64       `json:"total"`
		Events  []debugEvent `json:"events"`
	}
	if code := getJSON(t, ts.URL+"/debug/events?stream=dbg-ch&kind=reported&query=7&limit=0", &evResp); code != 200 {
		t.Fatalf("GET /debug/events: %d", code)
	}
	if !evResp.Tracing || evResp.Total == 0 {
		t.Errorf("tracing=%v total=%d", evResp.Tracing, evResp.Total)
	}
	if len(evResp.Events) == 0 {
		t.Fatal("no reported events journaled for the detected copy")
	}
	for _, ev := range evResp.Events {
		if ev.Kind != "reported" || ev.Query != 7 || ev.Stream != "dbg-ch" {
			t.Errorf("filter leaked event %+v", ev)
		}
		if ev.Estimate < 0.6 {
			t.Errorf("reported event below δ: %+v", ev)
		}
	}

	// Bad filter values are rejected.
	for _, q := range []string{"kind=bogus", "query=x", "since=-1", "limit=-2"} {
		resp := do(t, http.MethodGet, ts.URL+"/debug/events?"+q, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /debug/events?%s: %d, want 400", q, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// The match list holds provenance for our stream; each record explains
	// itself by id, audited against Theorem 1's bound.
	var mResp struct {
		Tracing bool                `json:"tracing"`
		Matches []vdsms.MatchRecord `json:"matches"`
	}
	if code := getJSON(t, ts.URL+"/debug/matches?limit=0", &mResp); code != 200 {
		t.Fatalf("GET /debug/matches: %d", code)
	}
	checked := 0
	for _, rec := range mResp.Matches {
		if rec.Stream != "dbg-ch" {
			continue
		}
		checked++
		if rec.QueryID != 7 {
			t.Errorf("record for query %d", rec.QueryID)
		}
		var one vdsms.MatchRecord
		if code := getJSON(t, fmt.Sprintf("%s/debug/matches/%d", ts.URL, rec.ID), &one); code != 200 {
			t.Fatalf("GET /debug/matches/%d: %d", rec.ID, code)
		}
		if one.ID != rec.ID || one.Stream != "dbg-ch" || len(one.Trajectory) == 0 {
			t.Errorf("explain record %+v", one)
		}
		if one.Audit == nil {
			t.Errorf("match %d not audited despite AuditFraction=1", rec.ID)
		} else if one.Audit.Violated {
			t.Errorf("match %d violates the sketch error bound: %+v", rec.ID, one.Audit)
		}
	}
	if checked == 0 {
		t.Error("no provenance records for the monitored stream")
	}

	// Unknown and malformed ids.
	resp := do(t, http.MethodGet, ts.URL+"/debug/matches/99999999", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown match id: %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
	resp = do(t, http.MethodGet, ts.URL+"/debug/matches/zero", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed match id: %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	resp = do(t, http.MethodPost, ts.URL+"/debug/events", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /debug/events: %d, want 405", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestDebugUntracedServer(t *testing.T) {
	_, ts := testServer(t) // tracing not armed
	var evResp struct {
		Tracing bool `json:"tracing"`
	}
	if code := getJSON(t, ts.URL+"/debug/events?stream=no-such-stream", &evResp); code != 200 {
		t.Fatalf("GET /debug/events: %d", code)
	}
	if evResp.Tracing {
		t.Error("untraced server claims tracing")
	}
}

func TestSlowWindowEndpoint(t *testing.T) {
	_, ts := testServer(t)
	post := func(body string) (*http.Response, map[string]any) {
		t.Helper()
		resp := do(t, http.MethodPost, ts.URL+"/debug/slow-window", []byte(body))
		var out map[string]any
		if resp.StatusCode == http.StatusOK {
			json.NewDecoder(resp.Body).Decode(&out)
		}
		resp.Body.Close()
		return resp, out
	}

	resp, out := post(`{"budget": "250ms"}`)
	if resp.StatusCode != 200 || out["slowWindow"] != "250ms" || out["enabled"] != true {
		t.Fatalf("POST 250ms: %d %v", resp.StatusCode, out)
	}

	// The live value shows up in /stats and survives a GET.
	var stats map[string]any
	if code := getJSON(t, ts.URL+"/stats", &stats); code != 200 {
		t.Fatalf("GET /stats: %d", code)
	}
	if stats["slowWindow"] != "250ms" {
		t.Errorf("/stats slowWindow = %v", stats["slowWindow"])
	}
	var got map[string]any
	if code := getJSON(t, ts.URL+"/debug/slow-window", &got); code != 200 || got["slowWindow"] != "250ms" {
		t.Errorf("GET after POST: %d %v", code, got)
	}

	// "off" disables; bad bodies are rejected without changing the budget.
	if _, out := post(`{"budget": "off"}`); out["enabled"] != false {
		t.Errorf("POST off: %v", out)
	}
	for _, body := range []string{"not json", `{"budget": "-5ms"}`, `{"budget": "fast"}`} {
		if resp, _ := post(body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %q: %d, want 400", body, resp.StatusCode)
		}
	}
	if _, got := post(`{"budget": "0"}`); got == nil {
		t.Error("POST 0 rejected")
	}
	resp = do(t, http.MethodDelete, ts.URL+"/debug/slow-window", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE: %d, want 405", resp.StatusCode)
	}
	resp.Body.Close()
}

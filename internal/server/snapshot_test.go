package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"vdsms"
)

// checkpointServer builds a server persisting into a temp directory.
func checkpointServer(t *testing.T, dir string, workers int) (*Server, *httptest.Server) {
	t.Helper()
	cfg := vdsms.DefaultConfig()
	cfg.K = 400
	cfg.Delta = 0.6
	cfg.Workers = workers
	cfg.CheckpointDir = dir
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestSnapshotEndpointDisabled: without a checkpoint directory, POST
// /snapshot explains itself with 503 and /stats reports checkpointing off.
func TestSnapshotEndpointDisabled(t *testing.T) {
	_, ts := testServer(t)
	resp := do(t, http.MethodPost, ts.URL+"/snapshot", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("snapshot without checkpoint dir: %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	resp = do(t, http.MethodGet, ts.URL+"/stats", nil)
	var st map[string]any
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if on, _ := st["checkpointing"].(bool); on {
		t.Error("stats report checkpointing enabled without a checkpoint dir")
	}
}

// TestSnapshotEndpointMethod: only POST checkpoints.
func TestSnapshotEndpointMethod(t *testing.T) {
	_, ts := checkpointServer(t, t.TempDir(), 0)
	resp := do(t, http.MethodGet, ts.URL+"/snapshot", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /snapshot: %d, want 405", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestSnapshotRestoresAcrossRestart is the service-level recovery story:
// subscribe, POST /snapshot, tear the server down, boot a fresh one on the
// same directory — the subscription set is back and keeps matching.
func TestSnapshotRestoresAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := checkpointServer(t, dir, 0)
	if s1.Restored() {
		t.Error("fresh server claims to be restored")
	}
	query := clip(t, 51, 20)
	do(t, http.MethodPut, ts1.URL+"/queries/3", query).Body.Close()

	resp := do(t, http.MethodPost, ts1.URL+"/snapshot", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /snapshot: %d", resp.StatusCode)
	}
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if ok, _ := out["checkpointed"].(bool); !ok {
		t.Errorf("snapshot response %v", out)
	}
	if n, _ := out["queries"].(float64); n != 1 {
		t.Errorf("snapshot reports %v queries, want 1", out["queries"])
	}
	ts1.Close() // crash the first service

	s2, ts2 := checkpointServer(t, dir, 0)
	if !s2.Restored() {
		t.Fatal("second boot did not restore from the checkpoint")
	}
	if n := s2.NumQueries(); n != 1 {
		t.Fatalf("restored %d queries, want 1", n)
	}
	var stream bytes.Buffer
	err := vdsms.ComposeStream(&stream, 75, 1,
		bytes.NewReader(clip(t, 500, 20)),
		bytes.NewReader(query),
	)
	if err != nil {
		t.Fatal(err)
	}
	events, _ := streamAndParse(t, ts2, "after-restart", stream.Bytes())
	if len(events) == 0 {
		t.Fatal("restored subscription detected nothing")
	}
	for _, ev := range events {
		if ev.Query != 3 {
			t.Errorf("match for query %d, want 3", ev.Query)
		}
	}
}

// TestStatsShardCompared: with a parallel kernel, /stats accumulates
// per-shard comparison counters across streams and their sum matches the
// total matching work done.
func TestStatsShardCompared(t *testing.T) {
	const workers = 4
	_, ts := checkpointServer(t, t.TempDir(), workers)
	queries := [][]byte{clip(t, 61, 12), clip(t, 62, 12), clip(t, 63, 12)}
	for i, q := range queries {
		do(t, http.MethodPut, ts.URL+"/queries/"+string(rune('1'+i)), q).Body.Close()
	}
	// Streams carry actual query copies so the kernel has candidates to
	// evaluate — pure noise is pruned before any similarity comparison.
	for c, q := range queries[:2] {
		var stream bytes.Buffer
		err := vdsms.ComposeStream(&stream, 75, 1,
			bytes.NewReader(clip(t, int64(600+c), 20)),
			bytes.NewReader(q),
		)
		if err != nil {
			t.Fatal(err)
		}
		streamAndParse(t, ts, "s"+string(rune('1'+c)), stream.Bytes())
	}

	resp := do(t, http.MethodGet, ts.URL+"/stats", nil)
	defer resp.Body.Close()
	var st struct {
		Workers       int     `json:"workers"`
		ShardCompared []int64 `json:"shardCompared"`
		Checkpointing bool    `json:"checkpointing"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Workers != workers {
		t.Errorf("workers = %d, want %d", st.Workers, workers)
	}
	if len(st.ShardCompared) != workers {
		t.Fatalf("shardCompared has %d entries, want %d", len(st.ShardCompared), workers)
	}
	var total int64
	for _, c := range st.ShardCompared {
		total += c
	}
	if total == 0 {
		t.Error("no comparisons recorded across shards")
	}
	if !st.Checkpointing {
		t.Error("stats report checkpointing disabled despite a checkpoint dir")
	}
}

package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"vdsms"
	"vdsms/internal/telemetry"
)

// obsServer builds a server exercising every instrumented layer: a parallel
// matching kernel (shard counters) and a checkpoint directory (WAL and
// checkpoint durations).
func obsServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	cfg := vdsms.DefaultConfig()
	cfg.K = 400
	cfg.Delta = 0.6
	cfg.Workers = 2
	cfg.CheckpointDir = t.TempDir()
	s, err := NewWithOptions(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func scrape(t *testing.T, ts *httptest.Server) *telemetry.Exposition {
	t.Helper()
	resp := do(t, http.MethodGet, ts.URL+"/metrics", nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	exp, err := telemetry.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}
	return exp
}

// TestMetricsEndToEnd drives a matching stream through a fully instrumented
// server and validates the scrape structurally: the exposition parses, the
// pipeline/durability/service series all exist with the right types, and the
// counters moved by the stream's work. Deltas, not absolutes: the registry
// is process-global and other tests in this binary feed it too.
func TestMetricsEndToEnd(t *testing.T) {
	_, ts := obsServer(t, Options{})
	before := scrape(t, ts)

	query := clip(t, 5, 20)
	do(t, http.MethodPut, ts.URL+"/queries/7", query).Body.Close()
	var stream bytes.Buffer
	err := vdsms.ComposeStream(&stream, 75, 1,
		bytes.NewReader(clip(t, 100, 20)),
		bytes.NewReader(query),
		bytes.NewReader(clip(t, 101, 20)),
	)
	if err != nil {
		t.Fatal(err)
	}
	events, _ := streamAndParse(t, ts, "obs-1", stream.Bytes())
	if len(events) == 0 {
		t.Fatal("stream produced no matches; the vcd_matches_total assertion needs some")
	}

	after := scrape(t, ts)
	delta := func(name string, labels ...telemetry.Label) float64 {
		t.Helper()
		a, ok := after.Value(name, labels...)
		if !ok {
			t.Fatalf("scrape is missing %s%v", name, labels)
		}
		b, _ := before.Value(name, labels...)
		return a - b
	}

	if d := delta("vcd_windows_processed_total"); d <= 0 {
		t.Errorf("vcd_windows_processed_total moved by %g, want > 0", d)
	}
	if d := delta("vcd_matches_total"); float64(len(events)) > d {
		t.Errorf("vcd_matches_total moved by %g, want >= %d", d, len(events))
	}
	if d := delta("vcd_frames_total"); d <= 0 {
		t.Errorf("vcd_frames_total moved by %g, want > 0", d)
	}

	// Every pipeline stage observed its per-window histogram, front end
	// (decode, extract — facade) and matching kernel (core) alike.
	stages := []string{"decode", "extract", "sketch", "probe", "combine", "merge", "window_total"}
	var windows float64
	for _, stage := range stages {
		d := delta("vcd_stage_duration_seconds_count", telemetry.L("stage", stage))
		if d <= 0 {
			t.Errorf("stage %q: histogram count moved by %g, want > 0", stage, d)
		}
		if stage == "window_total" {
			windows = d
		}
	}
	if w := delta("vcd_windows_processed_total"); w != windows {
		t.Errorf("window_total observations (%g) != windows processed (%g)", windows, w)
	}

	// Durability layer. The root detector owns the checkpoint lineage
	// (per-stream detectors deliberately run without one), so the
	// subscription change is what checkpoints here — writing the state file
	// and rotating the WAL, whose close-time fsync is timed.
	if d := delta("vcd_checkpoints_total"); d <= 0 {
		t.Errorf("vcd_checkpoints_total moved by %g, want > 0", d)
	}
	if d := delta("vcd_checkpoint_write_duration_seconds_count"); d <= 0 {
		t.Errorf("vcd_checkpoint_write_duration_seconds observed %g times, want > 0", d)
	}
	if d := delta("vcd_wal_fsync_duration_seconds_count"); d <= 0 {
		t.Errorf("vcd_wal_fsync_duration_seconds observed %g times, want > 0", d)
	}
	// Frame appends happen only in checkpointed monitors (exercised by the
	// facade tests); here the series just has to be scraped.
	if _, ok := after.Value("vcd_wal_append_duration_seconds_count"); !ok {
		t.Error("scrape is missing vcd_wal_append_duration_seconds")
	}

	// Per-shard comparison counters of the Workers=2 kernel: one query means
	// one shard does the comparing, so assert the sum and that both series
	// are scraped.
	var compared float64
	for shard := 0; shard < 2; shard++ {
		d := delta("vcd_shard_compared_total", telemetry.L("shard", fmt.Sprint(shard)))
		compared += d
	}
	if compared <= 0 {
		t.Errorf("vcd_shard_compared_total moved by %g across shards, want > 0", compared)
	}

	// Service layer.
	if d := delta("vcd_streams_served_total"); d != 1 {
		t.Errorf("vcd_streams_served_total moved by %g, want 1", d)
	}
	if v, ok := after.Value("vcd_queries"); !ok || v < 1 {
		t.Errorf("vcd_queries = %g, %v; want >= 1", v, ok)
	}

	// Families carry the types the exposition format promises.
	for family, typ := range map[string]string{
		"vcd_windows_processed_total":    "counter",
		"vcd_matches_total":              "counter",
		"vcd_stage_duration_seconds":     "histogram",
		"vcd_wal_fsync_duration_seconds": "histogram",
		"vcd_shard_compared_total":       "counter",
		"vcd_streams_active":             "gauge",
	} {
		if got := after.Type[family]; got != typ {
			t.Errorf("TYPE %s = %q, want %q", family, got, typ)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t)
	resp := do(t, http.MethodGet, ts.URL+"/healthz", nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: %d", resp.StatusCode)
	}
	var out map[string]bool
	json.NewDecoder(resp.Body).Decode(&out)
	if !out["ok"] {
		t.Errorf("healthz body %v", out)
	}
	bad := do(t, http.MethodPost, ts.URL+"/healthz", nil)
	bad.Body.Close()
	if bad.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz: %d", bad.StatusCode)
	}
}

func TestReadyz(t *testing.T) {
	// A server that has not finished restore-on-boot reports 503. New flips
	// ready as its last act, so the not-ready window is simulated directly.
	s, ts := testServer(t)
	s.ready.Store(false)
	resp := do(t, http.MethodGet, ts.URL+"/readyz", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("not-ready /readyz: %d, want 503", resp.StatusCode)
	}

	s.ready.Store(true)
	resp = do(t, http.MethodGet, ts.URL+"/readyz", nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ready /readyz: %d", resp.StatusCode)
	}
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	if out["ready"] != true {
		t.Errorf("readyz body %v", out)
	}
	if _, ok := out["restored"]; !ok {
		t.Errorf("readyz body missing restored flag: %v", out)
	}
}

// TestReadyzAfterResume checks the restored flag surfaces a real
// restore-on-boot.
func TestReadyzAfterResume(t *testing.T) {
	cfg := vdsms.DefaultConfig()
	cfg.K = 400
	cfg.CheckpointDir = t.TempDir()
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	do(t, http.MethodPut, ts1.URL+"/queries/3", clip(t, 3, 12)).Body.Close()
	ts1.Close()

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp := do(t, http.MethodGet, ts2.URL+"/readyz", nil)
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	if out["restored"] != true {
		t.Errorf("second boot readyz = %v, want restored=true", out)
	}
	if s2.NumQueries() != 1 {
		t.Errorf("restored %d queries, want 1", s2.NumQueries())
	}
}

func TestPprofOptIn(t *testing.T) {
	// Default surface: profiling is absent.
	_, off := testServer(t)
	resp := do(t, http.MethodGet, off.URL+"/debug/pprof/", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: GET /debug/pprof/ = %d, want 404", resp.StatusCode)
	}

	_, on := obsServer(t, Options{EnablePprof: true})
	resp = do(t, http.MethodGet, on.URL+"/debug/pprof/", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof on: GET /debug/pprof/ = %d, want 200", resp.StatusCode)
	}
	resp = do(t, http.MethodGet, on.URL+"/debug/pprof/cmdline", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof on: GET /debug/pprof/cmdline = %d, want 200", resp.StatusCode)
	}
}

// TestStatsConcurrentWithStreamAndChurn is the point-in-time /stats
// contract under fire: scrapes and stats reads run against an in-flight
// stream upload and subscription churn (which checkpoints — and so fsyncs —
// under the subscription mutex). Wait-free reads mean none of these block;
// the race detector checks the rest.
func TestStatsConcurrentWithStreamAndChurn(t *testing.T) {
	_, ts := obsServer(t, Options{})
	do(t, http.MethodPut, ts.URL+"/queries/1", clip(t, 21, 12)).Body.Close()
	stream := clip(t, 420, 30)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		streamAndParse(t, ts, "busy", stream)
	}()

	wg.Add(1)
	go func() { // subscription churn: add/remove under mu, checkpointing each time
		defer wg.Done()
		for i := 0; i < 5; i++ {
			do(t, http.MethodPut, ts.URL+"/queries/50", clip(t, 50, 8)).Body.Close()
			do(t, http.MethodDelete, ts.URL+"/queries/50", nil).Body.Close()
		}
	}()

	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp := do(t, http.MethodGet, ts.URL+"/stats", nil)
				var st map[string]any
				if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
					t.Errorf("stats read %d: %v", i, err)
				}
				resp.Body.Close()
				if _, ok := st["streamsActive"]; !ok {
					t.Errorf("stats read %d missing streamsActive: %v", i, st)
				}
			}
		}()
	}

	wg.Add(1)
	go func() { // scrapes interleaved with everything above
		defer wg.Done()
		for i := 0; i < 10; i++ {
			scrape(t, ts)
		}
	}()
	wg.Wait()

	// Quiescent again: the active-stream gauge and counter settled.
	resp := do(t, http.MethodGet, ts.URL+"/stats", nil)
	defer resp.Body.Close()
	var st map[string]float64
	json.NewDecoder(resp.Body).Decode(&st)
	if st["streamsActive"] != 0 {
		t.Errorf("streamsActive = %g after all streams finished", st["streamsActive"])
	}
	if st["streamsServed"] != 1 {
		t.Errorf("streamsServed = %g, want 1", st["streamsServed"])
	}
}

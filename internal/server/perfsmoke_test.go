package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"testing"

	"vdsms/internal/perfobs"
	"vdsms/internal/telemetry"
)

// TestPerfSmoke is the `make perf-smoke` workload: a 64-stream fleet run
// at 1% span sampling, after which every observability surface must hold
// together — /metrics parses and lints clean with the in-repo parser,
// /debug/spans serves schema-stable span JSON, /debug/fleet/top serves
// the outlier report, and /stats carries the perf and fleet blocks. With
// PERF_SMOKE_OUT set, the sampled spans are written there as the CI
// artifact. Gated behind PERF_SMOKE=1: it pushes ~64 streams of video and
// is meant for the dedicated CI job (which runs it under -race), not
// every `go test ./...`.
func TestPerfSmoke(t *testing.T) {
	if os.Getenv("PERF_SMOKE") == "" {
		t.Skip("set PERF_SMOKE=1 to run the perf smoke workload")
	}
	resetPerf(t)
	perfobs.Default.SetSampleFraction(0.01)
	perfobs.Default.SetAllocEvery(2)

	_, ts := testServer(t)
	do(t, http.MethodPut, ts.URL+"/queries/1", clip(t, 1, 16)).Body.Close()

	// 64 fleet streams, ~6 basic windows each: at 1% sampling the global
	// window counter guarantees a handful of sampled spans.
	const streams = 64
	seg := clip(t, 900, 30)
	for i := 0; i < streams; i++ {
		id := fmt.Sprintf("smoke-%02d", i)
		resp := do(t, http.MethodPost, ts.URL+"/streams", []byte(`{"id": "`+id+`"}`))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("attach %s: %d", id, resp.StatusCode)
		}
		resp.Body.Close()
		resp = do(t, http.MethodPost, ts.URL+"/streams/"+id+"/frames", seg)
		if resp.StatusCode != 200 {
			t.Fatalf("push %s: %d", id, resp.StatusCode)
		}
		resp.Body.Close()
	}
	for i := 0; i < streams; i++ {
		do(t, http.MethodDelete, ts.URL+fmt.Sprintf("/streams/smoke-%02d", i), nil).Body.Close()
	}

	// /metrics must parse and lint clean with the in-repo parser.
	resp := do(t, http.MethodGet, ts.URL+"/metrics", nil)
	var scrape bytes.Buffer
	scrape.ReadFrom(resp.Body)
	resp.Body.Close()
	e, err := telemetry.ParseExposition(bytes.NewReader(scrape.Bytes()))
	if err != nil {
		t.Fatalf("/metrics failed exposition parse: %v", err)
	}
	if err := e.LintHistograms(); err != nil {
		t.Errorf("/metrics failed histogram lint: %v", err)
	}
	if v, ok := e.Value("vcd_perf_spans_sampled_total"); !ok || v <= 0 {
		t.Errorf("vcd_perf_spans_sampled_total = %v (ok=%v), want > 0", v, ok)
	}
	if _, ok := e.Value("vcd_fleet_queue_depth"); !ok {
		t.Error("vcd_fleet_queue_depth missing from /metrics")
	}
	if v, ok := e.Value("vcd_fleet_outlier_slowest_ns"); !ok || v <= 0 {
		t.Errorf("vcd_fleet_outlier_slowest_ns = %v (ok=%v), want > 0", v, ok)
	}

	// /debug/spans: at least one schema-stable span line; keep the bytes
	// for the artifact.
	resp = do(t, http.MethodGet, ts.URL+"/debug/spans", nil)
	var spansBody bytes.Buffer
	spansBody.ReadFrom(resp.Body)
	resp.Body.Close()
	spans := 0
	sc := bufio.NewScanner(bytes.NewReader(spansBody.Bytes()))
	for sc.Scan() {
		var rec perfobs.SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad span line %q: %v", sc.Text(), err)
		}
		if rec.Schema != "vcd_span/v1" {
			t.Errorf("span schema = %q", rec.Schema)
		}
		if rec.NS["window_total"] <= 0 {
			t.Errorf("span without window_total: %v", rec.NS)
		}
		spans++
	}
	if spans == 0 {
		t.Fatal("1% sampling produced no spans over the fleet run")
	}
	t.Logf("sampled %d spans across %d streams", spans, streams)

	// /debug/fleet/top: schema-stable outlier report with a slowest entry.
	resp = do(t, http.MethodGet, ts.URL+"/debug/fleet/top", nil)
	var rep perfobs.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rep.Schema != "vcd_fleet_top/v1" {
		t.Errorf("fleet top schema = %q", rep.Schema)
	}
	if len(rep.Slowest) == 0 {
		t.Error("no slowest-stream outliers after a 64-stream run")
	}

	// /stats: perf and fleet blocks present and populated.
	resp = do(t, http.MethodGet, ts.URL+"/stats", nil)
	var st struct {
		Perf  map[string]any `json:"perf"`
		Fleet map[string]any `json:"fleet"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if w, _ := st.Perf["windows"].(float64); w <= 0 {
		t.Errorf("/stats perf.windows = %v", st.Perf["windows"])
	}
	if hw, _ := st.Fleet["queueDepthHW"].(float64); hw <= 0 {
		t.Errorf("/stats fleet.queueDepthHW = %v", st.Fleet["queueDepthHW"])
	}

	if out := os.Getenv("PERF_SMOKE_OUT"); out != "" {
		if err := os.WriteFile(out, spansBody.Bytes(), 0o644); err != nil {
			t.Fatalf("writing span artifact: %v", err)
		}
		t.Logf("wrote span artifact to %s", out)
	}
}

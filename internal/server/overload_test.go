package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"vdsms"
)

// overloadServer builds a service whose overload controller is armed with
// an impossible budget: every monitored window breaches, so a single
// stream upload drives the shed level to the maximum.
func overloadServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	cfg := vdsms.DefaultConfig()
	cfg.K = 400
	cfg.Delta = 0.6
	cfg.WindowSec = 1
	cfg.RealTimeBudget = time.Nanosecond
	cfg.Shed = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func readyz(t *testing.T, ts *httptest.Server) (int, map[string]any) {
	t.Helper()
	resp := do(t, http.MethodGet, ts.URL+"/readyz", nil)
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestReadyzDegradesUnderOverload walks the health surface through a full
// overload cycle: ready while healthy, 503 while shedding at the maximum
// level, ready again once the budget is met and the controller recovers.
func TestReadyzDegradesUnderOverload(t *testing.T) {
	s, ts := overloadServer(t)
	do(t, http.MethodPut, ts.URL+"/queries/1", clip(t, 1, 10)).Body.Close()

	if code, _ := readyz(t, ts); code != http.StatusOK {
		t.Fatalf("readyz before load = %d, want 200", code)
	}

	// 60 one-second windows over a nanosecond budget: the controller
	// escalates to the maximum level during the upload.
	_, sum := streamAndParse(t, ts, "hot", clip(t, 50, 60))
	if sum.Error != "" {
		t.Fatalf("stream errored: %s", sum.Error)
	}
	if lvl := s.root.ShedLevel(); lvl < 3 {
		t.Fatalf("shed level %d after overload stream, want the maximum", lvl)
	}
	code, body := readyz(t, ts)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("readyz at max shed = %d, want 503", code)
	}
	if body["overloaded"] != true {
		t.Fatalf("readyz body %v, want overloaded=true", body)
	}

	// Retune to a generous budget and stream again: the controller steps
	// back down to level 0 and the service reports ready.
	s.root.SetRealTimeBudget(time.Hour)
	_, sum = streamAndParse(t, ts, "cool", clip(t, 51, 120))
	if sum.Error != "" {
		t.Fatalf("recovery stream errored: %s", sum.Error)
	}
	if lvl := s.root.ShedLevel(); lvl != 0 {
		t.Fatalf("shed level %d after recovery stream, want 0", lvl)
	}
	if code, _ := readyz(t, ts); code != http.StatusOK {
		t.Fatalf("readyz after recovery = %d, want 200", code)
	}
}

// TestStatsShedBlock checks /stats surfaces the overload loop state and the
// per-stream counters folded in as streams complete.
func TestStatsShedBlock(t *testing.T) {
	_, ts := overloadServer(t)
	do(t, http.MethodPut, ts.URL+"/queries/1", clip(t, 1, 10)).Body.Close()
	_, sum := streamAndParse(t, ts, "hot", clip(t, 60, 60))
	if sum.Error != "" {
		t.Fatalf("stream errored: %s", sum.Error)
	}

	resp := do(t, http.MethodGet, ts.URL+"/stats", nil)
	defer resp.Body.Close()
	var stats struct {
		Shed struct {
			Armed       bool   `json:"armed"`
			Level       int    `json:"level"`
			MaxLevel    int    `json:"maxLevel"`
			Budget      string `json:"budget"`
			Windows     int64  `json:"windows"`
			ShedWindows int64  `json:"shedWindows"`
			Transitions int64  `json:"transitions"`
			ExtractShed int64  `json:"extractShed"`
		} `json:"shed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sh := stats.Shed
	if !sh.Armed || sh.MaxLevel != 3 {
		t.Fatalf("shed block %+v, want armed with maxLevel 3", sh)
	}
	if sh.Level < 1 || sh.Transitions == 0 || sh.ShedWindows == 0 {
		t.Fatalf("shed block %+v, want an escalated loop with history", sh)
	}
	if sh.Windows == 0 {
		t.Fatalf("shed block %+v, want observed windows", sh)
	}
	if sh.ExtractShed == 0 {
		t.Fatalf("shed block %+v, want folded per-stream extract sheds", sh)
	}
}

// TestStatsShedBlockUnarmed pins the quiet shape: without a real-time
// budget the block is present but inert.
func TestStatsShedBlockUnarmed(t *testing.T) {
	_, ts := testServer(t)
	resp := do(t, http.MethodGet, ts.URL+"/stats", nil)
	defer resp.Body.Close()
	var stats struct {
		Shed struct {
			Armed bool `json:"armed"`
			Level int  `json:"level"`
		} `json:"shed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Shed.Armed || stats.Shed.Level != 0 {
		t.Fatalf("shed block %+v on an unarmed server, want inert", stats.Shed)
	}
}

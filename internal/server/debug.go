// Decision-provenance debug surface:
//
//	GET  /debug/events                → journaled candidate-lifecycle events
//	GET  /debug/matches               → retained match provenance records
//	GET  /debug/matches/{id}          → one match's explain record
//	GET  /debug/slow-window           → the live slow-window budget
//	POST /debug/slow-window           → retune the budget, no restart
//
// Events and records come from the process-wide trace journal; they are
// non-empty only when the service was started with tracing armed
// (vcdserve -trace-events / -audit-fraction). The endpoints are read-only
// except /debug/slow-window, which adjusts an observability threshold —
// never detection semantics.
package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"vdsms/internal/trace"
)

// handleDebugEvents serves the journal's retained lifecycle events,
// oldest first. Filters: ?stream=name, ?query=id, ?kind=name (born,
// extended, pruned, dropped, expired, reported, near_miss), ?since=seq,
// ?limit=n (default 256, 0 = all retained).
func (s *Server) handleDebugEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	f := trace.Filter{
		Stream: q.Get("stream"),
		Kind:   trace.KindAny,
		Limit:  256,
	}
	if v := q.Get("kind"); v != "" {
		k, ok := trace.ParseKind(v)
		if !ok {
			http.Error(w, "unknown event kind "+strconv.Quote(v), http.StatusBadRequest)
			return
		}
		f.Kind = k
	}
	if v := q.Get("query"); v != "" {
		id, err := strconv.Atoi(v)
		if err != nil {
			http.Error(w, "query must be an integer id", http.StatusBadRequest)
			return
		}
		f.QID = id
	}
	if v := q.Get("since"); v != "" {
		seq, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "since must be a sequence number", http.StatusBadRequest)
			return
		}
		f.SinceSeq = seq
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "limit must be a non-negative integer", http.StatusBadRequest)
			return
		}
		f.Limit = n
	}
	evs := trace.Default.Events(f)
	writeJSON(w, map[string]any{
		"tracing": s.root.Tracing(),
		"total":   trace.Default.EventCount(),
		"events":  evs,
	})
}

// handleDebugMatches serves match provenance: /debug/matches lists the
// retained records (?limit=n, default 64), /debug/matches/{id} returns one
// explain record by journal id.
func (s *Server) handleDebugMatches(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/debug/matches")
	rest = strings.TrimPrefix(rest, "/")
	if rest == "" {
		limit := 64
		if v := r.URL.Query().Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "limit must be a non-negative integer", http.StatusBadRequest)
				return
			}
			limit = n
		}
		writeJSON(w, map[string]any{
			"tracing": s.root.Tracing(),
			"matches": trace.Default.Matches(limit),
		})
		return
	}
	id, err := strconv.ParseUint(rest, 10, 64)
	if err != nil || id == 0 {
		http.Error(w, "match id must be a positive integer", http.StatusBadRequest)
		return
	}
	rec, ok := trace.Default.Match(id)
	if !ok {
		http.Error(w, "no retained record for match "+rest, http.StatusNotFound)
		return
	}
	writeJSON(w, rec)
}

// slowWindowRequest is the POST /debug/slow-window body: a Go duration
// string ("250ms", "2s"), "0" or "off" to disable.
type slowWindowRequest struct {
	Budget string `json:"budget"`
}

// handleSlowWindow reads (GET) or retunes (POST) the slow-window budget of
// the service's detector lineage. The new value reaches every live stream
// engine at its next basic window — no restart, no stream interruption.
func (s *Server) handleSlowWindow(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.writeSlowWindow(w)
	case http.MethodPost:
		var req slowWindowRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "body must be JSON: {\"budget\": \"250ms\"}", http.StatusBadRequest)
			return
		}
		var budget time.Duration
		switch req.Budget {
		case "", "off", "0":
			budget = 0
		default:
			d, err := time.ParseDuration(req.Budget)
			if err != nil || d < 0 {
				http.Error(w, "budget must be a non-negative Go duration, \"off\" or \"0\"",
					http.StatusBadRequest)
				return
			}
			budget = d
		}
		s.root.SetSlowWindow(budget)
		s.writeSlowWindow(w)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// writeSlowWindow reports the live budget (shared across all streams).
func (s *Server) writeSlowWindow(w http.ResponseWriter) {
	b := s.root.SlowWindowBudget()
	writeJSON(w, map[string]any{
		"slowWindow":        b.String(),
		"slowWindowSeconds": b.Seconds(),
		"enabled":           b > 0,
	})
}

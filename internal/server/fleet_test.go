package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"vdsms"
)

func attach(t *testing.T, ts *httptest.Server, id string) *http.Response {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"id": id})
	return do(t, http.MethodPost, ts.URL+"/streams", body)
}

func TestFleetAttachDetach(t *testing.T) {
	_, ts := testServer(t)

	resp := attach(t, ts, "cam-1")
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("attach: %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp = attach(t, ts, "cam-1")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate attach: %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp = do(t, http.MethodGet, ts.URL+"/streams", nil)
	var list struct {
		Streams []string `json:"streams"`
		Count   int      `json:"count"`
	}
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if list.Count != 1 || len(list.Streams) != 1 || list.Streams[0] != "cam-1" {
		t.Fatalf("list: %+v", list)
	}

	resp = do(t, http.MethodDelete, ts.URL+"/streams/cam-1", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("detach: %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = do(t, http.MethodDelete, ts.URL+"/streams/cam-1", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("detach of detached stream: %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestFleetAdmissionLimit(t *testing.T) {
	cfg := vdsms.DefaultConfig()
	cfg.K = 400
	s, err := NewWithOptions(cfg, Options{Fleet: vdsms.FleetConfig{MaxStreams: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		resp := attach(t, ts, fmt.Sprintf("cam-%d", i))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("attach %d: %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp := attach(t, ts, "cam-overflow")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit attach: %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestFleetSegmentDetection drives the full attached-stream lifecycle: a
// query is subscribed, a stream attaches, pushes its feed as multiple
// segments, and the per-stream stats and matches endpoints report the
// embedded copy.
func TestFleetSegmentDetection(t *testing.T) {
	_, ts := testServer(t)
	query := clip(t, 5, 20)
	do(t, http.MethodPut, ts.URL+"/queries/7", query).Body.Close()

	attach(t, ts, "cam-1").Body.Close()
	for i, seg := range [][]byte{clip(t, 100, 30), query, clip(t, 101, 30)} {
		resp := do(t, http.MethodPost, ts.URL+"/streams/cam-1/frames", seg)
		if resp.StatusCode != 200 {
			t.Fatalf("push segment %d: %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Detach drains and flushes, making the final counts deterministic;
	// its response is the stream's last word (the id leaves the pool).
	resp := do(t, http.MethodDelete, ts.URL+"/streams/cam-1", nil)
	var det struct {
		Frames  int          `json:"frames"`
		Matches []matchEvent `json:"matches"`
	}
	json.NewDecoder(resp.Body).Decode(&det)
	resp.Body.Close()
	if det.Frames != 160 {
		t.Errorf("frames = %d, want 160", det.Frames)
	}
	if len(det.Matches) == 0 {
		t.Fatal("no matches on detach summary")
	}
	for _, ev := range det.Matches {
		if ev.Query != 7 {
			t.Errorf("match for query %d", ev.Query)
		}
		if ev.DetectedAt < 30 || ev.DetectedAt > 60 {
			t.Errorf("match at %gs, copy is at 30-50s", ev.DetectedAt)
		}
	}
}

func TestFleetPushErrors(t *testing.T) {
	_, ts := testServer(t)
	resp := do(t, http.MethodPost, ts.URL+"/streams/ghost/frames", clip(t, 1, 4))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("push to unattached stream: %d", resp.StatusCode)
	}
	resp.Body.Close()

	attach(t, ts, "cam-1").Body.Close()
	resp = do(t, http.MethodPost, ts.URL+"/streams/cam-1/frames", []byte("not mvc1"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage segment: %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp = do(t, http.MethodGet, ts.URL+"/streams/cam-1/stats", nil)
	var st struct {
		Frames int `json:"frames"`
	}
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.Frames != 0 {
		t.Errorf("rejected segment fed %d frames", st.Frames)
	}
}

// TestFleetSharedSubscription pins the memory model's visible half: a
// query subscribed through the legacy PUT endpoint is seen by attached
// fleet streams (one plane serves both surfaces).
func TestFleetSharedSubscription(t *testing.T) {
	_, ts := testServer(t)
	attach(t, ts, "cam-1").Body.Close()

	query := clip(t, 9, 20)
	do(t, http.MethodPut, ts.URL+"/queries/3", query).Body.Close()

	var stream bytes.Buffer
	if err := vdsms.ComposeStream(&stream, 75, 1,
		bytes.NewReader(clip(t, 200, 20)), bytes.NewReader(query)); err != nil {
		t.Fatal(err)
	}
	resp := do(t, http.MethodPost, ts.URL+"/streams/cam-1/frames", stream.Bytes())
	resp.Body.Close()

	resp = do(t, http.MethodDelete, ts.URL+"/streams/cam-1", nil)
	var got struct {
		Matches []matchEvent `json:"matches"`
	}
	json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if len(got.Matches) == 0 {
		t.Fatal("fleet stream did not see the shared subscription")
	}
}

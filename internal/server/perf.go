// Performance-attribution surface: sampled span export, fleet outlier
// top-K, and live sampling control. See internal/perfobs and DESIGN.md §14.
package server

import (
	"encoding/json"
	"net/http"
	"strconv"

	"vdsms/internal/perfobs"
)

// handleDebugSpans exports the sampled span ring (GET, oldest first, one
// JSON object per line; ?limit=N caps the count) and retunes span sampling
// live (POST {"sampleEvery": N} — 0 disables, 1 samples every window).
func (s *Server) handleDebugSpans(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		limit := 0
		if v := r.URL.Query().Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "limit must be a non-negative integer", http.StatusBadRequest)
				return
			}
			limit = n
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := perfobs.Default.WriteSpans(w, limit); err != nil {
			// Headers already sent; the connection is the error signal.
			return
		}
	case http.MethodPost:
		var req struct {
			SampleEvery *int64   `json:"sampleEvery"`
			Fraction    *float64 `json:"fraction"`
			AllocEvery  *int64   `json:"allocEvery"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		switch {
		case req.SampleEvery != nil:
			perfobs.Default.SetSampleEvery(*req.SampleEvery)
		case req.Fraction != nil:
			perfobs.Default.SetSampleFraction(*req.Fraction)
		default:
			http.Error(w, `want {"sampleEvery": N} or {"fraction": F}`, http.StatusBadRequest)
			return
		}
		if req.AllocEvery != nil {
			perfobs.Default.SetAllocEvery(*req.AllocEvery)
		}
		writeJSON(w, map[string]any{"sampleEvery": perfobs.Default.SampleEvery()})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// handleFleetTop reports the fleet outlier top-K: the slowest, most-shed
// and most-backpressured streams by approximate weight (?limit=N caps each
// list; bounded space-saving sketches, no per-stream metric cardinality).
func (s *Server) handleFleetTop(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "limit must be a non-negative integer", http.StatusBadRequest)
			return
		}
		limit = n
	}
	writeJSON(w, perfobs.DefaultOutliers.Report(limit))
}

// perfStatsBlock is the /stats summary of the attribution machinery: the
// sampling state, fold totals, and the top outlier of each category.
func perfStatsBlock() map[string]any {
	agg := perfobs.Default.Aggregate()
	stages := map[string]any{}
	for st := perfobs.Stage(0); st < perfobs.NumStages; st++ {
		sa := agg.Stages[st]
		if sa.Count == 0 {
			continue
		}
		stages[st.String()] = map[string]any{
			"count":  sa.Count,
			"meanNs": agg.MeanNS(st),
			"p99Ns":  agg.Quantile(st, 0.99),
		}
	}
	blk := map[string]any{
		"sampleEvery":  perfobs.Default.SampleEvery(),
		"spansSampled": perfobs.Default.Sampled(),
		"windows":      agg.Windows,
		"allocSampled": agg.AllocSampled,
		"stages":       stages,
	}
	rep := perfobs.DefaultOutliers.Report(1)
	out := map[string]any{}
	if len(rep.Slowest) > 0 {
		out["slowest"] = rep.Slowest[0]
	}
	if len(rep.Shed) > 0 {
		out["shed"] = rep.Shed[0]
	}
	if len(rep.Backpressure) > 0 {
		out["backpressure"] = rep.Backpressure[0]
	}
	if len(out) > 0 {
		blk["outliers"] = out
	}
	return blk
}

package edit

import "fmt"

// Temporal-attack family names. Each family groups the presets of one kind
// of temporal distortion; "none" is the verbatim control every robustness
// run carries so per-family numbers have a baseline.
const (
	FamilyNone    = "none"
	FamilySpeed   = "speed"
	FamilyFPS     = "fps"
	FamilyDrop    = "drop"
	FamilyStutter = "stutter"
	FamilyReorder = "reorder"
	FamilySplice  = "splice"
)

// TemporalFamilies lists the attack families with presets, in the stable
// order used by workloads and reports ("none" excluded — it is a control,
// not an attack).
func TemporalFamilies() []string {
	return []string{FamilySpeed, FamilyFPS, FamilyDrop, FamilyStutter, FamilyReorder, FamilySplice}
}

// Preset is one named parameterisation of a temporal-attack family. Build
// produces the concrete Attack for a source at the given frame rate —
// second-denominated presets (reorder segments, splice lengths) convert
// through fps — deterministic under seed. Splice presets leave Attack.Decoy
// nil; the caller supplies decoy footage before Apply.
type Preset struct {
	Family string
	Name   string
	Build  func(fps float64, seed int64) Attack
}

// TemporalPresets returns the standing presets of a family, mildest first.
// It panics on an unknown family name; use TemporalFamilies for the valid
// set.
func TemporalPresets(family string) []Preset {
	switch family {
	case FamilyNone:
		return []Preset{{FamilyNone, "verbatim", func(float64, int64) Attack { return Attack{} }}}
	case FamilySpeed:
		return []Preset{
			speedPreset("0.8x", 0.8),
			speedPreset("1.25x", 1.25),
			speedPreset("1.5x", 1.5),
		}
	case FamilyFPS:
		return []Preset{
			fpsPreset("ntsc-pal", 25.0/29.97),
			fpsPreset("pal-ntsc", 29.97/25.0),
			fpsPreset("half-rate", 0.5),
		}
	case FamilyDrop:
		return []Preset{
			dropPreset("5%", 0.05),
			dropPreset("15%", 0.15),
			dropPreset("30%", 0.30),
		}
	case FamilyStutter:
		return []Preset{
			stutterPreset("5%x1", 0.05, 1),
			stutterPreset("10%x2", 0.10, 2),
		}
	case FamilyReorder:
		return []Preset{
			reorderPreset("10s", 10),
			reorderPreset("5s", 5),
			reorderPreset("2s", 2),
		}
	case FamilySplice:
		return []Preset{
			splicePreset("8s+2s", 8, 2),
			splicePreset("5s+3s", 5, 3),
		}
	}
	panic(fmt.Sprintf("edit: unknown temporal-attack family %q", family))
}

func speedPreset(name string, factor float64) Preset {
	return Preset{FamilySpeed, name, func(float64, int64) Attack {
		return Attack{SpeedFactor: factor}
	}}
}

func fpsPreset(name string, ratio float64) Preset {
	return Preset{FamilyFPS, name, func(float64, int64) Attack {
		return Attack{FPSRatio: ratio}
	}}
}

func dropPreset(name string, frac float64) Preset {
	return Preset{FamilyDrop, name, func(_ float64, seed int64) Attack {
		return Attack{DropFrac: frac, DropSeed: seed}
	}}
}

func stutterPreset(name string, frac float64, repeat int) Preset {
	return Preset{FamilyStutter, name, func(_ float64, seed int64) Attack {
		return Attack{StutterFrac: frac, StutterRepeat: repeat, StutterSeed: seed}
	}}
}

func reorderPreset(name string, segSec float64) Preset {
	return Preset{FamilyReorder, name, func(fps float64, seed int64) Attack {
		return Attack{SegmentFrames: secFrames(segSec, fps), ReorderSeed: seed}
	}}
}

func splicePreset(name string, clipSec, gapSec float64) Preset {
	return Preset{FamilySplice, name, func(fps float64, seed int64) Attack {
		return Attack{
			SpliceSegFrames: secFrames(clipSec, fps),
			SpliceGapFrames: secFrames(gapSec, fps),
		}
	}}
}

// secFrames converts a duration in seconds to at least one frame at fps.
func secFrames(sec, fps float64) int {
	n := int(sec * fps)
	if n < 1 {
		n = 1
	}
	return n
}

// Package edit implements the video editing operations used to manufacture
// copies: photometric attacks (brightness, contrast, colour shift, noise),
// geometric attacks (resolution change), and temporal attacks (frame-rate
// resampling and segment reordering). These reproduce the paper's VS2
// construction: "we alter 20-50% of the color as well as the brightness,
// add noises and change the resolutions ... re-compress them using
// different frame rate ... partition the edited short videos into segments
// [and] reorder these segments".
//
// All edits are lazy vframe.Source wrappers; nothing is materialised.
// Edits are deterministic given their seeds, so streams remain reproducible.
package edit

import (
	"fmt"
	"math"

	"vdsms/internal/vframe"
)

// Brightness adds delta to every luma sample (clamped).
func Brightness(src vframe.Source, delta float64) vframe.Source {
	return vframe.Map(src, func(_ int, f *vframe.Frame) *vframe.Frame {
		for i, v := range f.Y {
			f.Y[i] = clampU8(float64(v) + delta)
		}
		return f
	})
}

// Contrast scales luma around mid-grey: y' = 128 + factor·(y − 128).
func Contrast(src vframe.Source, factor float64) vframe.Source {
	return vframe.Map(src, func(_ int, f *vframe.Frame) *vframe.Frame {
		for i, v := range f.Y {
			f.Y[i] = clampU8(128 + factor*(float64(v)-128))
		}
		return f
	})
}

// ColorShift offsets the chroma planes by (dCb, dCr).
func ColorShift(src vframe.Source, dCb, dCr float64) vframe.Source {
	return vframe.Map(src, func(_ int, f *vframe.Frame) *vframe.Frame {
		for i := range f.Cb {
			f.Cb[i] = clampU8(float64(f.Cb[i]) + dCb)
			f.Cr[i] = clampU8(float64(f.Cr[i]) + dCr)
		}
		return f
	})
}

// Noise adds deterministic pseudo-random uniform noise in [−amp, amp] to the
// luma plane. The noise for a given (seed, frame, pixel) never changes, so
// edited streams stay reproducible.
func Noise(src vframe.Source, amp float64, seed int64) vframe.Source {
	return vframe.Map(src, func(i int, f *vframe.Frame) *vframe.Frame {
		h := splitmix64(uint64(seed) ^ uint64(i)*0x9E3779B97F4A7C15)
		// One PRNG stream per frame; advance per pixel.
		state := h
		for j, v := range f.Y {
			state = splitmix64(state)
			n := (float64(state>>11)/float64(1<<53) - 0.5) * 2 * amp
			f.Y[j] = clampU8(float64(v) + n)
			_ = j
		}
		return f
	})
}

// Rescale changes the frame resolution to w×h (multiples of 16) with
// bilinear resampling.
func Rescale(src vframe.Source, w, h int) vframe.Source {
	return vframe.Map(src, func(_ int, f *vframe.Frame) *vframe.Frame {
		return vframe.Resize(f, w, h)
	})
}

// Resample changes the frame rate to newFPS by nearest-frame index mapping
// (the temporal effect of an NTSC→PAL re-encode). The output duration in
// seconds matches the input.
func Resample(src vframe.Source, newFPS float64) vframe.Source {
	if newFPS <= 0 {
		panic("edit: Resample to non-positive FPS")
	}
	n := int(math.Round(float64(src.Len()) * newFPS / src.FPS()))
	if n < 1 {
		n = 1
	}
	return &resampleSource{parent: src, fps: newFPS, n: n}
}

type resampleSource struct {
	parent vframe.Source
	fps    float64
	n      int
}

func (r *resampleSource) Len() int     { return r.n }
func (r *resampleSource) FPS() float64 { return r.fps }

func (r *resampleSource) Frame(i int) *vframe.Frame {
	j := int(math.Round(float64(i) * r.parent.FPS() / r.fps))
	if j >= r.parent.Len() {
		j = r.parent.Len() - 1
	}
	return r.parent.Frame(j)
}

// Letterbox overlays black bars covering barFrac of the frame height (half
// on top, half on bottom) — the aspect-ratio attack of re-broadcast copies.
// barFrac must lie in [0, 0.9].
func Letterbox(src vframe.Source, barFrac float64) vframe.Source {
	if barFrac < 0 || barFrac > 0.9 {
		panic(fmt.Sprintf("edit: letterbox fraction %g out of [0, 0.9]", barFrac))
	}
	return vframe.Map(src, func(_ int, f *vframe.Frame) *vframe.Frame {
		bar := int(float64(f.H) * barFrac / 2)
		for y := 0; y < bar; y++ {
			blackRow(f, y)
			blackRow(f, f.H-1-y)
		}
		return f
	})
}

func blackRow(f *vframe.Frame, y int) {
	for x := 0; x < f.W; x++ {
		f.Y[y*f.W+x] = 16
	}
	cy := y / 2
	for x := 0; x < f.W/2; x++ {
		f.Cb[cy*f.W/2+x] = 128
		f.Cr[cy*f.W/2+x] = 128
	}
}

// CenterCrop keeps the central keepFrac of each dimension and scales back
// to the original geometry (the zoom/crop attack). keepFrac must lie in
// (0, 1]; the crop window is snapped so the intermediate frame keeps
// 16-multiple dimensions.
func CenterCrop(src vframe.Source, keepFrac float64) vframe.Source {
	if keepFrac <= 0 || keepFrac > 1 {
		panic(fmt.Sprintf("edit: crop fraction %g out of (0, 1]", keepFrac))
	}
	return vframe.Map(src, func(_ int, f *vframe.Frame) *vframe.Frame {
		cw := snap16(int(float64(f.W) * keepFrac))
		ch := snap16(int(float64(f.H) * keepFrac))
		if cw >= f.W && ch >= f.H {
			return f
		}
		x0 := (f.W - cw) / 2 / 2 * 2 // even, for chroma alignment
		y0 := (f.H - ch) / 2 / 2 * 2
		cropped := vframe.NewFrame(cw, ch)
		for y := 0; y < ch; y++ {
			copy(cropped.Y[y*cw:(y+1)*cw], f.Y[(y0+y)*f.W+x0:])
		}
		for y := 0; y < ch/2; y++ {
			copy(cropped.Cb[y*cw/2:(y+1)*cw/2], f.Cb[(y0/2+y)*f.W/2+x0/2:])
			copy(cropped.Cr[y*cw/2:(y+1)*cw/2], f.Cr[(y0/2+y)*f.W/2+x0/2:])
		}
		return vframe.Resize(cropped, f.W, f.H)
	})
}

func snap16(v int) int {
	v -= v % 16
	if v < 16 {
		v = 16
	}
	return v
}

// Logo overlays an opaque bright rectangle in a corner — the broadcaster
// watermark every re-aired copy carries. sizeFrac is the logo's side as a
// fraction of the frame's smaller dimension (0 disables, max 0.5); corner
// 0..3 selects TL, TR, BL, BR.
func Logo(src vframe.Source, sizeFrac float64, corner int) vframe.Source {
	if sizeFrac < 0 || sizeFrac > 0.5 {
		panic(fmt.Sprintf("edit: logo size %g out of [0, 0.5]", sizeFrac))
	}
	if corner < 0 || corner > 3 {
		panic(fmt.Sprintf("edit: logo corner %d out of [0, 3]", corner))
	}
	return vframe.Map(src, func(_ int, f *vframe.Frame) *vframe.Frame {
		minDim := f.W
		if f.H < minDim {
			minDim = f.H
		}
		s := int(float64(minDim) * sizeFrac)
		if s == 0 {
			return f
		}
		const margin = 4
		x0, y0 := margin, margin
		if corner == 1 || corner == 3 {
			x0 = f.W - margin - s
		}
		if corner == 2 || corner == 3 {
			y0 = f.H - margin - s
		}
		for y := y0; y < y0+s; y++ {
			for x := x0; x < x0+s; x++ {
				f.Y[y*f.W+x] = 235
			}
		}
		for y := y0 / 2; y < (y0+s)/2; y++ {
			for x := x0 / 2; x < (x0+s)/2; x++ {
				f.Cb[y*f.W/2+x] = 128
				f.Cr[y*f.W/2+x] = 128
			}
		}
		return f
	})
}

// Reorder permutes fixed-length segments of the video. segFrames is the
// segment length in frames; the final short segment (if any) participates in
// the permutation too. The permutation is drawn deterministically from seed
// and is guaranteed to be non-identity whenever there are at least two
// segments. This models the paper's story-line re-editing attack: content
// is preserved, temporal order is not.
func Reorder(src vframe.Source, segFrames int, seed int64) vframe.Source {
	if segFrames <= 0 {
		panic("edit: Reorder with non-positive segment length")
	}
	n := src.Len()
	numSeg := (n + segFrames - 1) / segFrames
	perm := randomPermutation(numSeg, uint64(seed))
	return ReorderPerm(src, segFrames, perm)
}

// ReorderPerm permutes fixed-length segments by an explicit permutation:
// output segment k is input segment perm[k].
func ReorderPerm(src vframe.Source, segFrames int, perm []int) vframe.Source {
	n := src.Len()
	numSeg := (n + segFrames - 1) / segFrames
	if len(perm) != numSeg {
		panic(fmt.Sprintf("edit: permutation length %d != segment count %d", len(perm), numSeg))
	}
	rs := &reorderSource{parent: src}
	for _, p := range perm {
		start := p * segFrames
		length := segFrames
		if start+length > n {
			length = n - start
		}
		rs.segStart = append(rs.segStart, start)
		rs.segLen = append(rs.segLen, length)
		rs.cum = append(rs.cum, rs.total)
		rs.total += length
	}
	return rs
}

type reorderSource struct {
	parent   vframe.Source
	segStart []int
	segLen   []int
	cum      []int // output start offset of each segment
	total    int
}

func (r *reorderSource) Len() int     { return r.total }
func (r *reorderSource) FPS() float64 { return r.parent.FPS() }

func (r *reorderSource) Frame(i int) *vframe.Frame {
	if i < 0 || i >= r.total {
		panic(fmt.Sprintf("edit: reorder frame %d out of range 0..%d", i, r.total))
	}
	lo, hi := 0, len(r.cum)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if r.cum[mid] <= i {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return r.parent.Frame(r.segStart[lo] + (i - r.cum[lo]))
}

// randomPermutation derives a deterministic Fisher–Yates shuffle of [0, n)
// from seed, re-drawing until it is non-identity when n >= 2.
func randomPermutation(n int, seed uint64) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	if n < 2 {
		return perm
	}
	for attempt := uint64(0); ; attempt++ {
		state := splitmix64(seed ^ attempt*0xA5A5A5A5)
		for i := n - 1; i > 0; i-- {
			state = splitmix64(state)
			j := int(state % uint64(i+1))
			perm[i], perm[j] = perm[j], perm[i]
		}
		for i, p := range perm {
			if p != i {
				return perm
			}
		}
	}
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func clampU8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v + 0.5)
}

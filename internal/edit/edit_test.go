package edit

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"vdsms/internal/vframe"
)

func synth(n int, seed int64) vframe.Source {
	return vframe.NewSynth(vframe.SynthConfig{W: 64, H: 48, NumFrames: n, Seed: seed, FPS: 30})
}

func TestBrightness(t *testing.T) {
	src := synth(3, 1)
	before := src.Frame(0).MeanLuma()
	up := Brightness(src, 40)
	after := up.Frame(0).MeanLuma()
	if after <= before {
		t.Errorf("mean luma %f after +40 brightness, was %f", after, before)
	}
	down := Brightness(src, -40)
	if d := down.Frame(0).MeanLuma(); d >= before {
		t.Errorf("mean luma %f after -40 brightness, was %f", d, before)
	}
}

func TestBrightnessClamps(t *testing.T) {
	src := synth(1, 2)
	bright := Brightness(src, 500)
	for _, v := range bright.Frame(0).Y {
		if v != 255 {
			t.Fatalf("luma %d after +500, want clamp to 255", v)
		}
	}
}

func TestContrast(t *testing.T) {
	src := synth(1, 3)
	f := Contrast(src, 0).Frame(0)
	for _, v := range f.Y {
		if v != 128 {
			t.Fatalf("luma %d after zero contrast, want 128", v)
		}
	}
	// Expanding contrast increases variance.
	varOf := func(f *vframe.Frame) float64 {
		m := f.MeanLuma()
		var s float64
		for _, v := range f.Y {
			d := float64(v) - m
			s += d * d
		}
		return s / float64(len(f.Y))
	}
	base := varOf(src.Frame(0).Clone())
	wide := varOf(Contrast(src, 1.5).Frame(0))
	if wide <= base {
		t.Errorf("variance %f after 1.5 contrast, was %f", wide, base)
	}
}

func TestColorShift(t *testing.T) {
	src := synth(1, 4)
	orig := src.Frame(0).Clone()
	sh := ColorShift(src, 10, -10).Frame(0)
	for i := range orig.Cb {
		wantCb := clampU8(float64(orig.Cb[i]) + 10)
		wantCr := clampU8(float64(orig.Cr[i]) - 10)
		if sh.Cb[i] != wantCb || sh.Cr[i] != wantCr {
			t.Fatalf("chroma shift wrong at %d", i)
		}
	}
}

func TestNoiseDeterministicAndBounded(t *testing.T) {
	src := synth(2, 5)
	n1 := Noise(src, 10, 99)
	f1 := n1.Frame(1).Clone()
	f2 := Noise(src, 10, 99).Frame(1)
	if !math.IsInf(vframe.PSNR(f1, f2), 1) {
		t.Error("noise not deterministic for identical seeds")
	}
	orig := src.Frame(1).Clone()
	for i := range orig.Y {
		if d := math.Abs(float64(f1.Y[i]) - float64(orig.Y[i])); d > 10.5 {
			// Clamping can only shrink the difference.
			t.Fatalf("noise delta %f exceeds amplitude at %d", d, i)
		}
	}
	f3 := Noise(src, 10, 100).Frame(1)
	if math.IsInf(vframe.PSNR(f1, f3), 1) {
		t.Error("different noise seeds produced identical output")
	}
}

func TestRescaleGeometry(t *testing.T) {
	src := synth(2, 6)
	out := Rescale(src, 96, 80)
	f := out.Frame(0)
	if f.W != 96 || f.H != 80 {
		t.Errorf("rescaled frame is %dx%d", f.W, f.H)
	}
}

func TestResampleLengthAndContent(t *testing.T) {
	src := synth(300, 7) // 10 s at 30 fps
	out := Resample(src, 25)
	if out.FPS() != 25 {
		t.Errorf("FPS = %g", out.FPS())
	}
	if out.Len() != 250 {
		t.Errorf("Len = %d, want 250", out.Len())
	}
	if math.Abs(vframe.Duration(out)-vframe.Duration(src)) > 0.2 {
		t.Errorf("duration changed: %g vs %g", vframe.Duration(out), vframe.Duration(src))
	}
	// Frame 25 of the 25fps stream corresponds to 1 s, i.e. frame 30.
	want := src.Frame(30).Clone()
	if !math.IsInf(vframe.PSNR(want, out.Frame(25)), 1) {
		t.Error("resampled frame 25 != source frame 30")
	}
}

func TestResampleUp(t *testing.T) {
	src := synth(50, 8)
	out := Resample(src, 60)
	if out.Len() != 100 {
		t.Errorf("Len = %d, want 100", out.Len())
	}
	// Upsampled stream duplicates frames; last index must stay in range.
	out.Frame(out.Len() - 1)
}

func TestReorderPreservesContent(t *testing.T) {
	src := synth(100, 9)
	out := Reorder(src, 25, 11)
	if out.Len() != 100 {
		t.Fatalf("reordered length %d", out.Len())
	}
	// The multiset of frames must be preserved: compare sorted mean lumas.
	collect := func(s vframe.Source) []float64 {
		v := make([]float64, s.Len())
		for i := range v {
			v[i] = s.Frame(i).MeanLuma()
		}
		sort.Float64s(v)
		return v
	}
	a, b := collect(src), collect(out)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("frame multiset changed at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestReorderIsNonIdentity(t *testing.T) {
	src := synth(100, 10)
	out := Reorder(src, 20, 12)
	same := true
	for i := 0; i < 100; i += 7 {
		a := src.Frame(i).Clone()
		if !math.IsInf(vframe.PSNR(a, out.Frame(i)), 1) {
			same = false
			break
		}
	}
	if same {
		t.Error("reordering produced the identity order")
	}
}

func TestReorderPermExplicit(t *testing.T) {
	src := synth(90, 13)
	out := ReorderPerm(src, 30, []int{2, 0, 1})
	// Output frame 0 should be input frame 60.
	want := src.Frame(60).Clone()
	if !math.IsInf(vframe.PSNR(want, out.Frame(0)), 1) {
		t.Error("ReorderPerm segment mapping wrong")
	}
	want = src.Frame(0).Clone()
	if !math.IsInf(vframe.PSNR(want, out.Frame(30)), 1) {
		t.Error("ReorderPerm second segment wrong")
	}
}

func TestReorderShortTail(t *testing.T) {
	src := synth(70, 14) // segments of 30: lengths 30, 30, 10
	out := Reorder(src, 30, 15)
	if out.Len() != 70 {
		t.Errorf("length with short tail = %d, want 70", out.Len())
	}
	out.Frame(69) // must not panic
}

func TestRandomPermutationProperties(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n)%20 + 2
		p := randomPermutation(size, seed)
		seen := make([]bool, size)
		identity := true
		for i, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
			if v != i {
				identity = false
			}
		}
		return !identity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAttackApplyFull(t *testing.T) {
	src := synth(120, 16)
	a := PaperAttack(7, 96, 80, 25, 25)
	out := a.Apply(src)
	if out.FPS() != 25 {
		t.Errorf("attacked FPS = %g", out.FPS())
	}
	f := out.Frame(0)
	if f.W != 96 || f.H != 80 {
		t.Errorf("attacked geometry %dx%d", f.W, f.H)
	}
	// Attacked stream must differ from a plain resample of the original.
	plain := Resample(Rescale(src, 96, 80), 25)
	if math.IsInf(vframe.PSNR(out.Frame(10).Clone(), plain.Frame(10)), 1) {
		t.Error("attack left frames unchanged")
	}
}

func TestAttackZeroIsIdentity(t *testing.T) {
	src := synth(10, 17)
	out := Attack{}.Apply(src)
	want := src.Frame(3).Clone()
	if !math.IsInf(vframe.PSNR(want, out.Frame(3)), 1) {
		t.Error("zero attack modified frames")
	}
	if out.Len() != src.Len() || out.FPS() != src.FPS() {
		t.Error("zero attack changed shape")
	}
}

func TestPaperAttackDeterministic(t *testing.T) {
	a := PaperAttack(42, 96, 80, 25, 30)
	b := PaperAttack(42, 96, 80, 25, 30)
	if a != b {
		t.Error("PaperAttack not deterministic")
	}
	c := PaperAttack(43, 96, 80, 25, 30)
	if a == c {
		t.Error("different seeds gave identical attacks")
	}
	if s := math.Abs(a.BrightnessDelta); s < 0.2*60-1e-9 || s > 0.5*60+1e-9 {
		t.Errorf("brightness delta %g outside the 20-50%% alteration band", a.BrightnessDelta)
	}
}

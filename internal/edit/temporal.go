// Temporal attacks beyond the paper's VS2 pipeline: time remapping
// (speed-up/slow-down), frame drops, stutter insertions and clip splicing
// into decoy footage, per the temporal-attack taxonomy of Fojcik & Syga
// ("Counteracting temporal attacks in Video Copy Detection") and the
// near-duplicate categories of Belkhatir & Tahayna. Together with the
// existing Resample and Reorder edits they form the attack families the
// robustness workload composes (see internal/workload and
// cmd/vcdgen attack).
//
// Every transform is a lazy vframe.Source wrapper, deterministic under its
// seed: the same (source, parameters, seed) always yields a byte-identical
// frame stream.
package edit

import (
	"fmt"
	"math"

	"vdsms/internal/vframe"
)

// Speed remaps time by factor while keeping the frame rate: factor > 1
// plays the content faster (fewer output frames), factor < 1 slower (more
// output frames, duplicating inputs). Output frame i shows input frame
// round(i·factor). factor must be positive; 1 is the identity.
func Speed(src vframe.Source, factor float64) vframe.Source {
	if factor <= 0 || math.IsInf(factor, 0) || math.IsNaN(factor) {
		panic(fmt.Sprintf("edit: speed factor %g must be positive and finite", factor))
	}
	if factor == 1 {
		return src
	}
	n := int(math.Round(float64(src.Len()) / factor))
	if n < 1 {
		n = 1
	}
	return &speedSource{parent: src, factor: factor, n: n}
}

type speedSource struct {
	parent vframe.Source
	factor float64
	n      int
}

func (s *speedSource) Len() int     { return s.n }
func (s *speedSource) FPS() float64 { return s.parent.FPS() }

func (s *speedSource) Frame(i int) *vframe.Frame {
	j := int(math.Round(float64(i) * s.factor))
	if j >= s.parent.Len() {
		j = s.parent.Len() - 1
	}
	return s.parent.Frame(j)
}

// FrameDrop removes approximately frac of the frames, each kept or dropped
// by an independent deterministic draw from (seed, frame index). frac must
// lie in [0, 1); 0 is the identity. At least one frame always survives.
func FrameDrop(src vframe.Source, frac float64, seed int64) vframe.Source {
	if frac < 0 || frac >= 1 || math.IsNaN(frac) {
		panic(fmt.Sprintf("edit: drop fraction %g out of [0, 1)", frac))
	}
	if frac == 0 {
		return src
	}
	idx := make([]int, 0, src.Len())
	for i := 0; i < src.Len(); i++ {
		if frameDraw(seed, i) >= frac {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		idx = append(idx, 0)
	}
	return &indexSource{parent: src, idx: idx}
}

// Stutter freezes approximately frac of the frames, repeating each frozen
// frame `repeat` extra times — the temporal signature of a lossy
// transmission or a re-encode stalling on dropped packets. frac must lie
// in [0, 1] and repeat must be non-negative; frac 0 or repeat 0 is the
// identity.
func Stutter(src vframe.Source, frac float64, repeat int, seed int64) vframe.Source {
	if frac < 0 || frac > 1 || math.IsNaN(frac) {
		panic(fmt.Sprintf("edit: stutter fraction %g out of [0, 1]", frac))
	}
	if repeat < 0 {
		panic(fmt.Sprintf("edit: stutter repeat %d must be non-negative", repeat))
	}
	if frac == 0 || repeat == 0 {
		return src
	}
	idx := make([]int, 0, src.Len())
	for i := 0; i < src.Len(); i++ {
		idx = append(idx, i)
		if frameDraw(seed, i) < frac {
			for r := 0; r < repeat; r++ {
				idx = append(idx, i)
			}
		}
	}
	return &indexSource{parent: src, idx: idx}
}

// frameDraw maps (seed, frame index) to a deterministic uniform in [0, 1).
func frameDraw(seed int64, i int) float64 {
	h := splitmix64(uint64(seed) ^ uint64(i)*0xD1B54A32D192ED03)
	return float64(h>>11) / float64(1<<53)
}

// indexSource replays the parent's frames in the order of idx.
type indexSource struct {
	parent vframe.Source
	idx    []int
}

func (s *indexSource) Len() int                  { return len(s.idx) }
func (s *indexSource) FPS() float64              { return s.parent.FPS() }
func (s *indexSource) Frame(i int) *vframe.Frame { return s.parent.Frame(s.idx[i]) }

// SpliceInterleave cuts src into segments of clipSeg frames and inserts
// gapSeg frames of decoy footage between consecutive segments — the
// "spliced into a longer programme" attack where only part of any window
// carries query content. The decoy must share src's frame rate; decoy
// offsets advance per gap (wrapping when the decoy is short) so the
// inserted material varies. clipSeg must be positive; gapSeg 0 is the
// identity.
func SpliceInterleave(src, decoy vframe.Source, clipSeg, gapSeg int) vframe.Source {
	if clipSeg <= 0 {
		panic(fmt.Sprintf("edit: splice segment length %d must be positive", clipSeg))
	}
	if gapSeg < 0 {
		panic(fmt.Sprintf("edit: splice gap length %d must be non-negative", gapSeg))
	}
	if gapSeg == 0 {
		return src
	}
	if decoy == nil || decoy.Len() == 0 {
		panic("edit: splice requires non-empty decoy footage")
	}
	if decoy.FPS() != src.FPS() {
		panic(fmt.Sprintf("edit: splice decoy FPS %g != source FPS %g", decoy.FPS(), src.FPS()))
	}
	var parts []vframe.Source
	n := src.Len()
	maxOff := decoy.Len() - gapSeg
	if maxOff < 1 {
		maxOff = 1
	}
	for off, g := 0, 0; off < n; g++ {
		take := clipSeg
		if off+take > n {
			take = n - off
		}
		parts = append(parts, vframe.Clip(src, off, take))
		off += take
		if off < n {
			gl := gapSeg
			if gl > decoy.Len() {
				gl = decoy.Len()
			}
			parts = append(parts, vframe.Clip(decoy, (g*gapSeg)%maxOff, gl))
		}
	}
	return vframe.Concat(parts...)
}

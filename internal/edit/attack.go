package edit

import "vdsms/internal/vframe"

// Attack bundles the VS2 editing pipeline of the paper — photometric
// alterations, noise, a resolution change, a frame-rate change and segment
// reordering — plus the temporal-attack library (time remap, frame drops,
// stutter, splicing) added for the robustness workload. Zero-valued fields
// disable the corresponding edit, so the one descriptor covers every
// attack family.
type Attack struct {
	BrightnessDelta float64 // added to luma
	ContrastFactor  float64 // 0 disables; otherwise scale around mid-grey
	CbShift         float64
	CrShift         float64
	NoiseAmp        float64 // uniform noise amplitude
	NoiseSeed       int64
	TargetW         int // 0 keeps resolution
	TargetH         int
	TargetFPS       float64 // 0 keeps frame rate
	SegmentFrames   int     // 0 disables reordering
	ReorderSeed     int64

	// Temporal attacks (see temporal.go).
	SpeedFactor     float64 // time-remap factor; 0 or 1 keeps tempo
	FPSRatio        float64 // resample to source fps × ratio; 0 or 1 keeps rate
	DropFrac        float64 // fraction of frames dropped; 0 disables
	DropSeed        int64
	StutterFrac     float64 // fraction of frames frozen; 0 disables
	StutterRepeat   int     // extra repeats per frozen frame; 0 disables
	StutterSeed     int64
	SpliceSegFrames int           // clip segment length for splicing; 0 disables
	SpliceGapFrames int           // decoy frames inserted between segments
	Decoy           vframe.Source // decoy footage; required when splicing is enabled
}

// Apply wires the attack pipeline around src in the paper's order:
// photometric edits and noise, then resolution change, then the temporal
// chain — time remap, frame-rate re-encoding, drops, stutter, segment
// reordering and finally decoy splicing (an attacker splices the already
// re-edited material).
func (a Attack) Apply(src vframe.Source) vframe.Source {
	out := src
	if a.BrightnessDelta != 0 {
		out = Brightness(out, a.BrightnessDelta)
	}
	if a.ContrastFactor != 0 && a.ContrastFactor != 1 {
		out = Contrast(out, a.ContrastFactor)
	}
	if a.CbShift != 0 || a.CrShift != 0 {
		out = ColorShift(out, a.CbShift, a.CrShift)
	}
	if a.NoiseAmp > 0 {
		out = Noise(out, a.NoiseAmp, a.NoiseSeed)
	}
	if a.TargetW > 0 && a.TargetH > 0 {
		out = Rescale(out, a.TargetW, a.TargetH)
	}
	if a.SpeedFactor > 0 && a.SpeedFactor != 1 {
		out = Speed(out, a.SpeedFactor)
	}
	if a.TargetFPS > 0 && a.TargetFPS != src.FPS() {
		out = Resample(out, a.TargetFPS)
	}
	if a.FPSRatio > 0 && a.FPSRatio != 1 {
		out = Resample(out, out.FPS()*a.FPSRatio)
	}
	if a.DropFrac > 0 {
		out = FrameDrop(out, a.DropFrac, a.DropSeed)
	}
	if a.StutterFrac > 0 && a.StutterRepeat > 0 {
		out = Stutter(out, a.StutterFrac, a.StutterRepeat, a.StutterSeed)
	}
	if a.SegmentFrames > 0 {
		out = Reorder(out, a.SegmentFrames, a.ReorderSeed)
	}
	if a.SpliceSegFrames > 0 && a.SpliceGapFrames > 0 {
		out = SpliceInterleave(out, a.Decoy, a.SpliceSegFrames, a.SpliceGapFrames)
	}
	return out
}

// PaperAttack derives the paper's VS2 attack for one short video: 20–50%
// brightness/colour alteration (the exact strength drawn from seed), noise,
// NTSC→PAL-style resolution and frame-rate change, and reordering of
// segments of segSec seconds. w/h are the target (PAL-like) dimensions and
// fps the target frame rate.
func PaperAttack(seed int64, w, h int, fps float64, segFrames int) Attack {
	r := func(k uint64) float64 { // deterministic uniform in [0,1)
		return float64(splitmix64(uint64(seed)^k*0x9E3779B97F4A7C15)>>11) / float64(1<<53)
	}
	sign := 1.0
	if r(1) < 0.5 {
		sign = -1
	}
	// "alter 20-50% of the color as well as the brightness": scale the
	// alteration strength between 0.2 and 0.5. Brightness moves up to
	// ±20 luma and contrast up to ±15% — strong edits that remain in the
	// unsaturated regime where the paper's ordinal features stay stable.
	strength := 0.2 + 0.3*r(2)
	return Attack{
		BrightnessDelta: sign * strength * 40,
		ContrastFactor:  1 + sign*strength*0.3,
		CbShift:         (r(3) - 0.5) * strength * 80,
		CrShift:         (r(4) - 0.5) * strength * 80,
		NoiseAmp:        4 + 8*r(5),
		NoiseSeed:       seed * 31,
		TargetW:         w,
		TargetH:         h,
		TargetFPS:       fps,
		SegmentFrames:   segFrames,
		ReorderSeed:     seed * 17,
	}
}

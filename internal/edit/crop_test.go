package edit

import (
	"testing"

	"vdsms/internal/vframe"
)

func TestLetterboxBars(t *testing.T) {
	src := synth(2, 20)
	out := Letterbox(src, 0.25) // 12.5% bars top and bottom on 48-high frames
	f := out.Frame(0)
	bar := int(float64(f.H) * 0.25 / 2)
	if bar == 0 {
		t.Fatal("test geometry produced zero bar height")
	}
	for x := 0; x < f.W; x++ {
		if f.Y[x] != 16 || f.Y[(f.H-1)*f.W+x] != 16 {
			t.Fatalf("bars not black at column %d", x)
		}
	}
	// Centre rows untouched.
	orig := src.Frame(0).Clone()
	mid := f.H / 2
	for x := 0; x < f.W; x++ {
		if f.Y[mid*f.W+x] != orig.Y[mid*f.W+x] {
			t.Fatalf("centre row modified at %d", x)
		}
	}
}

func TestLetterboxValidation(t *testing.T) {
	src := synth(1, 21)
	for _, bad := range []float64{-0.1, 0.95} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("letterbox %g accepted", bad)
				}
			}()
			Letterbox(src, bad).Frame(0)
		}()
	}
	// Zero bars = identity.
	f := Letterbox(src, 0).Frame(0).Clone()
	orig := src.Frame(0)
	for i := range orig.Y {
		if f.Y[i] != orig.Y[i] {
			t.Fatal("letterbox 0 modified frame")
		}
	}
}

func TestCenterCropGeometryPreserved(t *testing.T) {
	src := synth(2, 22)
	out := CenterCrop(src, 0.7)
	f := out.Frame(0)
	orig := src.Frame(0)
	if f.W != orig.W || f.H != orig.H {
		t.Fatalf("crop changed geometry to %dx%d", f.W, f.H)
	}
}

func TestCenterCropZooms(t *testing.T) {
	// Cropping then rescaling magnifies the centre: the cropped frame
	// should resemble the original centre region more than the full frame.
	src := vframe.NewSynth(vframe.SynthConfig{W: 96, H: 80, NumFrames: 2, Seed: 9})
	out := CenterCrop(src, 0.75)
	f := out.Frame(0).Clone()
	orig := src.Frame(0)
	// The exact transform is lossy; just require substantial change plus
	// stability of the very centre pixel's neighbourhood ordering.
	diff := 0
	for i := range f.Y {
		if f.Y[i] != orig.Y[i] {
			diff++
		}
	}
	if diff < len(f.Y)/10 {
		t.Errorf("crop changed only %d of %d pixels", diff, len(f.Y))
	}
}

func TestCenterCropFullIsIdentity(t *testing.T) {
	src := synth(1, 23)
	out := CenterCrop(src, 1)
	f := out.Frame(0).Clone()
	orig := src.Frame(0)
	for i := range orig.Y {
		if f.Y[i] != orig.Y[i] {
			t.Fatal("full crop modified frame")
		}
	}
}

func TestCenterCropValidation(t *testing.T) {
	src := synth(1, 24)
	for _, bad := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("crop %g accepted", bad)
				}
			}()
			CenterCrop(src, bad).Frame(0)
		}()
	}
}

func TestLogoCorners(t *testing.T) {
	src := synth(1, 30)
	for corner := 0; corner < 4; corner++ {
		f := Logo(src, 0.3, corner).Frame(0)
		// Locate the expected bright square.
		s := int(float64(f.H) * 0.3) // H=48 < W=64 → minDim is H
		x0, y0 := 4, 4
		if corner == 1 || corner == 3 {
			x0 = f.W - 4 - s
		}
		if corner == 2 || corner == 3 {
			y0 = f.H - 4 - s
		}
		if f.Y[(y0+s/2)*f.W+x0+s/2] != 235 {
			t.Errorf("corner %d: logo centre not bright", corner)
		}
		// Opposite corner untouched.
		ox, oy := f.W-1-x0, f.H-1-y0
		orig := src.Frame(0).Clone()
		if f.Y[oy*f.W+ox] != orig.Y[oy*f.W+ox] {
			t.Errorf("corner %d: opposite corner modified", corner)
		}
	}
}

func TestLogoValidation(t *testing.T) {
	src := synth(1, 31)
	for _, fn := range []func(){
		func() { Logo(src, -0.1, 0).Frame(0) },
		func() { Logo(src, 0.6, 0).Frame(0) },
		func() { Logo(src, 0.1, 4).Frame(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid logo accepted")
				}
			}()
			fn()
		}()
	}
	// Zero size is identity.
	f := Logo(src, 0, 0).Frame(0).Clone()
	orig := src.Frame(0)
	for i := range orig.Y {
		if f.Y[i] != orig.Y[i] {
			t.Fatal("zero logo modified frame")
		}
	}
}

package edit

import (
	"bytes"
	"testing"

	"vdsms/internal/vframe"
)

// streamBytes flattens every plane of every frame so two sources can be
// compared byte for byte.
func streamBytes(t *testing.T, src vframe.Source) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i := 0; i < src.Len(); i++ {
		f := src.Frame(i)
		buf.Write(f.Y)
		buf.Write(f.Cb)
		buf.Write(f.Cr)
	}
	return buf.Bytes()
}

func decoy(n int, seed int64) vframe.Source {
	return vframe.NewSynth(vframe.SynthConfig{W: 64, H: 48, NumFrames: n, Seed: seed, FPS: 30})
}

// TestTemporalTransforms drives every temporal attack through the shared
// invariants: expected output length, unchanged geometry and frame rate,
// byte-identical output for equal seeds, and divergence across seeds for
// the randomised transforms.
func TestTemporalTransforms(t *testing.T) {
	const n = 60
	cases := []struct {
		name    string
		apply   func(src vframe.Source, seed int64) vframe.Source
		wantLen func(n int) (min, max int)
		seeded  bool // output must differ across seeds
	}{
		{
			name:    "speed 1.5x",
			apply:   func(s vframe.Source, _ int64) vframe.Source { return Speed(s, 1.5) },
			wantLen: func(n int) (int, int) { return 40, 40 },
		},
		{
			name:    "speed 0.8x",
			apply:   func(s vframe.Source, _ int64) vframe.Source { return Speed(s, 0.8) },
			wantLen: func(n int) (int, int) { return 75, 75 },
		},
		{
			name:    "drop 20%",
			apply:   func(s vframe.Source, seed int64) vframe.Source { return FrameDrop(s, 0.2, seed) },
			wantLen: func(n int) (int, int) { return n / 2, n - 1 },
			seeded:  true,
		},
		{
			name:    "stutter 20%x2",
			apply:   func(s vframe.Source, seed int64) vframe.Source { return Stutter(s, 0.2, 2, seed) },
			wantLen: func(n int) (int, int) { return n + 1, 2 * n },
			seeded:  true,
		},
		{
			name:    "reorder 8f",
			apply:   func(s vframe.Source, seed int64) vframe.Source { return Reorder(s, 8, seed) },
			wantLen: func(n int) (int, int) { return n, n },
			seeded:  true,
		},
		{
			name: "splice 15f+5f",
			apply: func(s vframe.Source, seed int64) vframe.Source {
				return SpliceInterleave(s, decoy(40, seed), 15, 5)
			},
			wantLen: func(n int) (int, int) { return n + 15, n + 15 }, // 3 gaps of 5
			seeded:  true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := synth(n, 41)
			out := tc.apply(src, 7)
			min, max := tc.wantLen(n)
			if out.Len() < min || out.Len() > max {
				t.Errorf("length %d outside [%d, %d]", out.Len(), min, max)
			}
			if out.FPS() != src.FPS() {
				t.Errorf("FPS changed to %g", out.FPS())
			}
			f := out.Frame(0)
			orig := src.Frame(0)
			if f.W != orig.W || f.H != orig.H {
				t.Errorf("geometry changed to %dx%d", f.W, f.H)
			}
			// Same seed twice: byte-identical frame stream.
			again := tc.apply(synth(n, 41), 7)
			if !bytes.Equal(streamBytes(t, out), streamBytes(t, again)) {
				t.Error("same seed produced different frame streams")
			}
			if tc.seeded {
				other := tc.apply(synth(n, 41), 8)
				if bytes.Equal(streamBytes(t, out), streamBytes(t, other)) {
					t.Error("different seeds produced identical frame streams")
				}
			}
		})
	}
}

// TestTemporalIdentities verifies that identity parameters are exact
// no-ops: the wrapper must return a stream byte-identical to the input
// (and, where the transform short-circuits, the input source itself).
func TestTemporalIdentities(t *testing.T) {
	src := synth(20, 42)
	want := streamBytes(t, src)
	cases := []struct {
		name string
		out  vframe.Source
	}{
		{"speed 1x", Speed(src, 1)},
		{"drop 0", FrameDrop(src, 0, 3)},
		{"stutter frac 0", Stutter(src, 0, 3, 3)},
		{"stutter repeat 0", Stutter(src, 0.5, 0, 3)},
		{"splice gap 0", SpliceInterleave(src, decoy(10, 1), 5, 0)},
		{"attack zero", Attack{}.Apply(src)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.out.Len() != src.Len() {
				t.Fatalf("length %d, want %d", tc.out.Len(), src.Len())
			}
			if !bytes.Equal(streamBytes(t, tc.out), want) {
				t.Error("identity parameters modified the stream")
			}
		})
	}
}

func TestTemporalValidation(t *testing.T) {
	src := synth(4, 43)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"speed 0", func() { Speed(src, 0) }},
		{"speed negative", func() { Speed(src, -2) }},
		{"drop negative", func() { FrameDrop(src, -0.1, 1) }},
		{"drop 1", func() { FrameDrop(src, 1, 1) }},
		{"stutter frac 1.5", func() { Stutter(src, 1.5, 1, 1) }},
		{"stutter repeat -1", func() { Stutter(src, 0.5, -1, 1) }},
		{"splice clipSeg 0", func() { SpliceInterleave(src, decoy(4, 1), 0, 2) }},
		{"splice nil decoy", func() { SpliceInterleave(src, nil, 2, 2) }},
		{"splice fps mismatch", func() {
			d := vframe.NewSynth(vframe.SynthConfig{W: 64, H: 48, NumFrames: 4, Seed: 1, FPS: 25})
			SpliceInterleave(src, d, 2, 2)
		}},
		{"unknown family", func() { TemporalPresets("warp") }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("invalid parameters accepted")
				}
			}()
			tc.fn()
		})
	}
}

// TestSpeedRemapsTime checks the time-remap contract on a known mapping:
// at 1.5x, output frame 10 must show input frame 15.
func TestSpeedRemapsTime(t *testing.T) {
	src := synth(60, 44)
	out := Speed(src, 1.5)
	got := out.Frame(10)
	want := src.Frame(15)
	if !bytes.Equal(got.Y, want.Y) {
		t.Error("speed 1.5x frame 10 is not input frame 15")
	}
}

// TestStutterPreservesOrder checks that stutter only duplicates frames and
// never reorders: the de-duplicated output indices must be the input order.
func TestStutterPreservesOrder(t *testing.T) {
	src := synth(30, 45)
	out := Stutter(src, 0.3, 2, 9).(*indexSource)
	last := -1
	for _, i := range out.idx {
		if i < last {
			t.Fatalf("stutter reordered frames: %d after %d", i, last)
		}
		last = i
	}
	if out.Len() <= src.Len() {
		t.Errorf("stutter at 30%% inserted no frames (len %d)", out.Len())
	}
}

// TestFrameDropKeepsSubsequence checks drops preserve relative order and
// strictly remove frames at a plausible rate.
func TestFrameDropKeepsSubsequence(t *testing.T) {
	src := synth(100, 46)
	out := FrameDrop(src, 0.3, 11).(*indexSource)
	last := -1
	for _, i := range out.idx {
		if i <= last {
			t.Fatalf("drop output not a strict subsequence: %d after %d", i, last)
		}
		last = i
	}
	if out.Len() < 50 || out.Len() > 90 {
		t.Errorf("30%% drop kept %d of 100 frames", out.Len())
	}
}

// TestTemporalPresetsDeterministic pins the preset registry: every family
// has at least one preset, and Build is deterministic — the same (fps,
// seed) yields attacks whose applied streams are byte-identical.
func TestTemporalPresetsDeterministic(t *testing.T) {
	fams := append([]string{FamilyNone}, TemporalFamilies()...)
	for _, fam := range fams {
		presets := TemporalPresets(fam)
		if len(presets) == 0 {
			t.Fatalf("family %q has no presets", fam)
		}
		// Key-frame-rate domain: 60 frames at 2 fps is a 30 s clip, long
		// enough for the seconds-denominated reorder/splice presets to act.
		keySrc := func() vframe.Source {
			return vframe.NewSynth(vframe.SynthConfig{W: 64, H: 48, NumFrames: 60, Seed: 47, FPS: 2})
		}
		keyDecoy := func() vframe.Source {
			return vframe.NewSynth(vframe.SynthConfig{W: 64, H: 48, NumFrames: 40, Seed: 3, FPS: 2})
		}
		for _, p := range presets {
			if p.Family != fam {
				t.Errorf("preset %q reports family %q, want %q", p.Name, p.Family, fam)
			}
			src := keySrc()
			a1 := p.Build(2, 5)
			a2 := p.Build(2, 5)
			if fam == FamilySplice {
				a1.Decoy = keyDecoy()
				a2.Decoy = keyDecoy()
			}
			b1 := streamBytes(t, a1.Apply(src))
			b2 := streamBytes(t, a2.Apply(keySrc()))
			if !bytes.Equal(b1, b2) {
				t.Errorf("%s/%s: Build not deterministic", fam, p.Name)
			}
			if fam != FamilyNone && bytes.Equal(b1, streamBytes(t, src)) {
				t.Errorf("%s/%s: attack is a no-op", fam, p.Name)
			}
		}
	}
}

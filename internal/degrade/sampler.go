package degrade

// Content-aware shed decisions. At each shed level a target fraction of
// frames is dropped, but *which* frames is decided by content: every frame
// carries a cheap interest score (mean |ΔDC| after decode, payload-size
// delta before decode) and the sampler keeps the frames whose score clears
// a self-adapting quantile threshold. Static content — where consecutive
// key frames fingerprint almost identically and the window sketch barely
// changes — is shed first; high-motion content keeps its full sampling
// density. A max-run guard bounds consecutive sheds so no span of content,
// however static, goes completely unobserved.
//
// Decode shedding additionally enforces a per-window budget when the
// caller declares the basic-window cadence (SetWindow): at most
// ceil(winFrames·(1−drop)) entropy decodes per window, with the threshold
// choosing which frames get them and a forced keep spending any leftover
// budget at the window tail. The cap is what actually bounds tail latency —
// a pure quantile threshold sheds only where content is static, so the p99
// window (all-motion, nothing shed) would still run at full cost; under a
// real-time budget every window must shed, and content decides which
// frames inside the window survive, not whether the window pays.

// Shed fractions per level. Extract shedding starts at level 1; decode
// shedding (skipping entropy decode entirely) starts at level 2. At level
// 3 extract shedding is off again: the decode budget leaves so few real
// frames per window that substituting one of them would zero out the
// window's information for a saving that is a rounding error next to the
// skipped decodes.
var (
	extractDrop = [MaxLevel + 1]float64{0, 0.35, 0.35, 0}
	decodeDrop  = [MaxLevel + 1]float64{0, 0, 0.5, 0.75}
)

// Max consecutive sheds before a frame is force-kept regardless of score.
// Every shed frame substitutes a stale cell id whose age grows with the
// run, so the run bound directly limits how far the emitted cell sequence
// can lag the content. Runs beyond ~3 key frames destroy sequence
// similarity faster than they save work (measured: recall collapses to 0
// at run cap 7 on workloads that survive cap 3 with two thirds of their
// recall), so both stages share the tight bound.
const (
	maxExtractRun = 3
	maxDecodeRun  = 3
)

// thresholdTracker follows the f-quantile of a score stream with O(1)
// stochastic updates (the classic Robbins–Monro quantile estimator): the
// threshold steps up when a score exceeds it and down otherwise, with
// asymmetric step sizes so it converges on the value that exactly f of the
// scores fall below. The step is scaled by a running mean magnitude so the
// tracker adapts to whatever units the signal arrives in.
type thresholdTracker struct {
	f      float64 // target drop fraction: keep scores above the f-quantile
	thr    float64
	mag    float64 // running mean |score|
	primed bool
}

// update feeds one score and reports whether it clears the threshold.
func (t *thresholdTracker) update(score float64) bool {
	abs := score
	if abs < 0 {
		abs = -abs
	}
	if !t.primed {
		t.mag = abs
		t.thr = score
		t.primed = true
		return true
	}
	t.mag += 0.05 * (abs - t.mag)
	keep := score >= t.thr
	eta := 0.05 * (t.mag + 1e-9)
	if keep {
		t.thr += eta * t.f
	} else {
		t.thr -= eta * (1 - t.f)
	}
	return keep
}

func (t *thresholdTracker) reset() { t.primed = false }

// Sampler makes per-frame keep/shed decisions for one monitored stream at
// the controller's current level. Not safe for concurrent use.
type Sampler struct {
	extract  thresholdTracker
	decode   thresholdTracker
	extRun   int // consecutive extract sheds
	decRun   int // consecutive decode sheds
	prevSize int
	haveSize bool

	// Window-budget state (SetWindow). winFrames 0 = no cadence declared:
	// decode shedding then falls back to the pure threshold + run guard.
	winFrames    int
	frameInWin   int
	decodedInWin int
}

// SetWindow declares the basic-window cadence: winFrames key frames per
// window, with the next KeepDecode call sitting phase frames into the
// current window. Decode shedding then runs under a per-window budget of
// ceil(winFrames·(1−drop)) decodes — see the package comment. winFrames
// ≤ 0 clears the cadence.
func (s *Sampler) SetWindow(winFrames, phase int) {
	if winFrames <= 0 {
		s.winFrames, s.frameInWin, s.decodedInWin = 0, 0, 0
		return
	}
	if phase < 0 || phase >= winFrames {
		phase = 0
	}
	s.winFrames = winFrames
	s.frameInWin = phase
	s.decodedInWin = 0
}

// NewSampler returns a sampler with untrained thresholds; the first frames
// at each level are kept while the trackers prime.
func NewSampler() *Sampler {
	return &Sampler{}
}

// Reset forgets all learned thresholds and run state — called when the
// monitored stream changes. The declared window cadence survives; its
// phase restarts.
func (s *Sampler) Reset() {
	s.extract.reset()
	s.decode.reset()
	s.extRun, s.decRun = 0, 0
	s.haveSize = false
	s.frameInWin, s.decodedInWin = 0, 0
}

// KeepExtract decides whether a decoded key frame gets full feature
// extraction at the given shed level. score is the motion proxy (mean
// |ΔDC|, feature.MotionScorer); scoreOK is false when no comparable
// previous frame exists, which forces a keep. Frames that are not kept
// substitute the previous frame's cell id downstream.
func (s *Sampler) KeepExtract(level int, score float64, scoreOK bool) bool {
	if level <= 0 || level > MaxLevel || extractDrop[level] == 0 {
		s.extRun = 0
		return true
	}
	if !scoreOK || s.extRun >= maxExtractRun {
		s.extRun = 0
		// Prime the tracker even on forced keeps so the threshold keeps
		// learning the stream's score scale.
		if scoreOK {
			s.extract.f = extractDrop[level]
			s.extract.update(score)
		}
		return true
	}
	s.extract.f = extractDrop[level]
	if s.extract.update(score) {
		s.extRun = 0
		return true
	}
	s.extRun++
	return false
}

// KeepDecode decides, before any entropy decoding, whether a key frame is
// worth decoding at the given shed level. payloadBytes is the frame's
// compressed size — its delta against the previous kept-or-shed frame is
// the pre-decode change proxy (a static scene compresses to nearly the
// same size every frame; a cut or high motion moves it sharply). With a
// declared window cadence the decision runs under the per-window decode
// budget; without one it is a pure quantile threshold with the max-run
// guard.
func (s *Sampler) KeepDecode(level int, payloadBytes int) bool {
	delta := 0
	if s.haveSize {
		delta = payloadBytes - s.prevSize
		if delta < 0 {
			delta = -delta
		}
	}
	first := !s.haveSize
	s.prevSize = payloadBytes
	s.haveSize = true

	pos := s.frameInWin
	if s.winFrames > 0 {
		if pos == 0 {
			s.decodedInWin = 0
		}
		s.frameInWin = (s.frameInWin + 1) % s.winFrames
	}
	keep := s.keepDecode(level, delta, first, pos)
	if keep {
		s.decodedInWin++
	}
	return keep
}

func (s *Sampler) keepDecode(level int, delta int, first bool, pos int) bool {
	if level < 2 || level > MaxLevel || decodeDrop[level] == 0 {
		s.decRun = 0
		return true
	}
	s.decode.f = decodeDrop[level]
	if s.winFrames > 0 {
		// Window-budget mode: the budget caps this window's decodes (the
		// latency bound) and a forced keep spends what is left when the
		// remaining frames could not otherwise use it (the fidelity floor —
		// every window keeps at least one real frame).
		budget := int(float64(s.winFrames)*(1-decodeDrop[level]) + 0.5)
		if budget < 1 {
			budget = 1
		}
		remaining := s.winFrames - pos
		switch left := budget - s.decodedInWin; {
		case left <= 0:
			s.decode.update(float64(delta)) // keep the threshold learning
			return false
		case left >= remaining:
			s.decode.update(float64(delta))
			return true
		default:
			return s.decode.update(float64(delta))
		}
	}
	if first || s.decRun >= maxDecodeRun {
		s.decRun = 0
		if !first {
			s.decode.update(float64(delta))
		}
		return true
	}
	if s.decode.update(float64(delta)) {
		s.decRun = 0
		return true
	}
	s.decRun++
	return false
}

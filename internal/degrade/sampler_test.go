package degrade

import (
	"math"
	"math/rand"
	"testing"
)

func TestSamplerLevelZeroKeepsEverything(t *testing.T) {
	s := NewSampler()
	for i := 0; i < 200; i++ {
		if !s.KeepExtract(0, 0, true) {
			t.Fatal("level 0 shed an extract")
		}
		if !s.KeepDecode(0, 1000) {
			t.Fatal("level 0 shed a decode")
		}
	}
}

func TestSamplerLevelOneDoesNotShedDecode(t *testing.T) {
	s := NewSampler()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		if !s.KeepDecode(1, 1000+rng.Intn(200)) {
			t.Fatal("level 1 shed a decode; decode shedding starts at level 2")
		}
	}
}

func TestSamplerShedsNearTargetFraction(t *testing.T) {
	s := NewSampler()
	rng := rand.New(rand.NewSource(7))
	const n = 5000
	kept := 0
	for i := 0; i < n; i++ {
		// Stationary score distribution: uniform [0, 1).
		if s.KeepExtract(1, rng.Float64(), true) {
			kept++
		}
	}
	// Target drop 0.35, but the max-run guard forces keeps, so the realised
	// drop is a bit lower. Accept a generous band around it.
	drop := 1 - float64(kept)/n
	if drop < 0.15 || drop > 0.45 {
		t.Fatalf("extract drop fraction %.3f, want roughly 0.35 (guarded)", drop)
	}
}

func TestSamplerPrefersHighMotion(t *testing.T) {
	s := NewSampler()
	rng := rand.New(rand.NewSource(3))
	var keptHigh, nHigh, keptLow, nLow int
	for i := 0; i < 6000; i++ {
		// Bimodal: 70% static (score ~0.01), 30% motion (score ~1).
		var score float64
		high := rng.Float64() < 0.3
		if high {
			score = 0.9 + 0.2*rng.Float64()
		} else {
			score = 0.02 * rng.Float64()
		}
		kept := s.KeepExtract(1, score, true)
		if high {
			nHigh++
			if kept {
				keptHigh++
			}
		} else {
			nLow++
			if kept {
				keptLow++
			}
		}
	}
	hi, lo := float64(keptHigh)/float64(nHigh), float64(keptLow)/float64(nLow)
	if hi < 0.95 {
		t.Fatalf("high-motion keep rate %.3f, want ≈ 1", hi)
	}
	if lo >= hi {
		t.Fatalf("static keep rate %.3f not below high-motion %.3f", lo, hi)
	}
}

func TestSamplerMaxRunGuard(t *testing.T) {
	s := NewSampler()
	// Train the threshold high, then feed identical sub-threshold scores:
	// runs of sheds must never exceed maxExtractRun.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		s.KeepExtract(1, rng.Float64(), true)
	}
	run, worst := 0, 0
	for i := 0; i < 500; i++ {
		if s.KeepExtract(1, 0, true) {
			run = 0
		} else {
			run++
			if run > worst {
				worst = run
			}
		}
	}
	if worst > maxExtractRun {
		t.Fatalf("extract shed run of %d exceeds guard %d", worst, maxExtractRun)
	}

	d := NewSampler()
	for i := 0; i < 500; i++ {
		d.KeepDecode(3, 1000+rng.Intn(500))
	}
	run, worst = 0, 0
	for i := 0; i < 500; i++ {
		if d.KeepDecode(3, 1000) { // constant size: zero delta, maximally boring
			run = 0
		} else {
			run++
			if run > worst {
				worst = run
			}
		}
	}
	if worst > maxDecodeRun {
		t.Fatalf("decode shed run of %d exceeds guard %d", worst, maxDecodeRun)
	}
}

func TestSamplerForcedKeepsOnUnscorableFrames(t *testing.T) {
	s := NewSampler()
	for i := 0; i < 50; i++ {
		if !s.KeepExtract(3, 0, false) {
			t.Fatal("unscorable frame was shed")
		}
	}
	d := NewSampler()
	if !d.KeepDecode(3, 1234) {
		t.Fatal("first frame (no size delta yet) was shed")
	}
}

func TestSamplerLevelThreeShedsMoreDecodesThanLevelTwo(t *testing.T) {
	rate := func(level int) float64 {
		s := NewSampler()
		rng := rand.New(rand.NewSource(11))
		kept := 0
		const n = 5000
		for i := 0; i < n; i++ {
			if s.KeepDecode(level, 1000+rng.Intn(400)) {
				kept++
			}
		}
		return 1 - float64(kept)/n
	}
	d2, d3 := rate(2), rate(3)
	if d3 <= d2 {
		t.Fatalf("decode drop at level 3 (%.3f) not above level 2 (%.3f)", d3, d2)
	}
	if d2 < 0.2 {
		t.Fatalf("decode drop at level 2 = %.3f, suspiciously low", d2)
	}
}

func TestSamplerResetForgetsState(t *testing.T) {
	s := NewSampler()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		s.KeepExtract(1, 5+rng.Float64(), true)
		s.KeepDecode(3, 1000+rng.Intn(400))
	}
	s.Reset()
	// After reset the trackers are unprimed: first scored frames are kept
	// even with scores far below the previously learned threshold.
	if !s.KeepExtract(1, 1e-9, true) {
		t.Fatal("first extract after Reset was shed")
	}
	if !s.KeepDecode(3, 1000) {
		t.Fatal("first decode after Reset was shed")
	}
}

func TestThresholdTrackerConvergesOnQuantile(t *testing.T) {
	tr := thresholdTracker{f: 0.5}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20000; i++ {
		tr.update(rng.Float64())
	}
	// The median of U(0,1) is 0.5; the stochastic tracker should be near it.
	if math.Abs(tr.thr-0.5) > 0.15 {
		t.Fatalf("tracked median %.3f, want ≈ 0.5", tr.thr)
	}
}

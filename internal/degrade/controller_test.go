package degrade

import (
	"testing"
	"time"
)

// feed pushes n observations of d and returns the final level.
func feed(c *Controller, n int, d time.Duration) int {
	level := c.Level()
	for i := 0; i < n; i++ {
		level = c.Observe(d)
	}
	return level
}

func TestControllerDisabledWithoutBudget(t *testing.T) {
	c := NewController(ControllerConfig{})
	if got := feed(c, 100, time.Second); got != 0 {
		t.Fatalf("level %d with zero budget, want 0", got)
	}
	if s := c.Snapshot(); s.Observed != 0 {
		t.Fatalf("disabled controller recorded %d observations", s.Observed)
	}
}

func TestControllerEscalatesUnderBreach(t *testing.T) {
	c := NewController(ControllerConfig{Budget: 10 * time.Millisecond})
	// MinSamples evidence + UpStreak breaches per step; 2×ring is plenty
	// for one escalation.
	if got := feed(c, 2*32, 20*time.Millisecond); got < 1 {
		t.Fatalf("level %d after sustained breach, want ≥ 1", got)
	}
	// Keep breaching: must saturate at MaxLevel, never beyond.
	if got := feed(c, 10*32, 20*time.Millisecond); got != MaxLevel {
		t.Fatalf("level %d after long sustained breach, want MaxLevel=%d", got, MaxLevel)
	}
	if got := feed(c, 5*32, 20*time.Millisecond); got != MaxLevel {
		t.Fatalf("level %d exceeded MaxLevel", got)
	}
}

func TestControllerRecoversWhenClear(t *testing.T) {
	c := NewController(ControllerConfig{Budget: 10 * time.Millisecond})
	feed(c, 4*32, 20*time.Millisecond)
	if c.Level() == 0 {
		t.Fatal("setup: expected a raised level")
	}
	// Far below the low-water mark for long enough to walk all the way
	// back down: each step needs MinSamples + DownStreak clear windows.
	if got := feed(c, MaxLevel*(8+16)+32, time.Millisecond); got != 0 {
		t.Fatalf("level %d after sustained recovery, want 0", got)
	}
}

func TestControllerHysteresisHoldsBetweenWaters(t *testing.T) {
	c := NewController(ControllerConfig{Budget: 10 * time.Millisecond})
	feed(c, 2*32, 20*time.Millisecond)
	level := c.Level()
	if level == 0 {
		t.Fatal("setup: expected a raised level")
	}
	// 8ms is under budget but above LowWater×budget (5.5ms): the level
	// must hold.
	if got := feed(c, 200, 8*time.Millisecond); got != level {
		t.Fatalf("level moved %d→%d inside the hysteresis band", level, got)
	}
}

func TestControllerSingleSpikeDoesNotEscalate(t *testing.T) {
	c := NewController(ControllerConfig{Budget: 10 * time.Millisecond})
	feed(c, 32, time.Millisecond)
	// One wild outlier breaches the ring p99 but the up-streak requires
	// consecutive breaching evaluations... which the spike alone provides
	// while it sits in the ring. Guard against that with the streak reset:
	// after the spike, clear windows reset the streak before it can fire
	// twice only if UpStreak > 1 evaluations happen while p99 is breached.
	// With UpStreak=2 one spike in a clear stream escalates once at most;
	// assert it never reaches MaxLevel.
	c.Observe(500 * time.Millisecond)
	if got := feed(c, 300, time.Millisecond); got >= MaxLevel {
		t.Fatalf("single spike drove level to %d", got)
	}
	if got := c.Level(); got != 0 {
		t.Fatalf("level %d long after a single spike, want recovered to 0", got)
	}
}

func TestControllerSetBudgetRuntime(t *testing.T) {
	c := NewController(ControllerConfig{Budget: time.Hour})
	if got := feed(c, 64, 20*time.Millisecond); got != 0 {
		t.Fatalf("level %d under a huge budget", got)
	}
	c.SetBudget(10 * time.Millisecond)
	if c.Budget() != 10*time.Millisecond {
		t.Fatalf("Budget() = %v after SetBudget", c.Budget())
	}
	if got := feed(c, 2*32, 20*time.Millisecond); got < 1 {
		t.Fatalf("level %d after tightening the budget, want ≥ 1", got)
	}
	// Zero budget disables and resets.
	c.SetBudget(0)
	if c.Level() != 0 {
		t.Fatalf("level %d after SetBudget(0), want 0", c.Level())
	}
	if got := feed(c, 100, time.Second); got != 0 {
		t.Fatalf("disabled loop escalated to %d", got)
	}
}

func TestControllerReset(t *testing.T) {
	c := NewController(ControllerConfig{Budget: 10 * time.Millisecond})
	feed(c, 4*32, 20*time.Millisecond)
	c.Reset()
	if c.Level() != 0 {
		t.Fatalf("level %d after Reset, want 0", c.Level())
	}
	s := c.Snapshot()
	if s.RunWindows != 0 || s.RingP99 != 0 {
		t.Fatalf("evidence survived Reset: %+v", s)
	}
	if c.Budget() != 10*time.Millisecond {
		t.Fatalf("Reset changed the budget to %v", c.Budget())
	}
}

func TestControllerSnapshotSteadyState(t *testing.T) {
	c := NewController(ControllerConfig{Budget: time.Hour})
	// All observations at one level: the steady digest covers everything.
	feed(c, 50, 2*time.Millisecond)
	s := c.Snapshot()
	if s.RunWindows != 50 || s.Observed != 50 {
		t.Fatalf("RunWindows=%d Observed=%d, want 50/50", s.RunWindows, s.Observed)
	}
	if s.RunP99 < time.Millisecond || s.RunP99 > 5*time.Millisecond {
		t.Fatalf("steady RunP99 = %v, want 2ms exactly (reservoir)", s.RunP99)
	}
	if s.RunMean < time.Millisecond || s.RunMean > 3*time.Millisecond {
		t.Fatalf("steady RunMean = %v, want ~2ms", s.RunMean)
	}
	if s.ShedWindows != 0 || s.Transitions != 0 {
		t.Fatalf("unexpected shed/transition counts: %+v", s)
	}
}

func TestControllerSteadyDigestRestartsOnLevelChange(t *testing.T) {
	c := NewController(ControllerConfig{Budget: 10 * time.Millisecond})
	// Breach until the first escalation, then stop immediately so the
	// freshly cleared digest sees no further 50ms windows.
	for i := 0; i < 200 && c.Level() == 0; i++ {
		c.Observe(50 * time.Millisecond)
	}
	if c.Level() == 0 {
		t.Fatal("setup: expected a raised level")
	}
	transitions := c.Snapshot().Transitions
	if transitions == 0 {
		t.Fatal("no transitions recorded")
	}
	// Hold the level inside the hysteresis band with fast-ish windows: the
	// digest must now only contain post-change observations.
	feed(c, 40, 8*time.Millisecond)
	s := c.Snapshot()
	if s.Transitions != transitions {
		t.Fatalf("level moved during the hold phase (%d→%d transitions)", transitions, s.Transitions)
	}
	if s.RunP99 > 12*time.Millisecond {
		t.Fatalf("steady RunP99 = %v still polluted by pre-change 50ms windows", s.RunP99)
	}
	if s.ShedWindows == 0 {
		t.Fatal("ShedWindows = 0 while shedding")
	}
}

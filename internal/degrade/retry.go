package degrade

import (
	"errors"
	"io"
	"sync/atomic"
	"time"
)

// retry policy for transient read errors: capped exponential backoff.
const (
	retryBase     = 5 * time.Millisecond
	retryCap      = 250 * time.Millisecond
	retryAttempts = 8
)

// timeoutErr and temporaryErr match the de-facto stdlib conventions for
// transient I/O failures (net.Error and friends) without importing net.
type timeoutErr interface{ Timeout() bool }
type temporaryErr interface{ Temporary() bool }

// transient reports whether err looks recoverable by retrying: a timeout or
// a self-declared temporary condition anywhere in the error chain.
func transient(err error) bool {
	var to timeoutErr
	if errors.As(err, &to) && to.Timeout() {
		return true
	}
	var tmp temporaryErr
	if errors.As(err, &tmp) && tmp.Temporary() {
		return true
	}
	return false
}

// RetryReader wraps a stream source and absorbs transient read errors
// (timeouts, temporary conditions) with capped exponential backoff, so a
// stalling transport costs latency instead of aborting the monitor. A
// non-transient error, or a transient one persisting past the attempt
// budget, is returned unchanged.
type RetryReader struct {
	r       io.Reader
	retries atomic.Int64

	// sleep is swappable for tests; defaults to time.Sleep.
	sleep func(time.Duration)
}

// NewRetryReader wraps r.
func NewRetryReader(r io.Reader) *RetryReader {
	return &RetryReader{r: r, sleep: time.Sleep}
}

// Read implements io.Reader. Progress beats errors: when the underlying
// read returns bytes alongside a transient error, the bytes are delivered
// and the error swallowed — the retry clock restarts on the next call.
func (rr *RetryReader) Read(p []byte) (int, error) {
	backoff := retryBase
	for attempt := 0; ; attempt++ {
		n, err := rr.r.Read(p)
		if err == nil || !transient(err) {
			return n, err
		}
		if n > 0 {
			return n, nil
		}
		if attempt >= retryAttempts {
			return 0, err
		}
		rr.retries.Add(1)
		rr.sleep(backoff)
		backoff *= 2
		if backoff > retryCap {
			backoff = retryCap
		}
	}
}

// Retries returns how many transient errors have been absorbed so far.
func (rr *RetryReader) Retries() int64 { return rr.retries.Load() }

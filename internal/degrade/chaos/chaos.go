// Package chaos is the fault injector behind the crash/corruption sweep:
// seeded, deterministic damage to encoded MVC1 streams (payload bit flips,
// smashed frame-header fields, truncation) and to the transport carrying
// them (stalling readers that fail with timeout errors). Every transform is
// pure — the input bytes are never modified — and driven by an explicit
// seed, so a failing sweep case replays exactly.
package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"sync"

	"vdsms/internal/mpeg"
)

// Injector applies seeded faults to encoded streams. Not safe for
// concurrent use; make one per test case.
type Injector struct {
	rng *rand.Rand
}

// New returns an injector with its own deterministic random stream.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// frame resolves the index-th frame of a stream. Earlier injected damage
// is tolerated as long as it lies past the target frame (mpeg.Frames
// reports the intact prefix), so compound faults compose by applying them
// back-to-front.
func frame(data []byte, index int) (mpeg.FrameSpan, error) {
	spans, err := mpeg.Frames(data)
	if index < 0 || index >= len(spans) {
		if err != nil {
			return mpeg.FrameSpan{}, fmt.Errorf("chaos: walking stream (frame %d unreached): %w", index, err)
		}
		return mpeg.FrameSpan{}, fmt.Errorf("chaos: frame %d out of range [0,%d)", index, len(spans))
	}
	return spans[index], nil
}

// FlipPayloadBits returns a copy of data with flips random bits flipped
// inside frame index's payload. Frame headers are untouched, so the stream
// structure survives — only the frame's content is damaged.
func (in *Injector) FlipPayloadBits(data []byte, index, flips int) ([]byte, error) {
	span, err := frame(data, index)
	if err != nil {
		return nil, err
	}
	if span.PayloadLen == 0 {
		return nil, fmt.Errorf("chaos: frame %d has an empty payload", index)
	}
	out := append([]byte(nil), data...)
	start := span.Off + mpeg.FrameHeaderBytes
	for i := 0; i < flips; i++ {
		out[start+in.rng.Intn(span.PayloadLen)] ^= 1 << in.rng.Intn(8)
	}
	return out, nil
}

// SmashType returns a copy of data with frame index's type byte replaced by
// a random byte that is not a valid frame type. The length field stays
// readable, so a resilient decoder can skip the frame in place.
func (in *Injector) SmashType(data []byte, index int) ([]byte, error) {
	span, err := frame(data, index)
	if err != nil {
		return nil, err
	}
	out := append([]byte(nil), data...)
	for {
		b := byte(in.rng.Intn(256))
		if b != 'I' && b != 'P' {
			out[span.Off] = b
			return out, nil
		}
	}
}

// SmashLength returns a copy of data with frame index's length field
// overwritten by a value far past any plausible payload bound, destroying
// frame sync at that point — the classic torn-write shape.
func (in *Injector) SmashLength(data []byte, index int) ([]byte, error) {
	span, err := frame(data, index)
	if err != nil {
		return nil, err
	}
	out := append([]byte(nil), data...)
	v := 0xF0000000 | uint32(in.rng.Int31())
	out[span.Off+1] = byte(v >> 24)
	out[span.Off+2] = byte(v >> 16)
	out[span.Off+3] = byte(v >> 8)
	out[span.Off+4] = byte(v)
	return out, nil
}

// Truncate returns the prefix of data that cuts frame index's payload in
// half — the stream ends mid-frame, as after a crashed writer.
func (in *Injector) Truncate(data []byte, index int) ([]byte, error) {
	span, err := frame(data, index)
	if err != nil {
		return nil, err
	}
	cut := span.Off + mpeg.FrameHeaderBytes + span.PayloadLen/2
	return append([]byte(nil), data[:cut]...), nil
}

// stallError is the transient failure a StallReader produces.
type stallError struct{}

func (stallError) Error() string   { return "chaos: simulated read stall" }
func (stallError) Timeout() bool   { return true }
func (stallError) Temporary() bool { return true }

// StallReader wraps a reader and fails every period-th Read call with a
// timeout error (up to maxStalls total), simulating a stalling transport.
// No data is ever lost — a stalled call returns zero bytes and the next
// call proceeds normally. Safe for use from one goroutine.
type StallReader struct {
	r         io.Reader
	period    int
	maxStalls int

	mu     sync.Mutex
	calls  int
	stalls int
}

// NewStallReader wraps r; period <= 0 disables stalling.
func NewStallReader(r io.Reader, period, maxStalls int) *StallReader {
	return &StallReader{r: r, period: period, maxStalls: maxStalls}
}

// Read implements io.Reader.
func (s *StallReader) Read(p []byte) (int, error) {
	s.mu.Lock()
	s.calls++
	stall := s.period > 0 && s.calls%s.period == 0 && s.stalls < s.maxStalls
	if stall {
		s.stalls++
	}
	s.mu.Unlock()
	if stall {
		return 0, stallError{}
	}
	return s.r.Read(p)
}

// Stalls reports how many reads have failed so far.
func (s *StallReader) Stalls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stalls
}

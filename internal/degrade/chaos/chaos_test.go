package chaos

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"vdsms/internal/mpeg"
	"vdsms/internal/vframe"
)

func stream(t *testing.T, frames int) []byte {
	t.Helper()
	src := vframe.NewSynth(vframe.SynthConfig{W: 64, H: 48, NumFrames: frames, Seed: 99, FPS: 30})
	var buf bytes.Buffer
	if _, err := mpeg.EncodeSource(&buf, src, 80, 1); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestInjectorDeterministic(t *testing.T) {
	data := stream(t, 6)
	a, err := New(7).FlipPayloadBits(data, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New(7).FlipPayloadBits(data, 2, 5)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different damage")
	}
	c, _ := New(8).FlipPayloadBits(data, 2, 5)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical damage")
	}
}

func TestTransformsArePure(t *testing.T) {
	data := stream(t, 6)
	orig := append([]byte(nil), data...)
	in := New(1)
	in.FlipPayloadBits(data, 1, 8)
	in.SmashType(data, 2)
	in.SmashLength(data, 3)
	in.Truncate(data, 4)
	if !bytes.Equal(data, orig) {
		t.Fatal("a transform modified its input")
	}
}

func TestFlipPayloadBitsKeepsStructure(t *testing.T) {
	data := stream(t, 6)
	out, err := New(3).FlipPayloadBits(data, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(out, data) {
		t.Fatal("no bits changed")
	}
	spans, err := mpeg.Frames(out)
	if err != nil || len(spans) != 6 {
		t.Fatalf("damaged stream structure: %d frames, %v", len(spans), err)
	}
	// Damage is confined to frame 2's payload.
	want, _ := mpeg.Frames(data)
	lo := want[2].Off + mpeg.FrameHeaderBytes
	hi := lo + want[2].PayloadLen
	for i := range out {
		if out[i] != data[i] && (i < lo || i >= hi) {
			t.Fatalf("byte %d outside frame 2's payload [%d,%d) changed", i, lo, hi)
		}
	}
}

func TestSmashTypeBreaksOnlyTheTypeByte(t *testing.T) {
	data := stream(t, 6)
	out, err := New(5).SmashType(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	spans, _ := mpeg.Frames(data)
	if out[spans[3].Off] == 'I' || out[spans[3].Off] == 'P' {
		t.Fatal("smashed type byte is still a valid frame type")
	}
	diff := 0
	for i := range out {
		if out[i] != data[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes changed, want exactly 1", diff)
	}
	if _, err := mpeg.Frames(out); err == nil {
		t.Fatal("structure walk accepted the smashed type")
	}
}

func TestSmashLengthDestroysSync(t *testing.T) {
	data := stream(t, 6)
	out, err := New(6).SmashLength(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mpeg.Frames(out); err == nil {
		t.Fatal("structure walk accepted the smashed length")
	}
}

func TestTruncateCutsMidPayload(t *testing.T) {
	data := stream(t, 6)
	out, err := New(2).Truncate(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	spans, _ := mpeg.Frames(data)
	if len(out) >= spans[4].Off+mpeg.FrameHeaderBytes+spans[4].PayloadLen {
		t.Fatal("truncation kept frame 4 whole")
	}
	if len(out) <= spans[4].Off {
		t.Fatal("truncation removed frame 4's header entirely")
	}
}

func TestFrameIndexOutOfRange(t *testing.T) {
	data := stream(t, 3)
	if _, err := New(1).SmashType(data, 10); err == nil {
		t.Fatal("out-of-range frame index accepted")
	}
}

func TestStallReader(t *testing.T) {
	payload := bytes.Repeat([]byte("abc"), 100)
	sr := NewStallReader(bytes.NewReader(payload), 3, 2)
	var got []byte
	buf := make([]byte, 7)
	stalls := 0
	for {
		n, err := sr.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			var to interface{ Timeout() bool }
			if !errors.As(err, &to) || !to.Timeout() {
				t.Fatalf("stall error %v does not report Timeout()", err)
			}
			stalls++
			continue
		}
	}
	if stalls != 2 || sr.Stalls() != 2 {
		t.Fatalf("observed %d stalls (reader says %d), want 2", stalls, sr.Stalls())
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("stalling lost or reordered data")
	}
}

package degrade

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// MaxLevel is the highest shed level the controller will request. Levels
// are cumulative: each one sheds strictly more work than the one below.
//
//	0 — full fidelity, nothing shed
//	1 — extract shed: low-motion key frames reuse the previous cell id
//	2 — adds decode shed: low-delta frames skip entropy decode entirely
//	3 — aggressive decode shed for severe overload
const MaxLevel = 3

// ControllerConfig tunes the overload control loop. The zero value is
// replaced field-by-field with the defaults below.
type ControllerConfig struct {
	// Budget is the per-window real-time budget: the latency the p99 of
	// recent window observations must stay under. Zero disables the loop
	// (Observe records nothing and the level stays 0).
	Budget time.Duration

	// RingSize is how many recent observations the p99 is computed over.
	// Default 32 — at that size the nearest-rank p99 is the ring maximum,
	// which is the right amount of paranoia for a real-time bound.
	RingSize int

	// MinSamples is how many observations must accumulate after a level
	// change before the loop evaluates again. Default 8. This is the
	// settling time: it keeps one stale slow window from the previous
	// level immediately re-triggering escalation.
	MinSamples int

	// UpStreak is how many consecutive breaching evaluations raise the
	// level. Default 2.
	UpStreak int

	// DownStreak is how many consecutive evaluations below LowWater×Budget
	// lower the level. Default 16 — recovery is deliberately much slower
	// than escalation so the level does not oscillate across the boundary.
	DownStreak int

	// LowWater is the fraction of Budget the p99 must clear before the
	// down-streak counts. Default 0.55: the hold band must be wide enough
	// to cover the cost step between adjacent shed levels (roughly 2× —
	// level 3 halves the cost of level 2), or the loop would de-escalate
	// from a comfortably-under-budget level straight into one that
	// breaches, and oscillate.
	LowWater float64
}

func (c ControllerConfig) withDefaults() ControllerConfig {
	if c.RingSize <= 0 {
		c.RingSize = 32
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.MinSamples > c.RingSize {
		c.MinSamples = c.RingSize
	}
	if c.UpStreak <= 0 {
		c.UpStreak = 2
	}
	if c.DownStreak <= 0 {
		c.DownStreak = 16
	}
	if c.LowWater <= 0 || c.LowWater >= 1 {
		c.LowWater = 0.55
	}
	return c
}

// Controller is the closed-loop overload controller: Observe is called once
// per completed basic window with the window's total ingest latency, and
// Level (lock-free, read from the hot path before every frame decision)
// reports the shed level the pipeline should run at.
//
// All methods are safe for concurrent use — one controller is shared by a
// detector lineage, so concurrent streams feed one loop and shed together
// (overload is a process condition, not a per-stream one).
type Controller struct {
	cfg ControllerConfig

	level  atomic.Int32
	budget atomic.Int64 // nanoseconds; mutable at runtime via SetBudget

	mu         sync.Mutex
	ring       []time.Duration // observation window, cleared on level change
	ringN      int             // valid entries in ring (≤ len(ring))
	ringAt     int             // next write position
	upStreak   int
	downStreak int

	// Steady-state digest: a uniform reservoir sample (Algorithm R with a
	// deterministic LCG) of every observation since the last level change.
	// Whole-run percentiles are dominated by the slow escalation-phase
	// windows, so overload reporting wants "the distribution once the level
	// settled" — that is exactly the digest content whenever the level has
	// stopped moving. The reservoir keeps raw durations, so RunP99 is an
	// exact nearest-rank quantile of the sample rather than a
	// bucket-interpolated estimate (bucket edges are up to 2.5× apart —
	// far too coarse to compare against a real-time budget).
	steadyRes   []time.Duration
	steadyN     int64
	steadySum   float64
	resRng      uint64
	transitions int64 // total level changes (both directions)
	observed    int64 // total observations ever
	shedWindows int64 // observations taken while level > 0
}

// steadyReservoir is the reservoir capacity: at 256 samples the nearest-rank
// p99 sits 2–3 observations from the top, enough resolution for a tail
// estimate while keeping Snapshot cheap.
const steadyReservoir = 256

// NewController builds a controller from cfg (zero fields take defaults).
func NewController(cfg ControllerConfig) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{
		cfg:    cfg,
		ring:   make([]time.Duration, cfg.RingSize),
		resRng: 0x9E3779B97F4A7C15,
	}
	c.budget.Store(int64(cfg.Budget))
	return c
}

// Level returns the current shed level in [0, MaxLevel]. Lock-free.
func (c *Controller) Level() int { return int(c.level.Load()) }

// Budget returns the current real-time budget (zero = loop disabled).
func (c *Controller) Budget() time.Duration { return time.Duration(c.budget.Load()) }

// SetBudget replaces the real-time budget at runtime and restarts the
// evidence window. Setting zero disables the loop and resets the level.
func (c *Controller) SetBudget(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.budget.Store(int64(d))
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clearEvidenceLocked()
	if d == 0 && c.level.Load() != 0 {
		c.level.Store(0)
		c.transitions++
	}
}

// Reset returns the controller to level 0 with no accumulated evidence —
// called when monitoring (re)starts so a previous stream's overload state
// does not bleed into the next.
func (c *Controller) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.level.Store(0)
	c.clearEvidenceLocked()
	c.upStreak, c.downStreak = 0, 0
}

// clearEvidenceLocked drops the ring and the steady-state digest.
func (c *Controller) clearEvidenceLocked() {
	c.ringN, c.ringAt = 0, 0
	c.steadyRes = c.steadyRes[:0]
	c.steadyN = 0
	c.steadySum = 0
}

// Observe feeds one completed window's total ingest latency into the loop
// and returns the (possibly changed) shed level.
func (c *Controller) Observe(total time.Duration) int {
	budget := time.Duration(c.budget.Load())
	if budget <= 0 {
		return int(c.level.Load())
	}

	c.mu.Lock()
	defer c.mu.Unlock()

	c.observed++
	if c.level.Load() > 0 {
		c.shedWindows++
	}

	c.ring[c.ringAt] = total
	c.ringAt = (c.ringAt + 1) % len(c.ring)
	if c.ringN < len(c.ring) {
		c.ringN++
	}
	c.digestLocked(total)

	if c.ringN < c.cfg.MinSamples {
		return int(c.level.Load())
	}

	p99 := c.ringP99Locked()
	level := int(c.level.Load())
	switch {
	case p99 > budget:
		c.downStreak = 0
		c.upStreak++
		if c.upStreak >= c.cfg.UpStreak && level < MaxLevel {
			level++
			c.changeLevelLocked(level)
		}
	case p99 < time.Duration(float64(budget)*c.cfg.LowWater):
		c.upStreak = 0
		c.downStreak++
		if c.downStreak >= c.cfg.DownStreak && level > 0 {
			level--
			c.changeLevelLocked(level)
		}
	default:
		// Between the waters: hold the level, decay both streaks.
		c.upStreak, c.downStreak = 0, 0
	}
	return level
}

// changeLevelLocked commits a level change and restarts evidence collection
// so the next decision is based entirely on windows run at the new level.
func (c *Controller) changeLevelLocked(level int) {
	c.level.Store(int32(level))
	c.transitions++
	c.upStreak, c.downStreak = 0, 0
	c.clearEvidenceLocked()
}

// digestLocked adds one observation to the steady-state reservoir.
func (c *Controller) digestLocked(total time.Duration) {
	c.steadyN++
	c.steadySum += total.Seconds()
	if len(c.steadyRes) < steadyReservoir {
		c.steadyRes = append(c.steadyRes, total)
		return
	}
	// Algorithm R: replace a uniformly chosen slot with probability
	// reservoir/steadyN, via a deterministic LCG (the controller must not
	// perturb or depend on global randomness).
	c.resRng = c.resRng*6364136223846793005 + 1442695040888963407
	if j := int(c.resRng % uint64(c.steadyN)); j < steadyReservoir {
		c.steadyRes[j] = total
	}
}

// Snapshot is a point-in-time view of the control loop for /stats,
// experiment reports and tests.
type Snapshot struct {
	Level       int           // current shed level
	Budget      time.Duration // current budget (0 = disabled)
	RingP99     time.Duration // p99 of the current evidence ring
	RunP99      time.Duration // p99 since the last level change (steady state)
	RunMean     time.Duration // mean since the last level change
	RunWindows  int64         // observations since the last level change
	Observed    int64         // observations since Reset
	ShedWindows int64         // observations taken at level > 0
	Transitions int64         // level changes since Reset
}

// Snapshot returns the current control-loop state.
func (c *Controller) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{
		Level:       int(c.level.Load()),
		Budget:      time.Duration(c.budget.Load()),
		Observed:    c.observed,
		ShedWindows: c.shedWindows,
		Transitions: c.transitions,
	}
	if c.ringN > 0 {
		s.RingP99 = c.ringP99Locked()
	}
	s.RunWindows = c.steadyN
	if c.steadyN > 0 {
		buf := make([]time.Duration, len(c.steadyRes))
		copy(buf, c.steadyRes)
		sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
		rank := (99*len(buf) + 99) / 100 // ceil(0.99 n)
		if rank < 1 {
			rank = 1
		}
		s.RunP99 = buf[rank-1]
		s.RunMean = time.Duration(c.steadySum / float64(c.steadyN) * float64(time.Second))
	}
	return s
}

// ringP99Locked computes the nearest-rank p99 of the valid ring entries.
// At ring sizes ≤ 100 the 0.99 rank is the maximum, so this is a scan.
func (c *Controller) ringP99Locked() time.Duration {
	rank := (99*c.ringN + 99) / 100 // ceil(0.99 n)
	if rank >= c.ringN {
		var max time.Duration
		for i := 0; i < c.ringN; i++ {
			if c.ring[i] > max {
				max = c.ring[i]
			}
		}
		return max
	}
	// General nearest-rank via partial selection; n is ≤ RingSize so an
	// insertion pass over a small copy is fine.
	buf := make([]time.Duration, c.ringN)
	copy(buf, c.ring[:c.ringN])
	for i := 1; i < len(buf); i++ {
		for j := i; j > 0 && buf[j] < buf[j-1]; j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
	return buf[rank-1]
}

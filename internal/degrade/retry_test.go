package degrade

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

// flaky fails reads with err until fails runs out, then serves from data.
type flaky struct {
	data  io.Reader
	err   error
	fails int
}

func (f *flaky) Read(p []byte) (int, error) {
	if f.fails > 0 {
		f.fails--
		return 0, f.err
	}
	return f.data.Read(p)
}

type timeoutError struct{}

func (timeoutError) Error() string   { return "i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

type temporaryError struct{}

func (temporaryError) Error() string   { return "temporarily unavailable" }
func (temporaryError) Temporary() bool { return true }

func newTestRetryReader(r io.Reader) (*RetryReader, *[]time.Duration) {
	rr := NewRetryReader(r)
	var slept []time.Duration
	rr.sleep = func(d time.Duration) { slept = append(slept, d) }
	return rr, &slept
}

func TestRetryReaderAbsorbsTimeouts(t *testing.T) {
	src := &flaky{data: bytes.NewReader([]byte("payload")), err: timeoutError{}, fails: 3}
	rr, slept := newTestRetryReader(src)
	got, err := io.ReadAll(rr)
	if err != nil || string(got) != "payload" {
		t.Fatalf("ReadAll = (%q, %v), want (payload, nil)", got, err)
	}
	if rr.Retries() != 3 {
		t.Fatalf("Retries() = %d, want 3", rr.Retries())
	}
	if len(*slept) != 3 {
		t.Fatalf("slept %d times, want 3", len(*slept))
	}
	// Backoff doubles from the base.
	if (*slept)[0] != retryBase || (*slept)[1] != 2*retryBase {
		t.Fatalf("backoff sequence %v, want %v, %v, ...", *slept, retryBase, 2*retryBase)
	}
}

func TestRetryReaderAbsorbsTemporary(t *testing.T) {
	src := &flaky{data: bytes.NewReader([]byte("x")), err: temporaryError{}, fails: 1}
	rr, _ := newTestRetryReader(src)
	if got, err := io.ReadAll(rr); err != nil || string(got) != "x" {
		t.Fatalf("ReadAll = (%q, %v), want (x, nil)", got, err)
	}
}

func TestRetryReaderWrappedTransient(t *testing.T) {
	wrapped := &flaky{
		data:  bytes.NewReader([]byte("y")),
		err:   errors.Join(errors.New("read tcp"), timeoutError{}),
		fails: 2,
	}
	rr, _ := newTestRetryReader(wrapped)
	if got, err := io.ReadAll(rr); err != nil || string(got) != "y" {
		t.Fatalf("ReadAll = (%q, %v), want (y, nil)", got, err)
	}
}

func TestRetryReaderPassesThroughPermanentErrors(t *testing.T) {
	boom := errors.New("disk on fire")
	rr, slept := newTestRetryReader(&flaky{data: bytes.NewReader(nil), err: boom, fails: 1})
	if _, err := rr.Read(make([]byte, 8)); !errors.Is(err, boom) {
		t.Fatalf("Read error = %v, want %v unchanged", err, boom)
	}
	if len(*slept) != 0 {
		t.Fatal("slept on a permanent error")
	}
}

func TestRetryReaderGivesUpAfterBudget(t *testing.T) {
	rr, slept := newTestRetryReader(&flaky{data: bytes.NewReader(nil), err: timeoutError{}, fails: 1 << 30})
	_, err := rr.Read(make([]byte, 8))
	var to timeoutErr
	if !errors.As(err, &to) {
		t.Fatalf("exhausted retries returned %v, want the timeout error", err)
	}
	if len(*slept) != retryAttempts {
		t.Fatalf("slept %d times, want %d", len(*slept), retryAttempts)
	}
	for _, d := range *slept {
		if d > retryCap {
			t.Fatalf("backoff %v exceeds cap %v", d, retryCap)
		}
	}
}

// progressReader returns data and a transient error in the same call.
type progressReader struct{ done bool }

func (p *progressReader) Read(b []byte) (int, error) {
	if p.done {
		return 0, io.EOF
	}
	p.done = true
	b[0] = 'z'
	return 1, timeoutError{}
}

func TestRetryReaderDeliversPartialProgress(t *testing.T) {
	rr, slept := newTestRetryReader(&progressReader{})
	buf := make([]byte, 4)
	n, err := rr.Read(buf)
	if n != 1 || err != nil || buf[0] != 'z' {
		t.Fatalf("Read = (%d, %v), want (1, nil) with payload", n, err)
	}
	if len(*slept) != 0 {
		t.Fatal("slept despite progress")
	}
	if _, err := rr.Read(buf); err != io.EOF {
		t.Fatalf("second read = %v, want io.EOF", err)
	}
}

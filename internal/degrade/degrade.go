// Package degrade is the graceful-degradation layer of the detection
// pipeline: it decides, under sustained overload or a damaged input, what
// work to give up so the rest keeps its real-time contract.
//
// Three cooperating pieces:
//
//   - Controller — a closed-loop overload controller. The facade feeds it
//     one observation per basic window (full ingest latency: decode +
//     extract + matching kernel + durability); the controller compares the
//     p99 of a sliding ring against a configurable real-time budget and
//     moves a bounded shed level up or down with hysteresis (consecutive
//     breaches to raise, a longer streak well below budget to lower, fresh
//     evidence collected after every change).
//
//   - Sampler — content-aware shed decisions at the current level. Frames
//     are ranked by cheap per-frame signals (the DC-delta motion proxy
//     after decode, the payload-size delta before decode) against
//     self-adapting quantile thresholds, so static segments are sampled
//     sparsely and high-motion segments densely; a max-run guard bounds
//     consecutive sheds so no content span goes completely unobserved.
//
//   - RetryReader — absorbs transient (timeout/temporary) read errors from
//     a stalling stream source with capped exponential backoff, so a
//     flaky transport degrades throughput instead of aborting the monitor.
//
// The fault-injection companion package degrade/chaos produces the damaged
// bitstreams and stalling readers the crash/corruption sweep tests feed
// through this layer. See DESIGN.md "Overload & graceful degradation".
package degrade

package vframe

import "math"

// SynthConfig parameterises a synthetic video.
type SynthConfig struct {
	W, H      int     // frame dimensions, multiples of 16
	FPS       float64 // frame rate
	Seed      int64   // content identity: distinct seeds → distinct videos
	NumFrames int     // total length
	// MinShotSec/MaxShotSec bound the duration of one shot. Zero values
	// default to 2 and 6 seconds.
	MinShotSec, MaxShotSec float64
}

func (c *SynthConfig) defaults() {
	if c.W == 0 {
		c.W = 176
	}
	if c.H == 0 {
		c.H = 144
	}
	if c.FPS == 0 {
		c.FPS = 30
	}
	if c.MinShotSec == 0 {
		c.MinShotSec = 2
	}
	if c.MaxShotSec == 0 {
		c.MaxShotSec = 6
	}
}

// knotGrid is the side length of the per-shot luma mosaic: a shot's
// background is a bilinear interpolation over (knotGrid+1)² luma knots,
// each oscillating slowly. The mosaic gives frames the property real
// footage has and the compressed-domain fingerprint relies on: spatial
// regions with large, stable luma contrasts that evolve coherently in time.
const knotGrid = 4

// shot holds the visual parameters of one contiguous scene.
type shot struct {
	start, n int // frame range [start, start+n)
	// Mosaic knots: base level, oscillation amplitude, angular velocity
	// (radians per frame) and phase, row-major (knotGrid+1)².
	knotBase, knotAmp, knotW, knotPhi [(knotGrid + 1) * (knotGrid + 1)]float64
	// Chroma tint.
	cb, cr float64
	// Moving blobs.
	blobs []blob
	// Per-shot texture seed.
	texSeed uint64
}

type blob struct {
	cx, cy   float64 // initial centre (fraction of frame)
	vx, vy   float64 // velocity (fraction of frame per frame)
	radius   float64 // fraction of min dimension
	strength float64 // luma delta
}

// Synth is a deterministic synthetic video: Frame(i) always returns the
// same picture for the same (config, i). It implements Source.
type Synth struct {
	cfg   SynthConfig
	shots []shot
	buf   *Frame // reused output buffer
}

// NewSynth builds a synthetic video from cfg. NumFrames must be positive.
func NewSynth(cfg SynthConfig) *Synth {
	cfg.defaults()
	if cfg.NumFrames <= 0 {
		panic("vframe: SynthConfig.NumFrames must be positive")
	}
	s := &Synth{cfg: cfg, buf: NewFrame(cfg.W, cfg.H)}
	s.planShots()
	return s
}

// splitmix64 is the per-stream PRNG primitive: a single step of SplitMix64.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashf maps arbitrary integer tuples to a float in [0,1).
func hashf(vals ...uint64) float64 {
	h := uint64(0x2545F4914F6CDD1D)
	for _, v := range vals {
		h = splitmix64(h ^ v)
	}
	return float64(h>>11) / float64(1<<53)
}

func (s *Synth) planShots() {
	seed := uint64(s.cfg.Seed)
	frame := 0
	// Shot boundaries are planned in seconds and only then rounded to
	// frames, so the same seed yields time-aligned shots at every frame
	// rate (the key-frame-level pipeline must see the same scenes as the
	// full-rate pipeline).
	startSec := 0.0
	for idx := 0; frame < s.cfg.NumFrames; idx++ {
		key := splitmix64(seed ^ uint64(idx)*0x9E3779B97F4A7C15)
		dur := s.cfg.MinShotSec + hashf(key, 1)*(s.cfg.MaxShotSec-s.cfg.MinShotSec)
		endSec := startSec + dur
		n := int(endSec*s.cfg.FPS+0.5) - frame
		if n < 1 {
			n = 1
		}
		if frame+n > s.cfg.NumFrames {
			n = s.cfg.NumFrames - frame
		}
		startSec = endSec
		// Temporal rates are specified per second and divided by FPS so the
		// same visual speed results whether the video is generated at full
		// rate or at key-frame rate only. Knot lumas span [60, 180] so that
		// with blobs, texture and a ±20 photometric attack frames stay
		// clear of saturation (clamping would break the min–max
		// normalisation invariance the fingerprint relies on).
		sh := shot{
			start:   frame,
			n:       n,
			cb:      96 + hashf(key, 6)*64,
			cr:      96 + hashf(key, 7)*64,
			texSeed: splitmix64(key ^ 0xABCD),
		}
		for ki := range sh.knotBase {
			kk := splitmix64(key ^ uint64(ki+101)*0xBEEF7)
			sh.knotBase[ki] = 60 + hashf(kk, 1)*120
			sh.knotAmp[ki] = 5 + hashf(kk, 2)*10
			sh.knotW[ki] = (0.2 + hashf(kk, 3)*0.6) / s.cfg.FPS
			sh.knotPhi[ki] = hashf(kk, 4) * 6.28318
		}
		nb := 1 + int(hashf(key, 8)*3)
		for b := 0; b < nb; b++ {
			bk := splitmix64(key ^ uint64(b+1)*0x1234567)
			sh.blobs = append(sh.blobs, blob{
				cx:       hashf(bk, 1),
				cy:       hashf(bk, 2),
				vx:       (hashf(bk, 3) - 0.5) * 0.3 / s.cfg.FPS,
				vy:       (hashf(bk, 4) - 0.5) * 0.3 / s.cfg.FPS,
				radius:   0.08 + hashf(bk, 5)*0.15,
				strength: (hashf(bk, 6) - 0.5) * 60,
			})
		}
		s.shots = append(s.shots, sh)
		frame += n
	}
}

func (s *Synth) Len() int     { return s.cfg.NumFrames }
func (s *Synth) FPS() float64 { return s.cfg.FPS }

// Frame renders frame i into an internal buffer shared across calls.
func (s *Synth) Frame(i int) *Frame {
	if i < 0 || i >= s.cfg.NumFrames {
		panic("vframe: Synth frame index out of range")
	}
	sh := s.shotFor(i)
	t := float64(i - sh.start)
	f := s.buf
	w, h := f.W, f.H

	// Luma: animated mosaic (bilinear over oscillating knots) + texture +
	// blobs. Evaluate the knot levels once per frame.
	var knots [(knotGrid + 1) * (knotGrid + 1)]float64
	for ki := range knots {
		knots[ki] = sh.knotBase[ki] + sh.knotAmp[ki]*math.Sin(sh.knotW[ki]*t+sh.knotPhi[ki])
	}
	for y := 0; y < h; y++ {
		gy := float64(y) / float64(h) * knotGrid
		ky := int(gy)
		if ky >= knotGrid {
			ky = knotGrid - 1
		}
		fy := gy - float64(ky)
		for x := 0; x < w; x++ {
			gx := float64(x) / float64(w) * knotGrid
			kx := int(gx)
			if kx >= knotGrid {
				kx = knotGrid - 1
			}
			fx := gx - float64(kx)
			row := ky * (knotGrid + 1)
			top := knots[row+kx] + (knots[row+kx+1]-knots[row+kx])*fx
			bot := knots[row+knotGrid+1+kx] + (knots[row+knotGrid+1+kx+1]-knots[row+knotGrid+1+kx])*fx
			v := top + (bot-top)*fy
			// Static per-shot texture at 4×4 granularity keeps spatial
			// detail without per-pixel hashing cost dominating.
			v += (hashf(sh.texSeed, uint64(x/4), uint64(y/4)) - 0.5) * 16
			f.Y[y*w+x] = clampU8(v)
		}
	}
	minDim := float64(w)
	if h < w {
		minDim = float64(h)
	}
	for _, b := range sh.blobs {
		cx := math.Mod(b.cx+b.vx*t, 1)
		cy := math.Mod(b.cy+b.vy*t, 1)
		if cx < 0 {
			cx++
		}
		if cy < 0 {
			cy++
		}
		px, py := cx*float64(w), cy*float64(h)
		r := b.radius * minDim
		x0, x1 := int(px-r)-1, int(px+r)+1
		y0, y1 := int(py-r)-1, int(py+r)+1
		for y := max(0, y0); y <= min(h-1, y1); y++ {
			for x := max(0, x0); x <= min(w-1, x1); x++ {
				dx, dy := float64(x)-px, float64(y)-py
				d2 := dx*dx + dy*dy
				if d2 < r*r {
					fade := 1 - d2/(r*r)
					idx := y*w + x
					f.Y[idx] = clampU8(float64(f.Y[idx]) + b.strength*fade)
				}
			}
		}
	}

	// Chroma: flat per-shot tint with a slow temporal wobble (per-second
	// rate, FPS-independent).
	cb := clampU8(sh.cb + 6*math.Sin(t*1.5/s.cfg.FPS))
	cr := clampU8(sh.cr + 6*math.Cos(t*1.2/s.cfg.FPS))
	for i := range f.Cb {
		f.Cb[i] = cb
		f.Cr[i] = cr
	}
	return f
}

func (s *Synth) shotFor(i int) *shot {
	lo, hi := 0, len(s.shots)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if s.shots[mid].start <= i {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return &s.shots[lo]
}

// NumShots reports how many shots the video was planned into.
func (s *Synth) NumShots() int { return len(s.shots) }

// ShotBoundaries returns the start frame of each shot, in order.
func (s *Synth) ShotBoundaries() []int {
	out := make([]int, len(s.shots))
	for i, sh := range s.shots {
		out[i] = sh.start
	}
	return out
}

package vframe

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewFrameDimensions(t *testing.T) {
	f := NewFrame(176, 144)
	if len(f.Y) != 176*144 {
		t.Errorf("Y plane size %d", len(f.Y))
	}
	if len(f.Cb) != 88*72 || len(f.Cr) != 88*72 {
		t.Errorf("chroma plane sizes %d, %d", len(f.Cb), len(f.Cr))
	}
}

func TestNewFramePanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 16}, {16, 0}, {17, 16}, {16, 20}, {-16, 16}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFrame(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			NewFrame(dims[0], dims[1])
		}()
	}
}

func TestCloneIndependence(t *testing.T) {
	f := NewFrame(16, 16)
	f.Y[0] = 100
	g := f.Clone()
	g.Y[0] = 50
	if f.Y[0] != 100 {
		t.Error("Clone shares luma storage")
	}
}

func TestPSNRIdentical(t *testing.T) {
	s := NewSynth(SynthConfig{W: 64, H: 48, NumFrames: 5, Seed: 1})
	a := s.Frame(2).Clone()
	b := s.Frame(2)
	if !math.IsInf(PSNR(a, b), 1) {
		t.Errorf("PSNR of identical frames = %g, want +Inf", PSNR(a, b))
	}
}

func TestPSNRDegrades(t *testing.T) {
	s := NewSynth(SynthConfig{W: 64, H: 48, NumFrames: 5, Seed: 1})
	a := s.Frame(0).Clone()
	small := a.Clone()
	for i := range small.Y {
		small.Y[i] = uint8(int(small.Y[i])/2 + 64) // mild distortion
	}
	big := a.Clone()
	for i := range big.Y {
		big.Y[i] = 255 - big.Y[i] // severe distortion
	}
	pSmall, pBig := PSNR(a, small), PSNR(a, big)
	if pSmall <= pBig {
		t.Errorf("PSNR(small distortion)=%g should exceed PSNR(big)=%g", pSmall, pBig)
	}
}

func TestResizeRoundTripQuality(t *testing.T) {
	s := NewSynth(SynthConfig{W: 176, H: 144, NumFrames: 3, Seed: 7})
	orig := s.Frame(1).Clone()
	down := Resize(orig, 96, 80)
	back := Resize(down, 176, 144)
	if p := PSNR(orig, back); p < 18 {
		t.Errorf("resize round-trip PSNR = %.1f dB, want >= 18", p)
	}
}

func TestResizeConstantFrame(t *testing.T) {
	f := NewFrame(32, 32)
	for i := range f.Y {
		f.Y[i] = 137
	}
	g := Resize(f, 64, 48)
	for i, v := range g.Y {
		if v != 137 {
			t.Fatalf("resized constant frame has Y[%d]=%d", i, v)
		}
	}
}

func TestSynthDeterministic(t *testing.T) {
	cfg := SynthConfig{W: 64, H: 48, NumFrames: 50, Seed: 42}
	a, b := NewSynth(cfg), NewSynth(cfg)
	for _, i := range []int{0, 10, 25, 49} {
		fa := a.Frame(i).Clone()
		fb := b.Frame(i)
		if !math.IsInf(PSNR(fa, fb), 1) {
			t.Fatalf("frame %d differs across identical Synth instances", i)
		}
	}
	// Random access must match sequential access.
	f25 := a.Frame(25).Clone()
	a.Frame(0)
	if !math.IsInf(PSNR(f25, a.Frame(25)), 1) {
		t.Error("random access changed frame content")
	}
}

func TestSynthSeedsDiffer(t *testing.T) {
	a := NewSynth(SynthConfig{W: 64, H: 48, NumFrames: 10, Seed: 1})
	b := NewSynth(SynthConfig{W: 64, H: 48, NumFrames: 10, Seed: 2})
	fa := a.Frame(0).Clone()
	if p := PSNR(fa, b.Frame(0)); p > 30 {
		t.Errorf("different seeds produced near-identical frames (PSNR %.1f)", p)
	}
}

func TestSynthTemporalCoherence(t *testing.T) {
	s := NewSynth(SynthConfig{W: 64, H: 48, NumFrames: 100, Seed: 3})
	// Adjacent frames within a shot should be much closer than frames from
	// different seeds.
	f0 := s.Frame(1).Clone()
	f1 := s.Frame(2)
	if p := PSNR(f0, f1); p < 25 {
		t.Errorf("adjacent frames PSNR = %.1f dB, want >= 25 (temporal coherence)", p)
	}
}

func TestSynthShotPlanCoversVideo(t *testing.T) {
	s := NewSynth(SynthConfig{W: 32, H: 32, NumFrames: 500, Seed: 9, FPS: 30})
	bounds := s.ShotBoundaries()
	if bounds[0] != 0 {
		t.Errorf("first shot starts at %d", bounds[0])
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("shot boundaries not increasing: %v", bounds)
		}
	}
	if s.NumShots() < 2 {
		t.Errorf("500 frames at 30fps planned into %d shots, want >= 2", s.NumShots())
	}
}

func TestClip(t *testing.T) {
	s := NewSynth(SynthConfig{W: 32, H: 32, NumFrames: 100, Seed: 4})
	c := Clip(s, 20, 30)
	if c.Len() != 30 {
		t.Fatalf("Clip.Len = %d", c.Len())
	}
	want := s.Frame(25).Clone()
	if !math.IsInf(PSNR(want, c.Frame(5)), 1) {
		t.Error("Clip frame 5 != parent frame 25")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range Clip did not panic")
			}
		}()
		Clip(s, 90, 20)
	}()
}

func TestConcat(t *testing.T) {
	a := NewSynth(SynthConfig{W: 32, H: 32, NumFrames: 10, Seed: 1})
	b := NewSynth(SynthConfig{W: 32, H: 32, NumFrames: 15, Seed: 2})
	c := NewSynth(SynthConfig{W: 32, H: 32, NumFrames: 5, Seed: 3})
	cc := Concat(a, b, c)
	if cc.Len() != 30 {
		t.Fatalf("Concat.Len = %d", cc.Len())
	}
	checks := []struct {
		idx    int
		src    Source
		srcIdx int
	}{
		{0, a, 0}, {9, a, 9}, {10, b, 0}, {24, b, 14}, {25, c, 0}, {29, c, 4},
	}
	for _, ck := range checks {
		got := cc.Frame(ck.idx).Clone()
		if !math.IsInf(PSNR(got, ck.src.Frame(ck.srcIdx)), 1) {
			t.Errorf("Concat frame %d mismatched", ck.idx)
		}
	}
}

func TestConcatFPSMismatchPanics(t *testing.T) {
	a := NewSynth(SynthConfig{W: 32, H: 32, NumFrames: 5, Seed: 1, FPS: 30})
	b := NewSynth(SynthConfig{W: 32, H: 32, NumFrames: 5, Seed: 2, FPS: 25})
	defer func() {
		if recover() == nil {
			t.Error("Concat with FPS mismatch did not panic")
		}
	}()
	Concat(a, b)
}

func TestMap(t *testing.T) {
	s := NewSynth(SynthConfig{W: 32, H: 32, NumFrames: 5, Seed: 1})
	m := Map(s, func(i int, f *Frame) *Frame {
		g := f.Clone()
		for j := range g.Y {
			g.Y[j] = 255 - g.Y[j]
		}
		return g
	})
	orig := s.Frame(2).Clone()
	inv := m.Frame(2)
	for j := range orig.Y {
		if inv.Y[j] != 255-orig.Y[j] {
			t.Fatal("Map transform not applied")
		}
	}
}

func TestMaterialise(t *testing.T) {
	s := NewSynth(SynthConfig{W: 32, H: 32, NumFrames: 8, Seed: 5})
	want := s.Frame(3).Clone()
	m := Materialise(s)
	if m.Len() != 8 || m.FPS() != s.FPS() {
		t.Fatal("Materialise changed shape")
	}
	if !math.IsInf(PSNR(want, m.Frame(3)), 1) {
		t.Error("Materialise frame content differs")
	}
}

func TestDuration(t *testing.T) {
	s := NewSynth(SynthConfig{W: 32, H: 32, NumFrames: 60, Seed: 1, FPS: 30})
	if d := Duration(s); d != 2 {
		t.Errorf("Duration = %g, want 2", d)
	}
}

// Property: hashf always lands in [0,1) and is deterministic.
func TestPropertyHashf(t *testing.T) {
	f := func(a, b, c uint64) bool {
		v := hashf(a, b, c)
		return v >= 0 && v < 1 && v == hashf(a, b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkSynthFrame(b *testing.B) {
	s := NewSynth(SynthConfig{W: 176, H: 144, NumFrames: 1000, Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Frame(i % 1000)
	}
}

// Package vframe provides the raw-video substrate: YCbCr 4:2:0 frames,
// lazy frame sources, and a deterministic synthetic video generator.
//
// The paper evaluates on real short videos downloaded from Google Video.
// No video assets exist in this offline environment, so videos are
// synthesised instead: a per-video seed drives smoothly evolving scenes
// (drifting gradients, moving blobs, static texture) split into shots.
// Frames within one video are temporally coherent while different seeds
// produce visually distinct content — the two properties the compressed-
// domain fingerprint of the paper depends on.
package vframe

import (
	"fmt"
	"math"
)

// Frame is a YCbCr 4:2:0 picture. Y has W×H samples; Cb and Cr each have
// (W/2)×(H/2). W and H must be multiples of 16 (one macroblock).
type Frame struct {
	W, H      int
	Y, Cb, Cr []uint8
}

// NewFrame allocates a zeroed frame. It panics if w or h is not a positive
// multiple of 16.
func NewFrame(w, h int) *Frame {
	if w <= 0 || h <= 0 || w%16 != 0 || h%16 != 0 {
		panic(fmt.Sprintf("vframe: dimensions %dx%d must be positive multiples of 16", w, h))
	}
	return &Frame{
		W:  w,
		H:  h,
		Y:  make([]uint8, w*h),
		Cb: make([]uint8, w*h/4),
		Cr: make([]uint8, w*h/4),
	}
}

// Clone returns a deep copy of f.
func (f *Frame) Clone() *Frame {
	g := &Frame{
		W:  f.W,
		H:  f.H,
		Y:  append([]uint8(nil), f.Y...),
		Cb: append([]uint8(nil), f.Cb...),
		Cr: append([]uint8(nil), f.Cr...),
	}
	return g
}

// YAt returns the luma sample at (x, y) with edge clamping.
func (f *Frame) YAt(x, y int) uint8 {
	x, y = clamp(x, f.W-1), clamp(y, f.H-1)
	return f.Y[y*f.W+x]
}

func clamp(v, max int) int {
	if v < 0 {
		return 0
	}
	if v > max {
		return max
	}
	return v
}

// MeanLuma returns the average luma value of the frame.
func (f *Frame) MeanLuma() float64 {
	var s int64
	for _, v := range f.Y {
		s += int64(v)
	}
	return float64(s) / float64(len(f.Y))
}

// PSNR returns the luma peak signal-to-noise ratio between two frames of
// identical dimensions, in dB. Identical frames give +Inf.
func PSNR(a, b *Frame) float64 {
	if a.W != b.W || a.H != b.H {
		panic("vframe: PSNR dimension mismatch")
	}
	var se float64
	for i := range a.Y {
		d := float64(a.Y[i]) - float64(b.Y[i])
		se += d * d
	}
	if se == 0 {
		return math.Inf(1)
	}
	mse := se / float64(len(a.Y))
	return 10 * math.Log10(255*255/mse)
}

// Resize scales f to w×h using bilinear interpolation on each plane.
// w and h must be positive multiples of 16.
func Resize(f *Frame, w, h int) *Frame {
	out := NewFrame(w, h)
	resizePlane(f.Y, f.W, f.H, out.Y, w, h)
	resizePlane(f.Cb, f.W/2, f.H/2, out.Cb, w/2, h/2)
	resizePlane(f.Cr, f.W/2, f.H/2, out.Cr, w/2, h/2)
	return out
}

func resizePlane(src []uint8, sw, sh int, dst []uint8, dw, dh int) {
	xr := float64(sw) / float64(dw)
	yr := float64(sh) / float64(dh)
	for y := 0; y < dh; y++ {
		sy := (float64(y)+0.5)*yr - 0.5
		y0 := int(sy)
		fy := sy - float64(y0)
		if y0 < 0 {
			y0, fy = 0, 0
		}
		y1 := y0 + 1
		if y1 >= sh {
			y1 = sh - 1
		}
		for x := 0; x < dw; x++ {
			sx := (float64(x)+0.5)*xr - 0.5
			x0 := int(sx)
			fx := sx - float64(x0)
			if x0 < 0 {
				x0, fx = 0, 0
			}
			x1 := x0 + 1
			if x1 >= sw {
				x1 = sw - 1
			}
			v00 := float64(src[y0*sw+x0])
			v01 := float64(src[y0*sw+x1])
			v10 := float64(src[y1*sw+x0])
			v11 := float64(src[y1*sw+x1])
			top := v00 + (v01-v00)*fx
			bot := v10 + (v11-v10)*fx
			dst[y*dw+x] = clampU8(top + (bot-top)*fy)
		}
	}
}

func clampU8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v + 0.5)
}

package vframe

import "fmt"

// Source is a finite, random-access sequence of frames at a fixed rate.
// Implementations generate frames lazily and deterministically so that long
// streams never need to be materialised in memory, and so that temporal
// edits (reordering, resampling) compose as index arithmetic.
type Source interface {
	// Len returns the number of frames.
	Len() int
	// FPS returns the nominal frame rate.
	FPS() float64
	// Frame returns frame i (0-based). Implementations may return a shared
	// buffer that is invalidated by the next call; callers that retain a
	// frame must Clone it.
	Frame(i int) *Frame
}

// Duration returns the length of s in seconds.
func Duration(s Source) float64 { return float64(s.Len()) / s.FPS() }

// sliceSource serves pre-materialised frames.
type sliceSource struct {
	frames []*Frame
	fps    float64
}

// FromFrames wraps a slice of frames as a Source.
func FromFrames(frames []*Frame, fps float64) Source {
	return &sliceSource{frames: frames, fps: fps}
}

func (s *sliceSource) Len() int           { return len(s.frames) }
func (s *sliceSource) FPS() float64       { return s.fps }
func (s *sliceSource) Frame(i int) *Frame { return s.frames[i] }

// Materialise evaluates every frame of src into memory. Intended for short
// clips (queries); do not call on long streams.
func Materialise(src Source) Source {
	frames := make([]*Frame, src.Len())
	for i := range frames {
		frames[i] = src.Frame(i).Clone()
	}
	return FromFrames(frames, src.FPS())
}

// clipSource exposes a contiguous window [off, off+n) of a parent source.
type clipSource struct {
	parent Source
	off, n int
}

// Clip returns the subsequence of src covering frames [off, off+n).
func Clip(src Source, off, n int) Source {
	if off < 0 || n < 0 || off+n > src.Len() {
		panic(fmt.Sprintf("vframe: Clip [%d,%d) out of range 0..%d", off, off+n, src.Len()))
	}
	return &clipSource{parent: src, off: off, n: n}
}

func (c *clipSource) Len() int           { return c.n }
func (c *clipSource) FPS() float64       { return c.parent.FPS() }
func (c *clipSource) Frame(i int) *Frame { return c.parent.Frame(c.off + i) }

// concatSource chains several sources of equal FPS end to end.
type concatSource struct {
	parts  []Source
	starts []int // prefix sums of part lengths
	total  int
	fps    float64
}

// Concat joins the given sources into one. All parts must share a frame
// rate; resample first if they do not.
func Concat(parts ...Source) Source {
	if len(parts) == 0 {
		panic("vframe: Concat of zero sources")
	}
	fps := parts[0].FPS()
	c := &concatSource{parts: parts, fps: fps}
	for _, p := range parts {
		if p.FPS() != fps {
			panic(fmt.Sprintf("vframe: Concat FPS mismatch %g vs %g", p.FPS(), fps))
		}
		c.starts = append(c.starts, c.total)
		c.total += p.Len()
	}
	return c
}

func (c *concatSource) Len() int     { return c.total }
func (c *concatSource) FPS() float64 { return c.fps }

func (c *concatSource) Frame(i int) *Frame {
	if i < 0 || i >= c.total {
		panic(fmt.Sprintf("vframe: Concat frame %d out of range 0..%d", i, c.total))
	}
	// Binary search the part containing frame i.
	lo, hi := 0, len(c.parts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if c.starts[mid] <= i {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return c.parts[lo].Frame(i - c.starts[lo])
}

// mapSource applies a per-frame transform lazily.
type mapSource struct {
	parent Source
	fn     func(i int, f *Frame) *Frame
}

// Map returns a Source whose frame i is fn(i, src.Frame(i)). fn may mutate
// and return its argument or return a new frame.
func Map(src Source, fn func(i int, f *Frame) *Frame) Source {
	return &mapSource{parent: src, fn: fn}
}

func (m *mapSource) Len() int           { return m.parent.Len() }
func (m *mapSource) FPS() float64       { return m.parent.FPS() }
func (m *mapSource) Frame(i int) *Frame { return m.fn(i, m.parent.Frame(i)) }

package vframe

import (
	"image"
	"testing"
)

func TestToImageFromImageRoundTrip(t *testing.T) {
	s := NewSynth(SynthConfig{W: 64, H: 48, NumFrames: 2, Seed: 3})
	orig := s.Frame(1).Clone()
	img := ToImage(orig)
	if img.Bounds() != image.Rect(0, 0, 64, 48) {
		t.Fatalf("image bounds %v", img.Bounds())
	}
	back := FromImage(img, 64, 48)
	if p := PSNR(orig, back); p < 35 {
		t.Errorf("YCbCr→RGB→YCbCr round trip PSNR %.1f dB", p)
	}
}

func TestFromImageSmallerSourceClamps(t *testing.T) {
	img := image.NewRGBA(image.Rect(0, 0, 10, 10))
	f := FromImage(img, 32, 32) // must not panic; clamps edges
	if f.W != 32 || f.H != 32 {
		t.Fatal("geometry wrong")
	}
}

package vframe

import (
	"image"
	"image/color"
)

// ToImage converts a frame to an image.Image (BT.601 YCbCr→RGB via the
// standard library's YCbCr model), for visual inspection and PNG export.
func ToImage(f *Frame) image.Image {
	img := image.NewRGBA(image.Rect(0, 0, f.W, f.H))
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			cy := f.Y[y*f.W+x]
			cb := f.Cb[(y/2)*(f.W/2)+x/2]
			cr := f.Cr[(y/2)*(f.W/2)+x/2]
			r, g, b := color.YCbCrToRGB(cy, cb, cr)
			i := img.PixOffset(x, y)
			img.Pix[i+0] = r
			img.Pix[i+1] = g
			img.Pix[i+2] = b
			img.Pix[i+3] = 255
		}
	}
	return img
}

// FromImage converts an image to a frame (dimensions must be positive
// multiples of 16; the image is sampled at those dimensions with edge
// clamping if it is smaller). Chroma is averaged over 2×2 luma sites.
func FromImage(img image.Image, w, h int) *Frame {
	f := NewFrame(w, h)
	b := img.Bounds()
	at := func(x, y int) (uint8, uint8, uint8) {
		px := b.Min.X + clamp(x, b.Dx()-1)
		py := b.Min.Y + clamp(y, b.Dy()-1)
		r, g, bl, _ := img.At(px, py).RGBA()
		return color.RGBToYCbCr(uint8(r>>8), uint8(g>>8), uint8(bl>>8))
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			cy, _, _ := at(x, y)
			f.Y[y*w+x] = cy
		}
	}
	for y := 0; y < h/2; y++ {
		for x := 0; x < w/2; x++ {
			var sb, sr int
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					_, cb, cr := at(x*2+dx, y*2+dy)
					sb += int(cb)
					sr += int(cr)
				}
			}
			f.Cb[y*w/2+x] = uint8(sb / 4)
			f.Cr[y*w/2+x] = uint8(sr / 4)
		}
	}
	return f
}

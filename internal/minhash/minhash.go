// Package minhash implements the approximate min-wise independent hashing
// of paper Section IV. A Family of K universal hash functions
// h_i(x) = (a_i·x + b_i) mod p (p = 2⁶¹−1) maps a set of cell ids to its
// K-min-hash Sketch: the per-function minimum hash values. The fraction of
// equal positions between two sketches is an unbiased estimator of the
// Jaccard similarity of the underlying sets, and sketches of set unions
// are the element-wise minima of the operand sketches (Property 1), which
// is what makes bottom-up multi-length candidate-sequence computation work.
package minhash

import (
	"fmt"
	"math/bits"
)

// mersennePrime is 2⁶¹−1, the modulus of the universal hash family.
const mersennePrime = (1 << 61) - 1

// Empty is the sketch value of an empty set at every position.
const Empty = ^uint64(0)

// Family is a set of K fixed, independently seeded hash functions. It is
// immutable after construction and safe for concurrent use.
type Family struct {
	a, b []uint64
	k    int
}

// NewFamily draws K hash functions deterministically from seed. K must be
// positive. Multipliers are drawn from [1, p−1] and offsets from [0, p−1].
func NewFamily(k int, seed int64) (*Family, error) {
	if k <= 0 {
		return nil, fmt.Errorf("minhash: K=%d must be positive", k)
	}
	f := &Family{a: make([]uint64, k), b: make([]uint64, k), k: k}
	state := uint64(seed) ^ 0x6a09e667f3bcc908
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := 0; i < k; i++ {
		f.a[i] = next()%(mersennePrime-1) + 1 // in [1, p−1]
		f.b[i] = next() % mersennePrime       // in [0, p−1]
	}
	return f, nil
}

// K returns the number of hash functions.
func (f *Family) K() int { return f.k }

// premix scrambles the input with a SplitMix64 finaliser before the linear
// map. A bare 2-universal hash is a visibly biased approximation of
// min-wise independence on structured inputs (consecutive cell ids, small
// multiples); mixing first makes the family behave like the approximate
// min-wise families of Indyk / Cohen et al. that the paper builds on.
func premix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return (x ^ (x >> 31)) % mersennePrime
}

// Hash evaluates the i-th function at x.
func (f *Family) Hash(i int, x uint64) uint64 {
	return mulAddMod(f.a[i], premix(x), f.b[i])
}

// mulAddMod computes (a·x + b) mod 2⁶¹−1 using 128-bit intermediate
// arithmetic and Mersenne reduction.
func mulAddMod(a, x, b uint64) uint64 {
	hi, lo := bits.Mul64(a, x)
	// Reduce the 128-bit product mod 2⁶¹−1: value = hi·2⁶⁴ + lo.
	// 2⁶⁴ ≡ 2³ (mod 2⁶¹−1), so value ≡ hi·8 + lo. Split lo itself.
	sum := (lo & mersennePrime) + (lo >> 61) + hi<<3&mersennePrime + hi>>58 + b
	for sum >= mersennePrime {
		sum = (sum & mersennePrime) + (sum >> 61)
		if sum == mersennePrime {
			sum = 0
		}
	}
	return sum
}

// Sketch is a K-vector of minimum hash values. Positions of an empty
// sketch hold Empty.
type Sketch []uint64

// NewSketch returns an empty sketch for the family.
func (f *Family) NewSketch() Sketch {
	s := make(Sketch, f.k)
	for i := range s {
		s[i] = Empty
	}
	return s
}

// Add folds one element into the sketch.
func (f *Family) Add(s Sketch, x uint64) {
	if len(s) != f.k {
		panic("minhash: sketch length mismatch")
	}
	xm := premix(x)
	for i := 0; i < f.k; i++ {
		h := mulAddMod(f.a[i], xm, f.b[i])
		if h < s[i] {
			s[i] = h
		}
	}
}

// SketchSet builds the sketch of a set of elements.
func (f *Family) SketchSet(ids []uint64) Sketch {
	s := f.NewSketch()
	for _, x := range ids {
		f.Add(s, x)
	}
	return s
}

// Clone returns an independent copy of s.
func (s Sketch) Clone() Sketch { return append(Sketch(nil), s...) }

// IsEmpty reports whether no element has been added.
func (s Sketch) IsEmpty() bool {
	for _, v := range s {
		if v != Empty {
			return false
		}
	}
	return true
}

// Combine folds src into dst position-wise (dst = min(dst, src)): the
// sketch of the union of the underlying sets (Property 1). Lengths must
// match.
func Combine(dst, src Sketch) {
	if len(dst) != len(src) {
		panic("minhash: Combine length mismatch")
	}
	for i, v := range src {
		if v < dst[i] {
			dst[i] = v
		}
	}
}

// Combined returns the union sketch of a and b without mutating either.
func Combined(a, b Sketch) Sketch {
	out := a.Clone()
	Combine(out, b)
	return out
}

// Similarity estimates the Jaccard similarity of the sets underlying a and
// b as the fraction of equal positions. Two positions that are both Empty
// count as equal, so the similarity of two empty sketches is 1; callers
// should not compare empty sketches.
func Similarity(a, b Sketch) float64 {
	if len(a) != len(b) {
		panic("minhash: Similarity length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	eq := 0
	for i, v := range a {
		if v == b[i] {
			eq++
		}
	}
	return float64(eq) / float64(len(a))
}

// CompareCounts returns the number of positions where cand equals q and
// where cand is below q — the quantities Lemma 1 (similarity) and Lemma 2
// (pruning) need when working on raw sketches.
func CompareCounts(cand, q Sketch) (equal, less int) {
	if len(cand) != len(q) {
		panic("minhash: CompareCounts length mismatch")
	}
	for i, v := range cand {
		switch {
		case v == q[i]:
			equal++
		case v < q[i]:
			less++
		}
	}
	return equal, less
}

// EqualCount returns the number of equal positions between a and b.
func EqualCount(a, b Sketch) int {
	if len(a) != len(b) {
		panic("minhash: EqualCount length mismatch")
	}
	eq := 0
	for i, v := range a {
		if v == b[i] {
			eq++
		}
	}
	return eq
}

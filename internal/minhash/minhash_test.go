package minhash

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vdsms/internal/partition"
)

func TestNewFamilyValidation(t *testing.T) {
	if _, err := NewFamily(0, 1); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := NewFamily(-5, 1); err == nil {
		t.Error("K<0 accepted")
	}
	f, err := NewFamily(16, 1)
	if err != nil || f.K() != 16 {
		t.Fatalf("NewFamily(16) = %v, %v", f, err)
	}
}

func TestFamilyDeterministic(t *testing.T) {
	a, _ := NewFamily(8, 42)
	b, _ := NewFamily(8, 42)
	for i := 0; i < 8; i++ {
		if a.Hash(i, 12345) != b.Hash(i, 12345) {
			t.Fatal("same seed produced different hash functions")
		}
	}
	c, _ := NewFamily(8, 43)
	same := 0
	for i := 0; i < 8; i++ {
		if a.Hash(i, 12345) == c.Hash(i, 12345) {
			same++
		}
	}
	if same == 8 {
		t.Error("different seeds produced identical families")
	}
}

func TestHashInRange(t *testing.T) {
	f, _ := NewFamily(32, 7)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 1000; trial++ {
		i := rng.Intn(32)
		x := rng.Uint64()
		h := f.Hash(i, x)
		if h >= mersennePrime {
			t.Fatalf("hash %d out of field", h)
		}
	}
}

func TestMulAddModAgainstBigIntSemantics(t *testing.T) {
	// Cross-check the Mersenne reduction against naive modular arithmetic
	// on values small enough for direct computation, plus edge values.
	cases := []struct{ a, x, b uint64 }{
		{1, 0, 0},
		{1, 1, 0},
		{mersennePrime - 1, mersennePrime - 1, mersennePrime - 1},
		{123456789, 987654321, 555},
		{1 << 60, 1 << 60, 1 << 60},
	}
	for _, c := range cases {
		got := mulAddMod(c.a, c.x%mersennePrime, c.b)
		want := naiveMulAddMod(c.a, c.x%mersennePrime, c.b)
		if got != want {
			t.Errorf("mulAddMod(%d,%d,%d) = %d, want %d", c.a, c.x, c.b, got, want)
		}
	}
}

// naiveMulAddMod computes (a·x+b) mod p by schoolbook double-and-add,
// avoiding overflow without 128-bit tricks.
func naiveMulAddMod(a, x, b uint64) uint64 {
	var acc uint64
	addMod := func(u, v uint64) uint64 {
		u %= mersennePrime
		v %= mersennePrime
		if u >= mersennePrime-v {
			return u - (mersennePrime - v)
		}
		return u + v
	}
	for x > 0 {
		if x&1 == 1 {
			acc = addMod(acc, a)
		}
		a = addMod(a, a)
		x >>= 1
	}
	return addMod(acc, b)
}

func TestPropertyMulAddMod(t *testing.T) {
	f := func(a, x, b uint64) bool {
		a, x, b = a%mersennePrime, x%mersennePrime, b%mersennePrime
		if a == 0 {
			a = 1
		}
		return mulAddMod(a, x, b) == naiveMulAddMod(a, x, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSketchEmpty(t *testing.T) {
	f, _ := NewFamily(8, 1)
	s := f.NewSketch()
	if !s.IsEmpty() {
		t.Error("fresh sketch not empty")
	}
	f.Add(s, 99)
	if s.IsEmpty() {
		t.Error("sketch empty after Add")
	}
}

func TestSketchOrderInvariance(t *testing.T) {
	f, _ := NewFamily(64, 2)
	ids := []uint64{5, 17, 203, 4096, 77777}
	a := f.SketchSet(ids)
	rev := []uint64{77777, 4096, 203, 17, 5}
	b := f.SketchSet(rev)
	if Similarity(a, b) != 1 {
		t.Error("sketch depends on insertion order")
	}
}

func TestSketchDuplicatesIgnored(t *testing.T) {
	f, _ := NewFamily(64, 3)
	a := f.SketchSet([]uint64{1, 2, 3})
	b := f.SketchSet([]uint64{1, 1, 2, 2, 3, 3, 3})
	if Similarity(a, b) != 1 {
		t.Error("duplicate elements changed the sketch")
	}
}

func TestCombineIsUnionSketch(t *testing.T) {
	f, _ := NewFamily(128, 4)
	setA := []uint64{1, 2, 3, 4, 5}
	setB := []uint64{4, 5, 6, 7, 8}
	union := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	sa, sb := f.SketchSet(setA), f.SketchSet(setB)
	comb := Combined(sa, sb)
	direct := f.SketchSet(union)
	if Similarity(comb, direct) != 1 {
		t.Error("Property 1 violated: combined sketch != union sketch")
	}
}

func TestCombineAssociativeCommutative(t *testing.T) {
	f, _ := NewFamily(64, 5)
	a := f.SketchSet([]uint64{1, 2})
	b := f.SketchSet([]uint64{3, 4})
	c := f.SketchSet([]uint64{5, 6})
	ab := Combined(a, b)
	abc1 := Combined(ab, c)
	bc := Combined(b, c)
	abc2 := Combined(a, bc)
	cba := Combined(Combined(c, b), a)
	if Similarity(abc1, abc2) != 1 || Similarity(abc1, cba) != 1 {
		t.Error("Combine not associative/commutative")
	}
}

func TestSimilarityEstimatesJaccard(t *testing.T) {
	// With K=2048 the standard error is about 1/√K ≈ 0.022; a tolerance of
	// 0.1 gives a negligible flake probability.
	f, _ := NewFamily(2048, 6)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		overlap := rng.Intn(80) + 10
		onlyA := rng.Intn(50) + 10
		onlyB := rng.Intn(50) + 10
		var a, b []uint64
		next := uint64(1)
		for i := 0; i < overlap; i++ {
			a = append(a, next)
			b = append(b, next)
			next++
		}
		for i := 0; i < onlyA; i++ {
			a = append(a, next)
			next++
		}
		for i := 0; i < onlyB; i++ {
			b = append(b, next)
			next++
		}
		want := partition.Jaccard(a, b)
		got := Similarity(f.SketchSet(a), f.SketchSet(b))
		if math.Abs(got-want) > 0.1 {
			t.Errorf("trial %d: estimated %g, exact %g", trial, got, want)
		}
	}
}

func TestSimilarityDisjointNearZero(t *testing.T) {
	f, _ := NewFamily(1024, 8)
	var a, b []uint64
	for i := uint64(0); i < 100; i++ {
		a = append(a, i)
		b = append(b, i+1000)
	}
	if got := Similarity(f.SketchSet(a), f.SketchSet(b)); got > 0.05 {
		t.Errorf("disjoint sets estimated similarity %g", got)
	}
}

func TestMinWiseUniformity(t *testing.T) {
	// For min-wise independent permutations every element of a set is the
	// minimiser with equal probability 1/|X| (Theorem 1). Check empirically
	// across many hash functions.
	const setSize = 10
	const k = 4000
	f, _ := NewFamily(k, 9)
	ids := make([]uint64, setSize)
	for i := range ids {
		ids[i] = uint64(i * 7919) // arbitrary spread
	}
	counts := make(map[uint64]int)
	for i := 0; i < k; i++ {
		bestID, best := uint64(0), Empty
		for _, x := range ids {
			if h := f.Hash(i, x); h < best {
				best, bestID = h, x
			}
		}
		counts[bestID]++
	}
	want := float64(k) / setSize
	for _, x := range ids {
		got := float64(counts[x])
		if math.Abs(got-want) > 4*math.Sqrt(want) {
			t.Errorf("element %d minimises %g times, want ≈%g", x, got, want)
		}
	}
}

func TestEqualCount(t *testing.T) {
	f, _ := NewFamily(256, 10)
	a := f.SketchSet([]uint64{1, 2, 3})
	b := a.Clone()
	if EqualCount(a, b) != 256 {
		t.Error("EqualCount of identical sketches != K")
	}
	b[0] = b[0] + 1
	if EqualCount(a, b) != 255 {
		t.Error("EqualCount after one perturbation != K-1")
	}
}

func TestCloneIndependence(t *testing.T) {
	f, _ := NewFamily(8, 11)
	a := f.SketchSet([]uint64{1})
	b := a.Clone()
	b[3] = 0
	if a[3] == 0 {
		t.Error("Clone shares storage")
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	f8, _ := NewFamily(8, 1)
	f16, _ := NewFamily(16, 1)
	a, b := f8.NewSketch(), f16.NewSketch()
	for name, fn := range map[string]func(){
		"Combine":    func() { Combine(a, b) },
		"Similarity": func() { Similarity(a, b) },
		"EqualCount": func() { EqualCount(a, b) },
		"Add":        func() { f16.Add(a, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched lengths did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkAdd(b *testing.B) {
	f, _ := NewFamily(800, 1)
	s := f.NewSketch()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Add(s, uint64(i))
	}
}

func BenchmarkSimilarityK800(b *testing.B) {
	f, _ := NewFamily(800, 1)
	x := f.SketchSet([]uint64{1, 2, 3, 4, 5})
	y := f.SketchSet([]uint64{3, 4, 5, 6, 7})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Similarity(x, y)
	}
}

func BenchmarkCombineK800(b *testing.B) {
	f, _ := NewFamily(800, 1)
	x := f.SketchSet([]uint64{1, 2, 3, 4, 5})
	y := f.SketchSet([]uint64{3, 4, 5, 6, 7})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Combine(x, y)
	}
}

// TestEstimatorErrorShrinksWithK: the min-hash similarity estimator's
// standard error is ~sqrt(J(1-J)/K); quadrupling K should roughly halve
// the observed error. Averaged over many set pairs to keep flake
// probability negligible.
func TestEstimatorErrorShrinksWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	mkPair := func() (a, b []uint64, j float64) {
		shared := rng.Intn(40) + 20
		only := rng.Intn(30) + 10
		next := uint64(rng.Intn(1 << 30))
		for i := 0; i < shared; i++ {
			a = append(a, next)
			b = append(b, next)
			next++
		}
		for i := 0; i < only; i++ {
			a = append(a, next)
			b = append(b, next+1_000_000)
			next++
		}
		return a, b, float64(shared) / float64(shared+2*only)
	}
	meanAbsErr := func(k int) float64 {
		var sum float64
		const pairs = 40
		for p := 0; p < pairs; p++ {
			fam, _ := NewFamily(k, int64(1000+p))
			a, b, j := mkPair()
			est := Similarity(fam.SketchSet(a), fam.SketchSet(b))
			d := est - j
			if d < 0 {
				d = -d
			}
			sum += d
		}
		return sum / pairs
	}
	e64 := meanAbsErr(64)
	e1024 := meanAbsErr(1024)
	// sqrt(1024/64) = 4: expect ~4× smaller error; require at least 2×.
	if e1024*2 > e64 {
		t.Errorf("error did not shrink with K: K=64 → %.4f, K=1024 → %.4f", e64, e1024)
	}
}

package benchkit

import (
	"encoding/json"
	"fmt"
	"os"
)

// ReadReportFile loads a -bench-json report from disk.
func ReadReportFile(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return rep, fmt.Errorf("%s: no benchmark results", path)
	}
	return rep, nil
}

// Comparison is the verdict for one benchmark present in both reports.
type Comparison struct {
	Name      string
	OldWPS    float64 // baseline windows/sec
	NewWPS    float64
	OldAllocs int64
	NewAllocs int64
	Regressed bool
	Reason    string
	OnlyInOne bool // benchmark missing from one side; informational
}

// String renders a one-line verdict for gate output.
func (c Comparison) String() string {
	if c.OnlyInOne {
		return fmt.Sprintf("%-26s SKIP  (%s)", c.Name, c.Reason)
	}
	delta := 0.0
	if c.OldWPS > 0 {
		delta = (c.NewWPS - c.OldWPS) / c.OldWPS * 100
	}
	verdict := "ok"
	if c.Regressed {
		verdict = "FAIL " + c.Reason
	}
	return fmt.Sprintf("%-26s %10.1f -> %10.1f windows/s (%+.1f%%)  allocs %d -> %d  %s",
		c.Name, c.OldWPS, c.NewWPS, delta, c.OldAllocs, c.NewAllocs, verdict)
}

// allocSlack is the absolute allocs/op growth always permitted before the
// fractional tolerance applies, so near-zero baselines (e.g. 2 allocs/op)
// don't fail on a one-allocation jitter.
const allocSlack = 8

// CompareReports gates new against old: a benchmark regresses when its
// windows/sec drops below old*(1-tol) or its allocs/op grows beyond
// old*(1+tol)+allocSlack. Benchmarks present in only one report are
// reported as skipped, never failed — suite composition may change
// between PRs.
func CompareReports(old, new_ Report, tol float64) []Comparison {
	oldBy := make(map[string]Result, len(old.Results))
	for _, r := range old.Results {
		oldBy[r.Name] = r
	}
	seen := make(map[string]bool, len(old.Results))
	cmps := make([]Comparison, 0, len(new_.Results))
	for _, nr := range new_.Results {
		or, ok := oldBy[nr.Name]
		if !ok {
			cmps = append(cmps, Comparison{Name: nr.Name, OnlyInOne: true, Reason: "new benchmark, no baseline"})
			continue
		}
		seen[nr.Name] = true
		c := Comparison{
			Name:   nr.Name,
			OldWPS: or.WindowsPerSec, NewWPS: nr.WindowsPerSec,
			OldAllocs: or.AllocsPerOp, NewAllocs: nr.AllocsPerOp,
		}
		if or.WindowsPerSec > 0 && nr.WindowsPerSec < or.WindowsPerSec*(1-tol) {
			c.Regressed = true
			c.Reason = fmt.Sprintf("throughput below %.0f%% of baseline", (1-tol)*100)
		}
		allocLimit := float64(or.AllocsPerOp)*(1+tol) + allocSlack
		if float64(nr.AllocsPerOp) > allocLimit {
			c.Regressed = true
			if c.Reason != "" {
				c.Reason += "; "
			}
			c.Reason += fmt.Sprintf("allocs/op %d exceeds limit %.0f", nr.AllocsPerOp, allocLimit)
		}
		cmps = append(cmps, c)
	}
	for _, or := range old.Results {
		if !seen[or.Name] {
			cmps = append(cmps, Comparison{Name: or.Name, OnlyInOne: true, Reason: "missing from candidate report"})
		}
	}
	return cmps
}

package benchkit

import (
	"math"
	"os"
	"testing"

	"vdsms/internal/perfobs"
	"vdsms/internal/telemetry"
)

// allocsPerWindow measures steady-state allocations per PushFrames window
// over the shared workload, optionally with a span collector attached at
// sampling cadence `every` (-1 = no collector at all).
func allocsPerWindow(t *testing.T, every int) float64 {
	t.Helper()
	eng, wins, err := WindowWorkload(0)
	if err != nil {
		t.Fatal(err)
	}
	if every >= 0 {
		col := perfobs.NewCollector(perfobs.DefaultRing)
		col.SetSampleEvery(int64(every))
		eng.SetPerf(col, "bench")
	}
	i := 0
	return testing.AllocsPerRun(200, func() {
		eng.PushFrames(wins[i%len(wins)])
		i++
	})
}

// TestZeroSamplingSpanCaptureAddsNoAllocs pins the hot-path contract: a
// collector attached with sampling off must add exactly zero allocations
// per window compared to no collector — the disabled path is one atomic
// load.
func TestZeroSamplingSpanCaptureAddsNoAllocs(t *testing.T) {
	prev := telemetry.SetEnabled(false)
	defer telemetry.SetEnabled(prev)
	base := allocsPerWindow(t, -1)
	armed := allocsPerWindow(t, 0)
	if d := armed - base; math.Abs(d) > 0.01 {
		t.Errorf("zero-sampling span capture adds %.2f allocs/window (base %.1f, armed %.1f), want 0",
			d, base, armed)
	}
}

// TestZeroSamplingOverheadGate is the perf-smoke CI gate: the window
// kernel with a zero-sampling collector attached must run within 2% of
// the telemetry-off baseline. Wall-clock gates are noisy, so the check
// passes if any of three attempts lands inside the envelope; it is only
// run when PERF_SMOKE=1 (the `make perf-smoke` target).
func TestZeroSamplingOverheadGate(t *testing.T) {
	if os.Getenv("PERF_SMOKE") == "" {
		t.Skip("set PERF_SMOKE=1 to run the overhead gate")
	}
	const tolerance = 0.02
	var worst float64
	for attempt := 0; attempt < 3; attempt++ {
		base, err := BenchWindow("base", 0, false)
		if err != nil {
			t.Fatal(err)
		}
		armed, err := BenchWindowSpans("spans-off", 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if armed.AllocsPerOp > base.AllocsPerOp {
			t.Fatalf("zero-sampling path allocates more: %d vs %d allocs/op",
				armed.AllocsPerOp, base.AllocsPerOp)
		}
		overhead := armed.NsPerOp/base.NsPerOp - 1
		t.Logf("attempt %d: baseline %.0f ns/op, zero-sampling %.0f ns/op, overhead %+.2f%%",
			attempt, base.NsPerOp, armed.NsPerOp, overhead*100)
		if overhead <= tolerance {
			return
		}
		if overhead > worst {
			worst = overhead
		}
	}
	t.Errorf("zero-sampling overhead %.2f%% above the %.0f%% gate in all attempts",
		worst*100, tolerance*100)
}

// TestSpanLadderReportsStageBreakdown: the 100%-sampling bench variant
// must carry a span-derived per-stage mean breakdown including the
// window-total stage.
func TestSpanLadderReportsStageBreakdown(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark")
	}
	r, err := BenchWindowSpans("spans-all", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.SpanEvery != 1 {
		t.Errorf("SpanEvery = %d", r.SpanEvery)
	}
	if len(r.StageNS) == 0 {
		t.Fatal("no stage breakdown on a fully sampled run")
	}
	if r.StageNS["window_total"] <= 0 {
		t.Errorf("window_total mean = %v", r.StageNS["window_total"])
	}
	if r.StageNS["probe"] <= 0 {
		t.Errorf("probe mean = %v; probe should dominate this workload", r.StageNS["probe"])
	}
}

// Package benchkit holds the window-matching benchmark workload and a
// programmatic runner, shared between the repo's `go test -bench` suite
// and vcdbench's -bench-json mode so both measure exactly the same thing.
package benchkit

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"vdsms/internal/core"
	"vdsms/internal/perfobs"
	"vdsms/internal/telemetry"
)

// WindowWorkload builds the parallel-kernel benchmark fixture: a Table I
// default engine (K=800, δ=0.7, λ=2, w=10 key frames, Bit/Sequential/index)
// with 200 queries drawn from one shared alphabet, so every window's probe
// touches many queries and the per-window matching cost dominates. Returns
// the engine, prefilled to steady state, and a pool of pre-built basic
// windows to cycle through.
func WindowWorkload(workers int) (*core.Engine, [][]uint64, error) {
	cfg := core.Config{
		K: 800, Seed: 9, Delta: 0.7, Lambda: 2, WindowFrames: 10,
		Method: core.Bit, Order: core.Sequential, UseIndex: true,
		Workers: workers,
	}
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(1234))
	alphabet := 600
	for id := 1; id <= 200; id++ {
		ids := make([]uint64, 40+rng.Intn(40))
		for i := range ids {
			ids[i] = uint64(rng.Intn(alphabet))
		}
		if err := eng.AddQuery(id, ids); err != nil {
			return nil, nil, err
		}
	}
	wins := make([][]uint64, 64)
	for w := range wins {
		win := make([]uint64, cfg.WindowFrames)
		for i := range win {
			win[i] = uint64(rng.Intn(alphabet))
		}
		wins[w] = win
	}
	// Prefill so the candidate list is in steady state before timing.
	for i := 0; i < 32; i++ {
		eng.PushFrames(wins[i%len(wins)])
	}
	return eng, wins, nil
}

// Result is one benchmark measurement.
type Result struct {
	Name          string  `json:"name"`
	Workers       int     `json:"workers"`
	Telemetry     bool    `json:"telemetry"`
	NsPerOp       float64 `json:"ns_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	WindowsPerSec float64 `json:"windows_per_sec"`
	// SpanEvery is the span sampling cadence a perf-span variant ran at
	// (1 = every window, 0 = collector attached but sampling off).
	SpanEvery int `json:"span_every,omitempty"`
	// StageNS is the span-derived mean duration per pipeline stage, in
	// nanoseconds — present only when the variant sampled spans.
	StageNS map[string]float64 `json:"stage_ns,omitempty"`
}

// Report is the vcdbench -bench-json document.
type Report struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	CPUs      int      `json:"cpus"`
	Results   []Result `json:"results"`
}

// BenchWindow measures steady-state basic-window processing — probe plus
// candidate evaluation — at the given worker count, with stage telemetry on
// or off. One op is one full basic window through PushFrames.
func BenchWindow(name string, workers int, telemetryOn bool) (Result, error) {
	eng, wins, err := WindowWorkload(workers)
	if err != nil {
		return Result{}, err
	}
	prev := telemetry.SetEnabled(telemetryOn)
	defer telemetry.SetEnabled(prev)
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.PushFrames(wins[i%len(wins)])
		}
	})
	ns := float64(r.NsPerOp())
	res := Result{
		Name: name, Workers: workers, Telemetry: telemetryOn,
		NsPerOp:     ns,
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if ns > 0 {
		res.WindowsPerSec = 1e9 / ns
	}
	return res, nil
}

// BenchWindowSpans measures the same steady-state window workload with a
// perf-span collector attached at the given sampling cadence (0 = attached
// but off, the zero-overhead contract; 1 = every window) and telemetry
// disabled, isolating the span machinery's own cost. The result carries
// the span-derived per-stage mean breakdown when anything was sampled.
func BenchWindowSpans(name string, workers, every int) (Result, error) {
	eng, wins, err := WindowWorkload(workers)
	if err != nil {
		return Result{}, err
	}
	col := perfobs.NewCollector(perfobs.DefaultRing)
	col.SetSampleEvery(int64(every))
	eng.SetPerf(col, "bench")
	prev := telemetry.SetEnabled(false)
	defer telemetry.SetEnabled(prev)
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.PushFrames(wins[i%len(wins)])
		}
	})
	ns := float64(r.NsPerOp())
	res := Result{
		Name: name, Workers: workers,
		NsPerOp:     ns,
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		SpanEvery:   every,
	}
	if ns > 0 {
		res.WindowsPerSec = 1e9 / ns
	}
	agg := col.Aggregate()
	if agg.Windows > 0 {
		res.StageNS = make(map[string]float64)
		for st := perfobs.Stage(0); st < perfobs.NumStages; st++ {
			if agg.Stages[st].Count > 0 {
				res.StageNS[st.String()] = agg.MeanNS(st)
			}
		}
	}
	return res, nil
}

// RunWindowBenchmarks runs the standard vcdbench -bench-json suite: the
// serial kernel with telemetry on and off (the instrumentation-overhead
// pair EXPERIMENTS.md reports), the parallel kernel at 2/4/8 shards, and
// the span-sampling ladder (collector attached at 0% / 1% / 100%) whose
// 100% rung carries the per-stage breakdown.
func RunWindowBenchmarks(progress func(Result)) ([]Result, error) {
	specs := []struct {
		name      string
		workers   int
		telemetry bool
	}{
		{"WindowSerial", 0, true},
		{"WindowSerialNoTelemetry", 0, false},
		{"WindowParallel2", 2, true},
		{"WindowParallel4", 4, true},
		{"WindowParallel8", 8, true},
	}
	results := make([]Result, 0, len(specs)+3)
	for _, s := range specs {
		r, err := BenchWindow(s.name, s.workers, s.telemetry)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s: %w", s.name, err)
		}
		if progress != nil {
			progress(r)
		}
		results = append(results, r)
	}
	for _, s := range []struct {
		name  string
		every int
	}{
		{"WindowSerialSpansOff", 0},
		{"WindowSerialSpans1pct", 100},
		{"WindowSerialSpansAll", 1},
	} {
		r, err := BenchWindowSpans(s.name, 0, s.every)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s: %w", s.name, err)
		}
		if progress != nil {
			progress(r)
		}
		results = append(results, r)
	}
	return results, nil
}

// WriteReport wraps results with the platform stamp and writes them as
// indented JSON.
func WriteReport(w io.Writer, results []Result) error {
	rep := Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Results:   results,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

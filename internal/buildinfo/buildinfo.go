// Package buildinfo identifies the running binary: version, go toolchain
// and VCS commit, surfaced uniformly as the -version flag of every cmd/*
// binary and as the vcd_build_info gauge on /metrics (the Prometheus
// convention: a constant-1 series whose labels carry the identity, so
// dashboards can join any other series against the deployed version).
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"vdsms/internal/telemetry"
)

// Version is the release identifier, overridable at link time:
//
//	go build -ldflags "-X vdsms/internal/buildinfo.Version=v1.2.3"
var Version = "v0.5.0-dev"

var (
	once   sync.Once
	commit string
)

// Commit returns the VCS revision the binary was built from (12 hex chars,
// "-dirty" suffixed when the tree was modified), or "unknown" outside a
// stamped module build.
func Commit() string {
	once.Do(func() {
		commit = "unknown"
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		var rev string
		dirty := false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev == "" {
			return
		}
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if dirty {
			rev += "-dirty"
		}
		commit = rev
	})
	return commit
}

// String renders the identity line printed by -version:
//
//	vcdmon v0.5.0-dev (commit 1a2b3c4d5e6f, go1.22.0, linux/amd64)
func String(tool string) string {
	return fmt.Sprintf("%s %s (commit %s, %s, %s/%s)",
		tool, Version, Commit(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
}

// Metric publishes the vcd_build_info gauge (value 1, identity in labels)
// into the process-wide registry. Idempotent — the registry deduplicates by
// name+labels — and called by every cmd/* binary at startup so /metrics
// always carries the deployed version.
func Metric() {
	telemetry.Default.Gauge("vcd_build_info",
		"Build identity of the running binary; constant 1, identity in the labels.",
		telemetry.L("version", Version),
		telemetry.L("commit", Commit()),
		telemetry.L("goversion", runtime.Version()),
	).Set(1)
}

package workload

// Position is a reported detection: query QueryID matched at stream key
// frame P (the paper records "the position where a sequence matches").
type Position struct {
	QueryID int
	P       int
}

// Eval holds precision/recall per the paper's Section VI rule: a reported
// position p for query Q is correct iff Q.begin + w ≤ p ≤ Q.end + w for
// some ground-truth insertion of Q, where w is the basic window size.
type Eval struct {
	Precision, Recall  float64
	Correct, Reported  int
	Detected, Inserted int
}

// Evaluate scores reported positions against ground truth with basic
// window size w (in key frames).
func Evaluate(reports []Position, truth []Insertion, w int) Eval {
	byQuery := make(map[int][]Insertion)
	for _, ins := range truth {
		byQuery[ins.QueryID] = append(byQuery[ins.QueryID], ins)
	}
	detected := make(map[Insertion]bool)
	ev := Eval{Reported: len(reports), Inserted: len(truth)}
	for _, r := range reports {
		for _, ins := range byQuery[r.QueryID] {
			if ins.Begin+w <= r.P && r.P <= ins.End+w {
				ev.Correct++
				detected[ins] = true
				break
			}
		}
	}
	ev.Detected = len(detected)
	if ev.Reported > 0 {
		ev.Precision = float64(ev.Correct) / float64(ev.Reported)
	}
	if ev.Inserted > 0 {
		ev.Recall = float64(ev.Detected) / float64(ev.Inserted)
	}
	return ev
}

package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Position is a reported detection: query QueryID matched at stream key
// frame P (the paper records "the position where a sequence matches").
type Position struct {
	QueryID int
	P       int
}

// Eval holds precision/recall per the paper's Section VI rule: a reported
// position p for query Q is correct iff Q.begin + w ≤ p ≤ Q.end + w for
// some ground-truth insertion of Q, where w is the basic window size.
// LocErrSum accumulates, over correct reports, the distance |p − Q.end| in
// key frames between the reported position and the true end of the matched
// insertion — how far from the copy's boundary the detection landed.
type Eval struct {
	Precision, Recall  float64
	Correct, Reported  int
	Detected, Inserted int
	LocErrSum          float64
}

// MeanLocErr is the mean localization error in key frames over correct
// reports (0 when there are none).
func (e Eval) MeanLocErr() float64 {
	if e.Correct == 0 {
		return 0
	}
	return e.LocErrSum / float64(e.Correct)
}

// Evaluate scores reported positions against ground truth with basic
// window size w (in key frames).
func Evaluate(reports []Position, truth []Insertion, w int) Eval {
	byQuery := make(map[int][]Insertion)
	for _, ins := range truth {
		byQuery[ins.QueryID] = append(byQuery[ins.QueryID], ins)
	}
	detected := make(map[Insertion]bool)
	ev := Eval{Reported: len(reports), Inserted: len(truth)}
	for _, r := range reports {
		for _, ins := range byQuery[r.QueryID] {
			if ins.Begin+w <= r.P && r.P <= ins.End+w {
				ev.Correct++
				ev.LocErrSum += math.Abs(float64(r.P - ins.End))
				detected[ins] = true
				break
			}
		}
	}
	ev.Detected = len(detected)
	if ev.Reported > 0 {
		ev.Precision = float64(ev.Correct) / float64(ev.Reported)
	}
	if ev.Inserted > 0 {
		ev.Recall = float64(ev.Detected) / float64(ev.Inserted)
	}
	return ev
}

// FamilyResult is the evaluation restricted to one attack family.
type FamilyResult struct {
	Family string
	Eval
}

// UnattributedFamily labels reports whose query id has no ground-truth
// insertion at all; they cannot belong to any attack family but still
// count as false positives.
const UnattributedFamily = "(unattributed)"

// EvaluateByFamily scores reports per attack family. Each report is
// attributed to the nearest insertion of its query id — nearest by the
// distance from the reported position to the insertion's valid detection
// interval [begin+w, end+w] — and is correct when that distance is zero
// (the same rule Evaluate applies). Per-family precision is computed over
// the reports attributed to that family; recall over the family's
// insertions. Reports for queries with no insertions land in the
// UnattributedFamily pseudo-family. Results are sorted by family name.
func EvaluateByFamily(reports []Position, meta []AttackInsertion, w int) []FamilyResult {
	byQuery := make(map[int][]AttackInsertion)
	byFamily := make(map[string]*FamilyResult)
	family := func(name string) *FamilyResult {
		fr := byFamily[name]
		if fr == nil {
			fr = &FamilyResult{Family: name}
			byFamily[name] = fr
		}
		return fr
	}
	for _, ins := range meta {
		byQuery[ins.QueryID] = append(byQuery[ins.QueryID], ins)
		family(ins.Family).Inserted++
	}
	detected := make(map[AttackInsertion]bool)
	for _, r := range reports {
		cands := byQuery[r.QueryID]
		if len(cands) == 0 {
			family(UnattributedFamily).Reported++
			continue
		}
		best, bestDist := cands[0], math.Inf(1)
		for _, ins := range cands {
			d := intervalDist(r.P, ins.Begin+w, ins.End+w)
			if d < bestDist {
				best, bestDist = ins, d
			}
		}
		fr := family(best.Family)
		fr.Reported++
		if bestDist == 0 {
			fr.Correct++
			fr.LocErrSum += math.Abs(float64(r.P - best.End))
			detected[best] = true
		}
	}
	for ins := range detected {
		family(ins.Family).Detected++
	}
	out := make([]FamilyResult, 0, len(byFamily))
	for _, fr := range byFamily {
		if fr.Reported > 0 {
			fr.Precision = float64(fr.Correct) / float64(fr.Reported)
		}
		if fr.Inserted > 0 {
			fr.Recall = float64(fr.Detected) / float64(fr.Inserted)
		}
		out = append(out, *fr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Family < out[j].Family })
	return out
}

// intervalDist is the distance from p to the closed interval [lo, hi].
func intervalDist(p, lo, hi int) float64 {
	switch {
	case p < lo:
		return float64(lo - p)
	case p > hi:
		return float64(p - hi)
	}
	return 0
}

// FamilyMetrics is one row of the machine-readable robustness report.
type FamilyMetrics struct {
	Family        string  `json:"family"`
	Precision     float64 `json:"precision"`
	Recall        float64 `json:"recall"`
	Reports       int     `json:"reports"`
	Correct       int     `json:"correct"`
	Inserted      int     `json:"inserted"`
	Detected      int     `json:"detected"`
	MeanLocErrSec float64 `json:"mean_loc_err_sec"`
}

// FamilyReport is the machine-readable per-attack-family evaluation
// summary emitted by vcdeval and the robustness suite. The schema string
// is versioned; dashboard consumers pin it (see the vcdeval golden tests).
type FamilyReport struct {
	Schema    string          `json:"schema"`
	WindowSec float64         `json:"window_sec"`
	KeyFPS    float64         `json:"key_fps"`
	Overall   FamilyMetrics   `json:"overall"`
	Families  []FamilyMetrics `json:"families"`
}

// ReportSchema identifies the current FamilyReport wire format.
const ReportSchema = "vcdeval/v1"

// NewFamilyReport assembles the report from an overall evaluation and the
// per-family breakdown. Rates are rounded to 6 decimals and localization
// errors converted to seconds so the serialized forms are stable.
func NewFamilyReport(overall Eval, fams []FamilyResult, windowSec, keyFPS float64) FamilyReport {
	rep := FamilyReport{
		Schema:    ReportSchema,
		WindowSec: windowSec,
		KeyFPS:    keyFPS,
		Overall:   metrics("overall", overall, keyFPS),
	}
	for _, fr := range fams {
		rep.Families = append(rep.Families, metrics(fr.Family, fr.Eval, keyFPS))
	}
	return rep
}

func metrics(name string, e Eval, keyFPS float64) FamilyMetrics {
	locSec := 0.0
	if keyFPS > 0 {
		locSec = e.MeanLocErr() / keyFPS
	}
	return FamilyMetrics{
		Family:        name,
		Precision:     round6(e.Precision),
		Recall:        round6(e.Recall),
		Reports:       e.Reported,
		Correct:       e.Correct,
		Inserted:      e.Inserted,
		Detected:      e.Detected,
		MeanLocErrSec: round6(locSec),
	}
}

func round6(v float64) float64 { return math.Round(v*1e6) / 1e6 }

// WriteJSON renders the report as indented JSON with a trailing newline.
func (r FamilyReport) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", b)
	return err
}

// WriteCSV renders the report as CSV: a fixed header, the overall row,
// then one row per family.
func (r FamilyReport) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "family,precision,recall,reports,correct,inserted,detected,mean_loc_err_sec"); err != nil {
		return err
	}
	rows := append([]FamilyMetrics{r.Overall}, r.Families...)
	for _, m := range rows {
		if _, err := fmt.Fprintf(w, "%s,%.4f,%.4f,%d,%d,%d,%d,%.4f\n",
			m.Family, m.Precision, m.Recall, m.Reports, m.Correct, m.Inserted, m.Detected, m.MeanLocErrSec); err != nil {
			return err
		}
	}
	return nil
}

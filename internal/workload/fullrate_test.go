package workload

import (
	"bytes"
	"testing"

	"vdsms/internal/feature"
	"vdsms/internal/mpeg"
	"vdsms/internal/partition"
	"vdsms/internal/vframe"
)

// TestKeyFrameShortcutMatchesFullRatePipeline validates the workload's
// central shortcut: generating and encoding only key frames (KeyFPS, GOP 1)
// yields the same fingerprint stream as encoding the full-rate video
// (30 fps, GOP 15) and partially decoding its I-frames. The synthetic
// generator specifies all temporal rates per second, so frame content is a
// function of time, not frame index — this test pins that contract.
func TestKeyFrameShortcutMatchesFullRatePipeline(t *testing.T) {
	const (
		seconds = 20
		keyFPS  = 2.0
		fullFPS = 30.0
		gop     = 15 // fullFPS/gop == keyFPS
	)
	mkSynth := func(fps float64) vframe.Source {
		return vframe.NewSynth(vframe.SynthConfig{
			W: 96, H: 80, FPS: fps, NumFrames: int(seconds * fps), Seed: 31,
		})
	}

	ex, err := feature.NewExtractor(feature.Config{D: 5})
	if err != nil {
		t.Fatal(err)
	}
	pt, err := partition.New(4, 5, partition.GridPyramid)
	if err != nil {
		t.Fatal(err)
	}
	ids := func(src vframe.Source, gop int) []uint64 {
		var buf bytes.Buffer
		if _, err := mpeg.EncodeSource(&buf, src, 78, gop); err != nil {
			t.Fatal(err)
		}
		dcs, _, err := mpeg.ReadAllDC(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]uint64, len(dcs))
		for i, d := range dcs {
			out[i] = pt.Cell(ex.Vector(d))
		}
		return out
	}

	fast := ids(mkSynth(keyFPS), 1)    // the experiments' shortcut
	full := ids(mkSynth(fullFPS), gop) // the real broadcast pipeline

	if len(fast) != len(full) {
		t.Fatalf("key-frame counts differ: shortcut %d, full rate %d", len(fast), len(full))
	}
	// P-frame quantisation drift can nudge an occasional id across a cell
	// boundary; the sequences must agree almost everywhere.
	same := 0
	for i := range fast {
		if fast[i] == full[i] {
			same++
		}
	}
	if frac := float64(same) / float64(len(fast)); frac < 0.85 {
		t.Errorf("only %.0f%% of key-frame ids agree between shortcut and full-rate pipeline",
			frac*100)
	}
	// And as sets (what detection actually uses), they must be nearly
	// identical.
	if j := partition.Jaccard(fast, full); j < 0.8 {
		t.Errorf("id-set Jaccard between pipelines = %.2f", j)
	}
}

package workload

import (
	"bytes"
	"testing"

	"vdsms/internal/edit"
)

func smallAttackCfg() AttackConfig {
	return AttackConfig{
		Base: Config{
			NumShorts: 3, ShortMinSec: 6, ShortMaxSec: 10,
			GapMinSec: 3, GapMaxSec: 5, Seed: 99,
		},
		Families: []string{edit.FamilyNone, edit.FamilySpeed, edit.FamilyDrop},
	}
}

func TestBuildAttackStructure(t *testing.T) {
	aw := BuildAttack(smallAttackCfg())
	wantInserts := 3 * 3 // families × shorts
	if len(aw.Truth) != wantInserts || len(aw.Meta) != wantInserts {
		t.Fatalf("got %d truth / %d meta insertions, want %d", len(aw.Truth), len(aw.Meta), wantInserts)
	}
	perFamily := map[string]int{}
	for i, m := range aw.Meta {
		if m.Insertion != aw.Truth[i] {
			t.Errorf("meta[%d] insertion %+v diverges from truth %+v", i, m.Insertion, aw.Truth[i])
		}
		if m.Preset == "" {
			t.Errorf("meta[%d] has no preset name", i)
		}
		perFamily[m.Family]++
		if m.Begin < 0 || m.End > aw.Stream.Len() || m.Begin >= m.End {
			t.Errorf("meta[%d] interval [%d, %d) outside stream of %d frames", i, m.Begin, m.End, aw.Stream.Len())
		}
		if i > 0 && m.Begin < aw.Meta[i-1].End {
			t.Errorf("insertions overlap: [%d) begins before previous end %d", m.Begin, aw.Meta[i-1].End)
		}
	}
	for _, fam := range []string{edit.FamilyNone, edit.FamilySpeed, edit.FamilyDrop} {
		if perFamily[fam] != 3 {
			t.Errorf("family %q has %d insertions, want 3", fam, perFamily[fam])
		}
	}
	if aw.Stream.FPS() != aw.Cfg.KeyFPS {
		t.Errorf("stream FPS %g, want key rate %g", aw.Stream.FPS(), aw.Cfg.KeyFPS)
	}
	if len(aw.Queries) != 3 {
		t.Errorf("%d queries, want 3", len(aw.Queries))
	}
}

func TestBuildAttackDeterministic(t *testing.T) {
	a := BuildAttack(smallAttackCfg())
	b := BuildAttack(smallAttackCfg())
	if len(a.Meta) != len(b.Meta) {
		t.Fatalf("insertion counts differ: %d vs %d", len(a.Meta), len(b.Meta))
	}
	for i := range a.Meta {
		if a.Meta[i] != b.Meta[i] {
			t.Fatalf("meta[%d] differs: %+v vs %+v", i, a.Meta[i], b.Meta[i])
		}
	}
	if a.Stream.Len() != b.Stream.Len() {
		t.Fatalf("stream lengths differ: %d vs %d", a.Stream.Len(), b.Stream.Len())
	}
	for _, i := range []int{0, a.Stream.Len() / 2, a.Stream.Len() - 1} {
		fa, fb := a.Stream.Frame(i), b.Stream.Frame(i)
		if !bytes.Equal(fa.Y, fb.Y) || !bytes.Equal(fa.Cb, fb.Cb) || !bytes.Equal(fa.Cr, fb.Cr) {
			t.Fatalf("stream frame %d differs between identical builds", i)
		}
	}
}

func TestBuildAttackDefaultFamilies(t *testing.T) {
	cfg := smallAttackCfg()
	cfg.Base.NumShorts = 2
	cfg.Families = nil
	aw := BuildAttack(cfg)
	want := 1 + len(edit.TemporalFamilies()) // "none" control + every family
	seen := map[string]bool{}
	for _, m := range aw.Meta {
		seen[m.Family] = true
	}
	if len(seen) != want {
		t.Errorf("default build covers %d families, want %d: %v", len(seen), want, seen)
	}
}

func TestAttackInsertionTruthLine(t *testing.T) {
	ins := AttackInsertion{
		Insertion: Insertion{QueryID: 4, Begin: 20, End: 41},
		Family:    "speed", Preset: "1.25x",
	}
	if got, want := ins.TruthLine(2), "4 10.00 20.50 speed 1.25x"; got != want {
		t.Errorf("truth line %q, want %q", got, want)
	}
}

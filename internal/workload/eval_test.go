package workload

import (
	"strings"
	"testing"
)

func metaFixture() []AttackInsertion {
	return []AttackInsertion{
		{Insertion{QueryID: 1, Begin: 10, End: 30}, "none", "verbatim"},
		{Insertion{QueryID: 1, Begin: 100, End: 120}, "speed", "1.25x"},
		{Insertion{QueryID: 2, Begin: 50, End: 70}, "speed", "1.5x"},
		{Insertion{QueryID: 2, Begin: 200, End: 220}, "drop", "15%"},
	}
}

func TestEvaluateByFamily(t *testing.T) {
	const w = 5
	reports := []Position{
		{1, 20},  // none: correct (10+5 ≤ 20 ≤ 35), |20−30| = 10 frames loc err
		{1, 110}, // speed: correct
		{2, 60},  // speed: correct
		{2, 300}, // nearest is drop insertion but outside window → drop false positive
		{9, 1},   // no insertions for query 9 → unattributed
	}
	fams := EvaluateByFamily(reports, metaFixture(), w)
	byName := map[string]FamilyResult{}
	for _, fr := range fams {
		byName[fr.Family] = fr
	}
	if len(fams) != 4 {
		t.Fatalf("got %d families: %+v", len(fams), fams)
	}
	none := byName["none"]
	if none.Correct != 1 || none.Reported != 1 || none.Inserted != 1 || none.Recall != 1 {
		t.Errorf("none family %+v", none)
	}
	if none.MeanLocErr() != 10 {
		t.Errorf("none loc err %g frames, want 10", none.MeanLocErr())
	}
	speed := byName["speed"]
	if speed.Correct != 2 || speed.Inserted != 2 || speed.Precision != 1 || speed.Recall != 1 {
		t.Errorf("speed family %+v", speed)
	}
	drop := byName["drop"]
	if drop.Reported != 1 || drop.Correct != 0 || drop.Precision != 0 || drop.Recall != 0 {
		t.Errorf("drop family %+v", drop)
	}
	un := byName[UnattributedFamily]
	if un.Reported != 1 || un.Inserted != 0 {
		t.Errorf("unattributed %+v", un)
	}
	// Families are sorted by name.
	for i := 1; i < len(fams); i++ {
		if fams[i-1].Family > fams[i].Family {
			t.Errorf("families not sorted: %q before %q", fams[i-1].Family, fams[i].Family)
		}
	}
}

func TestEvaluateByFamilyAttributesNearest(t *testing.T) {
	// Query 1 has two insertions of different families; a report landing in
	// neither window must count against the nearer one.
	meta := []AttackInsertion{
		{Insertion{QueryID: 1, Begin: 0, End: 10}, "none", "verbatim"},
		{Insertion{QueryID: 1, Begin: 1000, End: 1010}, "reorder", "5s"},
	}
	fams := EvaluateByFamily([]Position{{1, 900}}, meta, 2)
	for _, fr := range fams {
		switch fr.Family {
		case "reorder":
			if fr.Reported != 1 || fr.Correct != 0 {
				t.Errorf("reorder %+v, want one incorrect report", fr)
			}
		case "none":
			if fr.Reported != 0 {
				t.Errorf("none %+v, want no attributed reports", fr)
			}
		}
	}
}

func TestEvaluateLocErr(t *testing.T) {
	truth := []Insertion{{QueryID: 1, Begin: 0, End: 20}}
	ev := Evaluate([]Position{{1, 22}, {1, 25}}, truth, 5)
	if ev.Correct != 2 {
		t.Fatalf("correct %d, want 2", ev.Correct)
	}
	if got := ev.MeanLocErr(); got != 3.5 { // (|22−20| + |25−20|) / 2
		t.Errorf("mean loc err %g frames, want 3.5", got)
	}
	if Evaluate(nil, truth, 5).MeanLocErr() != 0 {
		t.Error("loc err with no correct reports should be 0")
	}
}

func TestFamilyReportWriters(t *testing.T) {
	overall := Evaluate([]Position{{1, 20}}, []Insertion{{QueryID: 1, Begin: 10, End: 30}}, 5)
	fams := EvaluateByFamily([]Position{{1, 20}},
		[]AttackInsertion{{Insertion{QueryID: 1, Begin: 10, End: 30}, "stutter", "5%x1"}}, 5)
	rep := NewFamilyReport(overall, fams, 2.5, 2)

	var jsonOut strings.Builder
	if err := rep.WriteJSON(&jsonOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"schema": "vcdeval/v1"`, `"family": "stutter"`, `"mean_loc_err_sec": 5`} {
		if !strings.Contains(jsonOut.String(), want) {
			t.Errorf("JSON missing %q:\n%s", want, jsonOut.String())
		}
	}

	var csvOut strings.Builder
	if err := rep.WriteCSV(&csvOut); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvOut.String()), "\n")
	if len(lines) != 3 { // header + overall + stutter
		t.Fatalf("CSV has %d lines:\n%s", len(lines), csvOut.String())
	}
	if lines[0] != "family,precision,recall,reports,correct,inserted,detected,mean_loc_err_sec" {
		t.Errorf("CSV header changed: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "overall,1.0000,1.0000,") {
		t.Errorf("overall row %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "stutter,") {
		t.Errorf("family row %q", lines[2])
	}
}

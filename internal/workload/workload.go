// Package workload manufactures the evaluation workloads of paper Section
// VI and scores detector output against ground truth.
//
// The paper inserts 200 real short videos (30–300 s) into 12 h of base film
// footage, producing VS1 (verbatim inserts) and VS2 (inserts that are
// photometrically edited, re-encoded NTSC→PAL and segment-reordered). With
// no real videos available offline, shorts and base footage are synthesised
// (internal/vframe) and pushed through the real codec pipeline: encode →
// partial DC decode → feature extraction → grid-pyramid cell ids. Scale is
// configurable; the defaults keep every experiment laptop-fast.
package workload

import (
	"bytes"
	"fmt"
	"math"

	"vdsms/internal/edit"
	"vdsms/internal/feature"
	"vdsms/internal/mpeg"
	"vdsms/internal/partition"
	"vdsms/internal/vframe"
)

// Config parameterises a workload build. All durations are in seconds of
// key-frame time: the pipeline generates KeyFPS key frames per second and
// encodes them intra-only, which is equivalent to a full-rate stream whose
// GOP yields that key-frame rate (the partial decoder ignores P frames).
type Config struct {
	// NumShorts is the number of short videos, which double as the
	// continuous queries (paper: 200).
	NumShorts int
	// ShortMinSec/ShortMaxSec bound short-video duration (paper: 30–300 s;
	// scaled default 10–40 s).
	ShortMinSec, ShortMaxSec float64
	// GapMinSec/GapMaxSec bound the base-footage gap between inserts.
	GapMinSec, GapMaxSec float64
	// KeyFPS is the key-frame rate of the monitored stream (paper: NTSC
	// 29.97 fps with a ~15-frame GOP ≈ 2 key frames/s; default 2).
	KeyFPS float64
	// W, H are the stream dimensions (multiples of 16).
	W, H int
	// Quality is the encoder quality for both stream and queries.
	Quality int
	// Seed drives all content and edit randomness.
	Seed int64
	// Edited selects VS2: shorts are attacked (photometric edits, noise,
	// resolution/frame-rate change, segment reordering) before insertion.
	Edited bool
	// ReorderSegSec is the segment length for VS2 reordering (default 5 s).
	ReorderSegSec float64
}

func (c *Config) defaults() {
	if c.NumShorts == 0 {
		c.NumShorts = 20
	}
	if c.ShortMinSec == 0 {
		c.ShortMinSec = 10
	}
	if c.ShortMaxSec == 0 {
		c.ShortMaxSec = 40
	}
	if c.GapMinSec == 0 {
		c.GapMinSec = 10
	}
	if c.GapMaxSec == 0 {
		c.GapMaxSec = 30
	}
	if c.KeyFPS == 0 {
		c.KeyFPS = 2
	}
	if c.W == 0 {
		c.W = 96
	}
	if c.H == 0 {
		c.H = 80
	}
	if c.Quality == 0 {
		c.Quality = 75
	}
	if c.ReorderSegSec == 0 {
		c.ReorderSegSec = 5
	}
}

// Insertion is one ground-truth copy: query QueryID occupies stream key
// frames [Begin, End).
type Insertion struct {
	QueryID    int
	Begin, End int
}

// QueryVideo pairs a query id with its original (unedited) video.
type QueryVideo struct {
	ID    int
	Video vframe.Source
}

// Workload is a built evaluation scenario.
type Workload struct {
	Cfg     Config
	Stream  vframe.Source // the monitored stream (lazy)
	Truth   []Insertion
	Queries []QueryVideo

	streamFeats  [][]float64 // cached pipeline output
	streamPooled [][]float64
	queryPooled  map[int][][]float64
}

// Build constructs the workload deterministically from cfg.
func Build(cfg Config) *Workload {
	cfg.defaults()
	w := &Workload{Cfg: cfg}
	rnd := newRand(cfg.Seed)

	// Short videos: one Synth per query id with its own seed.
	shorts := make([]vframe.Source, cfg.NumShorts)
	for i := 0; i < cfg.NumShorts; i++ {
		durSec := cfg.ShortMinSec + rnd.float()*(cfg.ShortMaxSec-cfg.ShortMinSec)
		n := int(durSec * cfg.KeyFPS)
		if n < 2 {
			n = 2
		}
		shorts[i] = vframe.NewSynth(vframe.SynthConfig{
			W: cfg.W, H: cfg.H, FPS: cfg.KeyFPS, NumFrames: n,
			Seed: cfg.Seed*1000003 + int64(i) + 1,
		})
		w.Queries = append(w.Queries, QueryVideo{ID: i + 1, Video: shorts[i]})
	}

	// Base footage: one long Synth sliced into gaps.
	totalGapSec := 0.0
	gapSecs := make([]float64, cfg.NumShorts+1)
	for i := range gapSecs {
		gapSecs[i] = cfg.GapMinSec + rnd.float()*(cfg.GapMaxSec-cfg.GapMinSec)
		totalGapSec += gapSecs[i]
	}
	base := vframe.NewSynth(vframe.SynthConfig{
		W: cfg.W, H: cfg.H, FPS: cfg.KeyFPS,
		NumFrames: int(totalGapSec*cfg.KeyFPS) + cfg.NumShorts + 16,
		Seed:      cfg.Seed * 7_777_777,
	})

	// Assemble: gap, insert, gap, insert, ..., gap. Insert order is a
	// random permutation of the shorts.
	order := rnd.perm(cfg.NumShorts)
	var parts []vframe.Source
	baseOff := 0
	streamOff := 0
	takeGap := func(sec float64) {
		n := int(sec * cfg.KeyFPS)
		if n < 1 {
			n = 1
		}
		parts = append(parts, vframe.Clip(base, baseOff, n))
		baseOff += n
		streamOff += n
	}
	for i, qi := range order {
		takeGap(gapSecs[i])
		ins := shorts[qi]
		if cfg.Edited {
			ins = w.attack(ins, qi)
		}
		parts = append(parts, ins)
		w.Truth = append(w.Truth, Insertion{
			QueryID: qi + 1,
			Begin:   streamOff,
			End:     streamOff + ins.Len(),
		})
		streamOff += ins.Len()
	}
	takeGap(gapSecs[cfg.NumShorts])
	w.Stream = vframe.Concat(parts...)
	return w
}

// attack applies the VS2 editing pipeline to one short and re-conforms it
// to the stream geometry and rate (the broadcast re-encode).
func (w *Workload) attack(src vframe.Source, idx int) vframe.Source {
	cfg := w.Cfg
	// PAL-like intermediate: different resolution and frame rate.
	palW, palH := cfg.W+16, cfg.H+16
	palFPS := cfg.KeyFPS * 25.0 / 29.97
	segFrames := int(cfg.ReorderSegSec * palFPS)
	if segFrames < 1 {
		segFrames = 1
	}
	a := edit.PaperAttack(cfg.Seed*31+int64(idx), palW, palH, palFPS, segFrames)
	out := a.Apply(src)
	// Conform back to the monitored stream's geometry and rate.
	out = edit.Rescale(out, cfg.W, cfg.H)
	if out.FPS() != cfg.KeyFPS {
		out = edit.Resample(out, cfg.KeyFPS)
	}
	return out
}

// Pipeline bundles the feature extractor and partitioner applied to decoded
// DC frames.
type Pipeline struct {
	Extractor   *feature.Extractor
	Partitioner partition.Partitioner
}

// NewPipeline builds the paper-default pipeline for the given u and d.
func NewPipeline(u, d int, scheme partition.Scheme) (*Pipeline, error) {
	ex, err := feature.NewExtractor(feature.Config{D: d})
	if err != nil {
		return nil, err
	}
	p, err := partition.New(u, d, scheme)
	if err != nil {
		return nil, err
	}
	return &Pipeline{Extractor: ex, Partitioner: p}, nil
}

// Features runs the real compressed-domain pipeline over a video: encode
// intra-only, partially decode the DC grids, extract one normalised feature
// vector per key frame.
func Features(src vframe.Source, quality int, ex *feature.Extractor) ([][]float64, error) {
	var buf bytes.Buffer
	if _, err := mpeg.EncodeSource(&buf, src, quality, 1); err != nil {
		return nil, fmt.Errorf("workload: encoding: %w", err)
	}
	dcs, _, err := mpeg.ReadAllDC(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, fmt.Errorf("workload: partial decode: %w", err)
	}
	feats := make([][]float64, len(dcs))
	for i, dcf := range dcs {
		feats[i] = ex.Vector(dcf)
	}
	return feats, nil
}

// CellIDs maps feature vectors through the partitioner.
func (p *Pipeline) CellIDs(feats [][]float64) []uint64 {
	out := make([]uint64, len(feats))
	scratch := make([]float64, p.Partitioner.D)
	for i, f := range feats {
		out[i] = p.Partitioner.CellInto(f, scratch)
	}
	return out
}

// StreamFeatures returns (building and caching on first use) the feature
// vectors of every stream key frame. The cache is keyed to the extractor's
// defaults — experiments that vary d must use distinct Workload values or
// call Features directly.
func (wl *Workload) StreamFeatures(ex *feature.Extractor) ([][]float64, error) {
	if wl.streamFeats != nil {
		return wl.streamFeats, nil
	}
	feats, err := Features(wl.Stream, wl.Cfg.Quality, ex)
	if err != nil {
		return nil, err
	}
	wl.streamFeats = feats
	return feats, nil
}

// InvalidateCache drops the cached stream features (use when switching
// extractors on a shared workload).
func (wl *Workload) InvalidateCache() { wl.streamFeats = nil }

// QueryFeatures computes the per-query feature sequences (original,
// unedited videos — the subscribed continuous queries).
func (wl *Workload) QueryFeatures(ex *feature.Extractor) (map[int][][]float64, error) {
	out := make(map[int][][]float64, len(wl.Queries))
	for _, q := range wl.Queries {
		feats, err := Features(q.Video, wl.Cfg.Quality, ex)
		if err != nil {
			return nil, fmt.Errorf("workload: query %d: %w", q.ID, err)
		}
		out[q.ID] = feats
	}
	return out, nil
}

// PooledFeatures runs the codec pipeline over a video and returns the raw
// 3×3 pooled DC block averages per key frame (unnormalised). Parameter
// sweeps cache these and derive (u, d)-specific vectors via
// feature.Extractor.FromPooled without re-running the codec.
func PooledFeatures(src vframe.Source, quality int) ([][]float64, error) {
	ex, err := feature.NewExtractor(feature.Config{GridW: 3, GridH: 3, D: 9})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if _, err := mpeg.EncodeSource(&buf, src, quality, 1); err != nil {
		return nil, fmt.Errorf("workload: encoding: %w", err)
	}
	dcs, _, err := mpeg.ReadAllDC(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, fmt.Errorf("workload: partial decode: %w", err)
	}
	out := make([][]float64, len(dcs))
	for i, dcf := range dcs {
		out[i] = ex.Pool(dcf)
	}
	return out, nil
}

// StreamPooled returns (cached) raw pooled features of every stream key
// frame.
func (wl *Workload) StreamPooled() ([][]float64, error) {
	if wl.streamPooled != nil {
		return wl.streamPooled, nil
	}
	p, err := PooledFeatures(wl.Stream, wl.Cfg.Quality)
	if err != nil {
		return nil, err
	}
	wl.streamPooled = p
	return p, nil
}

// QueryPooled returns (cached) raw pooled features per query id.
func (wl *Workload) QueryPooled() (map[int][][]float64, error) {
	if wl.queryPooled != nil {
		return wl.queryPooled, nil
	}
	out := make(map[int][][]float64, len(wl.Queries))
	for _, q := range wl.Queries {
		p, err := PooledFeatures(q.Video, wl.Cfg.Quality)
		if err != nil {
			return nil, fmt.Errorf("workload: query %d: %w", q.ID, err)
		}
		out[q.ID] = p
	}
	wl.queryPooled = out
	return out, nil
}

// rand is a tiny deterministic PRNG (SplitMix64) so workloads are stable
// across Go releases.
type randState struct{ s uint64 }

func newRand(seed int64) *randState { return &randState{s: uint64(seed) ^ 0x9E3779B97F4A7C15} }

func (r *randState) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *randState) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

func (r *randState) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *randState) perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// KeyWindowFrames converts a basic-window duration in seconds to key
// frames under cfg's key-frame rate, minimum 1.
func (c Config) KeyWindowFrames(sec float64) int {
	n := int(math.Round(sec * c.KeyFPS))
	if n < 1 {
		n = 1
	}
	return n
}

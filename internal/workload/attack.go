package workload

import (
	"fmt"

	"vdsms/internal/edit"
	"vdsms/internal/vframe"
)

// AttackInsertion is one ground-truth copy annotated with the temporal
// attack that produced it, so detector output can be scored per attack
// family (see EvaluateByFamily).
type AttackInsertion struct {
	Insertion
	Family string // edit.Family* name; "none" for verbatim control inserts
	Preset string // preset name within the family
}

// AttackConfig parameterises BuildAttack.
type AttackConfig struct {
	// Base supplies content, geometry, rate and seed; Base.Edited is
	// ignored (the temporal attacks replace the VS2 pipeline).
	Base Config
	// Families are the attack families composed over the query clips, by
	// edit.Family* name. Empty selects the "none" control plus every
	// temporal family. Unknown names make BuildAttack panic (via
	// edit.TemporalPresets), keeping misconfigured runs loud.
	Families []string
}

// AttackWorkload is a built adversarial scenario: every query clip is
// inserted once per requested attack family (preset rotating per clip),
// between gaps of base footage, with Meta recording which attack produced
// each insertion. Meta is index-parallel to Workload.Truth.
type AttackWorkload struct {
	*Workload
	Meta []AttackInsertion
}

// BuildAttack constructs the adversarial robustness workload
// deterministically from cfg. The monitored stream carries
// len(Families) × NumShorts insertions; queries remain the original,
// unattacked shorts.
func BuildAttack(cfg AttackConfig) *AttackWorkload {
	base := cfg.Base
	base.defaults()
	fams := cfg.Families
	if len(fams) == 0 {
		fams = append([]string{edit.FamilyNone}, edit.TemporalFamilies()...)
	}
	aw := &AttackWorkload{Workload: &Workload{Cfg: base}}
	rnd := newRand(base.Seed*911 + 7)

	// Shorts double as the continuous queries (same construction as Build).
	shorts := make([]vframe.Source, base.NumShorts)
	for i := 0; i < base.NumShorts; i++ {
		durSec := base.ShortMinSec + rnd.float()*(base.ShortMaxSec-base.ShortMinSec)
		n := int(durSec * base.KeyFPS)
		if n < 2 {
			n = 2
		}
		shorts[i] = vframe.NewSynth(vframe.SynthConfig{
			W: base.W, H: base.H, FPS: base.KeyFPS, NumFrames: n,
			Seed: base.Seed*1000003 + int64(i) + 1,
		})
		aw.Queries = append(aw.Queries, QueryVideo{ID: i + 1, Video: shorts[i]})
	}

	// Decoy footage for the splice family: long, distinct from both the
	// shorts and the gap footage.
	decoy := vframe.NewSynth(vframe.SynthConfig{
		W: base.W, H: base.H, FPS: base.KeyFPS,
		NumFrames: int(60*base.KeyFPS) + 16,
		Seed:      base.Seed * 5_555_557,
	})

	// One insertion per (family, short), preset rotating across shorts so
	// every preset of a family appears when NumShorts ≥ its preset count.
	type insert struct {
		qid            int
		family, preset string
		src            vframe.Source
	}
	var inserts []insert
	for fi, fam := range fams {
		presets := edit.TemporalPresets(fam)
		for i, short := range shorts {
			p := presets[i%len(presets)]
			a := p.Build(base.KeyFPS, base.Seed*101+int64(fi)*1009+int64(i)*13+1)
			a.Decoy = decoy
			out := a.Apply(short)
			// Conform to the monitored stream's uniform rate: a fixed-rate
			// broadcast re-encode. The temporal distortion survives as frame
			// duplication/removal at the stream rate.
			if out.FPS() != base.KeyFPS {
				out = edit.Resample(out, base.KeyFPS)
			}
			inserts = append(inserts, insert{
				qid: i + 1, family: fam, preset: p.Name, src: out,
			})
		}
	}

	// Gap footage between insertions.
	gapSecs := make([]float64, len(inserts)+1)
	totalGapSec := 0.0
	for i := range gapSecs {
		gapSecs[i] = base.GapMinSec + rnd.float()*(base.GapMaxSec-base.GapMinSec)
		totalGapSec += gapSecs[i]
	}
	gapFootage := vframe.NewSynth(vframe.SynthConfig{
		W: base.W, H: base.H, FPS: base.KeyFPS,
		NumFrames: int(totalGapSec*base.KeyFPS) + len(inserts) + 16,
		Seed:      base.Seed * 7_777_777,
	})

	// Assemble gap/insert/gap/... with the insert order shuffled so
	// families interleave rather than cluster.
	order := rnd.perm(len(inserts))
	var parts []vframe.Source
	gapOff, streamOff := 0, 0
	takeGap := func(sec float64) {
		n := int(sec * base.KeyFPS)
		if n < 1 {
			n = 1
		}
		parts = append(parts, vframe.Clip(gapFootage, gapOff, n))
		gapOff += n
		streamOff += n
	}
	for i, oi := range order {
		takeGap(gapSecs[i])
		ins := inserts[oi]
		parts = append(parts, ins.src)
		truth := Insertion{
			QueryID: ins.qid,
			Begin:   streamOff,
			End:     streamOff + ins.src.Len(),
		}
		aw.Truth = append(aw.Truth, truth)
		aw.Meta = append(aw.Meta, AttackInsertion{
			Insertion: truth, Family: ins.family, Preset: ins.preset,
		})
		streamOff += ins.src.Len()
	}
	takeGap(gapSecs[len(inserts)])
	aw.Stream = vframe.Concat(parts...)
	return aw
}

// TruthLine renders one insertion as a vcdgen attack truth.txt line:
// "id begin end family preset" with times in seconds.
func (a AttackInsertion) TruthLine(keyFPS float64) string {
	return fmt.Sprintf("%d %.2f %.2f %s %s", a.QueryID,
		float64(a.Begin)/keyFPS, float64(a.End)/keyFPS, a.Family, a.Preset)
}

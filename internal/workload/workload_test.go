package workload

import (
	"testing"

	"vdsms/internal/core"
	"vdsms/internal/partition"
)

// smallCfg keeps end-to-end tests fast: 6 shorts of 8-16 s at 2 key fps.
func smallCfg(edited bool) Config {
	return Config{
		NumShorts: 6, ShortMinSec: 8, ShortMaxSec: 16,
		GapMinSec: 6, GapMaxSec: 12,
		KeyFPS: 2, W: 96, H: 80, Quality: 80, Seed: 42, Edited: edited,
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := Build(smallCfg(false))
	b := Build(smallCfg(false))
	if a.Stream.Len() != b.Stream.Len() || len(a.Truth) != len(b.Truth) {
		t.Fatal("workload not deterministic")
	}
	for i := range a.Truth {
		if a.Truth[i] != b.Truth[i] {
			t.Fatalf("truth %d differs: %+v vs %+v", i, a.Truth[i], b.Truth[i])
		}
	}
}

func TestTruthIntervalsConsistent(t *testing.T) {
	for _, edited := range []bool{false, true} {
		w := Build(smallCfg(edited))
		if len(w.Truth) != 6 {
			t.Fatalf("edited=%v: %d insertions, want 6", edited, len(w.Truth))
		}
		seen := map[int]bool{}
		last := 0
		for _, ins := range w.Truth {
			if ins.Begin < last || ins.End <= ins.Begin || ins.End > w.Stream.Len() {
				t.Fatalf("edited=%v: bad interval %+v (stream %d)", edited, ins, w.Stream.Len())
			}
			if seen[ins.QueryID] {
				t.Fatalf("query %d inserted twice", ins.QueryID)
			}
			seen[ins.QueryID] = true
			last = ins.End
		}
	}
}

func TestInsertedContentMatchesQueryVS1(t *testing.T) {
	w := Build(smallCfg(false))
	ins := w.Truth[0]
	var q QueryVideo
	for _, qq := range w.Queries {
		if qq.ID == ins.QueryID {
			q = qq
		}
	}
	// VS1 inserts verbatim: stream frames inside the interval equal the
	// query frames.
	sf := w.Stream.Frame(ins.Begin).Clone()
	qf := q.Video.Frame(0)
	for i := range sf.Y {
		if sf.Y[i] != qf.Y[i] {
			t.Fatal("VS1 insertion is not verbatim")
		}
	}
}

func TestEditedStreamDiffers(t *testing.T) {
	w := Build(smallCfg(true))
	ins := w.Truth[0]
	var q QueryVideo
	for _, qq := range w.Queries {
		if qq.ID == ins.QueryID {
			q = qq
		}
	}
	sf := w.Stream.Frame(ins.Begin).Clone()
	qf := q.Video.Frame(0)
	same := true
	for i := range sf.Y {
		if sf.Y[i] != qf.Y[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("VS2 insertion identical to original — attack not applied")
	}
	// Duration approximately preserved by the edit round trip.
	insLen := ins.End - ins.Begin
	if ratio := float64(insLen) / float64(q.Video.Len()); ratio < 0.8 || ratio > 1.25 {
		t.Errorf("edited copy length ratio %.2f", ratio)
	}
}

func TestPipelineFeatures(t *testing.T) {
	w := Build(smallCfg(false))
	pl, err := NewPipeline(4, 5, partition.GridPyramid)
	if err != nil {
		t.Fatal(err)
	}
	feats, err := w.StreamFeatures(pl.Extractor)
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) != w.Stream.Len() {
		t.Fatalf("%d feature vectors for %d key frames", len(feats), w.Stream.Len())
	}
	// Cache hit returns the same slice.
	again, _ := w.StreamFeatures(pl.Extractor)
	if &again[0] != &feats[0] {
		t.Error("StreamFeatures did not cache")
	}
	ids := pl.CellIDs(feats)
	if len(ids) != len(feats) {
		t.Fatal("CellIDs length mismatch")
	}
	for _, id := range ids {
		if id >= pl.Partitioner.NumCells() {
			t.Fatalf("cell id %d out of range", id)
		}
	}
}

func TestEvaluateRule(t *testing.T) {
	truth := []Insertion{{QueryID: 1, Begin: 100, End: 160}, {QueryID: 2, Begin: 300, End: 340}}
	w := 10
	ev := Evaluate([]Position{
		{1, 115}, // correct: within [110, 170]
		{1, 50},  // wrong: before window
		{2, 350}, // correct: boundary End+w
		{2, 351}, // wrong: just past
		{3, 120}, // wrong: unknown query
	}, truth, w)
	if ev.Correct != 2 || ev.Reported != 5 {
		t.Fatalf("Correct=%d Reported=%d", ev.Correct, ev.Reported)
	}
	if ev.Precision != 0.4 {
		t.Errorf("Precision = %g", ev.Precision)
	}
	if ev.Detected != 2 || ev.Recall != 1 {
		t.Errorf("Detected=%d Recall=%g", ev.Detected, ev.Recall)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	ev := Evaluate(nil, nil, 5)
	if ev.Precision != 0 || ev.Recall != 0 {
		t.Error("empty evaluation not zero")
	}
}

// runDetection wires the full stack: workload → pipeline → engine → eval.
func runDetection(t *testing.T, wl *Workload, delta float64, k int) Eval {
	t.Helper()
	pl, err := NewPipeline(4, 5, partition.GridPyramid)
	if err != nil {
		t.Fatal(err)
	}
	wFrames := wl.Cfg.KeyWindowFrames(5)
	cfg := core.Config{
		K: k, Seed: 1, Delta: delta, Lambda: 2, WindowFrames: wFrames,
		Order: core.Sequential, Method: core.Bit, UseIndex: true,
	}
	eng, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	qf, err := wl.QueryFeatures(pl.Extractor)
	if err != nil {
		t.Fatal(err)
	}
	for qid, feats := range qf {
		if err := eng.AddQuery(qid, pl.CellIDs(feats)); err != nil {
			t.Fatal(err)
		}
	}
	feats, err := wl.StreamFeatures(pl.Extractor)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range pl.CellIDs(feats) {
		eng.PushFrame(id)
	}
	eng.Flush()
	var reports []Position
	for _, m := range eng.Matches {
		reports = append(reports, Position{QueryID: m.QueryID, P: m.DetectedAt})
	}
	return Evaluate(reports, wl.Truth, wFrames)
}

// TestEndToEndVS1 is the system smoke test: verbatim copies must be found
// with high precision and recall.
func TestEndToEndVS1(t *testing.T) {
	wl := Build(smallCfg(false))
	ev := runDetection(t, wl, 0.6, 400)
	if ev.Recall < 0.99 {
		t.Errorf("VS1 recall %.2f (detected %d/%d)", ev.Recall, ev.Detected, ev.Inserted)
	}
	if ev.Precision < 0.8 {
		t.Errorf("VS1 precision %.2f (%d/%d correct)", ev.Precision, ev.Correct, ev.Reported)
	}
}

// TestEndToEndVS2 exercises the edited, reordered stream: recall may drop
// but the system must still find most copies.
func TestEndToEndVS2(t *testing.T) {
	wl := Build(smallCfg(true))
	ev := runDetection(t, wl, 0.5, 400)
	if ev.Recall < 0.5 {
		t.Errorf("VS2 recall %.2f (detected %d/%d)", ev.Recall, ev.Detected, ev.Inserted)
	}
	if ev.Precision < 0.5 {
		t.Errorf("VS2 precision %.2f (%d/%d correct)", ev.Precision, ev.Correct, ev.Reported)
	}
}

func TestKeyWindowFrames(t *testing.T) {
	c := Config{KeyFPS: 2}
	if c.KeyWindowFrames(5) != 10 {
		t.Errorf("5 s at 2 key fps = %d frames", c.KeyWindowFrames(5))
	}
	if c.KeyWindowFrames(0.1) != 1 {
		t.Error("window floor not 1")
	}
}

func TestQueryFeaturesAndPooledCaches(t *testing.T) {
	w := Build(smallCfg(false))
	pl, err := NewPipeline(4, 5, partition.GridPyramid)
	if err != nil {
		t.Fatal(err)
	}
	qf, err := w.QueryFeatures(pl.Extractor)
	if err != nil {
		t.Fatal(err)
	}
	if len(qf) != len(w.Queries) {
		t.Fatalf("features for %d queries, want %d", len(qf), len(w.Queries))
	}
	for _, q := range w.Queries {
		if len(qf[q.ID]) != q.Video.Len() {
			t.Errorf("query %d: %d vectors for %d frames", q.ID, len(qf[q.ID]), q.Video.Len())
		}
	}
	// Pooled caches return identical slices on second call.
	p1, err := w.StreamPooled()
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := w.StreamPooled()
	if &p1[0] != &p2[0] {
		t.Error("StreamPooled did not cache")
	}
	q1, err := w.QueryPooled()
	if err != nil {
		t.Fatal(err)
	}
	q2, _ := w.QueryPooled()
	if len(q1) != len(q2) {
		t.Error("QueryPooled cache inconsistent")
	}
	// Pooled features agree with direct extraction after normalisation.
	full, _ := w.StreamFeatures(pl.Extractor)
	for i := range p1 {
		direct := pl.Extractor.FromPooled(p1[i])
		for j := range direct {
			if direct[j] != full[i][j] {
				t.Fatalf("frame %d dim %d: pooled-derived %g != direct %g",
					i, j, direct[j], full[i][j])
			}
		}
	}
	w.InvalidateCache()
	again, err := w.StreamFeatures(pl.Extractor)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(full) {
		t.Error("features differ after InvalidateCache")
	}
}

func TestNewPipelineErrors(t *testing.T) {
	if _, err := NewPipeline(0, 5, partition.GridPyramid); err == nil {
		t.Error("u=0 accepted")
	}
	if _, err := NewPipeline(4, 20, partition.GridPyramid); err == nil {
		t.Error("d>D accepted")
	}
}

// Fleet checkpoint/restore. A fleet checkpoint stores the shared query
// plane ONCE (the VQS1 blob core.QuerySet.Save produces) followed by one
// per-stream delta: a standard engine checkpoint with its Queries section
// stripped. That keeps the durable form aligned with the runtime memory
// model — plane O(queries), streams O(streams) — where embedding the query
// list in every stream's blob would serialise it a thousand times.
//
// Container layout (big-endian):
//
//	magic "VFLT" | format version (u16)
//	u32 plane-blob length | plane blob (core.QuerySet.Save)
//	u32 stream count
//	per stream, id-sorted: u16 id length | id bytes |
//	                       u32 blob length | snapshot checkpoint blob
//
// Each stream blob is a full internal/snapshot checkpoint, so it inherits
// that format's fingerprint and trailer integrity checks; the container
// adds only framing. Streams are written id-sorted and every nested codec
// is canonical, so identical fleet state serialises to identical bytes.
package fleet

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"vdsms/internal/core"
	"vdsms/internal/snapshot"
)

// FleetMagic identifies a fleet checkpoint container.
var FleetMagic = [4]byte{'V', 'F', 'L', 'T'}

// FleetFormatVersion is the current container version.
const FleetFormatVersion = 1

// Checkpoint writes the fleet's full state. The pool must be quiescent:
// Checkpoint drains every stream first, but producers have to pause
// pushing (and query churn must pause) for the drain to terminate and the
// plane/stream sections to be mutually consistent. meta carries the
// pipeline-level parameters stamped into each stream blob (zero for bare
// cell-id fleets).
func (p *Pool) Checkpoint(w io.Writer, meta snapshot.Meta) error {
	p.Drain()

	var plane bytes.Buffer
	if err := p.qs.Save(&plane); err != nil {
		return fmt.Errorf("fleet: save query plane: %w", err)
	}
	if _, err := w.Write(FleetMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(w, binary.BigEndian, uint16(FleetFormatVersion)); err != nil {
		return err
	}
	if err := writeBlob(w, plane.Bytes()); err != nil {
		return err
	}

	ids := p.StreamIDs()
	if err := binary.Write(w, binary.BigEndian, uint32(len(ids))); err != nil {
		return err
	}
	for _, id := range ids {
		s := p.Stream(id)
		if s == nil { // detached between listing and export
			return fmt.Errorf("fleet: stream %q detached during checkpoint", id)
		}
		s.emu.Lock()
		st := s.eng.ExportState()
		s.emu.Unlock()
		// The shared plane blob is the single source of query truth.
		st.Queries = nil

		var blob bytes.Buffer
		if err := snapshot.Write(&blob, &snapshot.Checkpoint{Meta: meta, Engine: *st}); err != nil {
			return fmt.Errorf("fleet: stream %q: %w", id, err)
		}
		if len(id) > 0xffff {
			return fmt.Errorf("fleet: stream id %q too long", id)
		}
		if err := binary.Write(w, binary.BigEndian, uint16(len(id))); err != nil {
			return err
		}
		if _, err := io.WriteString(w, id); err != nil {
			return err
		}
		if err := writeBlob(w, blob.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// Restore rebuilds a pool from a fleet checkpoint: the shared plane is
// loaded once and every stream joins it via core.RestoreEngineWith.
// cfg.Engine must be detection-compatible with the checkpointed
// configuration (each stream blob's fingerprint is checked) and meta must
// match the value the checkpoint was taken with.
func Restore(cfg Config, r io.Reader, meta snapshot.Meta) (*Pool, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("fleet: read magic: %w", err)
	}
	if magic != FleetMagic {
		return nil, fmt.Errorf("fleet: bad magic %q", magic[:])
	}
	var version uint16
	if err := binary.Read(r, binary.BigEndian, &version); err != nil {
		return nil, err
	}
	if version != FleetFormatVersion {
		return nil, fmt.Errorf("fleet: unsupported format version %d", version)
	}

	plane, err := readBlob(r)
	if err != nil {
		return nil, fmt.Errorf("fleet: read query plane: %w", err)
	}
	qs, err := core.LoadQuerySet(bytes.NewReader(plane))
	if err != nil {
		return nil, fmt.Errorf("fleet: load query plane: %w", err)
	}
	p, err := NewWith(cfg, qs)
	if err != nil {
		return nil, err
	}

	var count uint32
	if err := binary.Read(r, binary.BigEndian, &count); err != nil {
		p.Close()
		return nil, err
	}
	for i := uint32(0); i < count; i++ {
		var idLen uint16
		if err := binary.Read(r, binary.BigEndian, &idLen); err != nil {
			p.Close()
			return nil, err
		}
		idBuf := make([]byte, idLen)
		if _, err := io.ReadFull(r, idBuf); err != nil {
			p.Close()
			return nil, err
		}
		id := string(idBuf)
		blob, err := readBlob(r)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("fleet: stream %q: %w", id, err)
		}
		ck, err := snapshot.Read(bytes.NewReader(blob))
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("fleet: stream %q: %w", id, err)
		}
		// Config compatibility (fingerprint fields) is checked inside
		// RestoreEngineWith; the container only needs the Meta comparison.
		if cerr := snapshot.CompatibilityError(ck.Meta, meta, ck.Engine.Config, ck.Engine.Config); cerr != nil {
			p.Close()
			return nil, fmt.Errorf("fleet: stream %q: %w", id, cerr)
		}
		eng, err := core.RestoreEngineWith(cfg.Engine, &ck.Engine, qs)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("fleet: stream %q: %w", id, err)
		}
		if _, err := p.attach(id, eng); err != nil {
			p.Close()
			return nil, fmt.Errorf("fleet: stream %q: %w", id, err)
		}
	}
	return p, nil
}

func writeBlob(w io.Writer, b []byte) error {
	if err := binary.Write(w, binary.BigEndian, uint32(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readBlob(r io.Reader) ([]byte, error) {
	var n uint32
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return nil, err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// Fleet-level telemetry. The vcd_fleet_* series describe the pool as a
// whole; per-stream detail stays in Stream.Stats (exposing a label per
// stream id would explode series cardinality at 1k+ streams).
package fleet

import "vdsms/internal/telemetry"

var (
	telStreamsActive = telemetry.Default.Gauge("vcd_fleet_streams_active",
		"Streams currently attached to the fleet pool.")
	telStreamsRejected = telemetry.Default.Counter("vcd_fleet_streams_rejected_total",
		"Attach requests rejected by admission control (limit reached or duplicate id).")
	telPushRejected = telemetry.Default.Counter("vcd_fleet_pushes_rejected_total",
		"Frame batches rejected with backpressure because a stream queue was full.")
	telBatches = telemetry.Default.Counter("vcd_fleet_batches_total",
		"Frame batches accepted into stream queues.")
	telFrames = telemetry.Default.Counter("vcd_fleet_frames_total",
		"Key frames accepted into stream queues.")
	telQueueFrames = telemetry.Default.Gauge("vcd_fleet_queue_frames",
		"Frames queued or in flight across all streams of the pool.")
	telQueueDepth = telemetry.Default.Gauge("vcd_fleet_queue_depth",
		"High-watermark of vcd_fleet_queue_frames — the deepest the pool-wide backlog has ever run.")
	telQueueWait = telemetry.Default.Histogram("vcd_fleet_queue_wait_seconds",
		"Time a pass's frames waited in a stream queue before its pinned worker picked them up.",
		telemetry.DurationBuckets)
	telWorkerHop = telemetry.Default.Histogram("vcd_fleet_worker_hop_seconds",
		"Scheduling hop between a stream's wake signal and its pass starting on the pinned worker.",
		telemetry.DurationBuckets)
	telPlaneBytes = telemetry.Default.Gauge("vcd_fleet_plane_bytes",
		"Memory footprint of the shared query plane (index, sketches, pre-filter) — paid once, not per stream.")
	telPlaneVersion = telemetry.Default.Gauge("vcd_fleet_plane_version",
		"Current version of the shared copy-on-write query plane.")
	telWorkers = telemetry.Default.Gauge("vcd_fleet_workers",
		"Worker goroutines the fleet pool multiplexes streams over.")
)

package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"vdsms/internal/core"
	"vdsms/internal/snapshot"
)

// idStream generates a shot-structured cell-id stream for synthetic
// content (same generator shape as the core engine tests).
func idStream(rng *rand.Rand, content, frames int) []uint64 {
	base := uint64(content) * 100000
	out := make([]uint64, frames)
	cur := base + uint64(rng.Intn(50))
	for i := range out {
		if rng.Float64() < 0.3 {
			cur = base + uint64(rng.Intn(50))
		}
		out[i] = cur
	}
	return out
}

func testConfig(w int) Config {
	return Config{
		Engine: core.Config{
			K: 64, Seed: 7, Delta: 0.6, Lambda: 2, WindowFrames: 10,
			Order: core.Sequential, Method: core.Bit, UseIndex: true,
		},
		Workers: w,
	}
}

// streamWorkload builds stream i's frame batches: background content with
// the query clip embedded, so most streams produce matches.
func streamWorkload(i, w int, query []uint64) [][]uint64 {
	rng := rand.New(rand.NewSource(int64(1000 + i)))
	var frames []uint64
	frames = append(frames, idStream(rng, 5000+i, (3+i%3)*w)...)
	frames = append(frames, query...)
	frames = append(frames, idStream(rng, 6000+i, (2+i%2)*w)...)
	// Uneven batch sizes exercise window-boundary straddling.
	var batches [][]uint64
	for off := 0; off < len(frames); {
		n := 7 + (i+off)%11
		if off+n > len(frames) {
			n = len(frames) - off
		}
		batches = append(batches, frames[off:off+n])
		off += n
	}
	return batches
}

func TestPoolLifecycle(t *testing.T) {
	p, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	s, err := p.Attach("cam-1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 || p.Stream("cam-1") != s {
		t.Fatal("attach not visible")
	}
	if _, err := p.Attach("cam-1"); !errors.Is(err, ErrDuplicateStream) {
		t.Fatalf("duplicate attach: %v", err)
	}
	if _, err := p.Attach(""); err == nil {
		t.Fatal("empty id accepted")
	}

	rng := rand.New(rand.NewSource(3))
	if err := p.AddQuery(1, idStream(rng, 1, 40)); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(idStream(rng, 9, 35)); err != nil {
		t.Fatal(err)
	}
	s.Detach(true)
	if st := s.Stats(); st.Frames != 35 || st.Windows != 4 {
		t.Fatalf("drained detach: frames=%d windows=%d", st.Frames, st.Windows)
	}
	if err := s.Push([]uint64{1}); !errors.Is(err, ErrDetached) {
		t.Fatalf("push after detach: %v", err)
	}
	if p.Len() != 0 {
		t.Fatal("detach left stream attached")
	}
	// The id is reusable after detach.
	if _, err := p.Attach("cam-1"); err != nil {
		t.Fatal(err)
	}

	p.Close()
	if _, err := p.Attach("cam-2"); !errors.Is(err, ErrClosed) {
		t.Fatalf("attach after close: %v", err)
	}
}

func TestAdmissionControl(t *testing.T) {
	cfg := testConfig(1)
	cfg.MaxStreams = 2
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Attach("a"); err != nil {
		t.Fatal(err)
	}
	b, err := p.Attach("b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Attach("c"); !errors.Is(err, ErrFleetFull) {
		t.Fatalf("over-limit attach: %v", err)
	}
	b.Detach(false)
	if _, err := p.Attach("c"); err != nil {
		t.Fatalf("attach after detach freed a slot: %v", err)
	}
}

func TestBackpressure(t *testing.T) {
	cfg := testConfig(1)
	cfg.QueueFrames = 25
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Block the single worker with a decoy stream pass so frames queue up.
	blocker := make(chan struct{})
	decoy, err := p.Attach("decoy")
	if err != nil {
		t.Fatal(err)
	}
	decoy.emu.Lock()
	go func() { <-blocker; decoy.emu.Unlock() }()
	if err := decoy.Push([]uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}

	s, err := p.Attach("s")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Push(make([]uint64, 20)); err != nil {
		t.Fatalf("push within budget: %v", err)
	}
	if err := s.Push(make([]uint64, 10)); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("push beyond budget: %v", err)
	}
	if got := s.Pending(); got != 20 {
		t.Fatalf("rejected batch partially admitted: pending=%d", got)
	}
	// Whole-batch semantics: a smaller batch still fits.
	if err := s.Push(make([]uint64, 5)); err != nil {
		t.Fatalf("push filling exactly to budget: %v", err)
	}
	close(blocker)
	p.Drain()
	if got := s.Pending(); got != 0 {
		t.Fatalf("drain left %d pending", got)
	}
	if st := s.Stats(); st.Frames != 25 {
		t.Fatalf("processed %d frames, want 25", st.Frames)
	}
}

// runIsolated replays stream i's workload through a private single-stream
// engine with its own query set — the reference the fleet must match
// byte for byte.
func runIsolated(t *testing.T, cfg core.Config, batches [][]uint64, qids []int, qcells [][]uint64) ([]core.Match, core.Stats) {
	t.Helper()
	e, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddQueries(qids, qcells); err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		e.PushFrames(b)
	}
	e.Flush()
	return e.Matches, e.Stats()
}

// TestFleetEquivalence is the core correctness property: N streams
// multiplexed over a small worker pool, pushed from concurrent producers,
// must each produce exactly the matches and stats of an isolated engine
// fed the same frames — same query subscription sequence, same windows,
// same plane contents.
func TestFleetEquivalence(t *testing.T) {
	const nStreams = 24
	cfg := testConfig(4)
	cfg.Engine.PreFilter = true
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	qrng := rand.New(rand.NewSource(77))
	query := idStream(qrng, 1, 40)
	decoy := idStream(qrng, 2, 30)
	qids := []int{1, 2}
	qcells := [][]uint64{query, decoy}
	if err := p.AddQueries(qids, qcells); err != nil {
		t.Fatal(err)
	}

	streams := make([]*Stream, nStreams)
	workloads := make([][][]uint64, nStreams)
	for i := range streams {
		s, err := p.Attach(fmt.Sprintf("cam-%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = s
		workloads[i] = streamWorkload(i, cfg.Engine.WindowFrames, query)
	}

	var wg sync.WaitGroup
	for i, s := range streams {
		wg.Add(1)
		go func(s *Stream, batches [][]uint64) {
			defer wg.Done()
			for _, b := range batches {
				for {
					err := s.Push(b)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrBackpressure) {
						t.Error(err)
						return
					}
					s.waitIdle() // retry once the queue drains
				}
			}
		}(s, workloads[i])
	}
	wg.Wait()
	p.Drain()

	matched := 0
	for i, s := range streams {
		s.Detach(true) // flush the final partial window, like the reference
		wantM, wantS := runIsolated(t, cfg.Engine, workloads[i], qids, qcells)
		gotM, gotS := s.Matches(), s.Stats()
		if !reflect.DeepEqual(gotM, wantM) {
			t.Errorf("stream %d: matches diverge from isolated engine:\nfleet    %+v\nisolated %+v", i, gotM, wantM)
		}
		if it, ct := gotS.Totals(), wantS.Totals(); !reflect.DeepEqual(it, ct) {
			t.Errorf("stream %d: stats diverge:\nfleet    %+v\nisolated %+v", i, it, ct)
		}
		if len(gotM) > 0 {
			matched++
		}
	}
	if matched == 0 {
		t.Fatal("no stream matched; equivalence check vacuous")
	}
}

// TestFleetChurnUnderLoad drives concurrent pushes while the shared plane
// churns. There is no per-stream reference (churn timing is racy by
// design); the assertions are the safety properties: no data race (CI runs
// this under -race), the pre-churn query is found by every stream that
// carries it, and every stream ends on a plane no newer than the set.
func TestFleetChurnUnderLoad(t *testing.T) {
	const nStreams = 16
	cfg := testConfig(4)
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	qrng := rand.New(rand.NewSource(5))
	query := idStream(qrng, 1, 40)
	if err := p.AddQuery(1, query); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		crng := rand.New(rand.NewSource(6))
		id := 100
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := p.AddQuery(id, idStream(crng, id, 20)); err != nil {
				t.Error(err)
				return
			}
			if id%2 == 0 {
				if err := p.RemoveQuery(id); err != nil {
					t.Error(err)
					return
				}
			}
			id++
		}
	}()

	var wg sync.WaitGroup
	streams := make([]*Stream, nStreams)
	for i := range streams {
		s, err := p.Attach(fmt.Sprintf("s-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = s
		wg.Add(1)
		go func(i int, s *Stream) {
			defer wg.Done()
			for _, b := range streamWorkload(i, cfg.Engine.WindowFrames, query) {
				for errors.Is(s.Push(b), ErrBackpressure) {
					s.waitIdle()
				}
			}
		}(i, s)
	}
	wg.Wait()
	close(stop)
	churnWG.Wait()
	p.Drain()

	for i, s := range streams {
		s.Detach(true)
		found := false
		for _, m := range s.Matches() {
			if m.QueryID == 1 {
				found = true
			}
		}
		if !found {
			t.Errorf("stream %d lost the stable query under churn", i)
		}
		if s.PlaneVersion() > p.Queries().Version() {
			t.Errorf("stream %d plane version %d ahead of set version %d",
				i, s.PlaneVersion(), p.Queries().Version())
		}
	}
}

func TestFleetCheckpointRoundtrip(t *testing.T) {
	cfg := testConfig(2)
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	qrng := rand.New(rand.NewSource(11))
	query := idStream(qrng, 1, 40)
	if err := p.AddQuery(1, query); err != nil {
		t.Fatal(err)
	}
	if err := p.AddQuery(2, idStream(qrng, 2, 30)); err != nil {
		t.Fatal(err)
	}

	const nStreams = 6
	workloads := make([][][]uint64, nStreams)
	for i := 0; i < nStreams; i++ {
		s, err := p.Attach(fmt.Sprintf("cam-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		workloads[i] = streamWorkload(i, cfg.Engine.WindowFrames, query)
		// Push a prefix so checkpoints carry mid-stream state, including a
		// partial window (batch sizes are not window-aligned).
		for _, b := range workloads[i][:len(workloads[i])/2] {
			if err := s.Push(b); err != nil {
				t.Fatal(err)
			}
		}
	}
	p.Drain()

	var buf bytes.Buffer
	meta := snapshot.Meta{U: 16, D: 8, KeyFPS: 3}
	if err := p.Checkpoint(&buf, meta); err != nil {
		t.Fatal(err)
	}
	blob := append([]byte(nil), buf.Bytes()...)

	// Determinism: a second checkpoint of the same quiescent state is
	// byte-identical.
	var buf2 bytes.Buffer
	if err := p.Checkpoint(&buf2, meta); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, buf2.Bytes()) {
		t.Fatal("repeated checkpoint of quiescent fleet differs")
	}

	r, err := Restore(cfg, bytes.NewReader(blob), meta)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != nStreams {
		t.Fatalf("restored %d streams, want %d", r.Len(), nStreams)
	}
	if r.Queries().Len() != 2 {
		t.Fatalf("restored plane has %d queries, want 2", r.Queries().Len())
	}

	// Both pools replay the workload tails; outputs must stay identical.
	for i := 0; i < nStreams; i++ {
		id := fmt.Sprintf("cam-%d", i)
		for _, pool := range []*Pool{p, r} {
			s := pool.Stream(id)
			if s == nil {
				t.Fatalf("stream %s missing", id)
			}
			for _, b := range workloads[i][len(workloads[i])/2:] {
				for errors.Is(s.Push(b), ErrBackpressure) {
					s.waitIdle()
				}
			}
		}
	}
	p.Drain()
	r.Drain()
	for i := 0; i < nStreams; i++ {
		id := fmt.Sprintf("cam-%d", i)
		orig, rest := p.Stream(id), r.Stream(id)
		orig.Detach(true)
		rest.Detach(true)
		if !reflect.DeepEqual(orig.Matches(), rest.Matches()) {
			t.Errorf("stream %s: restored matches diverge", id)
		}
		if a, b := orig.Stats().Totals(), rest.Stats().Totals(); !reflect.DeepEqual(a, b) {
			t.Errorf("stream %s: restored stats diverge:\norig %+v\nrest %+v", id, a, b)
		}
	}

	// Meta mismatch is rejected loudly.
	if _, err := Restore(cfg, bytes.NewReader(blob), snapshot.Meta{U: 4}); err == nil {
		t.Fatal("meta mismatch accepted")
	}
	// Config mismatch (different Delta → different fingerprint) too.
	bad := cfg
	bad.Engine.Delta = 0.9
	if _, err := Restore(bad, bytes.NewReader(blob), meta); err == nil {
		t.Fatal("config mismatch accepted")
	}
	// Truncated container.
	if _, err := Restore(cfg, bytes.NewReader(blob[:len(blob)/3]), meta); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

// TestFleetSmoke is the CI gate behind `make fleet-smoke`: 64 streams,
// concurrent producers and live query churn under -race, then an
// equivalence spot-check of a sample of streams against isolated engines.
func TestFleetSmoke(t *testing.T) {
	const nStreams = 64
	cfg := testConfig(0) // default workers = GOMAXPROCS
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	qrng := rand.New(rand.NewSource(21))
	query := idStream(qrng, 1, 40)
	qids := []int{1, 2, 3}
	qcells := [][]uint64{query, idStream(qrng, 2, 30), idStream(qrng, 3, 50)}
	if err := p.AddQueries(qids, qcells); err != nil {
		t.Fatal(err)
	}

	streams := make([]*Stream, nStreams)
	workloads := make([][][]uint64, nStreams)
	var wg sync.WaitGroup
	for i := range streams {
		s, err := p.Attach(fmt.Sprintf("cam-%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = s
		workloads[i] = streamWorkload(i, cfg.Engine.WindowFrames, query)
		wg.Add(1)
		go func(s *Stream, batches [][]uint64) {
			defer wg.Done()
			for _, b := range batches {
				for errors.Is(s.Push(b), ErrBackpressure) {
					s.waitIdle()
				}
			}
		}(s, workloads[i])
	}
	wg.Wait()
	p.Drain()

	for i, s := range streams {
		s.Detach(true)
		if s.Stats().Frames == 0 {
			t.Fatalf("stream %d processed nothing", i)
		}
	}
	// Spot-check equivalence on a deterministic sample.
	for _, i := range []int{0, 17, 40, 63} {
		wantM, wantS := runIsolated(t, cfg.Engine, workloads[i], qids, qcells)
		if gotM := streams[i].Matches(); !reflect.DeepEqual(gotM, wantM) {
			t.Errorf("stream %d: matches diverge from isolated engine", i)
		}
		if a, b := streams[i].Stats().Totals(), wantS.Totals(); !reflect.DeepEqual(a, b) {
			t.Errorf("stream %d: stats diverge:\nfleet    %+v\nisolated %+v", i, a, b)
		}
	}
}

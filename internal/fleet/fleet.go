// Package fleet multiplexes many monitored streams over one shared,
// versioned query plane — the multi-tenant deployment of the paper's
// single-stream engine. The detection state splits cleanly in two:
//
//   - The query side (sketches, bit-signature planes, Hash-Query index,
//     Bloom pre-filter) is identical for every stream and lives once, in a
//     core.QuerySet whose copy-on-write plane lets subscription churn land
//     without stalling any stream. Query memory is O(queries), not
//     O(queries × streams).
//   - The stream side (window buffer, candidate lists, dedup state, stats)
//     is private per stream and tiny, so thousands of streams fit where a
//     naive one-engine-per-stream deployment would duplicate the index a
//     thousand times.
//
// A Pool runs a fixed set of workers; each stream is pinned to one worker
// by id hash, so its engine — which is not safe for concurrent use — only
// ever runs on that worker, while different streams progress in parallel.
// Producers hand frames to Stream.Push, which appends to a bounded
// per-stream queue and returns immediately; a full queue rejects the batch
// with ErrBackpressure rather than blocking the producer or growing without
// bound (admission control at ingest, matching the overload policy of
// internal/shed). Per-stream output is byte-identical to running the same
// frames through an isolated single-stream engine: the worker serialises
// each stream's windows, and the matching kernel is deterministic.
package fleet

import (
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vdsms/internal/core"
	"vdsms/internal/perfobs"
	"vdsms/internal/telemetry"
)

// Errors surfaced by pool admission and stream ingest. Callers branch with
// errors.Is; the wrapped instances carry the concrete numbers.
var (
	// ErrClosed reports an operation on a closed pool.
	ErrClosed = errors.New("fleet: pool closed")
	// ErrDuplicateStream reports an Attach with an id already in use.
	ErrDuplicateStream = errors.New("fleet: stream id already attached")
	// ErrFleetFull reports an Attach rejected by admission control.
	ErrFleetFull = errors.New("fleet: stream limit reached")
	// ErrBackpressure reports a Push rejected because the stream's pending
	// queue is full. The frames were NOT consumed; the producer decides
	// whether to retry, thin, or drop (shed policy is the caller's).
	ErrBackpressure = errors.New("fleet: stream queue full")
	// ErrDetached reports a Push on a stream that has been detached.
	ErrDetached = errors.New("fleet: stream detached")
)

// Config configures a Pool.
type Config struct {
	// Engine is the per-stream detection configuration. Every stream of a
	// pool shares one query plane, so K, Seed and UseIndex are fixed
	// fleet-wide. Engine.Workers is intra-window parallelism per stream;
	// leave it 0 in fleet deployments — parallelism comes from the pool.
	Engine core.Config
	// Workers is the number of pool workers streams are multiplexed over.
	// Defaults to GOMAXPROCS.
	Workers int
	// MaxStreams caps concurrently attached streams; Attach beyond it
	// fails with ErrFleetFull. 0 means unlimited.
	MaxStreams int
	// QueueFrames bounds each stream's pending frames (queued plus
	// in-flight). A Push that would exceed it fails with ErrBackpressure.
	// Defaults to 8 windows.
	QueueFrames int
}

func (c Config) normalized() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueFrames < 1 {
		c.QueueFrames = 8 * c.Engine.WindowFrames
	}
	return c
}

// Pool is a fleet of monitored streams over one shared query plane.
type Pool struct {
	cfg Config
	qs  *core.QuerySet

	mu      sync.Mutex
	streams map[string]*Stream
	closed  bool

	workers []*worker
	wg      sync.WaitGroup

	// queued aggregates pending+in-flight frames across streams, mirrored
	// into the vcd_fleet_queue_frames gauge; queuedHW is its high-watermark
	// (the vcd_fleet_queue_depth gauge — how deep the backlog has ever run).
	queued   atomic.Int64
	queuedHW atomic.Int64
}

// New builds a pool with a fresh query plane.
func New(cfg Config) (*Pool, error) {
	if err := cfg.Engine.Validate(); err != nil {
		return nil, err
	}
	qs, err := core.NewQuerySet(cfg.Engine.K, cfg.Engine.Seed, cfg.Engine.UseIndex)
	if err != nil {
		return nil, err
	}
	return NewWith(cfg, qs)
}

// NewWith builds a pool over an existing query plane (restore, or sharing
// with a legacy single-stream engine). cfg.Engine.K must match the set's.
func NewWith(cfg Config, qs *core.QuerySet) (*Pool, error) {
	if err := cfg.Engine.Validate(); err != nil {
		return nil, err
	}
	if cfg.Engine.K != qs.K() {
		return nil, fmt.Errorf("fleet: engine K=%d but query set K=%d", cfg.Engine.K, qs.K())
	}
	cfg = cfg.normalized()
	p := &Pool{cfg: cfg, qs: qs, streams: make(map[string]*Stream)}
	p.workers = make([]*worker, cfg.Workers)
	for i := range p.workers {
		w := &worker{id: i}
		w.cond = sync.NewCond(&w.mu)
		p.workers[i] = w
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			w.run()
		}()
	}
	telWorkers.Set(float64(cfg.Workers))
	p.publishPlaneGauges()
	return p, nil
}

// Config returns the pool configuration (normalised defaults applied).
func (p *Pool) Config() Config { return p.cfg }

// Queries returns the shared query plane.
func (p *Pool) Queries() *core.QuerySet { return p.qs }

// AddQuery subscribes a continuous query fleet-wide. The copy-on-write
// plane publishes the successor without stalling any stream: in-flight
// windows finish on the old version, the next window of every stream sees
// the new one.
func (p *Pool) AddQuery(id int, cellIDs []uint64) error {
	err := p.qs.Add(id, cellIDs)
	p.publishPlaneGauges()
	return err
}

// AddQueries subscribes a batch in one bulk index build and one plane
// version.
func (p *Pool) AddQueries(ids []int, cellIDs [][]uint64) error {
	err := p.qs.AddBatch(ids, cellIDs)
	p.publishPlaneGauges()
	return err
}

// RemoveQuery unsubscribes a query fleet-wide.
func (p *Pool) RemoveQuery(id int) error {
	err := p.qs.Remove(id)
	p.publishPlaneGauges()
	return err
}

// PlaneBytes returns the shared query plane's memory footprint — the term
// that would be multiplied by the stream count without the split.
func (p *Pool) PlaneBytes() int { return p.qs.PlaneBytes() }

func (p *Pool) publishPlaneGauges() {
	telPlaneBytes.Set(float64(p.qs.PlaneBytes()))
	telPlaneVersion.Set(float64(p.qs.Version()))
}

// workerFor pins a stream id to a worker. FNV-1a keeps the pinning stable
// across attach/detach cycles and checkpoint restores.
func (p *Pool) workerFor(id string) *worker {
	h := fnv.New32a()
	h.Write([]byte(id))
	return p.workers[int(h.Sum32())%len(p.workers)]
}

// Attach admits a new stream. The error is ErrClosed, ErrDuplicateStream
// or ErrFleetFull (wrapped with the concrete limit) — admission control
// rejects with a reason instead of queueing attach requests.
func (p *Pool) Attach(id string) (*Stream, error) {
	if id == "" {
		return nil, errors.New("fleet: empty stream id")
	}
	eng, err := core.NewEngineWith(p.cfg.Engine, p.qs)
	if err != nil {
		return nil, err
	}
	return p.attach(id, eng)
}

func (p *Pool) attach(id string, eng *core.Engine) (*Stream, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	if _, dup := p.streams[id]; dup {
		telStreamsRejected.Inc()
		return nil, fmt.Errorf("%w: %q", ErrDuplicateStream, id)
	}
	if p.cfg.MaxStreams > 0 && len(p.streams) >= p.cfg.MaxStreams {
		telStreamsRejected.Inc()
		return nil, fmt.Errorf("%w: %d attached, limit %d", ErrFleetFull, len(p.streams), p.cfg.MaxStreams)
	}
	s := &Stream{id: id, p: p, w: p.workerFor(id), eng: eng}
	s.done = sync.NewCond(&s.qmu)
	// Fleet engines report spans into the process collector under their
	// stream id — wired before the stream is published, so no pass can race
	// the assignment.
	eng.SetPerf(perfobs.Default, id)
	p.streams[id] = s
	telStreamsActive.Set(float64(len(p.streams)))
	return s, nil
}

// Stream returns the attached stream with the given id, or nil.
func (p *Pool) Stream(id string) *Stream {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.streams[id]
}

// Len returns the number of attached streams.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.streams)
}

// StreamIDs returns the attached stream ids, sorted.
func (p *Pool) StreamIDs() []string {
	p.mu.Lock()
	ids := make([]string, 0, len(p.streams))
	for id := range p.streams {
		ids = append(ids, id)
	}
	p.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// Drain blocks until every stream's pending queue is empty and no worker
// pass is in flight. Producers must pause pushing for Drain to terminate;
// it is the quiescence barrier Checkpoint uses.
func (p *Pool) Drain() {
	p.mu.Lock()
	streams := make([]*Stream, 0, len(p.streams))
	for _, s := range p.streams {
		streams = append(streams, s)
	}
	p.mu.Unlock()
	for _, s := range streams {
		s.waitIdle()
	}
}

// Close stops the workers. Attached streams stay readable (Stats, Matches)
// but stop processing; pending queues are abandoned. Call Drain first for
// a graceful stop.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	for _, w := range p.workers {
		w.shutdown()
	}
	p.wg.Wait()
}

// A Stream is one monitored stream of a pool: a private engine plus a
// bounded ingest queue, pinned to one worker.
type Stream struct {
	id string
	p  *Pool
	w  *worker

	// qmu guards the ingest queue and scheduling flags. Push and the
	// worker exchange frames under it; it is never held while the engine
	// runs, so Push returns in O(len(frames)) regardless of window cost.
	qmu        sync.Mutex
	pending    []uint64
	inflight   int
	enqueued   bool
	processing bool
	detached   bool
	done       *sync.Cond // broadcast when a pass ends with an empty queue
	// enqAt marks when the current queue generation went non-empty and
	// wakeAt when the worker wake was signalled — the queue-wait and
	// worker-hop span sources. Zero when timing is off (see timing()).
	enqAt  time.Time
	wakeAt time.Time

	// emu guards the engine: the owning worker holds it across PushFrames,
	// readers (Stats, Matches) hold it briefly between windows.
	emu sync.Mutex
	eng *core.Engine
}

// ID returns the stream id.
func (s *Stream) ID() string { return s.id }

// Push appends key-frame cell ids to the stream's queue and returns
// without waiting for processing. The input is copied. A queue beyond
// Config.QueueFrames rejects the whole batch with ErrBackpressure
// (wrapped with the depths); partial admission would silently corrupt the
// stream's frame sequence.
func (s *Stream) Push(cellIDs []uint64) error {
	if len(cellIDs) == 0 {
		return nil
	}
	s.qmu.Lock()
	if s.detached {
		s.qmu.Unlock()
		return ErrDetached
	}
	depth := len(s.pending) + s.inflight
	if depth+len(cellIDs) > s.p.cfg.QueueFrames {
		s.qmu.Unlock()
		telPushRejected.Inc()
		perfobs.DefaultOutliers.ObserveBackpressure(s.id, int64(len(cellIDs)))
		return fmt.Errorf("%w: stream %q holds %d frames, batch of %d exceeds budget %d",
			ErrBackpressure, s.id, depth, len(cellIDs), s.p.cfg.QueueFrames)
	}
	fresh := len(s.pending) == 0 && s.enqAt.IsZero()
	s.pending = append(s.pending, cellIDs...)
	wake := !s.enqueued && !s.processing
	if wake {
		s.enqueued = true
	}
	if (fresh || wake) && s.timing() {
		now := time.Now()
		if fresh {
			s.enqAt = now
		}
		if wake {
			s.wakeAt = now
		}
	}
	s.qmu.Unlock()

	telBatches.Inc()
	telFrames.Add(int64(len(cellIDs)))
	s.p.noteQueued(int64(len(cellIDs)))
	if wake {
		s.w.enqueue(s)
	}
	return nil
}

// timing reports whether queue-wait/worker-hop clock reads should run:
// telemetry is on or the engine's span sampler is armed. Called with qmu
// held; the engine's perf wiring is set before the stream is published and
// never changes, so reading it here is safe.
func (s *Stream) timing() bool {
	return telemetry.Enabled() || s.eng.PerfArmed()
}

// noteQueued moves the pool-wide queued-frame gauge by delta and maintains
// the high-watermark gauge.
func (p *Pool) noteQueued(delta int64) {
	depth := p.queued.Add(delta)
	telQueueFrames.Set(float64(depth))
	for {
		hw := p.queuedHW.Load()
		if depth <= hw {
			return
		}
		if p.queuedHW.CompareAndSwap(hw, depth) {
			telQueueDepth.Set(float64(depth))
			return
		}
	}
}

// QueueDepthHW returns the deepest the pool-wide frame backlog has run.
func (p *Pool) QueueDepthHW() int64 { return p.queuedHW.Load() }

// runPass is one worker visit: swap out everything pending, run it through
// the engine, then reschedule if more arrived meanwhile. Only the pinned
// worker calls it, so engine access is serialised per stream while other
// streams' passes run on other workers.
func (s *Stream) runPass() {
	s.qmu.Lock()
	batch := s.pending
	s.pending = nil
	s.inflight = len(batch)
	s.enqueued = false
	s.processing = true
	// Close the queue-wait (first frame of the generation → pass start) and
	// worker-hop (wake signal → pass start) spans; attributed to the first
	// window the pass completes.
	var qwaitNS, hopNS int64
	if !s.enqAt.IsZero() {
		now := time.Now()
		qwaitNS = now.Sub(s.enqAt).Nanoseconds()
		if !s.wakeAt.IsZero() {
			hopNS = now.Sub(s.wakeAt).Nanoseconds()
		}
		s.enqAt, s.wakeAt = time.Time{}, time.Time{}
	}
	s.qmu.Unlock()

	if len(batch) > 0 {
		s.w.passes.Add(1)
		s.w.frames.Add(int64(len(batch)))
		s.emu.Lock()
		if qwaitNS > 0 {
			s.eng.AddPendingSpanNS(perfobs.StageQueueWait, qwaitNS)
			s.eng.AddPendingSpanNS(perfobs.StageWorkerHop, hopNS)
			if telemetry.Enabled() {
				telQueueWait.Observe(float64(qwaitNS) / 1e9)
				telWorkerHop.Observe(float64(hopNS) / 1e9)
			}
		}
		s.eng.PushFrames(batch)
		s.emu.Unlock()
		s.p.noteQueued(int64(-len(batch)))
	}

	s.qmu.Lock()
	s.inflight = 0
	s.processing = false
	again := len(s.pending) > 0
	if again {
		s.enqueued = true
		if !s.enqAt.IsZero() {
			// The re-enqueue is the wake signal for the leftover frames.
			s.wakeAt = time.Now()
		}
	} else {
		s.done.Broadcast()
	}
	s.qmu.Unlock()
	if again {
		s.w.enqueue(s)
	}
}

// waitIdle blocks until the stream has no queued or in-flight frames.
func (s *Stream) waitIdle() {
	s.qmu.Lock()
	for s.enqueued || s.processing || len(s.pending) > 0 {
		s.done.Wait()
	}
	s.qmu.Unlock()
}

// Detach removes the stream from the pool. With drain true, queued frames
// are processed and a final partial window flushed before return; with
// drain false, queued frames are dropped and the engine left as the last
// completed pass left it. Either way the stream stays readable (Stats,
// Matches) but rejects further pushes, and its id becomes reusable.
func (s *Stream) Detach(drain bool) {
	s.qmu.Lock()
	if s.detached {
		s.qmu.Unlock()
		return
	}
	s.detached = true
	if !drain {
		dropped := len(s.pending)
		s.pending = nil
		if dropped > 0 {
			s.p.noteQueued(int64(-dropped))
		}
	}
	s.qmu.Unlock()

	s.p.mu.Lock()
	closed := s.p.closed
	if s.p.streams[s.id] == s {
		delete(s.p.streams, s.id)
		telStreamsActive.Set(float64(len(s.p.streams)))
	}
	s.p.mu.Unlock()

	if drain && !closed {
		s.waitIdle()
		s.emu.Lock()
		s.eng.Flush()
		s.emu.Unlock()
	}
}

// Stats returns the stream's engine counters.
func (s *Stream) Stats() core.Stats {
	s.emu.Lock()
	defer s.emu.Unlock()
	return s.eng.Stats()
}

// Matches returns a copy of the matches reported so far.
func (s *Stream) Matches() []core.Match {
	s.emu.Lock()
	defer s.emu.Unlock()
	return append([]core.Match(nil), s.eng.Matches...)
}

// PlaneVersion returns the query-plane version the stream's last window
// ran against.
func (s *Stream) PlaneVersion() uint64 {
	s.emu.Lock()
	defer s.emu.Unlock()
	return s.eng.PlaneVersion()
}

// Pending returns the stream's queued plus in-flight frame count.
func (s *Stream) Pending() int {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return len(s.pending) + s.inflight
}

// worker drives the streams pinned to it, one ready-list pass at a time.
type worker struct {
	id    int
	mu    sync.Mutex
	cond  *sync.Cond
	ready []*Stream
	stop  bool

	// passes and frames count completed non-empty passes and the frames
	// they carried — the per-worker load surface of Pool.WorkerStats.
	passes atomic.Int64
	frames atomic.Int64
}

// WorkerStats describes one pool worker's load: how many streams hash to
// it, how much work it has done, and its current backlog.
type WorkerStats struct {
	// ID is the worker index streams are pinned to by id hash.
	ID int `json:"id"`
	// Streams is the number of attached streams pinned to this worker.
	Streams int `json:"streams"`
	// Passes and Frames count completed non-empty passes and their frames.
	Passes int64 `json:"passes"`
	Frames int64 `json:"frames"`
	// Ready is the worker's current ready-list length; QueuedFrames the
	// pending+in-flight frames across its pinned streams.
	Ready        int `json:"ready"`
	QueuedFrames int `json:"queuedFrames"`
}

// WorkerStats returns a per-worker load breakdown, ordered by worker id —
// the skew surface: a hot worker with many queued frames names the victim
// of an uneven stream-to-worker hash.
func (p *Pool) WorkerStats() []WorkerStats {
	out := make([]WorkerStats, len(p.workers))
	for i, w := range p.workers {
		w.mu.Lock()
		ready := len(w.ready)
		w.mu.Unlock()
		out[i] = WorkerStats{
			ID:     w.id,
			Passes: w.passes.Load(),
			Frames: w.frames.Load(),
			Ready:  ready,
		}
	}
	p.mu.Lock()
	streams := make([]*Stream, 0, len(p.streams))
	for _, s := range p.streams {
		streams = append(streams, s)
	}
	p.mu.Unlock()
	for _, s := range streams {
		out[s.w.id].Streams++
		out[s.w.id].QueuedFrames += s.Pending()
	}
	return out
}

func (w *worker) enqueue(s *Stream) {
	w.mu.Lock()
	w.ready = append(w.ready, s)
	w.mu.Unlock()
	w.cond.Signal()
}

func (w *worker) next() *Stream {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.ready) == 0 && !w.stop {
		w.cond.Wait()
	}
	if len(w.ready) == 0 {
		return nil
	}
	s := w.ready[0]
	w.ready = w.ready[1:]
	return s
}

func (w *worker) shutdown() {
	w.mu.Lock()
	w.stop = true
	w.mu.Unlock()
	w.cond.Broadcast()
}

func (w *worker) run() {
	for {
		s := w.next()
		if s == nil {
			return
		}
		s.runPass()
	}
}

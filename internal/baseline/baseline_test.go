package baseline

import (
	"math"
	"math/rand"
	"testing"
)

// featStream builds a d-dimensional feature stream; content determines the
// random walk's seed so different contents look different.
func featStream(content int64, frames, d int) [][]float64 {
	rng := rand.New(rand.NewSource(content))
	out := make([][]float64, frames)
	cur := make([]float64, d)
	for j := range cur {
		cur[j] = rng.Float64()
	}
	for i := range out {
		v := make([]float64, d)
		for j := range v {
			cur[j] += (rng.Float64() - 0.5) * 0.08
			if cur[j] < 0 {
				cur[j] = 0
			}
			if cur[j] > 1 {
				cur[j] = 1
			}
			v[j] = cur[j]
		}
		out[i] = v
	}
	return out
}

func push(m *Matcher, frames [][]float64) {
	for _, f := range frames {
		m.Push(f)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Kind: Kind(7), Threshold: 0.1, Gap: 5},
		{Kind: Seq, Threshold: -1, Gap: 5},
		{Kind: Seq, Threshold: 0.1, Gap: 0},
		{Kind: Warp, Threshold: 0.1, Gap: 5, Band: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestSeqDetectsExactCopy(t *testing.T) {
	q := featStream(1, 40, 5)
	m, err := New(Config{Kind: Seq, Threshold: 0.05, Gap: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddQuery(1, q); err != nil {
		t.Fatal(err)
	}
	push(m, featStream(2, 60, 5))
	push(m, q)
	push(m, featStream(3, 60, 5))
	if len(m.Matches) == 0 {
		t.Fatal("exact copy not detected by Seq")
	}
	// Match should land just after the copy ends (frames 60..100, gap 5).
	ok := false
	for _, mt := range m.Matches {
		if mt.QueryID == 1 && mt.EndFrame >= 100 && mt.EndFrame <= 105 {
			ok = true
		}
	}
	if !ok {
		t.Errorf("no match at the copy's end: %+v", m.Matches)
	}
}

func TestWarpDetectsExactCopy(t *testing.T) {
	q := featStream(4, 40, 5)
	m, _ := New(Config{Kind: Warp, Threshold: 0.05, Gap: 5, Band: 4})
	m.AddQuery(1, q)
	push(m, featStream(5, 60, 5))
	push(m, q)
	push(m, featStream(6, 60, 5))
	if len(m.Matches) == 0 {
		t.Fatal("exact copy not detected by Warp")
	}
}

func TestNoFalseMatchOnDistinctContent(t *testing.T) {
	q := featStream(7, 40, 5)
	for _, k := range []Kind{Seq, Warp} {
		m, _ := New(Config{Kind: k, Threshold: 0.02, Gap: 5, Band: 4})
		m.AddQuery(1, q)
		push(m, featStream(8, 300, 5))
		if len(m.Matches) != 0 {
			t.Errorf("%v produced %d false matches", k, len(m.Matches))
		}
	}
}

// TestWarpToleratesLocalShift: a copy with a small temporal stutter should
// still be matched by Warp (with sufficient band) at a threshold where Seq
// misses it.
func TestWarpToleratesLocalShift(t *testing.T) {
	q := featStream(9, 40, 5)
	// Local variation: drop 2 frames and duplicate 2 others.
	shifted := make([][]float64, 0, 40)
	for i, f := range q {
		if i == 10 || i == 25 {
			continue // dropped
		}
		shifted = append(shifted, f)
		if i == 15 || i == 30 {
			shifted = append(shifted, f) // stutter
		}
	}
	dist := func(k Kind, band int) float64 {
		m, _ := New(Config{Kind: k, Threshold: math.Inf(1), Gap: len(shifted), Band: band})
		m.AddQuery(1, q)
		push(m, shifted)
		if len(m.Matches) == 0 {
			t.Fatalf("%v produced no evaluation", k)
		}
		return m.Matches[0].Distance
	}
	seqD := dist(Seq, 0)
	warpD := dist(Warp, 6)
	if warpD >= seqD {
		t.Errorf("Warp distance %g not below Seq distance %g on locally shifted copy", warpD, seqD)
	}
}

// TestBaselinesFailOnReorderedCopy documents the weakness the paper
// exploits: after segment reordering, both baselines report large distances
// even though the content is identical.
func TestBaselinesFailOnReorderedCopy(t *testing.T) {
	q := featStream(10, 60, 5)
	reordered := append(append(append([][]float64{}, q[40:]...), q[:20]...), q[20:40]...)
	for _, tc := range []struct {
		kind Kind
		band int
	}{{Seq, 0}, {Warp, 6}} {
		m, _ := New(Config{Kind: tc.kind, Threshold: math.Inf(1), Gap: 60, Band: tc.band})
		m.AddQuery(1, q)
		push(m, reordered)
		if len(m.Matches) == 0 {
			t.Fatalf("%v produced no evaluation", tc.kind)
		}
		exact := func() float64 {
			me, _ := New(Config{Kind: tc.kind, Threshold: math.Inf(1), Gap: 60, Band: tc.band})
			me.AddQuery(1, q)
			push(me, q)
			return me.Matches[0].Distance
		}()
		if m.Matches[0].Distance < 5*exact+0.01 {
			t.Errorf("%v: reordered distance %g too close to exact distance %g",
				tc.kind, m.Matches[0].Distance, exact)
		}
	}
}

func TestWarpBandCostGrows(t *testing.T) {
	q := featStream(11, 50, 5)
	stream := featStream(12, 200, 5)
	cost := func(band int) int64 {
		m, _ := New(Config{Kind: Warp, Threshold: 0.01, Gap: 10, Band: band})
		m.AddQuery(1, q)
		push(m, stream)
		return m.FrameDistances
	}
	if c2, c8 := cost(2), cost(8); c8 <= c2 {
		t.Errorf("band 8 cost %d not above band 2 cost %d", c8, c2)
	}
}

func TestMultipleQueriesAndGap(t *testing.T) {
	q1 := featStream(13, 30, 5)
	q2 := featStream(14, 45, 5)
	m, _ := New(Config{Kind: Seq, Threshold: 0.05, Gap: 5})
	if err := m.AddQuery(1, q1); err != nil {
		t.Fatal(err)
	}
	if err := m.AddQuery(2, q2); err != nil {
		t.Fatal(err)
	}
	if err := m.AddQuery(2, q2); err == nil {
		t.Error("duplicate AddQuery accepted")
	}
	push(m, featStream(15, 50, 5))
	push(m, q2)
	push(m, featStream(16, 50, 5))
	var got1, got2 bool
	for _, mt := range m.Matches {
		if mt.QueryID == 1 {
			got1 = true
		}
		if mt.QueryID == 2 {
			got2 = true
		}
	}
	if got1 {
		t.Error("query 1 matched spuriously")
	}
	if !got2 {
		t.Error("query 2 copy missed")
	}
}

func TestRingBufferGrowthPreservesContent(t *testing.T) {
	// Adding a longer query mid-stream must keep the buffered tail intact.
	short := featStream(17, 10, 3)
	long := featStream(18, 30, 3)
	m, _ := New(Config{Kind: Seq, Threshold: 0.0, Gap: 1000, Band: 0})
	m.AddQuery(1, short)
	pre := featStream(19, 8, 3)
	push(m, pre)
	m.AddQuery(2, long)
	if m.n != 8 {
		t.Fatalf("ring lost frames on growth: n=%d", m.n)
	}
	w := m.window(8)
	for i := range w {
		if l1(w[i], pre[i]) != 0 {
			t.Fatalf("ring content corrupted at %d", i)
		}
	}
}

func TestEmptyQueryRejected(t *testing.T) {
	m, _ := New(Config{Kind: Seq, Threshold: 0.1, Gap: 5})
	if err := m.AddQuery(1, nil); err == nil {
		t.Error("empty query accepted")
	}
}

func TestWarpZeroBandEqualsSeqOnEqualLengths(t *testing.T) {
	q := featStream(20, 25, 4)
	w := featStream(21, 25, 4)
	ms, _ := New(Config{Kind: Seq, Threshold: math.Inf(1), Gap: 25})
	ms.AddQuery(1, q)
	push(ms, w)
	mw, _ := New(Config{Kind: Warp, Threshold: math.Inf(1), Gap: 25, Band: 0})
	mw.AddQuery(1, q)
	push(mw, w)
	// With band 0 the only warping path is the diagonal, so the (length-
	// normalised) DTW distance equals the Seq average distance.
	if math.Abs(ms.Matches[0].Distance-mw.Matches[0].Distance) > 1e-9 {
		t.Errorf("band-0 DTW %g != Seq %g", mw.Matches[0].Distance, ms.Matches[0].Distance)
	}
}

func BenchmarkSeqEvaluate(b *testing.B) {
	q := featStream(22, 60, 5)
	stream := featStream(23, 600, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, _ := New(Config{Kind: Seq, Threshold: 0.01, Gap: 10})
		m.AddQuery(1, q)
		push(m, stream)
	}
}

func BenchmarkWarpEvaluateBand8(b *testing.B) {
	q := featStream(22, 60, 5)
	stream := featStream(23, 600, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, _ := New(Config{Kind: Warp, Threshold: 0.01, Gap: 10, Band: 8})
		m.AddQuery(1, q)
		push(m, stream)
	}
}

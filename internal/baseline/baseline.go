// Package baseline implements the two subsequence-matching comparators of
// the paper's Section VI.E study:
//
//   - Seq, after Hampapur et al. [1]: a query-length window slides over the
//     stream with a fixed gap; similarity is the average per-frame feature
//     distance of the aligned frames.
//   - Warp, after Chiu et al. [6]: the same sliding window scored by dynamic
//     time warping with a Sakoe–Chiba band of width r, which tolerates
//     local temporal variations at a CPU cost that grows with r.
//
// Both operate on the same compressed-domain feature vectors as the sketch
// method ("To provide a fair comparison, we also use our compressed domain
// feature extraction method"), and both are expected to degrade on
// temporally reordered copies — which is the paper's point.
package baseline

import (
	"fmt"
	"math"
)

// Kind selects the matcher algorithm.
type Kind int

const (
	// Seq is frame-aligned average distance (Hampapur et al.).
	Seq Kind = iota
	// Warp is banded dynamic time warping (Chiu et al.).
	Warp
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == Warp {
		return "warp"
	}
	return "seq"
}

// Config parameterises a Matcher.
type Config struct {
	Kind Kind
	// Threshold is the maximum average per-frame distance for a match.
	Threshold float64
	// Gap is the sliding step in key frames (the baselines' "basic window").
	Gap int
	// Band is the Sakoe–Chiba band half-width r (Warp only, >= 0;
	// 0 degenerates to Seq alignment).
	Band int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Kind != Seq && c.Kind != Warp {
		return fmt.Errorf("baseline: unknown kind %d", c.Kind)
	}
	if c.Threshold < 0 {
		return fmt.Errorf("baseline: negative threshold")
	}
	if c.Gap <= 0 {
		return fmt.Errorf("baseline: gap %d must be positive", c.Gap)
	}
	if c.Band < 0 {
		return fmt.Errorf("baseline: band %d must be >= 0", c.Band)
	}
	return nil
}

// Match is one detection.
type Match struct {
	QueryID  int
	EndFrame int // key-frame index just past the matching window
	Distance float64
}

// Matcher is the streaming baseline detector. Feed key-frame feature
// vectors via Push; matches accumulate in Matches.
type Matcher struct {
	cfg     Config
	queries map[int][][]float64
	maxLen  int
	buf     [][]float64 // ring of the last maxLen frames
	start   int         // ring start
	n       int         // frames in ring
	frame   int         // total frames consumed
	Matches []Match
	// FrameDistances counts elementary frame-pair distance computations,
	// the CPU proxy for the Fig. 12 comparison.
	FrameDistances int64
}

// New builds a matcher.
func New(cfg Config) (*Matcher, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Matcher{cfg: cfg, queries: make(map[int][][]float64)}, nil
}

// AddQuery registers a query's feature sequence.
func (m *Matcher) AddQuery(id int, feats [][]float64) error {
	if len(feats) == 0 {
		return fmt.Errorf("baseline: query %d empty", id)
	}
	if _, dup := m.queries[id]; dup {
		return fmt.Errorf("baseline: query %d already registered", id)
	}
	m.queries[id] = feats
	if len(feats) > m.maxLen {
		m.maxLen = len(feats)
		// Grow the ring, preserving content order.
		old := m.window(m.n)
		m.buf = make([][]float64, m.maxLen)
		copy(m.buf, old)
		m.start = 0
		m.n = len(old)
	}
	return nil
}

// Push consumes the next key-frame feature vector, evaluating all queries
// every Gap frames.
func (m *Matcher) Push(vec []float64) {
	if m.maxLen == 0 {
		m.frame++
		return
	}
	pos := (m.start + m.n) % m.maxLen
	if m.n == m.maxLen {
		m.buf[m.start] = vec
		m.start = (m.start + 1) % m.maxLen
	} else {
		m.buf[pos] = vec
		m.n++
	}
	m.frame++
	if m.frame%m.cfg.Gap == 0 {
		m.evaluate()
	}
}

// window returns the last n buffered frames in stream order.
func (m *Matcher) window(n int) [][]float64 {
	out := make([][]float64, 0, n)
	for i := m.n - n; i < m.n; i++ {
		out = append(out, m.buf[(m.start+i)%m.maxLen])
	}
	return out
}

// evaluate scores every query whose window fits in the buffer.
func (m *Matcher) evaluate() {
	for id, q := range m.queries {
		if m.n < len(q) {
			continue
		}
		w := m.window(len(q))
		var d float64
		if m.cfg.Kind == Seq {
			d = m.seqDistance(q, w)
		} else {
			d = m.warpDistance(q, w)
		}
		if d <= m.cfg.Threshold {
			m.Matches = append(m.Matches, Match{QueryID: id, EndFrame: m.frame, Distance: d})
		}
	}
}

// seqDistance is the average aligned frame distance.
func (m *Matcher) seqDistance(q, w [][]float64) float64 {
	var s float64
	for i := range q {
		s += l1(q[i], w[i])
	}
	m.FrameDistances += int64(len(q))
	return s / float64(len(q))
}

// warpDistance is banded DTW, normalised by the query length. Cells outside
// the band are unreachable; the band is widened to at least the length
// difference so a path always exists.
func (m *Matcher) warpDistance(q, w [][]float64) float64 {
	n, l := len(q), len(w)
	band := m.cfg.Band
	if diff := abs(n - l); band < diff {
		band = diff
	}
	const inf = math.MaxFloat64 / 4
	prev := make([]float64, l+1)
	cur := make([]float64, l+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := range cur {
			cur[j] = inf
		}
		jLo := max(1, i-band)
		jHi := min(l, i+band)
		for j := jLo; j <= jHi; j++ {
			c := l1(q[i-1], w[j-1])
			m.FrameDistances++
			best := prev[j-1]
			if prev[j] < best {
				best = prev[j]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			cur[j] = c + best
		}
		prev, cur = cur, prev
	}
	if prev[l] >= inf {
		return math.Inf(1)
	}
	return prev[l] / float64(n)
}

func l1(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

package telemetry

import (
	"math"
	"strings"
	"testing"
)

// buildScrape renders a registry exercising every metric kind and a tricky
// label value.
func buildScrape(t *testing.T) (*Registry, string) {
	t.Helper()
	r := NewRegistry()
	c := r.Counter("vcd_things_total", "Things, counted.")
	c.Add(7)
	g := r.Gauge("vcd_level", "A level.", L("name", `we"ird\v`))
	g.Set(1.25)
	h := r.Histogram("vcd_dur_seconds", "Durations.", []float64{0.001, 0.01, 0.1}, L("stage", "probe"))
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return r, b.String()
}

func TestWritePrometheusRoundTrip(t *testing.T) {
	_, text := buildScrape(t)
	e, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseExposition: %v\nscrape:\n%s", err, text)
	}

	if e.Type["vcd_things_total"] != "counter" {
		t.Errorf("vcd_things_total TYPE = %q, want counter", e.Type["vcd_things_total"])
	}
	if e.Type["vcd_level"] != "gauge" || e.Type["vcd_dur_seconds"] != "histogram" {
		t.Errorf("TYPE lines wrong: %v", e.Type)
	}
	if e.Help["vcd_things_total"] != "Things, counted." {
		t.Errorf("HELP = %q", e.Help["vcd_things_total"])
	}

	if v, ok := e.Value("vcd_things_total"); !ok || v != 7 {
		t.Errorf("vcd_things_total = %v (ok=%v), want 7", v, ok)
	}
	if v, ok := e.Value("vcd_level", L("name", `we"ird\v`)); !ok || v != 1.25 {
		t.Errorf("escaped-label gauge = %v (ok=%v), want 1.25", v, ok)
	}

	// Histogram: cumulative buckets, +Inf == _count, _sum matches.
	want := map[string]float64{"0.001": 1, "0.01": 1, "0.1": 2, "+Inf": 3}
	for le, wv := range want {
		if v, ok := e.Value("vcd_dur_seconds_bucket", L("stage", "probe"), L("le", le)); !ok || v != wv {
			t.Errorf("bucket le=%s = %v (ok=%v), want %v", le, v, ok, wv)
		}
	}
	if v, ok := e.Value("vcd_dur_seconds_count", L("stage", "probe")); !ok || v != 3 {
		t.Errorf("_count = %v (ok=%v), want 3", v, ok)
	}
	if v, ok := e.Value("vcd_dur_seconds_sum", L("stage", "probe")); !ok || math.Abs(v-5.0505) > 1e-9 {
		t.Errorf("_sum = %v (ok=%v), want 5.0505", v, ok)
	}
}

// TestBucketsCumulative asserts the rendered bucket series never
// decreases — the invariant Prometheus servers enforce on ingest.
func TestBucketsCumulative(t *testing.T) {
	_, text := buildScrape(t)
	e, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	last := -1.0
	for _, s := range e.Samples {
		if s.Name != "vcd_dur_seconds_bucket" {
			continue
		}
		if s.Value < last {
			t.Fatalf("bucket series decreased: le=%s value=%g after %g", s.Labels["le"], s.Value, last)
		}
		last = s.Value
	}
	if last < 0 {
		t.Fatal("no bucket samples found")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"novalue\n",
		"# TYPE m sometype\nm 1\n",
		`m{x="unterminated} 1` + "\n",
		"orphan_sample 1\n", // sample before TYPE
	} {
		if _, err := ParseExposition(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseExposition accepted %q", bad)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{0, "0"}, {42, "42"}, {1e-6, "1e-06"}, {0.25, "0.25"}, {2.5, "2.5"},
	} {
		if got := formatFloat(tc.in); got != tc.want {
			t.Errorf("formatFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

package telemetry

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestParseToleratesPadding: trailing whitespace, carriage returns, tab
// separators, whitespace-only lines and trailing timestamps — the padding
// real scrapes pick up from proxies and shell pipelines — must parse to
// the same exposition as the clean text.
func TestParseToleratesPadding(t *testing.T) {
	clean := strings.Join([]string{
		"# HELP vcd_x_total Things.",
		"# TYPE vcd_x_total counter",
		"vcd_x_total 7",
		"# TYPE vcd_h histogram",
		`vcd_h_bucket{le="0.1"} 2`,
		`vcd_h_bucket{le="+Inf"} 3`,
		"vcd_h_sum 5.5",
		"vcd_h_count 3",
		"",
	}, "\n")
	padded := strings.Join([]string{
		"# HELP vcd_x_total Things.  ",
		"# TYPE vcd_x_total counter\r",
		"vcd_x_total\t7 1700000000000",
		"   ",
		"# TYPE vcd_h histogram ",
		`vcd_h_bucket{le="0.1"} 2  ` + "\r",
		`vcd_h_bucket{le="+Inf"}` + "\t3\t1700000000000\r",
		"vcd_h_sum 5.5 ",
		"vcd_h_count\t3",
		"",
	}, "\n")

	want, err := ParseExposition(strings.NewReader(clean))
	if err != nil {
		t.Fatalf("clean text: %v", err)
	}
	got, err := ParseExposition(strings.NewReader(padded))
	if err != nil {
		t.Fatalf("padded text: %v", err)
	}
	if !reflect.DeepEqual(got.Samples, want.Samples) {
		t.Errorf("padded parse diverges:\nclean:  %+v\npadded: %+v", want.Samples, got.Samples)
	}
	if got.Type["vcd_h"] != "histogram" || got.Help["vcd_x_total"] != "Things." {
		t.Errorf("metadata lost: type=%v help=%v", got.Type, got.Help)
	}
}

// TestBucketsRecoversBounds: the le labels come back as ordered floats
// with the +Inf bucket last, ready for QuantileFromCounts.
func TestBucketsRecoversBounds(t *testing.T) {
	_, text := buildScrape(t)
	e, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	bounds, counts, ok := e.Buckets("vcd_dur_seconds", L("stage", "probe"))
	if !ok {
		t.Fatal("no buckets found")
	}
	if len(bounds) != 4 || !math.IsInf(bounds[3], 1) {
		t.Fatalf("bounds = %v, want 4 with +Inf last", bounds)
	}
	wantBounds := []float64{0.001, 0.01, 0.1}
	for i, b := range wantBounds {
		if bounds[i] != b {
			t.Errorf("bounds[%d] = %g, want %g", i, bounds[i], b)
		}
	}
	if want := []float64{1, 1, 2, 3}; !reflect.DeepEqual(counts, want) {
		t.Errorf("counts = %v, want %v", counts, want)
	}
	if _, _, ok := e.Buckets("vcd_dur_seconds", L("stage", "nope")); ok {
		t.Error("Buckets matched a non-existent label set")
	}
}

// TestLintHistograms: a well-formed scrape lints clean; dropping the +Inf
// bucket, breaking monotonicity or desyncing _count each trip it.
func TestLintHistograms(t *testing.T) {
	_, text := buildScrape(t)
	e, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.LintHistograms(); err != nil {
		t.Errorf("well-formed scrape failed lint: %v", err)
	}

	for name, mangle := range map[string]func(string) string{
		"missing +Inf": func(s string) string {
			return strings.ReplaceAll(s, `le="+Inf"`, `le="9"`)
		},
		"non-monotone": func(s string) string {
			return strings.Replace(s, `le="0.01"} 1`, `le="0.01"} 0`, 1)
		},
		"count desync": func(s string) string {
			return strings.Replace(s, "vcd_dur_seconds_count{stage=\"probe\"} 3",
				"vcd_dur_seconds_count{stage=\"probe\"} 4", 1)
		},
	} {
		bad := mangle(text)
		if bad == text {
			t.Fatalf("%s: mangle had no effect", name)
		}
		e, err := ParseExposition(strings.NewReader(bad))
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if err := e.LintHistograms(); err == nil {
			t.Errorf("%s: lint accepted a broken histogram", name)
		}
	}
}

// TestRoundTripThroughPadding: render → pad → parse → the quantile math
// still works off the recovered buckets, closing the loop the perf-smoke
// gate relies on.
func TestRoundTripThroughPadding(t *testing.T) {
	_, text := buildScrape(t)
	padded := strings.ReplaceAll(text, "\n", " \r\n")
	e, err := ParseExposition(strings.NewReader(padded))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.LintHistograms(); err != nil {
		t.Fatal(err)
	}
	bounds, counts, ok := e.Buckets("vcd_dur_seconds", L("stage", "probe"))
	if !ok {
		t.Fatal("no buckets")
	}
	// Convert cumulative to per-bucket counts for QuantileFromCounts.
	per := make([]int64, len(counts))
	prev := 0.0
	for i, c := range counts {
		per[i] = int64(c - prev)
		prev = c
	}
	q := QuantileFromCounts(bounds[:len(bounds)-1], per, 0.5)
	if q <= 0 {
		t.Errorf("median from recovered buckets = %g, want > 0", q)
	}
}

package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("Value = %d, want 42", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(1.5)
	g.Dec()
	if got := g.Value(); got != 3 {
		t.Errorf("Value = %g, want 3", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "test", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 1, 5, 100} {
		h.Observe(v)
	}
	// Boundaries are inclusive upper bounds: 0.05,0.1 → le=0.1;
	// 0.5,1 → le=1; 5 → le=10; 100 → +Inf.
	var buckets [4]int64
	sum := h.snapshot(buckets[:])
	want := [4]int64{2, 2, 1, 1}
	if buckets != want {
		t.Errorf("buckets = %v, want %v", buckets, want)
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d, want 6", h.Count())
	}
	if math.Abs(sum-106.65) > 1e-9 {
		t.Errorf("Sum = %g, want 106.65", sum)
	}
}

func TestObserveDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "test", DurationBuckets)
	h.ObserveDuration(3 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1", h.Count())
	}
	if got := h.Sum(); math.Abs(got-0.003) > 1e-12 {
		t.Errorf("Sum = %g, want 0.003", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "help", L("shard", "0"))
	b := r.Counter("c_total", "help", L("shard", "0"))
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	c := r.Counter("c_total", "help", L("shard", "1"))
	if a == c {
		t.Error("distinct labels returned the same counter")
	}
	// Label order must not matter.
	x := r.Gauge("g", "help", L("a", "1"), L("b", "2"))
	y := r.Gauge("g", "help", L("b", "2"), L("a", "1"))
	if x != y {
		t.Error("label order changed metric identity")
	}
}

func TestRegistryTypeClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Error("registering m as gauge after counter did not panic")
		}
	}()
	r.Gauge("m", "help")
}

// TestZeroAllocObservation is the ISSUE 4 acceptance gate: a histogram
// observation, a counter add and a gauge add must not allocate — they run
// inside the per-window matching kernel.
func TestZeroAllocObservation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "test", DurationBuckets)
	var c Counter
	var g Gauge
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.0042) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %.1f times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.ObserveDuration(42 * time.Microsecond) }); n != 0 {
		t.Errorf("Histogram.ObserveDuration allocates %.1f times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Errorf("Counter.Add allocates %.1f times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Add(1.5) }); n != 0 {
		t.Errorf("Gauge.Add allocates %.1f times per call, want 0", n)
	}
}

// TestConcurrentObservation hammers one histogram and counter from many
// goroutines while a renderer scrapes, for the race detector's benefit,
// and checks nothing is lost.
func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "test", DurationBuckets)
	c := r.Counter("c_total", "test")
	const (
		workers = 8
		perW    = 2000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var sb nopWriter
				if err := r.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < workers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < perW; i++ {
				h.Observe(float64(i%10) * 1e-4)
				c.Inc()
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if got := h.Count(); got != workers*perW {
		t.Errorf("histogram count = %d, want %d", got, workers*perW)
	}
	if got := c.Value(); got != workers*perW {
		t.Errorf("counter = %d, want %d", got, workers*perW)
	}
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }

func TestSetEnabled(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	if Enabled() {
		t.Error("Enabled() true after SetEnabled(false)")
	}
	if was := SetEnabled(true); was {
		t.Error("SetEnabled did not report previous value")
	}
	if !Enabled() {
		t.Error("Enabled() false after SetEnabled(true)")
	}
}

func TestDurationBucketsAscending(t *testing.T) {
	for i := 1; i < len(DurationBuckets); i++ {
		if DurationBuckets[i] <= DurationBuckets[i-1] {
			t.Fatalf("DurationBuckets not ascending at %d", i)
		}
	}
}

package telemetry

import (
	"math"
	"testing"
	"time"
)

func TestQuantileFromCountsEmpty(t *testing.T) {
	if q := QuantileFromCounts(DurationBuckets, make([]int64, len(DurationBuckets)+1), 0.99); q != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", q)
	}
}

func TestQuantileFromCountsSingleBucket(t *testing.T) {
	bounds := []float64{1, 2, 4}
	counts := []int64{0, 10, 0, 0} // all observations in (1, 2]
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := QuantileFromCounts(bounds, counts, q)
		if got < 1 || got > 2 {
			t.Errorf("q=%g: %g outside the covering bucket (1, 2]", q, got)
		}
	}
	// Interpolation is monotone within the bucket.
	if lo, hi := QuantileFromCounts(bounds, counts, 0.1), QuantileFromCounts(bounds, counts, 0.9); lo >= hi {
		t.Errorf("quantiles not monotone: q10=%g >= q90=%g", lo, hi)
	}
}

func TestQuantileFromCountsSpread(t *testing.T) {
	bounds := []float64{1, 2, 4}
	counts := []int64{50, 30, 20, 0}
	if q := QuantileFromCounts(bounds, counts, 0.5); q > 1 {
		t.Errorf("median %g, want within first bucket (≤1)", q)
	}
	if q := QuantileFromCounts(bounds, counts, 0.99); q < 2 || q > 4 {
		t.Errorf("p99 %g, want in (2, 4]", q)
	}
}

func TestQuantileFromCountsInfBucket(t *testing.T) {
	bounds := []float64{1, 2}
	counts := []int64{0, 0, 5} // everything beyond the top bound
	if q := QuantileFromCounts(bounds, counts, 0.5); q != 2 {
		t.Errorf("+Inf-bucket quantile = %g, want the top finite bound 2", q)
	}
}

func TestQuantileFromCountsClampsQ(t *testing.T) {
	bounds := []float64{1}
	counts := []int64{4, 0}
	if a, b := QuantileFromCounts(bounds, counts, -3), QuantileFromCounts(bounds, counts, 0); a != b {
		t.Errorf("q<0 not clamped: %g vs %g", a, b)
	}
	if a, b := QuantileFromCounts(bounds, counts, 7), QuantileFromCounts(bounds, counts, 1); a != b {
		t.Errorf("q>1 not clamped: %g vs %g", a, b)
	}
}

func TestHistogramQuantileAndSnapshot(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_test_seconds", "test", DurationBuckets)
	for i := 0; i < 99; i++ {
		h.ObserveDuration(100 * time.Microsecond)
	}
	h.ObserveDuration(100 * time.Millisecond)

	// 99 of 100 observations sit at 100µs; the p50 must be in that bucket
	// and the p100 in the 100ms one.
	if q := h.Quantile(0.5); q > 2.5e-4 {
		t.Errorf("p50 = %g s, want ≤ 250µs", q)
	}
	if q := h.Quantile(1); q < 5e-2 || q > 1e-1 {
		t.Errorf("p100 = %g s, want in (50ms, 100ms]", q)
	}

	bounds, counts, sum := h.Snapshot()
	var n int64
	for _, c := range counts {
		n += c
	}
	if n != 100 {
		t.Errorf("snapshot counts sum to %d, want 100", n)
	}
	if len(counts) != len(bounds)+1 {
		t.Errorf("snapshot layout: %d counts for %d bounds", len(counts), len(bounds))
	}
	want := 99*1e-4 + 1e-1
	if math.Abs(sum-want) > 1e-9 {
		t.Errorf("snapshot sum = %g, want %g", sum, want)
	}

	// Delta of two snapshots isolates the observations in between.
	_, before, _ := h.Snapshot()
	h.ObserveDuration(time.Second)
	_, after, _ := h.Snapshot()
	delta := make([]int64, len(after))
	for i := range after {
		delta[i] = after[i] - before[i]
	}
	if q := QuantileFromCounts(bounds, delta, 0.5); q < 0.5 || q > 1 {
		t.Errorf("delta median = %g s, want in (0.5, 1]", q)
	}
}

// Metric registry and Prometheus text exposition (format v0.0.4).
package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one constant key/value pair attached to a metric instance.
// Instances of one family (same name) differ only in their label sets.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricKind discriminates family types for the TYPE line.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one labeled instance inside a family.
type metric struct {
	labels []Label // sorted by key
	sig    string  // canonical label signature for get-or-create
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every instance sharing a metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	bounds  []float64 // histograms only
	metrics []*metric // insertion order; sorted at render time
	bySig   map[string]*metric
}

// Registry holds metric families. Registration (Counter/Gauge/Histogram)
// is get-or-create and safe for concurrent use; it locks and may allocate,
// so resolve handles at construction time, not on hot paths. The zero
// value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry every subsystem registers into and
// GET /metrics renders.
var Default = NewRegistry()

// Counter returns the counter with the given name and labels, creating it
// (and its family, with the given help text) on first use. Panics if the
// name is already registered as a different type — metric names are a
// process-wide contract, and a type clash is a programming error.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.getOrCreate(name, help, kindCounter, nil, labels)
	return m.c
}

// Gauge is Counter for gauges.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.getOrCreate(name, help, kindGauge, nil, labels)
	return m.g
}

// Histogram is Counter for histograms. bounds are ascending upper bucket
// bounds (the +Inf bucket is implicit); every instance of one family must
// use identical bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending at %d", name, i))
		}
	}
	m := r.getOrCreate(name, help, kindHistogram, bounds, labels)
	return m.h
}

func (r *Registry) getOrCreate(name, help string, kind metricKind, bounds []float64, labels []Label) *metric {
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	sig := labelSignature(sorted)

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, bySig: make(map[string]*metric)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	if m := f.bySig[sig]; m != nil {
		return m
	}
	m := &metric{labels: sorted, sig: sig}
	switch kind {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	case kindHistogram:
		m.h = newHistogram(f.bounds)
	}
	f.bySig[sig] = m
	f.metrics = append(f.metrics, m)
	return m
}

func labelSignature(sorted []Label) string {
	if len(sorted) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range sorted {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

// WritePrometheus renders every family in registration order as Prometheus
// text exposition format v0.0.4. The family/metric set is frozen under the
// registry lock first; values are then read atomically per metric, and a
// histogram's _count is computed from the bucket counts read in the same
// pass, so each scrape is internally consistent per metric (cross-metric
// consistency is best-effort, as in every atomic-based client).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	snaps := make([][]*metric, len(fams))
	for i, f := range fams {
		ms := append([]*metric(nil), f.metrics...)
		sort.Slice(ms, func(a, b int) bool { return ms[a].sig < ms[b].sig })
		snaps[i] = ms
	}
	r.mu.Unlock()

	var b strings.Builder
	var buckets []int64
	for i, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, m := range snaps[i] {
			switch f.kind {
			case kindCounter:
				writeSample(&b, f.name, "", m.labels, "", float64(m.c.Value()))
			case kindGauge:
				writeSample(&b, f.name, "", m.labels, "", m.g.Value())
			case kindHistogram:
				if cap(buckets) < len(f.bounds)+1 {
					buckets = make([]int64, len(f.bounds)+1)
				}
				buckets = buckets[:len(f.bounds)+1]
				sum := m.h.snapshot(buckets)
				var cum int64
				for bi, bound := range f.bounds {
					cum += buckets[bi]
					writeSample(&b, f.name, "_bucket", m.labels, formatFloat(bound), float64(cum))
				}
				cum += buckets[len(f.bounds)]
				writeSample(&b, f.name, "_bucket", m.labels, "+Inf", float64(cum))
				writeSample(&b, f.name, "_sum", m.labels, "", sum)
				writeSample(&b, f.name, "_count", m.labels, "", float64(cum))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSample emits one sample line. le, when non-empty, is appended as the
// histogram bucket bound label.
func writeSample(b *strings.Builder, name, suffix string, labels []Label, le string, v float64) {
	b.WriteString(name)
	b.WriteString(suffix)
	if len(labels) > 0 || le != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Key)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(`le="`)
			b.WriteString(le)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// formatFloat renders a value the way Prometheus parsers expect: integers
// without an exponent or trailing zeros, everything else in shortest form.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// Handler returns an http.Handler that renders the registry — mount it at
// GET /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Package telemetry is the production observability core of the VDSMS: an
// allocation-free, concurrency-safe metrics library (atomic counters,
// gauges and fixed-boundary latency histograms) plus a Registry that
// snapshots consistently and renders the Prometheus text exposition format
// v0.0.4 — stdlib only, no client library.
//
// Design constraints, in order:
//
//  1. Hot-path observations (Counter.Add, Histogram.Observe) must be
//     wait-free-ish atomic operations with zero heap allocations — they sit
//     inside the per-window matching kernel, whose budget is microseconds.
//  2. Metric handles are resolved once, at construction time, through the
//     Registry (which locks); the hot path then holds direct pointers and
//     never touches a map or a lock again.
//  3. Rendering walks a point-in-time snapshot: the metric set is frozen
//     under the registry lock, each metric's value is read atomically, and
//     a histogram's _count is derived from its bucket counts so buckets and
//     count can never disagree within one scrape.
//
// The package-level Enabled flag gates the *timing* call sites (the
// time.Now pairs around pipeline stages), letting benchmarks measure the
// kernel with instrumentation compiled in but cold. Counters are so cheap
// they stay on unconditionally.
package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// enabled gates stage-timing instrumentation. Histogram/Counter methods
// always work; callers use Enabled() to skip the clock reads that feed
// them. Default on: observability is a production default, not an opt-in.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enabled reports whether stage-timing instrumentation should run.
func Enabled() bool { return enabled.Load() }

// SetEnabled toggles stage-timing instrumentation process-wide and returns
// the previous value (so benchmarks can restore it).
func SetEnabled(on bool) bool { return enabled.Swap(on) }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for Prometheus counter semantics).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta with a CAS loop (allocation-free).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Inc adds one. Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-boundary Prometheus-style histogram. Boundaries are
// upper bucket bounds in ascending order; an implicit +Inf bucket catches
// the tail. Observation is a linear scan over the pre-computed bounds (the
// default latency layout has 20 — a scan beats binary search at this size)
// plus two atomic operations; it performs zero heap allocations.
type Histogram struct {
	bounds []float64      // ascending upper bounds, +Inf implicit
	counts []atomic.Int64 // len(bounds)+1, non-cumulative
	sum    atomic.Uint64  // float64 bits of the observation sum, CAS-added
}

// newHistogram builds a histogram over the given bounds. The Registry is
// the only constructor path, so bounds are validated there.
func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot reads the bucket counts (non-cumulative) and sum. The count is
// derived from the buckets by the renderer so the two always agree.
func (h *Histogram) snapshot(buckets []int64) (sum float64) {
	for i := range h.counts {
		buckets[i] = h.counts[i].Load()
	}
	return h.Sum()
}

// Snapshot returns the histogram's bucket bounds (shared — do not modify),
// a copy of the non-cumulative bucket counts (the final entry is the
// implicit +Inf bucket) and the observation sum. Callers that diff two
// snapshots get the distribution of the observations in between.
func (h *Histogram) Snapshot() (bounds []float64, counts []int64, sum float64) {
	counts = make([]int64, len(h.counts))
	sum = h.snapshot(counts)
	return h.bounds, counts, sum
}

// Quantile estimates the q-quantile (q in [0,1]) of every observation so
// far; see QuantileFromCounts for the estimation rule.
func (h *Histogram) Quantile(q float64) float64 {
	_, counts, _ := h.Snapshot()
	return QuantileFromCounts(h.bounds, counts, q)
}

// QuantileFromCounts estimates a quantile from non-cumulative bucket counts
// over the given bounds (len(counts) == len(bounds)+1, +Inf last — the
// Snapshot layout, or the delta of two snapshots). The estimate
// interpolates linearly within the covering bucket, Prometheus
// histogram_quantile-style; a quantile landing in the +Inf bucket returns
// the largest finite bound (a deliberate under-estimate: the layout's top
// bound caps what a bucketed histogram can claim). Returns 0 when there are
// no observations.
func QuantileFromCounts(bounds []float64, counts []int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total <= 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Nearest-rank target: the smallest observation count covering q of the
	// total. q=0 maps to rank 1, q=1 to rank total.
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		if cum+c < rank {
			cum += c
			continue
		}
		if i >= len(bounds) { // +Inf bucket
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		return lo + (hi-lo)*(float64(rank)-float64(cum))/float64(c)
	}
	return bounds[len(bounds)-1]
}

// DurationBuckets is the default latency layout: a 1–2.5–5 progression
// from 1µs to 2.5s (20 bounds + the implicit +Inf). It spans everything
// the pipeline produces — sub-10µs probe steps, millisecond windows,
// multi-millisecond fsyncs and second-scale checkpoint writes — with
// roughly constant relative resolution (see DESIGN.md §8).
var DurationBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1,
	1, 2.5,
}

// A minimal parser for the Prometheus text exposition format v0.0.4 — the
// inverse of WritePrometheus. It exists so tests (here and in
// internal/server) can validate scrapes structurally instead of grepping
// for substrings, and doubles as a debugging aid for operators without a
// Prometheus server at hand.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed sample line.
type Sample struct {
	// Name is the full sample name, including any _bucket/_sum/_count
	// suffix.
	Name   string
	Labels map[string]string
	Value  float64
}

// Exposition is a parsed scrape.
type Exposition struct {
	// Help and Type map family names to their HELP and TYPE lines.
	Help, Type map[string]string
	Samples    []Sample
}

// Value returns the value of the sample with the given name whose labels
// include every given pair, and whether one exists.
func (e *Exposition) Value(name string, labels ...Label) (float64, bool) {
	for _, s := range e.Samples {
		if s.Name != name {
			continue
		}
		ok := true
		for _, l := range labels {
			if s.Labels[l.Key] != l.Value {
				ok = false
				break
			}
		}
		if ok {
			return s.Value, true
		}
	}
	return 0, false
}

// ParseExposition parses text exposition format v0.0.4, enforcing the
// structural rules WritePrometheus relies on: TYPE precedes a family's
// samples, sample lines are well-formed, and values parse as floats
// (+Inf included — histogram +Inf buckets round-trip). Tolerated beyond
// what WritePrometheus emits, because scrapes pass through proxies and
// shell pipelines that pad them: trailing whitespace and carriage returns
// on any line, tabs as field separators, and an optional trailing
// timestamp after a sample value.
func ParseExposition(r io.Reader) (*Exposition, error) {
	e := &Exposition{Help: make(map[string]string), Type: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, found := strings.Cut(rest, " ")
			if !found || name == "" {
				return nil, fmt.Errorf("line %d: malformed HELP", lineNo)
			}
			e.Help[name] = help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, found := strings.Cut(rest, " ")
			if !found || name == "" {
				return nil, fmt.Errorf("line %d: malformed TYPE", lineNo)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown type %q", lineNo, typ)
			}
			e.Type[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if _, ok := e.Type[familyOf(s.Name)]; !ok {
			return nil, fmt.Errorf("line %d: sample %s before its TYPE line", lineNo, s.Name)
		}
		e.Samples = append(e.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return e, nil
}

// Buckets returns the cumulative bucket counts of the histogram family
// with the given name and label subset, keyed by upper bound in ascending
// order with the +Inf bucket last (bounds come back as floats, "+Inf"
// parsing to math.Inf(1)). ok is false when no bucket sample matched.
func (e *Exposition) Buckets(family string, labels ...Label) (bounds, counts []float64, ok bool) {
	type bc struct{ bound, count float64 }
	var got []bc
	for _, s := range e.Samples {
		if s.Name != family+"_bucket" {
			continue
		}
		match := true
		for _, l := range labels {
			if s.Labels[l.Key] != l.Value {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		le, err := parseBound(s.Labels["le"])
		if err != nil {
			continue
		}
		got = append(got, bc{le, s.Value})
	}
	if len(got) == 0 {
		return nil, nil, false
	}
	sort.Slice(got, func(i, j int) bool { return got[i].bound < got[j].bound })
	for _, b := range got {
		bounds = append(bounds, b.bound)
		counts = append(counts, b.count)
	}
	return bounds, counts, true
}

// parseBound parses an le label value, accepting the +Inf spellings the
// exposition format allows.
func parseBound(v string) (float64, error) {
	switch v {
	case "+Inf", "Inf", "inf":
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(v, 64)
}

// LintHistograms applies the structural invariants of well-formed
// histogram families to a parsed scrape: every family typed histogram has
// a +Inf bucket, bucket counts are non-decreasing in the bound, and the
// +Inf bucket equals the family's _count sample. Returns the first
// violation found.
func (e *Exposition) LintHistograms() error {
	for family, typ := range e.Type {
		if typ != "histogram" {
			continue
		}
		// Partition this family's bucket samples by their non-le label sets.
		seen := map[string]bool{}
		for _, s := range e.Samples {
			if s.Name != family+"_bucket" {
				continue
			}
			var sel []Label
			for k, v := range s.Labels {
				if k != "le" {
					sel = append(sel, Label{k, v})
				}
			}
			sort.Slice(sel, func(i, j int) bool { return sel[i].Key < sel[j].Key })
			key := fmt.Sprint(sel)
			if seen[key] {
				continue
			}
			seen[key] = true
			bounds, counts, ok := e.Buckets(family, sel...)
			if !ok {
				return fmt.Errorf("histogram %s%v: no parsable buckets", family, sel)
			}
			if !math.IsInf(bounds[len(bounds)-1], 1) {
				return fmt.Errorf("histogram %s%v: missing +Inf bucket", family, sel)
			}
			for i := 1; i < len(counts); i++ {
				if counts[i] < counts[i-1] {
					return fmt.Errorf("histogram %s%v: bucket le=%g count %g < previous %g",
						family, sel, bounds[i], counts[i], counts[i-1])
				}
			}
			if cnt, ok := e.Value(family+"_count", sel...); ok && counts[len(counts)-1] != cnt {
				return fmt.Errorf("histogram %s%v: +Inf bucket %g != _count %g",
					family, sel, counts[len(counts)-1], cnt)
			}
		}
	}
	return nil
}

// familyOf strips the histogram sample suffixes from a sample name.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: make(map[string]string)}
	rest := line
	brace := strings.IndexByte(rest, '{')
	sep := strings.IndexAny(rest, " \t")
	if sep < 0 {
		return s, fmt.Errorf("no value separator in %q", line)
	}
	if brace >= 0 && brace < sep {
		s.Name = rest[:brace]
		end := strings.IndexByte(rest, '}')
		if end < brace {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[brace+1:end], s.Labels); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		s.Name = rest[:sep]
		rest = strings.TrimSpace(rest[sep+1:])
	}
	if s.Name == "" {
		return s, fmt.Errorf("empty sample name in %q", line)
	}
	// The format allows "value [timestamp]"; keep the value, drop the rest.
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", rest, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string, into map[string]string) error {
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq <= 0 || eq+1 >= len(body) || body[eq+1] != '"' {
			return fmt.Errorf("malformed label pair near %q", body)
		}
		key := body[:eq]
		rest := body[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			if rest[i] == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i+1])
				}
				i++
				continue
			}
			if rest[i] == '"' {
				break
			}
			val.WriteByte(rest[i])
		}
		if i == len(rest) {
			return fmt.Errorf("unterminated label value for %q", key)
		}
		into[key] = val.String()
		body = rest[i+1:]
		body = strings.TrimPrefix(body, ",")
	}
	return nil
}

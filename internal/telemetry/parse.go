// A minimal parser for the Prometheus text exposition format v0.0.4 — the
// inverse of WritePrometheus. It exists so tests (here and in
// internal/server) can validate scrapes structurally instead of grepping
// for substrings, and doubles as a debugging aid for operators without a
// Prometheus server at hand.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sample is one parsed sample line.
type Sample struct {
	// Name is the full sample name, including any _bucket/_sum/_count
	// suffix.
	Name   string
	Labels map[string]string
	Value  float64
}

// Exposition is a parsed scrape.
type Exposition struct {
	// Help and Type map family names to their HELP and TYPE lines.
	Help, Type map[string]string
	Samples    []Sample
}

// Value returns the value of the sample with the given name whose labels
// include every given pair, and whether one exists.
func (e *Exposition) Value(name string, labels ...Label) (float64, bool) {
	for _, s := range e.Samples {
		if s.Name != name {
			continue
		}
		ok := true
		for _, l := range labels {
			if s.Labels[l.Key] != l.Value {
				ok = false
				break
			}
		}
		if ok {
			return s.Value, true
		}
	}
	return 0, false
}

// ParseExposition parses text exposition format v0.0.4, enforcing the
// structural rules WritePrometheus relies on: TYPE precedes a family's
// samples, sample lines are well-formed, and values parse as floats
// (+Inf included).
func ParseExposition(r io.Reader) (*Exposition, error) {
	e := &Exposition{Help: make(map[string]string), Type: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, found := strings.Cut(rest, " ")
			if !found || name == "" {
				return nil, fmt.Errorf("line %d: malformed HELP", lineNo)
			}
			e.Help[name] = help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, found := strings.Cut(rest, " ")
			if !found || name == "" {
				return nil, fmt.Errorf("line %d: malformed TYPE", lineNo)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown type %q", lineNo, typ)
			}
			e.Type[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if _, ok := e.Type[familyOf(s.Name)]; !ok {
			return nil, fmt.Errorf("line %d: sample %s before its TYPE line", lineNo, s.Name)
		}
		e.Samples = append(e.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return e, nil
}

// familyOf strips the histogram sample suffixes from a sample name.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: make(map[string]string)}
	rest := line
	brace := strings.IndexByte(rest, '{')
	space := strings.IndexByte(rest, ' ')
	if space < 0 {
		return s, fmt.Errorf("no value separator in %q", line)
	}
	if brace >= 0 && brace < space {
		s.Name = rest[:brace]
		end := strings.IndexByte(rest, '}')
		if end < brace {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[brace+1:end], s.Labels); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		s.Name = rest[:space]
		rest = strings.TrimSpace(rest[space+1:])
	}
	if s.Name == "" {
		return s, fmt.Errorf("empty sample name in %q", line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", rest, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string, into map[string]string) error {
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq <= 0 || eq+1 >= len(body) || body[eq+1] != '"' {
			return fmt.Errorf("malformed label pair near %q", body)
		}
		key := body[:eq]
		rest := body[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			if rest[i] == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i+1])
				}
				i++
				continue
			}
			if rest[i] == '"' {
				break
			}
			val.WriteByte(rest[i])
		}
		if i == len(rest) {
			return fmt.Errorf("unterminated label value for %q", key)
		}
		into[key] = val.String()
		body = rest[i+1:]
		body = strings.TrimPrefix(body, ",")
	}
	return nil
}

package experiments

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"time"

	"vdsms"
	"vdsms/internal/stats"
	"vdsms/internal/workload"
)

// Overload measures the adaptive-ingest layer (beyond the paper): a stream
// with known copy insertions is monitored three times — once with an
// unreachable budget to calibrate the sustainable per-window cost, once at
// half that cost ("2× sustainable ingest") with the controller observing
// only, and once with shedding enabled. The shed run must bring the
// steady-state p99 back under the budget; the price is the recall loss the
// table quantifies. Wall-clock timing experiment: absolute numbers vary by
// machine, the shape (bounded p99, small recall loss) is the result.
func Overload(l *Lab) (*stats.Table, error) {
	rep, err := OverloadRun(l.opt.Seed)
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("Overload: shed level vs steady p99 vs recall at 2× sustainable ingest",
		"mode", "budget", "level", "steady-p99", "windows", "shed-windows",
		"extract-shed", "decode-shed", "matches", "recall", "recall-loss")
	for _, r := range rep.Rows {
		tb.AddRow(r.Mode,
			time.Duration(r.BudgetSec*float64(time.Second)).Round(time.Microsecond),
			r.Level,
			time.Duration(r.SteadyP99Sec*float64(time.Second)).Round(time.Microsecond),
			r.Windows, r.ShedWindows, r.ExtractShed, r.DecodeShed,
			r.Matches,
			fmt.Sprintf("%.2f", r.Recall),
			fmt.Sprintf("%.1f%%", r.RecallLossPct))
	}
	return tb, nil
}

// OverloadRow is one monitored pass of the overload sweep, in
// machine-readable form (the CI overload-smoke artifact).
type OverloadRow struct {
	// Mode is "calibrate" (unreachable budget), "observe" (tight budget,
	// shedding disabled) or "shed" (tight budget, shedding enabled).
	Mode string `json:"mode"`
	// BudgetSec is the per-window real-time budget this pass ran under.
	BudgetSec float64 `json:"budget_sec"`
	// Level is the shed level the controller settled at.
	Level int `json:"level"`
	// SteadyP99Sec is the p99 window latency since the last level change.
	SteadyP99Sec float64 `json:"steady_p99_sec"`
	// Windows / ShedWindows count observed windows and those at level > 0.
	Windows     int64 `json:"windows"`
	ShedWindows int64 `json:"shed_windows"`
	Transitions int64 `json:"transitions"`
	// ExtractShed / DecodeShed count key frames dropped per stage.
	ExtractShed int64 `json:"extract_shed"`
	DecodeShed  int64 `json:"decode_shed"`
	// Matches / Recall score the pass against the planted insertions;
	// RecallLossPct is relative to the calibration pass.
	Matches       int     `json:"matches"`
	Recall        float64 `json:"recall"`
	RecallLossPct float64 `json:"recall_loss_pct"`
}

// OverloadReport is the full sweep result.
type OverloadReport struct {
	// CalibP99Sec is the measured sustainable per-window cost; BudgetSec
	// is the half of it the loaded passes run under.
	CalibP99Sec float64       `json:"calib_p99_sec"`
	BudgetSec   float64       `json:"budget_sec"`
	Queries     int           `json:"queries"`
	StreamSec   float64       `json:"stream_sec"`
	Rows        []OverloadRow `json:"rows"`
}

// Scenario geometry. Frames are large and the query count small so the
// front end (decode + extract) dominates window cost (~95% measured) —
// the regime where shedding has leverage; the matching kernel itself is
// never shed. Four key frames per basic window give the per-window decode
// budget room to act: level 2 keeps 2 of 4 decodes, level 3 keeps 1.
const (
	ovlW, ovlH   = 384, 320
	ovlQueries   = 6
	ovlQuerySec  = 12.0
	ovlGapSec    = 15.0
	ovlKeyFPS    = 4.0
	ovlWindowSec = 1.0
	ovlQuality   = 85
)

// overloadScenario is the built workload: encoded queries and stream plus
// key-frame ground truth.
type overloadScenario struct {
	queries map[int][]byte
	stream  []byte
	truth   []workload.Insertion
}

func synthMVC(seed int64, seconds float64) ([]byte, error) {
	var buf bytes.Buffer
	err := vdsms.Synthesize(&buf, vdsms.VideoOptions{
		Seconds: seconds, FPS: ovlKeyFPS, W: ovlW, H: ovlH,
		Seed: seed, Quality: ovlQuality, GOP: 1,
	})
	return buf.Bytes(), err
}

// buildOverloadScenario composes gap/query/gap/.../gap with every query
// inserted once at a known key-frame position.
func buildOverloadScenario(seed int64) (*overloadScenario, error) {
	sc := &overloadScenario{queries: make(map[int][]byte)}
	var parts []io.Reader
	frame := 0
	gapFrames := int(ovlGapSec * ovlKeyFPS)
	qFrames := int(ovlQuerySec * ovlKeyFPS)
	for i := 0; i < ovlQueries; i++ {
		gap, err := synthMVC(seed+1000+int64(i), ovlGapSec)
		if err != nil {
			return nil, err
		}
		q, err := synthMVC(seed+2000+int64(i), ovlQuerySec)
		if err != nil {
			return nil, err
		}
		sc.queries[i+1] = q
		parts = append(parts, bytes.NewReader(gap), bytes.NewReader(q))
		frame += gapFrames
		sc.truth = append(sc.truth, workload.Insertion{
			QueryID: i + 1, Begin: frame, End: frame + qFrames,
		})
		frame += qFrames
	}
	tail, err := synthMVC(seed+3000, ovlGapSec)
	if err != nil {
		return nil, err
	}
	parts = append(parts, bytes.NewReader(tail))
	var buf bytes.Buffer
	if err := vdsms.ComposeStream(&buf, ovlQuality, 1, parts...); err != nil {
		return nil, err
	}
	sc.stream = buf.Bytes()
	return sc, nil
}

func overloadConfig() vdsms.Config {
	cfg := vdsms.DefaultConfig()
	cfg.K = 200
	cfg.Delta = 0.6
	cfg.WindowSec = ovlWindowSec
	cfg.KeyFPS = ovlKeyFPS
	return cfg
}

// monitorOverload runs one pass over the scenario and scores it.
func monitorOverload(sc *overloadScenario, budget time.Duration, shed bool) (OverloadRow, vdsms.OverloadStats, error) {
	cfg := overloadConfig()
	cfg.RealTimeBudget = budget
	cfg.Shed = shed
	det, err := vdsms.NewDetector(cfg)
	if err != nil {
		return OverloadRow{}, vdsms.OverloadStats{}, err
	}
	for id := 1; id <= ovlQueries; id++ {
		if err := det.AddQuery(id, bytes.NewReader(sc.queries[id])); err != nil {
			return OverloadRow{}, vdsms.OverloadStats{}, err
		}
	}
	matches, err := det.Monitor(bytes.NewReader(sc.stream))
	if err != nil {
		return OverloadRow{}, vdsms.OverloadStats{}, err
	}
	reports := make([]workload.Position, 0, len(matches))
	for _, m := range matches {
		reports = append(reports, workload.Position{
			QueryID: m.QueryID,
			P:       int(math.Round(m.End.Seconds() * ovlKeyFPS)),
		})
	}
	ev := workload.Evaluate(reports, sc.truth, int(ovlWindowSec*ovlKeyFPS))
	o := det.Overload()
	row := OverloadRow{
		BudgetSec:    budget.Seconds(),
		Level:        o.Level,
		SteadyP99Sec: o.RunP99.Seconds(),
		Windows:      o.Observed,
		ShedWindows:  o.ShedWindows,
		Transitions:  o.Transitions,
		ExtractShed:  o.ExtractShed,
		DecodeShed:   o.DecodeShed,
		Matches:      len(matches),
		Recall:       ev.Recall,
	}
	return row, o, nil
}

// OverloadRun executes the three-pass sweep: calibrate the sustainable
// per-window cost, then rerun at half of it with shedding off and on.
func OverloadRun(seed int64) (*OverloadReport, error) {
	sc, err := buildOverloadScenario(seed)
	if err != nil {
		return nil, err
	}

	// Warm-up: one untimed pass so the calibration below measures the
	// steady-state cost, not allocator and cache warm-up (measured: a cold
	// first pass reports a p99 roughly 2× the warm one, which would halve
	// the effective overload factor of the whole sweep).
	if _, _, err := monitorOverload(sc, 0, false); err != nil {
		return nil, err
	}

	// Calibration: an unreachable budget keeps the loop observing without
	// ever shedding; its steady p99 is the sustainable per-window cost.
	// Two passes, keeping the quieter one — wall-clock noise (scheduler
	// stalls, co-tenant CPU contention) only ever inflates the p99, and an
	// inflated calibration makes the derived budget loose, which parks the
	// controller on a level boundary instead of demonstrating overload.
	calib, _, err := monitorOverload(sc, time.Hour, true)
	if err != nil {
		return nil, err
	}
	calib2, _, err := monitorOverload(sc, time.Hour, true)
	if err != nil {
		return nil, err
	}
	if calib2.SteadyP99Sec < calib.SteadyP99Sec {
		calib = calib2
	}
	calib.Mode = "calibrate"
	if calib.Level != 0 || calib.ExtractShed != 0 || calib.DecodeShed != 0 {
		return nil, fmt.Errorf("experiments: calibration pass shed work: %+v", calib)
	}

	// "2× sustainable ingest": each window must now finish in half the
	// time the calibrated pipeline needs, as if frames arrived twice as
	// fast as this machine can absorb at full fidelity.
	budget := time.Duration(calib.SteadyP99Sec * float64(time.Second) / 2)
	if budget < time.Microsecond {
		budget = time.Microsecond
	}

	observe, _, err := monitorOverload(sc, budget, false)
	if err != nil {
		return nil, err
	}
	observe.Mode = "observe"
	observe.RecallLossPct = recallLossPct(calib.Recall, observe.Recall)

	shed, _, err := monitorOverload(sc, budget, true)
	if err != nil {
		return nil, err
	}
	shed.Mode = "shed"
	shed.RecallLossPct = recallLossPct(calib.Recall, shed.Recall)

	streamSec := float64(ovlQueries)*(ovlGapSec+ovlQuerySec) + ovlGapSec
	return &OverloadReport{
		CalibP99Sec: calib.SteadyP99Sec,
		BudgetSec:   budget.Seconds(),
		Queries:     ovlQueries,
		StreamSec:   streamSec,
		Rows:        []OverloadRow{calib, observe, shed},
	}, nil
}

func recallLossPct(base, got float64) float64 {
	if base <= 0 {
		return 0
	}
	return (base - got) / base * 100
}

package experiments

import (
	"vdsms/internal/edit"
	"vdsms/internal/feature"
	"vdsms/internal/partition"
	"vdsms/internal/stats"
	"vdsms/internal/vframe"
	"vdsms/internal/workload"
)

// Robustness quantifies the fingerprint's stability under each editing
// attack in isolation and under the paper's combined VS2 attack: for every
// query video the attacked copy's cell-id set is compared to the original's
// by exact Jaccard, and recall is the fraction of queries whose copy stays
// above the similarity threshold. This makes Section III.A's robustness
// claims measurable attack by attack.
func Robustness(l *Lab) (*stats.Table, error) {
	ex, err := feature.NewExtractor(feature.Config{D: 5})
	if err != nil {
		return nil, err
	}
	pt, err := partition.New(4, 5, partition.GridPyramid)
	if err != nil {
		return nil, err
	}
	wl := l.VS1()
	quality := wl.Cfg.Quality
	ids := func(src vframe.Source) ([]uint64, error) {
		feats, err := workload.Features(src, quality, ex)
		if err != nil {
			return nil, err
		}
		out := make([]uint64, len(feats))
		for i, f := range feats {
			out[i] = pt.Cell(f)
		}
		return out, nil
	}

	type attackCase struct {
		name string
		fn   func(vframe.Source, int) vframe.Source
	}
	conform := func(src vframe.Source, cfg workload.Config) vframe.Source {
		out := src
		if f := out.Frame(0); f.W != cfg.W || f.H != cfg.H {
			out = edit.Rescale(out, cfg.W, cfg.H)
		}
		if out.FPS() != cfg.KeyFPS {
			out = edit.Resample(out, cfg.KeyFPS)
		}
		return out
	}
	cfg := wl.Cfg
	cases := []attackCase{
		{"none", func(s vframe.Source, _ int) vframe.Source { return s }},
		{"brightness+20", func(s vframe.Source, _ int) vframe.Source { return edit.Brightness(s, 20) }},
		{"contrast 1.15", func(s vframe.Source, _ int) vframe.Source { return edit.Contrast(s, 1.15) }},
		{"noise ±8", func(s vframe.Source, i int) vframe.Source { return edit.Noise(s, 8, int64(i)) }},
		{"resize +16px", func(s vframe.Source, _ int) vframe.Source {
			return edit.Rescale(s, cfg.W+16, cfg.H+16)
		}},
		{"fps 29.97→25", func(s vframe.Source, _ int) vframe.Source {
			return edit.Resample(s, cfg.KeyFPS*25/29.97)
		}},
		{"reorder 5s", func(s vframe.Source, i int) vframe.Source {
			seg := cfg.KeyWindowFrames(5)
			return edit.Reorder(s, seg, int64(i)*13+1)
		}},
		{"logo 12%", func(s vframe.Source, i int) vframe.Source { return edit.Logo(s, 0.12, i%4) }},
		{"letterbox 20%", func(s vframe.Source, _ int) vframe.Source { return edit.Letterbox(s, 0.2) }},
		{"crop 80%", func(s vframe.Source, _ int) vframe.Source { return edit.CenterCrop(s, 0.8) }},
		{"combined (VS2)", func(s vframe.Source, i int) vframe.Source {
			seg := int(cfg.ReorderSegSec * cfg.KeyFPS * 25 / 29.97)
			if seg < 1 {
				seg = 1
			}
			a := edit.PaperAttack(int64(i)*31+7, cfg.W+16, cfg.H+16, cfg.KeyFPS*25/29.97, seg)
			return a.Apply(s)
		}},
	}

	// Original fingerprints are attack-independent: compute them once.
	origIDs := make(map[int][]uint64, len(wl.Queries))
	for _, q := range wl.Queries {
		o, err := ids(q.Video)
		if err != nil {
			return nil, err
		}
		origIDs[q.ID] = o
	}

	tb := stats.NewTable("Robustness: original-vs-attacked set similarity per attack (u=4, d=5)",
		"attack", "mean Jaccard", "recall δ=0.5", "recall δ=0.7")
	for _, c := range cases {
		var sum float64
		var r5, r7, n int
		for i, q := range wl.Queries {
			orig := origIDs[q.ID]
			attacked, err := ids(conform(c.fn(q.Video, i), cfg))
			if err != nil {
				return nil, err
			}
			j := partition.Jaccard(orig, attacked)
			sum += j
			if j >= 0.5 {
				r5++
			}
			if j >= 0.7 {
				r7++
			}
			n++
		}
		tb.AddRow(c.name, sum/float64(n), float64(r5)/float64(n), float64(r7)/float64(n))
	}
	return tb, nil
}

package experiments

import (
	"vdsms/internal/core"
	"vdsms/internal/edit"
	"vdsms/internal/feature"
	"vdsms/internal/partition"
	"vdsms/internal/stats"
	"vdsms/internal/vframe"
	"vdsms/internal/workload"
)

// Robustness quantifies the fingerprint's stability under each editing
// attack in isolation and under the paper's combined VS2 attack: for every
// query video the attacked copy's cell-id set is compared to the original's
// by exact Jaccard, and recall is the fraction of queries whose copy stays
// above the similarity threshold. This makes Section III.A's robustness
// claims measurable attack by attack.
func Robustness(l *Lab) (*stats.Table, error) {
	ex, err := feature.NewExtractor(feature.Config{D: 5})
	if err != nil {
		return nil, err
	}
	pt, err := partition.New(4, 5, partition.GridPyramid)
	if err != nil {
		return nil, err
	}
	wl := l.VS1()
	quality := wl.Cfg.Quality
	ids := func(src vframe.Source) ([]uint64, error) {
		feats, err := workload.Features(src, quality, ex)
		if err != nil {
			return nil, err
		}
		out := make([]uint64, len(feats))
		for i, f := range feats {
			out[i] = pt.Cell(f)
		}
		return out, nil
	}

	type attackCase struct {
		name string
		fn   func(vframe.Source, int) vframe.Source
	}
	conform := func(src vframe.Source, cfg workload.Config) vframe.Source {
		out := src
		if f := out.Frame(0); f.W != cfg.W || f.H != cfg.H {
			out = edit.Rescale(out, cfg.W, cfg.H)
		}
		if out.FPS() != cfg.KeyFPS {
			out = edit.Resample(out, cfg.KeyFPS)
		}
		return out
	}
	cfg := wl.Cfg
	cases := []attackCase{
		{"none", func(s vframe.Source, _ int) vframe.Source { return s }},
		{"brightness+20", func(s vframe.Source, _ int) vframe.Source { return edit.Brightness(s, 20) }},
		{"contrast 1.15", func(s vframe.Source, _ int) vframe.Source { return edit.Contrast(s, 1.15) }},
		{"noise ±8", func(s vframe.Source, i int) vframe.Source { return edit.Noise(s, 8, int64(i)) }},
		{"resize +16px", func(s vframe.Source, _ int) vframe.Source {
			return edit.Rescale(s, cfg.W+16, cfg.H+16)
		}},
		{"fps 29.97→25", func(s vframe.Source, _ int) vframe.Source {
			return edit.Resample(s, cfg.KeyFPS*25/29.97)
		}},
		{"reorder 5s", func(s vframe.Source, i int) vframe.Source {
			seg := cfg.KeyWindowFrames(5)
			return edit.Reorder(s, seg, int64(i)*13+1)
		}},
		{"logo 12%", func(s vframe.Source, i int) vframe.Source { return edit.Logo(s, 0.12, i%4) }},
		{"letterbox 20%", func(s vframe.Source, _ int) vframe.Source { return edit.Letterbox(s, 0.2) }},
		{"crop 80%", func(s vframe.Source, _ int) vframe.Source { return edit.CenterCrop(s, 0.8) }},
		{"combined (VS2)", func(s vframe.Source, i int) vframe.Source {
			seg := int(cfg.ReorderSegSec * cfg.KeyFPS * 25 / 29.97)
			if seg < 1 {
				seg = 1
			}
			a := edit.PaperAttack(int64(i)*31+7, cfg.W+16, cfg.H+16, cfg.KeyFPS*25/29.97, seg)
			return a.Apply(s)
		}},
	}

	// Original fingerprints are attack-independent: compute them once.
	origIDs := make(map[int][]uint64, len(wl.Queries))
	for _, q := range wl.Queries {
		o, err := ids(q.Video)
		if err != nil {
			return nil, err
		}
		origIDs[q.ID] = o
	}

	tb := stats.NewTable("Robustness: original-vs-attacked set similarity per attack (u=4, d=5)",
		"attack", "mean Jaccard", "recall δ=0.5", "recall δ=0.7")
	for _, c := range cases {
		var sum float64
		var r5, r7, n int
		for i, q := range wl.Queries {
			orig := origIDs[q.ID]
			attacked, err := ids(conform(c.fn(q.Video, i), cfg))
			if err != nil {
				return nil, err
			}
			j := partition.Jaccard(orig, attacked)
			sum += j
			if j >= 0.5 {
				r5++
			}
			if j >= 0.7 {
				r7++
			}
			n++
		}
		tb.AddRow(c.name, sum/float64(n), float64(r5)/float64(n), float64(r7)/float64(n))
	}
	return tb, nil
}

// TemporalRobustness is the standing robustness dashboard: the full
// streaming detector (not just the fingerprint) runs over the
// temporal-attack workload and is scored per attack family across
// {Sketch, Bit} × {Sequential, Geometric} × δ. Every future speed PR
// regresses against these numbers — recall lost to an optimisation shows
// up here family by family.
func TemporalRobustness(l *Lab) (*stats.Table, error) {
	rows, err := TemporalRobustnessResults(l, []float64{0.5, 0.7})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("Temporal robustness: per-attack-family detection ({Sketch,Bit} × {Seq,Geo} × δ, u=4, d=5)",
		"method", "order", "δ", "family", "precision", "recall", "loc err (s)")
	for _, r := range rows {
		for _, fr := range r.Families {
			tb.AddRow(r.Cfg.Method.String(), r.Cfg.Order.String(), r.Cfg.Delta,
				fr.Family, fr.Precision, fr.Recall, fr.MeanLocErr()/l.AttackVS().Cfg.KeyFPS)
		}
	}
	return tb, nil
}

// TemporalRun is one engine configuration's per-family robustness outcome.
type TemporalRun struct {
	Cfg      core.Config
	Overall  workload.Eval
	Families []workload.FamilyResult
}

// TemporalRobustnessResults runs the {Sketch,Bit} × {Sequential,Geometric}
// sweep at each δ over the attack workload and returns the structured
// per-family results (the table and the CI artifact are both rendered from
// these).
func TemporalRobustnessResults(l *Lab, deltas []float64) ([]TemporalRun, error) {
	aw := l.AttackVS()
	dv, err := derive(aw.Workload, 4, 5, partition.GridPyramid)
	if err != nil {
		return nil, err
	}
	w := dv.cfg.KeyWindowFrames(5)
	var out []TemporalRun
	for _, method := range []core.Method{core.Sketch, core.Bit} {
		for _, order := range []orderSel{seqOrder, geoOrder} {
			for _, delta := range deltas {
				cfg := coreConfig(800, delta, w, order)
				cfg.Method = method
				run, err := temporalRun(cfg, dv, aw.Meta, w)
				if err != nil {
					return nil, err
				}
				out = append(out, run)
			}
		}
	}
	return out, nil
}

// temporalRun scores one engine configuration against the attack
// workload's family-annotated ground truth.
func temporalRun(cfg core.Config, dv *derived, meta []workload.AttackInsertion, w int) (TemporalRun, error) {
	res, err := runEngine(cfg, dv, 0)
	if err != nil {
		return TemporalRun{}, err
	}
	reports := make([]workload.Position, 0, len(res.Matches))
	for _, m := range res.Matches {
		reports = append(reports, workload.Position{QueryID: m.QueryID, P: m.DetectedAt})
	}
	return TemporalRun{
		Cfg:      cfg,
		Overall:  res.Eval,
		Families: workload.EvaluateByFamily(reports, meta, w),
	}, nil
}

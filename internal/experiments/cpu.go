package experiments

import (
	"vdsms/internal/core"
	"vdsms/internal/partition"
	"vdsms/internal/stats"
)

// coreConfig assembles the engine configuration used throughout the CPU
// and accuracy experiments (Bit/index defaults unless overridden).
func coreConfig(k int, delta float64, wFrames int, order orderSel) core.Config {
	cfg := core.Config{
		K: k, Seed: 1, Delta: delta, Lambda: 2, WindowFrames: wFrames,
		Method: core.Bit, UseIndex: true, Order: core.Sequential,
	}
	if order == geoOrder {
		cfg.Order = core.Geometric
	}
	return cfg
}

// Fig6 reproduces Figure 6: CPU time vs the number of hash functions K for
// the Sketch and Bit representations under both combination orders (query
// index maintained for all, VS1 stream).
func Fig6(l *Lab) (*stats.Table, error) {
	dv, err := derive(l.VS1(), 4, 5, partition.GridPyramid)
	if err != nil {
		return nil, err
	}
	wFrames := dv.cfg.KeyWindowFrames(5)
	tb := stats.NewTable("Figure 6: CPU time vs K (VS1, index on)",
		"K", "sketch-seq", "sketch-geo", "bit-seq", "bit-geo")
	for _, k := range []int{100, 200, 400, 800, 1600, 3000} {
		row := []any{k}
		for _, method := range []core.Method{core.Sketch, core.Bit} {
			for _, order := range []orderSel{seqOrder, geoOrder} {
				cfg := coreConfig(k, 0.7, wFrames, order)
				cfg.Method = method
				res, err := runEngine(cfg, dv, 0)
				if err != nil {
					return nil, err
				}
				row = append(row, res.Elapsed)
			}
		}
		tb.AddRow(row...)
	}
	return tb, nil
}

// Fig9 reproduces Figure 9: CPU time vs the number of continuous queries m
// for {Sketch, Bit} × {Index, NoIndex} under both orders (VS1 with up to
// 200 queries).
func Fig9(l *Lab) (*stats.Table, error) {
	dv, err := derive(l.BigVS1(), 4, 5, partition.GridPyramid)
	if err != nil {
		return nil, err
	}
	wFrames := dv.cfg.KeyWindowFrames(5)
	tb := stats.NewTable("Figure 9: CPU time vs number of queries m (VS1)",
		"order", "m", "sketch-index", "sketch-noindex", "bit-index", "bit-noindex")
	total := len(dv.queryIDs)
	for _, order := range []orderSel{seqOrder, geoOrder} {
		for _, m := range []int{10, 25, 50, 100, 200} {
			if m > total {
				m = total
			}
			row := []any{order.String(), m}
			for _, method := range []core.Method{core.Sketch, core.Bit} {
				for _, useIndex := range []bool{true, false} {
					cfg := coreConfig(800, 0.7, wFrames, order)
					cfg.Method = method
					cfg.UseIndex = useIndex
					res, err := runEngine(cfg, dv, m)
					if err != nil {
						return nil, err
					}
					row = append(row, res.Elapsed)
				}
			}
			tb.AddRow(row...)
			if m == total {
				break
			}
		}
	}
	return tb, nil
}

// Fig10a reproduces Figure 10(a): average number of bit signatures
// maintained vs the similarity threshold δ (BitIndex, Sequential, VS2).
func Fig10a(l *Lab) (*stats.Table, error) {
	dv, err := derive(l.VS2(), 4, 5, partition.GridPyramid)
	if err != nil {
		return nil, err
	}
	wFrames := dv.cfg.KeyWindowFrames(5)
	tb := stats.NewTable("Figure 10(a): avg bit signatures vs δ (VS2, BitIndex sequential)",
		"δ", "avg signatures", "memory (bytes, 2K bits each)")
	for _, delta := range []float64{0.5, 0.6, 0.7, 0.8, 0.9} {
		res, err := runEngine(coreConfig(800, delta, wFrames, seqOrder), dv, 0)
		if err != nil {
			return nil, err
		}
		n := res.Stats.AvgSignatures()
		tb.AddRow(delta, n, int(n*2*800/8))
	}
	return tb, nil
}

// Fig10b reproduces Figure 10(b): average number of bit signatures vs the
// basic window size (VS2).
func Fig10b(l *Lab) (*stats.Table, error) {
	dv, err := derive(l.VS2(), 4, 5, partition.GridPyramid)
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("Figure 10(b): avg bit signatures vs basic window size (VS2)",
		"w (s)", "avg signatures", "memory (bytes)")
	for _, wSec := range []float64{5, 10, 15, 20} {
		wFrames := dv.cfg.KeyWindowFrames(wSec)
		res, err := runEngine(coreConfig(800, 0.7, wFrames, seqOrder), dv, 0)
		if err != nil {
			return nil, err
		}
		n := res.Stats.AvgSignatures()
		tb.AddRow(wSec, n, int(n*2*800/8))
	}
	return tb, nil
}

// AblationPrune quantifies the Lemma 2 prune (Section V.B) across δ: CPU
// time, probe work and live signatures with the prune enabled vs disabled.
// Accuracy never changes (the prune is lossless); the work saved grows with
// δ because the bound K(1−δ) tightens. Much of the candidate expiry in this
// engine already comes from the relatedness intersection, so the prune's
// marginal effect here is the probe-side R_L reduction.
func AblationPrune(l *Lab) (*stats.Table, error) {
	dv, err := derive(l.VS2(), 4, 5, partition.GridPyramid)
	if err != nil {
		return nil, err
	}
	wFrames := dv.cfg.KeyWindowFrames(5)
	tb := stats.NewTable("Ablation: Lemma 2 pruning (VS2, BitIndex sequential)",
		"δ", "prune", "time", "avg signatures", "sig tests", "probe cmps", "precision", "recall")
	for _, delta := range []float64{0.5, 0.7, 0.9} {
		for _, disable := range []bool{false, true} {
			cfg := coreConfig(800, delta, wFrames, seqOrder)
			cfg.DisablePrune = disable
			res, err := runEngine(cfg, dv, 0)
			if err != nil {
				return nil, err
			}
			label := "on"
			if disable {
				label = "off"
			}
			tb.AddRow(delta, label, res.Elapsed, res.Stats.AvgSignatures(),
				res.Stats.SigTests, res.Stats.ProbeComparisons,
				res.Eval.Precision, res.Eval.Recall)
		}
	}
	return tb, nil
}

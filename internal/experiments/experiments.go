// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI) on the synthetic workloads. Each experiment
// returns a stats.Table whose rows are the same series the paper plots;
// EXPERIMENTS.md records the shape comparison against the published
// results.
//
// The workloads are scaled-down but structurally faithful: shorts double as
// continuous queries, VS1 carries verbatim inserts, VS2 carries edited and
// segment-reordered inserts, and all features travel through the real
// encode → partial-DC-decode pipeline. Options.Scale grows everything
// toward paper scale when more runtime is acceptable.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"vdsms/internal/baseline"
	"vdsms/internal/core"
	"vdsms/internal/feature"
	"vdsms/internal/partition"
	"vdsms/internal/stats"
	"vdsms/internal/workload"
)

// Options configures a Lab.
type Options struct {
	// Scale multiplies the number of short videos in the workloads
	// (1 = laptop default of 24 shorts; ~8 grows to the paper's 200).
	Scale float64
	// Seed drives all workload randomness.
	Seed int64
}

// Lab lazily builds and caches the evaluation workloads shared by the
// experiments.
type Lab struct {
	opt    Options
	vs1    *workload.Workload
	vs2    *workload.Workload
	big1   *workload.Workload       // 200-query VS1 for the m sweep
	big2   *workload.Workload       // 100-query VS2 for the Table II retrieval study
	attack *workload.AttackWorkload // temporal-attack robustness workload
}

// NewLab creates a Lab; Scale defaults to 1 and Seed to 20080407 (the
// conference date, for determinism with no magic).
func NewLab(opt Options) *Lab {
	if opt.Scale <= 0 {
		opt.Scale = 1
	}
	if opt.Seed == 0 {
		opt.Seed = 20080407
	}
	return &Lab{opt: opt}
}

func (l *Lab) shorts() int {
	n := int(24 * l.opt.Scale)
	if n < 4 {
		n = 4
	}
	return n
}

func (l *Lab) baseCfg(edited bool) workload.Config {
	return workload.Config{
		NumShorts: l.shorts(),
		// Shorts of 15-40 s with w=5 s give candidate lists of λL/w ≈ 12-32
		// windows, enough for the Sequential-vs-Geometric cost split of the
		// paper to be visible (their shorts are 30-300 s).
		ShortMinSec: 15, ShortMaxSec: 40,
		GapMinSec: 8, GapMaxSec: 20,
		KeyFPS: 2, W: 96, H: 80, Quality: 78,
		Seed: l.opt.Seed, Edited: edited,
	}
}

// VS1 returns the verbatim-insert workload.
func (l *Lab) VS1() *workload.Workload {
	if l.vs1 == nil {
		l.vs1 = workload.Build(l.baseCfg(false))
	}
	return l.vs1
}

// VS2 returns the edited/reordered-insert workload.
func (l *Lab) VS2() *workload.Workload {
	if l.vs2 == nil {
		l.vs2 = workload.Build(l.baseCfg(true))
	}
	return l.vs2
}

// BigVS1 returns the many-query workload for the m sweep (Fig. 9): up to
// 200 shorter shorts.
func (l *Lab) BigVS1() *workload.Workload {
	if l.big1 == nil {
		cfg := l.baseCfg(false)
		cfg.NumShorts = int(200 * l.opt.Scale)
		if cfg.NumShorts < 10 {
			cfg.NumShorts = 10
		}
		if cfg.NumShorts > 200 {
			cfg.NumShorts = 200
		}
		cfg.ShortMinSec, cfg.ShortMaxSec = 8, 15
		cfg.GapMinSec, cfg.GapMaxSec = 4, 8
		l.big1 = workload.Build(cfg)
	}
	return l.big1
}

// BigVS2 returns the many-query edited workload used by the Table II
// membership-test study, where retrieval precision needs enough videos for
// cross-video collisions to show up.
func (l *Lab) BigVS2() *workload.Workload {
	if l.big2 == nil {
		cfg := l.baseCfg(true)
		cfg.NumShorts = int(100 * l.opt.Scale)
		if cfg.NumShorts < 10 {
			cfg.NumShorts = 10
		}
		if cfg.NumShorts > 200 {
			cfg.NumShorts = 200
		}
		cfg.ShortMinSec, cfg.ShortMaxSec = 8, 15
		cfg.GapMinSec, cfg.GapMaxSec = 2, 4
		l.big2 = workload.Build(cfg)
	}
	return l.big2
}

// AttackVS returns the temporal-attack robustness workload: every short
// inserted once per attack family ("none" control included), presets
// rotating across shorts (see workload.BuildAttack).
func (l *Lab) AttackVS() *workload.AttackWorkload {
	if l.attack == nil {
		cfg := l.baseCfg(false)
		cfg.NumShorts = int(8 * l.opt.Scale)
		if cfg.NumShorts < 3 {
			cfg.NumShorts = 3
		}
		cfg.ShortMinSec, cfg.ShortMaxSec = 12, 20
		cfg.GapMinSec, cfg.GapMaxSec = 4, 8
		l.attack = workload.BuildAttack(workload.AttackConfig{Base: cfg})
	}
	return l.attack
}

// derived holds the (u, d)-specific view of a workload: cell ids for the
// engine and feature vectors for the baselines.
type derived struct {
	streamIDs   []uint64
	queryIDs    map[int][]uint64
	streamFeats [][]float64
	queryFeats  map[int][][]float64
	truth       []workload.Insertion
	cfg         workload.Config
}

// derive maps the cached pooled features of wl through a (u, d, scheme)
// pipeline.
func derive(wl *workload.Workload, u, d int, scheme partition.Scheme) (*derived, error) {
	ex, err := feature.NewExtractor(feature.Config{GridW: 3, GridH: 3, D: d})
	if err != nil {
		return nil, err
	}
	pt, err := partition.New(u, d, scheme)
	if err != nil {
		return nil, err
	}
	sp, err := wl.StreamPooled()
	if err != nil {
		return nil, err
	}
	qp, err := wl.QueryPooled()
	if err != nil {
		return nil, err
	}
	out := &derived{
		queryIDs:   make(map[int][]uint64, len(qp)),
		queryFeats: make(map[int][][]float64, len(qp)),
		truth:      wl.Truth,
		cfg:        wl.Cfg,
	}
	scratch := make([]float64, d)
	toIDs := func(pooled [][]float64) ([]uint64, [][]float64) {
		ids := make([]uint64, len(pooled))
		feats := make([][]float64, len(pooled))
		for i, p := range pooled {
			v := ex.FromPooled(p)
			feats[i] = v
			ids[i] = pt.CellInto(v, scratch)
		}
		return ids, feats
	}
	out.streamIDs, out.streamFeats = toIDs(sp)
	for qid, p := range qp {
		ids, feats := toIDs(p)
		out.queryIDs[qid] = ids
		out.queryFeats[qid] = feats
	}
	return out, nil
}

// runResult is the outcome of one engine run.
type runResult struct {
	Stats   core.Stats
	Elapsed time.Duration
	Eval    workload.Eval
	Matches []core.Match
}

// runEngine subscribes the first m queries (by id; m<=0 means all), streams
// the cell ids, and scores the matches. Only stream consumption is timed
// (index construction is offline in the paper).
func runEngine(cfg core.Config, d *derived, m int) (runResult, error) {
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return runResult{}, err
	}
	qids := make([]int, 0, len(d.queryIDs))
	for qid := range d.queryIDs {
		qids = append(qids, qid)
	}
	sort.Ints(qids)
	if m > 0 && m < len(qids) {
		qids = qids[:m]
	}
	for _, qid := range qids {
		if err := eng.AddQuery(qid, d.queryIDs[qid]); err != nil {
			return runResult{}, err
		}
	}
	elapsed := stats.Time(func() {
		eng.PushFrames(d.streamIDs)
		eng.Flush()
	})
	reports := make([]workload.Position, 0, len(eng.Matches))
	for _, mt := range eng.Matches {
		reports = append(reports, workload.Position{QueryID: mt.QueryID, P: mt.DetectedAt})
	}
	// Score only against insertions of subscribed queries.
	subscribed := make(map[int]bool, len(qids))
	for _, qid := range qids {
		subscribed[qid] = true
	}
	var truth []workload.Insertion
	for _, ins := range d.truth {
		if subscribed[ins.QueryID] {
			truth = append(truth, ins)
		}
	}
	return runResult{
		Stats:   eng.Stats(),
		Elapsed: elapsed,
		Eval:    workload.Evaluate(reports, truth, cfg.WindowFrames),
		Matches: eng.Matches,
	}, nil
}

// runBaseline streams feature vectors through a baseline matcher and scores
// the result; gap doubles as the evaluation window.
func runBaseline(cfg baseline.Config, d *derived) (workload.Eval, time.Duration, int64, error) {
	m, err := baseline.New(cfg)
	if err != nil {
		return workload.Eval{}, 0, 0, err
	}
	qids := make([]int, 0, len(d.queryFeats))
	for qid := range d.queryFeats {
		qids = append(qids, qid)
	}
	sort.Ints(qids)
	for _, qid := range qids {
		if err := m.AddQuery(qid, d.queryFeats[qid]); err != nil {
			return workload.Eval{}, 0, 0, err
		}
	}
	elapsed := stats.Time(func() {
		for _, f := range d.streamFeats {
			m.Push(f)
		}
	})
	reports := make([]workload.Position, 0, len(m.Matches))
	for _, mt := range m.Matches {
		reports = append(reports, workload.Position{QueryID: mt.QueryID, P: mt.EndFrame})
	}
	return workload.Evaluate(reports, d.truth, cfg.Gap), elapsed, m.FrameDistances, nil
}

// Experiment is a named table generator.
type Experiment struct {
	Name  string
	Paper string // table/figure the experiment reproduces
	Run   func(*Lab) (*stats.Table, error)
}

// Registry lists every experiment in paper order.
var Registry = []Experiment{
	{"table2", "Table II", Table2},
	{"fig6", "Figure 6", Fig6},
	{"fig7", "Figure 7", Fig7},
	{"fig8", "Figure 8", Fig8},
	{"fig9", "Figure 9", Fig9},
	{"fig10a", "Figure 10(a)", Fig10a},
	{"fig10b", "Figure 10(b)", Fig10b},
	{"fig11", "Figure 11", Fig11},
	{"fig12", "Figure 12", Fig12},
	{"fig13", "Figure 13", Fig13},
	{"fig14", "Figure 14", Fig14},
	{"fig15", "Figure 15", Fig15},
	{"ablation-partition", "Section III.A rationale", AblationPartition},
	{"ablation-prune", "Section V.B rationale", AblationPrune},
	{"robustness", "Section III.A robustness claims", Robustness},
	{"robustness-temporal", "beyond the paper: temporal-attack detection dashboard", TemporalRobustness},
	{"ablation-lambda", "Section IV.A tempo scaling", AblationLambda},
	{"ablation-index-update", "Section V.C.1 online maintenance", AblationIndexUpdate},
	{"parallel", "beyond the paper: intra-stream parallel kernel", Parallel},
	{"recovery", "beyond the paper: checkpoint/restore + WAL replay", Recovery},
	{"queryscale", "beyond the paper: pre-filter tier at 10³–10⁶ queries", QueryScale},
	{"overload", "beyond the paper: load shedding at 2× sustainable ingest", Overload},
	{"fleet", "beyond the paper: multi-tenant pool, 64–1024 streams on one query plane", FleetScale},
}

// Find returns the experiment with the given name.
func Find(name string) (Experiment, error) {
	for _, e := range Registry {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", name)
}

package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"time"

	"vdsms/internal/core"
	"vdsms/internal/fleet"
	"vdsms/internal/stats"
)

// FleetScale measures the multi-tenant stream pool (internal/fleet) as the
// concurrent stream count grows 64 → 1024: N synthetic streams multiplexed
// over GOMAXPROCS workers against one shared query plane. The workload is
// synthetic cell-id streams (same generator as the query-scale sweep): m
// queries subscribed once, every 8th stream carrying one true copy, the
// rest pure background — the "many tenants, few hits" regime a fleet
// deployment lives in.
//
// Reported per level: ingest wall-clock and aggregate frame throughput,
// the shared plane's footprint, total heap growth attributable to the
// streams (engines + queues + pool bookkeeping) divided by N — the number
// that must stay flat for query memory to be O(queries) rather than
// O(queries × streams) — and an equivalence spot-check: sampled streams
// replayed through private isolated engines must produce identical match
// lists and counters.
func FleetScale(l *Lab) (*stats.Table, error) {
	levels := []int{64, 256, 1024}
	if l.opt.Scale < 1 {
		levels = levels[:2]
	}
	tb := stats.NewTable("Fleet scale: shared query plane, sharded stream pool (synthetic, K=128)",
		"streams", "queries", "ingest", "frames/s", "plane", "KB/stream",
		"identical", "matches")
	for _, n := range levels {
		row, err := FleetRun(n, l.opt.Seed)
		if err != nil {
			return nil, err
		}
		tb.AddRow(row.Streams, row.Queries,
			time.Duration(row.IngestSec*float64(time.Second)).Round(time.Millisecond),
			fmt.Sprintf("%.0f", row.FramesPerSec),
			fmt.Sprintf("%.1fMB", float64(row.PlaneBytes)/(1<<20)),
			fmt.Sprintf("%.1f", row.BytesPerStream/1024),
			row.Identical, row.Matches)
	}
	return tb, nil
}

// FleetRow is one measured level of the fleet sweep, in machine-readable
// form (the CI fleet-smoke artifact).
type FleetRow struct {
	Streams int `json:"streams"`
	Queries int `json:"queries"`
	// IngestSec is wall-clock from first push to drained, all producers
	// concurrent; Frames is the aggregate frame count across streams.
	IngestSec    float64 `json:"ingest_sec"`
	Frames       int     `json:"frames"`
	FramesPerSec float64 `json:"frames_per_sec"`
	// PlaneBytes is the shared query plane (sketches + signatures + HQ
	// index), paid once for the whole fleet; BytesPerStream is the heap
	// growth of attaching and feeding the N streams divided by N.
	PlaneBytes     int     `json:"plane_bytes"`
	BytesPerStream float64 `json:"bytes_per_stream"`
	// Identical reports the equivalence spot-check: sampled streams
	// replayed through private single-stream engines, match lists and
	// counter totals compared exactly.
	Identical bool `json:"identical_matches"`
	Matches   int  `json:"matches"`
}

// fleetStream builds stream i's cell-id feed: background content unique to
// the stream, with one true copy of a subscribed query spliced into every
// 8th stream (offset by the stream index so all queries get coverage).
func fleetStream(i, m, frames int, queries [][]uint64, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed + int64(i)*7919))
	out := synthStream(rng, 1_000_000+i, frames)
	if i%8 == 0 {
		q := queries[(i/8)%m]
		cut := frames / 3
		spliced := make([]uint64, 0, len(out)+len(q))
		spliced = append(spliced, out[:cut]...)
		spliced = append(spliced, q...)
		spliced = append(spliced, out[cut:]...)
		return spliced
	}
	return out
}

// FleetRun measures one stream-count level: m queries subscribed once on a
// shared plane, n streams attached and fed concurrently, equivalence
// spot-checked against isolated engines.
func FleetRun(n int, seed int64) (FleetRow, error) {
	if seed == 0 {
		seed = 20080407
	}
	const (
		k            = 128
		w            = 10
		m            = 200 // subscribed queries
		queryFrames  = 40
		streamFrames = 400
	)
	rng := rand.New(rand.NewSource(seed))
	ids := make([]int, m)
	queries := make([][]uint64, m)
	for i := range queries {
		ids[i] = i + 1
		queries[i] = synthStream(rng, i+1, queryFrames)
	}
	feeds := make([][]uint64, n)
	total := 0
	for i := range feeds {
		feeds[i] = fleetStream(i, m, streamFrames, queries, seed)
		total += len(feeds[i])
	}

	cfg := core.Config{
		K: k, Seed: 11, Delta: 0.6, Lambda: 2, WindowFrames: w,
		Order: core.Sequential, Method: core.Bit, UseIndex: true,
	}
	pool, err := fleet.New(fleet.Config{Engine: cfg})
	if err != nil {
		return FleetRow{}, err
	}
	defer pool.Close()
	if err := pool.AddQueries(ids, queries); err != nil {
		return FleetRow{}, err
	}

	// Heap before any stream exists vs after ingest: the delta is engines,
	// queues and pool bookkeeping — everything that scales with N. The
	// plane and the feeds are allocated before the baseline so they cancel.
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	streams := make([]*fleet.Stream, n)
	for i := range streams {
		s, err := pool.Attach(fmt.Sprintf("s%04d", i))
		if err != nil {
			return FleetRow{}, err
		}
		streams[i] = s
	}
	start := time.Now()
	var wg sync.WaitGroup
	pushErr := make(chan error, n)
	for i, s := range streams {
		wg.Add(1)
		go func(s *fleet.Stream, feed []uint64) {
			defer wg.Done()
			// Uneven batches, retrying on backpressure like a real producer.
			for off := 0; off < len(feed); {
				sz := 16 + (off/16)%17
				if off+sz > len(feed) {
					sz = len(feed) - off
				}
				if err := s.Push(feed[off : off+sz]); err != nil {
					if !errors.Is(err, fleet.ErrBackpressure) {
						pushErr <- err
						return
					}
					time.Sleep(200 * time.Microsecond)
					continue
				}
				off += sz
			}
		}(s, feeds[i])
	}
	wg.Wait()
	close(pushErr)
	if err := <-pushErr; err != nil {
		return FleetRow{}, err
	}
	pool.Drain()
	for _, s := range streams {
		s.Detach(true)
	}
	elapsed := time.Since(start)

	runtime.GC()
	runtime.ReadMemStats(&after)
	delta := float64(after.HeapAlloc) - float64(before.HeapAlloc)
	if delta < 0 {
		delta = 0
	}
	perStream := delta / float64(n)

	matches := 0
	for _, s := range streams {
		matches += len(s.Matches())
	}

	// Equivalence spot-check: replay a sample of streams (the first, the
	// last, and two interior ones — both copy-carrying and background)
	// through isolated single-stream engines over a private query plane.
	identical := true
	for _, i := range []int{0, 1, n / 2, n - 1} {
		eng, err := core.NewEngine(cfg)
		if err != nil {
			return FleetRow{}, err
		}
		if err := eng.AddQueries(ids, queries); err != nil {
			return FleetRow{}, err
		}
		eng.PushFrames(feeds[i])
		eng.Flush()
		got, want := streams[i].Matches(), eng.Matches
		if len(got) != len(want) {
			identical = false
			continue
		}
		for j := range got {
			if got[j] != want[j] {
				identical = false
				break
			}
		}
		if !reflect.DeepEqual(streams[i].Stats().Totals(), eng.Stats().Totals()) {
			identical = false
		}
	}

	row := FleetRow{
		Streams:        n,
		Queries:        m,
		IngestSec:      elapsed.Seconds(),
		Frames:         total,
		PlaneBytes:     pool.PlaneBytes(),
		BytesPerStream: perStream,
		Identical:      identical,
		Matches:        matches,
	}
	if elapsed > 0 {
		row.FramesPerSec = float64(total) / elapsed.Seconds()
	}
	return row, nil
}

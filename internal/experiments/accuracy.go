package experiments

import (
	"fmt"

	"vdsms/internal/partition"
	"vdsms/internal/stats"
	"vdsms/internal/workload"
)

// membership runs the Table II protocol for one (u, d, scheme): each
// original short A[i] is used as a query against the edited shorts B[*]
// (the VS2 insertions) with the exact set-similarity membership test
// (no min-hash); B[j] is retrieved when Jaccard ≥ δ and correct when j = i.
func membership(l *Lab, u, d int, scheme partition.Scheme, delta float64) (precision, recall float64, err error) {
	dv, err := derive(l.BigVS2(), u, d, scheme)
	if err != nil {
		return 0, 0, err
	}
	edited := make(map[int][]uint64, len(dv.truth))
	for _, ins := range dv.truth {
		edited[ins.QueryID] = dv.streamIDs[ins.Begin:ins.End]
	}
	var retrieved, correct, found int
	for qid, qids := range dv.queryIDs {
		hit := false
		for bid, bids := range edited {
			if partition.Jaccard(qids, bids) >= delta {
				retrieved++
				if bid == qid {
					correct++
					hit = true
				}
			}
		}
		if hit {
			found++
		}
	}
	if retrieved > 0 {
		precision = float64(correct) / float64(retrieved)
	}
	recall = float64(found) / float64(len(dv.queryIDs))
	return precision, recall, nil
}

// Table2 reproduces Table II: membership-test precision and recall across
// the grid granularity u ∈ [2,7] and dimensionality d ∈ [3,7].
func Table2(l *Lab) (*stats.Table, error) {
	const delta = 0.5 // membership-retrieval threshold for edited copies
	tb := stats.NewTable("Table II: precision (p) and recall (r) with different u and d",
		"d", "u=2 p", "u=2 r", "u=3 p", "u=3 r", "u=4 p", "u=4 r",
		"u=5 p", "u=5 r", "u=6 p", "u=6 r", "u=7 p", "u=7 r")
	for d := 3; d <= 7; d++ {
		row := []any{d}
		for u := 2; u <= 7; u++ {
			p, r, err := membership(l, u, d, partition.GridPyramid, delta)
			if err != nil {
				return nil, err
			}
			row = append(row, p, r)
		}
		tb.AddRow(row...)
	}
	return tb, nil
}

// AblationPartition compares the partitioning schemes of Section III.A —
// plus the ordinal-rank signature of the related work [1], [9] — under the
// membership test at the default u=4, d=5: pyramid-only (2d cells) and
// ordinal (d! cells) have too few signatures and collapse precision;
// grid-only fractures copies under drift; grid–pyramid balances both.
func AblationPartition(l *Lab) (*stats.Table, error) {
	const delta = 0.5
	tb := stats.NewTable("Ablation: space partitioning scheme (u=4, d=5, membership test)",
		"scheme", "cells", "precision", "recall")
	for _, scheme := range []partition.Scheme{
		partition.Pyramid, partition.Ordinal, partition.Grid, partition.GridPyramid,
	} {
		p, r, err := membership(l, 4, 5, scheme, delta)
		if err != nil {
			return nil, err
		}
		pt, _ := partition.New(4, 5, scheme)
		tb.AddRow(scheme.String(), pt.NumCells(), p, r)
	}
	return tb, nil
}

// evalDetection runs the Bit/Sequential/Index detector on a derived
// workload and returns precision/recall (shared by Figs 7, 8, 11, 13).
func evalDetection(d *derived, k int, delta float64, wFrames int, order orderSel) (workload.Eval, error) {
	cfg := coreConfig(k, delta, wFrames, order)
	res, err := runEngine(cfg, d, 0)
	if err != nil {
		return workload.Eval{}, err
	}
	return res.Eval, nil
}

// orderSel distinguishes the two combination orders in table helpers.
type orderSel bool

const (
	seqOrder orderSel = false
	geoOrder orderSel = true
)

func (o orderSel) String() string {
	if o == geoOrder {
		return "geo"
	}
	return "seq"
}

// Fig7 reproduces Figure 7: precision vs K for δ ∈ {0.5, 0.7, 0.9} under
// both combination orders (Bit method, VS2).
func Fig7(l *Lab) (*stats.Table, error) { return prCurve(l, true) }

// Fig8 reproduces Figure 8: recall vs K, same configuration.
func Fig8(l *Lab) (*stats.Table, error) { return prCurve(l, false) }

func prCurve(l *Lab, precision bool) (*stats.Table, error) {
	metric, title := "recall", "Figure 8: recall vs K (Bit, VS2)"
	if precision {
		metric, title = "precision", "Figure 7: precision vs K (Bit, VS2)"
	}
	dv, err := derive(l.VS2(), 4, 5, partition.GridPyramid)
	if err != nil {
		return nil, err
	}
	deltas := []float64{0.5, 0.7, 0.9}
	headers := []string{"K"}
	for _, o := range []orderSel{seqOrder, geoOrder} {
		for _, d := range deltas {
			headers = append(headers, fmt.Sprintf("%s δ=%.1f", o, d))
		}
	}
	tb := stats.NewTable(title, headers...)
	wFrames := dv.cfg.KeyWindowFrames(5)
	for _, k := range []int{10, 50, 100, 200, 400, 800, 2000} {
		row := []any{k}
		for _, o := range []orderSel{seqOrder, geoOrder} {
			for _, delta := range deltas {
				ev, err := evalDetection(dv, k, delta, wFrames, o)
				if err != nil {
					return nil, err
				}
				if precision {
					row = append(row, ev.Precision)
				} else {
					row = append(row, ev.Recall)
				}
			}
		}
		tb.AddRow(row...)
	}
	_ = metric
	return tb, nil
}

// Fig11 reproduces Figure 11: precision and recall vs basic window size
// (Bit/Sequential/Index on VS2).
func Fig11(l *Lab) (*stats.Table, error) {
	dv, err := derive(l.VS2(), 4, 5, partition.GridPyramid)
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("Figure 11: precision/recall vs basic window size (VS2)",
		"w (s)", "precision", "recall")
	for _, wSec := range []float64{5, 10, 15, 20} {
		wFrames := dv.cfg.KeyWindowFrames(wSec)
		ev, err := evalDetection(dv, 800, 0.7, wFrames, seqOrder)
		if err != nil {
			return nil, err
		}
		tb.AddRow(wSec, ev.Precision, ev.Recall)
	}
	return tb, nil
}

// Fig13 reproduces Figure 13: the Bit method's precision/recall as its own
// similarity threshold δ varies (VS2) — the counterpart of the baselines'
// threshold sweeps in Figures 14 and 15.
func Fig13(l *Lab) (*stats.Table, error) {
	dv, err := derive(l.VS2(), 4, 5, partition.GridPyramid)
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("Figure 13: Bit method precision/recall vs δ (VS2)",
		"δ", "precision", "recall")
	wFrames := dv.cfg.KeyWindowFrames(5)
	for _, delta := range []float64{0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		ev, err := evalDetection(dv, 800, delta, wFrames, seqOrder)
		if err != nil {
			return nil, err
		}
		tb.AddRow(delta, ev.Precision, ev.Recall)
	}
	return tb, nil
}

package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// overloadGates returns the list of violated acceptance gates for one sweep
// (nil when all pass). Factored out so the retry loop below and the failure
// report share one rulebook.
func overloadGates(rep *OverloadReport) []string {
	var v []string
	calib, observe, shed := rep.Rows[0], rep.Rows[1], rep.Rows[2]
	if calib.Recall < 1 {
		v = append(v, fmt.Sprintf("calibration recall %.2f, want 1.00 — the workload itself must be fully detectable", calib.Recall))
	}
	if observe.Level == 0 {
		v = append(v, "observe-only pass never escalated: the tight budget did not register as overload")
	}
	if observe.ExtractShed != 0 || observe.DecodeShed != 0 {
		v = append(v, fmt.Sprintf("observe-only pass shed work (extract=%d decode=%d)", observe.ExtractShed, observe.DecodeShed))
	}
	if observe.Recall < calib.Recall {
		v = append(v, fmt.Sprintf("observe-only recall %.2f below calibration %.2f — observing must not change output", observe.Recall, calib.Recall))
	}
	if shed.Level < 2 {
		v = append(v, fmt.Sprintf("shed pass settled at level %d; at 2× sustainable ingest with a decode-dominated pipeline, extract-only shedding (level 1) cannot bound the p99", shed.Level))
	}
	if shed.DecodeShed == 0 {
		v = append(v, "shed pass escalated to decode shedding but dropped no decodes")
	}
	// The acceptance gate: at 2× sustainable ingest the steady-state p99
	// must come back inside the real-time budget.
	if shed.SteadyP99Sec > rep.BudgetSec {
		v = append(v, fmt.Sprintf("shed steady p99 %.2fms exceeds the %.2fms budget — shedding failed to bound latency",
			shed.SteadyP99Sec*1e3, rep.BudgetSec*1e3))
	}
	// Recall floor: shedding trades fidelity for latency, but most copies
	// must still be caught.
	if shed.Recall < 0.5 {
		v = append(v, fmt.Sprintf("shed recall %.2f below the 0.5 floor", shed.Recall))
	}
	return v
}

// TestOverloadSmoke is the CI gate for the adaptive-ingest layer: the sweep
// (calibrate → observe-only at 2× sustainable ingest → shed) must show the
// controller escalating under the tight budget and shedding bringing the
// steady-state p99 back within it, with recall no worse than the floor.
//
// The sweep measures wall-clock latency, so a scheduler stall or co-tenant
// CPU burst in the wrong pass can fail gates no shedding policy could hold;
// like any timing assertion it gets a bounded number of attempts and passes
// on the first quiet run. When OVERLOAD_REPORT_DIR is set (the CI
// overload-smoke job), the last sweep's report is written as a JSON
// artifact.
func TestOverloadSmoke(t *testing.T) {
	const attempts = 3
	var rep *OverloadReport
	var violations []string
	for a := 1; a <= attempts; a++ {
		var err error
		rep, err = OverloadRun(int64(a))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rep.Rows {
			t.Logf("attempt %d: %-9s budget=%.1fms level=%d p99=%.1fms windows=%d shed=%d/%d recall=%.2f loss=%.1f%%",
				a, r.Mode, r.BudgetSec*1e3, r.Level, r.SteadyP99Sec*1e3,
				r.Windows, r.ExtractShed, r.DecodeShed, r.Recall, r.RecallLossPct)
		}
		violations = overloadGates(rep)
		if violations == nil {
			break
		}
		t.Logf("attempt %d violated %d gate(s): %v", a, len(violations), violations)
	}
	for _, v := range violations {
		t.Error(v)
	}

	if dir := os.Getenv("OVERLOAD_REPORT_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(filepath.Join(dir, "overload-smoke.json"))
		if err != nil {
			t.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

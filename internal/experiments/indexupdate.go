package experiments

import (
	"math/rand"
	"time"

	"vdsms/internal/minhash"
	"vdsms/internal/qindex"
	"vdsms/internal/stats"
)

// AblationIndexUpdate measures the online subscription maintenance of
// paper Section V.C.1 ("Addition of new queries and removal of old queries
// can be performed online"): the cost of adding/removing one query to a
// live Hash-Query index versus rebuilding it from scratch, across index
// sizes.
func AblationIndexUpdate(l *Lab) (*stats.Table, error) {
	const k = 800
	fam, err := minhash.NewFamily(k, 1)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(l.opt.Seed))
	mkQuery := func(id int) qindex.Query {
		ids := make([]uint64, rng.Intn(30)+10)
		for i := range ids {
			ids[i] = uint64(rng.Intn(2000))
		}
		return qindex.Query{ID: id, Length: (rng.Intn(30) + 10) * 2, Sketch: fam.SketchSet(ids)}
	}

	tb := stats.NewTable("Ablation: online query index maintenance (K=800)",
		"m", "online add", "online remove", "full rebuild")
	for _, m := range []int{50, 100, 200} {
		queries := make([]qindex.Query, m)
		for i := range queries {
			queries[i] = mkQuery(i + 1)
		}
		idx, err := qindex.Build(queries)
		if err != nil {
			return nil, err
		}
		extra := mkQuery(m + 1)

		const reps = 20
		var addT, removeT, rebuildT time.Duration
		for r := 0; r < reps; r++ {
			addT += stats.Time(func() {
				if err := idx.Add(extra); err != nil {
					panic(err)
				}
			})
			removeT += stats.Time(func() {
				if err := idx.Remove(extra.ID); err != nil {
					panic(err)
				}
			})
			rebuildT += stats.Time(func() {
				if _, err := qindex.Build(queries); err != nil {
					panic(err)
				}
			})
		}
		tb.AddRow(m, addT/reps, removeT/reps, rebuildT/reps)
	}
	return tb, nil
}

package experiments

import (
	"fmt"
	"sort"
	"time"

	"vdsms/internal/baseline"
	"vdsms/internal/partition"
	"vdsms/internal/stats"
)

// fullRateGOP is the I-frame interval assumed when expanding key-frame
// features to full frame rate: 2 key frames/s × 15 ≈ NTSC 29.97 fps.
const fullRateGOP = 15

// upsample repeats each key-frame feature GOP times, reconstructing the
// full-rate feature stream the frame-by-frame baselines of [1] and [6]
// must process (they have no notion of key frames; only the sketch method
// exploits the compressed-domain key-frame structure).
func upsample(feats [][]float64, factor int) [][]float64 {
	out := make([][]float64, 0, len(feats)*factor)
	for _, f := range feats {
		for i := 0; i < factor; i++ {
			out = append(out, f)
		}
	}
	return out
}

// Fig12 reproduces Figure 12: CPU time of the proposed Bit method vs the
// Seq [1] and Warp [6] baselines across basic window sizes, on the VS2
// stream. The baselines slide a query-length window frame by frame over
// the full-rate stream with the basic window as gap; the sketch method
// touches only key frames. Warp's band r scales its cost further.
func Fig12(l *Lab) (*stats.Table, error) {
	dv, err := derive(l.VS2(), 4, 5, partition.GridPyramid)
	if err != nil {
		return nil, err
	}
	// Expand features to full frame rate for the baselines.
	streamFull := upsample(dv.streamFeats, fullRateGOP)
	queryFull := make(map[int][][]float64, len(dv.queryFeats))
	qids := make([]int, 0, len(dv.queryFeats))
	for qid, f := range dv.queryFeats {
		queryFull[qid] = upsample(f, fullRateGOP)
		qids = append(qids, qid)
	}
	sort.Ints(qids)

	timeBaseline := func(kind baseline.Kind, gapFull, band int) (time.Duration, error) {
		m, err := baseline.New(baseline.Config{Kind: kind, Threshold: 0.2, Gap: gapFull, Band: band})
		if err != nil {
			return 0, err
		}
		for _, qid := range qids {
			if err := m.AddQuery(qid, queryFull[qid]); err != nil {
				return 0, err
			}
		}
		return stats.Time(func() {
			for _, f := range streamFull {
				m.Push(f)
			}
		}), nil
	}

	tb := stats.NewTable("Figure 12: CPU time vs basic window size (VS2; baselines at full frame rate)",
		"w (s)", "bit", "seq[1]", "warp r=30", "warp r=60")
	for _, wSec := range []float64{5, 10, 15, 20} {
		wFrames := dv.cfg.KeyWindowFrames(wSec)
		res, err := runEngine(coreConfig(800, 0.7, wFrames, seqOrder), dv, 0)
		if err != nil {
			return nil, err
		}
		row := []any{wSec, res.Elapsed}
		gapFull := wFrames * fullRateGOP
		tSeq, err := timeBaseline(baseline.Seq, gapFull, 0)
		if err != nil {
			return nil, err
		}
		row = append(row, tSeq)
		// Band widths in full-rate frames: 1 s and 2 s of warping slack.
		for _, r := range []int{30, 60} {
			tWarp, err := timeBaseline(baseline.Warp, gapFull, r)
			if err != nil {
				return nil, err
			}
			row = append(row, tWarp)
		}
		tb.AddRow(row...)
	}
	return tb, nil
}

// Fig14 reproduces Figure 14: the Seq baseline's precision/recall as its
// distance threshold varies, on the temporally reordered VS2 stream. The
// paper's finding: before precision reaches 50%, recall falls below 30%.
func Fig14(l *Lab) (*stats.Table, error) {
	dv, err := derive(l.VS2(), 4, 5, partition.GridPyramid)
	if err != nil {
		return nil, err
	}
	wFrames := dv.cfg.KeyWindowFrames(5)
	tb := stats.NewTable("Figure 14: Seq baseline precision/recall vs distance threshold (VS2)",
		"threshold", "precision", "recall")
	for _, th := range []float64{0.05, 0.1, 0.2, 0.4, 0.8, 1.2, 1.6} {
		ev, _, _, err := runBaseline(baseline.Config{
			Kind: baseline.Seq, Threshold: th, Gap: wFrames}, dv)
		if err != nil {
			return nil, err
		}
		tb.AddRow(th, ev.Precision, ev.Recall)
	}
	return tb, nil
}

// Fig15 reproduces Figure 15: the Warp baseline's precision/recall across
// thresholds for several warping band widths r, on VS2.
func Fig15(l *Lab) (*stats.Table, error) {
	dv, err := derive(l.VS2(), 4, 5, partition.GridPyramid)
	if err != nil {
		return nil, err
	}
	wFrames := dv.cfg.KeyWindowFrames(5)
	bands := []int{2, 6, 10}
	headers := []string{"threshold"}
	for _, r := range bands {
		headers = append(headers, fmt.Sprintf("p r=%d", r), fmt.Sprintf("r r=%d", r))
	}
	tb := stats.NewTable("Figure 15: Warp baseline precision/recall vs threshold (VS2)", headers...)
	for _, th := range []float64{0.05, 0.1, 0.2, 0.4, 0.8, 1.2, 1.6} {
		row := []any{th}
		for _, r := range bands {
			ev, _, _, err := runBaseline(baseline.Config{
				Kind: baseline.Warp, Threshold: th, Gap: wFrames, Band: r}, dv)
			if err != nil {
				return nil, err
			}
			row = append(row, ev.Precision, ev.Recall)
		}
		tb.AddRow(row...)
	}
	return tb, nil
}

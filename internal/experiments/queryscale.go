package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"vdsms/internal/core"
	"vdsms/internal/stats"
)

// QueryScale measures the pre-filter tier (internal/prefilter) against the
// bare Hash-Query index as the subscribed query count m grows 10³ → 10⁵
// (10⁶ at -scale ≥ 4, where the index alone needs gigabytes). The workload
// is synthetic — cell-id streams, not the video pipeline, because encoding
// 10⁵ query videos is not the point — but structurally faithful: every
// query draws from its own content alphabet, the monitored stream is
// mostly unrelated background with a few true copies spliced in, exactly
// the regime the paper's "millions of users" north star implies, where
// almost every per-row probe finds nothing.
//
// Reported per level: subscription (bulk index build) time, stream
// wall-clock with the tier off and on, the resulting speedup, match
// equality (must always be true — the tier is output-neutral), the row
// rejection rate (each rejected row rejects every candidate query at that
// hash position before any index work), the filter false-positive rate,
// and the tier's memory footprint per registered query.
func QueryScale(l *Lab) (*stats.Table, error) {
	levels := []int{1_000, 10_000, 100_000}
	if l.opt.Scale >= 4 {
		levels = append(levels, 1_000_000)
	} else if l.opt.Scale < 1 {
		levels = levels[:2]
	}
	tb := stats.NewTable("Query scale: pre-filter tier vs bare HQ index (synthetic, K=128)",
		"queries", "subscribe", "probe off", "probe on", "speedup",
		"identical", "matches", "reject%", "fp%", "filter", "B/query")
	for _, m := range levels {
		row, err := QueryScaleRun(m, l.opt.Seed)
		if err != nil {
			return nil, err
		}
		tb.AddRow(row.Queries,
			time.Duration(row.SubscribeSec*float64(time.Second)).Round(time.Millisecond),
			time.Duration(row.BaseSec*float64(time.Second)).Round(time.Millisecond),
			time.Duration(row.PreSec*float64(time.Second)).Round(time.Millisecond),
			fmt.Sprintf("%.2fx", row.Speedup),
			row.Identical, row.Matches,
			fmt.Sprintf("%.1f", row.RejectPct),
			fmt.Sprintf("%.2f", row.FPPct),
			fmt.Sprintf("%.1fMB", float64(row.FilterBytes)/(1<<20)),
			fmt.Sprintf("%.1f", row.BytesPerQuery))
	}
	return tb, nil
}

// QueryScaleRow is one measured level of the query-scale sweep, in
// machine-readable form (the CI queryscale-smoke artifact).
type QueryScaleRow struct {
	Queries      int     `json:"queries"`
	SubscribeSec float64 `json:"subscribe_sec"`
	// BaseSec and PreSec are stream wall-clock with the tier off and on.
	BaseSec float64 `json:"stream_sec_prefilter_off"`
	PreSec  float64 `json:"stream_sec_prefilter_on"`
	Speedup float64 `json:"speedup"`
	// Identical is the output-neutrality check: the two runs' match lists
	// compared element-wise.
	Identical bool `json:"identical_matches"`
	Matches   int  `json:"matches"`
	// RejectPct is the percentage of per-row candidate probes the filter
	// rejected in O(1); FPPct the percentage of admitted rows whose index
	// search found nothing (wasted binary searches).
	RejectPct     float64 `json:"reject_pct"`
	FPPct         float64 `json:"fp_pct"`
	FilterBytes   int     `json:"filter_bytes"`
	BytesPerQuery float64 `json:"bytes_per_query"`
}

// QueryScaleRun measures one query-count level: m synthetic queries
// subscribed in one batch, a mostly-background stream with 8 true copies,
// streamed through two engines differing only in Config.PreFilter.
func QueryScaleRun(m int, seed int64) (QueryScaleRow, error) {
	if seed == 0 {
		seed = 20080407
	}
	rng := rand.New(rand.NewSource(seed))
	const (
		k           = 128 // keeps the 10⁵-query index in memory (K=800 would 6× it)
		w           = 10
		queryFrames = 40
		copies      = 8
	)
	ids := make([]int, m)
	queries := make([][]uint64, m)
	for i := range queries {
		ids[i] = i + 1
		queries[i] = synthStream(rng, i+1, queryFrames)
	}
	// Stream: background drawn from content alphabets disjoint from every
	// query, with `copies` true inserts of distinct queries spliced in.
	var stream []uint64
	for c := 0; c < copies; c++ {
		stream = append(stream, synthStream(rng, m+10+c, 200)...)
		stream = append(stream, queries[(c*max(m/copies, 1))%m]...)
	}
	stream = append(stream, synthStream(rng, m+10+copies, 200)...)

	run := func(pre bool) ([]core.Match, core.PreFilterStats, float64, float64, error) {
		cfg := core.Config{
			K: k, Seed: 11, Delta: 0.6, Lambda: 2, WindowFrames: w,
			Order: core.Sequential, Method: core.Bit, UseIndex: true, PreFilter: pre,
		}
		eng, err := core.NewEngine(cfg)
		if err != nil {
			return nil, core.PreFilterStats{}, 0, 0, err
		}
		sub := stats.Time(func() { err = eng.AddQueries(ids, queries) })
		if err != nil {
			return nil, core.PreFilterStats{}, 0, 0, err
		}
		elapsed := stats.Time(func() {
			eng.PushFrames(stream)
			eng.Flush()
		})
		return eng.Matches, eng.PreFilterStats(), sub.Seconds(), elapsed.Seconds(), nil
	}

	baseM, _, subSec, baseSec, err := run(false)
	if err != nil {
		return QueryScaleRow{}, err
	}
	preM, pf, _, preSec, err := run(true)
	if err != nil {
		return QueryScaleRow{}, err
	}

	identical := len(baseM) == len(preM)
	if identical {
		for i := range baseM {
			if baseM[i] != preM[i] {
				identical = false
				break
			}
		}
	}
	row := QueryScaleRow{
		Queries:      m,
		SubscribeSec: subSec,
		BaseSec:      baseSec,
		PreSec:       preSec,
		Identical:    identical,
		Matches:      len(preM),
		FilterBytes:  pf.Bytes,
	}
	if preSec > 0 {
		row.Speedup = baseSec / preSec
	}
	if pf.RowProbes > 0 {
		row.RejectPct = 100 * float64(pf.RowRejects) / float64(pf.RowProbes)
	}
	if admitted := pf.RowProbes - pf.RowRejects; admitted > 0 {
		row.FPPct = 100 * float64(pf.EmptySearches) / float64(admitted)
	}
	if m > 0 {
		row.BytesPerQuery = float64(pf.Bytes) / float64(m)
	}
	return row, nil
}

// synthStream generates a cell-id stream for one content: ids drawn from a
// content-disjoint alphabet with shot-like persistence (the experiments'
// analogue of the core tests' idStream, sized for 10⁶ contents).
func synthStream(rng *rand.Rand, content, frames int) []uint64 {
	base := uint64(content) * 1_000_000
	out := make([]uint64, frames)
	cur := base + uint64(rng.Intn(50))
	for i := range out {
		if rng.Float64() < 0.3 {
			cur = base + uint64(rng.Intn(50))
		}
		out[i] = cur
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package experiments

import (
	"fmt"

	"vdsms/internal/core"
	"vdsms/internal/edit"
	"vdsms/internal/feature"
	"vdsms/internal/partition"
	"vdsms/internal/stats"
	"vdsms/internal/vframe"
	"vdsms/internal/workload"
)

// AblationLambda validates the tempo-scaling bound of Section IV.A: the
// paper (citing Fu et al. [28]) caps candidate sequences at λL with λ=2,
// asserting the optimal tempo scaling never exceeds 2. This experiment
// re-times each copy by a stretch factor before insertion and measures
// recall under λ=2 and λ=1: stretches within λ stay detectable (candidate
// expiry leaves room to cover them); stretches beyond it collapse.
func AblationLambda(l *Lab) (*stats.Table, error) {
	ex, err := feature.NewExtractor(feature.Config{D: 5})
	if err != nil {
		return nil, err
	}
	pt, err := partition.New(4, 5, partition.GridPyramid)
	if err != nil {
		return nil, err
	}
	base := l.VS1()
	cfg := base.Cfg

	ids := func(src vframe.Source) ([]uint64, error) {
		feats, err := workload.Features(src, cfg.Quality, ex)
		if err != nil {
			return nil, err
		}
		out := make([]uint64, len(feats))
		for i, f := range feats {
			out[i] = pt.Cell(f)
		}
		return out, nil
	}

	// Background filler between copies, reused.
	bg := vframe.NewSynth(vframe.SynthConfig{
		W: cfg.W, H: cfg.H, FPS: cfg.KeyFPS,
		NumFrames: cfg.KeyWindowFrames(30), Seed: cfg.Seed * 999,
	})
	bgIDs, err := ids(bg)
	if err != nil {
		return nil, err
	}
	queryIDs := make(map[int][]uint64, len(base.Queries))
	for _, q := range base.Queries {
		qi, err := ids(q.Video)
		if err != nil {
			return nil, err
		}
		queryIDs[q.ID] = qi
	}

	wFrames := cfg.KeyWindowFrames(5)
	tb := stats.NewTable("Ablation: tempo scaling vs the λL candidate bound (VS1 copies re-timed)",
		"stretch", "recall λ=1", "recall λ=2", "recall λ=4")
	for _, stretch := range []float64{1.0, 1.25, 1.5, 2.0, 3.0} {
		// Build a stream of re-timed copies separated by background.
		var streamIDs []uint64
		var truth []workload.Insertion
		for _, q := range base.Queries {
			streamIDs = append(streamIDs, bgIDs...)
			begin := len(streamIDs)
			stretched := q.Video
			if stretch != 1.0 {
				// Slow the copy down: decode-rate trick via Resample twice.
				stretched = edit.Resample(edit.Resample(q.Video, cfg.KeyFPS/stretch), cfg.KeyFPS)
			}
			si, err := ids(stretched)
			if err != nil {
				return nil, err
			}
			streamIDs = append(streamIDs, si...)
			truth = append(truth, workload.Insertion{QueryID: q.ID, Begin: begin, End: len(streamIDs)})
		}
		streamIDs = append(streamIDs, bgIDs...)

		row := []any{fmt.Sprintf("%.2f×", stretch)}
		for _, lambda := range []float64{1, 2, 4} {
			eng, err := core.NewEngine(core.Config{
				K: 800, Seed: 1, Delta: 0.5, Lambda: lambda, WindowFrames: wFrames,
				Order: core.Sequential, Method: core.Bit, UseIndex: true,
			})
			if err != nil {
				return nil, err
			}
			for qid, qi := range queryIDs {
				if err := eng.AddQuery(qid, qi); err != nil {
					return nil, err
				}
			}
			for _, id := range streamIDs {
				eng.PushFrame(id)
			}
			eng.Flush()
			reports := make([]workload.Position, 0, len(eng.Matches))
			for _, m := range eng.Matches {
				reports = append(reports, workload.Position{QueryID: m.QueryID, P: m.DetectedAt})
			}
			ev := workload.Evaluate(reports, truth, wFrames)
			row = append(row, ev.Recall)
		}
		tb.AddRow(row...)
	}
	return tb, nil
}

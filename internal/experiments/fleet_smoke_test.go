package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestFleetScaleSmoke is the reduced-scale CI gate for the multi-tenant
// pool: 64 synthetic streams multiplexed over the shared query plane (the
// full sweep's smallest level). It pins the fleet's two contracts —
// sampled streams byte-identical to isolated single-stream engines, and
// per-stream heap growth that stays a small fraction of the shared plane
// (query memory O(queries), not O(queries × streams)) — and, when
// FLEET_REPORT_DIR is set (the CI fleet-smoke job), writes the measured
// row as a JSON artifact.
func TestFleetScaleSmoke(t *testing.T) {
	row, err := FleetRun(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fleet n=64: %+v", row)
	if !row.Identical {
		t.Error("sampled fleet streams diverge from isolated engines; pooling must be output-neutral")
	}
	if row.Matches == 0 {
		t.Error("workload produced no matches; the equivalence check is vacuous")
	}
	if row.PlaneBytes <= 0 {
		t.Error("shared plane reports no memory; accounting broken")
	}
	// The O(queries) claim, in measurable form: what each extra stream
	// costs must be far below what the 200-query plane costs once. The
	// bound is loose (windows, candidate lists and queues are real) but
	// fails immediately if per-stream state ever re-acquires a plane copy.
	if row.BytesPerStream > float64(row.PlaneBytes)/4 {
		t.Errorf("per-stream heap %.0fB exceeds plane/4 (%dB) — per-stream state is no longer O(1) in queries",
			row.BytesPerStream, row.PlaneBytes/4)
	}

	if dir := os.Getenv("FLEET_REPORT_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(filepath.Join(dir, "fleet-smoke.json"))
		if err != nil {
			t.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode([]FleetRow{row}); err != nil {
			f.Close()
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

package experiments

import (
	"strings"
	"testing"

	"vdsms/internal/partition"
)

// tinyLab keeps experiment tests fast: 6 shorts.
func tinyLab() *Lab { return NewLab(Options{Scale: 0.25, Seed: 11}) }

func TestFindRegistry(t *testing.T) {
	if len(Registry) < 14 {
		t.Fatalf("registry has %d experiments", len(Registry))
	}
	for _, e := range Registry {
		if e.Run == nil || e.Name == "" || e.Paper == "" {
			t.Errorf("malformed experiment %+v", e)
		}
	}
	if _, err := Find("fig6"); err != nil {
		t.Error(err)
	}
	if _, err := Find("nonsense"); err == nil {
		t.Error("unknown experiment found")
	}
}

func TestLabWorkloadsCached(t *testing.T) {
	l := tinyLab()
	if l.VS1() != l.VS1() || l.VS2() != l.VS2() || l.BigVS1() != l.BigVS1() {
		t.Error("lab does not cache workloads")
	}
	if l.VS1() == l.VS2() {
		t.Error("VS1 and VS2 are the same workload")
	}
}

func TestDeriveShapes(t *testing.T) {
	l := tinyLab()
	dv, err := derive(l.VS1(), 4, 5, partition.GridPyramid)
	if err != nil {
		t.Fatal(err)
	}
	if len(dv.streamIDs) != l.VS1().Stream.Len() {
		t.Errorf("stream ids %d for %d key frames", len(dv.streamIDs), l.VS1().Stream.Len())
	}
	if len(dv.queryIDs) != len(l.VS1().Queries) {
		t.Errorf("query ids for %d queries, want %d", len(dv.queryIDs), len(l.VS1().Queries))
	}
	for qid, ids := range dv.queryIDs {
		if len(ids) != len(dv.queryFeats[qid]) {
			t.Errorf("query %d ids/feats length mismatch", qid)
		}
	}
}

func TestMembershipSelfRetrievalVS1Style(t *testing.T) {
	// On VS2, originals must retrieve their edited copies most of the time
	// at the membership-test level — this is the foundation Table II rests
	// on.
	l := tinyLab()
	p, r, err := membership(l, 4, 5, partition.GridPyramid, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.5 {
		t.Errorf("membership recall %.2f too low — fingerprints not robust to edits", r)
	}
	if p < 0.5 {
		t.Errorf("membership precision %.2f too low", p)
	}
}

func TestRunEngineSubsetOfQueries(t *testing.T) {
	l := tinyLab()
	dv, err := derive(l.VS1(), 4, 5, partition.GridPyramid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runEngine(coreConfig(200, 0.6, 10, seqOrder), dv, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Only 2 queries subscribed → truth restricted to those, and no match
	// may reference an unsubscribed query.
	if res.Eval.Inserted != 2 {
		t.Errorf("Inserted = %d, want 2", res.Eval.Inserted)
	}
	for _, m := range res.Matches {
		if m.QueryID > 2 {
			t.Errorf("match for unsubscribed query %d", m.QueryID)
		}
	}
}

// TestEveryExperimentRuns executes the entire registry at tiny scale and
// sanity-checks table shapes. This is the smoke test that keeps vcdbench
// and bench_test.go honest.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments registry sweep is not -short")
	}
	l := tinyLab()
	for _, e := range Registry {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			tb, err := e.Run(l)
			if err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			if tb.NumRows() == 0 {
				t.Fatalf("%s produced no rows", e.Name)
			}
			s := tb.String()
			if !strings.Contains(s, "#") {
				t.Errorf("%s table has no title:\n%s", e.Name, s)
			}
		})
	}
}

package experiments

import (
	"fmt"

	"vdsms/internal/partition"
	"vdsms/internal/stats"
)

// Parallel measures the intra-stream parallel matching kernel: the
// many-query VS1 workload is streamed through engines differing only in
// Config.Workers, reporting wall-clock, speedup over the serial kernel,
// match agreement and shard balance. The paper runs everything serially;
// this experiment documents the scaling headroom of the sharded kernel on
// the machine at hand (speedups flatten at the physical core count).
func Parallel(l *Lab) (*stats.Table, error) {
	dv, err := derive(l.BigVS1(), 4, 5, partition.GridPyramid)
	if err != nil {
		return nil, err
	}
	wFrames := dv.cfg.KeyWindowFrames(5)
	tb := stats.NewTable("Parallel kernel: CPU time vs workers (VS1, bit-seq-index)",
		"workers", "elapsed", "speedup", "matches", "identical", "balance")

	base, err := runEngine(coreConfig(800, 0.7, wFrames, seqOrder), dv, 0)
	if err != nil {
		return nil, err
	}
	for _, workers := range []int{0, 1, 2, 4, 8} {
		cfg := coreConfig(800, 0.7, wFrames, seqOrder)
		cfg.Workers = workers
		res, err := runEngine(cfg, dv, 0)
		if err != nil {
			return nil, err
		}
		identical := len(res.Matches) == len(base.Matches)
		if identical {
			for i := range res.Matches {
				if res.Matches[i] != base.Matches[i] {
					identical = false
					break
				}
			}
		}
		var total, max int64
		for _, sh := range res.Stats.Shards {
			total += sh.Compared
			if sh.Compared > max {
				max = sh.Compared
			}
		}
		balance := 1.0
		if max > 0 {
			balance = float64(total) / (float64(len(res.Stats.Shards)) * float64(max))
		}
		tb.AddRow(workers, res.Elapsed,
			fmt.Sprintf("%.2fx", base.Elapsed.Seconds()/res.Elapsed.Seconds()),
			len(res.Matches), identical, fmt.Sprintf("%.2f", balance))
	}
	return tb, nil
}

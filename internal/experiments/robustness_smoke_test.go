package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"vdsms/internal/core"
	"vdsms/internal/edit"
	"vdsms/internal/partition"
	"vdsms/internal/workload"
)

// TestRobustnessSmoke is the reduced-scale end-to-end robustness gate: a
// small temporal-attack workload (3 shorts × {none, speed, drop, reorder})
// streamed through the real engine in two configurations, scored per
// attack family. It pins recall floors per family so a future speed
// optimisation that silently trades detection quality fails here, and —
// when ROBUSTNESS_REPORT_DIR is set (the CI robustness-smoke job) — writes
// the per-family P/R report as JSON and CSV artifacts.
func TestRobustnessSmoke(t *testing.T) {
	aw := workload.BuildAttack(workload.AttackConfig{
		Base: workload.Config{
			NumShorts: 3, ShortMinSec: 10, ShortMaxSec: 16,
			GapMinSec: 4, GapMaxSec: 6,
			KeyFPS: 2, W: 96, H: 80, Quality: 78, Seed: 20080407,
		},
		Families: []string{edit.FamilyNone, edit.FamilySpeed, edit.FamilyDrop, edit.FamilyReorder},
	})
	dv, err := derive(aw.Workload, 4, 5, partition.GridPyramid)
	if err != nil {
		t.Fatal(err)
	}
	w := dv.cfg.KeyWindowFrames(5)

	// Recall floors per family at δ=0.5. The workload is deterministic, so
	// these pin today's quality; lower them only with a quality analysis,
	// never to make a speed PR pass.
	floors := map[string]float64{
		edit.FamilyNone:    1.0,
		edit.FamilySpeed:   0.6,
		edit.FamilyDrop:    0.6,
		edit.FamilyReorder: 0.6,
	}

	reportDir := os.Getenv("ROBUSTNESS_REPORT_DIR")
	for _, tc := range []struct {
		name   string
		method core.Method
		order  core.Order
	}{
		{"bit-seq", core.Bit, core.Sequential},
		{"sketch-geo", core.Sketch, core.Geometric},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := core.Config{
				K: 400, Seed: 1, Delta: 0.5, Lambda: 2, WindowFrames: w,
				Method: tc.method, Order: tc.order, UseIndex: true,
			}
			run, err := temporalRun(cfg, dv, aw.Meta, w)
			if err != nil {
				t.Fatal(err)
			}
			if run.Overall.Precision < 0.9 {
				t.Errorf("overall precision %.3f below 0.9", run.Overall.Precision)
			}
			seen := map[string]bool{}
			for _, fr := range run.Families {
				seen[fr.Family] = true
				if floor, ok := floors[fr.Family]; ok && fr.Recall < floor {
					t.Errorf("family %q recall %.3f below floor %.2f (%+v)", fr.Family, fr.Recall, floor, fr.Eval)
				}
			}
			for fam := range floors {
				if !seen[fam] {
					t.Errorf("family %q missing from results", fam)
				}
			}
			if reportDir != "" {
				writeSmokeReport(t, reportDir, tc.name, run, dv.cfg.KeyFPS)
			}
		})
	}
}

// writeSmokeReport renders one configuration's per-family report in both
// machine-readable formats for the CI artifact upload.
func writeSmokeReport(t *testing.T, dir, name string, run TemporalRun, keyFPS float64) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	rep := workload.NewFamilyReport(run.Overall, run.Families, 5, keyFPS)
	for ext, fn := range map[string]func(*os.File) error{
		"json": func(f *os.File) error { return rep.WriteJSON(f) },
		"csv":  func(f *os.File) error { return rep.WriteCSV(f) },
	} {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("robustness-%s.%s", name, ext)))
		if err != nil {
			t.Fatal(err)
		}
		if err := fn(f); err != nil {
			f.Close()
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestQueryScaleSmoke is the reduced-scale CI gate for the pre-filter
// tier: 10³ synthetic queries streamed with the tier off and on (the full
// sweep's smallest level). It pins the tier's three contracts — match
// output identical, ≥90% of per-row candidate probes rejected before any
// index work on this mostly-background workload, and a bounded
// false-positive rate — and, when QUERYSCALE_REPORT_DIR is set (the CI
// queryscale-smoke job), writes the measured row as a JSON artifact.
func TestQueryScaleSmoke(t *testing.T) {
	row, err := QueryScaleRun(1_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("queryscale m=1000: %+v", row)
	if !row.Identical {
		t.Error("pre-filter changed match output; the tier must be byte-identical")
	}
	if row.Matches == 0 {
		t.Error("workload produced no matches; the equality check is vacuous")
	}
	if row.RejectPct < 90 {
		t.Errorf("row rejection rate %.1f%% below the 90%% bar", row.RejectPct)
	}
	if row.FPPct > 10 {
		t.Errorf("false-positive rate %.2f%% exceeds 10%% — filter sizing has degraded", row.FPPct)
	}
	if row.BytesPerQuery <= 0 || row.BytesPerQuery > 4096 {
		t.Errorf("bytes/query %.1f outside (0, 4096] — memory accounting broken or filter oversized", row.BytesPerQuery)
	}

	if dir := os.Getenv("QUERYSCALE_REPORT_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(filepath.Join(dir, "queryscale-smoke.json"))
		if err != nil {
			t.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode([]QueryScaleRow{row}); err != nil {
			f.Close()
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"vdsms/internal/core"
	"vdsms/internal/partition"
	"vdsms/internal/snapshot"
	"vdsms/internal/stats"
)

// Recovery measures the checkpoint/restore subsystem (beyond the paper):
// the VS1 stream is cut at several points; at each cut the engine state is
// serialized and restored, the remaining frames are journaled to and
// replayed from a WAL, and the recovered run must finish with exactly the
// matches of an uninterrupted one. Columns report checkpoint size and
// write/restore latency, WAL append throughput (with per-batch fsync, the
// monitor's durability path), and replay throughput — the two rates that
// bound recovery time after a crash.
func Recovery(l *Lab) (*stats.Table, error) {
	dv, err := derive(l.VS1(), 4, 5, partition.GridPyramid)
	if err != nil {
		return nil, err
	}
	wFrames := dv.cfg.KeyWindowFrames(5)
	cfg := coreConfig(800, 0.7, wFrames, seqOrder)
	meta := snapshot.Meta{U: 4, D: 5, KeyFPS: dv.cfg.KeyFPS}

	// Reference: one uninterrupted run.
	base, err := runEngine(cfg, dv, 0)
	if err != nil {
		return nil, err
	}

	dir, err := os.MkdirTemp("", "vdsms-recovery")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	tb := stats.NewTable("Recovery: checkpoint cost and WAL replay throughput (VS1, bit-seq-index)",
		"cut", "ckpt-bytes", "write", "restore", "wal-frames", "append-fps", "replay-fps", "identical")
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		cut := int(frac * float64(len(dv.streamIDs)))
		res, err := newSubscribedEngine(cfg, dv)
		if err != nil {
			return nil, err
		}
		res.PushFrames(dv.streamIDs[:cut])

		// Checkpoint: serialize the full matching state.
		var buf bytes.Buffer
		var werr error
		writeT := stats.Time(func() {
			werr = snapshot.Write(&buf, &snapshot.Checkpoint{Meta: meta, Engine: *res.ExportState()})
		})
		if werr != nil {
			return nil, werr
		}

		// Restore into a fresh engine.
		var restored *core.Engine
		var rerr error
		restoreT := stats.Time(func() {
			var ck *snapshot.Checkpoint
			if ck, rerr = snapshot.Read(bytes.NewReader(buf.Bytes())); rerr == nil {
				restored, rerr = core.RestoreEngine(cfg, &ck.Engine)
			}
		})
		if rerr != nil {
			return nil, rerr
		}

		// Journal the tail with the monitor's append-then-sync discipline,
		// one window-sized batch at a time, then replay it.
		tail := dv.streamIDs[cut:]
		walPath := filepath.Join(dir, fmt.Sprintf("cut-%.2f.wal", frac))
		var aerr error
		appendT := stats.Time(func() {
			var wal *snapshot.WAL
			if wal, aerr = snapshot.CreateWAL(walPath, cfg.Fingerprint(meta), cut); aerr != nil {
				return
			}
			defer wal.Close()
			for off := 0; off < len(tail); off += wFrames {
				end := off + wFrames
				if end > len(tail) {
					end = len(tail)
				}
				if aerr = wal.Append(tail[off:end]); aerr != nil {
					return
				}
				if aerr = wal.Sync(); aerr != nil {
					return
				}
			}
		})
		if aerr != nil {
			return nil, aerr
		}
		var ids []uint64
		var perr error
		replayT := stats.Time(func() {
			if _, _, ids, perr = snapshot.ReplayWAL(walPath); perr != nil {
				return
			}
			restored.PushFrames(ids)
			restored.Flush()
		})
		if perr != nil {
			return nil, perr
		}

		res.Flush()
		recovered := append(append([]core.Match(nil), res.Matches...), restored.Matches...)
		identical := len(recovered) == len(base.Matches)
		if identical {
			for i := range recovered {
				if recovered[i] != base.Matches[i] {
					identical = false
					break
				}
			}
		}
		tb.AddRow(fmt.Sprintf("%.0f%%", frac*100), buf.Len(),
			writeT.Round(time.Microsecond), restoreT.Round(time.Microsecond),
			len(tail), fps(len(tail), appendT), fps(len(ids), replayT), identical)
	}
	return tb, nil
}

// newSubscribedEngine builds an engine with every workload query subscribed
// but no stream consumed.
func newSubscribedEngine(cfg core.Config, d *derived) (*core.Engine, error) {
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	// Deterministic subscription order, matching runEngine.
	qids := make([]int, 0, len(d.queryIDs))
	for qid := range d.queryIDs {
		qids = append(qids, qid)
	}
	sort.Ints(qids)
	for _, qid := range qids {
		if err := eng.AddQuery(qid, d.queryIDs[qid]); err != nil {
			return nil, err
		}
	}
	return eng, nil
}

// fps formats a frames-per-second rate.
func fps(frames int, d time.Duration) string {
	if d <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.0f", float64(frames)/d.Seconds())
}

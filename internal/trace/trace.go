// Package trace is the decision-provenance layer of the VDSMS: a bounded,
// lock-light event journal recording the trajectory of every candidate
// sequence through the paper's machinery (basic windows → candidate list
// C_L → Lemma 2 prunes → λL expiry → report at sim ≥ δ), plus a compact
// provenance record per emitted match and a sampled exact-Jaccard audit of
// the K-min-hash estimator against Theorem 1's deviation bound.
//
// Design constraints, in order:
//
//  1. With tracing disabled the matching kernel must not change at all: no
//     allocations, no atomics beyond one per-window enabled check, and a
//     byte-identical match stream. Every recording site in internal/core is
//     guarded by a single nil check on a per-window recorder pointer.
//  2. With tracing enabled, events are appended to per-shard buffers owned
//     exclusively by one worker goroutine (no locks on the shard path) and
//     folded into the journal once per window, on the serial spine, in an
//     order that is invariant across worker counts.
//  3. The journal is bounded: a ring buffer overwrites the oldest events,
//     so a forgotten-enabled tracer costs fixed memory, never growth.
//
// Events, match records and audit results are consumed by GET /debug/events,
// GET /debug/matches/{id}, vcdmon -explain and the slog bridge (LogEvents).
package trace

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"vdsms/internal/telemetry"
)

// Kind discriminates candidate-lifecycle events.
type Kind uint8

const (
	// Born: a new candidate sequence entered C_L (size-1, at the current
	// basic window). Candidate-level: QID is -1.
	Born Kind = iota
	// Extended: a candidate (or the basic window alone) was evaluated
	// against a query; Estimate carries the similarity estimate — the
	// per-window trajectory points an explain record is built from.
	Extended
	// Pruned: the Lemma 2 prune dropped a query from a candidate; Margin is
	// how far past the prune line the signature was, as a fraction of K.
	Pruned
	// Dropped: a query was dropped from a candidate because a window was
	// not related to it (Section V.B's consecutive-relatedness rule).
	Dropped
	// Expired: the candidate exceeded the λL length bound for the query
	// (QID set), or left C_L entirely (QID -1).
	Expired
	// Reported: the candidate crossed sim ≥ δ and a match was emitted.
	Reported
	// NearMiss: the estimate peaked inside [δ−ε, δ) — within estimator
	// noise of a report; Margin is δ − estimate.
	NearMiss

	// KindAny matches every kind in a Filter.
	KindAny Kind = 0xff
)

var kindNames = [...]string{"born", "extended", "pruned", "dropped", "expired", "reported", "near_miss"}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON renders the kind as its string name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// ParseKind maps a kind name (as produced by String) back to its value.
func ParseKind(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// Event is one candidate-lifecycle observation. The struct is fixed-size
// and pointer-free so per-shard buffers stay flat and the journal ring is
// one contiguous allocation.
type Event struct {
	// Seq is the journal-wide sequence number, assigned at fold time.
	Seq uint64 `json:"seq"`
	// Stream identifies the monitored stream (see Journal.NewStream).
	Stream uint32 `json:"-"`
	// StreamName is filled when rendering (filter results), not stored.
	StreamName string `json:"stream,omitempty"`
	// Kind is the lifecycle transition.
	Kind Kind `json:"kind"`
	// QID is the query the event concerns, or -1 for candidate-level
	// events (Born, candidate Expired).
	QID int32 `json:"query"`
	// Start is the candidate's start frame (the window start for
	// window-alone evaluations).
	Start int32 `json:"startFrame"`
	// End is the end frame of the basic window that produced the event.
	End int32 `json:"endFrame"`
	// Windows is the candidate size in basic windows at event time.
	Windows int32 `json:"windows"`
	// Estimate is the similarity estimate at event time, or -1 when the
	// event kind carries none.
	Estimate float32 `json:"estimate"`
	// Margin is kind-specific: distance past the Lemma 2 prune line
	// (Pruned) or below the report threshold (NearMiss), else 0.
	Margin float32 `json:"margin,omitempty"`
}

// AuditResult is one sampled exact-Jaccard audit of a report or prune
// decision: the engine's estimate against the exact similarity recomputed
// from raw cell-id sets via internal/partition, judged by Theorem 1's
// deviation bound.
type AuditResult struct {
	// Exact is the exact Jaccard similarity of the candidate's cell-id set
	// and the query's.
	Exact float64 `json:"exactJaccard"`
	// Estimate is what the sketch/signature machinery believed.
	Estimate float64 `json:"estimate"`
	// AbsError is |Estimate − Exact|.
	AbsError float64 `json:"absError"`
	// Bound is Theorem 1's ε for the configured K (see ErrorBound).
	Bound float64 `json:"bound"`
	// Violated reports AbsError > Bound — with a correctly configured K
	// this happens with probability below 1−confidence per audit.
	Violated bool `json:"violated"`
}

// MatchRecord is the provenance record attached to one emitted match: the
// full explain payload of GET /debug/matches/{id} and vcdmon -explain.
type MatchRecord struct {
	// ID is the journal-wide match id (1-based, assigned at emission).
	ID uint64 `json:"id"`
	// Stream is the monitored stream's name.
	Stream string `json:"stream"`
	// QueryID is the matched continuous query.
	QueryID int `json:"query"`
	// StartFrame/EndFrame delimit the matching candidate in key frames.
	StartFrame int `json:"startFrame"`
	EndFrame   int `json:"endFrame"`
	// DetectedAt is the key frame at which the match was reported.
	DetectedAt int `json:"detectedAt"`
	// Windows is the candidate size in basic windows.
	Windows int `json:"windows"`
	// Similarity is the estimate that crossed δ.
	Similarity float64 `json:"similarity"`
	// Order and Method are the combination order and comparison
	// representation that produced the match.
	Order  string `json:"order"`
	Method string `json:"method"`
	// Trajectory is the per-window similarity-estimate trajectory of the
	// (candidate, query) pair, oldest window first, reconstructed from the
	// Extended events still in the journal (older points may have been
	// evicted by the ring).
	Trajectory []float32 `json:"trajectory,omitempty"`
	// Audit, when the report decision was sampled by the exact-audit
	// channel, carries the estimator-error measurement.
	Audit *AuditResult `json:"audit,omitempty"`
}

// ErrorBound returns Theorem 1's two-sided deviation bound for a K-min-hash
// estimator: the smallest ε such that P(|est − J| ≥ ε) ≤ 1 − confidence
// under the Hoeffding bound P(|est − J| ≥ ε) ≤ 2·exp(−2ε²K) — the K
// position indicators are Bernoulli(J) with the min-wise family, so the
// fraction of equal positions concentrates at rate √K. For K=800 and
// confidence 1−10⁻⁶, ε ≈ 0.095.
func ErrorBound(k int, confidence float64) float64 {
	if k <= 0 {
		return 1
	}
	tail := 1 - confidence
	if tail <= 0 || tail >= 2 {
		tail = 1e-6
	}
	return math.Sqrt(math.Log(2/tail) / (2 * float64(k)))
}

// DefaultConfidence is the confidence level the audit channel judges
// estimator errors at when the caller does not choose one.
const DefaultConfidence = 1 - 1e-6

// Audit metrics, process-wide (the audit path is serial per engine; plain
// atomic counters suffice).
var (
	telAuditTotal = [2]*telemetry.Counter{
		telemetry.Default.Counter("vcd_sketch_audit_total",
			"Report/prune decisions exact-audited against raw cell-id sets.",
			telemetry.L("decision", "report")),
		telemetry.Default.Counter("vcd_sketch_audit_total",
			"Report/prune decisions exact-audited against raw cell-id sets.",
			telemetry.L("decision", "prune")),
	}
	telAuditErr = [2]*telemetry.Histogram{
		telemetry.Default.Histogram("vcd_sketch_error_abs",
			"Absolute K-min-hash estimator error |estimate − exact Jaccard| of audited decisions.",
			ErrorBuckets, telemetry.L("decision", "report")),
		telemetry.Default.Histogram("vcd_sketch_error_abs",
			"Absolute K-min-hash estimator error |estimate − exact Jaccard| of audited decisions.",
			ErrorBuckets, telemetry.L("decision", "prune")),
	}
	telAuditViolations = telemetry.Default.Counter("vcd_sketch_error_bound_violations_total",
		"Audited decisions whose estimator error exceeded Theorem 1's deviation bound — nonzero values indicate sketch misconfiguration (K too small for δ).")
	telAuditSkipped = telemetry.Default.Counter("vcd_sketch_audit_skipped_total",
		"Sampled decisions that could not be audited (raw cell ids unavailable, e.g. after checkpoint restore).")
)

// ErrorBuckets is the estimator-error histogram layout: fine resolution
// around the K=800 bound (≈0.095) so drift is visible well before recall
// suffers.
var ErrorBuckets = []float64{
	0.0025, 0.005, 0.01, 0.025, 0.05, 0.075, 0.1, 0.15, 0.2, 0.3, 0.5,
}

// auditDecision indexes the per-decision metric pairs.
const (
	AuditReport = 0
	AuditPrune  = 1
)

// ObserveAudit publishes one audit measurement. decision is AuditReport or
// AuditPrune.
func ObserveAudit(decision int, res AuditResult) {
	telAuditTotal[decision].Inc()
	telAuditErr[decision].Observe(res.AbsError)
	if res.Violated {
		telAuditViolations.Inc()
	}
}

// ObserveAuditSkipped counts a sampled decision the auditor had to skip.
func ObserveAuditSkipped() { telAuditSkipped.Inc() }

// Journal metrics.
var (
	telEventsByKind = func() [len(kindNames)]*telemetry.Counter {
		var out [len(kindNames)]*telemetry.Counter
		for i, n := range kindNames {
			out[i] = telemetry.Default.Counter("vcd_trace_events_total",
				"Candidate-lifecycle events recorded by the trace journal.",
				telemetry.L("kind", n))
		}
		return out
	}()
	telEventsEvicted = telemetry.Default.Counter("vcd_trace_events_evicted_total",
		"Events overwritten by the bounded journal ring before being read.")
	telSubDropped = telemetry.Default.Counter("vcd_trace_subscriber_dropped_total",
		"Event batches dropped because a subscriber's channel was full.")
	telTraceMatches = telemetry.Default.Counter("vcd_trace_matches_total",
		"Provenance records attached to emitted matches.")
)

// DefaultEventCap and DefaultMatchCap size the Default journal's rings when
// a caller arms tracing without choosing capacities.
const (
	DefaultEventCap = 16384
	DefaultMatchCap = 1024
)

// Journal is the bounded event store. One journal serves every stream of a
// process (the deployment reality: /debug/events is a process endpoint);
// engines write through per-stream Recorders. All methods are safe for
// concurrent use; the write path locks once per basic window, not per
// event.
type Journal struct {
	mu sync.Mutex

	eventCap int
	events   []Event // ring, len == eventCap once full
	next     uint64  // total events ever appended == next Seq

	matchCap int
	matches  []MatchRecord // ring
	matchN   uint64        // total records ever appended == next ID

	streams []string // stream id → name

	subs   map[int]chan []Event
	subSeq int
}

// NewJournal builds a journal with the given ring capacities (events and
// match records). Non-positive capacities fall back to the defaults.
func NewJournal(eventCap, matchCap int) *Journal {
	if eventCap <= 0 {
		eventCap = DefaultEventCap
	}
	if matchCap <= 0 {
		matchCap = DefaultMatchCap
	}
	return &Journal{eventCap: eventCap, matchCap: matchCap}
}

// Default is the process-wide journal, the analogue of telemetry.Default:
// the facade's recorders write to it and the server's /debug endpoints read
// it. Rings are allocated lazily, so unarmed binaries pay nothing.
var Default = NewJournal(DefaultEventCap, DefaultMatchCap)

// SetEventCapacity resizes the event ring (existing events are dropped —
// call at arm time, not mid-trace). Non-positive keeps the current size.
func (j *Journal) SetEventCapacity(n int) {
	if n <= 0 {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.eventCap = n
	j.events = nil
	// next keeps counting: Seq stays monotonic across resizes.
}

// NewStream registers a monitored stream and returns its id. An empty name
// is auto-assigned "stream-N".
func (j *Journal) NewStream(name string) uint32 {
	j.mu.Lock()
	defer j.mu.Unlock()
	id := uint32(len(j.streams))
	if name == "" {
		name = fmt.Sprintf("stream-%d", id)
	}
	j.streams = append(j.streams, name)
	return id
}

// streamName resolves an id under the lock.
func (j *Journal) streamName(id uint32) string {
	if int(id) < len(j.streams) {
		return j.streams[id]
	}
	return fmt.Sprintf("stream-%d", id)
}

// append folds one window's events in, assigning sequence numbers, and
// fans a copy out to subscribers. Called once per basic window per traced
// engine.
func (j *Journal) append(evs []Event) {
	if len(evs) == 0 {
		return
	}
	j.mu.Lock()
	if j.events == nil {
		j.events = make([]Event, 0, j.eventCap)
	}
	for i := range evs {
		evs[i].Seq = j.next
		j.next++
		telEventsByKind[evs[i].Kind].Inc()
		if len(j.events) < j.eventCap {
			j.events = append(j.events, evs[i])
		} else {
			j.events[int(evs[i].Seq)%j.eventCap] = evs[i]
			telEventsEvicted.Inc()
		}
	}
	var fanout []chan []Event
	if len(j.subs) > 0 {
		fanout = make([]chan []Event, 0, len(j.subs))
		for _, ch := range j.subs {
			fanout = append(fanout, ch)
		}
	}
	var batch []Event
	if len(fanout) > 0 {
		batch = append([]Event(nil), evs...)
		for i := range batch {
			batch[i].StreamName = j.streamName(batch[i].Stream)
		}
	}
	j.mu.Unlock()
	for _, ch := range fanout {
		select {
		case ch <- batch:
		default:
			telSubDropped.Inc()
		}
	}
}

// Subscribe registers a live event consumer: each folded window's batch is
// sent to the returned channel (non-blocking — slow consumers drop batches,
// counted by vcd_trace_subscriber_dropped_total). cancel unregisters and
// closes the channel; it is safe to call more than once.
func (j *Journal) Subscribe(buffer int) (<-chan []Event, func()) {
	if buffer < 1 {
		buffer = 16
	}
	ch := make(chan []Event, buffer)
	j.mu.Lock()
	if j.subs == nil {
		j.subs = make(map[int]chan []Event)
	}
	id := j.subSeq
	j.subSeq++
	j.subs[id] = ch
	j.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			j.mu.Lock()
			delete(j.subs, id)
			j.mu.Unlock()
			close(ch)
		})
	}
	return ch, cancel
}

// Filter selects events from the journal.
type Filter struct {
	// Stream restricts to one stream name; empty matches all.
	Stream string
	// QID restricts to one query id; 0 matches all (query ids are
	// positive; candidate-level events carry -1 and match only QID 0).
	QID int
	// Kind restricts to one event kind; KindAny matches all.
	Kind Kind
	// SinceSeq keeps only events with Seq >= SinceSeq.
	SinceSeq uint64
	// Limit caps the result to the most recent N events; 0 means all
	// retained.
	Limit int
}

// Events returns the retained events matching f, oldest first, with
// StreamName resolved.
func (j *Journal) Events(f Filter) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := len(j.events)
	out := make([]Event, 0, min(n, 256))
	// Ring order: once full, the oldest event lives at next % cap.
	start := 0
	if n == j.eventCap {
		start = int(j.next) % j.eventCap
	}
	for i := 0; i < n; i++ {
		ev := j.events[(start+i)%n]
		if ev.Seq < f.SinceSeq {
			continue
		}
		if f.Kind != KindAny && ev.Kind != f.Kind {
			continue
		}
		if f.QID != 0 && int(ev.QID) != f.QID {
			continue
		}
		if f.Stream != "" && j.streamName(ev.Stream) != f.Stream {
			continue
		}
		ev.StreamName = j.streamName(ev.Stream)
		out = append(out, ev)
	}
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// EventCount returns the total number of events ever journaled.
func (j *Journal) EventCount() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next
}

// recordMatch stores a provenance record, assigning its id, and builds its
// trajectory from the Extended events still retained for the same
// (stream, query, candidate start).
func (j *Journal) recordMatch(rec MatchRecord, stream uint32) uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.matchN++
	rec.ID = j.matchN
	rec.Stream = j.streamName(stream)
	for i := 0; i < len(j.events); i++ {
		idx := i
		if len(j.events) == j.eventCap {
			idx = (int(j.next) + i) % j.eventCap
		}
		ev := j.events[idx]
		if ev.Stream == stream && ev.Kind == Extended &&
			int(ev.QID) == rec.QueryID && int(ev.Start) == rec.StartFrame {
			rec.Trajectory = append(rec.Trajectory, ev.Estimate)
		}
	}
	if j.matches == nil {
		j.matches = make([]MatchRecord, 0, j.matchCap)
	}
	if len(j.matches) < j.matchCap {
		j.matches = append(j.matches, rec)
	} else {
		j.matches[int(rec.ID-1)%j.matchCap] = rec
	}
	telTraceMatches.Inc()
	return rec.ID
}

// Match returns the provenance record with the given id, if still retained.
func (j *Journal) Match(id uint64) (MatchRecord, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if id == 0 || id > j.matchN {
		return MatchRecord{}, false
	}
	var rec MatchRecord
	if len(j.matches) < j.matchCap {
		if int(id-1) >= len(j.matches) {
			return MatchRecord{}, false
		}
		rec = j.matches[id-1]
	} else {
		rec = j.matches[int(id-1)%j.matchCap]
	}
	if rec.ID != id {
		return MatchRecord{}, false // evicted by the ring
	}
	return rec, true
}

// Matches returns the most recent retained provenance records (up to
// limit; 0 means all retained), oldest first.
func (j *Journal) Matches(limit int) []MatchRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := len(j.matches)
	out := make([]MatchRecord, 0, n)
	start := 0
	if n == j.matchCap {
		start = int(j.matchN) % j.matchCap
	}
	for i := 0; i < n; i++ {
		out = append(out, j.matches[(start+i)%n])
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

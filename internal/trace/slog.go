package trace

import (
	"context"
	"log/slog"
	"sync"
)

// LogEvents bridges a journal to structured logging: a background goroutine
// subscribes to the journal and emits one slog record per event (vcd.event
// message, lifecycle fields as attributes). Returns a stop function that
// unsubscribes and waits for the goroutine to exit — the goroutine-leak
// guarantee the test suite pins down.
//
// Slow handlers cannot stall the matching kernel: the subscription channel
// drops batches when full (counted by vcd_trace_subscriber_dropped_total).
func LogEvents(j *Journal, logger *slog.Logger) (stop func()) {
	if logger == nil {
		logger = slog.Default()
	}
	ch, cancel := j.Subscribe(64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for batch := range ch {
			for _, ev := range batch {
				attrs := []slog.Attr{
					slog.Uint64("seq", ev.Seq),
					slog.String("stream", ev.StreamName),
					slog.String("kind", ev.Kind.String()),
					slog.Int("query", int(ev.QID)),
					slog.Int("startFrame", int(ev.Start)),
					slog.Int("endFrame", int(ev.End)),
					slog.Int("windows", int(ev.Windows)),
				}
				if ev.Estimate >= 0 {
					attrs = append(attrs, slog.Float64("estimate", float64(ev.Estimate)))
				}
				if ev.Margin != 0 {
					attrs = append(attrs, slog.Float64("margin", float64(ev.Margin)))
				}
				logger.LogAttrs(context.Background(), slog.LevelInfo, "vcd.event", attrs...)
			}
		}
	}()
	return func() {
		cancel()
		wg.Wait()
	}
}

package trace

import (
	"math"
	"reflect"
	"testing"
	"time"
)

func TestKindRoundTrip(t *testing.T) {
	for k := Born; k <= NearMiss; k++ {
		got, ok := ParseKind(k.String())
		if !ok || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := ParseKind("bogus"); ok {
		t.Error("ParseKind accepted an unknown name")
	}
	if Kind(200).String() == "" {
		t.Error("out-of-range kind has no string form")
	}
}

func TestErrorBound(t *testing.T) {
	// K=800 at confidence 1−10⁻⁶: ε = sqrt(ln(2·10⁶)/1600) ≈ 0.0952.
	got := ErrorBound(800, DefaultConfidence)
	want := math.Sqrt(math.Log(2e6) / 1600)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ErrorBound(800) = %v, want %v", got, want)
	}
	if ErrorBound(0, DefaultConfidence) != 1 {
		t.Error("K<=0 must degrade to the trivial bound 1")
	}
	// More hashes tighten the bound.
	if ErrorBound(1600, DefaultConfidence) >= got {
		t.Error("bound did not shrink with K")
	}
}

// publishWindow journals one window's worth of events through a recorder,
// the way an engine does.
func publishWindow(r *Recorder, evs ...Event) {
	for _, ev := range evs {
		r.Shard(0).Add(ev.Kind, int(ev.QID), int(ev.Start), int(ev.End), int(ev.Windows), float64(ev.Estimate), float64(ev.Margin))
	}
	r.Publish(r.FoldWindow())
}

func TestJournalRingEviction(t *testing.T) {
	j := NewJournal(4, 2)
	r := NewRecorder(j, "ring", 1, "sequential", "bit")
	for i := 0; i < 6; i++ {
		publishWindow(r, Event{Kind: Extended, QID: 1, Start: int32(10 * i), End: int32(10*i + 10), Windows: 1, Estimate: 0.5})
	}
	if got := j.EventCount(); got != 6 {
		t.Fatalf("EventCount = %d, want 6", got)
	}
	evs := j.Events(Filter{Kind: KindAny})
	if len(evs) != 4 {
		t.Fatalf("retained %d events, ring cap is 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(2 + i); ev.Seq != want {
			t.Errorf("event %d has Seq %d, want %d (oldest-first after eviction)", i, ev.Seq, want)
		}
	}
}

func TestEventsFilter(t *testing.T) {
	j := NewJournal(64, 8)
	ra := NewRecorder(j, "cam-a", 1, "sequential", "bit")
	rb := NewRecorder(j, "cam-b", 1, "sequential", "bit")
	publishWindow(ra,
		Event{Kind: Born, QID: -1, Start: 0, End: 10, Windows: 1, Estimate: -1},
		Event{Kind: Extended, QID: 3, Start: 0, End: 10, Windows: 1, Estimate: 0.4},
		Event{Kind: Reported, QID: 3, Start: 0, End: 10, Windows: 1, Estimate: 0.8},
	)
	publishWindow(rb, Event{Kind: Extended, QID: 5, Start: 0, End: 10, Windows: 1, Estimate: 0.2})

	if got := j.Events(Filter{Kind: KindAny}); len(got) != 4 {
		t.Fatalf("unfiltered: %d events, want 4", len(got))
	}
	if got := j.Events(Filter{Kind: Reported}); len(got) != 1 || got[0].QID != 3 {
		t.Errorf("kind filter: %+v", got)
	}
	if got := j.Events(Filter{Kind: KindAny, QID: 5}); len(got) != 1 || got[0].StreamName != "cam-b" {
		t.Errorf("qid filter: %+v", got)
	}
	if got := j.Events(Filter{Kind: KindAny, Stream: "cam-a"}); len(got) != 3 {
		t.Errorf("stream filter: %d events, want 3", len(got))
	}
	if got := j.Events(Filter{Kind: KindAny, SinceSeq: 3}); len(got) != 1 || got[0].Seq != 3 {
		t.Errorf("since filter: %+v", got)
	}
	if got := j.Events(Filter{Kind: KindAny, Limit: 2}); len(got) != 2 || got[0].Seq != 2 {
		t.Errorf("limit keeps the most recent events: %+v", got)
	}
}

func TestMatchRecordTrajectoryAndEviction(t *testing.T) {
	j := NewJournal(64, 2)
	r := NewRecorder(j, "m", 1, "sequential", "bit")
	// Three windows extend candidate (q=7, start=0); the trajectory must
	// collect their estimates oldest-first.
	for i, est := range []float64{0.3, 0.5, 0.9} {
		publishWindow(r, Event{Kind: Extended, QID: 7, Start: 0, End: int32(10*i + 10), Windows: int32(i + 1), Estimate: float32(est)})
	}
	id := r.RecordMatch(7, 0, 30, 30, 3, 0.9, nil)
	if id != 1 {
		t.Fatalf("first match id = %d", id)
	}
	if r.LastMatchID() != id {
		t.Errorf("LastMatchID = %d, want %d", r.LastMatchID(), id)
	}
	rec, ok := j.Match(id)
	if !ok {
		t.Fatal("match record not retained")
	}
	if rec.Stream != "m" || rec.QueryID != 7 || rec.Order != "sequential" || rec.Method != "bit" {
		t.Errorf("record %+v", rec)
	}
	want := []float32{0.3, 0.5, 0.9}
	if !reflect.DeepEqual(rec.Trajectory, want) {
		t.Errorf("trajectory %v, want %v", rec.Trajectory, want)
	}
	// Ring cap is 2: after two more records, id 1 must be evicted.
	r.RecordMatch(7, 40, 50, 50, 1, 0.8, nil)
	r.RecordMatch(7, 60, 70, 70, 1, 0.8, nil)
	if _, ok := j.Match(1); ok {
		t.Error("evicted record still served")
	}
	if _, ok := j.Match(3); !ok {
		t.Error("latest record missing")
	}
	if got := j.Matches(0); len(got) != 2 || got[0].ID != 2 || got[1].ID != 3 {
		t.Errorf("Matches(0) = %+v", got)
	}
	if _, ok := j.Match(999); ok {
		t.Error("unknown id served")
	}
}

// TestFoldWindowShardInvariant: the same event set distributed over
// different shard counts must fold to the identical slice — the property
// that makes /debug/events worker-count-invariant.
func TestFoldWindowShardInvariant(t *testing.T) {
	events := []Event{
		{Kind: Extended, QID: 4, Start: 0, End: 10, Windows: 1, Estimate: 0.2},
		{Kind: Pruned, QID: 2, Start: 0, End: 10, Windows: 2, Estimate: 0.1, Margin: 0.05},
		{Kind: Extended, QID: 1, Start: 10, End: 20, Windows: 1, Estimate: 0.6},
		{Kind: Reported, QID: 1, Start: 10, End: 20, Windows: 1, Estimate: 0.8},
		{Kind: Extended, QID: 3, Start: 0, End: 10, Windows: 1, Estimate: 0.4},
		{Kind: Extended, QID: 6, Start: 20, End: 30, Windows: 1, Estimate: 0.3},
	}
	fold := func(nshards int) []Event {
		j := NewJournal(64, 8)
		r := NewRecorder(j, "fold", nshards, "sequential", "bit")
		// Shard ownership: query id mod shard count, like the engine's
		// query partition. Feed shards in reverse to prove insertion order
		// across shards does not matter.
		for i := len(events) - 1; i >= 0; i-- {
			ev := events[i]
			r.Shard(int(ev.QID)%nshards).Add(ev.Kind, int(ev.QID), int(ev.Start), int(ev.End), int(ev.Windows), float64(ev.Estimate), float64(ev.Margin))
		}
		r.Serial().Add(Born, -1, 20, 30, 1, -1, 0)
		return append([]Event(nil), r.FoldWindow()...)
	}
	want := fold(1)
	for _, n := range []int{2, 3, 4} {
		if got := fold(n); !reflect.DeepEqual(got, want) {
			t.Errorf("fold with %d shards diverges:\n1 shard:  %+v\n%d shards: %+v", n, want, n, got)
		}
	}
	// Serial spine events must come last, after the sorted per-query phase.
	if last := want[len(want)-1]; last.Kind != Born || last.QID != -1 {
		t.Errorf("serial event not appended last: %+v", want[len(want)-1])
	}
}

func TestSubscribe(t *testing.T) {
	j := NewJournal(64, 8)
	r := NewRecorder(j, "sub", 1, "sequential", "bit")
	ch, cancel := j.Subscribe(4)
	publishWindow(r, Event{Kind: Born, QID: -1, Start: 0, End: 10, Windows: 1, Estimate: -1})
	select {
	case batch := <-ch:
		if len(batch) != 1 || batch[0].Kind != Born || batch[0].StreamName != "sub" {
			t.Errorf("batch %+v", batch)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no batch delivered")
	}
	// A full subscriber must never block the publisher.
	for i := 0; i < 10; i++ {
		publishWindow(r, Event{Kind: Extended, QID: 1, Start: int32(10 * i), End: int32(10*i + 10), Windows: 1, Estimate: 0.1})
	}
	cancel()
	cancel() // idempotent
	for range ch {
	} // closed after drain — would hang forever if cancel leaked the channel
	// Publishing after cancel must not panic or deliver.
	publishWindow(r, Event{Kind: Expired, QID: -1, Start: 0, End: 10, Windows: 1, Estimate: -1})
}

func TestRecorderEnabledToggle(t *testing.T) {
	var nilRec *Recorder
	if nilRec.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	if nilRec.LastMatchID() != 0 {
		t.Error("nil recorder has a match id")
	}
	j := NewJournal(16, 4)
	r := NewRecorder(j, "", 1, "geometric", "sketch")
	if !r.Enabled() {
		t.Error("fresh recorder not enabled")
	}
	if prev := r.SetEnabled(false); !prev || r.Enabled() {
		t.Error("SetEnabled(false) did not stick")
	}
	if r.StreamName() != "stream-0" {
		t.Errorf("auto name = %q", r.StreamName())
	}
}

package trace

import (
	"bytes"
	"log/slog"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer makes a bytes.Buffer safe to read while the slog bridge
// goroutine writes to it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitGoroutines polls until the process goroutine count drops back to at
// most n (scheduling may briefly keep an exiting goroutine visible).
func waitGoroutines(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines did not settle: %d running, want <= %d", runtime.NumGoroutine(), n)
}

func TestLogEventsBridgesAndStops(t *testing.T) {
	j := NewJournal(64, 8)
	r := NewRecorder(j, "logged", 1, "sequential", "bit")
	before := runtime.NumGoroutine()

	var buf syncBuffer
	stop := LogEvents(j, slog.New(slog.NewJSONHandler(&buf, nil)))
	publishWindow(r,
		Event{Kind: Born, QID: -1, Start: 0, End: 10, Windows: 1, Estimate: -1},
		Event{Kind: Reported, QID: 4, Start: 0, End: 10, Windows: 1, Estimate: 0.83},
	)
	// The bridge is asynchronous; wait for the lines to land.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !strings.Contains(buf.String(), "reported") {
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	stop() // stopping twice must be safe

	out := buf.String()
	for _, want := range []string{"vcd.event", `"stream":"logged"`, `"kind":"born"`, `"kind":"reported"`, `"query":4`} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
	// Born carries no estimate; Reported does.
	if strings.Contains(strings.Split(out, "\n")[0], "estimate") {
		t.Errorf("born event logged an estimate: %s", strings.Split(out, "\n")[0])
	}
	waitGoroutines(t, before)
}

func TestSubscribeCancelLeaksNothing(t *testing.T) {
	j := NewJournal(16, 4)
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		_, cancel := j.Subscribe(2)
		cancel()
	}
	j.mu.Lock()
	n := len(j.subs)
	j.mu.Unlock()
	if n != 0 {
		t.Errorf("%d subscribers still registered after cancel", n)
	}
	waitGoroutines(t, before)
}

package trace

import (
	"sort"
	"sync/atomic"
)

// Recorder is one engine's write handle into a Journal. Shard buffers are
// owned by exactly one worker goroutine during the parallel phase of a
// window; FoldWindow and Publish run on the serial spine, so the recorder
// itself needs no locking beyond the journal's once-per-window append.
//
// The enabled flag may be flipped at runtime (POST /debug/events arming,
// vcdmon -explain); the engine samples it once per window, so a toggle
// never tears a window's event set.
type Recorder struct {
	j      *Journal
	stream uint32
	on     atomic.Bool

	order, method string

	shards  []ShardLog
	serial  ShardLog
	scratch []Event // fold buffer, reused across windows

	lastMatch atomic.Uint64
}

// NewRecorder registers a stream with the journal and returns its
// recorder. order and method label provenance records ("sequential"/
// "geometric", "bit"/"sketch"). The recorder starts enabled.
func NewRecorder(j *Journal, streamName string, nshards int, order, method string) *Recorder {
	if nshards < 1 {
		nshards = 1
	}
	r := &Recorder{
		j:      j,
		stream: j.NewStream(streamName),
		order:  order,
		method: method,
		shards: make([]ShardLog, nshards),
	}
	r.on.Store(true)
	return r
}

// Enabled reports whether the engine should record this window.
func (r *Recorder) Enabled() bool { return r != nil && r.on.Load() }

// SetEnabled toggles recording and returns the previous state.
func (r *Recorder) SetEnabled(on bool) bool { return r.on.Swap(on) }

// StreamName returns the journal name of the recorder's stream.
func (r *Recorder) StreamName() string {
	r.j.mu.Lock()
	defer r.j.mu.Unlock()
	return r.j.streamName(r.stream)
}

// Journal returns the journal this recorder writes to.
func (r *Recorder) Journal() *Journal { return r.j }

// ShardLog is the single-writer event buffer of one query shard.
type ShardLog struct {
	ev []Event
}

// Shard returns shard i's buffer. The pointer is stable for the recorder's
// lifetime, so engines may cache it per window.
func (r *Recorder) Shard(i int) *ShardLog { return &r.shards[i] }

// Serial returns the buffer for events recorded on the serial spine
// (candidate birth and expiry, structural bucket changes).
func (r *Recorder) Serial() *ShardLog { return &r.serial }

// Add appends one event. est < 0 means "no estimate".
func (l *ShardLog) Add(k Kind, qid, start, end, windows int, est, margin float64) {
	l.ev = append(l.ev, Event{
		Kind:     k,
		QID:      int32(qid),
		Start:    int32(start),
		End:      int32(end),
		Windows:  int32(windows),
		Estimate: float32(est),
		Margin:   float32(margin),
	})
}

// FoldWindow merges the window's shard and serial buffers into one slice
// ordered invariantly of the worker count — (Start, QID, Kind), ties kept
// in shard insertion order, which is deterministic because one query is
// always owned by one shard — and resets the buffers. The returned slice
// is valid until the next FoldWindow.
func (r *Recorder) FoldWindow() []Event {
	out := r.scratch[:0]
	for i := range r.shards {
		out = append(out, r.shards[i].ev...)
		r.shards[i].ev = r.shards[i].ev[:0]
	}
	sort.SliceStable(out, func(a, b int) bool {
		x, y := out[a], out[b]
		if x.Start != y.Start {
			return x.Start < y.Start
		}
		if x.QID != y.QID {
			return x.QID < y.QID
		}
		return x.Kind < y.Kind
	})
	// Serial spine events (birth, expiry) are appended after the per-query
	// phase they conclude; they are identical for every worker count.
	out = append(out, r.serial.ev...)
	r.serial.ev = r.serial.ev[:0]
	r.scratch = out
	return out
}

// Publish stamps the window's folded events with the recorder's stream and
// journals them.
func (r *Recorder) Publish(evs []Event) {
	for i := range evs {
		evs[i].Stream = r.stream
	}
	r.j.append(evs)
}

// RecordMatch attaches a provenance record to an emitted match and returns
// its journal id. Runs on the serial spine, in emission order, so ids are
// deterministic for a deterministic match stream.
func (r *Recorder) RecordMatch(qid, start, end, detectedAt, windows int, sim float64, audit *AuditResult) uint64 {
	id := r.j.recordMatch(MatchRecord{
		QueryID:    qid,
		StartFrame: start,
		EndFrame:   end,
		DetectedAt: detectedAt,
		Windows:    windows,
		Similarity: sim,
		Order:      r.order,
		Method:     r.method,
		Audit:      audit,
	}, r.stream)
	r.lastMatch.Store(id)
	return id
}

// LastMatchID returns the journal id of the most recent match this
// recorder emitted (0 when none yet). Safe to call from an OnMatch
// callback — record creation happens before the callback fires.
func (r *Recorder) LastMatchID() uint64 {
	if r == nil {
		return 0
	}
	return r.lastMatch.Load()
}

// Package prefilter implements the compact membership tier that sits in
// front of the Hash-Query index (paper Section V.C, internal/qindex) when
// the number of continuous queries grows toward 10⁵–10⁶.
//
// The Hash-Query index already guarantees that only related queries are
// walked, but every basic window still pays K per-row probes — a binary
// search over an m-entry row per hash function — and at large m almost all
// of them find nothing: a window's min-hash value at row i equals some
// query's value at row i only when the window shares content with that
// query. Following Araujo et al., "Large-Scale Query-by-Image Video
// Retrieval Using Bloom Filters", a Filter summarises the key set
// {(row i, value v) : some query holds v at hash position i} in a blocked
// Bloom filter, so a window's candidate probe at row i is rejected in O(1)
// — one cache line touched — before any exact index work. The filter has
// no false negatives, so a row that may hold an equal value is always
// searched exactly and match output is byte-identical with the tier on or
// off; false positives only cost one wasted binary search.
//
// Layout (deterministic): the bit array is an array of 512-bit blocks (one
// cache line, 8×uint64). A key derives two 64-bit hashes; the first picks
// the block, the second supplies four 9-bit in-block bit positions. The
// layout depends only on the sizing inputs and the key set — bit-setting
// is commutative — so two filters built over the same keys with the same
// capacity are bit-identical.
//
// Churn (rebuild-on-threshold): Bloom bits cannot be cleared on key
// removal — positions are shared between keys — so Remove only counts dead
// keys, which over-approximates the set (safe: stale keys can only cause
// false positives, never false negatives). The owner rebuilds from its
// authoritative key source once NeedsRebuild reports that dead keys exceed
// half the live ones, or that the filter is saturated beyond its sizing
// capacity (where the false-positive budget would degrade). Counting
// Bloom variants were rejected: 4-bit counters quadruple the memory of a
// tier whose whole point is to be small, and the rebuild is O(m·K) — the
// same cost the Hash-Query index already pays for a single Add.
package prefilter

import "fmt"

const (
	// blockWords is the number of 64-bit words per block: 512 bits, one
	// cache line, so a membership test touches exactly one line.
	blockWords = 8
	blockBits  = blockWords * 64
	// probesPerKey is the number of bits set per key inside its block.
	probesPerKey = 4
	// DefaultBitsPerKey sizes the filter at ~12 bits per expected key,
	// which puts the blocked-Bloom false-positive rate around 0.5–1% —
	// at most a few wasted binary searches per thousand row probes.
	DefaultBitsPerKey = 12
	// minDeadForRebuild keeps tiny filters from rebuilding on every
	// removal; below this many dead keys staleness is never reported.
	minDeadForRebuild = 64
)

// Filter is a blocked Bloom filter over (row, value) keys. The zero value
// is not usable; call New. Concurrent readers (MayContain) are safe;
// Add/Remove require external synchronisation, matching the Hash-Query
// index they shadow.
type Filter struct {
	blocks    []uint64
	blockMask uint64 // nblocks−1 (nblocks is a power of two)
	capKeys   int    // keys the filter was sized for
	live      int    // keys added and not removed
	dead      int    // removed keys whose bits remain set
}

// New returns an empty filter sized for expectedKeys at bitsPerKey bits
// each (DefaultBitsPerKey when bitsPerKey <= 0). The block count rounds up
// to a power of two, so the realised capacity — see CapacityKeys — is at
// least the requested one.
func New(expectedKeys, bitsPerKey int) *Filter {
	if bitsPerKey <= 0 {
		bitsPerKey = DefaultBitsPerKey
	}
	if expectedKeys < 1 {
		expectedKeys = 1
	}
	needBits := uint64(expectedKeys) * uint64(bitsPerKey)
	nblocks := nextPow2((needBits + blockBits - 1) / blockBits)
	return &Filter{
		blocks:    make([]uint64, nblocks*blockWords),
		blockMask: nblocks - 1,
		capKeys:   int(nblocks * blockBits / uint64(bitsPerKey)),
	}
}

// nextPow2 rounds n up to a power of two (minimum 1).
func nextPow2(n uint64) uint64 {
	p := uint64(1)
	for p < n {
		p <<= 1
	}
	return p
}

// mix64 is the SplitMix64 finaliser, the same mixer the min-hash family
// uses to scramble structured inputs.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// keyHash derives the block-selection and bit-selection hashes of one
// (row, value) key. Row and value are mixed together so equal values at
// different hash positions occupy independent bits.
func keyHash(row int, v uint64) (block, bits uint64) {
	x := mix64(v ^ (uint64(row)+1)*0x9e3779b97f4a7c15)
	return x, mix64(x ^ 0xd6e8feb86659fd93)
}

// Add inserts the key (row, v). Adding a key twice is harmless (the bits
// are already set) but counts twice toward saturation; owners tracking a
// key *set* should add each key once.
func (f *Filter) Add(row int, v uint64) {
	block, bits := keyHash(row, v)
	base := (block & f.blockMask) * blockWords
	for p := 0; p < probesPerKey; p++ {
		bit := (bits >> (9 * p)) & (blockBits - 1)
		f.blocks[base+bit/64] |= 1 << (bit % 64)
	}
	f.live++
}

// AddSketch inserts one key per sketch position: (0, sk[0]) … (K−1,
// sk[K−1]) — a subscribed query's full row footprint.
func (f *Filter) AddSketch(sk []uint64) {
	for i, v := range sk {
		f.Add(i, v)
	}
}

// Clone returns a deep copy of the filter. Writers practising
// copy-on-write clone, mutate the copy, and publish it while readers keep
// testing the original; cost is one O(bytes) memcpy of the bit array.
func (f *Filter) Clone() *Filter {
	return &Filter{
		blocks:    append([]uint64(nil), f.blocks...),
		blockMask: f.blockMask,
		capKeys:   f.capKeys,
		live:      f.live,
		dead:      f.dead,
	}
}

// MayContain reports whether the key (row, v) may have been added: false
// means definitely absent, true means present or a false positive.
func (f *Filter) MayContain(row int, v uint64) bool {
	block, bits := keyHash(row, v)
	base := (block & f.blockMask) * blockWords
	for p := 0; p < probesPerKey; p++ {
		bit := (bits >> (9 * p)) & (blockBits - 1)
		if f.blocks[base+bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// RemoveKeys records the removal of n keys whose bits stay set (Bloom bits
// are shared and cannot be cleared). The filter keeps over-approximating
// the live set; once NeedsRebuild trips, the owner rebuilds from its
// authoritative key source.
func (f *Filter) RemoveKeys(n int) {
	f.dead += n
	f.live -= n
	if f.live < 0 {
		f.live = 0
	}
}

// Keys returns the number of live keys.
func (f *Filter) Keys() int { return f.live }

// DeadKeys returns the number of removed keys still encoded in the bits.
func (f *Filter) DeadKeys() int { return f.dead }

// CapacityKeys returns the number of keys the filter was sized for; beyond
// it the false-positive budget degrades and NeedsRebuild trips.
func (f *Filter) CapacityKeys() int { return f.capKeys }

// Bytes returns the memory footprint of the bit array.
func (f *Filter) Bytes() int { return len(f.blocks) * 8 }

// NeedsRebuild reports that the filter should be rebuilt from the
// authoritative key set: either encoded keys (live + dead) exceed the
// sizing capacity, or dead keys outnumber half the live ones (with a
// floor so small filters don't thrash).
func (f *Filter) NeedsRebuild() bool {
	if f.live+f.dead > f.capKeys {
		return true
	}
	return f.dead > minDeadForRebuild && f.dead*2 > f.live
}

// String implements fmt.Stringer for diagnostics.
func (f *Filter) String() string {
	return fmt.Sprintf("prefilter.Filter{keys=%d dead=%d cap=%d bytes=%d}",
		f.live, f.dead, f.capKeys, f.Bytes())
}

package prefilter

import (
	"math/rand"
	"reflect"
	"testing"
)

// randKeys draws n distinct (row, value) keys across k rows.
func randKeys(rng *rand.Rand, n, k int) [][2]uint64 {
	seen := make(map[[2]uint64]bool, n)
	out := make([][2]uint64, 0, n)
	for len(out) < n {
		key := [2]uint64{uint64(rng.Intn(k)), rng.Uint64()}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, key)
	}
	return out
}

// TestNoFalseNegatives: every added key must test positive — the property
// the byte-identical probe path depends on.
func TestNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := randKeys(rng, 5000, 64)
	f := New(len(keys), 0)
	for _, key := range keys {
		f.Add(int(key[0]), key[1])
	}
	for _, key := range keys {
		if !f.MayContain(int(key[0]), key[1]) {
			t.Fatalf("added key (row %d, %#x) tests negative", key[0], key[1])
		}
	}
	if f.Keys() != len(keys) {
		t.Errorf("Keys()=%d, want %d", f.Keys(), len(keys))
	}
}

// TestFalsePositiveRate: at the default sizing, keys never added must be
// rejected almost always (the documented ~1% budget, asserted loosely).
func TestFalsePositiveRate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	keys := randKeys(rng, 20000, 128)
	f := New(len(keys), 0)
	for _, key := range keys {
		f.Add(int(key[0]), key[1])
	}
	fp := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		// Fresh random values are almost surely not in the key set.
		if f.MayContain(rng.Intn(128), rng.Uint64()|1<<63) {
			fp++
		}
	}
	if rate := float64(fp) / trials; rate > 0.03 {
		t.Errorf("false-positive rate %.4f exceeds 3%% at default sizing", rate)
	}
}

// TestDeterministicLayout: two filters built over the same keys with the
// same sizing are bit-identical regardless of insertion order.
func TestDeterministicLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys := randKeys(rng, 3000, 32)
	a := New(len(keys), 0)
	b := New(len(keys), 0)
	for _, key := range keys {
		a.Add(int(key[0]), key[1])
	}
	perm := rng.Perm(len(keys))
	for _, i := range perm {
		b.Add(int(keys[i][0]), keys[i][1])
	}
	if !reflect.DeepEqual(a.blocks, b.blocks) {
		t.Fatal("same key set, same sizing, different bits")
	}
	if a.Bytes() != b.Bytes() {
		t.Fatalf("byte sizes differ: %d vs %d", a.Bytes(), b.Bytes())
	}
}

// TestAddSketch: a sketch's footprint is one key per row.
func TestAddSketch(t *testing.T) {
	f := New(256, 0)
	sk := make([]uint64, 16)
	rng := rand.New(rand.NewSource(4))
	for i := range sk {
		sk[i] = rng.Uint64()
	}
	f.AddSketch(sk)
	if f.Keys() != len(sk) {
		t.Fatalf("Keys()=%d after AddSketch of %d rows", f.Keys(), len(sk))
	}
	for i, v := range sk {
		if !f.MayContain(i, v) {
			t.Fatalf("row %d value missing", i)
		}
	}
	// The same value at a different row is an independent key.
	misses := 0
	for i := range sk {
		if !f.MayContain(i, sk[(i+1)%len(sk)]) {
			misses++
		}
	}
	if misses == 0 {
		t.Error("values appear present at every other row; rows are not independent keys")
	}
}

// TestRebuildThresholds pins the rebuild-on-threshold semantics:
// saturation beyond capacity, and dead keys outnumbering half the live
// ones (with the small-filter floor).
func TestRebuildThresholds(t *testing.T) {
	f := New(1000, 0)
	if f.NeedsRebuild() {
		t.Fatal("empty filter wants a rebuild")
	}
	// Saturate past capacity.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i <= f.CapacityKeys(); i++ {
		f.Add(rng.Intn(8), rng.Uint64())
	}
	if !f.NeedsRebuild() {
		t.Error("filter beyond capacity does not request a rebuild")
	}

	// Staleness: > minDeadForRebuild dead keys and dead*2 > live.
	f = New(1000, 0)
	for i := 0; i < 200; i++ {
		f.Add(rng.Intn(8), rng.Uint64())
	}
	f.RemoveKeys(60)
	if f.NeedsRebuild() {
		t.Error("rebuild requested below the dead-key floor")
	}
	f.RemoveKeys(40) // dead=100 > 64, live=100, dead*2 > live
	if !f.NeedsRebuild() {
		t.Error("stale filter does not request a rebuild")
	}
	if f.Keys() != 100 || f.DeadKeys() != 100 {
		t.Errorf("Keys()=%d DeadKeys()=%d, want 100/100", f.Keys(), f.DeadKeys())
	}
}

// TestRemovedKeysStayPositive: removal must not introduce false negatives
// for the keys that remain (bits are shared); removed keys may stay
// positive until a rebuild.
func TestRemovedKeysStayPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	keys := randKeys(rng, 1000, 16)
	f := New(len(keys), 0)
	for _, key := range keys {
		f.Add(int(key[0]), key[1])
	}
	f.RemoveKeys(500)
	for _, key := range keys {
		if !f.MayContain(int(key[0]), key[1]) {
			t.Fatal("key lost after RemoveKeys — Bloom bits must never clear")
		}
	}
}

// TestSizingEdges: degenerate sizing inputs must produce a usable filter.
func TestSizingEdges(t *testing.T) {
	for _, n := range []int{-5, 0, 1, 7} {
		f := New(n, 0)
		f.Add(0, 42)
		if !f.MayContain(0, 42) {
			t.Fatalf("New(%d) filter drops keys", n)
		}
		if f.Bytes() <= 0 || f.CapacityKeys() <= 0 {
			t.Fatalf("New(%d): Bytes=%d CapacityKeys=%d", n, f.Bytes(), f.CapacityKeys())
		}
	}
	// Explicit bits-per-key scales the footprint.
	small, big := New(10000, 8), New(10000, 16)
	if big.Bytes() <= small.Bytes() {
		t.Errorf("16 bits/key (%d B) not larger than 8 bits/key (%d B)", big.Bytes(), small.Bytes())
	}
}

func BenchmarkMayContain(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	keys := randKeys(rng, 100000, 800)
	f := New(len(keys), 0)
	for _, key := range keys {
		f.Add(int(key[0]), key[1])
	}
	probe := make([]uint64, 1024)
	for i := range probe {
		probe[i] = rng.Uint64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain(i%800, probe[i%len(probe)])
	}
}

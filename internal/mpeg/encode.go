package mpeg

import (
	"fmt"
	"io"

	"vdsms/internal/bitio"
	"vdsms/internal/dct"
	"vdsms/internal/vframe"
)

// Encoder writes an MVC1 bitstream. I frames are coded per plane (all luma
// blocks in raster order, then Cb, then Cr) so a partial decoder can stop
// after the luma DC terms it needs. P frames carry a DPCM motion field
// (one vector per macroblock, found by three-step search) ahead of the
// per-plane motion-compensated residual blocks.
type Encoder struct {
	w     io.Writer
	hdr   StreamHeader
	coder *blockCoder
	prev  *vframe.Frame // reconstruction of the previously coded frame
	work  *vframe.Frame // reconstruction being built for this frame
	count int           // frames written
	bw    *bitio.Writer // reused payload buffer
	// DisableMC forces all motion vectors to zero (ablation/benchmarking;
	// the motion field is still coded, costing 2 bits per macroblock).
	DisableMC bool
	// SceneCutSAD, when positive, enables content-adaptive I-frames: a
	// frame scheduled as P is promoted to I when even the best
	// motion-compensated prediction leaves a mean per-pixel luma SAD above
	// this threshold (a shot boundary). Typical values are 12–25. The GOP
	// counter restarts at the promoted frame, like a real encoder's
	// adaptive GOP.
	SceneCutSAD float64
	gopPhase    int // frames since the last I frame
}

// NewEncoder writes the stream header and returns an encoder for it.
func NewEncoder(w io.Writer, hdr StreamHeader) (*Encoder, error) {
	if err := writeHeader(w, hdr); err != nil {
		return nil, err
	}
	return &Encoder{
		w:     w,
		hdr:   hdr,
		coder: newBlockCoder(hdr.Quality),
		prev:  vframe.NewFrame(hdr.W, hdr.H),
		work:  vframe.NewFrame(hdr.W, hdr.H),
		bw:    bitio.NewWriter(hdr.W * hdr.H / 4),
	}, nil
}

// Header returns the stream parameters.
func (e *Encoder) Header() StreamHeader { return e.hdr }

// WriteFrame encodes f as the next frame. The first frame of every GOP is
// intra-coded; the rest are motion-compensated from the reconstruction of
// the previous frame (matching what the decoder will see, so there is no
// drift).
func (e *Encoder) WriteFrame(f *vframe.Frame) (FrameInfo, error) {
	if f.W != e.hdr.W || f.H != e.hdr.H {
		return FrameInfo{}, fmt.Errorf("mpeg: frame %dx%d does not match stream %dx%d",
			f.W, f.H, e.hdr.W, e.hdr.H)
	}
	intra := e.count == 0 || e.gopPhase >= e.hdr.GOP
	if !intra && e.SceneCutSAD > 0 && e.isSceneCut(f) {
		intra = true
	}
	if intra {
		e.gopPhase = 1
	} else {
		e.gopPhase++
	}
	e.bw.Reset()
	e.coder.resetPredictors()

	if intra {
		forEachPlane(f, e.work, func(plane int, cur, rec []uint8, stride, bw, bh int) {
			var spatial dct.Block
			for by := 0; by < bh; by++ {
				for bx := 0; bx < bw; bx++ {
					extractBlock(cur, stride, bx, by, &spatial)
					r := e.encodeAndReconstruct(plane, &spatial)
					storeBlock(rec, stride, bx, by, r)
				}
			}
		})
	} else {
		e.encodePFrame(f)
	}
	e.prev, e.work = e.work, e.prev

	payload := e.bw.Bytes()
	typ := byte(frameTypeP)
	if intra {
		typ = frameTypeI
	}
	if err := writeFrameHeader(e.w, typ, len(payload)); err != nil {
		return FrameInfo{}, err
	}
	if _, err := e.w.Write(payload); err != nil {
		return FrameInfo{}, err
	}
	info := FrameInfo{
		Index: e.count,
		Key:   intra,
		PTS:   float64(e.count) / e.hdr.FPS(),
		Bytes: len(payload),
	}
	e.count++
	return info, nil
}

// isSceneCut reports whether even motion-compensated prediction from the
// previous reconstruction leaves a residual too large to be worth P-coding:
// the mean per-pixel SAD of the best vector per macroblock exceeds
// SceneCutSAD. A cheap zero-vector pre-check skips the motion search on
// clearly continuous frames.
func (e *Encoder) isSceneCut(f *vframe.Frame) bool {
	mbW, mbH := e.hdr.W/16, e.hdr.H/16
	budget := e.SceneCutSAD * float64(e.hdr.W*e.hdr.H)
	var zeroTotal float64
	for mby := 0; mby < mbH; mby++ {
		for mbx := 0; mbx < mbW; mbx++ {
			zeroTotal += float64(sad16(f.Y, e.prev.Y, f.W, f.H, mbx, mby, motionVector{}, 1<<30))
		}
	}
	if zeroTotal <= budget {
		return false
	}
	if e.DisableMC {
		return true
	}
	var total float64
	var pred motionVector
	for mby := 0; mby < mbH; mby++ {
		for mbx := 0; mbx < mbW; mbx++ {
			mv, sad := searchMotion(f.Y, e.prev.Y, f.W, f.H, mbx, mby, pred)
			pred = mv
			total += float64(sad)
			if total > budget {
				return true
			}
		}
	}
	return total > budget
}

// encodePFrame codes one predicted frame: motion search per macroblock,
// the DPCM motion field, then per-plane MC residual blocks.
func (e *Encoder) encodePFrame(f *vframe.Frame) {
	mbW, mbH := e.hdr.W/16, e.hdr.H/16
	field := make([]motionVector, mbW*mbH)
	if !e.DisableMC {
		var pred motionVector
		for mby := 0; mby < mbH; mby++ {
			for mbx := 0; mbx < mbW; mbx++ {
				mv, _ := searchMotion(f.Y, e.prev.Y, f.W, f.H, mbx, mby, pred)
				field[mby*mbW+mbx] = mv
				pred = mv
			}
		}
	}
	writeMotionField(e.bw, field)

	forEachPlane(f, e.prev, func(plane int, cur, ref []uint8, stride, bw, bh int) {
		h := bh * 8
		rec := e.workPlane(plane)
		var spatial dct.Block
		for by := 0; by < bh; by++ {
			for bx := 0; bx < bw; bx++ {
				mv := blockMV(field, mbW, plane, bx, by)
				extractResidualMC(cur, ref, stride, h, bx, by, mv, &spatial)
				r := e.encodeAndReconstruct(plane, &spatial)
				addResidualMC(rec, ref, stride, h, bx, by, mv, r)
			}
		}
	})
}

// workPlane returns the reconstruction plane being built.
func (e *Encoder) workPlane(plane int) []uint8 {
	switch plane {
	case planeY:
		return e.work.Y
	case planeCb:
		return e.work.Cb
	default:
		return e.work.Cr
	}
}

// blockMV maps an 8×8 block of a plane to its macroblock's motion vector.
// Luma blocks tile macroblocks 2×2; each chroma block covers one whole
// macroblock, with the vector halved for the subsampled geometry.
func blockMV(field []motionVector, mbW, plane, bx, by int) motionVector {
	if plane == planeY {
		return field[(by/2)*mbW+bx/2]
	}
	return chromaMV(field[by*mbW+bx])
}

// encodeAndReconstruct entropy-codes one block and returns its
// reconstruction (quantise → dequantise → inverse transform), which the
// encoder stores so P-frame prediction matches the decoder exactly.
func (e *Encoder) encodeAndReconstruct(plane int, spatial *dct.Block) *dct.Block {
	var freq dct.Block
	var lv dct.IntBlock
	dct.Forward(spatial, &freq)
	q := e.coder.quant(plane)
	dct.Quantise(&freq, q, &lv)
	e.coder.writeLevels(e.bw, plane, &lv)
	dct.Dequantise(&lv, q, &freq)
	dct.Inverse(&freq, spatial)
	return spatial
}

// forEachPlane invokes fn for the three planes of a frame with matching
// reference plane, stride and block-grid dimensions.
func forEachPlane(f, ref *vframe.Frame, fn func(plane int, cur, refp []uint8, stride, bw, bh int)) {
	fn(planeY, f.Y, ref.Y, f.W, f.W/8, f.H/8)
	fn(planeCb, f.Cb, ref.Cb, f.W/2, f.W/16, f.H/16)
	fn(planeCr, f.Cr, ref.Cr, f.W/2, f.W/16, f.H/16)
}

// EncodeSource encodes every frame of src to w with the given quality and
// GOP length, deriving the stream header from the source geometry.
func EncodeSource(w io.Writer, src vframe.Source, quality, gop int) (StreamHeader, error) {
	if src.Len() == 0 {
		return StreamHeader{}, fmt.Errorf("mpeg: empty source")
	}
	f0 := src.Frame(0)
	num, den := fpsToRational(src.FPS())
	hdr := StreamHeader{
		W: f0.W, H: f0.H,
		FPSNum: num, FPSDen: den,
		Quality: quality, GOP: gop,
	}
	enc, err := NewEncoder(w, hdr)
	if err != nil {
		return StreamHeader{}, err
	}
	for i := 0; i < src.Len(); i++ {
		if _, err := enc.WriteFrame(src.Frame(i)); err != nil {
			return StreamHeader{}, fmt.Errorf("mpeg: encoding frame %d: %w", i, err)
		}
	}
	return hdr, nil
}

// fpsToRational maps common frame rates to exact rationals (29.97 →
// 30000/1001) and everything else to a 1000-denominator approximation.
func fpsToRational(fps float64) (num, den uint32) {
	switch fps {
	case 29.97:
		return 30000, 1001
	case 23.976:
		return 24000, 1001
	case 59.94:
		return 60000, 1001
	}
	if fps == float64(int(fps)) {
		return uint32(fps), 1
	}
	return uint32(fps * 1000), 1000
}

package mpeg

import (
	"vdsms/internal/bitio"
	"vdsms/internal/dct"
)

// Motion compensation. P frames carry one half-pel motion vector per 16×16
// macroblock, found by three-step integer search plus half-pel refinement
// over the previous frame's reconstruction, and coded as a DPCM motion
// field ahead of the residual blocks. Half-pel samples are bilinear
// averages, as in MPEG-1/2. Chroma blocks use the luma vector halved. The
// partial decoder is unaffected: P frames are still skipped whole by their
// length prefix.

// mvRange bounds motion vectors to ±mvRange half-pels (±8 px) per axis.
const mvRange = 16

// motionVector is a displacement into the reference frame in half-pel
// units.
type motionVector struct{ dx, dy int }

// sampleHalf returns the bilinear half-pel sample of a plane at half-pel
// coordinates (hx, hy), clamping to the plane borders. Integer positions
// degrade to a plain (exact) fetch.
func sampleHalf(p []uint8, w, h, hx, hy int) int {
	x0, y0 := hx>>1, hy>>1
	x1, y1 := x0+hx&1, y0+hy&1
	x0 = clampInt(x0, 0, w-1)
	x1 = clampInt(x1, 0, w-1)
	y0 = clampInt(y0, 0, h-1)
	y1 = clampInt(y1, 0, h-1)
	return (int(p[y0*w+x0]) + int(p[y0*w+x1]) + int(p[y1*w+x0]) + int(p[y1*w+x1]) + 2) >> 2
}

// sad16 computes the sum of absolute differences between the 16×16 luma
// macroblock at (mbx·16, mby·16) in cur and the block displaced by the
// half-pel vector mv in ref. Early-exits once the running sum exceeds best.
func sad16(cur, ref []uint8, w, h, mbx, mby int, mv motionVector, best int) int {
	x0, y0 := mbx*16, mby*16
	var sum int
	for y := 0; y < 16; y++ {
		cy := y0 + y
		crow := cy * w
		hy := cy<<1 + mv.dy
		for x := 0; x < 16; x++ {
			cx := x0 + x
			d := int(cur[crow+cx]) - sampleHalf(ref, w, h, cx<<1+mv.dx, hy)
			if d < 0 {
				d = -d
			}
			sum += d
		}
		if sum >= best {
			return sum
		}
	}
	return sum
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// searchMotion finds a good motion vector for one macroblock: three-step
// integer-pel search seeded at the zero vector and the given predictor,
// followed by a ±1 half-pel refinement. Returns the best half-pel vector
// and its SAD.
func searchMotion(cur, ref []uint8, w, h, mbx, mby int, pred motionVector) (motionVector, int) {
	best := motionVector{}
	bestSAD := sad16(cur, ref, w, h, mbx, mby, best, 1<<30)
	if pred != (motionVector{}) {
		p := clampMV(pred)
		if s := sad16(cur, ref, w, h, mbx, mby, p, bestSAD); s < bestSAD {
			best, bestSAD = p, s
		}
	}
	// Integer-pel steps (in half-pel units: 8, 4, 2), then half-pel (1).
	for _, step := range [...]int{8, 4, 2, 1} {
		improved := true
		for improved {
			improved = false
			for _, d := range [...]motionVector{
				{step, 0}, {-step, 0}, {0, step}, {0, -step},
				{step, step}, {step, -step}, {-step, step}, {-step, -step},
			} {
				cand := clampMV(motionVector{best.dx + d.dx, best.dy + d.dy})
				if cand == best {
					continue
				}
				if s := sad16(cur, ref, w, h, mbx, mby, cand, bestSAD); s < bestSAD {
					best, bestSAD = cand, s
					improved = true
				}
			}
		}
	}
	return best, bestSAD
}

func clampMV(mv motionVector) motionVector {
	return motionVector{
		dx: clampInt(mv.dx, -mvRange, mvRange),
		dy: clampInt(mv.dy, -mvRange, mvRange),
	}
}

// writeMotionField DPCM-codes the per-macroblock vectors in raster order.
func writeMotionField(w *bitio.Writer, field []motionVector) {
	var pred motionVector
	for _, mv := range field {
		w.WriteSE(int64(mv.dx - pred.dx))
		w.WriteSE(int64(mv.dy - pred.dy))
		pred = mv
	}
}

// readMotionField decodes a DPCM motion field of n macroblocks.
func readMotionField(r *bitio.Reader, n int) ([]motionVector, error) {
	field := make([]motionVector, n)
	var pred motionVector
	for i := range field {
		dx, err := r.ReadSE()
		if err != nil {
			return nil, err
		}
		dy, err := r.ReadSE()
		if err != nil {
			return nil, err
		}
		pred = motionVector{pred.dx + int(dx), pred.dy + int(dy)}
		field[i] = pred
	}
	return field, nil
}

// extractResidualMC fills spatial with cur − MC(ref, mv) for the 8×8 tile
// at block coordinates (bx, by) of a plane with the given geometry.
func extractResidualMC(cur, ref []uint8, w, h, bx, by int, mv motionVector, spatial *dct.Block) {
	x0, y0 := bx*8, by*8
	for y := 0; y < 8; y++ {
		cy := y0 + y
		hy := cy<<1 + mv.dy
		for x := 0; x < 8; x++ {
			cx := x0 + x
			spatial[y*8+x] = float64(cur[cy*w+cx]) - float64(sampleHalf(ref, w, h, cx<<1+mv.dx, hy))
		}
	}
}

// addResidualMC reconstructs dst = MC(ref, mv) + residual with clamping.
// dst and ref must be distinct buffers (the encoder and decoder both keep
// separate previous/current reconstructions).
func addResidualMC(dst, ref []uint8, w, h, bx, by int, mv motionVector, spatial *dct.Block) {
	x0, y0 := bx*8, by*8
	for y := 0; y < 8; y++ {
		cy := y0 + y
		hy := cy<<1 + mv.dy
		for x := 0; x < 8; x++ {
			cx := x0 + x
			v := float64(sampleHalf(ref, w, h, cx<<1+mv.dx, hy)) + spatial[y*8+x]
			switch {
			case v < 0:
				dst[cy*w+cx] = 0
			case v > 255:
				dst[cy*w+cx] = 255
			default:
				dst[cy*w+cx] = uint8(v + 0.5)
			}
		}
	}
}

// chromaMV halves a luma vector for the subsampled chroma planes (staying
// in half-pel units, so quarter-pel luma motion rounds to the nearest
// chroma half-pel identically in encoder and decoder).
func chromaMV(mv motionVector) motionVector {
	return motionVector{dx: mv.dx / 2, dy: mv.dy / 2}
}

package mpeg

import (
	"bytes"
	"testing"

	"vdsms/internal/bitio"
	"vdsms/internal/vframe"
)

// translatedSource produces frames whose content shifts by (dx, dy) pixels
// every frame — the canonical motion-compensation test pattern.
type translatedSource struct {
	base   *vframe.Frame
	dx, dy int
	n      int
	buf    *vframe.Frame
}

func newTranslated(dx, dy, n int) *translatedSource {
	synth := vframe.NewSynth(vframe.SynthConfig{W: 96, H: 80, NumFrames: 1, Seed: 5})
	return &translatedSource{
		base: synth.Frame(0).Clone(),
		dx:   dx, dy: dy, n: n,
		buf: vframe.NewFrame(96, 80),
	}
}

func (t *translatedSource) Len() int     { return t.n }
func (t *translatedSource) FPS() float64 { return 30 }

func (t *translatedSource) Frame(i int) *vframe.Frame {
	ox, oy := i*t.dx, i*t.dy
	f := t.buf
	for y := 0; y < f.H; y++ {
		sy := clampInt(y-oy, 0, f.H-1)
		for x := 0; x < f.W; x++ {
			sx := clampInt(x-ox, 0, f.W-1)
			f.Y[y*f.W+x] = t.base.Y[sy*f.W+sx]
		}
	}
	copy(f.Cb, t.base.Cb)
	copy(f.Cr, t.base.Cr)
	return f
}

func TestMotionFieldRoundTrip(t *testing.T) {
	field := []motionVector{{0, 0}, {3, -2}, {3, -2}, {-8, 8}, {1, 0}, {0, 7}}
	w := bitio.NewWriter(16)
	writeMotionField(w, field)
	r := bitio.NewReader(w.Bytes())
	got, err := readMotionField(r, len(field))
	if err != nil {
		t.Fatal(err)
	}
	for i := range field {
		if got[i] != field[i] {
			t.Errorf("vector %d: %v, want %v", i, got[i], field[i])
		}
	}
}

func TestSearchMotionFindsTranslation(t *testing.T) {
	src := newTranslated(3, -2, 2)
	prev := src.Frame(0).Clone()
	cur := src.Frame(1).Clone()
	// Interior macroblocks (away from the clamped borders) should recover
	// the true motion (+3, −2) px: the vector points into the reference,
	// so the best mv is (−3, +2) px = (−6, +4) half-pels.
	mbW, mbH := 96/16, 80/16
	correct := 0
	total := 0
	for mby := 1; mby < mbH-1; mby++ {
		for mbx := 1; mbx < mbW-1; mbx++ {
			mv, sad := searchMotion(cur.Y, prev.Y, 96, 80, mbx, mby, motionVector{})
			zero := sad16(cur.Y, prev.Y, 96, 80, mbx, mby, motionVector{}, 1<<30)
			if sad > zero {
				t.Fatalf("MB (%d,%d): best SAD %d worse than zero-MV %d", mbx, mby, sad, zero)
			}
			total++
			if mv == (motionVector{-6, 4}) {
				correct++
			}
		}
	}
	// Flat regions may find equally good vectors elsewhere; most textured
	// interior macroblocks must recover the true motion.
	if correct*2 < total {
		t.Errorf("true motion recovered in %d/%d interior macroblocks", correct, total)
	}
}

func TestMCDecodesTranslatingVideo(t *testing.T) {
	src := newTranslated(2, 1, 10)
	var buf bytes.Buffer
	if _, err := EncodeSource(&buf, src, 85, 10); err != nil {
		t.Fatal(err)
	}
	frames, _, err := DecodeAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range frames {
		want := src.Frame(i)
		if p := vframe.PSNR(want, f); p < 28 {
			t.Errorf("frame %d PSNR %.1f dB with motion compensation", i, p)
		}
	}
}

// TestMCBeatsZeroMVOnPan is the raison d'être of motion compensation: a
// panning scene compresses substantially better with motion search than
// with zero-motion prediction at equal quality.
func TestMCBeatsZeroMVOnPan(t *testing.T) {
	src := newTranslated(4, 2, 12)
	encodeWith := func(disable bool) int {
		var buf bytes.Buffer
		enc, err := NewEncoder(&buf, StreamHeader{
			W: 96, H: 80, FPSNum: 30, FPSDen: 1, Quality: 80, GOP: 12,
		})
		if err != nil {
			t.Fatal(err)
		}
		enc.DisableMC = disable
		for i := 0; i < src.Len(); i++ {
			if _, err := enc.WriteFrame(src.Frame(i)); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Len()
	}
	withMC := encodeWith(false)
	withoutMC := encodeWith(true)
	if float64(withMC) > 0.7*float64(withoutMC) {
		t.Errorf("MC stream %d bytes vs zero-MV %d bytes; expected >30%% saving on a pan",
			withMC, withoutMC)
	}
}

func TestDisableMCStillRoundTrips(t *testing.T) {
	src := newTranslated(1, 1, 6)
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, StreamHeader{
		W: 96, H: 80, FPSNum: 30, FPSDen: 1, Quality: 80, GOP: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	enc.DisableMC = true
	for i := 0; i < src.Len(); i++ {
		if _, err := enc.WriteFrame(src.Frame(i)); err != nil {
			t.Fatal(err)
		}
	}
	frames, _, err := DecodeAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range frames {
		if p := vframe.PSNR(src.Frame(i), f); p < 26 {
			t.Errorf("frame %d PSNR %.1f dB with MC disabled", i, p)
		}
	}
}

func TestClampMV(t *testing.T) {
	if clampMV(motionVector{100, -100}) != (motionVector{mvRange, -mvRange}) {
		t.Error("clampMV out of range")
	}
	if clampMV(motionVector{6, -8}) != (motionVector{6, -8}) {
		t.Error("clampMV changed an in-range vector")
	}
}

func TestChromaMV(t *testing.T) {
	if chromaMV(motionVector{6, -4}) != (motionVector{3, -2}) {
		t.Error("chromaMV halving wrong")
	}
	if chromaMV(motionVector{1, -1}) != (motionVector{0, 0}) {
		t.Error("chromaMV rounding wrong")
	}
}

func BenchmarkMotionSearch(b *testing.B) {
	src := newTranslated(3, 2, 2)
	prev := src.Frame(0).Clone()
	cur := src.Frame(1).Clone()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		searchMotion(cur.Y, prev.Y, 96, 80, 2, 2, motionVector{})
	}
}

func TestSampleHalfInterpolation(t *testing.T) {
	// 2×2 plane: integer fetches exact, half positions average.
	p := []uint8{10, 20, 30, 40}
	cases := []struct{ hx, hy, want int }{
		{0, 0, 10}, {2, 0, 20}, {0, 2, 30}, {2, 2, 40},
		{1, 0, 15},               // horizontal half: (10+20)/2
		{0, 1, 20},               // vertical half: (10+30)/2
		{1, 1, 25},               // centre: (10+20+30+40)/4
		{3, 3, 40}, {-1, -1, 10}, // clamped past the borders
	}
	for _, c := range cases {
		if got := sampleHalf(p, 2, 2, c.hx, c.hy); got != c.want {
			t.Errorf("sampleHalf(%d,%d) = %d, want %d", c.hx, c.hy, got, c.want)
		}
	}
}

// TestSearchMotionHalfPel: content shifted by exactly half a pixel is
// matched by an odd (half-pel) vector with lower SAD than any integer one.
func TestSearchMotionHalfPel(t *testing.T) {
	synth := vframe.NewSynth(vframe.SynthConfig{W: 96, H: 80, NumFrames: 1, Seed: 6})
	ref := synth.Frame(0).Clone()
	cur := vframe.NewFrame(96, 80)
	for y := 0; y < 80; y++ {
		for x := 0; x < 96; x++ {
			x1 := clampInt(x+1, 0, 95)
			cur.Y[y*96+x] = uint8((int(ref.Y[y*96+x]) + int(ref.Y[y*96+x1]) + 1) / 2)
		}
	}
	oddWins := 0
	total := 0
	for mby := 1; mby < 4; mby++ {
		for mbx := 1; mbx < 5; mbx++ {
			mv, sad := searchMotion(cur.Y, ref.Y, 96, 80, mbx, mby, motionVector{})
			intSAD := sad16(cur.Y, ref.Y, 96, 80, mbx, mby, motionVector{0, 0}, 1<<30)
			if s := sad16(cur.Y, ref.Y, 96, 80, mbx, mby, motionVector{2, 0}, 1<<30); s < intSAD {
				intSAD = s
			}
			total++
			if mv.dx%2 != 0 && sad < intSAD {
				oddWins++
			}
		}
	}
	if oddWins*2 < total {
		t.Errorf("half-pel vector won on only %d/%d macroblocks of half-shifted content",
			oddWins, total)
	}
}

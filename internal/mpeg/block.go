package mpeg

import (
	"fmt"

	"vdsms/internal/bitio"
	"vdsms/internal/dct"
)

// eobRun is the reserved run value marking end-of-block in the AC run-level
// code. Real runs range over [0, 62], so 63 is unambiguous.
const eobRun = 63

// blockCoder carries the per-frame state required to encode and decode
// blocks: quantisation matrices and the DC DPCM predictors (one per plane
// kind, reset at every frame as in MPEG intra coding).
type blockCoder struct {
	lumaQ, chromaQ dct.IntBlock
	dcPred         [3]int32 // Y, Cb, Cr predictors
}

func newBlockCoder(quality int) *blockCoder {
	return &blockCoder{
		lumaQ:   dct.ScaleQuant(&dct.LumaQuant, quality),
		chromaQ: dct.ScaleQuant(&dct.ChromaQuant, quality),
	}
}

// resetPredictors restores the DC predictors at a frame boundary.
func (c *blockCoder) resetPredictors() { c.dcPred = [3]int32{} }

// plane kinds index dcPred.
const (
	planeY = iota
	planeCb
	planeCr
)

func (c *blockCoder) quant(plane int) *dct.IntBlock {
	if plane == planeY {
		return &c.lumaQ
	}
	return &c.chromaQ
}

// encodeBlock transforms, quantises and entropy-codes one 8×8 spatial block.
func (c *blockCoder) encodeBlock(w *bitio.Writer, plane int, spatial *dct.Block) {
	var freq dct.Block
	var lv dct.IntBlock
	dct.Forward(spatial, &freq)
	dct.Quantise(&freq, c.quant(plane), &lv)
	c.writeLevels(w, plane, &lv)
}

// writeLevels entropy-codes quantised levels: DC as a signed Exp-Golomb
// delta against the plane predictor, AC as (zero-run, level) pairs in
// zig-zag order terminated by an EOB symbol.
func (c *blockCoder) writeLevels(w *bitio.Writer, plane int, lv *dct.IntBlock) {
	w.WriteSE(int64(lv[0] - c.dcPred[plane]))
	c.dcPred[plane] = lv[0]
	run := 0
	for zz := 1; zz < 64; zz++ {
		v := lv[dct.ZigZag[zz]]
		if v == 0 {
			run++
			continue
		}
		w.WriteUE(uint64(run))
		w.WriteSE(int64(v))
		run = 0
	}
	w.WriteUE(eobRun)
}

// decodeBlock entropy-decodes, dequantises and inverse-transforms one block.
func (c *blockCoder) decodeBlock(r *bitio.Reader, plane int, spatial *dct.Block) error {
	var lv dct.IntBlock
	if err := c.readLevels(r, plane, &lv); err != nil {
		return err
	}
	var freq dct.Block
	dct.Dequantise(&lv, c.quant(plane), &freq)
	dct.Inverse(&freq, spatial)
	return nil
}

// readLevels is the inverse of writeLevels.
func (c *blockCoder) readLevels(r *bitio.Reader, plane int, lv *dct.IntBlock) error {
	d, err := r.ReadSE()
	if err != nil {
		return err
	}
	c.dcPred[plane] += int32(d)
	lv[0] = c.dcPred[plane]
	zz := 1
	for {
		run, err := r.ReadUE()
		if err != nil {
			return err
		}
		if run == eobRun {
			return nil
		}
		zz += int(run)
		if zz >= 64 {
			return fmt.Errorf("mpeg: AC run overflows block (position %d)", zz)
		}
		level, err := r.ReadSE()
		if err != nil {
			return err
		}
		lv[dct.ZigZag[zz]] = int32(level)
		zz++
	}
}

// skipAC consumes one block's bits updating only the DC predictor; the AC
// (run, level) pairs are parsed and discarded. This is the partial-decoding
// primitive: cost is proportional to the number of non-zero coefficients,
// with no dequantisation or inverse transform.
func (c *blockCoder) skipAC(r *bitio.Reader, plane int) (dcLevel int32, err error) {
	d, err := r.ReadSE()
	if err != nil {
		return 0, err
	}
	c.dcPred[plane] += int32(d)
	dcLevel = c.dcPred[plane]
	for {
		run, err := r.ReadUE()
		if err != nil {
			return 0, err
		}
		if run == eobRun {
			return dcLevel, nil
		}
		if _, err := r.ReadSE(); err != nil {
			return 0, err
		}
	}
}

// extractBlock copies the 8×8 tile at (bx, by) from a plane into spatial,
// converting uint8 samples to centred float values (sample − 128).
func extractBlock(plane []uint8, stride int, bx, by int, spatial *dct.Block) {
	base := by*8*stride + bx*8
	for y := 0; y < 8; y++ {
		row := base + y*stride
		for x := 0; x < 8; x++ {
			spatial[y*8+x] = float64(plane[row+x]) - 128
		}
	}
}

// storeBlock writes a reconstructed spatial block back into a plane,
// undoing the −128 centring with clamping.
func storeBlock(plane []uint8, stride int, bx, by int, spatial *dct.Block) {
	base := by*8*stride + bx*8
	for y := 0; y < 8; y++ {
		row := base + y*stride
		for x := 0; x < 8; x++ {
			v := spatial[y*8+x] + 128
			switch {
			case v < 0:
				plane[row+x] = 0
			case v > 255:
				plane[row+x] = 255
			default:
				plane[row+x] = uint8(v + 0.5)
			}
		}
	}
}

// extractResidual fills spatial with cur − ref for the 8×8 tile at (bx, by).
func extractResidual(cur, ref []uint8, stride int, bx, by int, spatial *dct.Block) {
	base := by*8*stride + bx*8
	for y := 0; y < 8; y++ {
		row := base + y*stride
		for x := 0; x < 8; x++ {
			spatial[y*8+x] = float64(cur[row+x]) - float64(ref[row+x])
		}
	}
}

// addResidual reconstructs cur = ref + residual with clamping.
func addResidual(cur, ref []uint8, stride int, bx, by int, spatial *dct.Block) {
	base := by*8*stride + bx*8
	for y := 0; y < 8; y++ {
		row := base + y*stride
		for x := 0; x < 8; x++ {
			v := float64(ref[row+x]) + spatial[y*8+x]
			switch {
			case v < 0:
				cur[row+x] = 0
			case v > 255:
				cur[row+x] = 255
			default:
				cur[row+x] = uint8(v + 0.5)
			}
		}
	}
}

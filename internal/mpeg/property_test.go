package mpeg

import (
	"bytes"
	"math/rand"
	"testing"

	"vdsms/internal/vframe"
)

// TestPropertyCodecRoundTrip: for random geometries, qualities and GOP
// structures, every decoded frame must stay within a quality floor of its
// source, frame counts and types must line up, and the partial decoder
// must agree with the full decoder on key-frame placement.
func TestPropertyCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		w := (rng.Intn(6) + 2) * 16 // 32..112
		h := (rng.Intn(5) + 2) * 16 // 32..96
		quality := rng.Intn(60) + 40
		gop := rng.Intn(8) + 1
		n := rng.Intn(12) + 4
		src := vframe.NewSynth(vframe.SynthConfig{
			W: w, H: h, FPS: 30, NumFrames: n, Seed: int64(trial + 1),
		})
		var buf bytes.Buffer
		if _, err := EncodeSource(&buf, src, quality, gop); err != nil {
			t.Fatalf("trial %d (%dx%d q%d gop%d): %v", trial, w, h, quality, gop, err)
		}
		frames, hdr, err := DecodeAll(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(frames) != n {
			t.Fatalf("trial %d: %d frames out, %d in", trial, len(frames), n)
		}
		// Quality floor scales with the quantiser coarseness.
		floor := 24.0
		if quality >= 70 {
			floor = 28
		}
		for i, f := range frames {
			if p := vframe.PSNR(src.Frame(i), f); p < floor {
				t.Errorf("trial %d frame %d: PSNR %.1f below floor %.1f (q=%d)",
					trial, i, p, floor, quality)
			}
		}
		dcs, _, err := ReadAllDC(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: partial decode: %v", trial, err)
		}
		wantKeys := (n + gop - 1) / gop
		if len(dcs) != wantKeys {
			t.Errorf("trial %d: %d key frames, want %d (n=%d gop=%d)",
				trial, len(dcs), wantKeys, n, gop)
		}
		for _, d := range dcs {
			if d.Info.Index%gop != 0 {
				t.Errorf("trial %d: key frame at index %d with gop %d", trial, d.Info.Index, gop)
			}
		}
		if hdr.W != w || hdr.H != h {
			t.Errorf("trial %d: header geometry %dx%d", trial, hdr.W, hdr.H)
		}
	}
}

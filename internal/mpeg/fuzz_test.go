package mpeg

import (
	"bytes"
	"testing"

	"vdsms/internal/vframe"
)

// seedStream builds a small valid stream used as the fuzz corpus seed.
func seedStream(tb testing.TB) []byte {
	src := vframe.NewSynth(vframe.SynthConfig{W: 32, H: 32, NumFrames: 4, Seed: 1})
	var buf bytes.Buffer
	if _, err := EncodeSource(&buf, src, 75, 2); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzFullDecoder: arbitrary bytes must never panic the full decoder.
func FuzzFullDecoder(f *testing.F) {
	f.Add(seedStream(f))
	f.Add([]byte("MVC1 garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 64; i++ { // bound work per input
			if _, _, err := dec.Next(); err != nil {
				return
			}
		}
	})
}

// FuzzPartialDecoder: arbitrary bytes must never panic the partial decoder,
// with and without retention.
func FuzzPartialDecoder(f *testing.F) {
	f.Add(seedStream(f), true)
	f.Add([]byte("MVC1!!!!"), false)
	f.Fuzz(func(t *testing.T, data []byte, retain bool) {
		pd, err := NewPartialDecoder(bytes.NewReader(data))
		if err != nil {
			return
		}
		if retain {
			pd.SetRetention(8)
		}
		for i := 0; i < 64; i++ {
			if _, err := pd.Next(); err != nil {
				return
			}
		}
		if retain {
			pd.ClipFrom(0)
		}
	})
}

package mpeg

import (
	"bytes"
	"io"
	"math"
	"testing"

	"vdsms/internal/vframe"
)

func synth(n int, seed int64) vframe.Source {
	return vframe.NewSynth(vframe.SynthConfig{W: 64, H: 48, NumFrames: n, Seed: seed, FPS: 30})
}

func encode(t testing.TB, src vframe.Source, quality, gop int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := EncodeSource(&buf, src, quality, gop); err != nil {
		t.Fatalf("EncodeSource: %v", err)
	}
	return buf.Bytes()
}

func TestHeaderRoundTrip(t *testing.T) {
	h := StreamHeader{W: 352, H: 240, FPSNum: 30000, FPSDen: 1001, Quality: 75, GOP: 15}
	var buf bytes.Buffer
	if err := writeHeader(&buf, h); err != nil {
		t.Fatal(err)
	}
	got, err := readHeader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("header round-trip: got %+v want %+v", got, h)
	}
}

func TestHeaderValidation(t *testing.T) {
	bad := []StreamHeader{
		{W: 0, H: 48, FPSNum: 30, FPSDen: 1, Quality: 75, GOP: 15},
		{W: 50, H: 48, FPSNum: 30, FPSDen: 1, Quality: 75, GOP: 15},
		{W: 64, H: 48, FPSNum: 0, FPSDen: 1, Quality: 75, GOP: 15},
		{W: 64, H: 48, FPSNum: 30, FPSDen: 1, Quality: 0, GOP: 15},
		{W: 64, H: 48, FPSNum: 30, FPSDen: 1, Quality: 101, GOP: 15},
		{W: 64, H: 48, FPSNum: 30, FPSDen: 1, Quality: 75, GOP: 0},
	}
	for i, h := range bad {
		if err := h.Validate(); err == nil {
			t.Errorf("case %d: Validate(%+v) = nil, want error", i, h)
		}
	}
}

func TestBadMagic(t *testing.T) {
	data := []byte("NOTAVIDEOSTREAMXXXXXXXX")
	if _, err := NewDecoder(bytes.NewReader(data)); err != ErrBadMagic {
		t.Errorf("NewDecoder on garbage = %v, want ErrBadMagic", err)
	}
	if _, err := NewPartialDecoder(bytes.NewReader(data)); err != ErrBadMagic {
		t.Errorf("NewPartialDecoder on garbage = %v, want ErrBadMagic", err)
	}
}

func TestEncodeDecodeIntraQuality(t *testing.T) {
	src := synth(5, 1)
	data := encode(t, src, 90, 1)
	frames, hdr, err := DecodeAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.GOP != 1 || len(frames) != 5 {
		t.Fatalf("decoded %d frames, GOP %d", len(frames), hdr.GOP)
	}
	for i, f := range frames {
		if p := vframe.PSNR(src.Frame(i), f); p < 30 {
			t.Errorf("frame %d PSNR %.1f dB at quality 90, want >= 30", i, p)
		}
	}
}

func TestEncodeDecodeWithPFrames(t *testing.T) {
	src := synth(20, 2)
	data := encode(t, src, 85, 5)
	frames, _, err := DecodeAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 20 {
		t.Fatalf("decoded %d frames, want 20", len(frames))
	}
	for i, f := range frames {
		if p := vframe.PSNR(src.Frame(i), f); p < 28 {
			t.Errorf("frame %d PSNR %.1f dB, want >= 28 (no P-frame drift)", i, p)
		}
	}
}

func TestQualityMonotonic(t *testing.T) {
	src := synth(3, 3)
	lo := encode(t, src, 20, 1)
	hi := encode(t, src, 95, 1)
	if len(hi) <= len(lo) {
		t.Errorf("quality 95 stream (%d bytes) not larger than quality 20 (%d bytes)",
			len(hi), len(lo))
	}
	fl, _, _ := DecodeAll(bytes.NewReader(lo))
	fh, _, _ := DecodeAll(bytes.NewReader(hi))
	pl := vframe.PSNR(src.Frame(0), fl[0])
	ph := vframe.PSNR(src.Frame(0), fh[0])
	if ph <= pl {
		t.Errorf("PSNR at quality 95 (%.1f) not above quality 20 (%.1f)", ph, pl)
	}
}

func TestPFramesSmallerThanIFrames(t *testing.T) {
	src := synth(10, 4)
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, StreamHeader{W: 64, H: 48, FPSNum: 30, FPSDen: 1, Quality: 75, GOP: 10})
	if err != nil {
		t.Fatal(err)
	}
	var iBytes, pBytes, pCount int
	for i := 0; i < src.Len(); i++ {
		info, err := enc.WriteFrame(src.Frame(i))
		if err != nil {
			t.Fatal(err)
		}
		if info.Key {
			iBytes += info.Bytes
		} else {
			pBytes += info.Bytes
			pCount++
		}
	}
	if pCount != 9 {
		t.Fatalf("pCount = %d", pCount)
	}
	if avgP := pBytes / pCount; avgP >= iBytes {
		t.Errorf("average P frame (%d bytes) not smaller than I frame (%d bytes)", avgP, iBytes)
	}
}

func TestFrameInfoSequence(t *testing.T) {
	src := synth(7, 5)
	data := encode(t, src, 75, 3)
	dec, err := NewDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		_, info, err := dec.Next()
		if err != nil {
			t.Fatal(err)
		}
		if info.Index != i {
			t.Errorf("frame %d has Index %d", i, info.Index)
		}
		wantKey := i%3 == 0
		if info.Key != wantKey {
			t.Errorf("frame %d Key = %v, want %v", i, info.Key, wantKey)
		}
		if math.Abs(info.PTS-float64(i)/30) > 1e-12 {
			t.Errorf("frame %d PTS = %g", i, info.PTS)
		}
	}
	if _, _, err := dec.Next(); err != io.EOF {
		t.Errorf("after last frame err = %v, want io.EOF", err)
	}
}

func TestPartialDecoderDCMatchesBlockMeans(t *testing.T) {
	src := synth(6, 6)
	data := encode(t, src, 95, 3)
	dcs, hdr, err := ReadAllDC(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(dcs) != 2 { // frames 0 and 3 are I-frames
		t.Fatalf("got %d DC frames, want 2", len(dcs))
	}
	if dcs[0].Info.Index != 0 || dcs[1].Info.Index != 3 {
		t.Errorf("DC frame indexes %d, %d; want 0, 3", dcs[0].Info.Index, dcs[1].Info.Index)
	}
	bw, bh := hdr.W/8, hdr.H/8
	for _, dcf := range dcs {
		if dcf.BW != bw || dcf.BH != bh {
			t.Fatalf("grid %dx%d, want %dx%d", dcf.BW, dcf.BH, bw, bh)
		}
		orig := src.Frame(dcf.Info.Index)
		for by := 0; by < bh; by++ {
			for bx := 0; bx < bw; bx++ {
				// DC = 8 × (mean − 128); quantisation at quality 95 keeps
				// the error within a few units.
				var sum float64
				for y := 0; y < 8; y++ {
					for x := 0; x < 8; x++ {
						sum += float64(orig.Y[(by*8+y)*hdr.W+bx*8+x])
					}
				}
				want := 8 * (sum/64 - 128)
				got := dcf.DC[by*bw+bx]
				if math.Abs(got-want) > 8 {
					t.Fatalf("frame %d block (%d,%d): DC %.1f, want %.1f±8",
						dcf.Info.Index, bx, by, got, want)
				}
			}
		}
	}
}

func TestPartialMatchesFullDecodeDC(t *testing.T) {
	src := synth(4, 7)
	data := encode(t, src, 60, 2)
	dcs, hdr, err := ReadAllDC(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	frames, _, err := DecodeAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for _, dcf := range dcs {
		full := frames[dcf.Info.Index]
		for by := 0; by < dcf.BH; by++ {
			for bx := 0; bx < dcf.BW; bx++ {
				var sum float64
				for y := 0; y < 8; y++ {
					for x := 0; x < 8; x++ {
						sum += float64(full.Y[(by*8+y)*hdr.W+bx*8+x])
					}
				}
				fullDC := 8 * (sum/64 - 128)
				got := dcf.DC[by*dcf.BW+bx]
				// Full decode clamps pixels; allow small divergence.
				if math.Abs(got-fullDC) > 12 {
					t.Fatalf("frame %d block (%d,%d): partial DC %.1f vs full %.1f",
						dcf.Info.Index, bx, by, got, fullDC)
				}
			}
		}
	}
}

func TestDecoderRejectsLeadingPFrame(t *testing.T) {
	src := synth(4, 8)
	data := encode(t, src, 75, 2)
	// Surgically remove the first (I) frame so the stream starts with a P.
	r := bytes.NewReader(data)
	hdr, _ := readHeader(r)
	_ = hdr
	typ, n, err := readFrameHeader(r, hdr)
	if err != nil || typ != frameTypeI {
		t.Fatalf("setup: %v %c", err, typ)
	}
	headerEnd := len(data) - r.Len()
	bad := append([]byte{}, data[:headerSize]...)
	bad = append(bad, data[headerEnd+n:]...)
	dec, err := NewDecoder(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dec.Next(); err == nil {
		t.Error("decoding stream starting with P frame succeeded, want error")
	}
}

func TestTruncatedStream(t *testing.T) {
	src := synth(3, 9)
	data := encode(t, src, 75, 1)
	trunc := data[:len(data)-7]
	dec, err := NewDecoder(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for {
		_, _, lastErr = dec.Next()
		if lastErr != nil {
			break
		}
	}
	if lastErr == io.EOF {
		t.Error("truncated stream decoded cleanly to io.EOF, want payload error")
	}
}

func TestPartialDecoderSkipsPCheaply(t *testing.T) {
	src := synth(30, 10)
	data := encode(t, src, 75, 30) // one I frame, 29 P frames
	pd, err := NewPartialDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pd.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := pd.Next(); err != io.EOF {
		t.Fatalf("second Next = %v, want io.EOF", err)
	}
	total := int64(len(data) - headerSize)
	if pd.BytesRead >= total/2 {
		t.Errorf("partial decoder buffered %d of %d payload bytes; P frames not skipped",
			pd.BytesRead, total)
	}
}

func TestFpsToRational(t *testing.T) {
	for _, tc := range []struct {
		fps  float64
		n, d uint32
	}{{29.97, 30000, 1001}, {25, 25, 1}, {30, 30, 1}, {12.5, 12500, 1000}} {
		n, d := fpsToRational(tc.fps)
		if n != tc.n || d != tc.d {
			t.Errorf("fpsToRational(%g) = %d/%d, want %d/%d", tc.fps, n, d, tc.n, tc.d)
		}
	}
}

func TestEncoderRejectsWrongGeometry(t *testing.T) {
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, StreamHeader{W: 64, H: 48, FPSNum: 30, FPSDen: 1, Quality: 75, GOP: 1})
	if err != nil {
		t.Fatal(err)
	}
	wrong := vframe.NewFrame(32, 32)
	if _, err := enc.WriteFrame(wrong); err == nil {
		t.Error("WriteFrame with wrong geometry succeeded")
	}
}

func BenchmarkEncodeFrame(b *testing.B) {
	src := vframe.NewSynth(vframe.SynthConfig{W: 176, H: 144, NumFrames: 64, Seed: 1})
	frames := make([]*vframe.Frame, 64)
	for i := range frames {
		frames[i] = src.Frame(i).Clone()
	}
	enc, _ := NewEncoder(io.Discard, StreamHeader{W: 176, H: 144, FPSNum: 30, FPSDen: 1, Quality: 75, GOP: 15})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.WriteFrame(frames[i%64]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartialDecode(b *testing.B) {
	src := vframe.NewSynth(vframe.SynthConfig{W: 176, H: 144, NumFrames: 60, Seed: 2})
	var buf bytes.Buffer
	if _, err := EncodeSource(&buf, src, 75, 15); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ReadAllDC(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullDecode(b *testing.B) {
	src := vframe.NewSynth(vframe.SynthConfig{W: 176, H: 144, NumFrames: 60, Seed: 2})
	var buf bytes.Buffer
	if _, err := EncodeSource(&buf, src, 75, 15); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeAll(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

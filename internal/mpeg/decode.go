package mpeg

import (
	"fmt"
	"io"

	"vdsms/internal/bitio"
	"vdsms/internal/dct"
	"vdsms/internal/vframe"
)

// Decoder reconstructs every frame of an MVC1 stream.
type Decoder struct {
	r       io.Reader
	hdr     StreamHeader
	coder   *blockCoder
	prev    *vframe.Frame // reference: previously decoded frame
	cur     *vframe.Frame // frame being decoded
	count   int
	payload []byte
}

// NewDecoder reads the stream header from r and returns a decoder.
func NewDecoder(r io.Reader) (*Decoder, error) {
	hdr, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	return &Decoder{
		r:     r,
		hdr:   hdr,
		coder: newBlockCoder(hdr.Quality),
		prev:  vframe.NewFrame(hdr.W, hdr.H),
		cur:   vframe.NewFrame(hdr.W, hdr.H),
	}, nil
}

// Header returns the stream parameters.
func (d *Decoder) Header() StreamHeader { return d.hdr }

// Next decodes and returns the next frame. The returned frame is an
// internal buffer invalidated by later Next calls; Clone it to retain.
// io.EOF signals a clean end of stream.
func (d *Decoder) Next() (*vframe.Frame, FrameInfo, error) {
	typ, n, err := readFrameHeader(d.r, d.hdr)
	if err != nil {
		return nil, FrameInfo{}, err
	}
	if cap(d.payload) < n {
		d.payload = make([]byte, n)
	}
	d.payload = d.payload[:n]
	if _, err := io.ReadFull(d.r, d.payload); err != nil {
		return nil, FrameInfo{}, fmt.Errorf("mpeg: reading frame %d payload: %w", d.count, err)
	}
	intra := typ == frameTypeI
	if !intra && d.count == 0 {
		return nil, FrameInfo{}, fmt.Errorf("mpeg: stream starts with a P frame")
	}
	br := bitio.NewReader(d.payload)
	d.coder.resetPredictors()

	var field []motionVector
	mbW := d.hdr.W / 16
	if !intra {
		field, err = readMotionField(br, mbW*(d.hdr.H/16))
		if err != nil {
			return nil, FrameInfo{}, fmt.Errorf("mpeg: frame %d motion field: %w", d.count, err)
		}
	}

	var decodeErr error
	forEachPlane(d.cur, d.prev, func(plane int, cur, ref []uint8, stride, bw, bh int) {
		if decodeErr != nil {
			return
		}
		h := bh * 8
		var spatial dct.Block
		for by := 0; by < bh; by++ {
			for bx := 0; bx < bw; bx++ {
				if err := d.coder.decodeBlock(br, plane, &spatial); err != nil {
					decodeErr = fmt.Errorf("mpeg: frame %d plane %d block (%d,%d): %w",
						d.count, plane, bx, by, err)
					return
				}
				if intra {
					storeBlock(cur, stride, bx, by, &spatial)
				} else {
					mv := blockMV(field, mbW, plane, bx, by)
					addResidualMC(cur, ref, stride, h, bx, by, mv, &spatial)
				}
			}
		}
	})
	if decodeErr != nil {
		return nil, FrameInfo{}, decodeErr
	}
	info := FrameInfo{
		Index: d.count,
		Key:   intra,
		PTS:   float64(d.count) / d.hdr.FPS(),
		Bytes: n,
	}
	d.count++
	d.prev, d.cur = d.cur, d.prev
	return d.prev, info, nil
}

// DecodeAll fully decodes a stream into memory. Intended for short clips
// and tests.
func DecodeAll(r io.Reader) ([]*vframe.Frame, StreamHeader, error) {
	dec, err := NewDecoder(r)
	if err != nil {
		return nil, StreamHeader{}, err
	}
	var frames []*vframe.Frame
	for {
		f, _, err := dec.Next()
		if err == io.EOF {
			return frames, dec.Header(), nil
		}
		if err != nil {
			return nil, StreamHeader{}, err
		}
		frames = append(frames, f.Clone())
	}
}

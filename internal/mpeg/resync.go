package mpeg

import (
	"bytes"
	"encoding/binary"
	"io"

	"vdsms/internal/bitio"
)

// scanChunk is the refill granularity of the resync byte scan.
const scanChunk = 4096

// scanResync advances the stream past a span of garbage to the next
// position that looks like a real frame header, then repositions the
// decoder there. A candidate is a byte offset where
//
//   - the type byte is 'I' or 'P' and the length field is within the
//     geometry bound, and
//   - an I candidate's payload entropy-parses as a full luma plane
//     (the strong check: random bytes essentially never survive the
//     Exp-Golomb walk over every 8×8 block), or
//   - a P candidate's payload is followed by another plausible frame
//     header — or ends the stream exactly — since P payloads are opaque
//     to the partial decoder.
//
// Scanned-over bytes are added to rstats.SkippedBytes. A non-nil error
// means the stream ran out (or failed) before sync was found; read errors
// during the scan are treated as end of stream — except control-plane
// errors (context cancellation, deadline), which abort the scan and are
// returned verbatim.
func (d *PartialDecoder) scanResync() error {
	var (
		buf     []byte
		end     bool // underlying reader exhausted (EOF or read error)
		abort   error
		skipped int64
	)
	fill := func(need int) {
		for len(buf) < need && !end {
			tmp := make([]byte, scanChunk)
			n, err := d.r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				end = true
				if permanentReadErr(err) {
					abort = err
				}
			}
		}
	}
	for {
		fill(scanChunk)
		if abort != nil {
			d.rstats.SkippedBytes += skipped
			return abort
		}
		if len(buf) < frameHeaderSize {
			d.rstats.SkippedBytes += skipped + int64(len(buf))
			return io.EOF
		}
		for i := 0; i+frameHeaderSize <= len(buf); i++ {
			typ := buf[i]
			if typ != frameTypeI && typ != frameTypeP {
				continue
			}
			n := int(binary.BigEndian.Uint32(buf[i+1:]))
			if n > d.hdr.maxPayload() {
				continue
			}
			// Pull in the payload plus a lookahead header before validating.
			fill(i + frameHeaderSize + n + frameHeaderSize)
			if abort != nil {
				d.rstats.SkippedBytes += skipped
				return abort
			}
			if len(buf) < i+frameHeaderSize+n {
				continue // payload would run past end of stream
			}
			payload := buf[i+frameHeaderSize : i+frameHeaderSize+n]
			if typ == frameTypeI {
				if !d.plausibleIPayload(payload) {
					continue
				}
			} else {
				rest := len(buf) - (i + frameHeaderSize + n)
				switch {
				case rest == 0 && end:
					// The payload ends the stream exactly — plausible.
				case rest >= frameHeaderSize:
					nt := buf[i+frameHeaderSize+n]
					nn := int(binary.BigEndian.Uint32(buf[i+frameHeaderSize+n+1:]))
					if (nt != frameTypeI && nt != frameTypeP) || nn > d.hdr.maxPayload() {
						continue
					}
				default:
					continue // trailing partial garbage
				}
			}
			// Sync found: hand the unconsumed tail back to the stream.
			d.rstats.SkippedBytes += skipped + int64(i)
			leftover := append([]byte(nil), buf[i:]...)
			if end {
				d.r = bytes.NewReader(leftover)
			} else {
				d.r = io.MultiReader(bytes.NewReader(leftover), d.r)
			}
			return nil
		}
		if end {
			d.rstats.SkippedBytes += skipped + int64(len(buf))
			return io.EOF
		}
		// Nothing matched: all but a header-sized tail (which a future
		// refill could complete into a candidate) is confirmed garbage.
		keep := frameHeaderSize - 1
		drop := len(buf) - keep
		skipped += int64(drop)
		copy(buf, buf[drop:])
		buf = buf[:keep]
	}
}

// plausibleIPayload reports whether payload entropy-parses as a complete
// luma plane for this stream's geometry. Used only for resync candidate
// validation; predictor state is reset by the next real decode.
func (d *PartialDecoder) plausibleIPayload(payload []byte) bool {
	br := bitio.NewReader(payload)
	d.coder.resetPredictors()
	blocks := (d.hdr.W / 8) * (d.hdr.H / 8)
	for i := 0; i < blocks; i++ {
		if _, err := d.coder.skipAC(br, planeY); err != nil {
			return false
		}
	}
	return true
}

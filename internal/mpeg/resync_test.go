package mpeg

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// frameLoc is one frame's position inside an encoded stream.
type frameLoc struct {
	off int // offset of the frame header
	typ byte
	n   int // payload length
}

// frameLocs walks an intact stream's structure.
func frameLocs(t *testing.T, data []byte) []frameLoc {
	t.Helper()
	var locs []frameLoc
	off := headerSize
	for off < len(data) {
		if off+frameHeaderSize > len(data) {
			t.Fatalf("torn frame header at offset %d", off)
		}
		typ := data[off]
		n := int(binary.BigEndian.Uint32(data[off+1:]))
		locs = append(locs, frameLoc{off: off, typ: typ, n: n})
		off += frameHeaderSize + n
	}
	return locs
}

// decodeResilient drains a resync-enabled partial decoder.
func decodeResilient(t *testing.T, data []byte) ([]*DCFrame, ResyncStats) {
	t.Helper()
	dec, err := NewPartialDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewPartialDecoder: %v", err)
	}
	dec.SetResync(true)
	var out []*DCFrame
	for {
		dcf, err := dec.Next()
		if err == io.EOF {
			return out, dec.ResyncStats()
		}
		if err != nil {
			t.Fatalf("resilient Next returned an error: %v", err)
		}
		out = append(out, dcf)
	}
}

// sameDC fails unless the two frames carry identical DC grids.
func sameDC(t *testing.T, got, want *DCFrame) {
	t.Helper()
	if got.Info.Index != want.Info.Index {
		t.Fatalf("frame index %d, want %d", got.Info.Index, want.Info.Index)
	}
	if len(got.DC) != len(want.DC) {
		t.Fatalf("frame %d: DC grid %d values, want %d", want.Info.Index, len(got.DC), len(want.DC))
	}
	for i := range want.DC {
		if got.DC[i] != want.DC[i] {
			t.Fatalf("frame %d: DC[%d] = %g, want %g", want.Info.Index, i, got.DC[i], want.DC[i])
		}
	}
}

func TestResyncTypeByteCorruption(t *testing.T) {
	data := encode(t, synth(12, 41), 80, 1)
	clean, _, err := ReadAllDC(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	locs := frameLocs(t, data)
	corrupt := append([]byte(nil), data...)
	corrupt[locs[5].off] = 'X'

	// Without resync, the damaged type byte is fatal.
	if _, _, err := ReadAllDC(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("strict decode of a corrupt stream succeeded")
	}

	frames, stats := decodeResilient(t, corrupt)
	if len(frames) != len(clean) {
		t.Fatalf("%d frames, want %d (cadence must survive an in-place skip)", len(frames), len(clean))
	}
	for i, f := range frames {
		if i == 5 {
			if f.DC != nil {
				t.Fatal("corrupt slot 5 has a DC grid, want a placeholder")
			}
			if f.Info.Index != 5 || !f.Info.Key {
				t.Fatalf("placeholder Info = %+v, want key frame index 5", f.Info)
			}
			continue
		}
		sameDC(t, f, clean[i])
	}
	if stats.CorruptFrames != 1 || stats.Resyncs != 0 || stats.Truncated != 0 {
		t.Fatalf("stats = %+v, want exactly one in-place corrupt frame", stats)
	}
}

func TestResyncLengthSmash(t *testing.T) {
	data := encode(t, synth(12, 42), 80, 1)
	clean, _, err := ReadAllDC(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	locs := frameLocs(t, data)
	corrupt := append([]byte(nil), data...)
	binary.BigEndian.PutUint32(corrupt[locs[4].off+1:], 0xFFFFFF00) // wildly over the bound

	if _, _, err := ReadAllDC(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("strict decode of a smashed length succeeded")
	}

	frames, stats := decodeResilient(t, corrupt)
	if stats.Resyncs == 0 {
		t.Fatalf("stats = %+v, want at least one byte-scan resync", stats)
	}
	if stats.SkippedBytes == 0 {
		t.Fatal("resync skipped zero bytes")
	}
	if len(frames) != len(clean) {
		t.Fatalf("%d frames, want %d (one hole for the lost slot)", len(frames), len(clean))
	}
	if frames[4].DC != nil {
		t.Fatal("lost slot 4 has a DC grid, want a placeholder")
	}
	for i, f := range frames {
		if i == 4 {
			continue
		}
		sameDC(t, f, clean[i])
	}
}

func TestResyncPayloadBitFlips(t *testing.T) {
	data := encode(t, synth(10, 43), 80, 1)
	clean, _, err := ReadAllDC(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	locs := frameLocs(t, data)
	corrupt := append([]byte(nil), data...)
	// Pepper the middle of frame 3's payload with bit flips. The stream
	// structure (headers, lengths) is intact, so however the parse goes —
	// failure or different coefficients — the surrounding frames and the
	// cadence must be untouched.
	for i := locs[3].off + frameHeaderSize + locs[3].n/4; i < locs[3].off+frameHeaderSize+locs[3].n/2; i += 7 {
		corrupt[i] ^= 0x55
	}
	frames, stats := decodeResilient(t, corrupt)
	if len(frames) != len(clean) {
		t.Fatalf("%d frames, want %d", len(frames), len(clean))
	}
	for i, f := range frames {
		if i == 3 {
			continue // damaged content: placeholder or altered DCs, both fine
		}
		sameDC(t, f, clean[i])
	}
	if stats.Resyncs != 0 || stats.Truncated != 0 {
		t.Fatalf("stats = %+v: payload damage must not trigger resync or truncation", stats)
	}
}

func TestResyncTruncation(t *testing.T) {
	data := encode(t, synth(12, 44), 80, 1)
	clean, _, err := ReadAllDC(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	locs := frameLocs(t, data)
	// Cut mid-payload of frame 7.
	cut := data[:locs[7].off+frameHeaderSize+locs[7].n/2]

	if _, _, err := ReadAllDC(bytes.NewReader(cut)); err == nil {
		t.Fatal("strict decode of a truncated stream succeeded")
	}

	frames, stats := decodeResilient(t, cut)
	if len(frames) != 7 {
		t.Fatalf("%d frames before the cut, want 7", len(frames))
	}
	for i, f := range frames {
		sameDC(t, f, clean[i])
	}
	if stats.Truncated != 1 {
		t.Fatalf("stats = %+v, want Truncated=1", stats)
	}
}

func TestResyncGOPStreamPSlotVanishes(t *testing.T) {
	data := encode(t, synth(20, 45), 80, 5)
	clean, _, err := ReadAllDC(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	locs := frameLocs(t, data)
	// Corrupt the type byte of a P frame (index 7, off the GOP cadence).
	if locs[7].typ != frameTypeP {
		t.Fatalf("setup: frame 7 is %q, want P", locs[7].typ)
	}
	corrupt := append([]byte(nil), data...)
	corrupt[locs[7].off] = 'Q'

	frames, stats := decodeResilient(t, corrupt)
	if len(frames) != len(clean) {
		t.Fatalf("%d key frames, want %d — a corrupt P slot must not surface", len(frames), len(clean))
	}
	for i, f := range frames {
		sameDC(t, f, clean[i])
	}
	if stats.CorruptFrames != 1 {
		t.Fatalf("stats = %+v, want CorruptFrames=1", stats)
	}
}

func TestShedCheckSkipsDecode(t *testing.T) {
	data := encode(t, synth(10, 46), 80, 1)
	clean, _, err := ReadAllDC(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewPartialDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	dec.SetShedCheck(func(payloadBytes int) bool {
		if payloadBytes <= 0 {
			t.Fatalf("shed check saw payload size %d", payloadBytes)
		}
		calls++
		return calls%2 == 0 // shed every second I frame
	})
	var frames []*DCFrame
	for {
		dcf, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, dcf)
	}
	if len(frames) != len(clean) {
		t.Fatalf("%d frames, want %d — shed frames must keep their slots", len(frames), len(clean))
	}
	for i, f := range frames {
		if i%2 == 1 { // calls are 1-based: even calls land on odd indices
			if f.DC != nil {
				t.Fatalf("shed frame %d has a DC grid", i)
			}
			if !f.Info.Key || f.Info.Index != i || f.Info.Bytes != clean[i].Info.Bytes {
				t.Fatalf("shed frame Info = %+v, want key/index %d/%d bytes", f.Info, i, clean[i].Info.Bytes)
			}
			continue
		}
		sameDC(t, f, clean[i])
	}
	if dec.BytesRead >= int64(len(data))-headerSize {
		t.Fatal("shedding read every payload byte into the decoder")
	}
}

func TestShedCheckWithRetention(t *testing.T) {
	data := encode(t, synth(8, 47), 80, 1)
	dec, err := NewPartialDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	dec.SetRetention(16)
	dec.SetShedCheck(func(int) bool { return true }) // shed everything
	n := 0
	for {
		dcf, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if dcf.DC != nil {
			t.Fatal("all-shed decode produced a DC grid")
		}
		n++
	}
	if n != 8 {
		t.Fatalf("%d placeholders, want 8", n)
	}
	// Shed payloads must still be retained: the clip round-trips.
	clip, err := dec.ClipFrom(0)
	if err != nil {
		t.Fatalf("ClipFrom after shedding: %v", err)
	}
	if got, _, err := ReadAllDC(bytes.NewReader(clip)); err != nil || len(got) != 8 {
		t.Fatalf("retained clip decode = (%d frames, %v), want (8, nil)", len(got), err)
	}
}

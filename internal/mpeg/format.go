// Package mpeg implements "MVC1", a from-scratch MPEG-like video codec used
// as the compressed-video substrate for copy detection. It provides:
//
//   - an encoder producing a bitstream of intra (I) and predicted (P)
//     frames: 8×8 DCT, quantisation, zig-zag scan, DC DPCM and run-level
//     Exp-Golomb entropy coding, organised in GOPs;
//   - a full decoder that reconstructs every frame; and
//   - a partial decoder that parses the bitstream but recovers only the DC
//     coefficients of I-frames — the fast compressed-domain path the paper's
//     feature extraction relies on (Section III.A: "partially decode
//     incoming video bit streams to DC sequence").
//
// The paper evaluated MPEG-1 clips; MVC1 mirrors the structural properties
// that matter for the reproduction (I-frames carrying independently decodable
// DC terms, cheap P-frame skipping) without the licensing- and
// table-heavy parts of a standard codec.
package mpeg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Magic identifies an MVC1 stream.
var Magic = [4]byte{'M', 'V', 'C', '1'}

// Frame type tags in the per-frame header.
const (
	frameTypeI = 'I'
	frameTypeP = 'P'
)

// ErrBadMagic is returned when a stream does not start with the MVC1 magic.
var ErrBadMagic = errors.New("mpeg: not an MVC1 stream")

// StreamHeader carries the per-stream parameters written ahead of the first
// frame.
type StreamHeader struct {
	W, H    int // frame dimensions, multiples of 16
	FPSNum  uint32
	FPSDen  uint32
	Quality int // 1..100
	GOP     int // I-frame interval; 1 = intra-only
}

// FPS returns the frame rate as a float.
func (h StreamHeader) FPS() float64 { return float64(h.FPSNum) / float64(h.FPSDen) }

// Validate checks structural invariants of the header.
func (h StreamHeader) Validate() error {
	if h.W <= 0 || h.H <= 0 || h.W%16 != 0 || h.H%16 != 0 {
		return fmt.Errorf("mpeg: dimensions %dx%d must be positive multiples of 16", h.W, h.H)
	}
	// 4096×4096 comfortably covers real content while keeping a corrupt
	// header from demanding gigabyte frame buffers.
	if h.W > 4096 || h.H > 4096 {
		return fmt.Errorf("mpeg: dimensions %dx%d too large", h.W, h.H)
	}
	if h.FPSNum == 0 || h.FPSDen == 0 {
		return errors.New("mpeg: zero frame rate")
	}
	if h.Quality < 1 || h.Quality > 100 {
		return fmt.Errorf("mpeg: quality %d out of [1,100]", h.Quality)
	}
	if h.GOP < 1 || h.GOP > 255 {
		return fmt.Errorf("mpeg: GOP %d out of [1,255]", h.GOP)
	}
	return nil
}

// headerSize is the encoded size of the stream header in bytes.
const headerSize = 4 + 2 + 2 + 4 + 4 + 1 + 1

func writeHeader(w io.Writer, h StreamHeader) error {
	if err := h.Validate(); err != nil {
		return err
	}
	var buf [headerSize]byte
	copy(buf[:4], Magic[:])
	binary.BigEndian.PutUint16(buf[4:], uint16(h.W))
	binary.BigEndian.PutUint16(buf[6:], uint16(h.H))
	binary.BigEndian.PutUint32(buf[8:], h.FPSNum)
	binary.BigEndian.PutUint32(buf[12:], h.FPSDen)
	buf[16] = uint8(h.Quality)
	buf[17] = uint8(h.GOP)
	_, err := w.Write(buf[:])
	return err
}

func readHeader(r io.Reader) (StreamHeader, error) {
	var buf [headerSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return StreamHeader{}, fmt.Errorf("mpeg: reading stream header: %w", err)
	}
	if [4]byte(buf[:4]) != Magic {
		return StreamHeader{}, ErrBadMagic
	}
	h := StreamHeader{
		W:       int(binary.BigEndian.Uint16(buf[4:])),
		H:       int(binary.BigEndian.Uint16(buf[6:])),
		FPSNum:  binary.BigEndian.Uint32(buf[8:]),
		FPSDen:  binary.BigEndian.Uint32(buf[12:]),
		Quality: int(buf[16]),
		GOP:     int(buf[17]),
	}
	if err := h.Validate(); err != nil {
		return StreamHeader{}, err
	}
	return h, nil
}

// frameHeaderSize is the per-frame header: 1 type byte + 4 length bytes.
const frameHeaderSize = 5

func writeFrameHeader(w io.Writer, typ byte, payloadLen int) error {
	var buf [frameHeaderSize]byte
	buf[0] = typ
	binary.BigEndian.PutUint32(buf[1:], uint32(payloadLen))
	_, err := w.Write(buf[:])
	return err
}

// maxPayload bounds a frame payload against the stream geometry: even a
// pathological frame cannot legitimately need more than a few bytes per
// pixel, so corrupt length fields are rejected before any allocation.
func (h StreamHeader) maxPayload() int { return h.W*h.H*8 + 4096 }

// Sentinel causes of frame-header rejection. The resync path in
// PartialDecoder distinguishes them: a bad type byte with a plausible
// length can be skipped in place, anything else means frame sync is lost.
var (
	errUnknownFrameType = errors.New("mpeg: unknown frame type")
	errPayloadBound     = errors.New("mpeg: frame payload exceeds bound")
)

// readFrameHeader returns (type, payloadLen). io.EOF signals a clean end of
// stream at a frame boundary. On a validation error the parsed fields are
// still returned so a resilient caller can decide how to recover.
func readFrameHeader(r io.Reader, h StreamHeader) (byte, int, error) {
	var buf [frameHeaderSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		if err == io.EOF {
			return 0, 0, io.EOF
		}
		return 0, 0, fmt.Errorf("mpeg: reading frame header: %w", err)
	}
	typ := buf[0]
	n := int(binary.BigEndian.Uint32(buf[1:]))
	if typ != frameTypeI && typ != frameTypeP {
		return typ, n, fmt.Errorf("%w %q", errUnknownFrameType, typ)
	}
	if n > h.maxPayload() {
		return typ, n, fmt.Errorf("%w: %d bytes over the %d-byte limit", errPayloadBound, n, h.maxPayload())
	}
	return typ, n, nil
}

// HeaderBytes is the encoded size of the stream header; FrameHeaderBytes
// the encoded size of a per-frame header. Exported for tooling that works
// on raw encoded streams (fault injection, stream surgery).
const (
	HeaderBytes      = headerSize
	FrameHeaderBytes = frameHeaderSize
)

// FrameSpan locates one frame inside an intact encoded stream: its frame
// header starts at Off, the payload of PayloadLen bytes follows the header.
type FrameSpan struct {
	Off        int
	Type       byte // 'I' or 'P'
	PayloadLen int
}

// Frames walks an encoded stream's structure and returns every frame's
// position. The fault-injection tooling uses it to aim damage at specific
// frames; it is not a decoder and reads no payload bytes. On structural
// damage it returns the spans walked before the damage together with the
// error, so callers can still address the intact prefix.
func Frames(data []byte) ([]FrameSpan, error) {
	if len(data) < headerSize {
		return nil, io.ErrUnexpectedEOF
	}
	if [4]byte(data[:4]) != Magic {
		return nil, ErrBadMagic
	}
	var spans []FrameSpan
	off := headerSize
	for off < len(data) {
		if off+frameHeaderSize > len(data) {
			return spans, fmt.Errorf("mpeg: torn frame header at offset %d", off)
		}
		typ := data[off]
		if typ != frameTypeI && typ != frameTypeP {
			return spans, fmt.Errorf("%w %q at offset %d", errUnknownFrameType, typ, off)
		}
		n := int(binary.BigEndian.Uint32(data[off+1:]))
		if off+frameHeaderSize+n > len(data) {
			return spans, fmt.Errorf("mpeg: frame payload at offset %d runs past end of stream", off)
		}
		spans = append(spans, FrameSpan{Off: off, Type: typ, PayloadLen: n})
		off += frameHeaderSize + n
	}
	return spans, nil
}

// FrameInfo describes a decoded frame's position in the stream.
type FrameInfo struct {
	Index int     // 0-based frame number
	Key   bool    // true for I-frames
	PTS   float64 // presentation time in seconds
	Bytes int     // compressed payload size
}

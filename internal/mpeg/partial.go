package mpeg

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"

	"vdsms/internal/bitio"
)

// permanentReadErr reports reader failures that resync must never absorb:
// context cancellation and deadline expiry are control-plane signals aimed
// at the consumer, not stream damage, so converting them into a clean EOF
// would silently swallow a shutdown request.
func permanentReadErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// DCFrame is the output of partial decoding: the dequantised luma DC
// coefficients of one I-frame arranged as a BW×BH grid (one value per 8×8
// block). A DC value equals 8 × (block mean − 128); the feature extractor
// normalises per frame so the affine scaling is immaterial.
type DCFrame struct {
	Info   FrameInfo
	BW, BH int
	DC     []float64 // row-major, len BW*BH
}

// PartialDecoder extracts DC coefficients of I-frames without
// reconstructing pixels. P frames are skipped at the cost of a buffered
// read; within an I-frame only the luma entropy codes are parsed (DC deltas
// applied, AC run-level pairs discarded) and the chroma payload is never
// touched. This is the compressed-domain fast path of paper Section III.A.
type PartialDecoder struct {
	r       io.Reader
	hdr     StreamHeader
	coder   *blockCoder
	count   int
	payload []byte
	// BitsParsed accumulates the number of payload bytes actually read into
	// memory, for instrumentation.
	BytesRead int64

	// Retention (optional): raw payloads of the most recent frames, kept so
	// matched stream segments can be archived as standalone clips — the
	// paper's "only store the video sequences which are relevant to the
	// queries". When retention is off, P frames are skipped without
	// buffering.
	retainN  int
	retained []retainedFrame

	// Fault tolerance (optional): when resync is on, corrupt frames are
	// skipped or substituted instead of erroring, and truncation becomes a
	// clean end of stream. See SetResync.
	resync bool
	rstats ResyncStats

	// Load shedding (optional): consulted before an I-frame's payload is
	// entropy-decoded. See SetShedCheck.
	shedCheck func(payloadBytes int) bool
}

// ResyncStats counts the damage a resync-enabled decoder has absorbed.
type ResyncStats struct {
	CorruptFrames int64 // frame slots skipped or substituted due to corruption
	Resyncs       int64 // byte-scan recoveries after losing frame sync
	SkippedBytes  int64 // bytes discarded while scanning for sync
	Truncated     int64 // early stream ends converted to clean EOF
}

// retainedFrame is one buffered compressed frame.
type retainedFrame struct {
	index int
	typ   byte
	data  []byte
}

// NewPartialDecoder reads the stream header from r.
func NewPartialDecoder(r io.Reader) (*PartialDecoder, error) {
	hdr, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	return &PartialDecoder{r: r, hdr: hdr, coder: newBlockCoder(hdr.Quality)}, nil
}

// Header returns the stream parameters.
func (d *PartialDecoder) Header() StreamHeader { return d.hdr }

// SetRetention keeps the raw compressed payloads of the most recent n
// frames (all types) so ClipFrom can reconstruct matched segments. n <= 0
// disables retention. Retaining forces P-frame payloads to be buffered
// instead of skipped.
func (d *PartialDecoder) SetRetention(n int) {
	d.retainN = n
	if n <= 0 {
		d.retained = nil
	}
}

// SetResync toggles fault-tolerant decoding. With resync on, Next never
// returns a corruption error: a frame with a damaged type byte but readable
// length is skipped in place; a frame header whose length field is
// implausible (or unparseable garbage) triggers a byte scan forward to the
// next independently decodable frame; a truncated stream ends with a clean
// io.EOF. Damaged key-frame slots are reported as placeholder DCFrames with
// a nil DC grid so consumers keep their frame cadence and can substitute.
// ResyncStats reports what was absorbed.
func (d *PartialDecoder) SetResync(on bool) { d.resync = on }

// ResyncStats returns the damage counters accumulated so far.
func (d *PartialDecoder) ResyncStats() ResyncStats { return d.rstats }

// SetShedCheck installs a load-shedding predicate consulted before each
// I-frame's payload is entropy-decoded. When it returns true the payload is
// consumed without decoding and Next returns a placeholder DCFrame with a
// nil DC grid (the frame header fields are still populated). nil disables
// shedding.
func (d *PartialDecoder) SetShedCheck(fn func(payloadBytes int) bool) { d.shedCheck = fn }

// retainFrame buffers one frame's payload under the retention policy.
func (d *PartialDecoder) retainFrame(typ byte, data []byte) {
	if d.retainN <= 0 {
		return
	}
	d.retained = append(d.retained, retainedFrame{
		index: d.count,
		typ:   typ,
		data:  append([]byte(nil), data...),
	})
	if excess := len(d.retained) - d.retainN; excess > 0 {
		d.retained = d.retained[excess:]
	}
}

// ClipFrom assembles a standalone MVC1 clip of the retained frames
// covering stream frame index from (and everything retained after it). The
// clip starts at the newest retained I-frame at or before from — or the
// oldest retained I-frame if from precedes retention — so it is
// independently decodable. Returns an error when nothing suitable is
// retained.
func (d *PartialDecoder) ClipFrom(from int) ([]byte, error) {
	start := -1
	for i, rf := range d.retained {
		if rf.typ != frameTypeI {
			continue
		}
		if rf.index <= from || start == -1 {
			start = i
		}
		if rf.index > from {
			break
		}
	}
	if start == -1 {
		return nil, fmt.Errorf("mpeg: no I frame retained at or before frame %d", from)
	}
	var buf bytes.Buffer
	if err := writeHeader(&buf, d.hdr); err != nil {
		return nil, err
	}
	for _, rf := range d.retained[start:] {
		if err := writeFrameHeader(&buf, rf.typ, len(rf.data)); err != nil {
			return nil, err
		}
		if _, err := buf.Write(rf.data); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// Next returns the DC grid of the next I-frame, skipping any intervening P
// frames. io.EOF signals a clean end of stream. The returned DCFrame owns
// its DC slice.
//
// With SetResync on, damaged input never surfaces as an error: key-frame
// slots lost to corruption or shedding come back as placeholder DCFrames
// with a nil DC grid, and truncation ends the stream with a clean io.EOF.
func (d *PartialDecoder) Next() (*DCFrame, error) {
	for {
		typ, n, err := readFrameHeader(d.r, d.hdr)
		if err != nil {
			if err == io.EOF {
				return nil, io.EOF
			}
			if !d.resync || permanentReadErr(err) {
				return nil, err
			}
			switch {
			case errors.Is(err, io.ErrUnexpectedEOF):
				// Torn frame header: the stream ends mid-header.
				d.rstats.Truncated++
				return nil, io.EOF
			case errors.Is(err, errUnknownFrameType) && n <= d.hdr.maxPayload():
				// Damaged type byte but a readable length: skip the frame
				// in place — stream position and frame cadence survive.
				if derr := d.discard(n); derr != nil {
					if permanentReadErr(derr) {
						return nil, derr
					}
					d.rstats.Truncated++
					return nil, io.EOF
				}
				d.rstats.CorruptFrames++
				if ph, ok := d.holeSlot(n); ok {
					return ph, nil
				}
				continue
			default:
				// Implausible length field or unreadable header bytes:
				// frame sync is lost — scan forward for the next
				// independently decodable frame.
				if serr := d.scanResync(); serr != nil {
					if permanentReadErr(serr) {
						return nil, serr
					}
					d.rstats.Truncated++
					return nil, io.EOF
				}
				d.rstats.Resyncs++
				d.rstats.CorruptFrames++
				if ph, ok := d.holeSlot(0); ok {
					return ph, nil
				}
				continue
			}
		}
		if typ == frameTypeP {
			if d.retainN > 0 {
				if err := d.buffer(n); err != nil {
					if d.resync {
						d.rstats.Truncated++
						return nil, io.EOF
					}
					return nil, fmt.Errorf("mpeg: buffering P frame %d: %w", d.count, err)
				}
				d.retainFrame(frameTypeP, d.payload)
			} else if err := d.discard(n); err != nil {
				if d.resync && !permanentReadErr(err) {
					d.rstats.Truncated++
					return nil, io.EOF
				}
				return nil, fmt.Errorf("mpeg: skipping P frame %d: %w", d.count, err)
			}
			d.count++
			continue
		}
		// I frame. Shedding is decided on the compressed size alone, before
		// any payload byte is entropy-decoded.
		if d.shedCheck != nil && d.shedCheck(n) {
			if d.retainN > 0 {
				if err := d.buffer(n); err != nil {
					if d.resync {
						d.rstats.Truncated++
						return nil, io.EOF
					}
					return nil, fmt.Errorf("mpeg: buffering shed I frame %d: %w", d.count, err)
				}
				d.retainFrame(frameTypeI, d.payload)
			} else if err := d.discard(n); err != nil {
				if d.resync && !permanentReadErr(err) {
					d.rstats.Truncated++
					return nil, io.EOF
				}
				return nil, fmt.Errorf("mpeg: skipping shed I frame %d: %w", d.count, err)
			}
			ph := d.placeholder(n)
			d.count++
			return ph, nil
		}
		if err := d.buffer(n); err != nil {
			if d.resync {
				d.rstats.Truncated++
				return nil, io.EOF
			}
			return nil, fmt.Errorf("mpeg: reading I frame %d payload: %w", d.count, err)
		}
		d.BytesRead += int64(n)
		dcf, perr := d.parseIDC(n)
		if perr != nil {
			if !d.resync {
				return nil, perr
			}
			// The payload was fully read, so the stream position is intact;
			// only this frame's content is damaged. Substitute a placeholder
			// (the corrupt bytes are not retained — a clip built from them
			// would not decode).
			d.rstats.CorruptFrames++
			ph := d.placeholder(n)
			d.count++
			return ph, nil
		}
		d.retainFrame(frameTypeI, d.payload)
		d.count++
		return dcf, nil
	}
}

// placeholder builds the DCFrame stand-in (nil DC grid) for the I-frame
// slot at the current position. The caller advances d.count.
func (d *PartialDecoder) placeholder(payloadBytes int) *DCFrame {
	return &DCFrame{
		Info: FrameInfo{
			Index: d.count,
			Key:   true,
			PTS:   float64(d.count) / d.hdr.FPS(),
			Bytes: payloadBytes,
		},
		BW: d.hdr.W / 8,
		BH: d.hdr.H / 8,
	}
}

// holeSlot accounts one corrupt frame slot of unknown type. When the slot
// falls on the stream's key-frame cadence it returns a placeholder so the
// consumer keeps its frame cadence; P-slots vanish silently. The cadence
// test is positional (index mod GOP) — exact for the GOP=1 streams the
// monitor ingests, best-effort when an encoder inserted scene-cut I-frames
// off the cadence.
func (d *PartialDecoder) holeSlot(payloadBytes int) (*DCFrame, bool) {
	ph := d.placeholder(payloadBytes)
	idx := d.count
	d.count++
	if d.hdr.GOP != 1 && idx%d.hdr.GOP != 0 {
		return nil, false
	}
	return ph, true
}

// buffer reads n payload bytes into the scratch buffer.
func (d *PartialDecoder) buffer(n int) error {
	if cap(d.payload) < n {
		d.payload = make([]byte, n)
	}
	d.payload = d.payload[:n]
	_, err := io.ReadFull(d.r, d.payload)
	return err
}

// parseIDC parses the luma portion of the I-frame payload sitting in
// d.payload, collecting DC levels and dequantising them. It touches no
// stream bytes — the caller has already buffered the payload — so a parse
// failure leaves the decoder positioned at the next frame header.
func (d *PartialDecoder) parseIDC(n int) (*DCFrame, error) {
	br := bitio.NewReader(d.payload)
	d.coder.resetPredictors()
	bw, bh := d.hdr.W/8, d.hdr.H/8
	dcf := &DCFrame{
		Info: FrameInfo{
			Index: d.count,
			Key:   true,
			PTS:   float64(d.count) / d.hdr.FPS(),
			Bytes: n,
		},
		BW: bw,
		BH: bh,
		DC: make([]float64, bw*bh),
	}
	qdc := float64(d.coder.lumaQ[0])
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			level, err := d.coder.skipAC(br, planeY)
			if err != nil {
				return nil, fmt.Errorf("mpeg: partial decode frame %d block (%d,%d): %w",
					d.count, bx, by, err)
			}
			dcf.DC[by*bw+bx] = float64(level) * qdc
		}
	}
	// Chroma blocks remain unparsed: the payload is length-prefixed, so the
	// next frame header is found by position, not by parsing.
	return dcf, nil
}

// discard consumes n payload bytes without retaining them.
func (d *PartialDecoder) discard(n int) error {
	if s, ok := d.r.(io.Seeker); ok {
		_, err := s.Seek(int64(n), io.SeekCurrent)
		return err
	}
	m, err := io.CopyN(io.Discard, d.r, int64(n))
	if err == io.EOF && m < int64(n) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ReadAllDC partially decodes an entire stream, returning one DCFrame per
// I-frame.
func ReadAllDC(r io.Reader) ([]*DCFrame, StreamHeader, error) {
	dec, err := NewPartialDecoder(r)
	if err != nil {
		return nil, StreamHeader{}, err
	}
	var out []*DCFrame
	for {
		dcf, err := dec.Next()
		if err == io.EOF {
			return out, dec.Header(), nil
		}
		if err != nil {
			return nil, StreamHeader{}, err
		}
		out = append(out, dcf)
	}
}

package mpeg

import (
	"bytes"
	"fmt"
	"io"

	"vdsms/internal/bitio"
)

// DCFrame is the output of partial decoding: the dequantised luma DC
// coefficients of one I-frame arranged as a BW×BH grid (one value per 8×8
// block). A DC value equals 8 × (block mean − 128); the feature extractor
// normalises per frame so the affine scaling is immaterial.
type DCFrame struct {
	Info   FrameInfo
	BW, BH int
	DC     []float64 // row-major, len BW*BH
}

// PartialDecoder extracts DC coefficients of I-frames without
// reconstructing pixels. P frames are skipped at the cost of a buffered
// read; within an I-frame only the luma entropy codes are parsed (DC deltas
// applied, AC run-level pairs discarded) and the chroma payload is never
// touched. This is the compressed-domain fast path of paper Section III.A.
type PartialDecoder struct {
	r       io.Reader
	hdr     StreamHeader
	coder   *blockCoder
	count   int
	payload []byte
	// BitsParsed accumulates the number of payload bytes actually read into
	// memory, for instrumentation.
	BytesRead int64

	// Retention (optional): raw payloads of the most recent frames, kept so
	// matched stream segments can be archived as standalone clips — the
	// paper's "only store the video sequences which are relevant to the
	// queries". When retention is off, P frames are skipped without
	// buffering.
	retainN  int
	retained []retainedFrame
}

// retainedFrame is one buffered compressed frame.
type retainedFrame struct {
	index int
	typ   byte
	data  []byte
}

// NewPartialDecoder reads the stream header from r.
func NewPartialDecoder(r io.Reader) (*PartialDecoder, error) {
	hdr, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	return &PartialDecoder{r: r, hdr: hdr, coder: newBlockCoder(hdr.Quality)}, nil
}

// Header returns the stream parameters.
func (d *PartialDecoder) Header() StreamHeader { return d.hdr }

// SetRetention keeps the raw compressed payloads of the most recent n
// frames (all types) so ClipFrom can reconstruct matched segments. n <= 0
// disables retention. Retaining forces P-frame payloads to be buffered
// instead of skipped.
func (d *PartialDecoder) SetRetention(n int) {
	d.retainN = n
	if n <= 0 {
		d.retained = nil
	}
}

// retainFrame buffers one frame's payload under the retention policy.
func (d *PartialDecoder) retainFrame(typ byte, data []byte) {
	if d.retainN <= 0 {
		return
	}
	d.retained = append(d.retained, retainedFrame{
		index: d.count,
		typ:   typ,
		data:  append([]byte(nil), data...),
	})
	if excess := len(d.retained) - d.retainN; excess > 0 {
		d.retained = d.retained[excess:]
	}
}

// ClipFrom assembles a standalone MVC1 clip of the retained frames
// covering stream frame index from (and everything retained after it). The
// clip starts at the newest retained I-frame at or before from — or the
// oldest retained I-frame if from precedes retention — so it is
// independently decodable. Returns an error when nothing suitable is
// retained.
func (d *PartialDecoder) ClipFrom(from int) ([]byte, error) {
	start := -1
	for i, rf := range d.retained {
		if rf.typ != frameTypeI {
			continue
		}
		if rf.index <= from || start == -1 {
			start = i
		}
		if rf.index > from {
			break
		}
	}
	if start == -1 {
		return nil, fmt.Errorf("mpeg: no I frame retained at or before frame %d", from)
	}
	var buf bytes.Buffer
	if err := writeHeader(&buf, d.hdr); err != nil {
		return nil, err
	}
	for _, rf := range d.retained[start:] {
		if err := writeFrameHeader(&buf, rf.typ, len(rf.data)); err != nil {
			return nil, err
		}
		if _, err := buf.Write(rf.data); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// Next returns the DC grid of the next I-frame, skipping any intervening P
// frames. io.EOF signals a clean end of stream. The returned DCFrame owns
// its DC slice.
func (d *PartialDecoder) Next() (*DCFrame, error) {
	for {
		typ, n, err := readFrameHeader(d.r, d.hdr)
		if err != nil {
			return nil, err // io.EOF passes through untouched
		}
		if typ == frameTypeP {
			if d.retainN > 0 {
				if err := d.buffer(n); err != nil {
					return nil, fmt.Errorf("mpeg: buffering P frame %d: %w", d.count, err)
				}
				d.retainFrame(frameTypeP, d.payload)
			} else if err := d.discard(n); err != nil {
				return nil, fmt.Errorf("mpeg: skipping P frame %d: %w", d.count, err)
			}
			d.count++
			continue
		}
		dcf, err := d.decodeIDC(n)
		if err != nil {
			return nil, err
		}
		d.retainFrame(frameTypeI, d.payload)
		d.count++
		return dcf, nil
	}
}

// buffer reads n payload bytes into the scratch buffer.
func (d *PartialDecoder) buffer(n int) error {
	if cap(d.payload) < n {
		d.payload = make([]byte, n)
	}
	d.payload = d.payload[:n]
	_, err := io.ReadFull(d.r, d.payload)
	return err
}

// decodeIDC parses the luma portion of an I-frame payload, collecting DC
// levels and dequantising them.
func (d *PartialDecoder) decodeIDC(n int) (*DCFrame, error) {
	if cap(d.payload) < n {
		d.payload = make([]byte, n)
	}
	d.payload = d.payload[:n]
	if _, err := io.ReadFull(d.r, d.payload); err != nil {
		return nil, fmt.Errorf("mpeg: reading I frame %d payload: %w", d.count, err)
	}
	d.BytesRead += int64(n)
	br := bitio.NewReader(d.payload)
	d.coder.resetPredictors()
	bw, bh := d.hdr.W/8, d.hdr.H/8
	dcf := &DCFrame{
		Info: FrameInfo{
			Index: d.count,
			Key:   true,
			PTS:   float64(d.count) / d.hdr.FPS(),
			Bytes: n,
		},
		BW: bw,
		BH: bh,
		DC: make([]float64, bw*bh),
	}
	qdc := float64(d.coder.lumaQ[0])
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			level, err := d.coder.skipAC(br, planeY)
			if err != nil {
				return nil, fmt.Errorf("mpeg: partial decode frame %d block (%d,%d): %w",
					d.count, bx, by, err)
			}
			dcf.DC[by*bw+bx] = float64(level) * qdc
		}
	}
	// Chroma blocks remain unparsed: the payload is length-prefixed, so the
	// next frame header is found by position, not by parsing.
	return dcf, nil
}

// discard consumes n payload bytes without retaining them.
func (d *PartialDecoder) discard(n int) error {
	if s, ok := d.r.(io.Seeker); ok {
		_, err := s.Seek(int64(n), io.SeekCurrent)
		return err
	}
	m, err := io.CopyN(io.Discard, d.r, int64(n))
	if err == io.EOF && m < int64(n) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ReadAllDC partially decodes an entire stream, returning one DCFrame per
// I-frame.
func ReadAllDC(r io.Reader) ([]*DCFrame, StreamHeader, error) {
	dec, err := NewPartialDecoder(r)
	if err != nil {
		return nil, StreamHeader{}, err
	}
	var out []*DCFrame
	for {
		dcf, err := dec.Next()
		if err == io.EOF {
			return out, dec.Header(), nil
		}
		if err != nil {
			return nil, StreamHeader{}, err
		}
		out = append(out, dcf)
	}
}

package mpeg

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"vdsms/internal/vframe"
)

// cutSource concatenates two visually distinct clips, producing a hard
// scene cut at the boundary.
func cutSource(n1, n2 int) vframe.Source {
	a := vframe.NewSynth(vframe.SynthConfig{W: 96, H: 80, NumFrames: n1, Seed: 1})
	b := vframe.NewSynth(vframe.SynthConfig{W: 96, H: 80, NumFrames: n2, Seed: 999})
	return vframe.Concat(a, b)
}

func encodeTypes(t *testing.T, src vframe.Source, gop int, sceneCut float64) []bool {
	t.Helper()
	enc, err := NewEncoder(io.Discard, StreamHeader{
		W: 96, H: 80, FPSNum: 30, FPSDen: 1, Quality: 78, GOP: gop,
	})
	if err != nil {
		t.Fatal(err)
	}
	enc.SceneCutSAD = sceneCut
	keys := make([]bool, src.Len())
	for i := 0; i < src.Len(); i++ {
		info, err := enc.WriteFrame(src.Frame(i))
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = info.Key
	}
	return keys
}

func TestSceneCutPromotesIFrame(t *testing.T) {
	src := cutSource(7, 7) // cut at frame 7, mid-GOP for GOP=10
	keys := encodeTypes(t, src, 10, 8)
	if !keys[0] {
		t.Fatal("first frame not I")
	}
	if !keys[7] {
		t.Error("scene cut at frame 7 not promoted to I")
	}
	// Continuous frames stay P.
	for _, i := range []int{1, 2, 3, 8, 9} {
		if keys[i] {
			t.Errorf("continuous frame %d promoted to I", i)
		}
	}
}

func TestSceneCutRestartsGOP(t *testing.T) {
	src := cutSource(5, 20)
	keys := encodeTypes(t, src, 10, 8)
	if !keys[5] {
		t.Fatal("cut frame not I")
	}
	// Next scheduled I is 10 frames after the cut, not at frame 10.
	if keys[10] {
		t.Error("GOP counter not restarted at the scene cut")
	}
	if !keys[15] {
		t.Error("scheduled I frame 10 after the cut missing")
	}
}

func TestSceneCutDisabledKeepsCadence(t *testing.T) {
	src := cutSource(5, 15)
	keys := encodeTypes(t, src, 10, 0) // feature off
	for i, k := range keys {
		want := i%10 == 0
		if k != want {
			t.Errorf("frame %d Key=%v with scene cut disabled, want %v", i, k, want)
		}
	}
}

func TestSceneCutStreamDecodes(t *testing.T) {
	src := cutSource(6, 6)
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, StreamHeader{
		W: 96, H: 80, FPSNum: 30, FPSDen: 1, Quality: 82, GOP: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	enc.SceneCutSAD = 8
	for i := 0; i < src.Len(); i++ {
		if _, err := enc.WriteFrame(src.Frame(i)); err != nil {
			t.Fatal(err)
		}
	}
	frames, _, err := DecodeAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range frames {
		if p := vframe.PSNR(src.Frame(i), f); p < 26 {
			t.Errorf("frame %d PSNR %.1f after adaptive GOP", i, p)
		}
	}
	// Partial decoder sees the extra key frame.
	dcs, _, err := ReadAllDC(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	foundCut := false
	for _, d := range dcs {
		if d.Info.Index == 6 {
			foundCut = true
		}
	}
	if !foundCut {
		t.Error("partial decoder did not surface the scene-cut I frame")
	}
}

// TestDecodersSurviveCorruption flips random bits/bytes in valid streams
// and requires both decoders to fail cleanly (error, not panic) or succeed;
// corrupted video must never take the process down.
func TestDecodersSurviveCorruption(t *testing.T) {
	src := vframe.NewSynth(vframe.SynthConfig{W: 64, H: 48, NumFrames: 8, Seed: 3})
	var buf bytes.Buffer
	if _, err := EncodeSource(&buf, src, 75, 4); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		data := append([]byte(nil), valid...)
		// Corrupt 1-4 random bytes (after the stream header so the
		// decoders get past setup most of the time).
		for n := rng.Intn(4) + 1; n > 0; n-- {
			pos := rng.Intn(len(data)-headerSize) + headerSize
			data[pos] ^= byte(1 << rng.Intn(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: full decoder panicked: %v", trial, r)
				}
			}()
			dec, err := NewDecoder(bytes.NewReader(data))
			if err != nil {
				return
			}
			for {
				if _, _, err := dec.Next(); err != nil {
					return
				}
			}
		}()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: partial decoder panicked: %v", trial, r)
				}
			}()
			pd, err := NewPartialDecoder(bytes.NewReader(data))
			if err != nil {
				return
			}
			for {
				if _, err := pd.Next(); err != nil {
					return
				}
			}
		}()
	}
}

// TestDecodersSurviveTruncationEverywhere cuts a valid stream at every
// length and requires clean failure.
func TestDecodersSurviveTruncationEverywhere(t *testing.T) {
	src := vframe.NewSynth(vframe.SynthConfig{W: 32, H: 32, NumFrames: 4, Seed: 5})
	var buf bytes.Buffer
	if _, err := EncodeSource(&buf, src, 75, 2); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	step := len(valid)/150 + 1
	for cut := 0; cut < len(valid); cut += step {
		data := valid[:cut]
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("cut %d: decoder panicked: %v", cut, r)
				}
			}()
			if dec, err := NewDecoder(bytes.NewReader(data)); err == nil {
				for {
					if _, _, err := dec.Next(); err != nil {
						break
					}
				}
			}
			if pd, err := NewPartialDecoder(bytes.NewReader(data)); err == nil {
				for {
					if _, err := pd.Next(); err != nil {
						break
					}
				}
			}
		}()
	}
}

// Package bitsig implements the bit vector signature of paper Section V.
// A Signature encodes, for each of the K hash positions, the relation of a
// candidate-sequence sketch value to a query sketch value:
//
//	'>' (Greater) — candidate min-hash above the query's,
//	'=' (Equal)   — minima agree,
//	'<' (Less)    — candidate min-hash below the query's.
//
// The paper lays the three states out as 2-bit codes 00/01/11 in one 2K-bit
// vector so that combining two candidate sequences is a bitwise OR
// (min-combination of sketches maps Greater<Equal<Less onto the OR
// lattice). We store the same information as two K-bit planes:
//
//	lo bit r set ⇔ relation is Equal or Less (the paper's low-order bit),
//	hi bit r set ⇔ relation is Less          (the paper's high-order bit).
//
// OR-ing the planes is exactly the paper's 2K-bit OR; memory is the same
// 2K bits. Lemma 1 becomes sim = (popcount(lo) − popcount(hi)) / K and the
// Lemma 2 prune test becomes popcount(hi) > K(1−δ).
//
// (The lemma in the paper is stated over "even/odd positions" of the
// interleaved layout; taken literally with '='→01 it does not hold, but its
// own proof fixes the intent: n0 = #Greater, n1 = #Less, sim = (K−n0−n1)/K.
// The plane representation implements that proof directly.)
package bitsig

import (
	"fmt"
	"math/bits"

	"vdsms/internal/minhash"
)

// Relation is the per-position comparison outcome.
type Relation uint8

const (
	// Greater: candidate sketch value > query sketch value ('>', code 00).
	Greater Relation = iota
	// Equal: values agree ('=', code 01).
	Equal
	// Less: candidate sketch value < query sketch value ('<', code 11).
	Less
)

// String implements fmt.Stringer.
func (r Relation) String() string {
	switch r {
	case Greater:
		return ">"
	case Equal:
		return "="
	case Less:
		return "<"
	}
	return fmt.Sprintf("Relation(%d)", uint8(r))
}

// Compare returns the relation of a candidate value to a query value.
func Compare(cand, query uint64) Relation {
	switch {
	case cand > query:
		return Greater
	case cand == query:
		return Equal
	default:
		return Less
	}
}

// Signature is a 2K-bit relation vector between one candidate sequence and
// one query, stored as two K-bit planes.
type Signature struct {
	K  int
	Lo []uint64 // bit r: Equal or Less at position r
	Hi []uint64 // bit r: Less at position r
}

// words returns the number of 64-bit words per plane for k positions.
func words(k int) int { return (k + 63) / 64 }

// New returns an all-Greater signature for K positions (the identity of the
// OR combination).
func New(k int) *Signature {
	if k <= 0 {
		panic(fmt.Sprintf("bitsig: K=%d must be positive", k))
	}
	n := words(k)
	return &Signature{K: k, Lo: make([]uint64, n), Hi: make([]uint64, n)}
}

// FromSketches builds the signature of a candidate sketch against a query
// sketch (Definition 3). Both sketches must have length K.
func FromSketches(cand, query minhash.Sketch) *Signature {
	if len(cand) != len(query) {
		panic("bitsig: sketch length mismatch")
	}
	s := New(len(cand))
	for r, cv := range cand {
		s.Set(r, Compare(cv, query[r]))
	}
	return s
}

// Set records the relation at position r. Positions start as Greater; Set
// with Greater clears the position's bits.
func (s *Signature) Set(r int, rel Relation) {
	if r < 0 || r >= s.K {
		panic(fmt.Sprintf("bitsig: position %d out of [0,%d)", r, s.K))
	}
	w, m := r/64, uint64(1)<<(r%64)
	switch rel {
	case Greater:
		s.Lo[w] &^= m
		s.Hi[w] &^= m
	case Equal:
		s.Lo[w] |= m
		s.Hi[w] &^= m
	case Less:
		s.Lo[w] |= m
		s.Hi[w] |= m
	}
}

// At returns the relation at position r.
func (s *Signature) At(r int) Relation {
	if r < 0 || r >= s.K {
		panic(fmt.Sprintf("bitsig: position %d out of [0,%d)", r, s.K))
	}
	w, m := r/64, uint64(1)<<(r%64)
	switch {
	case s.Hi[w]&m != 0:
		return Less
	case s.Lo[w]&m != 0:
		return Equal
	default:
		return Greater
	}
}

// Or folds other into s position-wise: the signature of the min-combined
// candidate sketch against the same query (paper Section V.A). Both
// signatures must have the same K.
func (s *Signature) Or(other *Signature) {
	if s.K != other.K {
		panic("bitsig: Or K mismatch")
	}
	for i := range s.Lo {
		s.Lo[i] |= other.Lo[i]
		s.Hi[i] |= other.Hi[i]
	}
}

// Clone returns an independent copy.
func (s *Signature) Clone() *Signature {
	return &Signature{
		K:  s.K,
		Lo: append([]uint64(nil), s.Lo...),
		Hi: append([]uint64(nil), s.Hi...),
	}
}

// Counts returns the number of Greater, Equal and Less positions.
func (s *Signature) Counts() (greater, equal, less int) {
	var lo, hi int
	for i := range s.Lo {
		lo += bits.OnesCount64(s.Lo[i])
		hi += bits.OnesCount64(s.Hi[i])
	}
	return s.K - lo, lo - hi, hi
}

// LessCount returns the number of Less positions (the paper's N_s, "number
// of 1 on the odd positions").
func (s *Signature) LessCount() int {
	var hi int
	for i := range s.Hi {
		hi += bits.OnesCount64(s.Hi[i])
	}
	return hi
}

// Similarity evaluates Lemma 1: the estimated Jaccard similarity is the
// fraction of Equal positions, sim = (K − n> − n<)/K.
func (s *Signature) Similarity() float64 {
	_, eq, _ := s.Counts()
	return float64(eq) / float64(s.K)
}

// Prunable evaluates Lemma 2: once the number of Less positions exceeds
// K(1−δ) the candidate (and, by monotonicity of OR, every extension of it)
// can never reach similarity δ against this query.
func (s *Signature) Prunable(delta float64) bool {
	return float64(s.LessCount()) > float64(s.K)*(1-delta)
}

// SizeBits returns the information size of the signature: 2K bits, the
// figure the paper's memory accounting uses.
func (s *Signature) SizeBits() int { return 2 * s.K }

package bitsig

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vdsms/internal/minhash"
)

func TestCompare(t *testing.T) {
	if Compare(5, 3) != Greater || Compare(3, 3) != Equal || Compare(2, 3) != Less {
		t.Error("Compare relations wrong")
	}
}

func TestRelationString(t *testing.T) {
	if Greater.String() != ">" || Equal.String() != "=" || Less.String() != "<" {
		t.Error("Relation strings wrong")
	}
}

func TestSetAt(t *testing.T) {
	s := New(130) // spans three words
	for r := 0; r < 130; r++ {
		if s.At(r) != Greater {
			t.Fatalf("fresh position %d = %v", r, s.At(r))
		}
	}
	s.Set(0, Equal)
	s.Set(64, Less)
	s.Set(129, Equal)
	if s.At(0) != Equal || s.At(64) != Less || s.At(129) != Equal {
		t.Error("Set/At round trip failed")
	}
	s.Set(64, Greater) // Set must overwrite, including clearing bits
	if s.At(64) != Greater {
		t.Error("Set(Greater) did not clear position")
	}
	s.Set(0, Less)
	if s.At(0) != Less {
		t.Error("Equal→Less overwrite failed")
	}
}

func TestCounts(t *testing.T) {
	s := New(100)
	for r := 0; r < 30; r++ {
		s.Set(r, Equal)
	}
	for r := 30; r < 50; r++ {
		s.Set(r, Less)
	}
	g, e, l := s.Counts()
	if g != 50 || e != 30 || l != 20 {
		t.Errorf("Counts = (%d,%d,%d), want (50,30,20)", g, e, l)
	}
	if s.LessCount() != 20 {
		t.Errorf("LessCount = %d", s.LessCount())
	}
	if sim := s.Similarity(); sim != 0.3 {
		t.Errorf("Similarity = %g, want 0.3 (Lemma 1)", sim)
	}
}

// TestOrMergeTable checks every row of the paper's min/OR table:
// min{>,>}=">", min{>,=}="=", min{>,<}="<", min{=,=}="=", min{=,<}="<",
// min{<,<}="<".
func TestOrMergeTable(t *testing.T) {
	cases := []struct{ a, b, want Relation }{
		{Greater, Greater, Greater},
		{Greater, Equal, Equal},
		{Greater, Less, Less},
		{Equal, Equal, Equal},
		{Equal, Less, Less},
		{Less, Less, Less},
	}
	for _, c := range cases {
		for _, swap := range []bool{false, true} {
			a, b := c.a, c.b
			if swap {
				a, b = b, a
			}
			sa, sb := New(4), New(4)
			sa.Set(2, a)
			sb.Set(2, b)
			sa.Or(sb)
			if got := sa.At(2); got != c.want {
				t.Errorf("Or(%v,%v) = %v, want %v", a, b, got, c.want)
			}
		}
	}
}

// TestOrMatchesSketchMin is the lossless-encoding claim of Section V.A:
// the OR of the signatures of two candidate sketches equals the signature
// of their min-combination, for the same query.
func TestOrMatchesSketchMin(t *testing.T) {
	fam, _ := minhash.NewFamily(256, 1)
	q := fam.SketchSet([]uint64{10, 20, 30, 40})
	a := fam.SketchSet([]uint64{10, 25, 35})
	b := fam.SketchSet([]uint64{20, 40, 99})

	sa := FromSketches(a, q)
	sb := FromSketches(b, q)
	sa.Or(sb)

	combined := minhash.Combined(a, b)
	direct := FromSketches(combined, q)
	for r := 0; r < 256; r++ {
		if sa.At(r) != direct.At(r) {
			t.Fatalf("position %d: OR gives %v, direct signature gives %v",
				r, sa.At(r), direct.At(r))
		}
	}
	if sa.Similarity() != minhash.Similarity(combined, q) {
		t.Errorf("Lemma 1 similarity %g != sketch similarity %g",
			sa.Similarity(), minhash.Similarity(combined, q))
	}
}

func TestFromSketchesSimilarityMatchesSketch(t *testing.T) {
	fam, _ := minhash.NewFamily(512, 2)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		var setA, setB []uint64
		for i := 0; i < 40; i++ {
			setA = append(setA, uint64(rng.Intn(100)))
			setB = append(setB, uint64(rng.Intn(100)))
		}
		a, b := fam.SketchSet(setA), fam.SketchSet(setB)
		sig := FromSketches(a, b)
		if got, want := sig.Similarity(), minhash.Similarity(a, b); math.Abs(got-want) > 1e-12 {
			t.Fatalf("signature similarity %g, sketch similarity %g", got, want)
		}
	}
}

func TestPrunable(t *testing.T) {
	s := New(100)
	// δ=0.7 → prune when LessCount > 30.
	for r := 0; r < 30; r++ {
		s.Set(r, Less)
	}
	if s.Prunable(0.7) {
		t.Error("LessCount=30 prunable at δ=0.7, bound is strict >")
	}
	s.Set(30, Less)
	if !s.Prunable(0.7) {
		t.Error("LessCount=31 not prunable at δ=0.7")
	}
}

// Lemma 2 soundness: a candidate that still satisfies sim >= δ can never be
// prunable, regardless of the relation mix.
func TestPropertyLemma2Sound(t *testing.T) {
	f := func(seed int64, deltaPct uint8) bool {
		delta := float64(deltaPct%50+50) / 100 // δ ∈ [0.5, 1)
		rng := rand.New(rand.NewSource(seed))
		s := New(64)
		for r := 0; r < 64; r++ {
			s.Set(r, Relation(rng.Intn(3)))
		}
		if s.Similarity() >= delta && s.Prunable(delta) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Lemma 2 monotonicity: OR-ing never decreases LessCount, so a pruned
// candidate's extensions stay pruned.
func TestPropertyOrMonotoneLess(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		ra := rand.New(rand.NewSource(seedA))
		rb := rand.New(rand.NewSource(seedB))
		a, b := New(64), New(64)
		for r := 0; r < 64; r++ {
			a.Set(r, Relation(ra.Intn(3)))
			b.Set(r, Relation(rb.Intn(3)))
		}
		before := a.LessCount()
		a.Or(b)
		return a.LessCount() >= before && a.LessCount() >= b.LessCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestClone(t *testing.T) {
	s := New(64)
	s.Set(3, Less)
	c := s.Clone()
	c.Set(3, Greater)
	if s.At(3) != Less {
		t.Error("Clone shares storage")
	}
}

func TestSizeBits(t *testing.T) {
	if New(800).SizeBits() != 1600 {
		t.Error("SizeBits != 2K")
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"New(0)":       func() { New(0) },
		"Set range":    func() { New(8).Set(8, Equal) },
		"At range":     func() { New(8).At(-1) },
		"Or mismatch":  func() { New(8).Or(New(16)) },
		"FromSketches": func() { FromSketches(make(minhash.Sketch, 4), make(minhash.Sketch, 8)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkOrK800(b *testing.B) {
	x, y := New(800), New(800)
	for r := 0; r < 800; r += 3 {
		y.Set(r, Less)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Or(y)
	}
}

func BenchmarkSimilarityK800(b *testing.B) {
	x := New(800)
	for r := 0; r < 800; r += 2 {
		x.Set(r, Equal)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Similarity()
	}
}

func BenchmarkFromSketchesK800(b *testing.B) {
	fam, _ := minhash.NewFamily(800, 1)
	q := fam.SketchSet([]uint64{1, 2, 3})
	c := fam.SketchSet([]uint64{2, 3, 4})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FromSketches(c, q)
	}
}

// Package perfobs is the performance-attribution layer of the VDSMS: it
// answers *where the time and the allocations of a window went*, per stage
// and per stream, at fleet scale — the measurement substrate the speed work
// of ROADMAP open item 1 gates against.
//
// It is built from four pieces, all stdlib-only and layered on
// internal/telemetry:
//
//   - Span records. Every sampled basic window carries one pooled Span
//     through the pipeline: front-end decode/extract, the kernel stages
//     (sketch, probe, combine, merge), the fleet's queue-wait and
//     worker-pin hop, and the window total. Spans are folded into a
//     worker-invariant Aggregate and exported as JSON lines through
//     /debug/spans and the CLIs' -span-log flag.
//
//   - Allocation and GC attribution. A configurable sub-sample of spans
//     additionally brackets each kernel stage with runtime/metrics
//     allocated-object reads, and diffs runtime.ReadMemStats GC totals, so
//     vcd_perf_allocs_per_window{stage} and the vcd_perf_gc_* series turn
//     the roadmap's allocs/op target into a live metric instead of a bench
//     number.
//
//   - Fleet outlier surfacing. Bounded space-saving (heavy-hitter) top-K
//     trackers name the slowest, most-shed and most-backpressured streams
//     of a fleet without per-stream metric labels; see Outliers.
//
//   - Continuous profiling. An opt-in Profiler periodically captures CPU
//     and heap profiles into a bounded ring of files so a production
//     incident always has a recent profile on disk; see profiler.go.
//
// Hot-path contract: with sampling disabled (the default), the only cost a
// window pays is one atomic load in Collector.Begin — no clock reads, no
// allocations, no locks. Sampled windows draw their Span from a sync.Pool
// and fold it back under one short mutex, so steady-state sampling
// allocates nothing either (JSON rendering happens at export time, on the
// reader's goroutine).
package perfobs

import "time"

// Stage enumerates the attributable pipeline stages of one basic window.
// The order is the export order and is part of the /debug/spans schema.
type Stage uint8

const (
	// StageDecode and StageExtract are the front end: entropy decode and
	// feature extraction of the frames that filled the window (facade-side,
	// summed over the window's frames).
	StageDecode Stage = iota
	StageExtract
	// StageSketch, StageProbe, StageCombine and StageMerge are the matching
	// kernel's serial and fanned-out stages; probe and combine report the
	// slowest shard (the critical path), merge covers the serial spine work
	// around the shard fork.
	StageSketch
	StageProbe
	StageCombine
	StageMerge
	// StageQueueWait is the time the pass's frames spent in the fleet
	// stream's bounded queue before its pinned worker picked them up;
	// StageWorkerHop is the scheduling hop between the wake signal and the
	// pass actually starting. Both are zero outside fleet deployments and
	// are attributed to the first window of each worker pass.
	StageQueueWait
	StageWorkerHop
	// StageWindowTotal is the window's full kernel processing time.
	StageWindowTotal

	// NumStages bounds the per-span stage arrays.
	NumStages
)

var stageNames = [NumStages]string{
	"decode", "extract", "sketch", "probe", "combine", "merge",
	"queue_wait", "worker_hop", "window_total",
}

// String returns the stage's exposition name (the value of the stage label
// and the key of the span JSON "ns" object).
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Span is the per-window record carried through the pipeline for sampled
// windows. Spans are pooled: obtain one from Collector.Begin (nil when the
// window is not sampled) and return it with Collector.End — never retain a
// Span after End.
type Span struct {
	// Stream is the owning stream's label (fleet stream id, facade stream
	// name, or "" for an anonymous engine).
	Stream string
	// Window is the engine's 1-based processed-window ordinal; StartFrame
	// and EndFrame delimit the window in key frames.
	Window     int64
	StartFrame int
	EndFrame   int
	// Related is the number of related queries the probe surfaced; Workers
	// the kernel's shard count; Plane the query-plane version the window
	// ran against.
	Related int
	Workers int
	Plane   uint64

	// NS holds the per-stage wall-clock spans in nanoseconds, indexed by
	// Stage. Unobserved stages stay zero.
	NS [NumStages]int64

	// AllocObjs holds per-stage allocated-object deltas for alloc-sampled
	// spans (see Collector.SetAllocEvery): sketch, the probe+combine shard
	// fork (attributed to StageProbe), merge, and the window total. Process
	// -wide counters, so concurrent streams bleed into each other's deltas;
	// at fleet idle or single-stream load they are exact. Zero when this
	// span was not alloc-sampled.
	AllocObjs [NumStages]int64

	// allocOn marks an alloc-sampled span; lastAllocObjs is the running
	// allocated-objects reading the next AllocMark diffs against.
	allocOn       bool
	lastAllocObjs uint64
	beginAlloc    uint64
}

// SetNS records one stage's duration in nanoseconds.
func (sp *Span) SetNS(st Stage, ns int64) { sp.NS[st] = ns }

// Set records one stage's duration.
func (sp *Span) Set(st Stage, d time.Duration) { sp.NS[st] = d.Nanoseconds() }

// reset clears a span for reuse, keeping nothing from the previous window.
func (sp *Span) reset() {
	*sp = Span{}
}

// Bounded heavy-hitter tracking: the space-saving sketch of Metwally,
// Agrawal & El Abbadi ("Efficient Computation of Frequent and Top-k
// Elements in Data Streams", ICDT 2005). Memory is O(k) regardless of how
// many distinct keys flow through — the property that lets a 1024-stream
// fleet name its worst streams without per-stream metric labels.
package perfobs

import (
	"sort"
	"sync"
)

// Item is one tracked heavy hitter. Count over-estimates the key's true
// weight by at most Err (the count of the entry it displaced), the standard
// space-saving guarantee.
type Item struct {
	Key   string `json:"key"`
	Count int64  `json:"count"`
	Err   int64  `json:"err,omitempty"`
}

// TopK is a concurrency-safe space-saving sketch over weighted keys.
// Eviction ties break on the lexicographically smallest key so two runs
// observing the same sequence produce identical sketches.
type TopK struct {
	mu    sync.Mutex
	k     int
	items map[string]*Item
	max   int64
}

// NewTopK builds a sketch tracking at most k keys (k < 1 is clamped to 1).
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{k: k, items: make(map[string]*Item, k)}
}

// Observe adds weight w to key. Non-positive weights are ignored.
func (t *TopK) Observe(key string, w int64) {
	if w <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if it, ok := t.items[key]; ok {
		it.Count += w
		if it.Count > t.max {
			t.max = it.Count
		}
		return
	}
	if len(t.items) < t.k {
		it := &Item{Key: key, Count: w}
		t.items[key] = it
		if it.Count > t.max {
			t.max = it.Count
		}
		return
	}
	// Displace the minimum-count entry (deterministic tie-break), keeping
	// its count as the newcomer's floor and error bound.
	var min *Item
	for _, it := range t.items {
		if min == nil || it.Count < min.Count ||
			(it.Count == min.Count && it.Key < min.Key) {
			min = it
		}
	}
	delete(t.items, min.Key)
	it := &Item{Key: key, Count: min.Count + w, Err: min.Count}
	t.items[key] = it
	if it.Count > t.max {
		t.max = it.Count
	}
}

// Items returns the tracked entries sorted by descending count (key
// ascending on ties), truncated to limit when limit > 0.
func (t *TopK) Items(limit int) []Item {
	t.mu.Lock()
	out := make([]Item, 0, len(t.items))
	for _, it := range t.items {
		out = append(out, *it)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if limit > 0 && limit < len(out) {
		out = out[:limit]
	}
	return out
}

// Max returns the largest count ever held by an entry (0 when empty).
func (t *TopK) Max() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.max
}

// Len returns the number of tracked keys.
func (t *TopK) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.items)
}

// Reset clears the sketch.
func (t *TopK) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.items = make(map[string]*Item, t.k)
	t.max = 0
}

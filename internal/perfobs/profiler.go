// Continuous profiling: opt-in periodic CPU and heap profile capture into
// a bounded ring of files, so a production incident always has a profile
// from the last few minutes on disk without anyone attaching pprof first.
package perfobs

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"time"

	"vdsms/internal/telemetry"
)

var (
	telProfilesCaptured = telemetry.Default.Counter("vcd_perf_profiles_captured_total",
		"CPU+heap profile pairs captured by the continuous profiler.")
	telProfileErrors = telemetry.Default.Counter("vcd_perf_profile_errors_total",
		"Continuous-profiler capture failures (file or pprof errors).")
)

// Profiler periodically captures a CPU profile (a quarter of the capture
// period, clamped to [10ms, 10s]) and a heap profile into dir. File names
// cycle through keep slots (cpu-0.pprof … cpu-(keep-1).pprof and the heap-
// equivalents), so disk use is bounded at roughly 2×keep small files.
type Profiler struct {
	dir   string
	every time.Duration
	keep  int

	stop chan struct{}
	done chan struct{}
}

// StartProfiler begins continuous profiling into dir every period, keeping
// the last keep captures of each kind (keep < 1 is clamped to 1, every
// < 1s to 1s). The directory is created if missing. Only one CPU profile
// can run per process, so start at most one Profiler.
func StartProfiler(dir string, every time.Duration, keep int) (*Profiler, error) {
	if dir == "" {
		return nil, fmt.Errorf("perfobs: profiler needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("perfobs: profile dir: %w", err)
	}
	if keep < 1 {
		keep = 1
	}
	if every < time.Second {
		every = time.Second
	}
	p := &Profiler{
		dir:   dir,
		every: every,
		keep:  keep,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go p.run()
	return p, nil
}

// Stop halts the capture loop and waits for an in-flight capture to finish.
func (p *Profiler) Stop() {
	close(p.stop)
	<-p.done
}

func (p *Profiler) run() {
	defer close(p.done)
	t := time.NewTicker(p.every)
	defer t.Stop()
	for seq := 0; ; seq++ {
		select {
		case <-p.stop:
			return
		case <-t.C:
		}
		if err := p.capture(seq % p.keep); err != nil {
			telProfileErrors.Inc()
			continue
		}
		telProfilesCaptured.Inc()
	}
}

// capture writes one CPU profile (sampling for a quarter of the period)
// and one heap profile into ring slot.
func (p *Profiler) capture(slot int) error {
	cpuDur := p.every / 4
	if cpuDur > 10*time.Second {
		cpuDur = 10 * time.Second
	}
	if cpuDur < 10*time.Millisecond {
		cpuDur = 10 * time.Millisecond
	}

	cf, err := os.Create(filepath.Join(p.dir, fmt.Sprintf("cpu-%d.pprof", slot)))
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(cf); err != nil {
		cf.Close()
		return err
	}
	// Honour Stop during the sampling window so shutdown never waits a full
	// CPU capture.
	select {
	case <-time.After(cpuDur):
	case <-p.stop:
	}
	pprof.StopCPUProfile()
	if err := cf.Close(); err != nil {
		return err
	}

	hf, err := os.Create(filepath.Join(p.dir, fmt.Sprintf("heap-%d.pprof", slot)))
	if err != nil {
		return err
	}
	if err := pprof.Lookup("heap").WriteTo(hf, 0); err != nil {
		hf.Close()
		return err
	}
	return hf.Close()
}

// The span collector: deterministic counter-based sampling, a pooled span
// lifecycle, a bounded export ring, and the worker-invariant fold.
package perfobs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"vdsms/internal/telemetry"
)

// DefaultRing is the number of sampled spans retained for export when the
// collector is built with NewCollector.
const DefaultRing = 2048

var (
	telSpansSampled = telemetry.Default.Counter("vcd_perf_spans_sampled_total",
		"Basic-window spans captured by the performance-attribution sampler.")
	telSpanEvery = telemetry.Default.Gauge("vcd_perf_span_sample_every",
		"Span sampling cadence: every Nth window is sampled (0 = sampling off).")
)

// StageAgg is one stage's slice of an Aggregate.
type StageAgg struct {
	// Count is the number of sampled spans that observed this stage (equal
	// to the sampled-window count for always-on stages, fewer for fleet-only
	// ones). Worker-count invariant.
	Count int64 `json:"count"`
	// SumNS and MaxNS summarise the observed durations (wall-clock; NOT
	// worker-count invariant).
	SumNS int64 `json:"sum_ns"`
	MaxNS int64 `json:"max_ns"`
}

// Aggregate is the fold of every sampled span so far. The Counts projection
// is deterministic for a fixed frame sequence regardless of worker count or
// scheduling; the duration fields are wall-clock measurements.
type Aggregate struct {
	// Windows counts sampled spans; AllocSampled those that also carried
	// allocation attribution.
	Windows      int64 `json:"windows"`
	AllocSampled int64 `json:"alloc_sampled"`
	// RelatedSum totals the related-query counts of sampled windows.
	RelatedSum int64 `json:"related_sum"`
	// Stages indexes per-stage summaries by Stage.
	Stages [NumStages]StageAgg `json:"stages"`

	// hist holds per-stage duration bucket counts over
	// telemetry.DurationBuckets (+Inf last) for quantile estimation.
	hist [NumStages][]int64
}

// AggCounts is the deterministic projection of an Aggregate: sampled-window
// and per-stage observation counts plus the related-query total, with every
// wall-clock measurement stripped. Two runs of the same frame sequence
// produce byte-identical marshalled AggCounts at any worker count — the
// invariant TestSpanFoldDeterminism pins.
type AggCounts struct {
	Windows      int64            `json:"windows"`
	AllocSampled int64            `json:"alloc_sampled"`
	RelatedSum   int64            `json:"related_sum"`
	StageCounts  [NumStages]int64 `json:"stage_counts"`
}

// Counts returns the deterministic projection.
func (a *Aggregate) Counts() AggCounts {
	c := AggCounts{
		Windows:      a.Windows,
		AllocSampled: a.AllocSampled,
		RelatedSum:   a.RelatedSum,
	}
	for i := range a.Stages {
		c.StageCounts[i] = a.Stages[i].Count
	}
	return c
}

// Quantile estimates the q-quantile of one stage's sampled durations, in
// seconds, from the aggregate's bucket counts (telemetry.DurationBuckets
// layout). Returns 0 with no observations.
func (a *Aggregate) Quantile(st Stage, q float64) float64 {
	if a.hist[st] == nil {
		return 0
	}
	return telemetry.QuantileFromCounts(telemetry.DurationBuckets, a.hist[st], q)
}

// MeanNS returns one stage's mean sampled duration in nanoseconds (0 with
// no observations).
func (a *Aggregate) MeanNS(st Stage) float64 {
	if a.Stages[st].Count == 0 {
		return 0
	}
	return float64(a.Stages[st].SumNS) / float64(a.Stages[st].Count)
}

// SpanRecord is the schema-stable JSON shape of one exported span — the
// /debug/spans and -span-log line format (schema "vcd_span/v1").
type SpanRecord struct {
	Schema     string           `json:"schema"`
	Stream     string           `json:"stream"`
	Window     int64            `json:"window"`
	StartFrame int              `json:"startFrame"`
	EndFrame   int              `json:"endFrame"`
	Related    int              `json:"related"`
	Workers    int              `json:"workers"`
	Plane      uint64           `json:"plane"`
	NS         map[string]int64 `json:"ns"`
	AllocObjs  map[string]int64 `json:"allocObjs,omitempty"`
}

// record converts a span to its export shape. Stages that were never
// observed are omitted from the maps so records stay compact.
func record(sp *Span) SpanRecord {
	r := SpanRecord{
		Schema:     "vcd_span/v1",
		Stream:     sp.Stream,
		Window:     sp.Window,
		StartFrame: sp.StartFrame,
		EndFrame:   sp.EndFrame,
		Related:    sp.Related,
		Workers:    sp.Workers,
		Plane:      sp.Plane,
		NS:         make(map[string]int64, NumStages),
	}
	for st := Stage(0); st < NumStages; st++ {
		if ns := sp.NS[st]; ns != 0 {
			r.NS[st.String()] = ns
		}
	}
	if sp.allocOn {
		r.AllocObjs = make(map[string]int64, 4)
		for st := Stage(0); st < NumStages; st++ {
			if n := sp.AllocObjs[st]; n != 0 {
				r.AllocObjs[st.String()] = n
			}
		}
	}
	return r
}

// Collector samples basic-window spans. One process-wide Default instance
// is shared by every engine; tests build private collectors.
type Collector struct {
	// every is the sampling cadence: 0 = off, N ≥ 1 = every Nth processed
	// window (counter-based, hence deterministic for a fixed push sequence).
	every atomic.Int64
	// allocEvery sub-samples alloc attribution: every Nth *sampled* span
	// also brackets stages with allocation reads (0 = never).
	allocEvery atomic.Int64
	// seq counts windows offered to Begin while sampling is armed.
	seq atomic.Int64
	// sampledSeq counts sampled spans (drives allocEvery).
	sampledSeq atomic.Int64

	pool sync.Pool

	mu   sync.Mutex
	ring []Span // fixed capacity, overwrite-oldest
	head int    // next write position
	len  int
	agg  Aggregate
	// onSpan, when set, receives a copy of every sampled span at End (the
	// -span-log hook). Called under mu: keep it cheap and never re-enter
	// the collector.
	onSpan func(SpanRecord)
	// outliers, when set, receives (stream, window-total) observations so
	// the slowest-stream tracker sees every sampled window.
	outliers *Outliers

	gc  gcState
	tel bool // publish to the process-wide telemetry registry (Default only)
}

// Default is the process-wide collector every engine reports into.
var Default = newCollector(DefaultRing, true)

// NewCollector builds a private collector (tests, benchmarks) with the
// given export-ring capacity. It does not publish telemetry.
func NewCollector(ring int) *Collector { return newCollector(ring, false) }

func newCollector(ring int, tel bool) *Collector {
	if ring < 1 {
		ring = 1
	}
	c := &Collector{ring: make([]Span, ring), tel: tel}
	c.pool.New = func() any { return new(Span) }
	for st := range c.agg.hist {
		c.agg.hist[st] = make([]int64, len(telemetry.DurationBuckets)+1)
	}
	return c
}

// SetSampleEvery sets the sampling cadence: 0 disables sampling, 1 samples
// every window, N samples every Nth. Resets the window counter so cadence
// changes take effect deterministically.
func (c *Collector) SetSampleEvery(n int64) {
	if n < 0 {
		n = 0
	}
	c.every.Store(n)
	c.seq.Store(0)
	if c.tel {
		telSpanEvery.Set(float64(n))
	}
}

// SetSampleFraction is SetSampleEvery for a fraction: 0 disables, f in
// (0, 1] samples every round(1/f)th window.
func (c *Collector) SetSampleFraction(f float64) {
	switch {
	case f <= 0:
		c.SetSampleEvery(0)
	case f >= 1:
		c.SetSampleEvery(1)
	default:
		c.SetSampleEvery(int64(1/f + 0.5))
	}
}

// SampleEvery returns the current cadence (0 = off).
func (c *Collector) SampleEvery() int64 { return c.every.Load() }

// Armed reports whether any window could be sampled — the cue for callers
// that must pre-arm timing (the facade's front-end timer).
func (c *Collector) Armed() bool { return c.every.Load() > 0 }

// SetAllocEvery sets the allocation-attribution sub-sample: every Nth
// sampled span also carries per-stage alloc deltas and a GC reading
// (0 = never). Alloc sampling costs a few runtime metric reads per sampled
// window, so production deployments keep N ≥ 8.
func (c *Collector) SetAllocEvery(n int64) {
	if n < 0 {
		n = 0
	}
	c.allocEvery.Store(n)
}

// SetOnSpan installs the span-log hook, invoked once per sampled span with
// its export record. Pass nil to remove.
func (c *Collector) SetOnSpan(fn func(SpanRecord)) {
	c.mu.Lock()
	c.onSpan = fn
	c.mu.Unlock()
}

// SetOutliers wires a fleet outlier surface: every sampled span's window
// total feeds the slowest-stream tracker.
func (c *Collector) SetOutliers(o *Outliers) {
	c.mu.Lock()
	c.outliers = o
	c.mu.Unlock()
}

// Begin decides whether the next processed window is sampled. It returns a
// pooled span to fill (stream label already set) or nil. The disabled path
// is one atomic load.
func (c *Collector) Begin(stream string) *Span {
	every := c.every.Load()
	if every == 0 {
		return nil
	}
	if c.seq.Add(1)%every != 0 {
		return nil
	}
	sp := c.pool.Get().(*Span)
	sp.reset()
	sp.Stream = stream
	if ae := c.allocEvery.Load(); ae > 0 && c.sampledSeq.Add(1)%ae == 0 {
		c.beginAlloc(sp)
	}
	return sp
}

// End folds a sampled span into the aggregate, retains a copy in the export
// ring, publishes telemetry and returns the span to the pool. sp must come
// from Begin; nil is ignored.
func (c *Collector) End(sp *Span) {
	if sp == nil {
		return
	}
	if sp.allocOn {
		c.endAlloc(sp)
	}
	c.mu.Lock()
	c.agg.Windows++
	c.agg.RelatedSum += int64(sp.Related)
	if sp.allocOn {
		c.agg.AllocSampled++
	}
	for st := Stage(0); st < NumStages; st++ {
		ns := sp.NS[st]
		if ns == 0 && st != StageWindowTotal {
			continue
		}
		a := &c.agg.Stages[st]
		a.Count++
		a.SumNS += ns
		if ns > a.MaxNS {
			a.MaxNS = ns
		}
		observeBucket(c.agg.hist[st], float64(ns)/1e9)
	}
	c.ring[c.head] = *sp
	c.head = (c.head + 1) % len(c.ring)
	if c.len < len(c.ring) {
		c.len++
	}
	if c.onSpan != nil {
		c.onSpan(record(sp))
	}
	out := c.outliers
	totalNS := sp.NS[StageWindowTotal]
	stream := sp.Stream
	c.mu.Unlock()
	if out != nil && totalNS > 0 {
		out.observeSlowest(stream, totalNS)
	}
	if c.tel {
		telSpansSampled.Inc()
	}
	c.pool.Put(sp)
}

// observeBucket adds one observation to a DurationBuckets count slice.
func observeBucket(counts []int64, seconds float64) {
	i := 0
	bounds := telemetry.DurationBuckets
	for i < len(bounds) && seconds > bounds[i] {
		i++
	}
	counts[i]++
}

// Aggregate returns a copy of the fold so far.
func (c *Collector) Aggregate() Aggregate {
	c.mu.Lock()
	defer c.mu.Unlock()
	a := c.agg
	for st := range a.hist {
		a.hist[st] = append([]int64(nil), c.agg.hist[st]...)
	}
	return a
}

// Sampled returns the number of spans sampled so far.
func (c *Collector) Sampled() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.agg.Windows
}

// Spans returns up to limit retained spans as export records, oldest first
// (limit ≤ 0 returns all retained).
func (c *Collector) Spans(limit int) []SpanRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.len
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]SpanRecord, 0, n)
	// Oldest retained span sits at head when the ring is full, else at 0;
	// emit the most recent n in chronological order.
	start := c.head - n
	if start < 0 {
		start += len(c.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, record(&c.ring[(start+i)%len(c.ring)]))
	}
	return out
}

// WriteSpans writes up to limit retained spans as JSON lines, oldest first.
func (c *Collector) WriteSpans(w io.Writer, limit int) error {
	for _, r := range c.Spans(limit) {
		b, err := json.Marshal(r)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s\n", b); err != nil {
			return err
		}
	}
	return nil
}

// Reset clears the aggregate, the ring and the counters (tests and
// benchmark harnesses; cadence settings survive).
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.agg = Aggregate{}
	for st := range c.agg.hist {
		c.agg.hist[st] = make([]int64, len(telemetry.DurationBuckets)+1)
	}
	c.head, c.len = 0, 0
	c.seq.Store(0)
	c.sampledSeq.Store(0)
}

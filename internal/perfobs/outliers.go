// Fleet outlier surfacing: which streams are the slowest, shed the most
// frames, or get backpressured the most — named explicitly via bounded
// top-K sketches instead of per-stream metric labels (a 1024-stream fleet
// would otherwise mint 1024 series per metric).
package perfobs

import "vdsms/internal/telemetry"

var (
	telOutlierSlowestNS = telemetry.Default.Gauge("vcd_fleet_outlier_slowest_ns",
		"Cumulative window-processing nanoseconds of the fleet's slowest tracked stream (space-saving top-K; see /debug/fleet/top for the stream id).")
	telOutlierShed = telemetry.Default.Gauge("vcd_fleet_outlier_shed_frames",
		"Shed-frame count of the fleet's most-shed tracked stream.")
	telOutlierBackpressure = telemetry.Default.Gauge("vcd_fleet_outlier_backpressure_frames",
		"Backpressure-rejected frame count of the fleet's most-rejected tracked stream.")
)

// Outliers groups the three per-fleet heavy-hitter sketches. Slowest is fed
// by the span collector (cumulative window-total nanoseconds per stream, so
// it only sees sampled windows), Shed by the degradation layer (frames shed
// per stream) and Backpressure by the fleet's push path (frames rejected
// per stream).
type Outliers struct {
	Slowest      *TopK
	Shed         *TopK
	Backpressure *TopK
	tel          bool
}

// NewOutliers builds a private outlier set with k tracked streams per
// dimension (tests; does not publish telemetry).
func NewOutliers(k int) *Outliers { return newOutliers(k, false) }

func newOutliers(k int, tel bool) *Outliers {
	return &Outliers{
		Slowest:      NewTopK(k),
		Shed:         NewTopK(k),
		Backpressure: NewTopK(k),
		tel:          tel,
	}
}

// DefaultOutliers is the process-wide outlier set, fed by the Default
// collector and published through the vcd_fleet_outlier_* gauges.
var DefaultOutliers = newOutliers(16, true)

func init() { Default.SetOutliers(DefaultOutliers) }

// ObserveShed records w frames shed for stream.
func (o *Outliers) ObserveShed(stream string, w int64) {
	o.Shed.Observe(stream, w)
	if o.tel {
		telOutlierShed.Set(float64(o.Shed.Max()))
	}
}

// ObserveBackpressure records w frames rejected with backpressure for
// stream.
func (o *Outliers) ObserveBackpressure(stream string, w int64) {
	o.Backpressure.Observe(stream, w)
	if o.tel {
		telOutlierBackpressure.Set(float64(o.Backpressure.Max()))
	}
}

// observeSlowest is the span collector's feed (Collector.End).
func (o *Outliers) observeSlowest(stream string, ns int64) {
	o.Slowest.Observe(stream, ns)
	if o.tel {
		telOutlierSlowestNS.Set(float64(o.Slowest.Max()))
	}
}

// Report is the schema-stable /debug/fleet/top JSON shape.
type Report struct {
	Schema       string `json:"schema"` // "vcd_fleet_top/v1"
	K            int    `json:"k"`
	Slowest      []Item `json:"slowest"`      // weight: sampled window-total ns
	Shed         []Item `json:"shed"`         // weight: shed frames
	Backpressure []Item `json:"backpressure"` // weight: rejected frames
}

// Report returns the top entries of every dimension, each truncated to
// limit when limit > 0.
func (o *Outliers) Report(limit int) Report {
	return Report{
		Schema:       "vcd_fleet_top/v1",
		K:            o.Slowest.k,
		Slowest:      o.Slowest.Items(limit),
		Shed:         o.Shed.Items(limit),
		Backpressure: o.Backpressure.Items(limit),
	}
}

// Reset clears all three sketches (tests and fleet teardown).
func (o *Outliers) Reset() {
	o.Slowest.Reset()
	o.Shed.Reset()
	o.Backpressure.Reset()
}

// Allocation and GC attribution: per-stage allocated-object deltas from
// runtime/metrics and GC pause totals from runtime.ReadMemStats, taken only
// on alloc-sampled spans so the cost is bounded by Collector.SetAllocEvery.
package perfobs

import (
	"runtime"
	"runtime/metrics"
	"sync"

	"vdsms/internal/telemetry"
)

const allocObjsMetric = "/gc/heap/allocs:objects"

// allocStages are the stages that receive AllocMark brackets in the kernel.
// Decode/extract run frame-at-a-time on the facade side and queue stages
// allocate nothing, so only the kernel stages and the window total carry
// allocation deltas.
var allocStages = [...]Stage{StageSketch, StageProbe, StageMerge, StageWindowTotal}

var telAllocsPerWindow = func() [NumStages]*telemetry.Gauge {
	var g [NumStages]*telemetry.Gauge
	for _, st := range allocStages {
		g[st] = telemetry.Default.Gauge("vcd_perf_allocs_per_window",
			"Mean heap objects allocated per basic window, by pipeline stage (alloc-sampled spans only; probe includes the combine fork).",
			telemetry.L("stage", st.String()))
	}
	return g
}()

var (
	telGCPauseTotal = telemetry.Default.Gauge("vcd_perf_gc_pause_total_seconds",
		"Cumulative process GC stop-the-world pause time (read at alloc-sample cadence).")
	telGCPauseLast = telemetry.Default.Gauge("vcd_perf_gc_pause_last_seconds",
		"Most recent GC stop-the-world pause (read at alloc-sample cadence).")
	telGCCycles = telemetry.Default.Gauge("vcd_perf_gc_cycles_total",
		"Completed GC cycles (read at alloc-sample cadence).")
)

// readAllocObjs returns the process-wide cumulative allocated-object count.
func readAllocObjs() uint64 {
	var s [1]metrics.Sample
	s[0].Name = allocObjsMetric
	metrics.Read(s[:])
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}

// AllocMark attributes the heap objects allocated since the previous mark
// (or since Begin) to the given stage. No-op on spans that were not
// alloc-sampled, so kernel call sites need no gating. The counter is
// process-wide: concurrent streams bleed into each other's deltas; at
// single-stream load the attribution is exact.
func (sp *Span) AllocMark(st Stage) {
	if sp == nil || !sp.allocOn {
		return
	}
	cur := readAllocObjs()
	sp.AllocObjs[st] += int64(cur - sp.lastAllocObjs)
	sp.lastAllocObjs = cur
}

// AllocSampled reports whether this span carries allocation attribution.
func (sp *Span) AllocSampled() bool { return sp != nil && sp.allocOn }

// beginAlloc arms allocation attribution on a freshly sampled span.
func (c *Collector) beginAlloc(sp *Span) {
	sp.allocOn = true
	sp.beginAlloc = readAllocObjs()
	sp.lastAllocObjs = sp.beginAlloc
}

// gcState tracks the alloc-attribution fold: running per-stage object
// totals (for the per-window mean gauges) and the last GC snapshot.
type gcState struct {
	mu      sync.Mutex
	spans   int64
	objSums [NumStages]int64
}

// endAlloc closes the window-total delta, folds the per-stage means and
// refreshes the GC gauges. Called once per alloc-sampled span, before the
// span is folded into the aggregate.
func (c *Collector) endAlloc(sp *Span) {
	sp.AllocObjs[StageWindowTotal] = int64(readAllocObjs() - sp.beginAlloc)

	c.gc.mu.Lock()
	c.gc.spans++
	n := c.gc.spans
	for _, st := range allocStages {
		c.gc.objSums[st] += sp.AllocObjs[st]
	}
	sums := c.gc.objSums
	c.gc.mu.Unlock()

	if !c.tel {
		return
	}
	for _, st := range allocStages {
		telAllocsPerWindow[st].Set(float64(sums[st]) / float64(n))
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	telGCPauseTotal.Set(float64(ms.PauseTotalNs) / 1e9)
	if ms.NumGC > 0 {
		telGCPauseLast.Set(float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e9)
	}
	telGCCycles.Set(float64(ms.NumGC))
}

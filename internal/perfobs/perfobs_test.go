package perfobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

func TestStageString(t *testing.T) {
	want := map[Stage]string{
		StageDecode:      "decode",
		StageExtract:     "extract",
		StageSketch:      "sketch",
		StageProbe:       "probe",
		StageCombine:     "combine",
		StageMerge:       "merge",
		StageQueueWait:   "queue_wait",
		StageWorkerHop:   "worker_hop",
		StageWindowTotal: "window_total",
	}
	for st, name := range want {
		if got := st.String(); got != name {
			t.Errorf("Stage(%d).String() = %q, want %q", st, got, name)
		}
	}
	if got := Stage(200).String(); got != "unknown" {
		t.Errorf("out-of-range stage = %q, want unknown", got)
	}
}

func TestSamplingCadence(t *testing.T) {
	c := NewCollector(16)
	c.SetSampleEvery(3)
	var sampled int
	for i := 0; i < 30; i++ {
		if sp := c.Begin("s"); sp != nil {
			sampled++
			sp.SetNS(StageWindowTotal, 100)
			c.End(sp)
		}
	}
	if sampled != 10 {
		t.Fatalf("every=3 over 30 windows sampled %d, want 10", sampled)
	}
	if got := c.Sampled(); got != 10 {
		t.Fatalf("Sampled() = %d, want 10", got)
	}
}

func TestSampleFractionMapping(t *testing.T) {
	c := NewCollector(4)
	cases := []struct {
		f    float64
		want int64
	}{
		{0, 0}, {-1, 0}, {1, 1}, {2, 1}, {0.5, 2}, {0.01, 100}, {0.001, 1000},
	}
	for _, tc := range cases {
		c.SetSampleFraction(tc.f)
		if got := c.SampleEvery(); got != tc.want {
			t.Errorf("SetSampleFraction(%v) → every=%d, want %d", tc.f, got, tc.want)
		}
	}
}

func TestDisabledBeginIsNilAndAllocFree(t *testing.T) {
	c := NewCollector(16)
	c.SetSampleEvery(0)
	if sp := c.Begin("s"); sp != nil {
		t.Fatal("Begin with sampling off returned a span")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if sp := c.Begin("s"); sp != nil {
			c.End(sp)
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled Begin allocates %v objects/op, want 0", allocs)
	}
}

func TestSampledSteadyStateAllocFree(t *testing.T) {
	c := NewCollector(16)
	c.SetSampleEvery(1)
	// Warm the pool, then verify steady-state sampling allocates nothing.
	for i := 0; i < 8; i++ {
		sp := c.Begin("warm")
		sp.SetNS(StageWindowTotal, 1)
		c.End(sp)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := c.Begin("warm")
		sp.SetNS(StageWindowTotal, 1)
		c.End(sp)
	})
	if allocs != 0 {
		t.Fatalf("steady-state sampled window allocates %v objects/op, want 0", allocs)
	}
}

func TestAggregateFold(t *testing.T) {
	c := NewCollector(16)
	c.SetSampleEvery(1)
	for i := 1; i <= 4; i++ {
		sp := c.Begin("s")
		sp.Set(StageSketch, time.Duration(i)*time.Millisecond)
		sp.Set(StageWindowTotal, time.Duration(2*i)*time.Millisecond)
		sp.Related = i
		c.End(sp)
	}
	a := c.Aggregate()
	if a.Windows != 4 || a.RelatedSum != 10 {
		t.Fatalf("windows=%d related=%d, want 4/10", a.Windows, a.RelatedSum)
	}
	sk := a.Stages[StageSketch]
	if sk.Count != 4 || sk.SumNS != 10e6 || sk.MaxNS != 4e6 {
		t.Fatalf("sketch agg = %+v", sk)
	}
	// Unobserved stage stays empty; window_total always counts.
	if a.Stages[StageQueueWait].Count != 0 {
		t.Fatalf("queue_wait observed without data")
	}
	if a.Stages[StageWindowTotal].Count != 4 {
		t.Fatalf("window_total count = %d", a.Stages[StageWindowTotal].Count)
	}
	if q := a.Quantile(StageSketch, 0.5); q <= 0 || q > 0.0025 {
		t.Fatalf("sketch p50 = %v, want in (0, 2.5ms]", q)
	}
	if m := a.MeanNS(StageSketch); m != 2.5e6 {
		t.Fatalf("sketch mean = %v ns, want 2.5e6", m)
	}
	counts := a.Counts()
	if counts.Windows != 4 || counts.StageCounts[StageSketch] != 4 {
		t.Fatalf("Counts projection = %+v", counts)
	}
}

func TestSpanRingOrderAndLimit(t *testing.T) {
	c := NewCollector(4)
	c.SetSampleEvery(1)
	for i := 1; i <= 7; i++ {
		sp := c.Begin("s")
		sp.Window = int64(i)
		sp.SetNS(StageWindowTotal, int64(i))
		c.End(sp)
	}
	got := c.Spans(0)
	if len(got) != 4 {
		t.Fatalf("ring of 4 holds %d", len(got))
	}
	for i, r := range got {
		if want := int64(4 + i); r.Window != want {
			t.Fatalf("span[%d].Window = %d, want %d (oldest-first)", i, r.Window, want)
		}
	}
	if got := c.Spans(2); len(got) != 2 || got[0].Window != 6 {
		t.Fatalf("Spans(2) = %+v, want windows 6,7", got)
	}
}

func TestWriteSpansJSONLines(t *testing.T) {
	c := NewCollector(8)
	c.SetSampleEvery(1)
	sp := c.Begin("cam-1")
	sp.Window = 42
	sp.StartFrame = 10
	sp.EndFrame = 19
	sp.Related = 3
	sp.Workers = 2
	sp.Plane = 7
	sp.Set(StageSketch, time.Millisecond)
	sp.Set(StageWindowTotal, 2*time.Millisecond)
	c.End(sp)

	var buf bytes.Buffer
	if err := c.WriteSpans(&buf, 0); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var n int
	for sc.Scan() {
		n++
		var r SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d not JSON: %v", n, err)
		}
		if r.Stream != "cam-1" || r.Window != 42 || r.Plane != 7 {
			t.Fatalf("record = %+v", r)
		}
		if r.NS["sketch"] != 1e6 || r.NS["window_total"] != 2e6 {
			t.Fatalf("ns map = %+v", r.NS)
		}
		if _, ok := r.NS["queue_wait"]; ok {
			t.Fatal("zero stage exported in ns map")
		}
	}
	if n != 1 {
		t.Fatalf("wrote %d lines, want 1", n)
	}
}

func TestOnSpanHook(t *testing.T) {
	c := NewCollector(8)
	c.SetSampleEvery(2)
	var seen []SpanRecord
	c.SetOnSpan(func(r SpanRecord) { seen = append(seen, r) })
	for i := 0; i < 6; i++ {
		if sp := c.Begin("s"); sp != nil {
			sp.SetNS(StageWindowTotal, 5)
			c.End(sp)
		}
	}
	if len(seen) != 3 {
		t.Fatalf("hook saw %d spans, want 3", len(seen))
	}
}

func TestAllocAttribution(t *testing.T) {
	c := NewCollector(8)
	c.SetSampleEvery(1)
	c.SetAllocEvery(1)
	sp := c.Begin("s")
	if sp == nil || !sp.AllocSampled() {
		t.Fatal("span not alloc-sampled with allocEvery=1")
	}
	sink := make([]*int, 0, 1024)
	for i := 0; i < 1024; i++ {
		v := i
		sink = append(sink, &v)
	}
	// The allocated-objects counter drains from per-P caches lazily, so the
	// observed delta under-counts (the documented approximation); a GC
	// flushes enough that 1024 fresh objects always leave a positive delta.
	runtime.GC()
	sp.AllocMark(StageSketch)
	_ = sink
	sp.SetNS(StageWindowTotal, 1)
	c.End(sp)
	a := c.Aggregate()
	if a.AllocSampled != 1 {
		t.Fatalf("AllocSampled = %d", a.AllocSampled)
	}
	got := c.Spans(0)
	if len(got) != 1 || got[0].AllocObjs["sketch"] <= 0 {
		t.Fatalf("sketch alloc delta = %v, want > 0", got[0].AllocObjs)
	}
	// AllocMark on a nil or unsampled span must be a safe no-op.
	var nilSpan *Span
	nilSpan.AllocMark(StageProbe)
	(&Span{}).AllocMark(StageProbe)
}

func TestResetClearsEverything(t *testing.T) {
	c := NewCollector(8)
	c.SetSampleEvery(1)
	sp := c.Begin("s")
	sp.SetNS(StageWindowTotal, 9)
	c.End(sp)
	c.Reset()
	if c.Sampled() != 0 || len(c.Spans(0)) != 0 {
		t.Fatal("Reset left state behind")
	}
	a := c.Aggregate()
	if a.Windows != 0 || a.Stages[StageWindowTotal].Count != 0 {
		t.Fatalf("aggregate after reset = %+v", a)
	}
}

func TestTopKSpaceSaving(t *testing.T) {
	tk := NewTopK(2)
	tk.Observe("a", 10)
	tk.Observe("b", 5)
	tk.Observe("a", 1)
	// "c" displaces the minimum ("b", 5): count = 5+2, err = 5.
	tk.Observe("c", 2)
	items := tk.Items(0)
	if len(items) != 2 {
		t.Fatalf("len = %d", len(items))
	}
	if items[0].Key != "a" || items[0].Count != 11 || items[0].Err != 0 {
		t.Fatalf("items[0] = %+v", items[0])
	}
	if items[1].Key != "c" || items[1].Count != 7 || items[1].Err != 5 {
		t.Fatalf("items[1] = %+v", items[1])
	}
	if tk.Max() != 11 || tk.Len() != 2 {
		t.Fatalf("max=%d len=%d", tk.Max(), tk.Len())
	}
	if got := tk.Items(1); len(got) != 1 || got[0].Key != "a" {
		t.Fatalf("Items(1) = %+v", got)
	}
	tk.Observe("x", 0)
	tk.Observe("x", -4)
	if tk.Len() != 2 {
		t.Fatal("non-positive weight inserted a key")
	}
	tk.Reset()
	if tk.Len() != 0 || tk.Max() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestTopKDeterministicTieBreak(t *testing.T) {
	// Two entries at equal minimum count: eviction must pick the
	// lexicographically smaller key every run.
	for run := 0; run < 8; run++ {
		tk := NewTopK(2)
		tk.Observe("bb", 3)
		tk.Observe("aa", 3)
		tk.Observe("zz", 1)
		items := tk.Items(0)
		keys := map[string]bool{}
		for _, it := range items {
			keys[it.Key] = true
		}
		if !keys["bb"] || !keys["zz"] || keys["aa"] {
			t.Fatalf("run %d evicted wrong key: %+v", run, items)
		}
	}
}

func TestOutliersReport(t *testing.T) {
	o := NewOutliers(4)
	o.Slowest.Observe("s1", 100)
	o.ObserveShed("s2", 7)
	o.ObserveBackpressure("s3", 30)
	o.ObserveBackpressure("s4", 10)
	r := o.Report(1)
	if r.Schema != "vcd_fleet_top/v1" || r.K != 4 {
		t.Fatalf("header = %+v", r)
	}
	if len(r.Slowest) != 1 || r.Slowest[0].Key != "s1" {
		t.Fatalf("slowest = %+v", r.Slowest)
	}
	if len(r.Backpressure) != 1 || r.Backpressure[0].Key != "s3" {
		t.Fatalf("backpressure = %+v", r.Backpressure)
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var round Report
	if err := json.Unmarshal(b, &round); err != nil {
		t.Fatal(err)
	}
	o.Reset()
	if got := o.Report(0); len(got.Shed) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestCollectorFeedsOutliers(t *testing.T) {
	c := NewCollector(8)
	o := NewOutliers(4)
	c.SetOutliers(o)
	c.SetSampleEvery(1)
	sp := c.Begin("slow-stream")
	sp.SetNS(StageWindowTotal, 123456)
	c.End(sp)
	items := o.Slowest.Items(0)
	if len(items) != 1 || items[0].Key != "slow-stream" || items[0].Count != 123456 {
		t.Fatalf("slowest = %+v", items)
	}
}

func TestProfilerRing(t *testing.T) {
	dir := t.TempDir()
	// Drive capture directly with a short period so the test stays fast;
	// lifecycle (goroutine + ticker + Stop) is covered separately below.
	p := &Profiler{dir: dir, every: 80 * time.Millisecond, keep: 2,
		stop: make(chan struct{}), done: make(chan struct{})}
	if err := p.capture(0); err != nil {
		t.Fatal(err)
	}
	if err := p.capture(1); err != nil {
		t.Fatal(err)
	}
	if err := p.capture(0); err != nil { // ring wraps: slot 0 overwritten
		t.Fatal(err)
	}
	lp, err := StartProfiler(t.TempDir(), time.Minute, 2)
	if err != nil {
		t.Fatal(err)
	}
	lp.Stop()
	for _, name := range []string{"cpu-0.pprof", "cpu-1.pprof", "heap-0.pprof", "heap-1.pprof"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
	if _, err := StartProfiler("", time.Second, 2); err == nil {
		t.Fatal("empty dir accepted")
	}
}

package dct

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomBlock(rng *rand.Rand) *Block {
	var b Block
	for i := range b {
		b[i] = rng.Float64()*255 - 128
	}
	return &b
}

func TestForwardInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		src := randomBlock(rng)
		var freq, back Block
		Forward(src, &freq)
		Inverse(&freq, &back)
		for i := range src {
			if math.Abs(src[i]-back[i]) > 1e-9 {
				t.Fatalf("trial %d index %d: %g != %g", trial, i, src[i], back[i])
			}
		}
	}
}

func TestDCIsScaledMean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		src := randomBlock(rng)
		var freq Block
		Forward(src, &freq)
		want := 8 * BlockMean(src)
		if math.Abs(DC(&freq)-want) > 1e-9 {
			t.Fatalf("DC = %g, want 8*mean = %g", DC(&freq), want)
		}
	}
}

func TestConstantBlockEnergy(t *testing.T) {
	var src Block
	for i := range src {
		src[i] = 100
	}
	var freq Block
	Forward(&src, &freq)
	if math.Abs(freq[0]-800) > 1e-9 {
		t.Errorf("DC of constant 100 block = %g, want 800", freq[0])
	}
	for i := 1; i < len(freq); i++ {
		if math.Abs(freq[i]) > 1e-9 {
			t.Errorf("AC coefficient %d = %g, want 0", i, freq[i])
		}
	}
}

func TestParseval(t *testing.T) {
	// The orthonormal DCT preserves energy: Σx² == ΣX².
	rng := rand.New(rand.NewSource(3))
	src := randomBlock(rng)
	var freq Block
	Forward(src, &freq)
	var es, ef float64
	for i := range src {
		es += src[i] * src[i]
		ef += freq[i] * freq[i]
	}
	if math.Abs(es-ef) > 1e-6*es {
		t.Errorf("energy not preserved: spatial %g vs freq %g", es, ef)
	}
}

func TestLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, b := randomBlock(rng), randomBlock(rng)
	var sum Block
	for i := range sum {
		sum[i] = 2*a[i] + 3*b[i]
	}
	var fa, fb, fsum Block
	Forward(a, &fa)
	Forward(b, &fb)
	Forward(&sum, &fsum)
	for i := range fsum {
		want := 2*fa[i] + 3*fb[i]
		if math.Abs(fsum[i]-want) > 1e-8 {
			t.Fatalf("linearity violated at %d: %g vs %g", i, fsum[i], want)
		}
	}
}

func TestZigZagIsPermutation(t *testing.T) {
	seen := make(map[int]bool)
	for _, v := range ZigZag {
		if v < 0 || v >= 64 {
			t.Fatalf("zig-zag value %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("zig-zag value %d repeated", v)
		}
		seen[v] = true
	}
	for i, v := range ZigZag {
		if InvZigZag[v] != i {
			t.Fatalf("InvZigZag[%d] = %d, want %d", v, InvZigZag[v], i)
		}
	}
	// Spot-check the canonical JPEG order.
	if ZigZag[0] != 0 || ZigZag[1] != 1 || ZigZag[2] != 8 || ZigZag[63] != 63 {
		t.Error("zig-zag order does not match the JPEG scan")
	}
}

func TestScaleQuantBounds(t *testing.T) {
	for _, q := range []int{-5, 1, 10, 50, 75, 100, 200} {
		m := ScaleQuant(&LumaQuant, q)
		for i, v := range m {
			if v < 1 || v > 255 {
				t.Fatalf("quality %d entry %d = %d out of [1,255]", q, i, v)
			}
		}
	}
}

func TestScaleQuantMonotone(t *testing.T) {
	lo := ScaleQuant(&LumaQuant, 20)
	hi := ScaleQuant(&LumaQuant, 90)
	for i := range lo {
		if hi[i] > lo[i] {
			t.Fatalf("entry %d: quality 90 divisor %d > quality 20 divisor %d", i, hi[i], lo[i])
		}
	}
}

func TestQuantiseDequantiseError(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	quant := ScaleQuant(&LumaQuant, 90)
	src := randomBlock(rng)
	var freq, rec Block
	var lv IntBlock
	Forward(src, &freq)
	Quantise(&freq, &quant, &lv)
	Dequantise(&lv, &quant, &rec)
	for i := range freq {
		maxErr := float64(quant[i]) / 2
		if math.Abs(freq[i]-rec[i]) > maxErr+1e-9 {
			t.Fatalf("coefficient %d: error %g exceeds half-step %g",
				i, math.Abs(freq[i]-rec[i]), maxErr)
		}
	}
}

// Property: quantisation error of the DC term never exceeds half the DC
// quantiser step, so block means survive compression to within a bound.
func TestPropertyDCQuantisationBound(t *testing.T) {
	f := func(seed int64, quality uint8) bool {
		q := int(quality)%100 + 1
		rng := rand.New(rand.NewSource(seed))
		quant := ScaleQuant(&LumaQuant, q)
		src := randomBlock(rng)
		var freq, rec Block
		var lv IntBlock
		Forward(src, &freq)
		Quantise(&freq, &quant, &lv)
		Dequantise(&lv, &quant, &rec)
		return math.Abs(freq[0]-rec[0]) <= float64(quant[0])/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkForward(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	src := randomBlock(rng)
	var dst Block
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Forward(src, &dst)
	}
}

func BenchmarkInverse(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	src := randomBlock(rng)
	var dst Block
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Inverse(src, &dst)
	}
}

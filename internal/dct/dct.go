// Package dct implements the 8×8 type-II Discrete Cosine Transform and its
// inverse, together with the zig-zag scan and quantisation matrices used by
// the compressed-video codec. The DC coefficient (index 0 of a transformed
// block) is 8× the block mean, which is the quantity the copy-detection
// feature extractor consumes.
package dct

import "math"

// BlockSize is the side length of a transform block.
const BlockSize = 8

// Block holds an 8×8 tile of samples (spatial domain) or coefficients
// (frequency domain) in row-major order.
type Block [BlockSize * BlockSize]float64

// IntBlock holds quantised coefficients in row-major order.
type IntBlock [BlockSize * BlockSize]int32

// cosTable[u][x] = cos((2x+1)uπ/16) scaled by the orthonormal factor c(u).
var cosTable [BlockSize][BlockSize]float64

func init() {
	for u := 0; u < BlockSize; u++ {
		c := math.Sqrt(2.0 / BlockSize)
		if u == 0 {
			c = math.Sqrt(1.0 / BlockSize)
		}
		for x := 0; x < BlockSize; x++ {
			cosTable[u][x] = c * math.Cos(float64(2*x+1)*float64(u)*math.Pi/(2*BlockSize))
		}
	}
}

// Forward computes the 2-D orthonormal DCT-II of src into dst.
// dst[0] (the DC term) equals 8 × mean(src).
func Forward(src, dst *Block) {
	// Separable transform: rows then columns.
	var tmp Block
	for y := 0; y < BlockSize; y++ {
		row := y * BlockSize
		for u := 0; u < BlockSize; u++ {
			var s float64
			for x := 0; x < BlockSize; x++ {
				s += src[row+x] * cosTable[u][x]
			}
			tmp[row+u] = s
		}
	}
	for u := 0; u < BlockSize; u++ {
		for v := 0; v < BlockSize; v++ {
			var s float64
			for y := 0; y < BlockSize; y++ {
				s += tmp[y*BlockSize+u] * cosTable[v][y]
			}
			dst[v*BlockSize+u] = s
		}
	}
}

// Inverse computes the 2-D inverse DCT of src into dst.
func Inverse(src, dst *Block) {
	var tmp Block
	for v := 0; v < BlockSize; v++ {
		row := v * BlockSize
		for x := 0; x < BlockSize; x++ {
			var s float64
			for u := 0; u < BlockSize; u++ {
				s += src[row+u] * cosTable[u][x]
			}
			tmp[row+x] = s
		}
	}
	for x := 0; x < BlockSize; x++ {
		for y := 0; y < BlockSize; y++ {
			var s float64
			for v := 0; v < BlockSize; v++ {
				s += tmp[v*BlockSize+x] * cosTable[v][y]
			}
			dst[y*BlockSize+x] = s
		}
	}
}

// ZigZag maps zig-zag scan position → row-major block index, following the
// JPEG/MPEG scan order so low-frequency coefficients come first.
var ZigZag = [BlockSize * BlockSize]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// InvZigZag maps row-major block index → zig-zag scan position.
var InvZigZag [BlockSize * BlockSize]int

func init() {
	for i, v := range ZigZag {
		InvZigZag[v] = i
	}
}

// LumaQuant is the base luminance quantisation matrix (JPEG Annex K),
// scaled at runtime by the codec's quality parameter.
var LumaQuant = IntBlock{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// ChromaQuant is the base chrominance quantisation matrix (JPEG Annex K).
var ChromaQuant = IntBlock{
	17, 18, 24, 47, 99, 99, 99, 99,
	18, 21, 26, 66, 99, 99, 99, 99,
	24, 26, 56, 99, 99, 99, 99, 99,
	47, 66, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
}

// ScaleQuant derives a quantisation matrix for quality q in [1,100] from a
// base matrix, using the libjpeg scaling convention. Higher quality means
// smaller divisors (finer quantisation). Every entry is clamped to [1, 255].
func ScaleQuant(base *IntBlock, quality int) IntBlock {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	var scale int32
	if quality < 50 {
		scale = int32(5000 / quality)
	} else {
		scale = int32(200 - 2*quality)
	}
	var out IntBlock
	for i, v := range base {
		q := (v*scale + 50) / 100
		if q < 1 {
			q = 1
		}
		if q > 255 {
			q = 255
		}
		out[i] = q
	}
	return out
}

// Quantise divides DCT coefficients by the quantisation matrix with
// round-to-nearest, producing integer levels.
func Quantise(coeffs *Block, quant *IntBlock, out *IntBlock) {
	for i := range coeffs {
		q := float64(quant[i])
		out[i] = int32(math.Round(coeffs[i] / q))
	}
}

// Dequantise multiplies quantised levels back into coefficient space.
func Dequantise(levels *IntBlock, quant *IntBlock, out *Block) {
	for i := range levels {
		out[i] = float64(levels[i]) * float64(quant[i])
	}
}

// DC returns the DC coefficient of a transformed block, i.e. 8× block mean.
func DC(b *Block) float64 { return b[0] }

// BlockMean returns the arithmetic mean of a spatial-domain block.
func BlockMean(b *Block) float64 {
	var s float64
	for _, v := range b {
		s += v
	}
	return s / float64(len(b))
}

package bitio

import "testing"

// FuzzReader: arbitrary bytes must never panic the bit reader across its
// decode operations.
func FuzzReader(f *testing.F) {
	f.Add([]byte{0xFF, 0x00, 0xA5})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		for i := 0; i < 256; i++ {
			switch i % 4 {
			case 0:
				if _, err := r.ReadUE(); err != nil {
					return
				}
			case 1:
				if _, err := r.ReadSE(); err != nil {
					return
				}
			case 2:
				if _, err := r.ReadBits(uint(i % 33)); err != nil {
					return
				}
			default:
				if err := r.SkipBits(uint(i % 17)); err != nil {
					return
				}
			}
		}
	})
}

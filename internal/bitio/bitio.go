// Package bitio provides bit-granular writers and readers used by the
// compressed-video codec. It supports fixed-width bit fields, unsigned and
// signed Exp-Golomb codes (the variable-length codes used for DCT
// coefficients and headers), and byte alignment.
package bitio

import (
	"errors"
	"fmt"
	"io"
)

// ErrUnexpectedEOF is returned when a read runs past the end of the input.
var ErrUnexpectedEOF = errors.New("bitio: unexpected end of bitstream")

// Writer accumulates bits most-significant-first into an in-memory buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  uint8 // partially filled byte
	nCur uint8 // number of bits used in cur (0..7)
}

// NewWriter returns a Writer with capacity preallocated for sizeHint bytes.
func NewWriter(sizeHint int) *Writer {
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// WriteBit appends a single bit (0 or 1).
func (w *Writer) WriteBit(b uint) {
	w.cur = w.cur<<1 | uint8(b&1)
	w.nCur++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

// WriteBits appends the low n bits of v, most-significant bit first.
// n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 64 {
		panic(fmt.Sprintf("bitio: WriteBits width %d out of range", n))
	}
	for i := int(n) - 1; i >= 0; i-- {
		w.WriteBit(uint(v >> uint(i)))
	}
}

// WriteUE appends v using unsigned Exp-Golomb coding: z zero bits followed
// by the (z+1)-bit binary representation of v+1, where z = floor(log2(v+1)).
func (w *Writer) WriteUE(v uint64) {
	x := v + 1
	n := bitLen(x)
	for i := uint(1); i < n; i++ {
		w.WriteBit(0)
	}
	w.WriteBits(x, n)
}

// WriteSE appends v using signed Exp-Golomb coding with the H.264 mapping:
// 0→0, 1→1, -1→2, 2→3, -2→4, ...
func (w *Writer) WriteSE(v int64) {
	var u uint64
	if v > 0 {
		u = uint64(v)*2 - 1
	} else {
		u = uint64(-v) * 2
	}
	w.WriteUE(u)
}

// Align pads with zero bits to the next byte boundary.
func (w *Writer) Align() {
	for w.nCur != 0 {
		w.WriteBit(0)
	}
}

// Len reports the number of whole bytes written so far (excluding any
// partially filled byte).
func (w *Writer) Len() int { return len(w.buf) }

// BitLen reports the total number of bits written so far.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.nCur) }

// Bytes byte-aligns the stream and returns the underlying buffer. The
// returned slice is owned by the Writer until Reset is called.
func (w *Writer) Bytes() []byte {
	w.Align()
	return w.buf
}

// WriteBytes byte-aligns the stream and appends p verbatim — the fast path
// for bulk payloads (sketch words, signature planes) inside a bit stream.
func (w *Writer) WriteBytes(p []byte) {
	w.Align()
	w.buf = append(w.buf, p...)
}

// Reset discards all written data, retaining the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.nCur = 0, 0
}

// WriteTo byte-aligns the stream and writes the buffer to dst.
func (w *Writer) WriteTo(dst io.Writer) (int64, error) {
	n, err := dst.Write(w.Bytes())
	return int64(n), err
}

// Reader consumes bits most-significant-first from a byte slice.
type Reader struct {
	data []byte
	pos  int   // next byte index
	cur  uint8 // current byte being consumed
	nCur uint8 // bits remaining in cur (0..8)
}

// NewReader returns a Reader over data. The Reader does not copy data.
func NewReader(data []byte) *Reader {
	return &Reader{data: data}
}

// ReadBit returns the next bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.nCur == 0 {
		if r.pos >= len(r.data) {
			return 0, ErrUnexpectedEOF
		}
		r.cur = r.data[r.pos]
		r.pos++
		r.nCur = 8
	}
	r.nCur--
	return uint(r.cur>>r.nCur) & 1, nil
}

// ReadBits returns the next n bits as an unsigned integer (MSB first).
// n must be in [0, 64].
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		return 0, fmt.Errorf("bitio: ReadBits width %d out of range", n)
	}
	var v uint64
	for i := uint(0); i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// ReadUE decodes an unsigned Exp-Golomb code.
func (r *Reader) ReadUE() (uint64, error) {
	var zeros uint
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
		if zeros > 63 {
			return 0, errors.New("bitio: malformed Exp-Golomb code")
		}
	}
	rest, err := r.ReadBits(zeros)
	if err != nil {
		return 0, err
	}
	return (1<<zeros | rest) - 1, nil
}

// ReadSE decodes a signed Exp-Golomb code (inverse of WriteSE).
func (r *Reader) ReadSE() (int64, error) {
	u, err := r.ReadUE()
	if err != nil {
		return 0, err
	}
	if u%2 == 1 {
		return int64(u/2 + 1), nil
	}
	return -int64(u / 2), nil
}

// Align discards bits up to the next byte boundary.
func (r *Reader) Align() { r.nCur = 0 }

// SkipBits discards the next n bits.
func (r *Reader) SkipBits(n uint) error {
	// Fast-forward whole bytes once the current partial byte is drained.
	for n > 0 && r.nCur > 0 {
		if _, err := r.ReadBit(); err != nil {
			return err
		}
		n--
	}
	whole := int(n / 8)
	if r.pos+whole > len(r.data) {
		r.pos = len(r.data)
		return ErrUnexpectedEOF
	}
	r.pos += whole
	n %= 8
	for ; n > 0; n-- {
		if _, err := r.ReadBit(); err != nil {
			return err
		}
	}
	return nil
}

// ReadBytes aligns to a byte boundary and returns the next n bytes. The
// returned slice aliases the Reader's input; callers that retain it must
// copy. Inverse of Writer.WriteBytes.
func (r *Reader) ReadBytes(n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("bitio: ReadBytes count %d negative", n)
	}
	r.Align()
	if r.pos+n > len(r.data) {
		r.pos = len(r.data)
		return nil, ErrUnexpectedEOF
	}
	p := r.data[r.pos : r.pos+n]
	r.pos += n
	return p, nil
}

// SkipBytes discards n whole bytes after aligning to a byte boundary.
func (r *Reader) SkipBytes(n int) error {
	r.Align()
	if r.pos+n > len(r.data) {
		r.pos = len(r.data)
		return ErrUnexpectedEOF
	}
	r.pos += n
	return nil
}

// ByteOffset reports the index of the next unread byte (after alignment).
func (r *Reader) ByteOffset() int { return r.pos }

// Remaining reports the number of unread bits.
func (r *Reader) Remaining() int {
	return (len(r.data)-r.pos)*8 + int(r.nCur)
}

// bitLen returns the number of bits needed to represent x (x >= 1).
func bitLen(x uint64) uint {
	var n uint
	for x > 0 {
		n++
		x >>= 1
	}
	return n
}

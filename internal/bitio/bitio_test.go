package bitio

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBits(t *testing.T) {
	w := NewWriter(16)
	w.WriteBits(0b101, 3)
	w.WriteBits(0xFF, 8)
	w.WriteBits(0, 5)
	w.WriteBits(0xDEADBEEF, 32)

	r := NewReader(w.Bytes())
	for _, tc := range []struct {
		n    uint
		want uint64
	}{{3, 0b101}, {8, 0xFF}, {5, 0}, {32, 0xDEADBEEF}} {
		got, err := r.ReadBits(tc.n)
		if err != nil {
			t.Fatalf("ReadBits(%d): %v", tc.n, err)
		}
		if got != tc.want {
			t.Errorf("ReadBits(%d) = %#x, want %#x", tc.n, got, tc.want)
		}
	}
}

func TestWriteBitSequence(t *testing.T) {
	w := NewWriter(4)
	seq := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range seq {
		w.WriteBit(b)
	}
	if w.BitLen() != len(seq) {
		t.Fatalf("BitLen = %d, want %d", w.BitLen(), len(seq))
	}
	r := NewReader(w.Bytes())
	for i, want := range seq {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != want {
			t.Errorf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestUERoundTrip(t *testing.T) {
	w := NewWriter(64)
	vals := []uint64{0, 1, 2, 3, 7, 8, 100, 1023, 1024, 1 << 20, 1<<40 + 17}
	for _, v := range vals {
		w.WriteUE(v)
	}
	r := NewReader(w.Bytes())
	for _, want := range vals {
		got, err := r.ReadUE()
		if err != nil {
			t.Fatalf("ReadUE: %v", err)
		}
		if got != want {
			t.Errorf("ReadUE = %d, want %d", got, want)
		}
	}
}

func TestSERoundTrip(t *testing.T) {
	w := NewWriter(64)
	vals := []int64{0, 1, -1, 2, -2, 17, -17, 1 << 30, -(1 << 30)}
	for _, v := range vals {
		w.WriteSE(v)
	}
	r := NewReader(w.Bytes())
	for _, want := range vals {
		got, err := r.ReadSE()
		if err != nil {
			t.Fatalf("ReadSE: %v", err)
		}
		if got != want {
			t.Errorf("ReadSE = %d, want %d", got, want)
		}
	}
}

func TestUEKnownEncodings(t *testing.T) {
	// Standard Exp-Golomb codewords: 0→"1", 1→"010", 2→"011", 3→"00100".
	for _, tc := range []struct {
		v    uint64
		bits string
	}{
		{0, "1"},
		{1, "010"},
		{2, "011"},
		{3, "00100"},
		{4, "00101"},
		{5, "00110"},
		{6, "00111"},
		{7, "0001000"},
	} {
		w := NewWriter(4)
		w.WriteUE(tc.v)
		got := bitString(w)
		if got != tc.bits {
			t.Errorf("WriteUE(%d) = %q, want %q", tc.v, got, tc.bits)
		}
	}
}

func bitString(w *Writer) string {
	n := w.BitLen()
	r := NewReader(w.Bytes())
	var s []byte
	for i := 0; i < n; i++ {
		b, _ := r.ReadBit()
		s = append(s, byte('0'+b))
	}
	return string(s)
}

func TestAlign(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(1, 3)
	w.Align()
	if w.BitLen() != 8 {
		t.Fatalf("BitLen after Align = %d, want 8", w.BitLen())
	}
	w.WriteBits(0xAB, 8)
	r := NewReader(w.Bytes())
	if _, err := r.ReadBits(3); err != nil {
		t.Fatal(err)
	}
	r.Align()
	got, err := r.ReadBits(8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xAB {
		t.Errorf("after Align read %#x, want 0xAB", got)
	}
}

func TestSkipBits(t *testing.T) {
	w := NewWriter(16)
	w.WriteBits(0xFFFF, 16)
	w.WriteBits(0x3, 2)
	w.WriteBits(0x5A, 8)
	r := NewReader(w.Bytes())
	if err := r.SkipBits(18); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadBits(8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x5A {
		t.Errorf("after SkipBits read %#x, want 0x5A", got)
	}
}

func TestSkipBytes(t *testing.T) {
	r := NewReader([]byte{1, 2, 3, 4})
	if err := r.SkipBytes(2); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadBits(8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("after SkipBytes read %d, want 3", got)
	}
	if err := r.SkipBytes(5); err != ErrUnexpectedEOF {
		t.Errorf("SkipBytes past end = %v, want ErrUnexpectedEOF", err)
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrUnexpectedEOF {
		t.Errorf("ReadBit past end = %v, want ErrUnexpectedEOF", err)
	}
	if _, err := r.ReadUE(); err == nil {
		t.Error("ReadUE past end succeeded, want error")
	}
}

func TestRemaining(t *testing.T) {
	r := NewReader([]byte{0, 0, 0})
	if r.Remaining() != 24 {
		t.Fatalf("Remaining = %d, want 24", r.Remaining())
	}
	r.ReadBits(5)
	if r.Remaining() != 19 {
		t.Fatalf("Remaining = %d, want 19", r.Remaining())
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0xFF, 8)
	w.Reset()
	if w.BitLen() != 0 {
		t.Fatalf("BitLen after Reset = %d", w.BitLen())
	}
	w.WriteBits(0x12, 8)
	if !bytes.Equal(w.Bytes(), []byte{0x12}) {
		t.Errorf("Bytes after Reset = %v", w.Bytes())
	}
}

func TestWriteTo(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0xABCD, 16)
	var buf bytes.Buffer
	n, err := w.WriteTo(&buf)
	if err != nil || n != 2 {
		t.Fatalf("WriteTo = (%d, %v), want (2, nil)", n, err)
	}
	if !bytes.Equal(buf.Bytes(), []byte{0xAB, 0xCD}) {
		t.Errorf("WriteTo produced %v", buf.Bytes())
	}
}

// Property: any sequence of UE/SE/fixed-width writes reads back identically.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		type op struct {
			kind int
			u    uint64
			s    int64
			w    uint
		}
		ops := make([]op, int(n)%64+1)
		wtr := NewWriter(256)
		for i := range ops {
			switch rng.Intn(3) {
			case 0:
				ops[i] = op{kind: 0, u: uint64(rng.Int63n(1 << 32))}
				wtr.WriteUE(ops[i].u)
			case 1:
				ops[i] = op{kind: 1, s: rng.Int63n(1<<31) - 1<<30}
				wtr.WriteSE(ops[i].s)
			default:
				width := uint(rng.Intn(33) + 1)
				ops[i] = op{kind: 2, u: uint64(rng.Int63()) & (1<<width - 1), w: width}
				wtr.WriteBits(ops[i].u, width)
			}
		}
		rdr := NewReader(wtr.Bytes())
		for _, o := range ops {
			switch o.kind {
			case 0:
				v, err := rdr.ReadUE()
				if err != nil || v != o.u {
					return false
				}
			case 1:
				v, err := rdr.ReadSE()
				if err != nil || v != o.s {
					return false
				}
			default:
				v, err := rdr.ReadBits(o.w)
				if err != nil || v != o.u {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

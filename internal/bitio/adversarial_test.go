package bitio

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestUEAdversarialValues round-trips the Exp-Golomb boundaries: every
// power-of-two edge (where the prefix length changes) up to the largest
// encodable value, 2^64-2 (v+1 must fit in 64 bits).
func TestUEAdversarialValues(t *testing.T) {
	var vals []uint64
	for i := uint(1); i < 64; i++ {
		vals = append(vals, 1<<i-2, 1<<i-1, 1<<i)
	}
	vals = append(vals, 1<<64-2) // maximum encodable
	w := NewWriter(1024)
	for _, v := range vals {
		w.WriteUE(v)
	}
	r := NewReader(w.Bytes())
	for _, want := range vals {
		got, err := r.ReadUE()
		if err != nil {
			t.Fatalf("ReadUE(%d): %v", want, err)
		}
		if got != want {
			t.Errorf("UE round trip = %d, want %d", got, want)
		}
	}
}

// TestSEAdversarialValues round-trips signed boundaries including the
// extremes of the H.264 mapping that still fit the UE code space.
func TestSEAdversarialValues(t *testing.T) {
	vals := []int64{0, 1, -1, 1<<62 - 1, -(1<<62 - 1), 1 << 62, -(1 << 62)}
	w := NewWriter(256)
	for _, v := range vals {
		w.WriteSE(v)
	}
	r := NewReader(w.Bytes())
	for _, want := range vals {
		got, err := r.ReadSE()
		if err != nil {
			t.Fatalf("ReadSE(%d): %v", want, err)
		}
		if got != want {
			t.Errorf("SE round trip = %d, want %d", got, want)
		}
	}
}

// TestWriteBitsSingleBitWords: a full-width word with exactly one bit set,
// for every bit position — catches shift-off-by-one in either direction.
func TestWriteBitsSingleBitWords(t *testing.T) {
	w := NewWriter(1024)
	for i := uint(0); i < 64; i++ {
		w.WriteBits(1<<i, 64)
	}
	w.WriteBits(^uint64(0), 64) // all ones
	w.WriteBits(0, 64)          // all zeros
	r := NewReader(w.Bytes())
	for i := uint(0); i < 64; i++ {
		got, err := r.ReadBits(64)
		if err != nil {
			t.Fatal(err)
		}
		if got != 1<<i {
			t.Errorf("bit %d: read %#x, want %#x", i, got, uint64(1)<<i)
		}
	}
	for _, want := range []uint64{^uint64(0), 0} {
		got, err := r.ReadBits(64)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("read %#x, want %#x", got, want)
		}
	}
}

// TestWriteBytesRoundTrip: bulk payloads interleave with unaligned bit
// writes; both sides must align identically.
func TestWriteBytesRoundTrip(t *testing.T) {
	payload := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0xFF}
	w := NewWriter(64)
	w.WriteBits(0b101, 3) // leave the stream unaligned
	w.WriteBytes(payload)
	w.WriteUE(42)

	r := NewReader(w.Bytes())
	if v, err := r.ReadBits(3); err != nil || v != 0b101 {
		t.Fatalf("prefix = (%#x, %v)", v, err)
	}
	got, err := r.ReadBytes(len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("ReadBytes = %x, want %x", got, payload)
	}
	if v, err := r.ReadUE(); err != nil || v != 42 {
		t.Errorf("suffix UE = (%d, %v), want 42", v, err)
	}
}

// TestWriteBytesEmpty: a zero-length bulk write must not force alignment
// asymmetries between writer and reader (the checkpoint codec depends on
// empty sections being true no-ops).
func TestWriteBytesEmpty(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(1, 1)
	before := w.BitLen()
	// Align happens on WriteBytes even when empty; the reader mirrors it.
	w.WriteBytes(nil)
	if w.BitLen() != before && w.BitLen() != 8 {
		t.Fatalf("BitLen after empty WriteBytes = %d", w.BitLen())
	}
	w.WriteBits(1, 1)
	r := NewReader(w.Bytes())
	if v, _ := r.ReadBits(1); v != 1 {
		t.Fatal("prefix bit lost")
	}
	if _, err := r.ReadBytes(0); err != nil {
		t.Fatal(err)
	}
	if v, err := r.ReadBits(1); err != nil || v != 1 {
		t.Errorf("suffix bit = (%d, %v), want 1", v, err)
	}
}

// TestReadBytesPastEnd: over-long bulk reads fail cleanly, not by slicing
// out of bounds.
func TestReadBytesPastEnd(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	if _, err := r.ReadBytes(4); err != ErrUnexpectedEOF {
		t.Errorf("ReadBytes(4) of 3 = %v, want ErrUnexpectedEOF", err)
	}
	if _, err := r.ReadBytes(-1); err == nil {
		t.Error("negative ReadBytes succeeded")
	}
}

// Property: WriteBytes payloads of any content and length survive a round
// trip sandwiched between arbitrary-width bit fields.
func TestPropertyWriteBytes(t *testing.T) {
	f := func(prefix uint8, payload []byte, suffix uint16) bool {
		pw := uint(prefix%7 + 1)
		w := NewWriter(len(payload) + 8)
		w.WriteBits(uint64(prefix), pw)
		w.WriteBytes(payload)
		w.WriteBits(uint64(suffix), 16)
		r := NewReader(w.Bytes())
		p, err := r.ReadBits(pw)
		if err != nil || p != uint64(prefix)&(1<<pw-1) {
			return false
		}
		got, err := r.ReadBytes(len(payload))
		if err != nil || !bytes.Equal(got, payload) {
			return false
		}
		s, err := r.ReadBits(16)
		return err == nil && s == uint64(suffix)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

package qindex

import (
	"math/rand"
	"testing"

	"vdsms/internal/bitsig"
	"vdsms/internal/minhash"
)

// makeQueries builds n queries over random id sets with the given family.
func makeQueries(t testing.TB, fam *minhash.Family, n int, seed int64) []Query {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	qs := make([]Query, n)
	for i := range qs {
		size := rng.Intn(30) + 10
		ids := make([]uint64, size)
		for j := range ids {
			ids[j] = uint64(rng.Intn(500))
		}
		qs[i] = Query{ID: i + 1, Length: (rng.Intn(20) + 5) * 30, Sketch: fam.SketchSet(ids)}
	}
	return qs
}

// verifyStructure checks every invariant of the Hash-Query array: rows
// sorted, links bijective, down-walks reproduce the original sketches.
func verifyStructure(t *testing.T, x *Index, queries []Query) {
	t.Helper()
	for i, row := range x.rows {
		if len(row) != x.Len() {
			t.Fatalf("row %d has %d entries, index has %d queries", i, len(row), x.Len())
		}
		for j := 1; j < len(row); j++ {
			if row[j-1].value > row[j].value {
				t.Fatalf("row %d not sorted at %d", i, j)
			}
		}
	}
	for _, q := range queries {
		got, ok := x.SketchOf(q.ID)
		if !ok {
			t.Fatalf("query %d missing from index", q.ID)
		}
		if minhash.Similarity(got, q.Sketch) != 1 {
			t.Fatalf("down-walk of query %d does not reproduce its sketch", q.ID)
		}
		if l, _ := x.LengthOf(q.ID); l != q.Length {
			t.Fatalf("query %d length %d, want %d", q.ID, l, q.Length)
		}
	}
	// Up links invert down links.
	for i := 0; i < x.k-1; i++ {
		for j, e := range x.rows[i] {
			if e.down < 0 || int(e.down) >= len(x.rows[i+1]) {
				t.Fatalf("row %d col %d: down=%d out of range", i, j, e.down)
			}
			if x.rows[i+1][e.down].up != int32(j) {
				t.Fatalf("row %d col %d: up/down links not inverse", i, j)
			}
		}
	}
}

func TestBuildAndStructure(t *testing.T) {
	fam, _ := minhash.NewFamily(32, 1)
	queries := makeQueries(t, fam, 20, 2)
	x, err := Build(queries)
	if err != nil {
		t.Fatal(err)
	}
	if x.K() != 32 || x.Len() != 20 {
		t.Fatalf("K=%d Len=%d", x.K(), x.Len())
	}
	verifyStructure(t, x, queries)
}

func TestBuildValidation(t *testing.T) {
	fam, _ := minhash.NewFamily(8, 1)
	s := fam.SketchSet([]uint64{1})
	if _, err := Build(nil); err == nil {
		t.Error("empty build accepted")
	}
	if _, err := Build([]Query{{ID: 1, Length: 10, Sketch: s}, {ID: 1, Length: 10, Sketch: s}}); err == nil {
		t.Error("duplicate ids accepted")
	}
	if _, err := Build([]Query{{ID: 1, Length: 0, Sketch: s}}); err == nil {
		t.Error("zero length accepted")
	}
	short := make(minhash.Sketch, 4)
	if _, err := Build([]Query{{ID: 1, Length: 10, Sketch: s}, {ID: 2, Length: 10, Sketch: short}}); err == nil {
		t.Error("mismatched K accepted")
	}
}

func TestQueryIDs(t *testing.T) {
	fam, _ := minhash.NewFamily(16, 1)
	queries := makeQueries(t, fam, 5, 3)
	x, _ := Build(queries)
	ids := x.QueryIDs()
	if len(ids) != 5 {
		t.Fatalf("QueryIDs length %d", len(ids))
	}
	seen := make(map[int]bool)
	for _, id := range ids {
		seen[id] = true
	}
	for _, q := range queries {
		if !seen[q.ID] {
			t.Errorf("query %d missing from QueryIDs", q.ID)
		}
	}
}

func TestAddRemoveOnline(t *testing.T) {
	fam, _ := minhash.NewFamily(24, 4)
	queries := makeQueries(t, fam, 10, 5)
	x, err := Build(queries[:6])
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries[6:] {
		if err := x.Add(q); err != nil {
			t.Fatal(err)
		}
	}
	verifyStructure(t, x, queries)

	// Remove a few and re-verify.
	if err := x.Remove(queries[2].ID); err != nil {
		t.Fatal(err)
	}
	if err := x.Remove(queries[8].ID); err != nil {
		t.Fatal(err)
	}
	remaining := append(append([]Query{}, queries[:2]...), queries[3:8]...)
	remaining = append(remaining, queries[9])
	verifyStructure(t, x, remaining)
	if _, ok := x.SketchOf(queries[2].ID); ok {
		t.Error("removed query still resolvable")
	}

	// Error paths.
	if err := x.Remove(queries[2].ID); err == nil {
		t.Error("double remove succeeded")
	}
	if err := x.Add(queries[0]); err == nil {
		t.Error("duplicate add succeeded")
	}
}

func TestAddRemoveFuzz(t *testing.T) {
	fam, _ := minhash.NewFamily(16, 6)
	all := makeQueries(t, fam, 30, 7)
	x, err := Build(all[:5])
	if err != nil {
		t.Fatal(err)
	}
	inIndex := map[int]Query{}
	for _, q := range all[:5] {
		inIndex[q.ID] = q
	}
	rng := rand.New(rand.NewSource(8))
	nextAdd := 5
	for step := 0; step < 60; step++ {
		if (rng.Intn(2) == 0 && nextAdd < len(all)) || len(inIndex) <= 1 {
			q := all[nextAdd]
			nextAdd++
			if nextAdd == len(all) {
				nextAdd = 0 // recycle removed ones
			}
			if _, dup := inIndex[q.ID]; dup {
				continue
			}
			if err := x.Add(q); err != nil {
				t.Fatalf("step %d add: %v", step, err)
			}
			inIndex[q.ID] = q
		} else {
			var victim int
			for id := range inIndex {
				victim = id
				break
			}
			if err := x.Remove(victim); err != nil {
				t.Fatalf("step %d remove: %v", step, err)
			}
			delete(inIndex, victim)
		}
		var cur []Query
		for _, q := range inIndex {
			cur = append(cur, q)
		}
		verifyStructure(t, x, cur)
	}
}

// probeMatches compares index probing to the brute-force scan: surviving
// related queries must carry identical signatures.
func TestProbeMatchesScan(t *testing.T) {
	fam, _ := minhash.NewFamily(64, 9)
	queries := makeQueries(t, fam, 25, 10)
	x, err := Build(queries)
	if err != nil {
		t.Fatal(err)
	}
	scan := &Scan{Queries: queries}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		// Windows share ids with queries so some relations exist.
		ids := make([]uint64, rng.Intn(20)+5)
		for j := range ids {
			ids[j] = uint64(rng.Intn(500))
		}
		sk := fam.SketchSet(ids)
		delta := 0.5 + 0.4*rng.Float64()

		got := x.Probe(sk, delta)
		want := scan.Probe(sk, delta)

		gotByID := map[int]*bitsig.Signature{}
		for _, r := range got.Related {
			gotByID[r.QID] = r.Sig
		}
		wantByID := map[int]*bitsig.Signature{}
		for _, r := range want.Related {
			wantByID[r.QID] = r.Sig
		}
		if len(gotByID) != len(wantByID) {
			t.Fatalf("trial %d δ=%.2f: index found %d related, scan %d",
				trial, delta, len(gotByID), len(wantByID))
		}
		for id, wsig := range wantByID {
			gsig, ok := gotByID[id]
			if !ok {
				t.Fatalf("trial %d: query %d missing from index probe", trial, id)
			}
			for r := 0; r < 64; r++ {
				if gsig.At(r) != wsig.At(r) {
					t.Fatalf("trial %d query %d position %d: index %v, scan %v",
						trial, id, r, gsig.At(r), wsig.At(r))
				}
			}
		}
	}
}

func TestProbeSelfQueryIsAllEqual(t *testing.T) {
	fam, _ := minhash.NewFamily(32, 12)
	queries := makeQueries(t, fam, 10, 13)
	x, _ := Build(queries)
	out := x.Probe(queries[3].Sketch, 0.7)
	var found bool
	for _, r := range out.Related {
		if r.QID == queries[3].ID {
			found = true
			if r.Sig.Similarity() != 1 {
				t.Errorf("self-probe similarity %g, want 1", r.Sig.Similarity())
			}
			if r.Length != queries[3].Length {
				t.Errorf("probe length %d, want %d", r.Length, queries[3].Length)
			}
		}
	}
	if !found {
		t.Fatal("query not related to its own sketch")
	}
}

func TestProbeUnrelatedWindow(t *testing.T) {
	fam, _ := minhash.NewFamily(32, 14)
	queries := makeQueries(t, fam, 10, 15)
	x, _ := Build(queries)
	// Ids far outside the queries' universe: no equal min-hash expected.
	sk := fam.SketchSet([]uint64{1 << 40, 1<<40 + 1, 1<<40 + 2})
	out := x.Probe(sk, 0.7)
	if len(out.Related) != 0 {
		t.Errorf("unrelated window produced %d related queries", len(out.Related))
	}
}

func TestProbePrunesHopelessQueries(t *testing.T) {
	// With a very high δ, queries sharing only one hash value must be
	// pruned early and reported in Pruned.
	fam, _ := minhash.NewFamily(64, 16)
	qIDs := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	wIDs := []uint64{8, 100, 101, 102, 103, 104, 105, 106}
	queries := []Query{{ID: 1, Length: 100, Sketch: fam.SketchSet(qIDs)}}
	x, _ := Build(queries)
	sk := fam.SketchSet(wIDs)
	out := x.Probe(sk, 0.95)
	if len(out.Related) != 0 {
		t.Errorf("barely-overlapping query not pruned at δ=0.95: %d related", len(out.Related))
	}
	// The query shares id 8 so it enters R_L, then dies by Lemma 2.
	if !out.Pruned[1] {
		t.Error("pruned query not reported in Pruned set")
	}
}

func TestScanOmitsNoEqualQueries(t *testing.T) {
	fam, _ := minhash.NewFamily(32, 17)
	queries := makeQueries(t, fam, 10, 18)
	s := &Scan{Queries: queries}
	sk := fam.SketchSet([]uint64{1 << 50})
	out := s.Probe(sk, 0.5)
	if len(out.Related) != 0 {
		t.Errorf("scan returned %d related queries for a disjoint window", len(out.Related))
	}
}

func TestProbeAfterOnlineUpdates(t *testing.T) {
	fam, _ := minhash.NewFamily(48, 19)
	queries := makeQueries(t, fam, 12, 20)
	x, _ := Build(queries[:8])
	for _, q := range queries[8:] {
		if err := x.Add(q); err != nil {
			t.Fatal(err)
		}
	}
	x.Remove(queries[0].ID)
	x.Remove(queries[5].ID)
	remaining := append(append([]Query{}, queries[1:5]...), queries[6:]...)
	scan := &Scan{Queries: remaining}
	sk := queries[9].Sketch
	got := x.Probe(sk, 0.6)
	want := scan.Probe(sk, 0.6)
	if len(got.Related) != len(want.Related) {
		t.Fatalf("after updates: index %d related, scan %d", len(got.Related), len(want.Related))
	}
}

func BenchmarkProbeIndex200Queries(b *testing.B) {
	fam, _ := minhash.NewFamily(800, 1)
	queries := makeQueries(b, fam, 200, 2)
	x, err := Build(queries)
	if err != nil {
		b.Fatal(err)
	}
	sk := queries[50].Sketch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Probe(sk, 0.7)
	}
}

func BenchmarkScan200Queries(b *testing.B) {
	fam, _ := minhash.NewFamily(800, 1)
	queries := makeQueries(b, fam, 200, 2)
	s := &Scan{Queries: queries}
	sk := queries[50].Sketch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Probe(sk, 0.7)
	}
}

package qindex

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"vdsms/internal/minhash"
)

// normalizeProbe reduces a ProbeOutput to a canonical, order-independent
// form: related entries sorted by query id with their signature planes,
// plus the sorted pruned id list. Two probes over the same logical query
// set must normalise identically even when the physical column layout
// (and hence discovery order) differs — e.g. a freshly built index versus
// one that converged to the same set through churn.
func normalizeProbe(po ProbeOutput) string {
	rel := append([]Result(nil), po.Related...)
	sort.Slice(rel, func(i, j int) bool { return rel[i].QID < rel[j].QID })
	var pruned []int
	for id := range po.Pruned {
		pruned = append(pruned, id)
	}
	sort.Ints(pruned)
	s := fmt.Sprintf("pruned=%v\n", pruned)
	for _, r := range rel {
		s += fmt.Sprintf("q%d len=%d lo=%x hi=%x\n", r.QID, r.Length, r.Sig.Lo, r.Sig.Hi)
	}
	return s
}

// TestAddRemoveErrors is the table-driven contract for online maintenance:
// duplicate subscriptions, unknown removals and malformed queries must
// surface as errors — never silent no-ops or panics — and must leave the
// index untouched.
func TestAddRemoveErrors(t *testing.T) {
	fam, _ := minhash.NewFamily(16, 30)
	base := makeQueries(t, fam, 4, 31)
	shortSketch := make(minhash.Sketch, 8)

	cases := []struct {
		name string
		op   func(x *Index) error
	}{
		{"add duplicate id", func(x *Index) error {
			return x.Add(Query{ID: base[0].ID, Length: 50, Sketch: fam.SketchSet([]uint64{9, 9, 9})})
		}},
		{"add mismatched K", func(x *Index) error {
			return x.Add(Query{ID: 99, Length: 50, Sketch: shortSketch})
		}},
		{"add zero length", func(x *Index) error {
			return x.Add(Query{ID: 99, Length: 0, Sketch: fam.SketchSet([]uint64{1})})
		}},
		{"add negative length", func(x *Index) error {
			return x.Add(Query{ID: 99, Length: -3, Sketch: fam.SketchSet([]uint64{1})})
		}},
		{"remove unknown id", func(x *Index) error {
			return x.Remove(1234)
		}},
		{"remove twice", func(x *Index) error {
			if err := x.Remove(base[1].ID); err != nil {
				return fmt.Errorf("first remove unexpectedly failed: %w", err)
			}
			return x.Remove(base[1].ID)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			x, err := Build(append([]Query(nil), base...))
			if err != nil {
				t.Fatal(err)
			}
			if err := tc.op(x); err == nil {
				t.Fatal("operation succeeded, want error")
			}
			// The failed operation must not have corrupted the structure.
			want := base
			if tc.name == "remove twice" {
				want = append(append([]Query(nil), base[:1]...), base[2:]...)
			}
			verifyStructure(t, x, want)
		})
	}
}

// TestProbeChurnEquivalence is the churn fuzz satellite: an index driven
// through interleaved Add/Remove sequences that end in a given query set
// must probe identically (normalised) to an index built from that set
// directly — across many random churn schedules and probe windows.
func TestProbeChurnEquivalence(t *testing.T) {
	fam, _ := minhash.NewFamily(48, 32)
	pool := makeQueries(t, fam, 24, 33)

	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))

		// The churned index: start somewhere, add/remove at random.
		churned, err := Build(append([]Query(nil), pool[:6]...))
		if err != nil {
			t.Fatal(err)
		}
		in := map[int]Query{}
		for _, q := range pool[:6] {
			in[q.ID] = q
		}
		for step := 0; step < 80; step++ {
			if rng.Intn(2) == 0 || len(in) <= 2 {
				q := pool[rng.Intn(len(pool))]
				if _, dup := in[q.ID]; dup {
					continue
				}
				if err := churned.Add(q); err != nil {
					t.Fatalf("trial %d step %d add: %v", trial, step, err)
				}
				in[q.ID] = q
			} else {
				ids := make([]int, 0, len(in))
				for id := range in {
					ids = append(ids, id)
				}
				sort.Ints(ids)
				victim := ids[rng.Intn(len(ids))]
				if err := churned.Remove(victim); err != nil {
					t.Fatalf("trial %d step %d remove: %v", trial, step, err)
				}
				delete(in, victim)
			}
		}

		// The reference index: built directly from the surviving set.
		var final []Query
		for _, q := range pool {
			if _, ok := in[q.ID]; ok {
				final = append(final, q)
			}
		}
		fresh, err := Build(final)
		if err != nil {
			t.Fatal(err)
		}

		// Probe both with windows overlapping the query universe.
		for w := 0; w < 15; w++ {
			ids := make([]uint64, rng.Intn(20)+5)
			for j := range ids {
				ids[j] = uint64(rng.Intn(500))
			}
			sk := fam.SketchSet(ids)
			delta := 0.4 + 0.5*rng.Float64()
			got := normalizeProbe(churned.Probe(sk, delta))
			want := normalizeProbe(fresh.Probe(sk, delta))
			if got != want {
				t.Fatalf("trial %d window %d δ=%.2f: churned index diverges from fresh build\nchurned:\n%s\nfresh:\n%s",
					trial, w, delta, got, want)
			}
		}
	}
}

// exactRowMask builds the ground-truth admission mask for a window sketch:
// bit i set iff some indexed query holds sk[i] at row i — what an ideal
// (false-positive-free) pre-filter would compute.
func exactRowMask(x *Index, sk minhash.Sketch) RowMask {
	m := NewRowMask(x.k)
	for i, v := range sk {
		row := x.rows[i]
		lo := sort.Search(len(row), func(j int) bool { return row[j].value >= v })
		if lo < len(row) && row[lo].value == v {
			m.Set(i)
		}
	}
	return m
}

// TestProbeShardMaskedMatchesUnmasked: under any sound mask (the exact one,
// or the exact one widened by random false positives) the masked probe must
// reproduce the unmasked output bit for bit, for every shard partition.
func TestProbeShardMaskedMatchesUnmasked(t *testing.T) {
	fam, _ := minhash.NewFamily(64, 34)
	queries := makeQueries(t, fam, 30, 35)
	x, err := Build(queries)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(36))
	for trial := 0; trial < 20; trial++ {
		ids := make([]uint64, rng.Intn(20)+5)
		for j := range ids {
			ids[j] = uint64(rng.Intn(500))
		}
		sk := fam.SketchSet(ids)
		delta := 0.4 + 0.5*rng.Float64()

		exact := exactRowMask(x, sk)
		widened := NewRowMask(x.k)
		copy(widened, exact)
		for i := 0; i < x.k; i++ {
			if rng.Intn(4) == 0 { // sprinkle false positives
				widened.Set(i)
			}
		}

		for _, nshards := range []int{1, 3, 8} {
			for shard := 0; shard < nshards; shard++ {
				want := x.ProbeShard(sk, delta, shard, nshards)
				for name, mask := range map[string]RowMask{"exact": exact, "widened": widened} {
					got := x.ProbeShardMasked(sk, delta, shard, nshards, mask)
					if normalizeProbe(got) != normalizeProbe(want) {
						t.Fatalf("trial %d shard %d/%d mask=%s: masked probe diverges", trial, shard, nshards, name)
					}
					if got.Comparisons != want.Comparisons {
						t.Fatalf("trial %d shard %d/%d mask=%s: Comparisons %d != %d — masking must only skip empty searches",
							trial, shard, nshards, name, got.Comparisons, want.Comparisons)
					}
				}
				// The exact mask by construction has no empty searches.
				if got := x.ProbeShardMasked(sk, delta, shard, nshards, exact); got.EmptySearches != 0 {
					t.Fatalf("trial %d: exact mask reports %d empty searches", trial, got.EmptySearches)
				}
			}
		}
	}
}

// TestRowMaskSemantics pins the nil-admits-all convention.
func TestRowMaskSemantics(t *testing.T) {
	var nilMask RowMask
	if !nilMask.Admits(0) || !nilMask.Admits(1000) {
		t.Error("nil mask must admit every row")
	}
	m := NewRowMask(130)
	for i := 0; i < 130; i++ {
		if m.Admits(i) {
			t.Fatalf("fresh mask admits row %d", i)
		}
	}
	m.Set(0)
	m.Set(64)
	m.Set(129)
	for i := 0; i < 130; i++ {
		want := i == 0 || i == 64 || i == 129
		if m.Admits(i) != want {
			t.Fatalf("row %d: Admits=%v want %v", i, m.Admits(i), want)
		}
	}
}

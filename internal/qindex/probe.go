package qindex

import (
	"sort"

	"vdsms/internal/bitsig"
	"vdsms/internal/minhash"
)

// Result is one element of the related query list R_L: the bit signature of
// a basic-window sketch against one query.
type Result struct {
	QID    int
	Length int // query length in frames
	Sig    *bitsig.Signature
}

// ProbeOutput is what a Prober returns for one basic window: the surviving
// related-query list plus the set of queries that entered R_L but were
// pruned by Lemma 2 (their prune cascades to candidate sequences that track
// them).
type ProbeOutput struct {
	Related []Result
	Pruned  map[int]bool
	// Comparisons counts elementary value comparisons performed, the CPU
	// proxy used by the cost experiments.
	Comparisons int
	// EmptySearches counts rows that a RowMask admitted but whose equal
	// search found no entry — the pre-filter tier's false positives. Zero
	// when probing unmasked. Every shard of one window reports the same
	// value (the emptiness of a row is shard-independent), so fold it from
	// a single shard, not by summing.
	EmptySearches int
}

// RowMask is the optional per-window row admission set a pre-filter tier
// (internal/prefilter) computes before the exact probe: bit i set means
// row i may hold the window's hash value sk[i] and must be searched; a
// clear bit rejects the row's equal search — and with it every candidate
// query at that hash position — in O(1). A nil RowMask admits every row.
//
// Masking is sound only when the mask is a superset of the truly-equal
// rows (no false negatives), which Bloom/fingerprint filters guarantee;
// the masked probe output is then identical to the unmasked one.
type RowMask []uint64

// NewRowMask returns an all-rejecting mask for k rows.
func NewRowMask(k int) RowMask { return make(RowMask, (k+63)/64) }

// Set admits row i.
func (m RowMask) Set(i int) { m[i/64] |= 1 << (i % 64) }

// Admits reports whether row i must be searched. A nil mask admits all.
func (m RowMask) Admits(i int) bool { return m == nil || m[i/64]&(1<<(i%64)) != 0 }

// Prober produces the related-query list of one basic-window sketch. Both
// the Hash-Query index and the linear scan (the "NoIndex" baseline of the
// Fig. 9 experiment) implement it.
type Prober interface {
	Probe(sk minhash.Sketch, delta float64) ProbeOutput
}

// ShardOf maps a query id to one of nshards evaluation shards. The mapping
// is the single source of truth for the parallel matching kernel: probes,
// candidate state and match ownership all partition queries with it, so a
// query's entire per-window life happens on one worker.
func ShardOf(qid, nshards int) int {
	if nshards <= 1 {
		return 0
	}
	s := qid % nshards
	if s < 0 {
		s += nshards
	}
	return s
}

// probeElem tracks one in-flight R_L element during the row sweep. The
// query's identity is captured during the discovery up-walk (which passes
// through row 0 anyway), and the Less count is maintained incrementally so
// the Lemma 2 check is O(1) per row instead of a signature popcount.
type probeElem struct {
	col    int32 // current column of this query in the row being processed
	qid    int
	length int
	less   int
	sig    *bitsig.Signature
}

// Probe implements the ProbeIndex algorithm (paper Figure 5) over every
// indexed query. It is ProbeShard with a single shard.
func (x *Index) Probe(sk minhash.Sketch, delta float64) ProbeOutput {
	return x.ProbeShard(sk, delta, 0, 1)
}

// ProbeShard probes the index for the queries of one shard (those with
// ShardOf(qid, nshards) == shard). Every query is owned by exactly one
// shard, so the union of the nshards outputs equals Probe's output, and the
// Comparisons counts sum to Probe's count — the probe work partitions
// instead of being replicated. Each row costs one extra binary search per
// shard, which is the price of running the shards concurrently over a
// single shared structure.
func (x *Index) ProbeShard(sk minhash.Sketch, delta float64, shard, nshards int) ProbeOutput {
	return x.ProbeShardMasked(sk, delta, shard, nshards, nil)
}

// ProbeShardMasked is ProbeShard under a pre-filter row mask: rows the
// mask rejects skip their equal search (step 3) entirely, which is the
// whole per-row cost for the overwhelmingly common case of a window value
// matching no query. Steps (1) and (2) — advancing and pruning already-
// discovered R_L elements — are unaffected, so the output is identical to
// the unmasked probe whenever the mask has no false negatives (which the
// prefilter tier guarantees). A nil mask searches every row.
//
// For each row it (1) advances every surviving owned R_L element via its
// down link and records the relation of the window's hash value to the
// query's, (2) prunes elements violating Lemma 2, and (3) binary-searches
// the row for values equal to sk[i], walking new owned matches' up links to
// reconstruct their bits for the earlier rows.
func (x *Index) ProbeShardMasked(sk minhash.Sketch, delta float64, shard, nshards int, mask RowMask) ProbeOutput {
	if len(sk) != x.k {
		panic("qindex: probe sketch K mismatch")
	}
	out := ProbeOutput{Pruned: make(map[int]bool)}
	// maxLess is the Lemma 2 bound: prune once less > K(1−δ).
	maxLess := float64(x.k) * (1 - delta)
	live := make([]probeElem, 0, 8)
	// dead tracks the current-row columns of queries already pruned in this
	// probe. Lemma 2 is monotone, so a pruned query can never recover;
	// advancing its column each row (one pointer chase) prevents the equal
	// search from repeatedly re-adding and re-up-walking it.
	var dead []int32
	// occ marks columns held by live or dead elements in the current row:
	// occ[col] == i+1 means occupied in row i (stamping avoids per-row
	// clearing).
	occ := make([]int32, len(x.meta))

	for i := 0; i < x.k; i++ {
		row := x.rows[i]
		v := sk[i]
		stamp := int32(i + 1)

		// (1) Advance existing elements and set their bit for row i.
		kept := live[:0]
		for di, col := range dead {
			if i > 0 {
				col = x.rows[i-1][col].down
				dead[di] = col
			}
			occ[col] = stamp
		}
		for _, el := range live {
			if i > 0 {
				el.col = x.rows[i-1][el.col].down
			}
			t := row[el.col].value
			rel := bitsig.Compare(v, t)
			el.sig.Set(i, rel)
			out.Comparisons++
			if rel == bitsig.Less {
				el.less++
			}
			// (2) Lemma 2 prune.
			if float64(el.less) > maxLess {
				out.Pruned[el.qid] = true
				dead = append(dead, el.col)
				occ[el.col] = stamp
				continue
			}
			kept = append(kept, el)
			occ[el.col] = stamp
		}
		live = kept

		// (3) Find equal values of owned queries not yet tracked. A row the
		// pre-filter mask rejects is guaranteed to hold no equal value, so
		// its binary search is skipped outright.
		if !mask.Admits(i) {
			continue
		}
		lo := sort.Search(len(row), func(j int) bool { return row[j].value >= v })
		if mask != nil && (lo >= len(row) || row[lo].value != v) {
			out.EmptySearches++
		}
		for j := lo; j < len(row) && row[j].value == v; j++ {
			if ShardOf(row[j].qid, nshards) != shard {
				continue
			}
			out.Comparisons++
			col := int32(j)
			if occ[col] == stamp {
				continue
			}
			el := probeElem{col: col, sig: bitsig.New(x.k)}
			el.sig.Set(i, bitsig.Equal)
			// Up-walk: reconstruct the relations for rows 0..i-1 and pick up
			// the query's identity at row 0.
			c := col
			for r := i - 1; r >= 0; r-- {
				c = x.rows[r+1][c].up
				rel := bitsig.Compare(sk[r], x.rows[r][c].value)
				el.sig.Set(r, rel)
				out.Comparisons++
				if rel == bitsig.Less {
					el.less++
				}
			}
			// After the walk c is the query's column at row 0 (and when
			// i == 0 it never moved from col).
			el.qid, el.length = x.meta[c].qid, x.meta[c].length
			if float64(el.less) > maxLess {
				out.Pruned[el.qid] = true
				dead = append(dead, col)
				occ[col] = stamp
				continue
			}
			live = append(live, el)
			occ[col] = stamp
		}
	}

	out.Related = make([]Result, 0, len(live))
	for _, el := range live {
		delete(out.Pruned, el.qid) // survived after all: not pruned
		out.Related = append(out.Related, Result{QID: el.qid, Length: el.length, Sig: el.sig})
	}
	return out
}

// Scan is the index-free Prober: every query sketch is compared against the
// window sketch in full (the SketchNoIndex / BitNoIndex baseline). Queries
// with no equal position are omitted from the result, matching the index's
// notion of "related"; queries failing Lemma 2 are reported as pruned.
type Scan struct {
	Queries []Query
}

// Probe implements Prober by brute force.
func (s *Scan) Probe(sk minhash.Sketch, delta float64) ProbeOutput {
	po, _ := s.ProbeShard(sk, delta, 0, 1)
	return po
}

// ProbeShard scans only the queries of one shard, returning their probe
// output and the number of full sketch comparisons performed. The shard
// outputs and scan counts partition Probe's exactly, so the brute-force
// probe parallelises linearly across workers.
func (s *Scan) ProbeShard(sk minhash.Sketch, delta float64, shard, nshards int) (ProbeOutput, int) {
	out := ProbeOutput{Pruned: make(map[int]bool)}
	scanned := 0
	for _, q := range s.Queries {
		if ShardOf(q.ID, nshards) != shard {
			continue
		}
		scanned++
		sig := bitsig.FromSketches(sk, q.Sketch)
		out.Comparisons += len(sk)
		_, eq, _ := sig.Counts()
		if eq == 0 {
			continue
		}
		if sig.Prunable(delta) {
			out.Pruned[q.ID] = true
			continue
		}
		out.Related = append(out.Related, Result{QID: q.ID, Length: q.Length, Sig: sig})
	}
	return out, scanned
}

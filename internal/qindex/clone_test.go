package qindex

import (
	"math/rand"
	"testing"

	"vdsms/internal/minhash"
)

// probeEqual compares two probe outputs entry by entry, down to the
// comparison counts the cost experiments rely on.
func probeEqual(t *testing.T, a, b ProbeOutput) {
	t.Helper()
	if a.Comparisons != b.Comparisons || a.EmptySearches != b.EmptySearches {
		t.Fatalf("probe cost differs: %d/%d vs %d/%d",
			a.Comparisons, a.EmptySearches, b.Comparisons, b.EmptySearches)
	}
	if len(a.Related) != len(b.Related) {
		t.Fatalf("related list length %d vs %d", len(a.Related), len(b.Related))
	}
	for i := range a.Related {
		ra, rb := a.Related[i], b.Related[i]
		if ra.QID != rb.QID || ra.Length != rb.Length {
			t.Fatalf("related[%d] differs: %d/%d vs %d/%d",
				i, ra.QID, ra.Length, rb.QID, rb.Length)
		}
		for r := 0; r < ra.Sig.K; r++ {
			if ra.Sig.At(r) != rb.Sig.At(r) {
				t.Fatalf("related[%d] signature differs at row %d", i, r)
			}
		}
	}
	if len(a.Pruned) != len(b.Pruned) {
		t.Fatalf("pruned set size %d vs %d", len(a.Pruned), len(b.Pruned))
	}
	for id := range a.Pruned {
		if !b.Pruned[id] {
			t.Fatalf("query %d pruned in one probe only", id)
		}
	}
}

// TestCloneProbeEquivalence pins the copy-on-write contract the versioned
// query plane builds on: a clone is probe-for-probe identical to its
// original, and mutating the clone (Add and Remove) leaves the original's
// structure and probe output untouched.
func TestCloneProbeEquivalence(t *testing.T) {
	fam, _ := minhash.NewFamily(24, 4)
	queries := makeQueries(t, fam, 12, 11)
	x, err := Build(queries[:10])
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(12))
	windows := make([]minhash.Sketch, 8)
	for i := range windows {
		ids := make([]uint64, 20)
		for j := range ids {
			ids[j] = uint64(rng.Intn(500))
		}
		windows[i] = fam.SketchSet(ids)
	}
	// Mix in a subscribed query's own sketch so the related list is
	// guaranteed non-empty.
	windows = append(windows, queries[3].Sketch)

	c := x.Clone()
	verifyStructure(t, c, queries[:10])
	for _, w := range windows {
		probeEqual(t, x.Probe(w, 0.4), c.Probe(w, 0.4))
	}

	// Snapshot the original's probe outputs, then churn the clone.
	before := make([]ProbeOutput, len(windows))
	for i, w := range windows {
		before[i] = x.Probe(w, 0.4)
	}
	if err := c.Add(queries[10]); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(queries[11]); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(queries[3].ID); err != nil {
		t.Fatal(err)
	}
	mutated := append(append([]Query{}, queries[:3]...), queries[4:]...)
	verifyStructure(t, c, mutated)

	// The original must be bit-for-bit unaffected by the clone's churn.
	if x.Len() != 10 {
		t.Fatalf("original Len %d after clone churn, want 10", x.Len())
	}
	verifyStructure(t, x, queries[:10])
	for i, w := range windows {
		probeEqual(t, before[i], x.Probe(w, 0.4))
	}
	if _, ok := x.SketchOf(queries[3].ID); !ok {
		t.Fatal("query removed from original by clone's Remove")
	}
	if _, ok := c.SketchOf(queries[3].ID); ok {
		t.Fatal("clone still holds removed query")
	}

	// Bytes tracks the structural growth.
	if c.Bytes() <= 0 || x.Bytes() <= 0 {
		t.Fatal("Bytes reported nothing for a populated index")
	}
	if c.Bytes() <= x.Bytes() {
		t.Fatalf("clone with net +1 query not larger: %d vs %d", c.Bytes(), x.Bytes())
	}
}

// Package qindex implements the query-sequence index of paper Section V.C:
// a Hash-Query array HQ[K][m] holding, per hash function (row), the m query
// min-hash values sorted by value, each entry carrying up/down links to the
// same query's entry in the adjacent rows. Row 0 additionally carries the
// query id and length at each column entry.
//
// Probing a basic-window sketch against the index (ProbeIndex, Figure 5)
// returns bit signatures only for the queries that share at least one
// min-hash value with the window — the "related query list" R_L — applying
// the Lemma 2 prune as rows are consumed. With many queries this replaces m
// full sketch comparisons per window by a handful of binary searches plus
// work proportional to |R_L|.
package qindex

import (
	"fmt"
	"sort"

	"vdsms/internal/minhash"
)

// Query pairs a query id with its offline-computed sketch and its length in
// frames (used by the engine for candidate expiry, λL).
type Query struct {
	ID     int
	Length int
	Sketch minhash.Sketch
}

// entry is one triple <value, up, down> of the Hash-Query array. up and
// down are column positions in the neighbouring rows (-1 at the borders).
// qid carries the owning query's id in every row (not just row 0) so a
// sharded probe can decide ownership of a discovered entry before paying
// for the up-walk that reconstructs its earlier-row bits.
type entry struct {
	value    uint64
	up, down int32
	qid      int
}

// colMeta is the row-0 column header: query id and length.
type colMeta struct {
	qid    int
	length int
}

// Index is the Hash-Query array. Rows are sorted by value; ties break by
// query id so the structure is deterministic. Concurrent readers are safe;
// Add/Remove require external synchronisation.
type Index struct {
	k    int
	rows [][]entry
	meta []colMeta // parallel to rows[0]
	// colOf[q] when >= 0 caches the row-0 column of query q for O(1)
	// Remove; it is rebuilt lazily after mutations.
	pos map[int]int // qid → row-0 column
}

// Build constructs the index from the query sketches (BuildIndex of the
// paper, done offline). All sketches must share the same K, ids must be
// unique, and lengths positive.
func Build(queries []Query) (*Index, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("qindex: no queries")
	}
	k := len(queries[0].Sketch)
	if k == 0 {
		return nil, fmt.Errorf("qindex: empty sketch")
	}
	seen := make(map[int]bool, len(queries))
	for _, q := range queries {
		if len(q.Sketch) != k {
			return nil, fmt.Errorf("qindex: query %d sketch has K=%d, want %d", q.ID, len(q.Sketch), k)
		}
		if q.Length <= 0 {
			return nil, fmt.Errorf("qindex: query %d has non-positive length", q.ID)
		}
		if seen[q.ID] {
			return nil, fmt.Errorf("qindex: duplicate query id %d", q.ID)
		}
		seen[q.ID] = true
	}

	m := len(queries)
	idx := &Index{k: k, rows: make([][]entry, k), pos: make(map[int]int, m)}

	// Per row, sort the m (value, query) pairs; record each query's column.
	cols := make([][]int, k) // cols[i][q-th input] = column of queries[q] in row i
	order := make([]int, m)
	for i := 0; i < k; i++ {
		for j := range order {
			order[j] = j
		}
		sort.SliceStable(order, func(a, b int) bool {
			va, vb := queries[order[a]].Sketch[i], queries[order[b]].Sketch[i]
			if va != vb {
				return va < vb
			}
			return queries[order[a]].ID < queries[order[b]].ID
		})
		row := make([]entry, m)
		colAt := make([]int, m)
		for col, qi := range order {
			row[col] = entry{value: queries[qi].Sketch[i], up: -1, down: -1, qid: queries[qi].ID}
			colAt[qi] = col
		}
		idx.rows[i] = row
		cols[i] = colAt
	}
	// Wire up/down links and the row-0 metadata.
	idx.meta = make([]colMeta, m)
	for qi, q := range queries {
		for i := 0; i < k; i++ {
			col := cols[i][qi]
			if i > 0 {
				idx.rows[i][col].up = int32(cols[i-1][qi])
			}
			if i < k-1 {
				idx.rows[i][col].down = int32(cols[i+1][qi])
			}
		}
		c0 := cols[0][qi]
		idx.meta[c0] = colMeta{qid: q.ID, length: q.Length}
		idx.pos[q.ID] = c0
	}
	return idx, nil
}

// Clone returns a deep copy of the index. Cost O(K·m) straight memory
// copies — the same order as a single incremental Add — which makes
// copy-on-write churn (clone, then mutate the private copy while readers
// keep probing the original) as cheap as in-place mutation was.
func (x *Index) Clone() *Index {
	c := &Index{
		k:    x.k,
		rows: make([][]entry, len(x.rows)),
		meta: append([]colMeta(nil), x.meta...),
		pos:  make(map[int]int, len(x.pos)),
	}
	for i, row := range x.rows {
		c.rows[i] = append([]entry(nil), row...)
	}
	for id, col := range x.pos {
		c.pos[id] = col
	}
	return c
}

// Bytes estimates the index's memory footprint: the <value, up, down, qid>
// triples of every row plus the row-0 metadata and the position cache. The
// per-stream memory experiments treat this as the shared query plane's
// dominant term.
func (x *Index) Bytes() int {
	const entryBytes = 8 + 4 + 4 + 8 // value, up, down, qid
	b := 0
	for _, row := range x.rows {
		b += len(row) * entryBytes
	}
	b += len(x.meta) * 16
	b += len(x.pos) * 16
	return b
}

// K returns the number of hash functions (rows).
func (x *Index) K() int { return x.k }

// Len returns the number of indexed queries.
func (x *Index) Len() int { return len(x.meta) }

// SizeTriples returns the number of <value, up, down> triples stored —
// m×K, the paper's fixed query-index memory figure.
func (x *Index) SizeTriples() int { return x.k * len(x.meta) }

// QueryIDs returns the indexed query ids in row-0 column order.
func (x *Index) QueryIDs() []int {
	out := make([]int, len(x.meta))
	for i, m := range x.meta {
		out[i] = m.qid
	}
	return out
}

// SketchOf reconstructs the stored sketch of query id by walking the down
// links from its row-0 entry (the paper's "given a query id q ... down
// search is performed to find all the hash values of q").
func (x *Index) SketchOf(id int) (minhash.Sketch, bool) {
	col, ok := x.pos[id]
	if !ok {
		return nil, false
	}
	out := make(minhash.Sketch, x.k)
	c := int32(col)
	for i := 0; i < x.k; i++ {
		out[i] = x.rows[i][c].value
		c = x.rows[i][c].down
	}
	return out, true
}

// LengthOf returns the stored length of query id.
func (x *Index) LengthOf(id int) (int, bool) {
	col, ok := x.pos[id]
	if !ok {
		return 0, false
	}
	return x.meta[col].length, true
}

// Add subscribes a new query online: each row receives one entry at its
// sorted position, and the up/down links of entries referring to shifted
// positions are fixed up. Cost O(K·m).
func (x *Index) Add(q Query) error {
	if len(q.Sketch) != x.k {
		return fmt.Errorf("qindex: sketch K=%d, index K=%d", len(q.Sketch), x.k)
	}
	if q.Length <= 0 {
		return fmt.Errorf("qindex: non-positive length")
	}
	if _, dup := x.pos[q.ID]; dup {
		return fmt.Errorf("qindex: query id %d already subscribed", q.ID)
	}
	// Insertion position per row: after the last entry with equal value
	// (tie order by arrival is fine; determinism is preserved per instance).
	insAt := make([]int, x.k)
	for i := 0; i < x.k; i++ {
		v := q.Sketch[i]
		insAt[i] = sort.Search(len(x.rows[i]), func(j int) bool {
			return x.rows[i][j].value > v
		})
	}
	for i := 0; i < x.k; i++ {
		p := insAt[i]
		// Shift references in the neighbouring rows. The entry freshly
		// inserted into row i-1 already points at the new entry's final
		// position and must not shift.
		if i > 0 {
			for j := range x.rows[i-1] {
				if j == insAt[i-1] {
					continue
				}
				if x.rows[i-1][j].down >= int32(p) {
					x.rows[i-1][j].down++
				}
			}
		}
		if i < x.k-1 {
			for j := range x.rows[i+1] {
				if x.rows[i+1][j].up >= int32(p) {
					x.rows[i+1][j].up++
				}
			}
		}
		e := entry{value: q.Sketch[i], up: -1, down: -1, qid: q.ID}
		if i > 0 {
			e.up = int32(insAt[i-1])
		}
		if i < x.k-1 {
			e.down = int32(insAt[i+1])
		}
		row := x.rows[i]
		row = append(row, entry{})
		copy(row[p+1:], row[p:])
		row[p] = e
		x.rows[i] = row
	}
	// Row-0 metadata shifts with the insertion.
	p0 := insAt[0]
	x.meta = append(x.meta, colMeta{})
	copy(x.meta[p0+1:], x.meta[p0:])
	x.meta[p0] = colMeta{qid: q.ID, length: q.Length}
	for id, c := range x.pos {
		if c >= p0 {
			x.pos[id] = c + 1
		}
	}
	x.pos[q.ID] = p0
	return nil
}

// Remove unsubscribes a query online, the inverse of Add. Cost O(K·m).
func (x *Index) Remove(id int) error {
	col, ok := x.pos[id]
	if !ok {
		return fmt.Errorf("qindex: query id %d not subscribed", id)
	}
	// Walk down links to find the query's column in every row first.
	colAt := make([]int, x.k)
	c := int32(col)
	for i := 0; i < x.k; i++ {
		colAt[i] = int(c)
		c = x.rows[i][c].down
	}
	for i := 0; i < x.k; i++ {
		p := colAt[i]
		row := x.rows[i]
		copy(row[p:], row[p+1:])
		x.rows[i] = row[:len(row)-1]
		if i > 0 {
			for j := range x.rows[i-1] {
				if x.rows[i-1][j].down > int32(p) {
					x.rows[i-1][j].down--
				}
			}
		}
		if i < x.k-1 {
			for j := range x.rows[i+1] {
				if x.rows[i+1][j].up > int32(p) {
					x.rows[i+1][j].up--
				}
			}
		}
	}
	p0 := colAt[0]
	copy(x.meta[p0:], x.meta[p0+1:])
	x.meta = x.meta[:len(x.meta)-1]
	delete(x.pos, id)
	for qid, c := range x.pos {
		if c > p0 {
			x.pos[qid] = c - 1
		}
	}
	return nil
}

package snapshot

import (
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, err := CreateWAL(path, 0xDEAD, 500)
	if err != nil {
		t.Fatal(err)
	}
	batches := [][]uint64{
		{1, 2, 3},
		{0, math.MaxUint64, 1 << 40},
		{7},
	}
	var want []uint64
	for _, b := range batches {
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
		want = append(want, b...)
	}
	if w.Frames != len(want) {
		t.Errorf("Frames = %d, appended %d", w.Frames, len(want))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	fp, base, ids, err := ReplayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if fp != 0xDEAD || base != 500 {
		t.Errorf("header (fp=%x base=%d), want (fp=dead base=500)", fp, base)
	}
	if !reflect.DeepEqual(ids, want) {
		t.Errorf("replayed %v, appended %v", ids, want)
	}
}

func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, err := CreateWAL(path, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Two complete records, then simulate a crash mid-append by truncating
	// the file at every byte position inside the third record.
	if err := w.Append([]uint64{300, 9}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]uint64{1 << 50}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Find where the third record begins: replay the full file first.
	_, _, full, err := ReplayWAL(path)
	if err != nil || len(full) != 3 {
		t.Fatalf("full replay: %v, %v", full, err)
	}
	third := len(data) - 1 - varintLen(1<<50) // marker + varint
	for cut := third + 1; cut < len(data); cut++ {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, ids, err := ReplayWAL(path)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if !reflect.DeepEqual(ids, []uint64{300, 9}) {
			t.Errorf("cut at %d: replayed %v, want the two durable records", cut, ids)
		}
	}
	// Truncating into the header replays as empty, not as an error.
	for _, cut := range []int{0, 3, walHeaderSize - 1} {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, ids, err := ReplayWAL(path)
		if err != nil || len(ids) != 0 {
			t.Errorf("header cut at %d: ids=%v err=%v", cut, ids, err)
		}
	}
}

func varintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func TestWALCorruptMarker(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, err := CreateWAL(path, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]uint64{5}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	data, _ := os.ReadFile(path)
	data[walHeaderSize] = 0x00 // clobber the record marker
	os.WriteFile(path, data, 0o644)
	if _, _, _, err := ReplayWAL(path); err == nil {
		t.Error("corrupt marker replayed without error")
	}
}

func TestWALMissingFile(t *testing.T) {
	_, base, ids, err := ReplayWAL(filepath.Join(t.TempDir(), "nope"))
	if err != nil || base != 0 || len(ids) != 0 {
		t.Errorf("missing WAL: base=%d ids=%v err=%v", base, ids, err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("hello"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Fatalf("read back %q, %v", data, err)
	}
	// No temp litter.
	entries, _ := os.ReadDir(filepath.Dir(path))
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want 1", len(entries))
	}
}

// Package snapshot defines the durable on-disk representation of a running
// detection engine: a versioned binary checkpoint of the full matching
// state (query set, candidate lists, sketches, signatures, counters) and a
// frame-granular write-ahead log of the cell ids consumed since the last
// checkpoint. Recovery is load-checkpoint + replay-WAL-tail through the
// ordinary matching kernel, and is deterministic: a restored engine emits
// exactly the matches and stats an uninterrupted run would have.
//
// The package holds only plain data and the codec; internal/core converts
// between these structs and its live engine state, so the dependency runs
// core → snapshot and the format stays testable in isolation.
//
// Checkpoint layout (bit-granular via internal/bitio, MSB-first):
//
//	magic "VCKP" | format version (16 bits) | config fingerprint (64 bits)
//	meta section | config section | engine section | FNV-1a trailer
//
// The header triple is byte-aligned and pinned by a golden test: any layout
// drift fails CI rather than corrupting user checkpoints. The fingerprint
// covers every configuration field that shapes detection state (it
// deliberately excludes worker count — parallelism is a runtime choice, and
// a checkpoint taken at one Workers value restores at any other). Loading a
// checkpoint whose fingerprint disagrees with the running configuration
// fails loudly; silent state corruption is the one unforgivable failure
// mode of a durability layer.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"vdsms/internal/bitio"
)

// Magic identifies a checkpoint stream.
var Magic = [4]byte{'V', 'C', 'K', 'P'}

// FormatVersion is the current checkpoint format version. Bump on any
// layout change; readers reject versions they do not understand.
const FormatVersion = 1

// Config holds the detection-relevant engine configuration. Every field
// participates in the fingerprint; worker count is structurally absent.
type Config struct {
	K            int
	Seed         int64
	Delta        float64
	Lambda       float64
	WindowFrames int
	Order        uint8 // 0 sequential, 1 geometric
	Method       uint8 // 0 bit, 1 sketch
	UseIndex     bool
	DisablePrune bool
}

// Meta holds pipeline-level parameters above the engine (zero for bare
// engines). They shape the cell ids the engine consumes, so a mismatch is
// as corrupting as a mismatched K.
type Meta struct {
	U      int
	D      int
	KeyFPS float64
}

// Query is one subscribed query. Queries are stored in subscription order
// so the restored query set (and its Hash-Query index) is rebuilt through
// the same insertion sequence.
type Query struct {
	ID     int
	Frames int
	Sketch []uint64
}

// Signature is one query's 2K-bit relation signature (two K-bit planes).
type Signature struct {
	QID    int
	Lo, Hi []uint64
}

// SeqCandidate is one Sequential-order candidate in canonical form: all
// per-shard slots merged, queries ascending by id.
type SeqCandidate struct {
	StartFrame int
	Windows    int
	Sketch     []uint64    // Sketch method combined sketch; nil under Bit
	Sigs       []Signature // Bit method, ascending QID
	Related    []int       // Sketch method tracked queries, ascending
	Reported   []int       // queries already reported, ascending
}

// GeoBucket is one stored Geometric-order bucket in canonical form.
type GeoBucket struct {
	StartFrame int
	EndFrame   int
	Windows    int
	Sketch     []uint64
	Sigs       []Signature
	Related    []int
}

// GeoReport is one (query, candidate start) pair already reported under
// Geometric order.
type GeoReport struct {
	QID   int
	Start int
}

// ShardStats mirrors core.ShardStats.
type ShardStats struct {
	Probed, Pruned, Compared int64
}

// Stats mirrors core.Stats (minus the Matches slice, which is delivery
// state, not matching state).
type Stats struct {
	Frames, Windows                int
	SketchCombines, SketchCompares int64
	SigOrs, SigTests               int64
	ProbeComparisons               int64
	SignatureSum, CandidateSum     int64
	Matches                        int
	Shards                         []ShardStats
}

// EngineState is the complete matching state of one engine, canonicalised:
// per-shard partitions are merged and every list is sorted, so the same
// logical state serialises to the same bytes regardless of the worker
// count that produced it.
type EngineState struct {
	Config      Config
	Frame       int
	CurIDs      []uint64
	Stats       Stats
	Queries     []Query
	Seq         []SeqCandidate
	Geo         []GeoBucket
	GeoReported []GeoReport // ascending (QID, Start)
}

// Checkpoint is the full durable unit: pipeline meta plus engine state.
type Checkpoint struct {
	Meta   Meta
	Engine EngineState
}

// Fingerprint hashes the meta and config sections with FNV-1a/64. Two
// checkpoints are state-compatible iff their fingerprints agree.
func Fingerprint(m Meta, c Config) uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		binary.BigEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	put(uint64(m.U))
	put(uint64(m.D))
	put(math.Float64bits(m.KeyFPS))
	put(uint64(c.K))
	put(uint64(c.Seed))
	put(math.Float64bits(c.Delta))
	put(math.Float64bits(c.Lambda))
	put(uint64(c.WindowFrames))
	put(uint64(c.Order))
	put(uint64(c.Method))
	var flags uint64
	if c.UseIndex {
		flags |= 1
	}
	if c.DisablePrune {
		flags |= 2
	}
	put(flags)
	return h.Sum64()
}

// CompatibilityError reports a fingerprint mismatch field by field, so the
// operator sees exactly which knob diverged instead of a bare hash.
func CompatibilityError(have, want Meta, haveC, wantC Config) error {
	var diffs []string
	add := func(name string, h, w any) {
		if h != w {
			diffs = append(diffs, fmt.Sprintf("%s: checkpoint has %v, config has %v", name, h, w))
		}
	}
	add("U", have.U, want.U)
	add("D", have.D, want.D)
	add("KeyFPS", have.KeyFPS, want.KeyFPS)
	add("K", haveC.K, wantC.K)
	add("Seed", haveC.Seed, wantC.Seed)
	add("Delta", haveC.Delta, wantC.Delta)
	add("Lambda", haveC.Lambda, wantC.Lambda)
	add("WindowFrames", haveC.WindowFrames, wantC.WindowFrames)
	add("Order", haveC.Order, wantC.Order)
	add("Method", haveC.Method, wantC.Method)
	add("UseIndex", haveC.UseIndex, wantC.UseIndex)
	add("DisablePrune", haveC.DisablePrune, wantC.DisablePrune)
	if len(diffs) == 0 {
		return nil
	}
	return fmt.Errorf("snapshot: checkpoint incompatible with running configuration: %v", diffs)
}

// ---------------------------------------------------------------- encoding

type encoder struct {
	w   *bitio.Writer
	buf []byte
}

func (e *encoder) bit(b bool) {
	if b {
		e.w.WriteBit(1)
	} else {
		e.w.WriteBit(0)
	}
}

func (e *encoder) ue(v uint64) { e.w.WriteUE(v) }
func (e *encoder) se(v int64)  { e.w.WriteSE(v) }
func (e *encoder) f64(v float64) {
	e.w.WriteBits(math.Float64bits(v), 64)
}

// u64s writes a word slice byte-aligned, big-endian — the bulk payload
// path. Empty slices write nothing (and force no alignment), mirroring the
// decoder's early return.
func (e *encoder) u64s(vs []uint64) {
	if len(vs) == 0 {
		return
	}
	need := 8 * len(vs)
	if cap(e.buf) < need {
		e.buf = make([]byte, need)
	}
	b := e.buf[:need]
	for i, v := range vs {
		binary.BigEndian.PutUint64(b[i*8:], v)
	}
	e.w.WriteBytes(b)
}

func (e *encoder) sig(s Signature) {
	e.se(int64(s.QID))
	e.ue(uint64(len(s.Lo)))
	e.u64s(s.Lo)
	e.u64s(s.Hi)
}

func (e *encoder) ints(vs []int) {
	e.ue(uint64(len(vs)))
	for _, v := range vs {
		e.se(int64(v))
	}
}

func (e *encoder) sketch(s []uint64) {
	e.ue(uint64(len(s)))
	e.u64s(s)
}

// Write serialises a checkpoint to w.
func Write(w io.Writer, c *Checkpoint) error {
	bw := bitio.NewWriter(4096)
	enc := &encoder{w: bw}

	// Header: magic, version, fingerprint — byte-aligned, golden-pinned.
	bw.WriteBytes(Magic[:])
	bw.WriteBits(FormatVersion, 16)
	bw.WriteBits(Fingerprint(c.Meta, c.Engine.Config), 64)

	// Meta section.
	enc.se(int64(c.Meta.U))
	enc.se(int64(c.Meta.D))
	enc.f64(c.Meta.KeyFPS)

	// Config section.
	cfg := c.Engine.Config
	enc.ue(uint64(cfg.K))
	bw.WriteBits(uint64(cfg.Seed), 64)
	enc.f64(cfg.Delta)
	enc.f64(cfg.Lambda)
	enc.ue(uint64(cfg.WindowFrames))
	bw.WriteBits(uint64(cfg.Order), 8)
	bw.WriteBits(uint64(cfg.Method), 8)
	enc.bit(cfg.UseIndex)
	enc.bit(cfg.DisablePrune)

	// Engine section.
	st := &c.Engine
	enc.ue(uint64(st.Frame))
	enc.sketch(st.CurIDs)

	enc.ue(uint64(st.Stats.Frames))
	enc.ue(uint64(st.Stats.Windows))
	for _, v := range []int64{
		st.Stats.SketchCombines, st.Stats.SketchCompares,
		st.Stats.SigOrs, st.Stats.SigTests, st.Stats.ProbeComparisons,
		st.Stats.SignatureSum, st.Stats.CandidateSum,
	} {
		bw.WriteBits(uint64(v), 64)
	}
	enc.ue(uint64(st.Stats.Matches))
	enc.ue(uint64(len(st.Stats.Shards)))
	for _, sh := range st.Stats.Shards {
		bw.WriteBits(uint64(sh.Probed), 64)
		bw.WriteBits(uint64(sh.Pruned), 64)
		bw.WriteBits(uint64(sh.Compared), 64)
	}

	enc.ue(uint64(len(st.Queries)))
	for _, q := range st.Queries {
		enc.se(int64(q.ID))
		enc.ue(uint64(q.Frames))
		enc.sketch(q.Sketch)
	}

	enc.ue(uint64(len(st.Seq)))
	for _, cand := range st.Seq {
		enc.se(int64(cand.StartFrame))
		enc.ue(uint64(cand.Windows))
		enc.bit(cand.Sketch != nil)
		if cand.Sketch != nil {
			enc.sketch(cand.Sketch)
		}
		enc.ue(uint64(len(cand.Sigs)))
		for _, s := range cand.Sigs {
			enc.sig(s)
		}
		enc.ints(cand.Related)
		enc.ints(cand.Reported)
	}

	enc.ue(uint64(len(st.Geo)))
	for _, b := range st.Geo {
		enc.se(int64(b.StartFrame))
		enc.se(int64(b.EndFrame))
		enc.ue(uint64(b.Windows))
		enc.bit(b.Sketch != nil)
		if b.Sketch != nil {
			enc.sketch(b.Sketch)
		}
		enc.ue(uint64(len(b.Sigs)))
		for _, s := range b.Sigs {
			enc.sig(s)
		}
		enc.ints(b.Related)
	}

	enc.ue(uint64(len(st.GeoReported)))
	for _, r := range st.GeoReported {
		enc.se(int64(r.QID))
		enc.se(int64(r.Start))
	}

	// Integrity trailer: FNV-1a over every byte written so far.
	body := bw.Bytes()
	h := fnv.New64a()
	h.Write(body)
	var tr [8]byte
	binary.BigEndian.PutUint64(tr[:], h.Sum64())
	if _, err := w.Write(body); err != nil {
		return err
	}
	_, err := w.Write(tr[:])
	return err
}

// ---------------------------------------------------------------- decoding

type decoder struct {
	r *bitio.Reader
}

func (d *decoder) bit() (bool, error) {
	b, err := d.r.ReadBit()
	return b == 1, err
}

func (d *decoder) ue() (uint64, error) { return d.r.ReadUE() }

func (d *decoder) count(what string, limit uint64) (int, error) {
	v, err := d.r.ReadUE()
	if err != nil {
		return 0, fmt.Errorf("snapshot: reading %s count: %w", what, err)
	}
	if v > limit {
		return 0, fmt.Errorf("snapshot: implausible %s count %d", what, v)
	}
	return int(v), nil
}

func (d *decoder) se() (int64, error) { return d.r.ReadSE() }

func (d *decoder) f64() (float64, error) {
	v, err := d.r.ReadBits(64)
	return math.Float64frombits(v), err
}

func (d *decoder) u64s(n int) ([]uint64, error) {
	if n == 0 {
		return nil, nil
	}
	b, err := d.r.ReadBytes(8 * n)
	if err != nil {
		return nil, err
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = binary.BigEndian.Uint64(b[i*8:])
	}
	return vs, nil
}

func (d *decoder) sig() (Signature, error) {
	var s Signature
	qid, err := d.se()
	if err != nil {
		return s, err
	}
	n, err := d.count("signature words", 1<<20)
	if err != nil {
		return s, err
	}
	s.QID = int(qid)
	if s.Lo, err = d.u64s(n); err != nil {
		return s, err
	}
	s.Hi, err = d.u64s(n)
	return s, err
}

func (d *decoder) ints(what string) ([]int, error) {
	n, err := d.count(what, 1<<24)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	vs := make([]int, n)
	for i := range vs {
		v, err := d.se()
		if err != nil {
			return nil, err
		}
		vs[i] = int(v)
	}
	return vs, nil
}

func (d *decoder) sketch(what string) ([]uint64, error) {
	n, err := d.count(what, 1<<24)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	return d.u64s(n)
}

// Read parses a checkpoint, verifying magic, version, integrity trailer and
// the internal consistency of the fingerprint.
func Read(r io.Reader) (*Checkpoint, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading checkpoint: %w", err)
	}
	if len(data) < 22 { // header 14 + trailer 8
		return nil, fmt.Errorf("snapshot: checkpoint truncated (%d bytes)", len(data))
	}
	body, tr := data[:len(data)-8], data[len(data)-8:]
	h := fnv.New64a()
	h.Write(body)
	if got, want := h.Sum64(), binary.BigEndian.Uint64(tr); got != want {
		return nil, fmt.Errorf("snapshot: checkpoint integrity check failed (hash %016x, trailer %016x)", got, want)
	}

	br := bitio.NewReader(body)
	d := &decoder{r: br}

	magic, err := br.ReadBytes(4)
	if err != nil || [4]byte(magic) != Magic {
		return nil, fmt.Errorf("snapshot: not a checkpoint stream (magic %q)", magic)
	}
	ver, err := br.ReadBits(16)
	if err != nil {
		return nil, err
	}
	if ver != FormatVersion {
		return nil, fmt.Errorf("snapshot: unsupported format version %d (this build reads %d)", ver, FormatVersion)
	}
	wantFP, err := br.ReadBits(64)
	if err != nil {
		return nil, err
	}

	c := &Checkpoint{}
	fail := func(what string, err error) (*Checkpoint, error) {
		return nil, fmt.Errorf("snapshot: reading %s: %w", what, err)
	}

	// Meta section.
	u, err := d.se()
	if err != nil {
		return fail("meta", err)
	}
	dd, err := d.se()
	if err != nil {
		return fail("meta", err)
	}
	fps, err := d.f64()
	if err != nil {
		return fail("meta", err)
	}
	c.Meta = Meta{U: int(u), D: int(dd), KeyFPS: fps}

	// Config section.
	var cfg Config
	k, err := d.ue()
	if err != nil {
		return fail("config", err)
	}
	seed, err := br.ReadBits(64)
	if err != nil {
		return fail("config", err)
	}
	if cfg.Delta, err = d.f64(); err != nil {
		return fail("config", err)
	}
	if cfg.Lambda, err = d.f64(); err != nil {
		return fail("config", err)
	}
	wf, err := d.ue()
	if err != nil {
		return fail("config", err)
	}
	order, err := br.ReadBits(8)
	if err != nil {
		return fail("config", err)
	}
	method, err := br.ReadBits(8)
	if err != nil {
		return fail("config", err)
	}
	if cfg.UseIndex, err = d.bit(); err != nil {
		return fail("config", err)
	}
	if cfg.DisablePrune, err = d.bit(); err != nil {
		return fail("config", err)
	}
	cfg.K, cfg.Seed = int(k), int64(seed)
	cfg.WindowFrames = int(wf)
	cfg.Order, cfg.Method = uint8(order), uint8(method)
	c.Engine.Config = cfg

	if got := Fingerprint(c.Meta, cfg); got != wantFP {
		return nil, fmt.Errorf("snapshot: header fingerprint %016x does not match config sections (%016x); checkpoint corrupt", wantFP, got)
	}

	// Engine section.
	st := &c.Engine
	frame, err := d.ue()
	if err != nil {
		return fail("frame", err)
	}
	st.Frame = int(frame)
	if st.CurIDs, err = d.sketch("current window"); err != nil {
		return fail("current window", err)
	}

	sf, err := d.ue()
	if err != nil {
		return fail("stats", err)
	}
	sw, err := d.ue()
	if err != nil {
		return fail("stats", err)
	}
	st.Stats.Frames, st.Stats.Windows = int(sf), int(sw)
	for _, dst := range []*int64{
		&st.Stats.SketchCombines, &st.Stats.SketchCompares,
		&st.Stats.SigOrs, &st.Stats.SigTests, &st.Stats.ProbeComparisons,
		&st.Stats.SignatureSum, &st.Stats.CandidateSum,
	} {
		v, err := br.ReadBits(64)
		if err != nil {
			return fail("stats", err)
		}
		*dst = int64(v)
	}
	sm, err := d.ue()
	if err != nil {
		return fail("stats", err)
	}
	st.Stats.Matches = int(sm)
	nsh, err := d.count("shard stats", 1<<16)
	if err != nil {
		return nil, err
	}
	st.Stats.Shards = make([]ShardStats, nsh)
	for i := range st.Stats.Shards {
		for _, dst := range []*int64{
			&st.Stats.Shards[i].Probed, &st.Stats.Shards[i].Pruned, &st.Stats.Shards[i].Compared,
		} {
			v, err := br.ReadBits(64)
			if err != nil {
				return fail("shard stats", err)
			}
			*dst = int64(v)
		}
	}

	nq, err := d.count("query", 1<<20)
	if err != nil {
		return nil, err
	}
	st.Queries = make([]Query, nq)
	for i := range st.Queries {
		id, err := d.se()
		if err != nil {
			return fail("query", err)
		}
		frames, err := d.ue()
		if err != nil {
			return fail("query", err)
		}
		sk, err := d.sketch("query sketch")
		if err != nil {
			return fail("query sketch", err)
		}
		st.Queries[i] = Query{ID: int(id), Frames: int(frames), Sketch: sk}
	}

	nc, err := d.count("candidate", 1<<24)
	if err != nil {
		return nil, err
	}
	st.Seq = make([]SeqCandidate, nc)
	for i := range st.Seq {
		cand := &st.Seq[i]
		start, err := d.se()
		if err != nil {
			return fail("candidate", err)
		}
		wins, err := d.ue()
		if err != nil {
			return fail("candidate", err)
		}
		cand.StartFrame, cand.Windows = int(start), int(wins)
		hasSketch, err := d.bit()
		if err != nil {
			return fail("candidate", err)
		}
		if hasSketch {
			if cand.Sketch, err = d.sketch("candidate sketch"); err != nil {
				return fail("candidate sketch", err)
			}
		}
		ns, err := d.count("candidate signature", 1<<20)
		if err != nil {
			return nil, err
		}
		if ns > 0 {
			cand.Sigs = make([]Signature, ns)
		}
		for j := range cand.Sigs {
			if cand.Sigs[j], err = d.sig(); err != nil {
				return fail("candidate signature", err)
			}
		}
		if cand.Related, err = d.ints("candidate related"); err != nil {
			return nil, err
		}
		if cand.Reported, err = d.ints("candidate reported"); err != nil {
			return nil, err
		}
	}

	nb, err := d.count("bucket", 1<<24)
	if err != nil {
		return nil, err
	}
	st.Geo = make([]GeoBucket, nb)
	for i := range st.Geo {
		b := &st.Geo[i]
		start, err := d.se()
		if err != nil {
			return fail("bucket", err)
		}
		end, err := d.se()
		if err != nil {
			return fail("bucket", err)
		}
		wins, err := d.ue()
		if err != nil {
			return fail("bucket", err)
		}
		b.StartFrame, b.EndFrame, b.Windows = int(start), int(end), int(wins)
		hasSketch, err := d.bit()
		if err != nil {
			return fail("bucket", err)
		}
		if hasSketch {
			if b.Sketch, err = d.sketch("bucket sketch"); err != nil {
				return fail("bucket sketch", err)
			}
		}
		ns, err := d.count("bucket signature", 1<<20)
		if err != nil {
			return nil, err
		}
		if ns > 0 {
			b.Sigs = make([]Signature, ns)
		}
		for j := range b.Sigs {
			if b.Sigs[j], err = d.sig(); err != nil {
				return fail("bucket signature", err)
			}
		}
		if b.Related, err = d.ints("bucket related"); err != nil {
			return nil, err
		}
	}

	nr, err := d.count("geo report", 1<<24)
	if err != nil {
		return nil, err
	}
	st.GeoReported = make([]GeoReport, nr)
	for i := range st.GeoReported {
		qid, err := d.se()
		if err != nil {
			return fail("geo report", err)
		}
		start, err := d.se()
		if err != nil {
			return fail("geo report", err)
		}
		st.GeoReported[i] = GeoReport{QID: int(qid), Start: int(start)}
	}
	return c, nil
}

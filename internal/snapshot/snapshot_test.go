package snapshot

import (
	"bytes"
	"encoding/hex"
	"math"
	"os"
	"reflect"
	"strings"
	"testing"
)

// sampleCheckpoint builds a checkpoint exercising every section of the
// format: both candidate kinds, signatures, sketches, reports and stats.
func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Meta: Meta{U: 4, D: 5, KeyFPS: 2},
		Engine: EngineState{
			Config: Config{
				K: 128, Seed: -7, Delta: 0.7, Lambda: 2, WindowFrames: 10,
				Order: 0, Method: 0, UseIndex: true,
			},
			Frame:  1234,
			CurIDs: []uint64{0, 1, math.MaxUint64, 42},
			Stats: Stats{
				Frames: 1234, Windows: 123,
				SketchCombines: 1, SketchCompares: 2, SigOrs: 3, SigTests: 4,
				ProbeComparisons: 5, SignatureSum: 6, CandidateSum: 7, Matches: 8,
				Shards: []ShardStats{{Probed: 9, Pruned: 10, Compared: 11}, {Compared: 3}},
			},
			Queries: []Query{
				{ID: 3, Frames: 40, Sketch: []uint64{1, 2, 3}},
				{ID: 1, Frames: 25, Sketch: []uint64{7, 0, math.MaxUint64}},
			},
			Seq: []SeqCandidate{
				{
					StartFrame: 100, Windows: 3,
					Sigs:     []Signature{{QID: 1, Lo: []uint64{0xF0}, Hi: []uint64{0x10}}},
					Reported: []int{1},
				},
				{
					StartFrame: 110, Windows: 2,
					Sketch:  []uint64{5, 6, 7},
					Related: []int{1, 3},
				},
			},
			Geo: []GeoBucket{
				{
					StartFrame: 90, EndFrame: 130, Windows: 4,
					Sigs:    []Signature{{QID: 3, Lo: []uint64{1}, Hi: []uint64{0}}},
					Related: []int{3},
				},
			},
			GeoReported: []GeoReport{{QID: 1, Start: 90}, {QID: 3, Start: 100}},
		},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	want := sampleCheckpoint()
	var buf bytes.Buffer
	if err := Write(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip diverges:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestCheckpointEmptySections(t *testing.T) {
	want := &Checkpoint{
		Engine: EngineState{
			Config: Config{K: 1, Delta: 0.5, Lambda: 1, WindowFrames: 1},
			Stats:  Stats{Shards: []ShardStats{{}}},
		},
	}
	var buf bytes.Buffer
	if err := Write(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Engine.Config, want.Engine.Config) {
		t.Errorf("config: want %+v got %+v", want.Engine.Config, got.Engine.Config)
	}
	if len(got.Engine.Queries) != 0 || len(got.Engine.Seq) != 0 || len(got.Engine.Geo) != 0 {
		t.Errorf("empty sections came back non-empty: %+v", got.Engine)
	}
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleCheckpoint()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Flip one bit in the middle of the body: the trailer must catch it.
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := Read(bytes.NewReader(flipped)); err == nil {
		t.Error("bit flip in body not detected")
	}

	// Truncations anywhere must error, never panic or misread.
	for _, n := range []int{0, 5, 13, len(data) / 2, len(data) - 1} {
		if _, err := Read(bytes.NewReader(data[:n])); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}

	// Wrong magic.
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("wrong magic accepted")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := sampleCheckpoint()
	fp := Fingerprint(base.Meta, base.Engine.Config)
	perturb := []func(*Meta, *Config){
		func(m *Meta, c *Config) { m.U++ },
		func(m *Meta, c *Config) { m.D-- },
		func(m *Meta, c *Config) { m.KeyFPS = 3 },
		func(m *Meta, c *Config) { c.K++ },
		func(m *Meta, c *Config) { c.Seed++ },
		func(m *Meta, c *Config) { c.Delta += 0.01 },
		func(m *Meta, c *Config) { c.Lambda = 1.5 },
		func(m *Meta, c *Config) { c.WindowFrames++ },
		func(m *Meta, c *Config) { c.Order = 1 },
		func(m *Meta, c *Config) { c.Method = 1 },
		func(m *Meta, c *Config) { c.UseIndex = !c.UseIndex },
		func(m *Meta, c *Config) { c.DisablePrune = !c.DisablePrune },
	}
	for i, p := range perturb {
		m, c := base.Meta, base.Engine.Config
		p(&m, &c)
		if Fingerprint(m, c) == fp {
			t.Errorf("perturbation %d does not change the fingerprint", i)
		}
	}
}

func TestCompatibilityErrorNamesFields(t *testing.T) {
	m := Meta{U: 4, D: 5, KeyFPS: 2}
	c := Config{K: 800, Delta: 0.7, Lambda: 2, WindowFrames: 10}
	c2 := c
	c2.K = 400
	c2.Delta = 0.9
	err := CompatibilityError(m, m, c, c2)
	if err == nil {
		t.Fatal("mismatched configs produced no error")
	}
	for _, field := range []string{"K", "Delta"} {
		if !strings.Contains(err.Error(), field) {
			t.Errorf("error %q does not name mismatched field %s", err, field)
		}
	}
	if err := CompatibilityError(m, m, c, c); err != nil {
		t.Errorf("equal configs produced error: %v", err)
	}
}

// TestHeaderGolden pins the byte layout of the checkpoint header (magic,
// version, fingerprint) and the WAL header for a fixed configuration. If
// this test fails, the on-disk format changed: bump FormatVersion and
// regenerate the constants below — never ship a silent layout drift.
func TestHeaderGolden(t *testing.T) {
	c := &Checkpoint{
		Meta: Meta{U: 4, D: 5, KeyFPS: 2},
		Engine: EngineState{
			Config: Config{
				K: 800, Seed: 0, Delta: 0.7, Lambda: 2, WindowFrames: 10,
				Order: 0, Method: 0, UseIndex: true,
			},
		},
	}
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	// magic "VCKP" | version 0x0001 | FNV-1a fingerprint of meta+config.
	// Pinning the fingerprint bytes also pins the fingerprint algorithm:
	// changing it would orphan every deployed checkpoint.
	const wantHeader = "56434b50000168b80b607d7494f1"
	if got := hex.EncodeToString(buf.Bytes()[:14]); got != wantHeader {
		t.Errorf("checkpoint header drifted:\ngot  %s\nwant %s", got, wantHeader)
	}

	// WAL header golden: magic | version | fingerprint | base frame.
	dir := t.TempDir()
	w, err := CreateWAL(dir+"/wal", 0x0123456789abcdef, 77)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	data, err := os.ReadFile(dir + "/wal")
	if err != nil {
		t.Fatal(err)
	}
	const wantWAL = "5643574c00010123456789abcdef000000000000004d"
	if got := hex.EncodeToString(data); got != wantWAL {
		t.Errorf("WAL header drifted:\ngot  %s\nwant %s", got, wantWAL)
	}
}

// Frame write-ahead log. Between checkpoints, every cell id pushed into
// the engine is first appended here; recovery replays the tail through the
// ordinary matching kernel. Records are frame-granular so a crash loses at
// most the frames of one unsynced append, and the torn tail a crash can
// leave behind is detected and discarded rather than misread: every
// non-final byte of a varint has its continuation bit set, so no proper
// prefix of a record decodes as a complete record.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"vdsms/internal/telemetry"
)

// Durability-path telemetry: WAL appends and fsyncs bound the per-batch
// latency floor of a checkpointed monitor, and checkpoint writes bound its
// worst-case stall — the three durations perf work on the durability layer
// reports against.
var (
	telWALAppend = telemetry.Default.Histogram("vcd_wal_append_duration_seconds",
		"Duration of WAL batch appends (write syscall, pre-fsync).", telemetry.DurationBuckets)
	telWALFsync = telemetry.Default.Histogram("vcd_wal_fsync_duration_seconds",
		"Duration of WAL fsyncs.", telemetry.DurationBuckets)
	telWALFrames = telemetry.Default.Counter("vcd_wal_frames_total",
		"Frame records appended to WALs.")
	telCkptWrite = telemetry.Default.Histogram("vcd_checkpoint_write_duration_seconds",
		"Duration of atomic checkpoint writes (serialise, fsync, rename).", telemetry.DurationBuckets)
	telCkptTotal = telemetry.Default.Counter("vcd_checkpoints_total",
		"Checkpoints durably written.")
)

// WALMagic identifies a WAL file.
var WALMagic = [4]byte{'V', 'C', 'W', 'L'}

// walHeaderSize is magic(4) + version(2) + fingerprint(8) + baseFrame(8).
const walHeaderSize = 22

// walMarker precedes every record; a mismatch means corruption (not a torn
// tail) and fails the replay loudly.
const walMarker = 0xA5

// WAL is an append-only frame log bound to one checkpoint lineage: its
// header carries the checkpoint fingerprint (replaying frames into an
// incompatible engine is refused) and the stream frame index of its first
// record (so replay after a checkpoint newer than the log skips the
// already-checkpointed prefix instead of double-counting).
type WAL struct {
	f    *os.File
	path string
	buf  []byte
	// Frames counts records appended over the WAL's lifetime, including
	// those already in the file when it was opened.
	Frames int
}

// CreateWAL starts a fresh WAL at path, truncating any previous log. Call
// immediately after a checkpoint is durably renamed into place, with
// baseFrame = the checkpoint's frame position.
func CreateWAL(path string, fingerprint uint64, baseFrame int) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("snapshot: creating WAL: %w", err)
	}
	var hdr [walHeaderSize]byte
	copy(hdr[:4], WALMagic[:])
	binary.BigEndian.PutUint16(hdr[4:], FormatVersion)
	binary.BigEndian.PutUint64(hdr[6:], fingerprint)
	binary.BigEndian.PutUint64(hdr[14:], uint64(baseFrame))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("snapshot: writing WAL header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("snapshot: syncing WAL header: %w", err)
	}
	return &WAL{f: f, path: path}, nil
}

// Append logs one batch of cell ids as individual frame records with a
// single write syscall. Call Sync to make the batch durable.
func (w *WAL) Append(ids []uint64) error {
	if w.f == nil {
		return fmt.Errorf("snapshot: append to closed WAL")
	}
	var t0 time.Time
	if timed := telemetry.Enabled(); timed {
		t0 = time.Now()
		defer func() { telWALAppend.ObserveDuration(time.Since(t0)) }()
	}
	w.buf = w.buf[:0]
	for _, id := range ids {
		w.buf = append(w.buf, walMarker)
		w.buf = binary.AppendUvarint(w.buf, id)
	}
	if _, err := w.f.Write(w.buf); err != nil {
		return fmt.Errorf("snapshot: appending to WAL: %w", err)
	}
	w.Frames += len(ids)
	telWALFrames.Add(int64(len(ids)))
	return nil
}

// Sync flushes appended records to stable storage.
func (w *WAL) Sync() error {
	if w.f == nil {
		return nil
	}
	if !telemetry.Enabled() {
		return w.f.Sync()
	}
	t0 := time.Now()
	err := w.f.Sync()
	telWALFsync.ObserveDuration(time.Since(t0))
	return err
}

// Close syncs and closes the log file.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// ReplayWAL reads a WAL file back: its fingerprint, the stream frame index
// of the first record, and the logged cell ids. A torn final record (the
// footprint of a crash mid-append) is silently discarded; anything else
// malformed is an error. A missing, empty or header-truncated file — the
// footprint of a crash during WAL rotation, when the new checkpoint already
// covers every logged frame — replays as zero frames.
func ReplayWAL(path string) (fingerprint uint64, baseFrame int, ids []uint64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, nil, nil
		}
		return 0, 0, nil, fmt.Errorf("snapshot: reading WAL: %w", err)
	}
	if len(data) < walHeaderSize {
		return 0, 0, nil, nil // torn header: rotation crash, checkpoint covers it
	}
	if [4]byte(data[:4]) != WALMagic {
		return 0, 0, nil, fmt.Errorf("snapshot: %s is not a WAL file", path)
	}
	if v := binary.BigEndian.Uint16(data[4:]); v != FormatVersion {
		return 0, 0, nil, fmt.Errorf("snapshot: unsupported WAL version %d (this build reads %d)", v, FormatVersion)
	}
	fingerprint = binary.BigEndian.Uint64(data[6:])
	baseFrame = int(binary.BigEndian.Uint64(data[14:]))
	rest := data[walHeaderSize:]
	for len(rest) > 0 {
		if rest[0] != walMarker {
			return 0, 0, nil, fmt.Errorf("snapshot: WAL corrupt at record %d (marker %#02x)", len(ids), rest[0])
		}
		v, n := binary.Uvarint(rest[1:])
		if n <= 0 {
			break // torn tail: the crash interrupted this append
		}
		ids = append(ids, v)
		rest = rest[1+n:]
	}
	return fingerprint, baseFrame, ids, nil
}

// WriteFileAtomic writes data to path via a same-directory temp file,
// fsync, and rename, so a crash leaves either the old file or the new one —
// never a torn checkpoint.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	var t0 time.Time
	if timed := telemetry.Enabled(); timed {
		t0 = time.Now()
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".snapshot-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	telCkptTotal.Inc()
	if !t0.IsZero() {
		telCkptWrite.ObserveDuration(time.Since(t0))
	}
	return nil
}

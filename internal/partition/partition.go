// Package partition implements the paper's dimensionality reduction
// (Section III.A, Figure 1): a d-dimensional normalised feature vector is
// mapped to a single cell id by grid–pyramid partitioning. Each dimension
// is sliced into u grid segments; every grid cell is further divided into
// 2d pyramid sub-cells (Berchtold et al.'s pyramid technique), giving
// 2d·uᵈ cells in total with id = 2d·Og(f) + Op(f).
//
// Pure grid and pure pyramid schemes are also provided for the ablation of
// the paper's design rationale (grid-only suffers false negatives under
// small per-dimension drift; pyramid-only has too few cells and suffers
// false positives).
package partition

import "fmt"

// Scheme selects the partitioning strategy.
type Scheme int

const (
	// GridPyramid is the paper's scheme: grid cells refined by pyramids.
	GridPyramid Scheme = iota
	// Grid uses only the uᵈ grid cells.
	Grid
	// Pyramid uses only the 2d global pyramids.
	Pyramid
	// Ordinal identifies a frame by the rank permutation of its feature
	// values (d! cells) — the ordinal-measure baseline of the ablation
	// study; see OrdinalCell.
	Ordinal
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case GridPyramid:
		return "grid-pyramid"
	case Grid:
		return "grid"
	case Pyramid:
		return "pyramid"
	case Ordinal:
		return "ordinal"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Partitioner maps feature vectors in [0,1]^d to cell ids.
type Partitioner struct {
	U      int // grid slices per dimension
	D      int // dimensionality
	Scheme Scheme
}

// New builds a partitioner; u must be >= 1 and d >= 1.
func New(u, d int, scheme Scheme) (Partitioner, error) {
	if u < 1 {
		return Partitioner{}, fmt.Errorf("partition: u=%d must be >= 1", u)
	}
	if d < 1 {
		return Partitioner{}, fmt.Errorf("partition: d=%d must be >= 1", d)
	}
	// Cell ids must fit a uint64: 2d·u^d.
	cells := 2 * float64(d)
	for i := 0; i < d; i++ {
		cells *= float64(u)
		if cells > 1e18 {
			return Partitioner{}, fmt.Errorf("partition: 2d·u^d overflows for u=%d d=%d", u, d)
		}
	}
	return Partitioner{U: u, D: d, Scheme: scheme}, nil
}

// NumCells returns the size of the cell id space.
func (p Partitioner) NumCells() uint64 {
	grid := uint64(1)
	for i := 0; i < p.D; i++ {
		grid *= uint64(p.U)
	}
	switch p.Scheme {
	case Grid:
		return grid
	case Pyramid:
		return uint64(2 * p.D)
	case Ordinal:
		return ordinalCells(p.D)
	default:
		return uint64(2*p.D) * grid
	}
}

// Cell maps a feature vector (components in [0,1]; values outside are
// clamped) to its cell id. It panics if len(f) != d.
func (p Partitioner) Cell(f []float64) uint64 {
	if len(f) != p.D {
		panic(fmt.Sprintf("partition: feature has %d dims, partitioner expects %d", len(f), p.D))
	}
	switch p.Scheme {
	case Grid:
		og, _ := p.gridAndLocal(f, nil)
		return og
	case Pyramid:
		return uint64(pyramidOrder(f, p.D))
	case Ordinal:
		return OrdinalCell(f)
	default:
		local := make([]float64, p.D)
		og, _ := p.gridAndLocal(f, local)
		op := pyramidOrder(local, p.D)
		return uint64(2*p.D)*og + uint64(op)
	}
}

// CellInto is Cell with a caller-provided scratch buffer (len >= d) to avoid
// per-call allocation on hot paths.
func (p Partitioner) CellInto(f, scratch []float64) uint64 {
	if p.Scheme != GridPyramid {
		return p.Cell(f)
	}
	if len(f) != p.D {
		panic(fmt.Sprintf("partition: feature has %d dims, partitioner expects %d", len(f), p.D))
	}
	og, _ := p.gridAndLocal(f, scratch[:p.D])
	op := pyramidOrder(scratch[:p.D], p.D)
	return uint64(2*p.D)*og + uint64(op)
}

// gridAndLocal computes the row-major grid order Og and, when local is
// non-nil, fills it with the cell-local coordinates in [0,1).
func (p Partitioner) gridAndLocal(f []float64, local []float64) (uint64, []float64) {
	var og uint64
	for i := 0; i < p.D; i++ {
		v := f[i]
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		scaled := v * float64(p.U)
		si := int(scaled)
		if si >= p.U {
			si = p.U - 1
		}
		og = og*uint64(p.U) + uint64(si)
		if local != nil {
			l := scaled - float64(si)
			if l < 0 {
				l = 0
			}
			if l >= 1 {
				l = 1 - 1e-12
			}
			local[i] = l
		}
	}
	return og, local
}

// pyramidOrder computes Op for a point with per-dimension coordinates in
// [0,1): jmax = argmax_j |v_j − 0.5| (ties broken by the smallest j), and
// Op = jmax when v_jmax < 0.5, else jmax + d. This follows the pyramid
// technique of Berchtold, Böhm and Kriegel cited by the paper.
func pyramidOrder(v []float64, d int) int {
	jmax, best := 0, -1.0
	for j := 0; j < d; j++ {
		dev := v[j] - 0.5
		if dev < 0 {
			dev = -dev
		}
		if dev > best {
			best = dev
			jmax = j
		}
	}
	if v[jmax] < 0.5 {
		return jmax
	}
	return jmax + d
}

package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(4, 5, GridPyramid); err != nil {
		t.Errorf("valid partitioner rejected: %v", err)
	}
	if _, err := New(0, 5, Grid); err == nil {
		t.Error("u=0 accepted")
	}
	if _, err := New(4, 0, Grid); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := New(1000, 10, GridPyramid); err == nil {
		t.Error("overflowing cell space accepted")
	}
}

func TestNumCells(t *testing.T) {
	for _, tc := range []struct {
		u, d   int
		scheme Scheme
		want   uint64
	}{
		{4, 5, GridPyramid, 10 * 1024}, // 2·5·4⁵
		{4, 5, Grid, 1024},
		{4, 5, Pyramid, 10},
		{2, 3, GridPyramid, 48},
	} {
		p, err := New(tc.u, tc.d, tc.scheme)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.NumCells(); got != tc.want {
			t.Errorf("NumCells(u=%d,d=%d,%v) = %d, want %d", tc.u, tc.d, tc.scheme, got, tc.want)
		}
	}
}

func TestCellInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, scheme := range []Scheme{GridPyramid, Grid, Pyramid} {
		p, _ := New(4, 5, scheme)
		for trial := 0; trial < 500; trial++ {
			f := make([]float64, 5)
			for i := range f {
				f[i] = rng.Float64()
			}
			id := p.Cell(f)
			if id >= p.NumCells() {
				t.Fatalf("%v: cell %d >= NumCells %d for %v", scheme, id, p.NumCells(), f)
			}
		}
	}
}

func TestCellBoundaryValues(t *testing.T) {
	p, _ := New(4, 3, GridPyramid)
	for _, f := range [][]float64{
		{0, 0, 0}, {1, 1, 1}, {0.5, 0.5, 0.5}, {1, 0, 0.9999999},
		{-0.1, 1.2, 0.5}, // out-of-range clamps
	} {
		if id := p.Cell(f); id >= p.NumCells() {
			t.Errorf("boundary %v → cell %d out of range", f, id)
		}
	}
}

func TestGridOrderRowMajor(t *testing.T) {
	p, _ := New(4, 2, Grid)
	// Feature (0.1, 0.1) → slices (0,0) → id 0.
	if id := p.Cell([]float64{0.1, 0.1}); id != 0 {
		t.Errorf("cell(0.1,0.1) = %d, want 0", id)
	}
	// (0.9, 0.1) → slices (3, 0) → 3·4 + 0 = 12.
	if id := p.Cell([]float64{0.9, 0.1}); id != 12 {
		t.Errorf("cell(0.9,0.1) = %d, want 12", id)
	}
	// (0.1, 0.9) → slices (0, 3) → 3.
	if id := p.Cell([]float64{0.1, 0.9}); id != 3 {
		t.Errorf("cell(0.1,0.9) = %d, want 3", id)
	}
}

func TestPyramidOrder(t *testing.T) {
	p, _ := New(1, 2, Pyramid)
	// Point (0.1, 0.5): dim 0 deviates most and is below centre → Op = 0.
	if id := p.Cell([]float64{0.1, 0.5}); id != 0 {
		t.Errorf("Op(0.1,0.5) = %d, want 0", id)
	}
	// Point (0.9, 0.5): dim 0 deviates most, above centre → Op = 0 + d = 2.
	if id := p.Cell([]float64{0.9, 0.5}); id != 2 {
		t.Errorf("Op(0.9,0.5) = %d, want 2", id)
	}
	// Point (0.5, 0.1): dim 1 below centre → Op = 1.
	if id := p.Cell([]float64{0.5, 0.1}); id != 1 {
		t.Errorf("Op(0.5,0.1) = %d, want 1", id)
	}
	// Point (0.5, 0.95): dim 1 above centre → Op = 3.
	if id := p.Cell([]float64{0.5, 0.95}); id != 3 {
		t.Errorf("Op(0.5,0.95) = %d, want 3", id)
	}
}

func TestGridPyramidComposition(t *testing.T) {
	p, _ := New(2, 2, GridPyramid)
	// f = (0.25, 0.25): grid slices (0,0) → Og = 0. Local coords (0.5, 0.5):
	// tie on deviation 0, jmax = 0, v >= 0.5 → Op = 0 + 2 = 2. id = 4·0+2 = 2.
	if id := p.Cell([]float64{0.25, 0.25}); id != 2 {
		t.Errorf("cell(0.25,0.25) = %d, want 2", id)
	}
	// f = (0.6, 0.1): slices (1, 0) → Og = 2. Locals (0.2, 0.2): both deviate
	// −0.3, jmax = 0, below → Op = 0. id = 2·2·2 + 0 = 8.
	if id := p.Cell([]float64{0.6, 0.1}); id != 8 {
		t.Errorf("cell(0.6,0.1) = %d, want 8", id)
	}
}

// The paper's rationale: small per-dimension perturbations that do not
// change jmax keep the pyramid sub-cell stable, whereas grid ids flip when
// any dimension crosses a slice boundary.
func TestPyramidRobustToNonMaxPerturbation(t *testing.T) {
	p, _ := New(1, 5, Pyramid)
	f := []float64{0.95, 0.5, 0.45, 0.55, 0.5} // dim 0 dominates
	base := p.Cell(f)
	g := append([]float64(nil), f...)
	g[2] = 0.55 // perturb a non-dominant dim
	g[3] = 0.45
	if p.Cell(g) != base {
		t.Error("pyramid id changed under non-dominant perturbation")
	}
}

func TestCellIntoMatchesCell(t *testing.T) {
	p, _ := New(4, 5, GridPyramid)
	rng := rand.New(rand.NewSource(2))
	scratch := make([]float64, 5)
	for trial := 0; trial < 200; trial++ {
		f := make([]float64, 5)
		for i := range f {
			f[i] = rng.Float64()
		}
		if p.Cell(f) != p.CellInto(f, scratch) {
			t.Fatalf("CellInto diverges from Cell on %v", f)
		}
	}
}

func TestCellPanicsOnWrongDim(t *testing.T) {
	p, _ := New(4, 5, GridPyramid)
	defer func() {
		if recover() == nil {
			t.Error("Cell with wrong dimensionality did not panic")
		}
	}()
	p.Cell([]float64{0.5, 0.5})
}

// Property: the grid-pyramid id always decomposes into a valid (Og, Op)
// pair, and nearby points in the same grid cell with the same dominant
// deviation share a cell.
func TestPropertyCellDecomposition(t *testing.T) {
	p, _ := New(4, 3, GridPyramid)
	f := func(a, b, c float64) bool {
		v := []float64{frac(a), frac(b), frac(c)}
		id := p.Cell(v)
		op := id % uint64(2*p.D)
		og := id / uint64(2*p.D)
		return op < uint64(2*p.D) && og < 64 // 4³ grid cells
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func frac(x float64) float64 {
	if x < 0 {
		x = -x
	}
	x -= float64(int64(x))
	return x
}

func TestJaccard(t *testing.T) {
	for _, tc := range []struct {
		a, b []uint64
		want float64
	}{
		{[]uint64{1, 2, 3}, []uint64{1, 2, 3}, 1},
		{[]uint64{1, 2, 3}, []uint64{4, 5, 6}, 0},
		{[]uint64{1, 2, 3, 4}, []uint64{3, 4, 5, 6}, 1.0 / 3},
		{[]uint64{1, 1, 2, 2}, []uint64{1, 2}, 1}, // duplicates collapse
		{nil, nil, 0},
		{[]uint64{1}, nil, 0},
	} {
		if got := Jaccard(tc.a, tc.b); got != tc.want {
			t.Errorf("Jaccard(%v,%v) = %g, want %g", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestJaccardSymmetric(t *testing.T) {
	f := func(a, b []uint64) bool {
		return Jaccard(a, b) == Jaccard(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContains(t *testing.T) {
	if got := Contains([]uint64{1, 2}, []uint64{1, 2, 3, 4}); got != 1 {
		t.Errorf("Contains full = %g", got)
	}
	if got := Contains([]uint64{1, 2, 5, 6}, []uint64{1, 2, 3}); got != 0.5 {
		t.Errorf("Contains half = %g", got)
	}
	if got := Contains(nil, []uint64{1}); got != 0 {
		t.Errorf("Contains empty query = %g", got)
	}
}

func TestJaccardReorderInvariance(t *testing.T) {
	// Set similarity is invariant to sequence order — the core robustness
	// property of Definition 2.
	a := []uint64{5, 9, 2, 7, 4, 1}
	b := []uint64{1, 2, 4, 5, 7, 9}
	if got := Jaccard(a, b); got != 1 {
		t.Errorf("reordered identical sets Jaccard = %g, want 1", got)
	}
}

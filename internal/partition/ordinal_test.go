package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOrdinalCells(t *testing.T) {
	for _, tc := range []struct {
		d    int
		want uint64
	}{{1, 1}, {2, 2}, {3, 6}, {5, 120}, {7, 5040}} {
		if got := ordinalCells(tc.d); got != tc.want {
			t.Errorf("ordinalCells(%d) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestOrdinalCellKnownPermutations(t *testing.T) {
	// d=2: ascending (0,1) and descending (1,0) must map to distinct ids
	// covering [0, 2).
	a := OrdinalCell([]float64{0.1, 0.9})
	b := OrdinalCell([]float64{0.9, 0.1})
	if a == b || a >= 2 || b >= 2 {
		t.Errorf("d=2 ordinal ids %d, %d", a, b)
	}
}

func TestOrdinalCellBijective(t *testing.T) {
	// All 120 rank permutations of 5 distinct values map to distinct ids.
	vals := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	seen := make(map[uint64]bool)
	var permute func(v []float64, k int)
	permute = func(v []float64, k int) {
		if k == len(v) {
			id := OrdinalCell(v)
			if id >= 120 {
				t.Fatalf("id %d out of range for %v", id, v)
			}
			if seen[id] {
				t.Fatalf("duplicate id %d for %v", id, v)
			}
			seen[id] = true
			return
		}
		for i := k; i < len(v); i++ {
			v[k], v[i] = v[i], v[k]
			permute(v, k+1)
			v[k], v[i] = v[i], v[k]
		}
	}
	permute(vals, 0)
	if len(seen) != 120 {
		t.Fatalf("%d distinct ids, want 120", len(seen))
	}
}

func TestOrdinalMonotoneInvariance(t *testing.T) {
	// The ordinal id is invariant under any strictly monotone transform of
	// the feature values — its defining property.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		f := make([]float64, 5)
		for i := range f {
			f[i] = rng.Float64()
		}
		g := make([]float64, 5)
		for i := range g {
			g[i] = f[i]*f[i]*0.5 + 0.3*f[i] // strictly increasing on [0,1]
		}
		if OrdinalCell(f) != OrdinalCell(g) {
			t.Fatalf("ordinal id changed under monotone transform: %v", f)
		}
	}
}

func TestOrdinalTieBreakDeterministic(t *testing.T) {
	f := []float64{0.5, 0.5, 0.5}
	if OrdinalCell(f) != OrdinalCell([]float64{0.5, 0.5, 0.5}) {
		t.Error("ties nondeterministic")
	}
}

func TestOrdinalScheme(t *testing.T) {
	p, err := New(4, 5, Ordinal)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCells() != 120 {
		t.Errorf("NumCells = %d", p.NumCells())
	}
	if p.Scheme.String() != "ordinal" {
		t.Errorf("String = %q", p.Scheme)
	}
	rng := rand.New(rand.NewSource(2))
	scratch := make([]float64, 5)
	for trial := 0; trial < 200; trial++ {
		f := make([]float64, 5)
		for i := range f {
			f[i] = rng.Float64()
		}
		id := p.Cell(f)
		if id >= 120 {
			t.Fatalf("cell %d out of range", id)
		}
		if p.CellInto(f, scratch) != id {
			t.Fatal("CellInto != Cell for ordinal")
		}
	}
}

// Property: OrdinalCell is always in range and deterministic.
func TestPropertyOrdinalRange(t *testing.T) {
	f := func(a, b, c, d, e float64) bool {
		v := []float64{frac(a), frac(b), frac(c), frac(d), frac(e)}
		id := OrdinalCell(v)
		return id < 120 && id == OrdinalCell(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

package partition

// Ordinal-rank signatures: an alternative frame fingerprint in the spirit
// of the ordinal measures used by Kim & Vasudev [9] and Hampapur et al.
// [1], provided for the ablation study. Instead of quantising feature
// *values* into grid/pyramid cells, the frame is identified by the rank
// permutation of its d block averages — fully invariant to any monotone
// per-frame intensity transform, but with only d! distinguishable
// signatures (120 for d = 5), so collisions between different contents are
// far more common than under grid–pyramid partitioning.

// ordinalCells returns d! (the size of the ordinal id space).
func ordinalCells(d int) uint64 {
	out := uint64(1)
	for i := 2; i <= d; i++ {
		out *= uint64(i)
	}
	return out
}

// OrdinalCell maps a feature vector to the Lehmer code of its rank
// permutation: id ∈ [0, d!). Ties break by dimension index, so the mapping
// is total and deterministic.
func OrdinalCell(f []float64) uint64 {
	d := len(f)
	// perm[i] = rank position of dimension i when sorting by value
	// (stable): compute the permutation that sorts f ascending.
	order := make([]int, d)
	for i := range order {
		order[i] = i
	}
	// Insertion sort: d is tiny (3..7).
	for i := 1; i < d; i++ {
		j := i
		for j > 0 && (f[order[j-1]] > f[order[j]] ||
			(f[order[j-1]] == f[order[j]] && order[j-1] > order[j])) {
			order[j-1], order[j] = order[j], order[j-1]
			j--
		}
	}
	// Lehmer code of the order permutation.
	var id uint64
	used := make([]bool, d)
	for i := 0; i < d; i++ {
		smaller := 0
		for k := 0; k < order[i]; k++ {
			if !used[k] {
				smaller++
			}
		}
		used[order[i]] = true
		id = id*uint64(d-i) + uint64(smaller)
	}
	return id
}

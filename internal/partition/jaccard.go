package partition

// Jaccard computes the exact set similarity |A∩B| / |A∪B| of two id
// sequences, deduplicating repeated ids (Definition 2 of the paper treats
// video sequences as sets of cell ids). Two empty sequences have
// similarity 0.
func Jaccard(a, b []uint64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	sa := make(map[uint64]struct{}, len(a))
	for _, x := range a {
		sa[x] = struct{}{}
	}
	sb := make(map[uint64]struct{}, len(b))
	for _, x := range b {
		sb[x] = struct{}{}
	}
	inter := 0
	for x := range sa {
		if _, ok := sb[x]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Contains reports the fraction of distinct ids of q present in p
// (asymmetric containment |Q∩P| / |Q|), useful when a short query is sought
// inside a longer candidate.
func Contains(q, p []uint64) float64 {
	if len(q) == 0 {
		return 0
	}
	sq := make(map[uint64]struct{}, len(q))
	for _, x := range q {
		sq[x] = struct{}{}
	}
	sp := make(map[uint64]struct{}, len(p))
	for _, x := range p {
		sp[x] = struct{}{}
	}
	inter := 0
	for x := range sq {
		if _, ok := sp[x]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(sq))
}

package stats

import (
	"strings"
	"testing"
	"time"
)

func TestTimerAccumulates(t *testing.T) {
	var tm Timer
	tm.Start()
	time.Sleep(2 * time.Millisecond)
	tm.Stop()
	first := tm.Elapsed()
	if first < time.Millisecond {
		t.Errorf("elapsed %v after 2ms sleep", first)
	}
	tm.Start()
	time.Sleep(2 * time.Millisecond)
	tm.Stop()
	if tm.Elapsed() <= first {
		t.Error("second interval not accumulated")
	}
	tm.Reset()
	if tm.Elapsed() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestTimerIdempotentStartStop(t *testing.T) {
	var tm Timer
	tm.Start()
	tm.Start() // no-op
	tm.Stop()
	e := tm.Elapsed()
	tm.Stop() // no-op
	if tm.Elapsed() != e {
		t.Error("double Stop changed elapsed")
	}
}

func TestTimerElapsedWhileRunning(t *testing.T) {
	var tm Timer
	tm.Start()
	time.Sleep(time.Millisecond)
	if tm.Elapsed() == 0 {
		t.Error("Elapsed while running returned 0")
	}
}

func TestTime(t *testing.T) {
	d := Time(func() { time.Sleep(time.Millisecond) })
	if d < time.Millisecond {
		t.Errorf("Time measured %v", d)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig X", "param", "value", "time")
	tb.AddRow(100, 0.123456, 2500*time.Microsecond)
	tb.AddRow("long-param-name", 1.0, time.Millisecond)
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	s := tb.String()
	for _, want := range []string{"# Fig X", "param", "0.123", "2.50ms", "long-param-name", "1.000"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
	// Columns aligned: header line and first data line share the position
	// of the second column.
	lines := strings.Split(s, "\n")
	header, data := lines[1], lines[3]
	if strings.Index(header, "value") != strings.Index(data, "0.123") {
		t.Errorf("columns misaligned:\n%s", s)
	}
}

func TestTableEmpty(t *testing.T) {
	tb := NewTable("", "a")
	s := tb.String()
	if !strings.Contains(s, "a") {
		t.Error("empty table lacks header")
	}
}

func TestWriteCSV(t *testing.T) {
	tb := NewTable("ignored", "a", "b")
	tb.AddRow("plain", 1.5)
	tb.AddRow("with,comma", `quote"inside`)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "a,b\nplain,1.500\n\"with,comma\",\"quote\"\"inside\"\n"
	if got != want {
		t.Errorf("CSV output:\n%q\nwant:\n%q", got, want)
	}
}

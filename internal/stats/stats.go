// Package stats provides the small measurement utilities shared by the
// experiment harness: CPU timers and fixed-width result tables that print
// the same rows/series the paper's tables and figures report.
package stats

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Timer measures wall-clock processing time of a code region.
type Timer struct {
	start   time.Time
	elapsed time.Duration
	running bool
}

// Start begins (or resumes) timing.
func (t *Timer) Start() {
	if !t.running {
		t.start = time.Now()
		t.running = true
	}
}

// Stop pauses timing, accumulating the elapsed interval.
func (t *Timer) Stop() {
	if t.running {
		t.elapsed += time.Since(t.start)
		t.running = false
	}
}

// Elapsed returns the accumulated duration.
func (t *Timer) Elapsed() time.Duration {
	if t.running {
		return t.elapsed + time.Since(t.start)
	}
	return t.elapsed
}

// Reset clears the timer.
func (t *Timer) Reset() { *t = Timer{} }

// Time runs fn and returns its duration.
func Time(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// Table accumulates rows and renders them with aligned columns, suitable
// for regenerating the paper's tables and figure series as text.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.2fms", float64(v.Microseconds())/1000)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.WriteTo(&b)
	return b.String()
}

// WriteCSV renders the table as RFC-4180-ish CSV (header row first; cells
// containing commas or quotes are quoted).
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// Package feature implements the paper's compressed-domain frame
// fingerprint front end (Section III.A): each key frame's DC coefficients
// are spatially pooled into D equal blocks, the D block averages are
// min–max normalised to [0,1] (equation 1), and d of the D values are
// selected as the frame's feature vector. The normalised ordinal structure
// of these block averages is what survives brightness/colour/resolution
// edits across different copies of the same content.
package feature

import (
	"fmt"
	"math"
	"sort"

	"vdsms/internal/mpeg"
)

// Config parameterises the extractor.
type Config struct {
	// GridW×GridH is the spatial pooling grid: D = GridW·GridH blocks.
	// The paper partitions frames into 3×3 blocks.
	GridW, GridH int
	// D is the number of selected dimensions d ∈ [1, GridW·GridH].
	// The paper varies d in [3,7] with default 5.
	D int
	// Select optionally fixes which pooled blocks form the feature vector
	// (indices into the row-major D grid). When nil, DefaultSelection is
	// used.
	Select []int
}

func (c *Config) defaults() {
	if c.GridW == 0 {
		c.GridW = 3
	}
	if c.GridH == 0 {
		c.GridH = 3
	}
	if c.D == 0 {
		c.D = 5
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	c.defaults()
	total := c.GridW * c.GridH
	if c.D < 1 || c.D > total {
		return fmt.Errorf("feature: d=%d out of [1,%d]", c.D, total)
	}
	if c.Select != nil {
		if len(c.Select) != c.D {
			return fmt.Errorf("feature: selection of %d blocks but d=%d", len(c.Select), c.D)
		}
		seen := make(map[int]bool)
		for _, s := range c.Select {
			if s < 0 || s >= total || seen[s] {
				return fmt.Errorf("feature: invalid selection %v", c.Select)
			}
			seen[s] = true
		}
	}
	return nil
}

// DefaultSelection returns the canonical d-block selection for a gw×gh
// pooling grid: blocks ordered by distance from the frame centre
// (centre first, then corners, then edges) so small d still spans the
// frame. Ties break by row-major index for determinism.
func DefaultSelection(gw, gh, d int) []int {
	type cand struct {
		idx  int
		dist float64
	}
	cx, cy := float64(gw-1)/2, float64(gh-1)/2
	cands := make([]cand, 0, gw*gh)
	for y := 0; y < gh; y++ {
		for x := 0; x < gw; x++ {
			dx, dy := float64(x)-cx, float64(y)-cy
			cands = append(cands, cand{idx: y*gw + x, dist: dx*dx + dy*dy})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].idx < cands[j].idx
	})
	out := make([]int, d)
	for i := range out {
		out[i] = cands[i].idx
	}
	return out
}

// Extractor converts partial-decode DC grids into normalised feature
// vectors. It is safe for concurrent use.
type Extractor struct {
	cfg    Config
	sel    []int
	pooled []float64 // scratch, guarded by value semantics: see Vector
}

// NewExtractor validates cfg and builds an extractor.
func NewExtractor(cfg Config) (*Extractor, error) {
	cfg.defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sel := cfg.Select
	if sel == nil {
		sel = DefaultSelection(cfg.GridW, cfg.GridH, cfg.D)
	}
	return &Extractor{cfg: cfg, sel: sel}, nil
}

// Config returns the effective configuration (defaults applied).
func (e *Extractor) Config() Config { return e.cfg }

// Selection returns the block indices that form the feature vector.
func (e *Extractor) Selection() []int { return append([]int(nil), e.sel...) }

// Vector computes the d-dimensional normalised feature of one DC frame.
// Each returned component lies in [0,1]. A flat frame (all block averages
// equal) maps to the all-0.5 vector.
func (e *Extractor) Vector(dcf *mpeg.DCFrame) []float64 {
	pooled := e.Pool(dcf)
	normalise(pooled)
	out := make([]float64, e.cfg.D)
	for i, s := range e.sel {
		out[i] = pooled[s]
	}
	return out
}

// FromPooled derives the normalised, selected feature vector from raw
// pooled block averages (as produced by Pool). It lets parameter sweeps
// cache the expensive codec pipeline once per stream and re-derive vectors
// for any d cheaply. pooled is not modified.
func (e *Extractor) FromPooled(pooled []float64) []float64 {
	if len(pooled) != e.cfg.GridW*e.cfg.GridH {
		panic(fmt.Sprintf("feature: pooled length %d, grid %dx%d",
			len(pooled), e.cfg.GridW, e.cfg.GridH))
	}
	tmp := append([]float64(nil), pooled...)
	normalise(tmp)
	out := make([]float64, e.cfg.D)
	for i, s := range e.sel {
		out[i] = tmp[s]
	}
	return out
}

// Pool computes the D raw block averages of a DC frame: the frame is
// partitioned into GridW×GridH equal-area regions and each region averages
// the DC values it covers. DC blocks straddling a region boundary
// contribute fractionally by overlap, so pooled values are consistent
// across resolutions whose block grids do not divide evenly by the pooling
// grid (a resized copy must pool to nearly the same values as the
// original). Returned values are unnormalised.
func (e *Extractor) Pool(dcf *mpeg.DCFrame) []float64 {
	gw, gh := e.cfg.GridW, e.cfg.GridH
	wx := overlapWeights(dcf.BW, gw)
	wy := overlapWeights(dcf.BH, gh)
	sums := make([]float64, gw*gh)
	weights := make([]float64, gw*gh)
	for by := 0; by < dcf.BH; by++ {
		for bx := 0; bx < dcf.BW; bx++ {
			dc := dcf.DC[by*dcf.BW+bx]
			for _, oy := range wy[by] {
				for _, ox := range wx[bx] {
					w := ox.w * oy.w
					idx := oy.region*gw + ox.region
					sums[idx] += dc * w
					weights[idx] += w
				}
			}
		}
	}
	for i := range sums {
		if weights[i] > 0 {
			sums[i] /= weights[i]
		}
	}
	return sums
}

// overlap is one (region, weight) contribution of a block along one axis.
type overlap struct {
	region int
	w      float64
}

// overlapWeights returns, for each of n blocks along an axis, its overlap
// fractions with g equal regions.
func overlapWeights(n, g int) [][]overlap {
	out := make([][]overlap, n)
	for b := 0; b < n; b++ {
		lo := float64(b) * float64(g) / float64(n)
		hi := float64(b+1) * float64(g) / float64(n)
		for r := int(lo); r < g && float64(r) < hi; r++ {
			start := math.Max(lo, float64(r))
			end := math.Min(hi, float64(r+1))
			if end > start {
				out[b] = append(out[b], overlap{region: r, w: (end - start) / (hi - lo)})
			}
		}
	}
	return out
}

// normalise applies the paper's equation (1) in place:
// C_i = (C̃_i − C̃_min) / (C̃_max − C̃_min).
func normalise(v []float64) {
	lo, hi := v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	// Degenerate (flat) frames normalise to 0.5 everywhere; the epsilon
	// absorbs float rounding from fractional pooling so a constant frame
	// does not explode into arbitrary 0/1 extremes.
	if hi-lo < 1e-6 {
		for i := range v {
			v[i] = 0.5
		}
		return
	}
	for i := range v {
		v[i] = (v[i] - lo) / (hi - lo)
	}
}

package feature

import (
	"bytes"
	"math"
	"testing"

	"vdsms/internal/edit"
	"vdsms/internal/mpeg"
	"vdsms/internal/vframe"
)

// dcFrames encodes src at the given quality with GOP 1 and returns the
// partially decoded DC grids.
func dcFrames(t testing.TB, src vframe.Source, quality int) []*mpeg.DCFrame {
	t.Helper()
	var buf bytes.Buffer
	if _, err := mpeg.EncodeSource(&buf, src, quality, 1); err != nil {
		t.Fatal(err)
	}
	dcs, _, err := mpeg.ReadAllDC(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return dcs
}

func synthetic(n int, seed int64) vframe.Source {
	return vframe.NewSynth(vframe.SynthConfig{W: 96, H: 80, NumFrames: n, Seed: seed, FPS: 30})
}

func TestConfigValidate(t *testing.T) {
	good := Config{GridW: 3, GridH: 3, D: 5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{GridW: 3, GridH: 3, D: 10},
		{GridW: 3, GridH: 3, D: -1},
		{GridW: 3, GridH: 3, D: 3, Select: []int{0, 1}},
		{GridW: 3, GridH: 3, D: 3, Select: []int{0, 0, 1}},
		{GridW: 3, GridH: 3, D: 3, Select: []int{0, 1, 9}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, c)
		}
	}
}

func TestDefaultSelectionSpread(t *testing.T) {
	sel := DefaultSelection(3, 3, 5)
	if len(sel) != 5 {
		t.Fatalf("selection length %d", len(sel))
	}
	if sel[0] != 4 {
		t.Errorf("first selected block %d, want centre (4)", sel[0])
	}
	seen := make(map[int]bool)
	for _, s := range sel {
		if s < 0 || s >= 9 || seen[s] {
			t.Fatalf("bad selection %v", sel)
		}
		seen[s] = true
	}
	// d = D selects everything.
	all := DefaultSelection(3, 3, 9)
	if len(all) != 9 {
		t.Errorf("full selection length %d", len(all))
	}
}

func TestVectorRangeAndDim(t *testing.T) {
	ex, err := NewExtractor(Config{D: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, dcf := range dcFrames(t, synthetic(4, 1), 80) {
		v := ex.Vector(dcf)
		if len(v) != 5 {
			t.Fatalf("vector length %d", len(v))
		}
		for i, x := range v {
			if x < 0 || x > 1 {
				t.Fatalf("component %d = %g outside [0,1]", i, x)
			}
		}
	}
}

func TestVectorNormalisationHitsBounds(t *testing.T) {
	ex, err := NewExtractor(Config{GridW: 3, GridH: 3, D: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, dcf := range dcFrames(t, synthetic(2, 2), 80) {
		v := ex.Vector(dcf)
		var hasZero, hasOne bool
		for _, x := range v {
			if x == 0 {
				hasZero = true
			}
			if x == 1 {
				hasOne = true
			}
		}
		if !hasZero || !hasOne {
			t.Errorf("min-max normalised vector %v lacks 0 and 1 extremes", v)
		}
	}
}

func TestFlatFrameIsHalf(t *testing.T) {
	// A constant frame has equal block averages → all components 0.5.
	f := vframe.NewFrame(96, 80)
	for i := range f.Y {
		f.Y[i] = 90
	}
	src := vframe.FromFrames([]*vframe.Frame{f}, 30)
	ex, _ := NewExtractor(Config{D: 5})
	v := ex.Vector(dcFrames(t, src, 80)[0])
	for i, x := range v {
		if x != 0.5 {
			t.Errorf("flat frame component %d = %g, want 0.5", i, x)
		}
	}
}

func TestBrightnessInvariance(t *testing.T) {
	// Min-max normalisation should make features nearly invariant to a
	// global brightness change (the key robustness claim of III.A).
	src := synthetic(3, 3)
	bright := edit.Brightness(src, 25)
	ex, _ := NewExtractor(Config{D: 5})
	a := dcFrames(t, src, 85)
	b := dcFrames(t, bright, 85)
	for i := range a {
		va, vb := ex.Vector(a[i]), ex.Vector(b[i])
		for j := range va {
			if math.Abs(va[j]-vb[j]) > 0.12 {
				t.Errorf("frame %d dim %d: %g vs %g after +25 brightness", i, j, va[j], vb[j])
			}
		}
	}
}

func TestResolutionRobustness(t *testing.T) {
	src := synthetic(3, 4)
	rescaled := edit.Rescale(src, 64, 48)
	ex, _ := NewExtractor(Config{D: 5})
	a := dcFrames(t, src, 85)
	b := dcFrames(t, rescaled, 85)
	for i := range a {
		va, vb := ex.Vector(a[i]), ex.Vector(b[i])
		for j := range va {
			if math.Abs(va[j]-vb[j]) > 0.2 {
				t.Errorf("frame %d dim %d: %g vs %g after rescale", i, j, va[j], vb[j])
			}
		}
	}
}

func TestDistinctContentDiffers(t *testing.T) {
	ex, _ := NewExtractor(Config{D: 5})
	a := dcFrames(t, synthetic(1, 5), 85)
	b := dcFrames(t, synthetic(1, 6), 85)
	va, vb := ex.Vector(a[0]), ex.Vector(b[0])
	var dist float64
	for j := range va {
		dist += math.Abs(va[j] - vb[j])
	}
	if dist < 0.1 {
		t.Errorf("features of distinct videos nearly identical: %v vs %v", va, vb)
	}
}

func TestPoolPartitionsAllBlocks(t *testing.T) {
	ex, _ := NewExtractor(Config{GridW: 3, GridH: 3, D: 9})
	dcf := dcFrames(t, synthetic(1, 7), 80)[0]
	pooled := ex.Pool(dcf)
	if len(pooled) != 9 {
		t.Fatalf("pooled length %d", len(pooled))
	}
	// The 9 regions have equal area, so the unweighted mean of the pooled
	// values equals the mean of all DC values.
	var direct float64
	for _, v := range dcf.DC {
		direct += v
	}
	direct /= float64(len(dcf.DC))
	var pooledAvg float64
	for _, p := range pooled {
		pooledAvg += p
	}
	pooledAvg /= 9
	if math.Abs(direct-pooledAvg) > 1e-6 {
		t.Errorf("pooling lost mass: %g vs %g", direct, pooledAvg)
	}
}

// TestPoolResolutionConsistency: pooled values of the same content at two
// resolutions must agree closely — the property integer block assignment
// lacked.
func TestPoolResolutionConsistency(t *testing.T) {
	src := synthetic(2, 9)
	small := edit.Rescale(src, 64, 48)
	ex, _ := NewExtractor(Config{GridW: 3, GridH: 3, D: 9})
	a := dcFrames(t, src, 90)
	b := dcFrames(t, small, 90)
	for i := range a {
		pa, pb := ex.Pool(a[i]), ex.Pool(b[i])
		// Normalise scale: compare region values relative to their range.
		lo, hi := pa[0], pa[0]
		for _, v := range pa {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		for j := range pa {
			if hi > lo && math.Abs(pa[j]-pb[j])/(hi-lo) > 0.12 {
				t.Errorf("frame %d region %d: %g vs %g across resolutions", i, j, pa[j], pb[j])
			}
		}
	}
}

func TestCustomSelection(t *testing.T) {
	ex, err := NewExtractor(Config{GridW: 3, GridH: 3, D: 3, Select: []int{0, 4, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if got := ex.Selection(); got[0] != 0 || got[1] != 4 || got[2] != 8 {
		t.Errorf("Selection = %v", got)
	}
	dcf := dcFrames(t, synthetic(1, 8), 80)[0]
	if v := ex.Vector(dcf); len(v) != 3 {
		t.Errorf("custom selection vector length %d", len(v))
	}
}

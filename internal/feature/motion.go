// Compressed-domain motion proxy for the adaptive-ingest sampler: how much
// a key frame's DC grid moved relative to the previous key frame. The DC
// grid is already in hand after partial decode, so the score costs one pass
// over BW×BH values — no pixels, no extraction, no allocation.
package feature

import "vdsms/internal/mpeg"

// MotionScorer scores consecutive DC frames by mean absolute DC delta — a
// cheap motion/scene-change proxy in the same spirit as the encoder's SAD
// search (internal/mpeg/motion.go), but over the 8×8-block DC plane the
// partial decoder produces anyway. High scores mean high-motion content
// whose frames carry fresh information; near-zero scores mean static
// content where neighbouring frames fingerprint almost identically, which
// is exactly what the overload sampler sheds first.
//
// Not safe for concurrent use: one scorer per monitored stream.
type MotionScorer struct {
	prev []float64
	have bool
}

// Score returns the mean |ΔDC| between dcf and the previously scored frame.
// ok is false when no comparable previous frame exists (first frame, or a
// geometry change mid-stream) — callers must treat such frames as
// unconditionally interesting.
func (m *MotionScorer) Score(dcf *mpeg.DCFrame) (score float64, ok bool) {
	n := len(dcf.DC)
	if n == 0 {
		return 0, false
	}
	if !m.have || len(m.prev) != n {
		m.prev = append(m.prev[:0], dcf.DC...)
		m.have = true
		return 0, false
	}
	var sum float64
	for i, v := range dcf.DC {
		d := v - m.prev[i]
		if d < 0 {
			d = -d
		}
		sum += d
		m.prev[i] = v
	}
	return sum / float64(n), true
}

// Reset forgets the previous frame, so the next Score reports ok=false.
func (m *MotionScorer) Reset() { m.have = false }

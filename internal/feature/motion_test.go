package feature

import (
	"testing"

	"vdsms/internal/mpeg"
)

func dcFrame(vals ...float64) *mpeg.DCFrame {
	return &mpeg.DCFrame{BW: len(vals), BH: 1, DC: vals}
}

func TestMotionScorerFirstFrame(t *testing.T) {
	var m MotionScorer
	if _, ok := m.Score(dcFrame(1, 2, 3)); ok {
		t.Fatal("first frame must report ok=false")
	}
	if s, ok := m.Score(dcFrame(1, 2, 3)); !ok || s != 0 {
		t.Fatalf("identical second frame: got (%g, %v), want (0, true)", s, ok)
	}
}

func TestMotionScorerDelta(t *testing.T) {
	var m MotionScorer
	m.Score(dcFrame(0, 0, 0, 0))
	s, ok := m.Score(dcFrame(8, -8, 8, -8))
	if !ok || s != 8 {
		t.Fatalf("mean |ΔDC|: got (%g, %v), want (8, true)", s, ok)
	}
	// The scorer compares against the immediately preceding frame, not the
	// first: the same frame again now scores zero.
	if s, _ := m.Score(dcFrame(8, -8, 8, -8)); s != 0 {
		t.Fatalf("repeat frame scored %g, want 0", s)
	}
}

func TestMotionScorerGeometryChangeResets(t *testing.T) {
	var m MotionScorer
	m.Score(dcFrame(1, 2))
	if _, ok := m.Score(dcFrame(1, 2, 3)); ok {
		t.Fatal("geometry change must report ok=false")
	}
	if _, ok := m.Score(dcFrame(3, 2, 1)); !ok {
		t.Fatal("frame after geometry change must be comparable again")
	}
}

func TestMotionScorerReset(t *testing.T) {
	var m MotionScorer
	m.Score(dcFrame(1, 2))
	m.Reset()
	if _, ok := m.Score(dcFrame(1, 2)); ok {
		t.Fatal("Score after Reset must report ok=false")
	}
	if _, ok := m.Score(dcFrame(1, 2)); !ok {
		t.Fatal("second Score after Reset must be comparable")
	}
}

func TestMotionScorerEmptyFrame(t *testing.T) {
	var m MotionScorer
	if _, ok := m.Score(&mpeg.DCFrame{}); ok {
		t.Fatal("empty DC grid must report ok=false")
	}
}

package core

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

func TestQuerySetBasics(t *testing.T) {
	qs, err := NewQuerySet(128, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if qs.K() != 128 || qs.Len() != 0 {
		t.Fatalf("fresh set K=%d Len=%d", qs.K(), qs.Len())
	}
	rng := rand.New(rand.NewSource(1))
	if err := qs.Add(1, idStream(rng, 1, 30)); err != nil {
		t.Fatal(err)
	}
	if err := qs.Add(1, idStream(rng, 1, 30)); err == nil {
		t.Error("duplicate Add accepted")
	}
	if err := qs.Add(2, nil); err == nil {
		t.Error("empty query accepted")
	}
	if qs.Len() != 1 || len(qs.IDs()) != 1 {
		t.Error("Len/IDs wrong after Add")
	}
	if err := qs.Remove(1); err != nil {
		t.Fatal(err)
	}
	if err := qs.Remove(1); err == nil {
		t.Error("double Remove accepted")
	}
}

func TestSharedQuerySetAcrossEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	qs, err := NewQuerySet(256, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	q := idStream(rng, 1, 50)
	if err := qs.Add(1, q); err != nil {
		t.Fatal(err)
	}
	cfg := Config{K: 256, Seed: 7, Delta: 0.6, Lambda: 2, WindowFrames: 10,
		Order: Sequential, Method: Bit, UseIndex: true}

	// Two engines monitoring different streams against the same set: one
	// stream carries the copy, the other does not.
	e1, err := NewEngineWith(cfg, qs)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngineWith(cfg, qs)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range append(append(idStream(rng, 5, 60), q...), idStream(rng, 6, 60)...) {
		e1.PushFrame(id)
	}
	e1.Flush()
	for _, id := range idStream(rng, 9, 180) {
		e2.PushFrame(id)
	}
	e2.Flush()
	if len(e1.Matches) == 0 {
		t.Error("engine 1 missed the copy")
	}
	if len(e2.Matches) != 0 {
		t.Errorf("engine 2 produced false matches: %+v", e2.Matches)
	}
	// A query added through one engine is visible to the other.
	q2 := idStream(rng, 42, 40)
	if err := e1.AddQuery(2, q2); err != nil {
		t.Fatal(err)
	}
	if e2.NumQueries() != 2 {
		t.Error("shared Add not visible to the sibling engine")
	}
}

func TestNewEngineWithValidation(t *testing.T) {
	qs, _ := NewQuerySet(128, 1, true)
	cfg := Config{K: 256, Delta: 0.7, Lambda: 2, WindowFrames: 10}
	if _, err := NewEngineWith(cfg, qs); err == nil {
		t.Error("K mismatch accepted")
	}
	cfg.K = 128
	cfg.Delta = 0
	if _, err := NewEngineWith(cfg, qs); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestConcurrentMonitoring runs several engines over a shared set in
// parallel (with -race this verifies the locking discipline).
func TestConcurrentMonitoring(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	qs, err := NewQuerySet(256, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([][]uint64, 6)
	for i := range queries {
		queries[i] = idStream(rng, 10+i, 40)
		if err := qs.Add(i+1, queries[i]); err != nil {
			t.Fatal(err)
		}
	}
	cfg := Config{K: 256, Seed: 7, Delta: 0.6, Lambda: 2, WindowFrames: 10,
		Order: Sequential, Method: Bit, UseIndex: true}

	streams := make([][]uint64, 4)
	for s := range streams {
		r := rand.New(rand.NewSource(int64(100 + s)))
		var st []uint64
		st = append(st, idStream(r, 200+s, 80)...)
		st = append(st, queries[s]...) // stream s carries query s+1
		st = append(st, idStream(r, 300+s, 80)...)
		streams[s] = st
	}

	var wg sync.WaitGroup
	results := make([][]Match, len(streams))
	for s := range streams {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			eng, err := NewEngineWith(cfg, qs)
			if err != nil {
				t.Error(err)
				return
			}
			for _, id := range streams[s] {
				eng.PushFrame(id)
			}
			eng.Flush()
			results[s] = eng.Matches
		}(s)
	}
	// Concurrent subscription while the monitors run.
	extra := idStream(rand.New(rand.NewSource(4)), 99, 30)
	if err := qs.Add(99, extra); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	for s, ms := range results {
		found := false
		for _, m := range ms {
			if m.QueryID == s+1 {
				found = true
			}
			if m.QueryID != s+1 && m.QueryID != 99 {
				t.Errorf("stream %d matched unrelated query %d", s, m.QueryID)
			}
		}
		if !found {
			t.Errorf("stream %d missed its embedded copy of query %d", s, s+1)
		}
	}
}

func TestQuerySetSaveLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	qs, err := NewQuerySet(64, 9, true)
	if err != nil {
		t.Fatal(err)
	}
	orig := map[int][]uint64{}
	for i := 1; i <= 5; i++ {
		ids := idStream(rng, i, 20+i)
		orig[i] = ids
		if err := qs.Add(i, ids); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := qs.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadQuerySet(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.K() != 64 || loaded.Len() != 5 {
		t.Fatalf("loaded K=%d Len=%d", loaded.K(), loaded.Len())
	}
	// Detection behaviour must be identical: run the same stream through
	// engines over the original and loaded sets.
	cfg := Config{K: 64, Seed: 9, Delta: 0.6, Lambda: 2, WindowFrames: 5,
		Order: Sequential, Method: Bit, UseIndex: true}
	stream := append(append(idStream(rng, 50, 40), orig[3]...), idStream(rng, 51, 40)...)
	run := func(set *QuerySet) []Match {
		eng, err := NewEngineWith(cfg, set)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range stream {
			eng.PushFrame(id)
		}
		eng.Flush()
		return eng.Matches
	}
	a, b := run(qs), run(loaded)
	if len(a) != len(b) {
		t.Fatalf("original produced %d matches, loaded %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("match %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestLoadQuerySetErrors(t *testing.T) {
	if _, err := LoadQuerySet(bytes.NewReader([]byte("garbage data here........."))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadQuerySet(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated payload.
	qs, _ := NewQuerySet(32, 1, false)
	qs.Add(1, []uint64{1, 2, 3})
	var buf bytes.Buffer
	qs.Save(&buf)
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := LoadQuerySet(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated input accepted")
	}
}

// Checkpoint/restore glue between the live engine and the durable format
// of internal/snapshot. Export canonicalises the per-shard partitions —
// shard slots merged, every list sorted — so identical logical state
// serialises to identical bytes regardless of the worker count that
// produced it, and restore re-partitions by qindex.ShardOf at the new
// worker count. A checkpoint taken at Workers=8 restores at Workers=0 and
// vice versa, and the restored engine's subsequent matches and stats are
// byte-identical to an uninterrupted run (see TestCrashPointSweep).
package core

import (
	"fmt"
	"sort"

	"vdsms/internal/bitsig"
	"vdsms/internal/minhash"
	"vdsms/internal/qindex"
	"vdsms/internal/snapshot"
)

// snapshotConfig maps the detection-relevant configuration into the durable
// form. Workers is deliberately dropped: parallelism is a runtime choice,
// not engine state. PreFilter is dropped for the same reason — the tier is
// output-neutral (no false negatives) and its filter is rebuilt from the
// restored queries, so a checkpoint taken with the tier on restores with
// it off and vice versa.
func (c Config) snapshotConfig() snapshot.Config {
	return snapshot.Config{
		K:            c.K,
		Seed:         c.Seed,
		Delta:        c.Delta,
		Lambda:       c.Lambda,
		WindowFrames: c.WindowFrames,
		Order:        uint8(c.Order),
		Method:       uint8(c.Method),
		UseIndex:     c.UseIndex,
		DisablePrune: c.DisablePrune,
	}
}

// Fingerprint returns the compatibility fingerprint of this configuration
// under the given pipeline meta — the value stamped into checkpoint and
// WAL headers.
func (c Config) Fingerprint(m snapshot.Meta) uint64 {
	return snapshot.Fingerprint(m, c.snapshotConfig())
}

// exportQueries returns the subscribed queries in insertion order, the
// order restore re-inserts them so the rebuilt Hash-Query index passes
// through the same construction sequence.
func (qs *QuerySet) exportQueries() []snapshot.Query {
	v := qs.view()
	out := make([]snapshot.Query, 0, len(v.scan.Queries))
	for _, iq := range v.scan.Queries {
		out = append(out, snapshot.Query{
			ID:     iq.ID,
			Frames: iq.Length,
			Sketch: append([]uint64(nil), iq.Sketch...),
		})
	}
	return out
}

// addSketched inserts an already-sketched query, the restore-side inverse
// of exportQueries.
func (qs *QuerySet) addSketched(id, frames int, sk minhash.Sketch) error {
	if frames <= 0 {
		return fmt.Errorf("core: restored query %d has non-positive length", id)
	}
	if len(sk) != qs.k {
		return fmt.Errorf("core: restored query %d sketch has %d values, engine K=%d", id, len(sk), qs.k)
	}
	qs.mu.Lock()
	defer qs.mu.Unlock()
	if _, dup := qs.view().queries[id]; dup {
		return fmt.Errorf("core: restored query id %d duplicated", id)
	}
	np := qs.begin()
	if err := qs.insert(np, &queryInfo{id: id, frames: frames, sketch: sk}); err != nil {
		return err
	}
	qs.publish(np)
	return nil
}

// ExportState captures the engine's complete matching state in canonical
// form. The engine must be quiescent — between PushFrame/PushFrames calls —
// which is the only state an Engine is ever observed in by its caller: the
// PR-1 worker shards live only inside processWindow, so there is nothing
// further to drain.
func (e *Engine) ExportState() *snapshot.EngineState {
	st := &snapshot.EngineState{
		Config: e.cfg.snapshotConfig(),
		Frame:  e.frame,
		CurIDs: append([]uint64(nil), e.curIDs...),
		Stats:  exportStats(e.stats),
	}
	st.Queries = e.qs.exportQueries()

	for _, c := range e.seq {
		sc := snapshot.SeqCandidate{
			StartFrame: c.startFrame,
			Windows:    c.windows,
			Sigs:       mergeSigSlots(c.sigs),
			Related:    mergeSetSlots(c.related),
			Reported:   mergeSetSlots(c.reported),
		}
		if c.sketch != nil {
			sc.Sketch = append([]uint64(nil), c.sketch...)
		}
		st.Seq = append(st.Seq, sc)
	}

	// Geometric state: bucket boundaries are query-independent and the
	// per-shard replicas congruent, so the structure comes from shard 0 and
	// the per-query maps are unioned across replicas.
	spine := e.shards[0]
	for i, b := range spine.geo {
		gb := snapshot.GeoBucket{
			StartFrame: b.startFrame,
			EndFrame:   b.endFrame,
			Windows:    b.windows,
		}
		if b.sketch != nil {
			gb.Sketch = append([]uint64(nil), b.sketch...)
		}
		var sigSlots []map[int]*bitsig.Signature
		var relSlots []map[int]bool
		for _, s := range e.shards {
			sigSlots = append(sigSlots, s.geo[i].sigs)
			relSlots = append(relSlots, s.geo[i].related)
		}
		gb.Sigs = mergeSigSlots(sigSlots)
		gb.Related = mergeSetSlots(relSlots)
		st.Geo = append(st.Geo, gb)
	}
	for _, s := range e.shards {
		for k := range s.geoReported {
			st.GeoReported = append(st.GeoReported, snapshot.GeoReport{QID: k.qid, Start: k.start})
		}
	}
	sort.Slice(st.GeoReported, func(i, j int) bool {
		a, b := st.GeoReported[i], st.GeoReported[j]
		if a.QID != b.QID {
			return a.QID < b.QID
		}
		return a.Start < b.Start
	})
	return st
}

// RestoreEngine rebuilds an engine from exported state under cfg, which
// must be detection-compatible with the state's recorded configuration
// (same fingerprint fields; Workers is free to differ). The restored
// engine's query partitions are redistributed for cfg.Workers.
func RestoreEngine(cfg Config, st *snapshot.EngineState) (*Engine, error) {
	qs, err := NewQuerySet(cfg.K, cfg.Seed, cfg.UseIndex)
	if err != nil {
		return nil, err
	}
	for _, q := range st.Queries {
		if err := qs.addSketched(q.ID, q.Frames, minhash.Sketch(append([]uint64(nil), q.Sketch...))); err != nil {
			return nil, err
		}
	}
	return RestoreEngineWith(cfg, st, qs)
}

// RestoreEngineWith is RestoreEngine against an existing shared QuerySet:
// the state's own Queries section is ignored (it may be empty — fleet
// checkpoints strip it, storing the shared plane once instead of once per
// stream) and the engine joins qs like NewEngineWith would. cfg.K must
// match the set's K.
func RestoreEngineWith(cfg Config, st *snapshot.EngineState, qs *QuerySet) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := snapshot.CompatibilityError(snapshot.Meta{}, snapshot.Meta{}, st.Config, cfg.snapshotConfig()); err != nil {
		return nil, err
	}
	if cfg.K != qs.K() {
		return nil, fmt.Errorf("core: engine K=%d but query set K=%d", cfg.K, qs.K())
	}
	if len(st.CurIDs) >= cfg.WindowFrames {
		return nil, fmt.Errorf("core: restored window holds %d frames but w=%d (a full window is never checkpointed unprocessed)",
			len(st.CurIDs), cfg.WindowFrames)
	}
	if st.Frame < len(st.CurIDs) {
		return nil, fmt.Errorf("core: restored frame position %d precedes its own partial window (%d frames)",
			st.Frame, len(st.CurIDs))
	}

	e := newEngine(cfg, qs)
	var err error
	e.frame = st.Frame
	e.curIDs = append([]uint64(nil), st.CurIDs...)
	e.stats = restoreStats(st.Stats, e.nshards)

	planeWords := (cfg.K + 63) / 64
	for _, sc := range st.Seq {
		c := &seqCandidate{
			startFrame: sc.StartFrame,
			windows:    sc.Windows,
			reported:   splitSetSlots(sc.Reported, e.nshards),
		}
		if sc.Sketch != nil {
			c.sketch = minhash.Sketch(append([]uint64(nil), sc.Sketch...))
		}
		if cfg.Method == Bit {
			if c.sigs, err = splitSigSlots(sc.Sigs, e.nshards, cfg.K, planeWords); err != nil {
				return nil, err
			}
		} else {
			c.related = splitSetSlots(sc.Related, e.nshards)
		}
		e.seq = append(e.seq, c)
	}

	for _, gb := range st.Geo {
		var sigSlots []map[int]*bitsig.Signature
		var relSlots []map[int]bool
		if cfg.Method == Bit {
			if sigSlots, err = splitSigSlots(gb.Sigs, e.nshards, cfg.K, planeWords); err != nil {
				return nil, err
			}
		} else {
			relSlots = splitSetSlots(gb.Related, e.nshards)
		}
		for si, s := range e.shards {
			b := &geoBucket{
				startFrame: gb.StartFrame,
				endFrame:   gb.EndFrame,
				windows:    gb.Windows,
			}
			// Each replica owns its own sketch copy, as the live merge path
			// would have produced.
			if gb.Sketch != nil {
				b.sketch = minhash.Sketch(append([]uint64(nil), gb.Sketch...))
			}
			if cfg.Method == Bit {
				b.sigs = sigSlots[si]
			} else {
				b.related = relSlots[si]
			}
			s.geo = append(s.geo, b)
		}
	}
	for _, s := range e.shards {
		s.geoReported = make(map[geoKey]bool)
	}
	for _, r := range st.GeoReported {
		s := e.shards[qindex.ShardOf(r.QID, e.nshards)]
		s.geoReported[geoKey{qid: r.QID, start: r.Start}] = true
	}
	return e, nil
}

// exportStats maps live counters to the durable form. The per-shard
// breakdown is folded into a single entry: its spread is a property of the
// checkpointing run's worker count, and canonical checkpoints must be
// byte-identical across worker counts.
func exportStats(s Stats) snapshot.Stats {
	out := snapshot.Stats{
		Frames: s.Frames, Windows: s.Windows,
		SketchCombines: s.SketchCombines, SketchCompares: s.SketchCompares,
		SigOrs: s.SigOrs, SigTests: s.SigTests,
		ProbeComparisons: s.ProbeComparisons,
		SignatureSum:     s.SignatureSum, CandidateSum: s.CandidateSum,
		Matches: s.Matches,
	}
	if len(s.Shards) > 0 {
		var fold snapshot.ShardStats
		for _, sh := range s.Shards {
			fold.Probed += sh.Probed
			fold.Pruned += sh.Pruned
			fold.Compared += sh.Compared
		}
		out.Shards = []snapshot.ShardStats{fold}
	}
	return out
}

// restoreStats maps durable counters back. The per-shard breakdown carries
// over 1:1 when the worker count matches the checkpointing run; otherwise
// it is folded into shard 0 — the breakdown is diagnostic, and folding
// keeps the Totals() invariant exact across worker counts.
func restoreStats(s snapshot.Stats, nshards int) Stats {
	out := Stats{
		Frames: s.Frames, Windows: s.Windows,
		SketchCombines: s.SketchCombines, SketchCompares: s.SketchCompares,
		SigOrs: s.SigOrs, SigTests: s.SigTests,
		ProbeComparisons: s.ProbeComparisons,
		SignatureSum:     s.SignatureSum, CandidateSum: s.CandidateSum,
		Matches: s.Matches,
		Shards:  make([]ShardStats, nshards),
	}
	if len(s.Shards) == nshards {
		for i, sh := range s.Shards {
			out.Shards[i] = ShardStats{Probed: sh.Probed, Pruned: sh.Pruned, Compared: sh.Compared}
		}
		return out
	}
	for _, sh := range s.Shards {
		out.Shards[0].Probed += sh.Probed
		out.Shards[0].Pruned += sh.Pruned
		out.Shards[0].Compared += sh.Compared
	}
	return out
}

// mergeSigSlots flattens per-shard signature maps into one qid-ascending
// slice with copied planes.
func mergeSigSlots(slots []map[int]*bitsig.Signature) []snapshot.Signature {
	var out []snapshot.Signature
	for _, m := range slots {
		for qid, sig := range m {
			out = append(out, snapshot.Signature{
				QID: qid,
				Lo:  append([]uint64(nil), sig.Lo...),
				Hi:  append([]uint64(nil), sig.Hi...),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].QID < out[j].QID })
	return out
}

// splitSigSlots redistributes canonical signatures into per-shard maps by
// ShardOf. Every slot is non-nil: the shard kernels mutate their slot maps
// in place.
func splitSigSlots(sigs []snapshot.Signature, nshards, k, planeWords int) ([]map[int]*bitsig.Signature, error) {
	slots := make([]map[int]*bitsig.Signature, nshards)
	for i := range slots {
		slots[i] = make(map[int]*bitsig.Signature)
	}
	for _, s := range sigs {
		if len(s.Lo) != planeWords || len(s.Hi) != planeWords {
			return nil, fmt.Errorf("core: restored signature for query %d has %d+%d plane words, K=%d needs %d",
				s.QID, len(s.Lo), len(s.Hi), k, planeWords)
		}
		slots[qindex.ShardOf(s.QID, nshards)][s.QID] = &bitsig.Signature{
			K:  k,
			Lo: append([]uint64(nil), s.Lo...),
			Hi: append([]uint64(nil), s.Hi...),
		}
	}
	return slots, nil
}

// mergeSetSlots flattens per-shard query-id sets into one ascending slice.
func mergeSetSlots(slots []map[int]bool) []int {
	var out []int
	for _, m := range slots {
		for qid := range m {
			out = append(out, qid)
		}
	}
	sort.Ints(out)
	return out
}

// splitSetSlots redistributes a canonical id list into per-shard non-nil
// sets by ShardOf.
func splitSetSlots(ids []int, nshards int) []map[int]bool {
	slots := make([]map[int]bool, nshards)
	for i := range slots {
		slots[i] = make(map[int]bool)
	}
	for _, qid := range ids {
		slots[qindex.ShardOf(qid, nshards)][qid] = true
	}
	return slots
}

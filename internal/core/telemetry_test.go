package core

import (
	"math/rand"
	"testing"
	"time"

	"vdsms/internal/telemetry"
)

// telemetryEngine builds a small engine with a few overlapping queries so
// windows do real probe/combine work.
func telemetryEngine(t *testing.T, workers int) (*Engine, [][]uint64) {
	t.Helper()
	cfg := Config{
		K: 64, Seed: 5, Delta: 0.5, Lambda: 2, WindowFrames: 4,
		Method: Bit, Order: Sequential, UseIndex: true, Workers: workers,
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for id := 1; id <= 12; id++ {
		ids := make([]uint64, 16)
		for i := range ids {
			ids[i] = uint64(rng.Intn(40))
		}
		if err := eng.AddQuery(id, ids); err != nil {
			t.Fatal(err)
		}
	}
	wins := make([][]uint64, 8)
	for w := range wins {
		win := make([]uint64, cfg.WindowFrames)
		for i := range win {
			win[i] = uint64(rng.Intn(40))
		}
		wins[w] = win
	}
	return eng, wins
}

// TestTelemetryCounters verifies the engine folds its work into the
// process-wide registry: windows, frames and per-shard comparisons all
// advance by the amounts the engine's own Stats report.
func TestTelemetryCounters(t *testing.T) {
	eng, wins := telemetryEngine(t, 2)
	before := readAll(t)
	for _, w := range wins {
		eng.PushFrames(w)
	}
	after := readAll(t)
	st := eng.Stats()

	if got := after["windows"] - before["windows"]; got != float64(st.Windows) {
		t.Errorf("vcd_windows_processed_total advanced by %v, want %d", got, st.Windows)
	}
	if got := after["frames"] - before["frames"]; got != float64(st.Frames) {
		t.Errorf("vcd_frames_total advanced by %v, want %d", got, st.Frames)
	}
	var compared float64
	for _, sh := range st.Shards {
		compared += float64(sh.Compared)
	}
	if got := after["compared"] - before["compared"]; got != compared {
		t.Errorf("vcd_shard_compared_total advanced by %v, want %v", got, compared)
	}
}

// readAll snapshots the counters this test asserts deltas on (the
// registry is process-wide and shared with other tests in the package).
func readAll(t *testing.T) map[string]float64 {
	t.Helper()
	out := map[string]float64{
		"windows": float64(telWindows.Value()),
		"frames":  float64(telFrames.Value()),
	}
	var compared int64
	for i := 0; i < 64; i++ {
		compared += shardComparedCounter(i).Value()
	}
	out["compared"] = float64(compared)
	return out
}

// TestStageHistogramsObserve checks every stage series gains exactly one
// observation per processed window while telemetry is enabled.
func TestStageHistogramsObserve(t *testing.T) {
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)
	eng, wins := telemetryEngine(t, 0)
	stages := map[string]*telemetry.Histogram{
		"sketch": telStageSketch, "probe": telStageProbe,
		"combine": telStageCombine, "merge": telStageMerge,
		"window_total": telStageWindow,
	}
	before := make(map[string]int64, len(stages))
	for name, h := range stages {
		before[name] = h.Count()
	}
	for _, w := range wins {
		eng.PushFrames(w)
	}
	windows := int64(eng.Stats().Windows)
	if windows == 0 {
		t.Fatal("no windows processed")
	}
	for name, h := range stages {
		if got := h.Count() - before[name]; got != windows {
			t.Errorf("stage %s observed %d windows, want %d", name, got, windows)
		}
	}
}

// TestStageTimingDisabled checks SetEnabled(false) actually stops the
// histograms (the benchmark-overhead configuration).
func TestStageTimingDisabled(t *testing.T) {
	prev := telemetry.SetEnabled(false)
	defer telemetry.SetEnabled(prev)
	eng, wins := telemetryEngine(t, 0)
	before := telStageWindow.Count()
	for _, w := range wins {
		eng.PushFrames(w)
	}
	if got := telStageWindow.Count() - before; got != 0 {
		t.Errorf("stage histograms observed %d windows with telemetry disabled, want 0", got)
	}
}

// TestSlowWindowTracer arms the tracer with a 1ns budget so every window
// is slow, and checks the per-stage breakdown is sane.
func TestSlowWindowTracer(t *testing.T) {
	for _, workers := range []int{0, 3} {
		eng, wins := telemetryEngine(t, workers)
		var traces []SlowWindowTrace
		eng.SlowWindow = time.Nanosecond
		eng.OnSlowWindow = func(tr SlowWindowTrace) { traces = append(traces, tr) }
		for _, w := range wins {
			eng.PushFrames(w)
		}
		windows := eng.Stats().Windows
		if len(traces) != windows {
			t.Fatalf("workers=%d: %d traces for %d windows", workers, len(traces), windows)
		}
		for i, tr := range traces {
			if tr.Total <= 0 {
				t.Errorf("workers=%d trace %d: Total = %v, want > 0", workers, i, tr.Total)
			}
			if tr.Budget != time.Nanosecond {
				t.Errorf("workers=%d trace %d: Budget = %v", workers, i, tr.Budget)
			}
			if tr.EndFrame-tr.StartFrame != eng.cfg.WindowFrames {
				t.Errorf("workers=%d trace %d: frames [%d,%d) not one window", workers, i, tr.StartFrame, tr.EndFrame)
			}
			if tr.Sketch < 0 || tr.Probe < 0 || tr.Combine < 0 || tr.Merge < 0 {
				t.Errorf("workers=%d trace %d: negative stage span: %+v", workers, i, tr)
			}
			if sum := tr.Sketch + tr.Probe + tr.Combine + tr.Merge; sum > 10*tr.Total+time.Millisecond {
				t.Errorf("workers=%d trace %d: stage sum %v wildly exceeds total %v", workers, i, sum, tr.Total)
			}
		}
	}
}

// TestSlowWindowTracerQuietWhenUnderBudget gives every window an hour of
// budget: no trace may fire.
func TestSlowWindowTracerQuietWhenUnderBudget(t *testing.T) {
	eng, wins := telemetryEngine(t, 2)
	fired := 0
	eng.SlowWindow = time.Hour
	eng.OnSlowWindow = func(SlowWindowTrace) { fired++ }
	for _, w := range wins {
		eng.PushFrames(w)
	}
	if fired != 0 {
		t.Errorf("tracer fired %d times under an hour budget", fired)
	}
}

// TestTelemetryDeterminism re-checks the serial/parallel contract with the
// tracer armed and telemetry on: instrumentation must not perturb matches.
func TestTelemetryDeterminism(t *testing.T) {
	run := func(workers int, slow time.Duration) []Match {
		eng, wins := telemetryEngine(t, workers)
		eng.SlowWindow = slow
		eng.OnSlowWindow = func(SlowWindowTrace) {}
		for _, w := range wins {
			eng.PushFrames(w)
		}
		return eng.Matches
	}
	base := run(0, 0)
	for _, workers := range []int{0, 2, 5} {
		for _, slow := range []time.Duration{0, time.Nanosecond} {
			got := run(workers, slow)
			if len(got) != len(base) {
				t.Fatalf("workers=%d slow=%v: %d matches, want %d", workers, slow, len(got), len(base))
			}
			for i := range got {
				if got[i] != base[i] {
					t.Fatalf("workers=%d slow=%v: match %d = %+v, want %+v", workers, slow, i, got[i], base[i])
				}
			}
		}
	}
}

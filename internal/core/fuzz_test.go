package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// fuzzScript is one randomly generated engine workload, fully materialised
// so it can be replayed identically against several Workers settings.
type fuzzScript struct {
	cfg      Config
	queries  [][]uint64 // queries[i] is query id i+1
	frames   []uint64
	removeAt map[int]int // frame index → query id to remove after that frame
}

// replay runs the script on a fresh engine with the given worker count and
// returns the resulting matches and stats.
func (fs *fuzzScript) replay(t *testing.T, workers int) ([]Match, Stats) {
	t.Helper()
	cfg := fs.cfg
	cfg.Workers = workers
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("%v (%+v)", err, cfg)
	}
	for i, ids := range fs.queries {
		if err := e.AddQuery(i+1, ids); err != nil {
			t.Fatalf("query %d: %v", i+1, err)
		}
	}
	for i, id := range fs.frames {
		e.PushFrame(id)
		if victim, ok := fs.removeAt[i]; ok {
			if err := e.RemoveQuery(victim); err != nil {
				t.Fatalf("remove %d: %v", victim, err)
			}
		}
	}
	e.Flush()
	return e.Matches, e.Stats()
}

// TestEngineFuzzInvariants drives randomly configured engines with random
// query/stream material and checks structural invariants — no panics,
// match fields well-formed, similarities at or above δ, stats consistent —
// and that a parallel replay of the same script (random Workers in 1..8)
// agrees with the serial run match-for-match and in stats totals.
func TestEngineFuzzInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(20080407))
	for trial := 0; trial < 60; trial++ {
		fs := &fuzzScript{
			cfg: Config{
				K:            []int{16, 64, 200, 801}[rng.Intn(4)],
				Seed:         rng.Int63(),
				Delta:        0.3 + 0.6*rng.Float64(),
				Lambda:       1 + rng.Float64(),
				WindowFrames: rng.Intn(20) + 1,
				Order:        Order(rng.Intn(2)),
				Method:       Method(rng.Intn(2)),
				UseIndex:     rng.Intn(2) == 0,
				DisablePrune: rng.Intn(4) == 0,
			},
			removeAt: map[int]int{},
		}
		nq := rng.Intn(6) + 1
		for q := 1; q <= nq; q++ {
			fs.queries = append(fs.queries, idStream(rng, rng.Intn(8), rng.Intn(80)+5))
		}
		// Random stream with occasional query-content bursts and mid-stream
		// subscription churn at fixed frame positions.
		frames := rng.Intn(800) + 100
		removed := map[int]bool{}
		for i := 0; i < frames; i++ {
			fs.frames = append(fs.frames, uint64(rng.Intn(8))*100000+uint64(rng.Intn(50)))
			if rng.Intn(200) == 0 {
				victim := rng.Intn(nq) + 1
				if !removed[victim] {
					fs.removeAt[i] = victim
					removed[victim] = true
				}
			}
		}

		matches, st := fs.replay(t, 0)
		cfg := fs.cfg
		if st.Frames != frames {
			t.Fatalf("trial %d: Frames=%d, pushed %d", trial, st.Frames, frames)
		}
		wantWindows := (frames + cfg.WindowFrames - 1) / cfg.WindowFrames
		if st.Windows != wantWindows {
			t.Fatalf("trial %d: Windows=%d, want %d", trial, st.Windows, wantWindows)
		}
		if st.Matches != len(matches) {
			t.Fatalf("trial %d: stats Matches=%d, slice %d", trial, st.Matches, len(matches))
		}
		for _, m := range matches {
			if m.QueryID < 1 || m.QueryID > nq {
				t.Fatalf("trial %d: match for unknown query %d", trial, m.QueryID)
			}
			if m.StartFrame < 0 || m.EndFrame <= m.StartFrame || m.EndFrame > frames {
				t.Fatalf("trial %d: malformed match span [%d,%d) of %d frames",
					trial, m.StartFrame, m.EndFrame, frames)
			}
			if m.Similarity < cfg.Delta-1e-9 {
				t.Fatalf("trial %d: match similarity %g below δ=%g", trial, m.Similarity, cfg.Delta)
			}
			if m.Windows < 1 {
				t.Fatalf("trial %d: match with %d windows", trial, m.Windows)
			}
		}

		// Parallel agreement: an identical replay with a random worker pool
		// must be indistinguishable.
		workers := rng.Intn(8) + 1
		pm, pst := fs.replay(t, workers)
		if !reflect.DeepEqual(pm, matches) {
			t.Fatalf("trial %d: Workers=%d matches diverge from serial (%+v)\nserial:   %+v\nparallel: %+v",
				trial, workers, cfg, matches, pm)
		}
		if !reflect.DeepEqual(pst.Totals(), st.Totals()) {
			t.Fatalf("trial %d: Workers=%d stats totals diverge from serial (%+v)\nserial:   %+v\nparallel: %+v",
				trial, workers, cfg, st.Totals(), pst.Totals())
		}
	}
}

package core

import (
	"math/rand"
	"testing"
)

// TestEngineFuzzInvariants drives randomly configured engines with random
// query/stream material and checks structural invariants: no panics, match
// fields well-formed, similarities at or above δ, stats consistent.
func TestEngineFuzzInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(20080407))
	for trial := 0; trial < 60; trial++ {
		cfg := Config{
			K:            []int{16, 64, 200, 801}[rng.Intn(4)],
			Seed:         rng.Int63(),
			Delta:        0.3 + 0.6*rng.Float64(),
			Lambda:       1 + rng.Float64(),
			WindowFrames: rng.Intn(20) + 1,
			Order:        Order(rng.Intn(2)),
			Method:       Method(rng.Intn(2)),
			UseIndex:     rng.Intn(2) == 0,
			DisablePrune: rng.Intn(4) == 0,
		}
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatalf("trial %d: %v (%+v)", trial, err, cfg)
		}
		nq := rng.Intn(6) + 1
		for q := 1; q <= nq; q++ {
			ids := idStream(rng, rng.Intn(8), rng.Intn(80)+5)
			if err := e.AddQuery(q, ids); err != nil {
				t.Fatalf("trial %d query %d: %v", trial, q, err)
			}
		}
		// Random stream with occasional query-content bursts and mid-stream
		// subscription churn.
		frames := rng.Intn(800) + 100
		removed := map[int]bool{}
		for i := 0; i < frames; i++ {
			e.PushFrame(uint64(rng.Intn(8))*100000 + uint64(rng.Intn(50)))
			if rng.Intn(200) == 0 {
				victim := rng.Intn(nq) + 1
				if !removed[victim] {
					if err := e.RemoveQuery(victim); err != nil {
						t.Fatalf("trial %d remove: %v", trial, err)
					}
					removed[victim] = true
				}
			}
		}
		e.Flush()

		st := e.Stats()
		if st.Frames != frames {
			t.Fatalf("trial %d: Frames=%d, pushed %d", trial, st.Frames, frames)
		}
		wantWindows := (frames + cfg.WindowFrames - 1) / cfg.WindowFrames
		if st.Windows != wantWindows {
			t.Fatalf("trial %d: Windows=%d, want %d", trial, st.Windows, wantWindows)
		}
		if st.Matches != len(e.Matches) {
			t.Fatalf("trial %d: stats Matches=%d, slice %d", trial, st.Matches, len(e.Matches))
		}
		for _, m := range e.Matches {
			if m.QueryID < 1 || m.QueryID > nq {
				t.Fatalf("trial %d: match for unknown query %d", trial, m.QueryID)
			}
			if m.StartFrame < 0 || m.EndFrame <= m.StartFrame || m.EndFrame > frames {
				t.Fatalf("trial %d: malformed match span [%d,%d) of %d frames",
					trial, m.StartFrame, m.EndFrame, frames)
			}
			if m.Similarity < cfg.Delta-1e-9 {
				t.Fatalf("trial %d: match similarity %g below δ=%g", trial, m.Similarity, cfg.Delta)
			}
			if m.Windows < 1 {
				t.Fatalf("trial %d: match with %d windows", trial, m.Windows)
			}
		}
	}
}

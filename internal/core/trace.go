// Decision provenance: candidate-lifecycle event tracing and the sampled
// exact-audit channel of the matching kernel.
//
// Tracing is armed per engine with Trace/SetTracer; every recording site in
// the kernels is guarded by one nil check on a per-window recorder pointer
// (windowResult.tr), so a disabled tracer costs nothing — no allocations,
// no atomics, a byte-identical match stream. Shards write lifecycle events
// into single-writer buffers during the parallel phase; the serial spine
// folds them once per window into the journal in a worker-count-invariant
// order, then runs the audit sampler over the folded decisions.
//
// The audit channel (SetAudit) re-derives, for every Nth report and every
// Nth Lemma 2 prune, the exact Jaccard similarity from raw cell-id sets —
// the internal/partition membership path the paper defines similarity on —
// and scores the sketch estimate against Theorem 1's deviation bound. The
// estimator-error histograms and the bound-violation counter make sketch
// misconfiguration (K too small for the operating δ) visible on /metrics
// before it costs recall.
package core

import (
	"math"
	"sync/atomic"
	"time"

	"vdsms/internal/partition"
	"vdsms/internal/trace"
)

// SlowBudget is a runtime-adjustable slow-window threshold. Engines with a
// non-nil SlowVar read it once per window, so a Set (e.g. from
// POST /debug/slow-window) takes effect at the next basic window of every
// engine sharing the budget — no restart, no lock.
type SlowBudget struct{ ns atomic.Int64 }

// NewSlowBudget returns a budget initialised to d.
func NewSlowBudget(d time.Duration) *SlowBudget {
	b := &SlowBudget{}
	b.Set(d)
	return b
}

// Set updates the budget; non-positive disables slow-window tracing.
func (b *SlowBudget) Set(d time.Duration) { b.ns.Store(int64(d)) }

// Get returns the current budget.
func (b *SlowBudget) Get() time.Duration { return time.Duration(b.ns.Load()) }

// slowBudget resolves this window's slow-window threshold: the shared
// runtime-adjustable budget when wired, else the static field.
func (e *Engine) slowBudget() time.Duration {
	if e.SlowVar != nil {
		return e.SlowVar.Get()
	}
	return e.SlowWindow
}

// Trace arms candidate-lifecycle event tracing: a recorder for this engine
// is registered with j under streamName (empty auto-names it) and every
// subsequent window's lifecycle events — born, extended, pruned, dropped,
// expired, reported, near_miss — are journaled, with a provenance record
// attached to each emitted match. The near-miss band ε is Theorem 1's
// deviation bound for the engine's K: an estimate within ε of δ could have
// been a report under estimator noise alone.
func (e *Engine) Trace(j *trace.Journal, streamName string) *trace.Recorder {
	r := trace.NewRecorder(j, streamName, e.nshards, e.cfg.Order.String(), e.cfg.Method.String())
	e.SetTracer(r)
	return r
}

// SetTracer installs (or, with nil, removes) a recorder built elsewhere.
// The recorder must have been created with this engine's shard count.
func (e *Engine) SetTracer(r *trace.Recorder) {
	e.trc = r
	e.nearEps = trace.ErrorBound(e.cfg.K, trace.DefaultConfidence)
}

// Tracer returns the armed recorder, or nil.
func (e *Engine) Tracer() *trace.Recorder { return e.trc }

// SetAudit arms the sampled exact-audit channel: every Nth report decision
// and every Nth prune decision is re-derived exactly from raw cell-id sets
// and scored against Theorem 1's bound. every <= 0 disables auditing.
// Auditing requires an armed tracer (decisions are read off the folded
// event stream) and retains one window of raw cell ids per live candidate
// window — the only tracing-on state that grows with λL.
func (e *Engine) SetAudit(every int) {
	if every < 0 {
		every = 0
	}
	e.auditEvery = every
	e.auditBound = trace.ErrorBound(e.cfg.K, trace.DefaultConfidence)
	if every == 0 {
		e.auditWins = nil
	}
}

// auditKey identifies a report decision within one window so its audit
// result can be attached to the match record at emission.
type auditKey struct {
	start, qid int
}

// retainAuditWindow copies the filled window's cell ids into the bounded
// per-window history the exact audit unions candidates from, evicting
// windows no candidate can reach any more.
func (e *Engine) retainAuditWindow(win *windowResult) {
	if e.auditWins == nil {
		e.auditWins = make(map[int][]uint64)
	}
	e.auditWins[win.startFrame] = append([]uint64(nil), e.curIDs...)
	horizon := win.endFrame - (win.maxW+2)*e.cfg.WindowFrames
	for k := range e.auditWins {
		if k < horizon {
			delete(e.auditWins, k)
		}
	}
}

// exactJaccard recomputes the exact set similarity of the candidate
// [start, end) against query qid from raw cell ids. ok is false when the
// raw sets are unavailable — the query predates id retention (checkpoint
// restore) or the candidate spans windows the history no longer holds.
func (e *Engine) exactJaccard(start, end, qid int, view *queryPlane) (float64, bool) {
	q := view.lookup(qid)
	if q == nil || q.cellIDs == nil {
		return 0, false
	}
	var union []uint64
	for ws := start; ws < end; ws += e.cfg.WindowFrames {
		ids, ok := e.auditWins[ws]
		if !ok {
			return 0, false
		}
		union = append(union, ids...)
	}
	if len(union) == 0 {
		return 0, false
	}
	return partition.Jaccard(union, q.cellIDs), true
}

// auditWindow samples the window's folded report and prune decisions,
// audits the sampled ones exactly, publishes the estimator-error metrics
// and parks report audits for attachment to their match records. Runs on
// the serial spine between the event fold and match emission.
func (e *Engine) auditWindow(evs []trace.Event, view *queryPlane) {
	for k := range e.auditRes {
		delete(e.auditRes, k)
	}
	for i := range evs {
		ev := &evs[i]
		var decision int
		switch ev.Kind {
		case trace.Reported:
			e.auditReports++
			if (e.auditReports-1)%uint64(e.auditEvery) != 0 {
				continue
			}
			decision = trace.AuditReport
		case trace.Pruned:
			e.auditPrunes++
			if (e.auditPrunes-1)%uint64(e.auditEvery) != 0 {
				continue
			}
			decision = trace.AuditPrune
		default:
			continue
		}
		exact, ok := e.exactJaccard(int(ev.Start), int(ev.End), int(ev.QID), view)
		if !ok {
			trace.ObserveAuditSkipped()
			continue
		}
		res := trace.AuditResult{
			Exact:    exact,
			Estimate: float64(ev.Estimate),
			Bound:    e.auditBound,
		}
		res.AbsError = math.Abs(res.Estimate - res.Exact)
		res.Violated = res.AbsError > res.Bound
		trace.ObserveAudit(decision, res)
		if ev.Kind == trace.Reported {
			if e.auditRes == nil {
				e.auditRes = make(map[auditKey]*trace.AuditResult)
			}
			r := res
			e.auditRes[auditKey{int(ev.Start), int(ev.QID)}] = &r
		}
	}
}

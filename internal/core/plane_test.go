package core

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestPlaneVersioning pins the copy-on-write contract at the QuerySet
// level: every churn operation publishes a new version, and a plane
// captured before churn is immutable — it still holds exactly the
// subscription set it was published with.
func TestPlaneVersioning(t *testing.T) {
	qs, err := NewQuerySet(64, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Version() != 0 {
		t.Fatalf("empty set at version %d", qs.Version())
	}
	rng := rand.New(rand.NewSource(1))
	if err := qs.Add(1, idStream(rng, 1, 40)); err != nil {
		t.Fatal(err)
	}
	old := qs.view()
	if old.version != 1 || len(old.queries) != 1 {
		t.Fatalf("after one add: version=%d queries=%d", old.version, len(old.queries))
	}

	if err := qs.Add(2, idStream(rng, 2, 40)); err != nil {
		t.Fatal(err)
	}
	if err := qs.Remove(1); err != nil {
		t.Fatal(err)
	}
	if qs.Version() != 3 {
		t.Fatalf("after add+add+remove: version %d, want 3", qs.Version())
	}
	// The captured plane is frozen: still version 1, still only query 1,
	// and its index still probes exactly that set.
	if old.version != 1 || len(old.queries) != 1 || old.lookup(1) == nil {
		t.Fatalf("captured plane mutated: version=%d queries=%d", old.version, len(old.queries))
	}
	if old.index == nil || old.index.Len() != 1 {
		t.Fatal("captured plane's index mutated by churn")
	}
	cur := qs.view()
	if len(cur.queries) != 1 || cur.lookup(2) == nil {
		t.Fatal("current plane does not reflect churn")
	}
	if qs.PlaneBytes() <= 0 {
		t.Fatal("PlaneBytes reported nothing for a non-empty plane")
	}

	// AddBatch lands as one version.
	v := qs.Version()
	ids := []int{10, 11, 12}
	var cells [][]uint64
	for _, id := range ids {
		cells = append(cells, idStream(rng, id, 30))
	}
	if err := qs.AddBatch(ids, cells); err != nil {
		t.Fatal(err)
	}
	if qs.Version() != v+1 {
		t.Fatalf("batch of 3 advanced version by %d, want 1", qs.Version()-v)
	}
}

// churnPlan is one deterministic churn action executed at a window
// boundary: before pushing window winIdx, add or remove a query.
type churnPlan struct {
	winIdx int
	add    bool
	id     int
	cells  []uint64
}

// runChurned pushes the stream window by window, executing each planned
// churn action at its boundary. When concurrent is true the churn runs on
// a second goroutine with a channel handshake per boundary — same ordering
// as inline, but the plane swap is exercised cross-goroutine so the race
// detector checks the lock-free reader path; the handshake keeps the
// output comparable to the inline (pause-churn-resume) run byte for byte.
func runChurned(t *testing.T, v variant, stream []uint64, w int, plan []churnPlan, concurrent bool) ([]Match, Stats, uint64) {
	t.Helper()
	e := newTestEngine(t, v, 64, 0.6, w)
	rng := rand.New(rand.NewSource(42))
	if err := e.AddQuery(1, idStream(rng, 1, 4*w)); err != nil {
		t.Fatal(err)
	}

	var churn func(p churnPlan)
	inline := func(p churnPlan) {
		if p.add {
			if err := e.AddQuery(p.id, p.cells); err != nil {
				t.Error(err)
			}
		} else if err := e.RemoveQuery(p.id); err != nil {
			t.Error(err)
		}
	}
	var (
		req  chan churnPlan
		done chan struct{}
		wg   sync.WaitGroup
	)
	if concurrent {
		req = make(chan churnPlan)
		done = make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range req {
				inline(p)
				done <- struct{}{}
			}
		}()
		churn = func(p churnPlan) {
			req <- p
			<-done
		}
	} else {
		churn = inline
	}

	next := 0
	for off := 0; off < len(stream); off += w {
		for next < len(plan) && plan[next].winIdx == off/w {
			churn(plan[next])
			next++
		}
		end := off + w
		if end > len(stream) {
			end = len(stream)
		}
		e.PushFrames(stream[off:end])
	}
	if concurrent {
		close(req)
		wg.Wait()
	}
	e.Flush()
	return e.Matches, e.Stats(), e.PlaneVersion()
}

// TestPlaneChurnEquivalence runs add/remove churn mid-stream from a second
// goroutine (the copy-on-write fast path, under -race in CI) and asserts
// the output is byte-identical to the same churn applied inline between
// pushes — the pause-churn-resume reference. Covers indexed, scan and
// pre-filter planes.
func TestPlaneChurnEquivalence(t *testing.T) {
	for _, v := range []variant{
		{"bit-seq-index", Bit, Sequential, true, false},
		{"bit-geo-noindex", Bit, Geometric, false, false},
		{"bit-seq-prefilter", Bit, Sequential, true, true},
		{"sketch-seq-index", Sketch, Sequential, true, false},
	} {
		t.Run(v.name, func(t *testing.T) {
			const w = 10
			rng := rand.New(rand.NewSource(42))
			q1 := idStream(rng, 1, 4*w) // must match runChurned's subscription
			qX := idStream(rng, 5, 3*w)
			rng2 := rand.New(rand.NewSource(99))
			// Background with two embedded copies of q1 and one of qX.
			var stream []uint64
			stream = append(stream, idStream(rng2, 100, 6*w)...)
			stream = append(stream, q1...)
			stream = append(stream, idStream(rng2, 101, 4*w)...)
			stream = append(stream, qX...)
			stream = append(stream, idStream(rng2, 102, 4*w)...)
			stream = append(stream, q1...)
			stream = append(stream, idStream(rng2, 103, 2*w)...)

			plan := []churnPlan{
				{winIdx: 3, add: true, id: 5, cells: qX},
				{winIdx: 8, add: true, id: 6, cells: idStream(rng2, 104, 2*w)},
				{winIdx: 12, add: false, id: 6},
			}
			inlineM, inlineS, _ := runChurned(t, v, stream, w, plan, false)
			concM, concS, ver := runChurned(t, v, stream, w, plan, true)

			if len(inlineM) != len(concM) {
				t.Fatalf("inline churn found %d matches, concurrent churn %d", len(inlineM), len(concM))
			}
			for i := range inlineM {
				if inlineM[i] != concM[i] {
					t.Errorf("match %d differs: %+v vs %+v", i, inlineM[i], concM[i])
				}
			}
			if it, ct := inlineS.Totals(), concS.Totals(); !reflect.DeepEqual(it, ct) {
				t.Errorf("stats diverge:\ninline     %+v\nconcurrent %+v", it, ct)
			}
			if len(inlineM) == 0 {
				t.Fatal("workload found no matches; churn equivalence vacuous")
			}
			// 1 initial subscription + 3 churn ops (+1 for EnablePreFilter).
			want := uint64(4)
			if v.prefilter {
				want++
			}
			if ver != want {
				t.Errorf("final window ran on plane version %d, want %d", ver, want)
			}
		})
	}
}

// TestPlaneChurnInFlight verifies the never-stall contract directly: while
// an engine goroutine streams continuously (no handshake), another hammers
// Add/Remove. Under -race this proves window processing never touches a
// mutating structure, and the stable query's copies must still be found —
// matches for a query that was subscribed before the stream started are
// unaffected by unrelated churn.
func TestPlaneChurnInFlight(t *testing.T) {
	const w = 10
	e := newTestEngine(t, variant{"bit-seq-index", Bit, Sequential, true, false}, 64, 0.6, w)
	rng := rand.New(rand.NewSource(7))
	stable := idStream(rng, 1, 4*w)
	if err := e.AddQuery(1, stable); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		crng := rand.New(rand.NewSource(8))
		id := 100
		for {
			select {
			case <-stop:
				return
			default:
			}
			cells := idStream(crng, id, 2*w)
			if err := e.AddQuery(id, cells); err != nil {
				t.Error(err)
				return
			}
			if id%2 == 0 {
				if err := e.RemoveQuery(id); err != nil {
					t.Error(err)
					return
				}
			}
			id++
		}
	}()

	srng := rand.New(rand.NewSource(9))
	for seg := 0; seg < 8; seg++ {
		e.PushFrames(idStream(srng, 200+seg, 3*w))
		e.PushFrames(stable)
	}
	close(stop)
	wg.Wait()
	e.Flush()

	found := 0
	for _, m := range e.Matches {
		if m.QueryID == 1 {
			found++
		}
	}
	if found == 0 {
		t.Fatal("stable query lost under concurrent churn")
	}
	if e.PlaneVersion() == 0 {
		t.Fatal("engine never observed a churned plane")
	}
	if e.PlaneVersion() > e.Queries().Version() {
		t.Fatalf("engine plane version %d ahead of query set version %d",
			e.PlaneVersion(), e.Queries().Version())
	}
}

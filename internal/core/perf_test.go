package core

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"vdsms/internal/perfobs"
)

// perfRun pushes a fixed multi-query workload through one engine wired to a
// private span collector sampling every window, and returns the
// deterministic projection of the fold.
func perfRun(t *testing.T, workers int) perfobs.AggCounts {
	t.Helper()
	col := perfobs.NewCollector(256)
	col.SetSampleEvery(1)
	cfg := Config{
		K: 192, Seed: 5, Delta: 0.5, Lambda: 2, WindowFrames: 10,
		Workers: workers,
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.SetPerf(col, "det-test")
	rng := rand.New(rand.NewSource(42))
	queries := make([][]uint64, 5)
	for i := range queries {
		queries[i] = idStream(rng, i+1, 40+10*i)
		if err := e.AddQuery(i+1, queries[i]); err != nil {
			t.Fatal(err)
		}
	}
	var stream []uint64
	stream = append(stream, idStream(rng, 50, 95)...)
	for _, qi := range []int{2, 0, 3} {
		stream = append(stream, queries[qi]...)
		stream = append(stream, idStream(rng, 60+qi, 57)...)
	}
	e.PushFrames(stream)
	e.Flush()
	agg := col.Aggregate()
	if agg.Windows == 0 {
		t.Fatal("no spans sampled; SetPerf wiring is broken")
	}
	return agg.Counts()
}

// TestSpanFoldWorkerInvariant: the deterministic projection of the span
// fold — windows sampled, per-stage observation counts, related-candidate
// sum — must be byte-identical between the serial kernel and an 8-worker
// kernel. Durations are wall-clock and necessarily vary; the counts must
// not, or span aggregates become a function of deployment shape.
func TestSpanFoldWorkerInvariant(t *testing.T) {
	serial := perfRun(t, 0)
	for _, workers := range []int{1, 8} {
		par := perfRun(t, workers)
		if !reflect.DeepEqual(par, serial) {
			t.Errorf("Workers=%d: span fold counts diverge from serial\nserial:   %+v\nparallel: %+v",
				workers, serial, par)
		}
		sj, _ := json.Marshal(serial)
		pj, _ := json.Marshal(par)
		if string(sj) != string(pj) {
			t.Errorf("Workers=%d: JSON projection diverges\nserial:   %s\nparallel: %s",
				workers, sj, pj)
		}
	}
}

// TestPendingSpanConsumedOncePerWindow: staged front-end/fleet stage
// nanoseconds must land on exactly the next window's span and never smear
// into later windows, sampled or not.
func TestPendingSpanConsumedOncePerWindow(t *testing.T) {
	col := perfobs.NewCollector(64)
	col.SetSampleEvery(1)
	e, err := NewEngine(Config{K: 64, Seed: 1, Delta: 0.5, Lambda: 2, WindowFrames: 4})
	if err != nil {
		t.Fatal(err)
	}
	e.SetPerf(col, "s")
	rng := rand.New(rand.NewSource(7))
	if err := e.AddQuery(1, idStream(rng, 1, 12)); err != nil {
		t.Fatal(err)
	}
	e.AddPendingSpanNS(perfobs.StageQueueWait, 12345)
	e.PushFrames(idStream(rng, 9, 12)) // three basic windows
	e.Flush()
	spans := col.Spans(0)
	if len(spans) < 2 {
		t.Fatalf("sampled %d spans, want >= 2", len(spans))
	}
	if got := spans[0].NS["queue_wait"]; got != 12345 {
		t.Errorf("first window queue_wait = %d, want 12345", got)
	}
	for i, sp := range spans[1:] {
		if ns, ok := sp.NS["queue_wait"]; ok {
			t.Errorf("window %d inherited stale queue_wait = %d", i+1, ns)
		}
	}
}
